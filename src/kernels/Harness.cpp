//===- Harness.cpp - Benchmark sweep and reporting utilities ---------------===//

#include "src/kernels/Harness.h"

#include <algorithm>
#include <cstdio>

using namespace lvish;
using namespace lvish::kernels;

KernelCapture kernels::captureKernel(
    const std::string &Name,
    const std::function<void(service::Runtime &)> &Fn, unsigned Workers,
    int Reps) {
  KernelCapture Out;
  Out.Name = Name;
  {
    service::RuntimeConfig Cfg;
    Cfg.Sched.NumWorkers = Workers;
    service::Runtime RT(Cfg);
    for (int I = 0; I < Reps; ++I) {
      WallTimer T;
      Fn(RT);
      Out.RepSeconds.push_back(T.elapsedSeconds());
    }
    std::vector<double> Sorted = Out.RepSeconds;
    std::sort(Sorted.begin(), Sorted.end());
    Out.RealSeconds = Sorted[Sorted.size() / 2];
    Out.Stats = RT.scheduler().stats();
  }
  {
    service::RuntimeConfig Cfg;
    Cfg.Sched.NumWorkers = 1; // Contention-free slice durations.
    Cfg.Sched.EnableTracing = true;
    service::Runtime RT(Cfg);
    WallTimer T;
    Fn(RT);
    Out.TracedSeconds = T.elapsedSeconds();
    Out.Graph = sim::TaskGraph::fromTrace(*RT.scheduler().trace());
  }
  return Out;
}

std::string kernels::formatSeconds(double S) {
  char Buf[32];
  if (S >= 100)
    std::snprintf(Buf, sizeof(Buf), "%.0f", S);
  else if (S >= 10)
    std::snprintf(Buf, sizeof(Buf), "%.1f", S);
  else if (S >= 1)
    std::snprintf(Buf, sizeof(Buf), "%.2f", S);
  else
    std::snprintf(Buf, sizeof(Buf), "%.3f", S);
  return Buf;
}

void kernels::printSpeedupTable(const std::vector<KernelCapture> &Kernels,
                                const std::vector<unsigned> &WorkerCounts,
                                const sim::MachineModel &Model,
                                const char *Title) {
  std::printf("%s\n", Title);
  std::printf("%-14s %10s %12s", "kernel", "seq(s)", "work/span");
  for (unsigned W : WorkerCounts)
    std::printf("  P=%-5u", W);
  std::printf("\n");
  for (const KernelCapture &K : Kernels) {
    double WorkS = static_cast<double>(K.Graph.totalWorkNanos()) * 1e-9;
    double SpanS = static_cast<double>(K.Graph.criticalPathNanos()) * 1e-9;
    std::printf("%-14s %10s %12.1f", K.Name.c_str(),
                formatSeconds(K.RealSeconds).c_str(),
                SpanS > 0 ? WorkS / SpanS : 0.0);
    std::vector<double> Speedups =
        sim::speedupSeries(K.Graph, WorkerCounts, Model);
    for (double S : Speedups)
      std::printf("  %-7.2f", S);
    std::printf("\n");
  }
}
