//===- Kernels.h - Traditional parallel benchmark kernels -------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "benchmark suite of traditional parallel kernels" of Figure 4:
/// blackscholes, mergesortFP (purely functional, copying), matmult,
/// sumeuler, and nbody - each with a sequential oracle and an LVish Par
/// implementation - plus the two non-copying ParST merge sorts of Figure 5
/// ("bottom out to different sequential sorts: either (1) a pure
/// [hand-written] sequential sort, or (2) a library call" - here std::sort
/// standing in for the C leaf).
///
/// Kernels annotate their memory traffic via ParCtx::noteBytes so the
/// parallelism simulator's bandwidth model can reproduce the figures'
/// shapes (the copying sort "reads the entire input memory at least
/// log2(N) times"); the annotations are no-ops unless tracing is on.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_KERNELS_KERNELS_H
#define LVISH_KERNELS_KERNELS_H

#include "src/core/LVish.h"
#include "src/service/Runtime.h"

#include <cstdint>
#include <vector>

namespace lvish {
namespace kernels {

/// Effect level all kernels run at (pure deterministic Par).
inline constexpr EffectSet KernelEff = Eff::Det;

/// Figure 2 knob: rerun a kernel with an *unneeded* transformer layered on
/// top, to measure what a capability costs when present but unused.
///  * UnusedState - one splittable-state layer (a CancelT "is just such a
///    StateT"), split at every fork;
///  * UnusedST    - the ParST capability switched on around the
///    computation (a tiny vector state that is never touched).
enum class Layering { None, UnusedState, UnusedST };

// -- blackscholes ------------------------------------------------------

/// One European option.
struct Option {
  double Spot;
  double Strike;
  double Years;
  double Rate;
  double Volatility;
  bool IsCall;
};

/// Deterministic random option portfolio.
std::vector<Option> makeOptions(size_t N, uint64_t Seed);

/// Sequential oracle.
std::vector<double> blackScholesSeq(const std::vector<Option> &Opts);

/// LVish-parallel pricing.
std::vector<double> blackScholesPar(service::Runtime &RT,
                                    const std::vector<Option> &Opts,
                                    size_t Grain = 1024,
                                    Layering Layers = Layering::None);

// -- sumeuler ----------------------------------------------------------

/// Sequential sum of Euler totients over [1, N].
uint64_t sumEulerSeq(uint32_t N);

/// LVish-parallel via parallelReduce.
uint64_t sumEulerPar(service::Runtime &RT, uint32_t N, size_t Grain = 64,
                     Layering Layers = Layering::None);

// -- matmult -----------------------------------------------------------

/// Row-major N x N double matrices; deterministic random fill.
std::vector<double> makeMatrix(size_t N, uint64_t Seed);

std::vector<double> matMultSeq(const std::vector<double> &A,
                               const std::vector<double> &B, size_t N);

std::vector<double> matMultPar(service::Runtime &RT,
                               const std::vector<double> &A,
                               const std::vector<double> &B, size_t N,
                               size_t RowGrain = 8,
                               Layering Layers = Layering::None);

// -- nbody -------------------------------------------------------------

struct Body {
  double X, Y, Z;
  double VX, VY, VZ;
  double Mass;
};

std::vector<Body> makeBodies(size_t N, uint64_t Seed);

/// Advances \p Steps leapfrog steps, all-pairs forces. Sequential oracle.
void nBodySeq(std::vector<Body> &Bodies, int Steps, double Dt = 1e-3);

/// LVish-parallel (parallel force phase per step).
void nBodyPar(service::Runtime &RT, std::vector<Body> &Bodies, int Steps,
              double Dt = 1e-3, size_t Grain = 32,
              Layering Layers = Layering::None);

// -- merge sorts ---------------------------------------------------------

/// Deterministic random keys.
std::vector<int64_t> makeKeys(size_t N, uint64_t Seed);

/// Hand-written sequential merge sort (the "pure Haskell leaf" stand-in).
void mergeSortSeq(std::vector<int64_t> &Keys);

/// Purely functional (copying) parallel merge sort: each recursive call
/// returns a fresh vector; merging appends/copies - Figure 4's
/// "mergesortFP", the kernel that stops scaling first.
std::vector<int64_t> mergeSortFP(service::Runtime &RT, std::vector<int64_t> Keys,
                                 size_t LeafSize = 8192,
                                 Layering Layers = Layering::None);

/// Non-copying ParST merge sort (Section 7.3 / Figure 5): sorts in place
/// over a VecView with forkSTSplit2, double-split unrolling so "after each
/// round the output ends up back in the original buffer". \p UseStdSortLeaf
/// selects the std::sort leaf (the "C leaf" variant) instead of the
/// hand-written one.
void mergeSortParST(service::Runtime &RT, std::vector<int64_t> &Keys,
                    size_t LeafSize = 8192, bool UseStdSortLeaf = false);

} // namespace kernels
} // namespace lvish

#endif // LVISH_KERNELS_KERNELS_H
