//===- Kernels.cpp - Traditional parallel benchmark kernels ----------------===//

#include "src/kernels/Kernels.h"

#include "src/core/ParFor.h"
#include "src/support/SplitMix.h"
#include "src/trans/ParST.h"
#include "src/trans/StateLayer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace lvish;
using namespace lvish::kernels;

namespace {

/// Runs \p Body under the requested unneeded transformer (Figure 2).
template <typename BodyT>
Par<void> withLayering(ParCtx<KernelEff> Ctx, Layering Layers, BodyT Body) {
  switch (Layers) {
  case Layering::None:
    co_await Body(Ctx);
    co_return;
  case Layering::UnusedState: {
    auto Wrapped = [Body](ParCtx<KernelEff> C) -> Par<void> {
      co_await Body(C);
    };
    co_await withState(Ctx, Duplicated<uint64_t>{0}, Wrapped);
    co_return;
  }
  case Layering::UnusedST: {
    auto Wrapped = [Body](ParCtx<Eff::DetST> C,
                          VecView<int> View) -> Par<void> {
      (void)View;
      co_await Body(C); // Subsumption: DetST context where Det suffices.
    };
    co_await runParVec(Ctx, 1, 0, Wrapped);
    co_return;
  }
  }
}

} // namespace

// -- blackscholes ------------------------------------------------------

std::vector<Option> kernels::makeOptions(size_t N, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<Option> Opts(N);
  for (Option &O : Opts) {
    O.Spot = 10 + 90 * Rng.nextDouble();
    O.Strike = 10 + 90 * Rng.nextDouble();
    O.Years = 0.1 + 2 * Rng.nextDouble();
    O.Rate = 0.01 + 0.05 * Rng.nextDouble();
    O.Volatility = 0.05 + 0.5 * Rng.nextDouble();
    O.IsCall = (Rng.next() & 1) != 0;
  }
  return Opts;
}

namespace {

/// Cumulative normal distribution (Abramowitz & Stegun 26.2.17), the
/// standard PARSEC blackscholes kernel formula.
double cndf(double X) {
  bool Negative = X < 0;
  if (Negative)
    X = -X;
  double K = 1.0 / (1.0 + 0.2316419 * X);
  double Poly =
      K *
      (0.319381530 +
       K * (-0.356563782 +
            K * (1.781477937 + K * (-1.821255978 + K * 1.330274429))));
  double N = 1.0 - (1.0 / std::sqrt(2 * M_PI)) * std::exp(-X * X / 2) * Poly;
  return Negative ? 1.0 - N : N;
}

double priceOne(const Option &O) {
  double SqrtT = std::sqrt(O.Years);
  double D1 = (std::log(O.Spot / O.Strike) +
               (O.Rate + O.Volatility * O.Volatility / 2) * O.Years) /
              (O.Volatility * SqrtT);
  double D2 = D1 - O.Volatility * SqrtT;
  double Disc = std::exp(-O.Rate * O.Years) * O.Strike;
  if (O.IsCall)
    return O.Spot * cndf(D1) - Disc * cndf(D2);
  return Disc * cndf(-D2) - O.Spot * cndf(-D1);
}

} // namespace

std::vector<double>
kernels::blackScholesSeq(const std::vector<Option> &Opts) {
  std::vector<double> Prices(Opts.size());
  for (size_t I = 0; I < Opts.size(); ++I)
    Prices[I] = priceOne(Opts[I]);
  return Prices;
}

std::vector<double> kernels::blackScholesPar(service::Runtime &RT,
                                             const std::vector<Option> &Opts,
                                             size_t Grain, Layering Layers) {
  std::vector<double> Prices(Opts.size());
  const Option *In = Opts.data();
  double *Out = Prices.data();
  size_t N = Opts.size();
  RT.run<KernelEff>(
      [In, Out, N, Grain, Layers](ParCtx<KernelEff> Ctx) -> Par<void> {
        auto Work = [In, Out, N, Grain](ParCtx<KernelEff> C) -> Par<void> {
          auto Body = [In, Out](size_t I) { Out[I] = priceOne(In[I]); };
          co_await parallelFor(C, 0, N, Grain, Body);
        };
        co_await withLayering(Ctx, Layers, Work);
      }).valueOrAbort();
  return Prices;
}

// -- sumeuler ----------------------------------------------------------

namespace {

uint32_t gcdU32(uint32_t A, uint32_t B) {
  while (B) {
    uint32_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// Euler's totient by naive coprime counting: deliberately compute-heavy,
/// matching the classic sumeuler benchmark.
uint64_t totient(uint32_t N) {
  if (N == 1)
    return 1;
  uint64_t Count = 0;
  for (uint32_t I = 1; I < N; ++I)
    if (gcdU32(I, N) == 1)
      ++Count;
  return Count;
}

} // namespace

uint64_t kernels::sumEulerSeq(uint32_t N) {
  uint64_t Sum = 0;
  for (uint32_t I = 1; I <= N; ++I)
    Sum += totient(I);
  return Sum;
}

uint64_t kernels::sumEulerPar(service::Runtime &RT, uint32_t N, size_t Grain,
                              Layering Layers) {
  uint64_t Result = 0;
  uint64_t *Out = &Result;
  RT.run<KernelEff>(
      [N, Grain, Layers, Out](ParCtx<KernelEff> Ctx) -> Par<void> {
        auto Work = [N, Grain, Out](ParCtx<KernelEff> C) -> Par<void> {
          auto Leaf = [](size_t I) {
            return totient(static_cast<uint32_t>(I));
          };
          auto Combine = [](uint64_t A, uint64_t B) { return A + B; };
          *Out = co_await parallelReduce<uint64_t>(
              C, 1, static_cast<size_t>(N) + 1, Grain, Leaf, Combine,
              uint64_t(0));
        };
        co_await withLayering(Ctx, Layers, Work);
      }).valueOrAbort();
  return Result;
}

// -- matmult -----------------------------------------------------------

std::vector<double> kernels::makeMatrix(size_t N, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<double> M(N * N);
  for (double &V : M)
    V = Rng.nextDouble() - 0.5;
  return M;
}

namespace {

/// One row block of C = A x B (ikj order for locality).
void matMultRows(const double *A, const double *B, double *C, size_t N,
                 size_t RowBegin, size_t RowEnd) {
  for (size_t I = RowBegin; I < RowEnd; ++I) {
    double *CRow = C + I * N;
    for (size_t J = 0; J < N; ++J)
      CRow[J] = 0;
    for (size_t K = 0; K < N; ++K) {
      double AIK = A[I * N + K];
      const double *BRow = B + K * N;
      for (size_t J = 0; J < N; ++J)
        CRow[J] += AIK * BRow[J];
    }
  }
}

} // namespace

std::vector<double> kernels::matMultSeq(const std::vector<double> &A,
                                        const std::vector<double> &B,
                                        size_t N) {
  std::vector<double> C(N * N);
  matMultRows(A.data(), B.data(), C.data(), N, 0, N);
  return C;
}

std::vector<double> kernels::matMultPar(service::Runtime &RT,
                                        const std::vector<double> &A,
                                        const std::vector<double> &B,
                                        size_t N, size_t RowGrain,
                                        Layering Layers) {
  std::vector<double> C(N * N);
  const double *AP = A.data();
  const double *BP = B.data();
  double *CP = C.data();
  RT.run<KernelEff>(
      [AP, BP, CP, N, RowGrain, Layers](ParCtx<KernelEff> Ctx) -> Par<void> {
        auto Work = [AP, BP, CP, N, RowGrain](ParCtx<KernelEff> C1)
            -> Par<void> {
          auto Body = [AP, BP, CP, N](ParCtx<KernelEff> C2,
                                      size_t Row) -> Par<void> {
            matMultRows(AP, BP, CP, N, Row, Row + 1);
            // Traffic per row: A's row, C's row written, plus B amortized
            // (largely cache-resident across the K loop). The kernel is
            // compute-bound (2N^3 flops over N^2 data), so traffic stays
            // small - that is why matmult scales in Figure 4.
            C2.noteBytes(5 * N * sizeof(double));
            co_return;
          };
          co_await parallelForPar(C1, 0, N, RowGrain, Body);
        };
        co_await withLayering(Ctx, Layers, Work);
      }).valueOrAbort();
  return C;
}

// -- nbody -------------------------------------------------------------

std::vector<Body> kernels::makeBodies(size_t N, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<Body> Bodies(N);
  for (Body &B : Bodies) {
    B.X = Rng.nextDouble() * 2 - 1;
    B.Y = Rng.nextDouble() * 2 - 1;
    B.Z = Rng.nextDouble() * 2 - 1;
    B.VX = B.VY = B.VZ = 0;
    B.Mass = 0.5 + Rng.nextDouble();
  }
  return Bodies;
}

namespace {

constexpr double Softening = 1e-6;

void accumulateForces(const Body *Bodies, size_t N, size_t I, double &AX,
                      double &AY, double &AZ) {
  AX = AY = AZ = 0;
  const Body &Me = Bodies[I];
  for (size_t J = 0; J < N; ++J) {
    if (J == I)
      continue;
    double DX = Bodies[J].X - Me.X;
    double DY = Bodies[J].Y - Me.Y;
    double DZ = Bodies[J].Z - Me.Z;
    double R2 = DX * DX + DY * DY + DZ * DZ + Softening;
    double Inv = 1.0 / std::sqrt(R2);
    double F = Bodies[J].Mass * Inv * Inv * Inv;
    AX += F * DX;
    AY += F * DY;
    AZ += F * DZ;
  }
}

void integrate(Body *Bodies, const double *Acc, size_t N, double Dt) {
  for (size_t I = 0; I < N; ++I) {
    Bodies[I].VX += Acc[3 * I + 0] * Dt;
    Bodies[I].VY += Acc[3 * I + 1] * Dt;
    Bodies[I].VZ += Acc[3 * I + 2] * Dt;
    Bodies[I].X += Bodies[I].VX * Dt;
    Bodies[I].Y += Bodies[I].VY * Dt;
    Bodies[I].Z += Bodies[I].VZ * Dt;
  }
}

} // namespace

void kernels::nBodySeq(std::vector<Body> &Bodies, int Steps, double Dt) {
  size_t N = Bodies.size();
  std::vector<double> Acc(3 * N);
  for (int S = 0; S < Steps; ++S) {
    for (size_t I = 0; I < N; ++I)
      accumulateForces(Bodies.data(), N, I, Acc[3 * I], Acc[3 * I + 1],
                       Acc[3 * I + 2]);
    integrate(Bodies.data(), Acc.data(), N, Dt);
  }
}

void kernels::nBodyPar(service::Runtime &RT, std::vector<Body> &Bodies,
                       int Steps, double Dt, size_t Grain, Layering Layers) {
  size_t N = Bodies.size();
  std::vector<double> Acc(3 * N);
  Body *BP = Bodies.data();
  double *AP = Acc.data();
  for (int S = 0; S < Steps; ++S) {
    RT.run<KernelEff>(
        [BP, AP, N, Grain, Layers](ParCtx<KernelEff> Ctx) -> Par<void> {
          auto Work = [BP, AP, N, Grain](ParCtx<KernelEff> C) -> Par<void> {
            // Force phase: reads all bodies, writes a disjoint slot each.
            auto Body = [BP, AP, N](size_t I) {
              accumulateForces(BP, N, I, AP[3 * I], AP[3 * I + 1],
                               AP[3 * I + 2]);
            };
            co_await parallelFor(C, 0, N, Grain, Body);
          };
          co_await withLayering(Ctx, Layers, Work);
        }).valueOrAbort();
    integrate(BP, AP, N, Dt);
  }
}

// -- merge sorts ---------------------------------------------------------

std::vector<int64_t> kernels::makeKeys(size_t N, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<int64_t> Keys(N);
  for (int64_t &K : Keys)
    K = static_cast<int64_t>(Rng.next());
  return Keys;
}

namespace {

/// Hand-written bottom-up merge sort (the "all-Haskell leaf" stand-in).
void seqMergeSort(int64_t *Data, int64_t *Scratch, size_t N) {
  for (size_t Width = 1; Width < N; Width *= 2) {
    for (size_t Lo = 0; Lo < N; Lo += 2 * Width) {
      size_t Mid = std::min(Lo + Width, N);
      size_t Hi = std::min(Lo + 2 * Width, N);
      std::merge(Data + Lo, Data + Mid, Data + Mid, Data + Hi,
                 Scratch + Lo);
    }
    std::copy(Scratch, Scratch + N, Data);
  }
}

} // namespace

void kernels::mergeSortSeq(std::vector<int64_t> &Keys) {
  std::vector<int64_t> Scratch(Keys.size());
  seqMergeSort(Keys.data(), Scratch.data(), Keys.size());
}

namespace {

/// Copying functional sort: every level allocates fresh vectors. The
/// byte annotations charge the copies (split + merge), which is what
/// makes this kernel memory-bound in the simulator - as on real hardware.
Par<std::vector<int64_t>> msFP(ParCtx<KernelEff> Ctx,
                               std::vector<int64_t> Keys, size_t LeafSize) {
  size_t N = Keys.size();
  if (N <= LeafSize) {
    std::vector<int64_t> Scratch(N);
    seqMergeSort(Keys.data(), Scratch.data(), N);
    Ctx.noteBytes(2 * N * sizeof(int64_t));
    co_return Keys;
  }
  size_t Mid = N / 2;
  std::vector<int64_t> Left(Keys.begin(),
                            Keys.begin() + static_cast<long>(Mid));
  std::vector<int64_t> Right(Keys.begin() + static_cast<long>(Mid),
                             Keys.end());
  Keys.clear();
  Keys.shrink_to_fit();
  Ctx.noteBytes(2 * N * sizeof(int64_t)); // The split copies.

  auto LeftFuture = newIVar<std::vector<int64_t>>(Ctx);
  // Named bodies: GCC 12 co_await temporary discipline (see Par.h).
  auto LeftBody = [LeftFuture, L = std::move(Left),
                   LeafSize](ParCtx<KernelEff> C) mutable -> Par<void> {
    std::vector<int64_t> Sorted = co_await msFP(C, std::move(L), LeafSize);
    put(C, *LeftFuture, Sorted);
  };
  fork(Ctx, std::move(LeftBody));
  std::vector<int64_t> RightSorted =
      co_await msFP(Ctx, std::move(Right), LeafSize);
  std::vector<int64_t> LeftSorted = co_await get(Ctx, *LeftFuture);

  std::vector<int64_t> Out(N);
  std::merge(LeftSorted.begin(), LeftSorted.end(), RightSorted.begin(),
             RightSorted.end(), Out.begin());
  Ctx.noteBytes(3 * N * sizeof(int64_t)); // Read both halves, write out.
  co_return Out;
}

} // namespace

std::vector<int64_t> kernels::mergeSortFP(service::Runtime &RT,
                                          std::vector<int64_t> Keys,
                                          size_t LeafSize, Layering Layers) {
  auto KeysPtr = std::make_shared<std::vector<int64_t>>(std::move(Keys));
  auto OutPtr = std::make_shared<std::vector<int64_t>>();
  RT.run<KernelEff>(
      [KeysPtr, OutPtr, LeafSize,
       Layers](ParCtx<KernelEff> Ctx) -> Par<void> {
        auto Work = [KeysPtr, OutPtr,
                     LeafSize](ParCtx<KernelEff> C) -> Par<void> {
          *OutPtr = co_await msFP(C, std::move(*KeysPtr), LeafSize);
        };
        co_await withLayering(Ctx, Layers, Work);
      }).valueOrAbort();
  return std::move(*OutPtr);
}

namespace {

constexpr EffectSet SortEff = Eff::DetST;

void leafSort(int64_t *Data, size_t N, bool UseStdSortLeaf) {
  if (UseStdSortLeaf) {
    std::sort(Data, Data + N);
    return;
  }
  std::vector<int64_t> Scratch(N);
  seqMergeSort(Data, Scratch.data(), N);
}

/// Parallel merge of the two sorted runs In[0,Mid) and In[Mid,N) into
/// Out[0,N): the output is split at a rank found by binary search, and
/// the two sub-merges run as disjoint ParST children - the refinement the
/// paper's footnote anticipates ("performing a multi-way merge sort could
/// reduce the impact" of merge-dominated spans). The four sub-views are
/// provably disjoint, so fresh ownership cells are created directly
/// (trusted kernel code, same discipline as forkSTSplit itself).
Par<void> parMerge(ParCtx<SortEff> C, const int64_t *A, size_t An,
                   const int64_t *B, size_t Bn, int64_t *Out,
                   size_t SeqThreshold) {
  if (An + Bn <= SeqThreshold) {
    std::merge(A, A + An, B, B + Bn, Out);
    C.noteBytes(2 * (An + Bn) * sizeof(int64_t));
    co_return;
  }
  // Split the larger run at its midpoint; binary-search the partner rank.
  size_t I, J;
  if (An >= Bn) {
    I = An / 2;
    J = static_cast<size_t>(std::lower_bound(B, B + Bn, A[I]) - B);
  } else {
    J = Bn / 2;
    I = static_cast<size_t>(std::lower_bound(A, A + An, B[J]) - A);
  }
  size_t K = I + J;
  auto Done = newIVar<bool>(C);
  auto LeftBody = [A, I, B, J, Out, SeqThreshold,
                   Done](ParCtx<SortEff> C2) -> Par<void> {
    co_await parMerge(C2, A, I, B, J, Out, SeqThreshold);
    put(C2, *Done, true);
  };
  fork(C, LeftBody);
  co_await parMerge(C, A + I, An - I, B + J, Bn - J, Out + K,
                    SeqThreshold);
  co_await get(C, *Done);
  co_return;
}

/// Sorts Data in place using Buf as scratch; both views are the same
/// length. The recursion is unrolled twice (quarter splits), so "after
/// each round the output ends up back in the original buffer" (Section
/// 7.3): quarters sort into Data, the inner merges go Data -> Buf, the
/// outer merge goes Buf -> Data. Merges above 64k elements run as
/// parallel merges (see parMerge).
Par<void> msST(ParCtx<SortEff> C, VecView<int64_t> Data,
               VecView<int64_t> Buf, size_t LeafSize, bool StdLeaf) {
  size_t N = Data.size();
  if (N <= LeafSize || N < 4) {
    leafSort(Data.raw(), N, StdLeaf);
    C.noteBytes(2 * N * sizeof(int64_t));
    co_return;
  }
  size_t Half = N / 2;
  auto SortHalf = [LeafSize, StdLeaf](ParCtx<SortEff> C2,
                                      VecView<int64_t> D,
                                      VecView<int64_t> B) -> Par<void> {
    size_t Quarter = D.size() / 2;
    auto SortQuarter = [LeafSize, StdLeaf](ParCtx<SortEff> C3,
                                           VecView<int64_t> QD,
                                           VecView<int64_t> QB) -> Par<void> {
      co_await msST(C3, QD, QB, LeafSize, StdLeaf);
    };
    co_await forkSTSplit2(C2, D, Quarter, B, Quarter, SortQuarter,
                          SortQuarter);
    // mergeL2R: the sorted quarters of D merge into B.
    constexpr size_t ParMergeMin = 1 << 16;
    if (D.size() >= ParMergeMin)
      co_await parMerge(C2, D.raw(), Quarter, D.raw() + Quarter,
                        D.size() - Quarter, B.raw(), ParMergeMin / 2);
    else {
      std::merge(D.raw(), D.raw() + Quarter, D.raw() + Quarter,
                 D.raw() + D.size(), B.raw());
      C2.noteBytes(2 * D.size() * sizeof(int64_t));
    }
    co_return;
  };
  co_await forkSTSplit2(C, Data, Half, Buf, Half, SortHalf, SortHalf);
  // mergeR2L: the sorted halves now in Buf merge back into Data.
  constexpr size_t ParMergeMin = 1 << 16;
  if (N >= ParMergeMin)
    co_await parMerge(C, Buf.raw(), Half, Buf.raw() + Half, N - Half,
                      Data.raw(), ParMergeMin / 2);
  else {
    std::merge(Buf.raw(), Buf.raw() + Half, Buf.raw() + Half,
               Buf.raw() + Buf.size(), Data.raw());
    C.noteBytes(2 * N * sizeof(int64_t));
  }
  co_return;
}

} // namespace

void kernels::mergeSortParST(service::Runtime &RT, std::vector<int64_t> &Keys,
                             size_t LeafSize, bool UseStdSortLeaf) {
  int64_t *Raw = Keys.data();
  size_t N = Keys.size();
  RT.run<KernelEff>([Raw, N, LeafSize, UseStdSortLeaf](
                        ParCtx<KernelEff> Ctx) -> Par<void> {
    // Zoom out: pair the caller's storage with a scratch buffer. The
    // caller's vector is the "recipe-created" state: we wrap it in a view
    // directly since runParVec would copy.
    auto Gen = detail::newGenCell();
    VecView<int64_t> Data(Raw, N, Gen, 0);
    auto Body = [Data, LeafSize,
                 UseStdSortLeaf](ParCtx<SortEff> C,
                                 VecView<int64_t> Dummy,
                                 VecView<int64_t> Buf) -> Par<void> {
      (void)Dummy;
      co_await msST(C, Data, Buf, LeafSize, UseStdSortLeaf);
    };
    // lvish-lint: allow(ctx-forge) - trusted in-place runParVec analogue.
    ParCtx<SortEff> STCtx = detail::CtxAccess::make<SortEff>(Ctx.task());
    // In-place grant of the ST capability over caller-owned storage: widen
    // the declared mask and register the root extent, as runParVec would.
    check::RaiseDeclaredScope Raise(Ctx.task(),
                                    check::effectMask(SortEff));
    auto &DC = check::DisjointnessChecker::instance();
    DC.registerExtent(Raw, Raw + N, Gen.get(), 0, "mergeSortParST root");
    co_await withTempBuffer(STCtx, Data, N, Body);
    DC.releaseExtent(Raw, Gen.get());
    Gen->fetch_add(1, std::memory_order_acq_rel);
    co_return;
  }).valueOrAbort();
}
