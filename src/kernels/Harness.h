//===- Harness.h - Benchmark sweep and reporting utilities ------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the bench/ executables: real timing (median of
/// five, like the paper), DAG capture for the simulated thread sweeps, and
/// fixed-width table printing in the shape of the paper's tables/figures.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_KERNELS_HARNESS_H
#define LVISH_KERNELS_HARNESS_H

#include "src/obs/SchedulerStats.h"
#include "src/service/Runtime.h"
#include "src/sim/Simulator.h"
#include "src/support/Timer.h"

#include <functional>
#include <string>
#include <vector>

namespace lvish {
namespace kernels {

/// One kernel's capture: real single-thread time plus its recorded DAG.
struct KernelCapture {
  std::string Name;
  double RealSeconds = 0;   ///< Median wall time, tracing off.
  sim::TaskGraph Graph;     ///< DAG recorded in a separate traced run.
  double TracedSeconds = 0; ///< Wall time of the traced run (overhead probe).
  std::vector<double> RepSeconds; ///< Every untraced timing sample.
  SchedulerStats Stats;     ///< Timing scheduler's counters after the reps.
};

/// Runs \p Fn (which takes the service Runtime to submit through)
/// untraced for timing, then once more with tracing on to capture the
/// DAG. \p Workers sets the real worker count for the timing runs (the
/// traced run always uses one worker so measured slice durations are
/// contention-free).
KernelCapture captureKernel(const std::string &Name,
                            const std::function<void(service::Runtime &)> &Fn,
                            unsigned Workers = 1, int Reps = 5);

/// Prints a "Figure 4/5"-shaped speedup table: one row per kernel, one
/// column per simulated worker count.
void printSpeedupTable(const std::vector<KernelCapture> &Kernels,
                       const std::vector<unsigned> &WorkerCounts,
                       const sim::MachineModel &Model,
                       const char *Title);

/// Formats seconds with 3 significant digits.
std::string formatSeconds(double S);

} // namespace kernels
} // namespace lvish

#endif // LVISH_KERNELS_HARNESS_H
