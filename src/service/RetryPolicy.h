//===- RetryPolicy.h - Seeded-jitter retry/backoff for submitters -*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The caller-side companion to the Runtime's admission refusals: a
/// submission resolved with FaultCode::Shed or DeadlineExceeded never ran,
/// so resubmitting it is always safe (sessions are deterministic and
/// side-effect-free until they run). RetryPolicy computes capped
/// exponential backoff with full seeded jitter - every delay is a pure
/// function of (Seed, attempt), so a test or a replayed incident sees the
/// same delay sequence - and submitWithRetry() is the loop most callers
/// want.
///
///   service::RetryPolicy P{.MaxAttempts = 5, .Seed = TenantId};
///   ParOutcome<int> O = service::submitWithRetry(P, [&] {
///     return RT.run(Body);
///   });
///
/// The jitter is full-window ("decorrelated" submitters): attempt A draws
/// uniformly from [0, min(MaxDelayNanos, BaseDelayNanos << A)], which
/// spreads a shed burst instead of re-synchronizing it.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SERVICE_RETRYPOLICY_H
#define LVISH_SERVICE_RETRYPOLICY_H

#include "src/support/Fault.h"
#include "src/support/SplitMix.h"

#include <chrono>
#include <cstdint>
#include <thread>

namespace lvish {
namespace service {

/// Seeded-jitter retry/backoff policy; see file comment. Pure: delayNanos
/// never reads a clock or global RNG, so retry schedules are reproducible.
struct RetryPolicy {
  /// Total tries, including the first (1 = no retries).
  unsigned MaxAttempts = 4;
  /// Backoff window for the first retry; doubles per attempt.
  uint64_t BaseDelayNanos = 1'000'000; // 1 ms
  /// Backoff window cap.
  uint64_t MaxDelayNanos = 100'000'000; // 100 ms
  /// Jitter seed; give distinct submitters distinct seeds (tenant id,
  /// request id) so their retries decorrelate.
  uint64_t Seed = 0x6c76697368ULL; // "lvish"

  /// True for refusals that never ran the session and are worth retrying:
  /// transient admission pressure (Shed, DeadlineExceeded). Budget kills,
  /// contract violations, and RuntimeStopping are not retryable - the
  /// same session would fail the same way, or the Runtime is going away.
  static bool retryable(const Fault &F) {
    return F.Code == FaultCode::Shed || F.Code == FaultCode::DeadlineExceeded;
  }

  /// Deterministic backoff before retry number \p Attempt (0-based count
  /// of refusals so far): uniform in [0, min(MaxDelayNanos,
  /// BaseDelayNanos << Attempt)], drawn from a pure hash of
  /// (Seed, Attempt).
  uint64_t delayNanos(unsigned Attempt) const {
    uint64_t Window = BaseDelayNanos;
    for (unsigned I = 0; I < Attempt && Window < MaxDelayNanos; ++I)
      Window <<= 1;
    if (MaxDelayNanos && Window > MaxDelayNanos)
      Window = MaxDelayNanos;
    if (Window == 0)
      return 0;
    SplitMix64 Rng(Seed ^ (0x9e3779b97f4a7c15ULL * (uint64_t(Attempt) + 1)));
    return Rng.nextBounded(Window + 1);
  }
};

/// Runs \p Submit (returning a ParOutcome) until it succeeds, fails
/// non-retryably, or \p P.MaxAttempts tries are spent; sleeps the policy's
/// seeded-jitter backoff between tries. Returns the last outcome.
template <typename SubmitFn>
auto submitWithRetry(const RetryPolicy &P, SubmitFn Submit) {
  auto Out = Submit();
  for (unsigned Attempt = 1; Attempt < P.MaxAttempts && !Out.ok() &&
                             RetryPolicy::retryable(Out.fault());
       ++Attempt) {
    if (uint64_t Delay = P.delayNanos(Attempt - 1))
      std::this_thread::sleep_for(std::chrono::nanoseconds(Delay));
    Out = Submit();
  }
  return Out;
}

} // namespace service
} // namespace lvish

#endif // LVISH_SERVICE_RETRYPOLICY_H
