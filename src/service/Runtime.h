//===- Runtime.h - Multi-tenant service runtime -----------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service runtime: one long-lived worker pool (a Scheduler) that
/// multiplexes many concurrent deterministic sessions - the ROADMAP's
/// "service handling traffic" shape. The paper's determinism guarantee is
/// per-session (the `s` type parameter); the Runtime preserves it per
/// tenant while sharing workers:
///
///   * each session gets its own SessionState: its own quiesce scope (a
///     session quiescing never waits on a sibling's work), its own fault
///     containment (a fault cancels and drains only its session), and its
///     own stats delta;
///   * admission control bounds concurrently active sessions
///     (RuntimeConfig::MaxActiveSessions); excess submissions queue FIFO;
///   * fairness: session roots and yields land in per-session inject
///     queues drained round-robin, and workers periodically service those
///     queues ahead of their own deques (SchedulerConfig::FairnessStride).
///
/// Submission API:
///
///   Runtime RT({.Sched = {.NumWorkers = 8}});
///   SessionFuture<int> F = RT.submit([](ParCtx<Eff::Det> Ctx) -> Par<int>
///     { ... });                        // async
///   ParOutcome<int> O = F.get();       // value or contained Fault
///   ParOutcome<int> P = RT.run(Body);  // blocking, same outcome type
///
/// runPar / tryRunPar* (src/core/RunPar.h) are one-shot wrappers that spin
/// up a private Runtime; the old RunOptions::Borrowed / RunOptions::On
/// borrowed-scheduler surface is deprecated in their favor.
///
/// Completion pipeline: a session's last pending-count decrement can
/// happen under a park-site lock, so the quiescence observer only enqueues
/// the session onto the Runtime's completion queue; a lazily started
/// finalizer thread performs finishSession / fault take / exit freeze /
/// future fulfillment, then admits the next queued session.
///
/// Explore-mode sessions (controlled scheduling, DESIGN.md Section 12)
/// must own every scheduling decision, so they are only honored on a
/// Runtime constructed with that controller and only while it is
/// otherwise idle; anything else is rejected deterministically with a
/// FaultCode::SessionRejected outcome rather than silently sharing the
/// pool.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SERVICE_RUNTIME_H
#define LVISH_SERVICE_RUNTIME_H

#include "src/core/Par.h"
#include "src/obs/SchedulerStats.h"
#include "src/obs/Telemetry.h"
#include "src/sched/Scheduler.h"
#include "src/sched/SessionState.h"
#include "src/support/Fault.h"
#include "src/support/Timer.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>

namespace lvish {
namespace service {

/// Runtime construction parameters.
struct RuntimeConfig {
  /// The shared worker pool's configuration (worker count, fairness
  /// stride, tracing, explore controller).
  SchedulerConfig Sched{};
  /// Admission bound: at most this many sessions active (launched, not
  /// yet finalized) at once; further submissions queue FIFO and launch as
  /// slots free up. 0 = unlimited.
  unsigned MaxActiveSessions = 0;
};

/// Per-session options, the session-scoped successor of RunOptions.
struct SessionOptions {
  /// After quiescence, markFrozen() the returned LVar handle - the
  /// always-deterministic freeze-on-the-way-out of runParThenFreeze.
  /// Requires the body to return a (shared_ptr to an) LVar structure.
  bool FreezeOnExit = false;
  /// When non-null, receives this session's scheduler-stats DELTA (the
  /// snapshot at session start subtracted; see Scheduler::sessionStats).
  /// Exact for sessions that do not overlap others on the pool. Must stay
  /// alive until the session's outcome is available.
  SchedulerStats *StatsOut = nullptr;
  /// When non-null, this session demands controlled scheduling under this
  /// controller. Honored only when the Runtime itself was constructed in
  /// explore mode with the SAME controller and is idle; otherwise the
  /// session is rejected with FaultCode::SessionRejected (an explored
  /// session must own every scheduling decision, which a busy shared pool
  /// cannot grant).
  explore::ScheduleCtl *Explore = nullptr;
};

namespace detail {

template <typename P> struct ParValue;
template <typename T> struct ParValue<Par<T>> {
  using type = T;
};

/// Where the session root deposits its result before finalization.
template <typename R> struct ResultSlot {
  std::optional<R> Value;
  bool produced() const { return Value.has_value(); }
};
template <> struct ResultSlot<void> {
  bool Done = false;
  bool produced() const { return Done; }
};

/// Shared state between a SessionFuture and the Runtime's finalizer: the
/// result slot the root writes, the outcome, and the latency timestamps.
/// Heap-shared so the root coroutine's out-pointer stays valid however
/// long the session outlives the submitting frame.
template <typename R> struct SessionChannel {
  std::mutex Mutex;
  std::condition_variable CV;
  std::optional<ParOutcome<R>> Outcome;
  ResultSlot<R> Slot;
  uint64_t SessionId = 0;
  uint64_t SubmitNanos = 0;
  uint64_t DoneNanos = 0;
};

/// Root coroutine: materializes the session context and funnels the
/// result out to the channel (which outlives the session).
template <EffectSet E, typename F, typename R>
Par<void> rootBody(F Body, std::optional<R> *Out) {
  ParCtx<E> Ctx = lvish::detail::CtxAccess::make<E>(Scheduler::currentTask());
  *Out = co_await Body(Ctx);
}

template <EffectSet E, typename F>
Par<void> rootBodyVoid(F Body, bool *Done) {
  ParCtx<E> Ctx = lvish::detail::CtxAccess::make<E>(Scheduler::currentTask());
  co_await Body(Ctx);
  *Done = true;
}

/// Builds the deadlock Fault for a session whose root never produced a
/// value and never recorded a fault. \p Leftover counts every task reaped
/// at quiescence, *including* the blocked root, so Leftover <= 1 means the
/// scheduler fully drained (only the root was stuck) and Leftover > 1
/// means other blocked tasks leaked alongside it - two different bugs in
/// user code, hence two Fault codes.
inline Fault makeDeadlockFault(size_t Leftover, uint64_t SessionId) {
  Fault F;
  F.Code = Leftover <= 1 ? FaultCode::DeadlockDrained
                         : FaultCode::DeadlockLeakedTasks;
  F.SessionId = SessionId;
  F.Worker = -1;       // Detected on the session thread, not a worker.
  F.Pedigree.clear();  // The root's pedigree is the empty path.
  std::string Msg = "runPar: deterministic deadlock (the main computation "
                    "blocked forever; ";
  if (Leftover <= 1)
    Msg += "scheduler drained: no other task remained";
  else
    Msg += std::to_string(Leftover - 1) + " other blocked task(s) leaked";
  Msg += ") [code=";
  Msg += faultCodeName(F.Code);
  Msg += ", session=" + std::to_string(SessionId) + ", pedigree=<root>]";
  F.Message = std::move(Msg);
  return F;
}

/// The deterministic admission-refusal Fault (code session_rejected).
/// Message depends only on \p Reason, so repeated rejections of the same
/// shape are bit-identical.
inline Fault makeRejectedFault(const char *Reason) {
  Fault F;
  F.Code = FaultCode::SessionRejected;
  F.Worker = -1;
  F.Pedigree.clear();
  F.Message = std::string("Runtime: session rejected (") + Reason +
              ") [code=session_rejected, pedigree=<root>]";
  return F;
}

/// Publishes \p Out on the channel and wakes future waiters.
template <typename R>
void completeChannel(SessionChannel<R> &Ch, ParOutcome<R> Out) {
  std::lock_guard<std::mutex> Lock(Ch.Mutex);
  Ch.DoneNanos = nowNanos();
  Ch.Outcome.emplace(std::move(Out));
  Ch.CV.notify_all();
}

/// Opens a session on \p Sched and schedules its root. \p MakeObserver is
/// invoked with the fresh SessionState and returns the quiescence
/// observer to install (or an empty function for blocking drivers that
/// wait on the session CV instead). Ordering matters: beginSession
/// snapshots the stats baseline BEFORE the root task is created, so the
/// root's own creation lands inside the session's delta.
template <EffectSet E, typename R, typename F, typename MakeObs>
std::shared_ptr<SessionState> launchSession(Scheduler &Sched, F Body,
                                            SessionChannel<R> &Ch,
                                            MakeObs MakeObserver) {
  auto Cancel = std::make_shared<CancelNode>();
  std::shared_ptr<SessionState> S = Sched.beginSession(Cancel);
  Ch.SessionId = S->Id;
  // GCC 12 discipline (see src/core/Par.h): bind the Par before install.
  Par<void> RootPar = [&]() -> Par<void> {
    if constexpr (std::is_void_v<R>)
      return rootBodyVoid<E>(std::move(Body), &Ch.Slot.Done);
    else
      return rootBody<E, F, R>(std::move(Body), &Ch.Slot.Value);
  }();
  Task *Root = lvish::detail::installTaskRoot(Sched, std::move(RootPar),
                                              /*Parent=*/nullptr);
  Root->SessionId = S->Id;
  Root->Session = S;
  Root->Cancel = std::move(Cancel);
  if (std::function<void()> Obs = MakeObserver(S))
    Sched.setSessionObserver(*S, std::move(Obs));
  check::declareTaskEffects(Root, check::effectMask(E));
  obs::count(obs::Event::SessionsSubmitted);
  Sched.schedule(Root);
  return S;
}

/// Finalizes a quiescent session: reaps leftovers, resolves the fault (a
/// recorded fault wins even if the root produced a value before a sibling
/// faulted; otherwise a valueless root is a deterministic deadlock),
/// applies the exit freeze, delivers the stats delta, and publishes the
/// outcome. Runs on the submitter (blocking runs) or the Runtime's
/// finalizer thread (async submissions) - never under a park-site lock.
template <typename R>
void finalizeSession(Scheduler &Sched, SessionState &S, SessionChannel<R> &Ch,
                     const SessionOptions &Opts) {
  size_t Leftover = Sched.finishSession(S);
  std::optional<Fault> Flt = Sched.takeSessionFault(S);
  if (!Flt && !Ch.Slot.produced()) {
    Flt = makeDeadlockFault(Leftover, S.Id);
    obs::count(obs::Event::FaultsRaised); // Not routed via raiseFault.
  }
  if (Flt)
    obs::count(obs::Event::FaultsContained);
  if (Opts.StatsOut)
    *Opts.StatsOut = Sched.sessionStats(S);
  ParOutcome<R> Out = [&]() -> ParOutcome<R> {
    if constexpr (std::is_void_v<R>) {
      assert(!Opts.FreezeOnExit &&
             "FreezeOnExit requires the body to return an LVar handle");
      if (Flt)
        return ParOutcome<void>::failure(std::move(*Flt));
      return ParOutcome<void>::success();
    } else {
      if (Flt)
        return ParOutcome<R>::failure(std::move(*Flt));
      if constexpr (requires { (*Ch.Slot.Value)->markFrozen(); }) {
        // The session is fully quiescent: freezing here cannot race a put.
        if (Opts.FreezeOnExit)
          (*Ch.Slot.Value)->markFrozen();
      } else {
        assert(!Opts.FreezeOnExit &&
               "FreezeOnExit requires the body to return an LVar handle");
      }
      return ParOutcome<R>::success(std::move(*Ch.Slot.Value));
    }
  }();
  completeChannel(Ch, std::move(Out));
  obs::count(obs::Event::SessionsCompleted);
  if (Ch.SubmitNanos)
    obs::addSessionLatencyNanos(Ch.DoneNanos - Ch.SubmitNanos);
}

/// Publishes a deterministic rejection outcome without opening a session.
template <typename R>
void rejectChannel(SessionChannel<R> &Ch, const char *Reason) {
  obs::count(obs::Event::SessionsRejected);
  completeChannel(Ch, ParOutcome<R>::failure(makeRejectedFault(Reason)));
}

/// Blocking session driver on an arbitrary scheduler: launch, wait on the
/// session's own quiesce scope, finalize inline. The deprecated
/// RunOptions::Borrowed shim funnels here; Runtime::run wraps it with
/// admission.
template <EffectSet E, typename F>
auto runSessionOn(Scheduler &Sched, F Body, const SessionOptions &Opts) {
  using RetPar = std::invoke_result_t<F, ParCtx<E>>;
  using R = typename ParValue<RetPar>::type;
  auto Ch = std::make_shared<SessionChannel<R>>();
  Ch->SubmitNanos = nowNanos();
  std::shared_ptr<SessionState> S = launchSession<E, R>(
      Sched, std::move(Body), *Ch,
      [](const std::shared_ptr<SessionState> &) {
        return std::function<void()>();
      });
  Sched.waitSessionQuiescent(*S);
  finalizeSession<R>(Sched, *S, *Ch, Opts);
  return std::move(*Ch->Outcome);
}

} // namespace detail

/// Handle to an asynchronously submitted session's eventual outcome.
/// Copyable (all copies share one channel); get() consumes the outcome,
/// so exactly one consumer should call it.
template <typename R> class SessionFuture {
public:
  SessionFuture() = default;

  /// False only for default-constructed futures.
  bool valid() const { return Ch != nullptr; }

  /// True once the outcome is available (get() will not block).
  bool ready() const {
    std::lock_guard<std::mutex> Lock(Ch->Mutex);
    return Ch->Outcome.has_value();
  }

  /// Blocks until the outcome is available.
  void wait() const {
    std::unique_lock<std::mutex> Lock(Ch->Mutex);
    Ch->CV.wait(Lock, [this] { return Ch->Outcome.has_value(); });
  }

  /// Blocks until the session completes and moves its outcome out (call
  /// once; composes with ParOutcome exactly like tryRunPar's return).
  ParOutcome<R> get() {
    std::unique_lock<std::mutex> Lock(Ch->Mutex);
    Ch->CV.wait(Lock, [this] { return Ch->Outcome.has_value(); });
    assert(Ch->Outcome.has_value() && "SessionFuture::get() consumed twice");
    ParOutcome<R> Out = std::move(*Ch->Outcome);
    Ch->Outcome.reset();
    return Out;
  }

  /// The session's id (0 for sessions rejected before admission).
  uint64_t sessionId() const {
    std::lock_guard<std::mutex> Lock(Ch->Mutex);
    return Ch->SessionId;
  }

  /// Submit-to-outcome latency; 0 until the outcome is published.
  uint64_t latencyNanos() const {
    std::lock_guard<std::mutex> Lock(Ch->Mutex);
    return Ch->DoneNanos ? Ch->DoneNanos - Ch->SubmitNanos : 0;
  }

private:
  friend class Runtime;
  explicit SessionFuture(std::shared_ptr<detail::SessionChannel<R>> C)
      : Ch(std::move(C)) {}
  std::shared_ptr<detail::SessionChannel<R>> Ch;
};

/// The multi-tenant service runtime; see file comment.
class Runtime {
public:
  explicit Runtime(RuntimeConfig Config = RuntimeConfig());
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// The shared worker pool (for stats(), trace(), callerBatchIndex()).
  Scheduler &scheduler() { return Sched; }
  unsigned numWorkers() const { return Sched.numWorkers(); }

  // --- Blocking submission -----------------------------------------------

  /// Runs \p Body as one session on the shared pool, blocking the calling
  /// thread until its outcome (value or contained Fault) is available.
  /// Pure sessions only - the runPar discipline.
  template <EffectSet E = Eff::Det, typename F>
  [[nodiscard]] auto run(F Body, const SessionOptions &Opts = {}) {
    static_assert(noFreeze(E) && noIO(E),
                  "Runtime::run requires NoFreeze and NoIO; use runIO or "
                  "runThenFreeze");
    return runSession<E>(std::move(Body), Opts);
  }

  /// Blocking run without the purity restriction (quasi-deterministic
  /// freezes and IO-bit operations allowed).
  template <EffectSet E = Eff::FullIO, typename F>
  [[nodiscard]] auto runIO(F Body, const SessionOptions &Opts = {}) {
    return runSession<E>(std::move(Body), Opts);
  }

  /// Blocking run that freezes the returned LVar handle on the way out
  /// (the always-deterministic runParThenFreeze pattern).
  template <EffectSet E = Eff::Det, typename F>
  [[nodiscard]] auto runThenFreeze(F Body, SessionOptions Opts = {}) {
    static_assert(noFreeze(E) && noIO(E),
                  "the computation under runThenFreeze must not freeze "
                  "explicitly");
    Opts.FreezeOnExit = true;
    return runSession<E>(std::move(Body), Opts);
  }

  // --- Asynchronous submission -------------------------------------------

  /// Submits \p Body as one session and returns immediately; the session
  /// runs concurrently with the caller and with other sessions on the
  /// pool. The future's get() yields the same ParOutcome run() would.
  template <EffectSet E = Eff::Det, typename F>
  [[nodiscard]] auto submit(F Body, const SessionOptions &Opts = {}) {
    static_assert(noFreeze(E) && noIO(E),
                  "Runtime::submit requires NoFreeze and NoIO; use "
                  "submitIO");
    return submitSession<E>(std::move(Body), Opts);
  }

  /// Async submission without the purity restriction.
  template <EffectSet E = Eff::FullIO, typename F>
  [[nodiscard]] auto submitIO(F Body, const SessionOptions &Opts = {}) {
    return submitSession<E>(std::move(Body), Opts);
  }

  /// Blocks until every submitted session has been finalized and the
  /// admission queue is empty.
  void drain();

  // --- Unchecked front doors ---------------------------------------------
  // The effect level is the caller's responsibility here; the checked
  // wrappers above and the deprecated RunOptions shims (src/core/RunPar.h)
  // funnel into these.

  template <EffectSet E, typename F>
  auto runSession(F Body, const SessionOptions &Opts) {
    using RetPar = std::invoke_result_t<F, ParCtx<E>>;
    using R = typename detail::ParValue<RetPar>::type;
    if (const char *Reason = acquireSlotOrVeto(Opts.Explore)) {
      obs::count(obs::Event::SessionsRejected);
      return ParOutcome<R>::failure(detail::makeRejectedFault(Reason));
    }
    auto Out = detail::runSessionOn<E>(Sched, std::move(Body), Opts);
    releaseSlot();
    return Out;
  }

  template <EffectSet E, typename F>
  auto submitSession(F Body, const SessionOptions &Opts) {
    using RetPar = std::invoke_result_t<F, ParCtx<E>>;
    using R = typename detail::ParValue<RetPar>::type;
    auto Ch = std::make_shared<detail::SessionChannel<R>>();
    Ch->SubmitNanos = nowNanos();
    SessionFuture<R> Fut(Ch);
    if (Sched.exploreCtl() || Opts.Explore) {
      // Explore-mode pools have no worker threads: the session executes
      // inline on the submitting thread, exclusively (acquireSlotOrVeto
      // rejects rather than blocks when the pool is busy).
      if (const char *Reason = acquireSlotOrVeto(Opts.Explore)) {
        detail::rejectChannel(*Ch, Reason);
        return Fut;
      }
      auto NoObserver = [](const std::shared_ptr<SessionState> &) {
        return std::function<void()>();
      };
      std::shared_ptr<SessionState> S =
          detail::launchSession<E, R>(Sched, std::move(Body), *Ch, NoObserver);
      Sched.waitSessionQuiescent(*S);
      detail::finalizeSession<R>(Sched, *S, *Ch, Opts);
      releaseSlot();
      return Fut;
    }
    // Deferred launch closure: runs now if a slot is free, or later from
    // the finalizer thread when one frees up. The quiescence observer
    // only enqueues the typed finalize closure (it can fire under a
    // park-site lock); the finalizer thread does the heavy lifting.
    SessionOptions SOpts = Opts;
    auto Launch = [this, Ch, SOpts, Body = std::move(Body)]() mutable {
      detail::launchSession<E, R>(
          Sched, std::move(Body), *Ch,
          [this, Ch, SOpts](const std::shared_ptr<SessionState> &S) {
            auto Fin = [this, Ch, SOpts, S] {
              detail::finalizeSession<R>(Sched, *S, *Ch, SOpts);
            };
            return std::function<void()>(
                [this, Fin] { enqueueCompletion(Fin); });
          });
    };
    routeSubmission(std::move(Launch));
    return Fut;
  }

private:
  /// Admission front door. On a threaded pool: blocks until a session
  /// slot is free (honoring MaxActiveSessions), claims it, and returns
  /// nullptr. On an explore-mode pool: claims exclusive use if the pool
  /// is idle, else returns the deterministic rejection reason (controlled
  /// sessions must own every scheduling decision; blocking behind other
  /// tenants would hand decisions to OS timing). Also rejects sessions
  /// demanding a controller the pool was not built with. A nullptr
  /// return means the caller owns one slot and must releaseSlot().
  const char *acquireSlotOrVeto(explore::ScheduleCtl *WantExplore);
  /// Frees one slot; launches the next queued submission if one fits.
  void releaseSlot();
  /// Launches now (slot free) or queues the launch closure FIFO.
  void routeSubmission(std::function<void()> Launch);
  /// Called by session observers: queue a finalize closure for the
  /// finalizer thread. Safe under park-site locks (enqueue only).
  void enqueueCompletion(std::function<void()> Fin);
  void finalizerLoop();
  /// Caller must hold Mu.
  void ensureFinalizerLocked();

  Scheduler Sched;
  const unsigned MaxActive;

  std::mutex Mu;
  /// Signalled on slot release (blocking admission, drain()).
  std::condition_variable SlotCV;
  /// Wakes the finalizer thread (completions, shutdown).
  std::condition_variable WorkCV;
  /// Sessions admitted but not yet finalized.
  unsigned Active = 0;
  /// Launch closures waiting for a slot (FIFO admission).
  std::deque<std::function<void()>> AdmitQueue;
  /// Finalize closures for quiescent sessions.
  std::deque<std::function<void()>> DoneQueue;
  bool ShuttingDown = false;
  bool FinalizerStarted = false;
  std::thread Finalizer;
};

} // namespace service
} // namespace lvish

#endif // LVISH_SERVICE_RUNTIME_H
