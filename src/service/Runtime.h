//===- Runtime.h - Multi-tenant service runtime -----------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service runtime: one long-lived worker pool (a Scheduler) that
/// multiplexes many concurrent deterministic sessions - the ROADMAP's
/// "service handling traffic" shape. The paper's determinism guarantee is
/// per-session (the `s` type parameter); the Runtime preserves it per
/// tenant while sharing workers:
///
///   * each session gets its own SessionState: its own quiesce scope (a
///     session quiescing never waits on a sibling's work), its own fault
///     containment (a fault cancels and drains only its session), and its
///     own stats delta;
///   * admission control bounds concurrently active sessions
///     (RuntimeConfig::MaxActiveSessions); excess submissions queue FIFO;
///   * fairness: session roots and yields land in per-session inject
///     queues drained round-robin, and workers periodically service those
///     queues ahead of their own deques (SchedulerConfig::FairnessStride).
///
/// Submission API:
///
///   Runtime RT({.Sched = {.NumWorkers = 8}});
///   SessionFuture<int> F = RT.submit([](ParCtx<Eff::Det> Ctx) -> Par<int>
///     { ... });                        // async
///   ParOutcome<int> O = F.get();       // value or contained Fault
///   ParOutcome<int> P = RT.run(Body);  // blocking, same outcome type
///
/// runPar / tryRunPar* (src/core/RunPar.h) are one-shot wrappers that spin
/// up a private Runtime (the pre-Runtime borrowed-scheduler surface was
/// removed in their favor).
///
/// Completion pipeline: a session's last pending-count decrement can
/// happen under a park-site lock, so the quiescence observer only enqueues
/// the session onto the Runtime's completion queue; a lazily started
/// finalizer thread performs finishSession / fault take / exit freeze /
/// future fulfillment, then admits the next queued session.
///
/// Explore-mode sessions (controlled scheduling, DESIGN.md Section 12)
/// must own every scheduling decision, so they are only honored on a
/// Runtime constructed with that controller and only while it is
/// otherwise idle; anything else is rejected deterministically with a
/// FaultCode::SessionRejected outcome rather than silently sharing the
/// pool.
///
/// Robustness layer (DESIGN.md Section 16): per-session step budgets
/// (SessionOptions::MaxSteps, counted in scheduler decisions so budget
/// kills replay bit-for-bit), wall-clock admission deadlines and overload
/// shedding (RuntimeConfig::SubmitDeadlineNanos / MaxQueuedSessions,
/// resolving futures with deterministic DeadlineExceeded / Shed faults
/// instead of running), graceful stop (Runtime::drain, racing submits get
/// RuntimeStopping), and a seeded-jitter RetryPolicy helper
/// (src/service/RetryPolicy.h) for callers that want to resubmit.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SERVICE_RUNTIME_H
#define LVISH_SERVICE_RUNTIME_H

#include "src/core/Par.h"
#include "src/obs/SchedulerStats.h"
#include "src/obs/Telemetry.h"
#include "src/sched/Scheduler.h"
#include "src/sched/SessionState.h"
#include "src/support/Fault.h"
#include "src/support/Timer.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace lvish {
namespace service {

/// Runtime construction parameters.
struct RuntimeConfig {
  /// The shared worker pool's configuration (worker count, fairness
  /// stride, tracing, explore controller).
  SchedulerConfig Sched{};
  /// Admission bound: at most this many sessions active (launched, not
  /// yet finalized) at once; further submissions queue FIFO and launch as
  /// slots free up. 0 = unlimited.
  unsigned MaxActiveSessions = 0;
  /// Overload shedding: with every slot busy, at most this many async
  /// submissions wait in the FIFO admission queue; one more resolves its
  /// future immediately with FaultCode::Shed instead of queueing.
  /// 0 = unbounded queue (no shedding). Only meaningful together with
  /// MaxActiveSessions.
  unsigned MaxQueuedSessions = 0;
  /// Wall-clock admission deadline in nanoseconds. An async submission
  /// still queued when a slot finally frees resolves with
  /// FaultCode::DeadlineExceeded if it waited longer than this; a
  /// blocking run() gives up waiting for a slot after this long. The
  /// deadline governs ADMISSION only - once a session launches it runs to
  /// completion (bound execution with DefaultSessionBudget instead; wall
  /// clock inside the deterministic core would break replay).
  /// 0 = no deadline.
  uint64_t SubmitDeadlineNanos = 0;
  /// Step budget applied to every session whose SessionOptions::MaxSteps
  /// is 0: the per-tenant guard against sessions that never quiesce.
  /// 0 = unlimited.
  uint64_t DefaultSessionBudget = 0;
};

/// Per-session options, the session-scoped successor of RunOptions.
struct SessionOptions {
  /// After quiescence, markFrozen() the returned LVar handle - the
  /// always-deterministic freeze-on-the-way-out of runParThenFreeze.
  /// Requires the body to return a (shared_ptr to an) LVar structure.
  bool FreezeOnExit = false;
  /// When non-null, receives this session's scheduler-stats DELTA (the
  /// snapshot at session start subtracted; see Scheduler::sessionStats).
  /// Exact for sessions that do not overlap others on the pool. Must stay
  /// alive until the session's outcome is available.
  SchedulerStats *StatsOut = nullptr;
  /// When non-null, this session demands controlled scheduling under this
  /// controller. Honored only when the Runtime itself was constructed in
  /// explore mode with the SAME controller and is idle; otherwise the
  /// session is rejected with FaultCode::SessionRejected (an explored
  /// session must own every scheduling decision, which a busy shared pool
  /// cannot grant).
  explore::ScheduleCtl *Explore = nullptr;
  /// Deterministic step budget: the session is killed with
  /// FaultCode::BudgetExceeded after this many scheduler decisions
  /// (task resumes). Counted in steps rather than wall clock so the kill
  /// point - code, pedigree, session id - is bit-for-bit reproducible
  /// under RunOptions::Explore and lvx1: replay. 0 = use the Runtime's
  /// RuntimeConfig::DefaultSessionBudget (which defaults to unlimited).
  uint64_t MaxSteps = 0;
};

namespace detail {

template <typename P> struct ParValue;
template <typename T> struct ParValue<Par<T>> {
  using type = T;
};

/// Where the session root deposits its result before finalization.
template <typename R> struct ResultSlot {
  std::optional<R> Value;
  bool produced() const { return Value.has_value(); }
};
template <> struct ResultSlot<void> {
  bool Done = false;
  bool produced() const { return Done; }
};

/// Shared state between a SessionFuture and the Runtime's finalizer: the
/// result slot the root writes, the outcome, and the latency timestamps.
/// Heap-shared so the root coroutine's out-pointer stays valid however
/// long the session outlives the submitting frame.
template <typename R> struct SessionChannel {
  std::mutex Mutex;
  std::condition_variable CV;
  std::optional<ParOutcome<R>> Outcome;
  /// Set by the first SessionFuture::get(): a second get() returns a
  /// deterministic FutureConsumed fault instead of blocking forever on an
  /// Outcome that will never re-appear.
  bool Consumed = false;
  ResultSlot<R> Slot;
  uint64_t SessionId = 0;
  uint64_t SubmitNanos = 0;
  uint64_t DoneNanos = 0;
};

/// Root coroutine: materializes the session context and funnels the
/// result out to the channel (which outlives the session).
template <EffectSet E, typename F, typename R>
Par<void> rootBody(F Body, std::optional<R> *Out) {
  ParCtx<E> Ctx = lvish::detail::CtxAccess::make<E>(Scheduler::currentTask());
  *Out = co_await Body(Ctx);
}

template <EffectSet E, typename F>
Par<void> rootBodyVoid(F Body, bool *Done) {
  ParCtx<E> Ctx = lvish::detail::CtxAccess::make<E>(Scheduler::currentTask());
  co_await Body(Ctx);
  *Done = true;
}

/// Builds the deadlock Fault for a session whose root never produced a
/// value and never recorded a fault. \p Leftover counts every task reaped
/// at quiescence, *including* the blocked root, so Leftover <= 1 means the
/// scheduler fully drained (only the root was stuck) and Leftover > 1
/// means other blocked tasks leaked alongside it - two different bugs in
/// user code, hence two Fault codes.
inline Fault makeDeadlockFault(size_t Leftover, uint64_t SessionId) {
  Fault F;
  F.Code = Leftover <= 1 ? FaultCode::DeadlockDrained
                         : FaultCode::DeadlockLeakedTasks;
  F.SessionId = SessionId;
  F.Worker = -1;       // Detected on the session thread, not a worker.
  F.Pedigree.clear();  // The root's pedigree is the empty path.
  std::string Msg = "runPar: deterministic deadlock (the main computation "
                    "blocked forever; ";
  if (Leftover <= 1)
    Msg += "scheduler drained: no other task remained";
  else
    Msg += std::to_string(Leftover - 1) + " other blocked task(s) leaked";
  Msg += ") [code=";
  Msg += faultCodeName(F.Code);
  Msg += ", session=" + std::to_string(SessionId) + ", pedigree=<root>]";
  F.Message = std::move(Msg);
  return F;
}

/// The deterministic admission-refusal Fault family (session_rejected,
/// shed, deadline_exceeded, runtime_stopping). Message depends only on
/// \p Code and \p Reason, so repeated refusals of the same shape are
/// bit-identical.
inline Fault makeAdmissionFault(FaultCode Code, const char *Reason) {
  Fault F;
  F.Code = Code;
  F.Worker = -1;
  F.Pedigree.clear();
  F.Message = std::string("Runtime: session rejected (") + Reason +
              ") [code=" + faultCodeName(Code) + ", pedigree=<root>]";
  return F;
}

/// Legacy spelling for the plain SessionRejected refusal.
inline Fault makeRejectedFault(const char *Reason) {
  return makeAdmissionFault(FaultCode::SessionRejected, Reason);
}

/// The deterministic double-consume Fault for SessionFuture::get(); fires
/// in NDEBUG builds too (the old assert vanished there and a second get()
/// blocked forever).
inline Fault makeConsumedFault(uint64_t SessionId) {
  Fault F;
  F.Code = FaultCode::FutureConsumed;
  F.SessionId = SessionId;
  F.Worker = -1;
  F.Pedigree.clear();
  F.Message = "SessionFuture: get() called twice (the outcome was already "
              "consumed) [code=future_consumed, session=" +
              std::to_string(SessionId) + ", pedigree=<root>]";
  return F;
}

/// Bumps the refusal counters for \p Code: every refusal counts as
/// SessionsRejected, and the shed / deadline flavors also count their own
/// dedicated event.
inline void countRejection(FaultCode Code) {
  obs::count(obs::Event::SessionsRejected);
  if (Code == FaultCode::Shed)
    obs::count(obs::Event::SessionsShed);
  else if (Code == FaultCode::DeadlineExceeded)
    obs::count(obs::Event::DeadlineFaults);
}

/// Publishes \p Out on the channel and wakes future waiters.
template <typename R>
void completeChannel(SessionChannel<R> &Ch, ParOutcome<R> Out) {
  std::lock_guard<std::mutex> Lock(Ch.Mutex);
  Ch.DoneNanos = nowNanos();
  Ch.Outcome.emplace(std::move(Out));
  Ch.CV.notify_all();
}

/// Opens a session on \p Sched and schedules its root. \p MakeObserver is
/// invoked with the fresh SessionState and returns the quiescence
/// observer to install (or an empty function for blocking drivers that
/// wait on the session CV instead). Ordering matters: beginSession
/// snapshots the stats baseline BEFORE the root task is created, so the
/// root's own creation lands inside the session's delta.
template <EffectSet E, typename R, typename F, typename MakeObs>
std::shared_ptr<SessionState> launchSession(Scheduler &Sched, F Body,
                                            SessionChannel<R> &Ch,
                                            MakeObs MakeObserver,
                                            uint64_t StepBudget = 0) {
  auto Cancel = std::make_shared<CancelNode>();
  std::shared_ptr<SessionState> S = Sched.beginSession(Cancel);
  // Written before the root is scheduled: workers see the budget via the
  // schedule() handoff, never a torn value.
  S->StepBudget = StepBudget;
  {
    std::lock_guard<std::mutex> Lock(Ch.Mutex);
    Ch.SessionId = S->Id;
  }
  // GCC 12 discipline (see src/core/Par.h): bind the Par before install.
  Par<void> RootPar = [&]() -> Par<void> {
    if constexpr (std::is_void_v<R>)
      return rootBodyVoid<E>(std::move(Body), &Ch.Slot.Done);
    else
      return rootBody<E, F, R>(std::move(Body), &Ch.Slot.Value);
  }();
  Task *Root = lvish::detail::installTaskRoot(Sched, std::move(RootPar),
                                              /*Parent=*/nullptr);
  Sched.bindSessionRoot(Root, S, std::move(Cancel));
  if (std::function<void()> Obs = MakeObserver(S))
    Sched.setSessionObserver(*S, std::move(Obs));
  check::declareTaskEffects(Root, check::effectMask(E));
  obs::count(obs::Event::SessionsSubmitted);
  Sched.schedule(Root);
  return S;
}

/// Finalizes a quiescent session: reaps leftovers, resolves the fault (a
/// recorded fault wins even if the root produced a value before a sibling
/// faulted; otherwise a valueless root is a deterministic deadlock),
/// applies the exit freeze, delivers the stats delta, and publishes the
/// outcome. Runs on the submitter (blocking runs) or the Runtime's
/// finalizer thread (async submissions) - never under a park-site lock.
template <typename R>
void finalizeSession(Scheduler &Sched, SessionState &S, SessionChannel<R> &Ch,
                     const SessionOptions &Opts) {
  size_t Leftover = Sched.finishSession(S);
  std::optional<Fault> Flt = Sched.takeSessionFault(S);
  if (!Flt && !Ch.Slot.produced()) {
    Flt = makeDeadlockFault(Leftover, S.Id);
    obs::count(obs::Event::FaultsRaised); // Not routed via raiseFault.
  }
  if (Flt)
    obs::count(obs::Event::FaultsContained);
  if (Opts.StatsOut)
    *Opts.StatsOut = Sched.sessionStats(S);
  ParOutcome<R> Out = [&]() -> ParOutcome<R> {
    if constexpr (std::is_void_v<R>) {
      assert(!Opts.FreezeOnExit &&
             "FreezeOnExit requires the body to return an LVar handle");
      if (Flt)
        return ParOutcome<void>::failure(std::move(*Flt));
      return ParOutcome<void>::success();
    } else {
      if (Flt)
        return ParOutcome<R>::failure(std::move(*Flt));
      if constexpr (requires { (*Ch.Slot.Value)->markFrozen(); }) {
        // The session is fully quiescent: freezing here cannot race a put.
        if (Opts.FreezeOnExit)
          (*Ch.Slot.Value)->markFrozen();
      } else {
        assert(!Opts.FreezeOnExit &&
               "FreezeOnExit requires the body to return an LVar handle");
      }
      return ParOutcome<R>::success(std::move(*Ch.Slot.Value));
    }
  }();
  completeChannel(Ch, std::move(Out));
  obs::count(obs::Event::SessionsCompleted);
  if (Ch.SubmitNanos)
    obs::addSessionLatencyNanos(Ch.DoneNanos - Ch.SubmitNanos);
}

/// Publishes a deterministic refusal outcome without opening a session.
/// \p Code selects the refusal flavor (SessionRejected, Shed,
/// DeadlineExceeded, RuntimeStopping) and its counters.
template <typename R>
void rejectChannel(SessionChannel<R> &Ch, FaultCode Code,
                   const char *Reason) {
  countRejection(Code);
  completeChannel(Ch, ParOutcome<R>::failure(makeAdmissionFault(Code, Reason)));
}

/// Blocking session driver on an arbitrary scheduler: launch, wait on the
/// session's own quiesce scope, finalize inline. Runtime::run wraps it
/// with admission.
template <EffectSet E, typename F>
auto runSessionOn(Scheduler &Sched, F Body, const SessionOptions &Opts) {
  using RetPar = std::invoke_result_t<F, ParCtx<E>>;
  using R = typename ParValue<RetPar>::type;
  auto Ch = std::make_shared<SessionChannel<R>>();
  Ch->SubmitNanos = nowNanos();
  std::shared_ptr<SessionState> S = launchSession<E, R>(
      Sched, std::move(Body), *Ch,
      [](const std::shared_ptr<SessionState> &) {
        return std::function<void()>();
      },
      Opts.MaxSteps);
  Sched.waitSessionQuiescent(*S);
  finalizeSession<R>(Sched, *S, *Ch, Opts);
  return std::move(*Ch->Outcome);
}

} // namespace detail

/// Handle to an asynchronously submitted session's eventual outcome.
/// Copyable (all copies share one channel); get() consumes the outcome,
/// so exactly one consumer should call it.
template <typename R> class SessionFuture {
public:
  SessionFuture() = default;

  /// False only for default-constructed futures.
  bool valid() const { return Ch != nullptr; }

  /// True once the outcome is available (get() will not block). Stays
  /// true after the outcome has been consumed.
  bool ready() const {
    std::lock_guard<std::mutex> Lock(Ch->Mutex);
    return Ch->Outcome.has_value() || Ch->Consumed;
  }

  /// Blocks until the outcome is available.
  void wait() const {
    std::unique_lock<std::mutex> Lock(Ch->Mutex);
    Ch->CV.wait(Lock,
                [this] { return Ch->Outcome.has_value() || Ch->Consumed; });
  }

  /// Blocks until the session completes and moves its outcome out (call
  /// once; composes with ParOutcome exactly like tryRunPar's return). A
  /// second call does not block: it returns a deterministic
  /// FaultCode::FutureConsumed outcome - in NDEBUG builds too.
  ParOutcome<R> get() {
    std::unique_lock<std::mutex> Lock(Ch->Mutex);
    Ch->CV.wait(Lock,
                [this] { return Ch->Outcome.has_value() || Ch->Consumed; });
    if (!Ch->Outcome.has_value())
      return ParOutcome<R>::failure(detail::makeConsumedFault(Ch->SessionId));
    Ch->Consumed = true;
    ParOutcome<R> Out = std::move(*Ch->Outcome);
    Ch->Outcome.reset();
    return Out;
  }

  /// The session's id (0 for sessions rejected before admission).
  uint64_t sessionId() const {
    std::lock_guard<std::mutex> Lock(Ch->Mutex);
    return Ch->SessionId;
  }

  /// Submit-to-outcome latency; 0 until the outcome is published.
  uint64_t latencyNanos() const {
    std::lock_guard<std::mutex> Lock(Ch->Mutex);
    return Ch->DoneNanos ? Ch->DoneNanos - Ch->SubmitNanos : 0;
  }

private:
  friend class Runtime;
  explicit SessionFuture(std::shared_ptr<detail::SessionChannel<R>> C)
      : Ch(std::move(C)) {}
  std::shared_ptr<detail::SessionChannel<R>> Ch;
};

/// The multi-tenant service runtime; see file comment.
class Runtime {
public:
  explicit Runtime(RuntimeConfig Config = RuntimeConfig());
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// The shared worker pool (for stats(), trace(), callerBatchIndex()).
  Scheduler &scheduler() { return Sched; }
  unsigned numWorkers() const { return Sched.numWorkers(); }

  // --- Blocking submission -----------------------------------------------

  /// Runs \p Body as one session on the shared pool, blocking the calling
  /// thread until its outcome (value or contained Fault) is available.
  /// Pure sessions only - the runPar discipline.
  template <EffectSet E = Eff::Det, typename F>
  [[nodiscard]] auto run(F Body, const SessionOptions &Opts = {}) {
    static_assert(noFreeze(E) && noIO(E),
                  "Runtime::run requires NoFreeze and NoIO; use runIO or "
                  "runThenFreeze");
    return runSession<E>(std::move(Body), Opts);
  }

  /// Blocking run without the purity restriction (quasi-deterministic
  /// freezes and IO-bit operations allowed).
  template <EffectSet E = Eff::FullIO, typename F>
  [[nodiscard]] auto runIO(F Body, const SessionOptions &Opts = {}) {
    return runSession<E>(std::move(Body), Opts);
  }

  /// Blocking run that freezes the returned LVar handle on the way out
  /// (the always-deterministic runParThenFreeze pattern).
  template <EffectSet E = Eff::Det, typename F>
  [[nodiscard]] auto runThenFreeze(F Body, SessionOptions Opts = {}) {
    static_assert(noFreeze(E) && noIO(E),
                  "the computation under runThenFreeze must not freeze "
                  "explicitly");
    Opts.FreezeOnExit = true;
    return runSession<E>(std::move(Body), Opts);
  }

  // --- Asynchronous submission -------------------------------------------

  /// Submits \p Body as one session and returns immediately; the session
  /// runs concurrently with the caller and with other sessions on the
  /// pool. The future's get() yields the same ParOutcome run() would.
  template <EffectSet E = Eff::Det, typename F>
  [[nodiscard]] auto submit(F Body, const SessionOptions &Opts = {}) {
    static_assert(noFreeze(E) && noIO(E),
                  "Runtime::submit requires NoFreeze and NoIO; use "
                  "submitIO");
    return submitSession<E>(std::move(Body), Opts);
  }

  /// Async submission without the purity restriction.
  template <EffectSet E = Eff::FullIO, typename F>
  [[nodiscard]] auto submitIO(F Body, const SessionOptions &Opts = {}) {
    return submitSession<E>(std::move(Body), Opts);
  }

  /// Graceful stop: closes admission (racing and future submit/run calls
  /// resolve deterministically with FaultCode::RuntimeStopping), rejects
  /// everything still waiting in the admission queue with the same code,
  /// and blocks until every already-active session has been finalized.
  /// Idempotent, and safe to race with submit from other threads. The
  /// destructor drains; a Runtime stays stopped once drained.
  void drain();

  /// Blocks until every submitted session has been finalized and the
  /// admission queue is empty, WITHOUT closing admission - the
  /// wait-for-idle half of the old drain(). Callers that keep submitting
  /// afterwards (round-based benches, tests) want this, not drain().
  void awaitIdle();

  // --- Unchecked front doors ---------------------------------------------
  // The effect level is the caller's responsibility here; the checked
  // wrappers above and the one-shot runPar* wrappers (src/core/RunPar.h)
  // funnel into these.

  template <EffectSet E, typename F>
  auto runSession(F Body, const SessionOptions &Opts) {
    using RetPar = std::invoke_result_t<F, ParCtx<E>>;
    using R = typename detail::ParValue<RetPar>::type;
    if (AdmitVeto V = acquireSlotOrVeto(Opts.Explore); V.Reason) {
      detail::countRejection(V.Code);
      return ParOutcome<R>::failure(detail::makeAdmissionFault(V.Code,
                                                              V.Reason));
    }
    SessionOptions Eff = Opts;
    if (!Eff.MaxSteps)
      Eff.MaxSteps = DefaultBudget;
    auto Out = detail::runSessionOn<E>(Sched, std::move(Body), Eff);
    releaseSlot();
    return Out;
  }

  template <EffectSet E, typename F>
  auto submitSession(F Body, const SessionOptions &Opts) {
    using RetPar = std::invoke_result_t<F, ParCtx<E>>;
    using R = typename detail::ParValue<RetPar>::type;
    auto Ch = std::make_shared<detail::SessionChannel<R>>();
    Ch->SubmitNanos = nowNanos();
    SessionFuture<R> Fut(Ch);
    SessionOptions SOpts = Opts;
    if (!SOpts.MaxSteps)
      SOpts.MaxSteps = DefaultBudget;
    if (Sched.exploreCtl() || Opts.Explore) {
      // Explore-mode pools have no worker threads: the session executes
      // inline on the submitting thread, exclusively (acquireSlotOrVeto
      // rejects rather than blocks when the pool is busy).
      if (AdmitVeto V = acquireSlotOrVeto(Opts.Explore); V.Reason) {
        detail::rejectChannel(*Ch, V.Code, V.Reason);
        return Fut;
      }
      auto NoObserver = [](const std::shared_ptr<SessionState> &) {
        return std::function<void()>();
      };
      std::shared_ptr<SessionState> S = detail::launchSession<E, R>(
          Sched, std::move(Body), *Ch, NoObserver, SOpts.MaxSteps);
      Sched.waitSessionQuiescent(*S);
      detail::finalizeSession<R>(Sched, *S, *Ch, SOpts);
      releaseSlot();
      return Fut;
    }
    // Deferred launch closure: runs now if a slot is free, or later from
    // the finalizer thread when one frees up. The quiescence observer
    // only enqueues the typed finalize closure (it can fire under a
    // park-site lock); the finalizer thread does the heavy lifting. The
    // paired Reject closure resolves the future deterministically when
    // admission refuses the session instead (shed, deadline, stopping).
    QueuedLaunch Q;
    Q.Launch = [this, Ch, SOpts, Body = std::move(Body)]() mutable {
      detail::launchSession<E, R>(
          Sched, std::move(Body), *Ch,
          [this, Ch, SOpts](const std::shared_ptr<SessionState> &S) {
            auto Fin = [this, Ch, SOpts, S] {
              detail::finalizeSession<R>(Sched, *S, *Ch, SOpts);
            };
            return std::function<void()>(
                [this, Fin] { enqueueCompletion(Fin); });
          },
          SOpts.MaxSteps);
    };
    Q.Reject = [Ch](FaultCode Code, const char *Reason) {
      detail::rejectChannel(*Ch, Code, Reason);
    };
    routeSubmission(std::move(Q));
    return Fut;
  }

private:
  /// One queued async submission: the deferred launch closure plus the
  /// typed rejection closure that resolves its future when admission
  /// refuses it (shed / deadline / stopping) instead of launching.
  struct QueuedLaunch {
    std::function<void()> Launch;
    std::function<void(FaultCode, const char *)> Reject;
    /// nowNanos() at enqueue, for the lazy SubmitDeadlineNanos check.
    uint64_t EnqueueNanos = 0;
  };

  /// Admission verdict: Reason == nullptr means admitted (the caller owns
  /// one slot and must releaseSlot()); otherwise Code/Reason describe the
  /// deterministic refusal.
  struct AdmitVeto {
    FaultCode Code = FaultCode::SessionRejected;
    const char *Reason = nullptr;
  };

  /// Admission front door for blocking runs. On a threaded pool: waits
  /// until a session slot is free (honoring MaxActiveSessions, giving up
  /// after SubmitDeadlineNanos with DeadlineExceeded, and aborting with
  /// RuntimeStopping if drain() closes admission meanwhile). On an
  /// explore-mode pool: claims exclusive use if the pool is idle, else
  /// refuses deterministically (controlled sessions must own every
  /// scheduling decision; blocking behind other tenants would hand
  /// decisions to OS timing). Also refuses sessions demanding a
  /// controller the pool was not built with.
  AdmitVeto acquireSlotOrVeto(explore::ScheduleCtl *WantExplore);
  /// Frees one slot; launches the next in-deadline queued submission.
  void releaseSlot();
  /// Launches now (slot free), queues FIFO, or refuses (stopping / shed).
  void routeSubmission(QueuedLaunch Q);
  /// Caller must hold Mu. Pops admission-queue entries while a slot is
  /// free: expired ones (past SubmitDeadlineNanos) are moved to
  /// \p Expired for the caller to reject OUTSIDE Mu; the first in-deadline
  /// entry claims the slot and its launch closure is returned.
  std::function<void()> admitNextLocked(std::vector<QueuedLaunch> &Expired);
  /// Called by session observers: queue a finalize closure for the
  /// finalizer thread. Safe under park-site locks (enqueue only).
  void enqueueCompletion(std::function<void()> Fin);
  void finalizerLoop();
  /// Caller must hold Mu.
  void ensureFinalizerLocked();

  Scheduler Sched;
  const unsigned MaxActive;
  const unsigned MaxQueued;
  const uint64_t DeadlineNanos;
  const uint64_t DefaultBudget;

  std::mutex Mu;
  /// Signalled on slot release (blocking admission, drain()).
  std::condition_variable SlotCV;
  /// Wakes the finalizer thread (completions, shutdown).
  std::condition_variable WorkCV;
  /// Sessions admitted but not yet finalized.
  unsigned Active = 0;
  /// Async submissions waiting for a slot (FIFO admission).
  std::deque<QueuedLaunch> AdmitQueue;
  /// Finalize closures for quiescent sessions.
  std::deque<std::function<void()>> DoneQueue;
  /// Set by drain(): admission is closed for good.
  bool Stopping = false;
  bool ShuttingDown = false;
  bool FinalizerStarted = false;
  std::thread Finalizer;
};

} // namespace service
} // namespace lvish

#endif // LVISH_SERVICE_RUNTIME_H
