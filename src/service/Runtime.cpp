//===- Runtime.cpp - Multi-tenant service runtime -------------------------===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
//
// The untemplated half of the Runtime: admission control (slot
// accounting, FIFO queueing with deadline/shed refusals, explore
// exclusivity, graceful stop) and the finalizer thread that turns
// quiescence observations into session outcomes.
//
// Lock discipline: Mu guards only the Runtime's own bookkeeping (Active,
// the two queues, stop flags). Launch, finalize, AND reject closures
// always run with Mu RELEASED - launches re-enter the Scheduler
// (beginSession, schedule), a worker finishing the session's last task
// calls back into enqueueCompletion (which needs Mu), and reject closures
// take the session channel's own mutex.
//
//===----------------------------------------------------------------------===//

#include "src/service/Runtime.h"

#include <chrono>

using namespace lvish;
using namespace lvish::service;

namespace {
constexpr const char *DeadlineReason =
    "queued past the admission deadline (SubmitDeadlineNanos)";
constexpr const char *ShedReason =
    "admission queue full (MaxQueuedSessions overload shed)";
constexpr const char *StoppingReason =
    "the Runtime is draining and no longer admits sessions";
} // namespace

Runtime::Runtime(RuntimeConfig Config)
    : Sched(Config.Sched), MaxActive(Config.MaxActiveSessions),
      MaxQueued(Config.MaxQueuedSessions),
      DeadlineNanos(Config.SubmitDeadlineNanos),
      DefaultBudget(Config.DefaultSessionBudget) {}

Runtime::~Runtime() {
  drain();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
    WorkCV.notify_all();
  }
  if (Finalizer.joinable())
    Finalizer.join();
}

Runtime::AdmitVeto Runtime::acquireSlotOrVeto(
    explore::ScheduleCtl *WantExplore) {
  explore::ScheduleCtl *PoolCtl = Sched.exploreCtl();
  if (WantExplore && PoolCtl != WantExplore)
    return {FaultCode::SessionRejected,
            PoolCtl ? "session demands a different schedule controller than "
                      "the Runtime's"
                    : "explore-mode session on a Runtime without controlled "
                      "scheduling"};
  std::unique_lock<std::mutex> Lock(Mu);
  if (Stopping)
    return {FaultCode::RuntimeStopping, StoppingReason};
  if (PoolCtl) {
    if (Active > 0 || !AdmitQueue.empty() || !DoneQueue.empty())
      return {FaultCode::SessionRejected,
              "controlled-scheduling sessions need the Runtime to "
              "themselves and it is busy"};
    Active = 1;
    return {};
  }
  auto SlotFree = [this] {
    return Stopping || !MaxActive || Active < MaxActive;
  };
  if (DeadlineNanos) {
    if (!SlotCV.wait_for(Lock, std::chrono::nanoseconds(DeadlineNanos),
                         SlotFree))
      return {FaultCode::DeadlineExceeded,
              "no session slot freed within the admission deadline "
              "(SubmitDeadlineNanos)"};
  } else {
    SlotCV.wait(Lock, SlotFree);
  }
  if (Stopping)
    return {FaultCode::RuntimeStopping, StoppingReason};
  ++Active;
  return {};
}

std::function<void()> Runtime::admitNextLocked(
    std::vector<QueuedLaunch> &Expired) {
  while (!AdmitQueue.empty() && (!MaxActive || Active < MaxActive)) {
    if (DeadlineNanos &&
        nowNanos() - AdmitQueue.front().EnqueueNanos > DeadlineNanos) {
      Expired.push_back(std::move(AdmitQueue.front()));
      AdmitQueue.pop_front();
      continue;
    }
    std::function<void()> Launch = std::move(AdmitQueue.front().Launch);
    AdmitQueue.pop_front();
    ++Active;
    return Launch;
  }
  return nullptr;
}

void Runtime::releaseSlot() {
  std::function<void()> Next;
  std::vector<QueuedLaunch> Expired;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(Active > 0 && "releaseSlot without a held slot");
    --Active;
    Next = admitNextLocked(Expired);
    SlotCV.notify_all();
  }
  for (QueuedLaunch &Q : Expired)
    Q.Reject(FaultCode::DeadlineExceeded, DeadlineReason);
  if (Next)
    Next();
}

void Runtime::routeSubmission(QueuedLaunch Q) {
  FaultCode RefuseCode = FaultCode::SessionRejected;
  const char *RefuseReason = nullptr;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopping) {
      RefuseCode = FaultCode::RuntimeStopping;
      RefuseReason = StoppingReason;
    } else if (MaxActive && Active >= MaxActive) {
      if (MaxQueued && AdmitQueue.size() >= MaxQueued) {
        RefuseCode = FaultCode::Shed;
        RefuseReason = ShedReason;
      } else {
        ensureFinalizerLocked();
        Q.EnqueueNanos = nowNanos();
        AdmitQueue.push_back(std::move(Q));
        return;
      }
    } else {
      ensureFinalizerLocked();
      ++Active;
    }
  }
  if (RefuseReason)
    Q.Reject(RefuseCode, RefuseReason);
  else
    Q.Launch();
}

void Runtime::enqueueCompletion(std::function<void()> Fin) {
  // May run under a park-site lock (the session's last pending-count
  // decrement can happen inside TaskScope/LVar park bookkeeping), so this
  // must only enqueue - never touch the Scheduler.
  std::lock_guard<std::mutex> Lock(Mu);
  DoneQueue.push_back(std::move(Fin));
  WorkCV.notify_one();
}

void Runtime::ensureFinalizerLocked() {
  if (FinalizerStarted)
    return;
  FinalizerStarted = true;
  Finalizer = std::thread([this] { finalizerLoop(); });
}

void Runtime::finalizerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    WorkCV.wait(Lock, [this] { return ShuttingDown || !DoneQueue.empty(); });
    if (DoneQueue.empty()) {
      if (ShuttingDown)
        return;
      continue;
    }
    std::function<void()> Fin = std::move(DoneQueue.front());
    DoneQueue.pop_front();
    // The finalized session's slot stays held through Fin (finishSession,
    // fault take, outcome publication), so drain() cannot complete while
    // a finalization is mid-flight.
    Lock.unlock();
    Fin();
    std::function<void()> Next;
    std::vector<QueuedLaunch> Expired;
    Lock.lock();
    assert(Active > 0 && "finalized a session without a held slot");
    --Active;
    Next = admitNextLocked(Expired);
    SlotCV.notify_all();
    if (Next || !Expired.empty()) {
      Lock.unlock();
      for (QueuedLaunch &Q : Expired)
        Q.Reject(FaultCode::DeadlineExceeded, DeadlineReason);
      if (Next)
        Next();
      Lock.lock();
    }
  }
}

void Runtime::drain() {
  std::deque<QueuedLaunch> Rejected;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
    Rejected.swap(AdmitQueue);
    // Wake blocking acquireSlotOrVeto waiters so they observe Stopping.
    SlotCV.notify_all();
  }
  for (QueuedLaunch &Q : Rejected)
    Q.Reject(FaultCode::RuntimeStopping, StoppingReason);
  std::unique_lock<std::mutex> Lock(Mu);
  if (Active > 0 || !DoneQueue.empty())
    obs::count(obs::Event::DrainWaits);
  SlotCV.wait(Lock, [this] { return Active == 0 && DoneQueue.empty(); });
}

void Runtime::awaitIdle() {
  std::unique_lock<std::mutex> Lock(Mu);
  SlotCV.wait(Lock, [this] {
    return Active == 0 && AdmitQueue.empty() && DoneQueue.empty();
  });
}
