//===- Runtime.cpp - Multi-tenant service runtime -------------------------===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
//
// The untemplated half of the Runtime: admission control (slot
// accounting, FIFO queueing, explore exclusivity) and the finalizer
// thread that turns quiescence observations into session outcomes.
//
// Lock discipline: Mu guards only the Runtime's own bookkeeping (Active,
// the two queues, shutdown flags). Launch and finalize closures always
// run with Mu RELEASED - they re-enter the Scheduler (beginSession,
// schedule, finishSession), and a worker finishing the session's last
// task calls back into enqueueCompletion, which needs Mu.
//
//===----------------------------------------------------------------------===//

#include "src/service/Runtime.h"

using namespace lvish;
using namespace lvish::service;

Runtime::Runtime(RuntimeConfig Config)
    : Sched(Config.Sched), MaxActive(Config.MaxActiveSessions) {}

Runtime::~Runtime() {
  drain();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
    WorkCV.notify_all();
  }
  if (Finalizer.joinable())
    Finalizer.join();
}

const char *Runtime::acquireSlotOrVeto(explore::ScheduleCtl *WantExplore) {
  explore::ScheduleCtl *PoolCtl = Sched.exploreCtl();
  if (WantExplore && PoolCtl != WantExplore)
    return PoolCtl ? "session demands a different schedule controller than "
                     "the Runtime's"
                   : "explore-mode session on a Runtime without controlled "
                     "scheduling";
  std::unique_lock<std::mutex> Lock(Mu);
  if (PoolCtl) {
    if (Active > 0 || !AdmitQueue.empty() || !DoneQueue.empty())
      return "controlled-scheduling sessions need the Runtime to "
             "themselves and it is busy";
    Active = 1;
    return nullptr;
  }
  SlotCV.wait(Lock, [this] { return !MaxActive || Active < MaxActive; });
  ++Active;
  return nullptr;
}

void Runtime::releaseSlot() {
  std::function<void()> Next;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(Active > 0 && "releaseSlot without a held slot");
    --Active;
    if (!AdmitQueue.empty() && (!MaxActive || Active < MaxActive)) {
      Next = std::move(AdmitQueue.front());
      AdmitQueue.pop_front();
      ++Active;
    }
    SlotCV.notify_all();
  }
  if (Next)
    Next();
}

void Runtime::routeSubmission(std::function<void()> Launch) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ensureFinalizerLocked();
    if (MaxActive && Active >= MaxActive) {
      AdmitQueue.push_back(std::move(Launch));
      return;
    }
    ++Active;
  }
  Launch();
}

void Runtime::enqueueCompletion(std::function<void()> Fin) {
  // May run under a park-site lock (the session's last pending-count
  // decrement can happen inside TaskScope/LVar park bookkeeping), so this
  // must only enqueue - never touch the Scheduler.
  std::lock_guard<std::mutex> Lock(Mu);
  DoneQueue.push_back(std::move(Fin));
  WorkCV.notify_one();
}

void Runtime::ensureFinalizerLocked() {
  if (FinalizerStarted)
    return;
  FinalizerStarted = true;
  Finalizer = std::thread([this] { finalizerLoop(); });
}

void Runtime::finalizerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    WorkCV.wait(Lock, [this] { return ShuttingDown || !DoneQueue.empty(); });
    if (DoneQueue.empty()) {
      if (ShuttingDown)
        return;
      continue;
    }
    std::function<void()> Fin = std::move(DoneQueue.front());
    DoneQueue.pop_front();
    // The finalized session's slot stays held through Fin (finishSession,
    // fault take, outcome publication), so drain() cannot complete while
    // a finalization is mid-flight.
    Lock.unlock();
    Fin();
    std::function<void()> Next;
    Lock.lock();
    assert(Active > 0 && "finalized a session without a held slot");
    --Active;
    if (!AdmitQueue.empty() && (!MaxActive || Active < MaxActive)) {
      Next = std::move(AdmitQueue.front());
      AdmitQueue.pop_front();
      ++Active;
    }
    SlotCV.notify_all();
    if (Next) {
      Lock.unlock();
      Next();
      Lock.lock();
    }
  }
}

void Runtime::drain() {
  std::unique_lock<std::mutex> Lock(Mu);
  SlotCV.wait(Lock, [this] {
    return Active == 0 && AdmitQueue.empty() && DoneQueue.empty();
  });
}
