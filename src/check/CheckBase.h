//===- CheckBase.h - Dynamic determinism-checker substrate ------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared substrate of the dynamic determinism checkers (src/check/). The
/// Haskell original enforces its disciplines statically (`HasPut e`-style
/// constraints, higher-rank types for ParST); C++ cannot express all of
/// them, so this layer provides the runtime analyses that stand in for the
/// lost static guarantees:
///
///  * \c LatticeChecker.h      - join laws + threshold-set incompatibility
///                               (paper Section 2/3 proof obligations);
///  * \c DisjointnessChecker.h - shadow interval map of live VecView
///                               extents (Section 5's disjointness);
///  * \c EffectAuditor.h       - per-task performed-vs-declared effect
///                               comparison (Section 3 / Section 6.1).
///
/// Everything here is compiled behind \c LVISH_CHECK (defined to 0/1 by
/// CMake: on by default in Debug, off - and zero-cost - in Release and
/// RelWithDebInfo). Call sites in the core library are additionally wrapped
/// in `#if LVISH_CHECK` where argument evaluation would otherwise cost.
///
/// Violations report through \c reportViolation: by default a violation is
/// a deterministic fatal error (matching the library's never-throw abort
/// discipline); tests install a handler with \c setViolationHandler to
/// record the diagnostic and let execution continue.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CHECK_CHECKBASE_H
#define LVISH_CHECK_CHECKBASE_H

#include <cstdint>

// CMake defines LVISH_CHECK=0/1 on every target; default off for ad-hoc
// compiles that bypass the build system.
#ifndef LVISH_CHECK
#define LVISH_CHECK 0
#endif

namespace lvish {
namespace check {

/// Checker families, for per-family violation counters and test filtering.
enum class ViolationKind : unsigned {
  LatticeLaw = 0,   ///< Join-law breach (commutativity, assoc., ...).
  ThresholdSet = 1, ///< Trigger sets not pairwise incompatible.
  Disjointness = 2, ///< Overlapping or stale ParST extent/access.
  EffectDiscipline = 3, ///< Task performed an effect it never declared.
  NumKinds = 4
};

/// One detected discipline violation, handed to the installed handler.
struct ViolationReport {
  ViolationKind Kind;
  const char *Checker; ///< "LatticeChecker", "DisjointnessChecker", ...
  const char *Message; ///< Formatted diagnostic (valid during the call).
};

/// Handler signature; see \c setViolationHandler.
using ViolationHandler = void (*)(const ViolationReport &);

#if LVISH_CHECK

/// Installs a violation handler (tests only) and returns the previous one.
/// With a handler installed, \c reportViolation records and *returns*
/// instead of aborting, so a test can observe the diagnostic. Pass null to
/// restore the default abort behavior.
ViolationHandler setViolationHandler(ViolationHandler H);

/// Reports a discipline violation: formats printf-style, bumps the
/// per-kind counter, then either invokes the installed handler (and
/// returns) or aborts via fatalError.
void reportViolation(ViolationKind Kind, const char *Checker,
                     const char *Fmt, ...)
    __attribute__((format(printf, 3, 4)));

/// Violations observed so far for \p Kind (test assertions).
uint64_t violationCount(ViolationKind Kind);

/// Total violations across all kinds.
uint64_t violationCountTotal();

/// Resets all violation counters (test fixtures).
void resetViolationCounts();

/// True on every Nth call (N = samplePeriod), cheap enough for hot put and
/// VecView-access paths. Sampling keeps the Debug-mode overhead of the
/// law/shadow checks bounded while still catching systematic violations.
bool sampleHit();

/// Current sampling period. Initialized once from the environment variable
/// \c LVISH_CHECK_SAMPLE (default 64; clamped to >= 1).
uint64_t samplePeriod();

/// Overrides the sampling period (tests set 1 for exhaustive checking).
void setSamplePeriod(uint64_t N);

#else // !LVISH_CHECK - inline no-op stubs so call sites need no guards.

inline ViolationHandler setViolationHandler(ViolationHandler) {
  return nullptr;
}
inline void reportViolation(ViolationKind, const char *, const char *, ...) {}
inline uint64_t violationCount(ViolationKind) { return 0; }
inline uint64_t violationCountTotal() { return 0; }
inline void resetViolationCounts() {}
inline bool sampleHit() { return false; }
inline uint64_t samplePeriod() { return 0; }
inline void setSamplePeriod(uint64_t) {}

#endif // LVISH_CHECK

} // namespace check
} // namespace lvish

#endif // LVISH_CHECK_CHECKBASE_H
