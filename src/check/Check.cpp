//===- Check.cpp - Determinism-checker runtime state ------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide state of the dynamic determinism checkers: violation
/// reporting/counting, the sampling clock, the DisjointnessChecker's
/// shadow interval map, and the EffectAuditor's eager check. Everything is
/// compiled out when LVISH_CHECK is 0.
///
//===----------------------------------------------------------------------===//

#include "src/check/CheckBase.h"
#include "src/check/DisjointnessChecker.h"
#include "src/check/EffectAuditor.h"
#include "src/sched/FaultSignal.h"
#include "src/sched/Scheduler.h"
#include "src/support/Assert.h"

#if LVISH_CHECK

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>

namespace lvish {
namespace check {

namespace {

std::atomic<ViolationHandler> Handler{nullptr};
std::atomic<uint64_t>
    Counts[static_cast<unsigned>(ViolationKind::NumKinds)];

uint64_t initialSamplePeriod() {
  if (const char *Env = std::getenv("LVISH_CHECK_SAMPLE")) {
    char *End = nullptr;
    unsigned long long N = std::strtoull(Env, &End, 10);
    if (End != Env && N >= 1)
      return N;
  }
  return 64;
}

std::atomic<uint64_t> Period{0}; // 0 = not yet initialized from env.
std::atomic<uint64_t> SampleClock{0};

} // namespace

ViolationHandler setViolationHandler(ViolationHandler H) {
  return Handler.exchange(H, std::memory_order_acq_rel);
}

void reportViolation(ViolationKind Kind, const char *Checker,
                     const char *Fmt, ...) {
  char Buf[512];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Counts[static_cast<unsigned>(Kind)].fetch_add(1,
                                                std::memory_order_relaxed);
  if (ViolationHandler H = Handler.load(std::memory_order_acquire)) {
    ViolationReport R{Kind, Checker, Buf};
    H(R);
    return;
  }
  char Full[640];
  std::snprintf(Full, sizeof(Full), "[%s] determinism violation: %s",
                Checker, Buf);
  // Inside a session, an unhandled violation is contained like any other
  // contract violation: record it as the session Fault and unwind the
  // faulting task (unless we are already unwinding - throwing then would
  // terminate).
  if (Task *T = Scheduler::currentTask())
    if (std::uncaught_exceptions() == 0)
      lvish::detail::raiseSessionFault(T, FaultCode::CheckerViolation, Full);
  // Outside any session there is no Fault channel to report through.
  // lvish-lint: allow(fatal)
  fatalError(Full);
}

uint64_t violationCount(ViolationKind Kind) {
  return Counts[static_cast<unsigned>(Kind)].load(
      std::memory_order_relaxed);
}

uint64_t violationCountTotal() {
  uint64_t Total = 0;
  for (unsigned I = 0; I < static_cast<unsigned>(ViolationKind::NumKinds);
       ++I)
    Total += Counts[I].load(std::memory_order_relaxed);
  return Total;
}

void resetViolationCounts() {
  for (unsigned I = 0; I < static_cast<unsigned>(ViolationKind::NumKinds);
       ++I)
    Counts[I].store(0, std::memory_order_relaxed);
}

uint64_t samplePeriod() {
  uint64_t P = Period.load(std::memory_order_acquire);
  if (P == 0) {
    P = initialSamplePeriod();
    Period.store(P, std::memory_order_release);
  }
  return P;
}

void setSamplePeriod(uint64_t N) {
  Period.store(N >= 1 ? N : 1, std::memory_order_release);
}

bool sampleHit() {
  uint64_t P = samplePeriod();
  if (P == 1)
    return true;
  return SampleClock.fetch_add(1, std::memory_order_relaxed) % P == 0;
}

// -- DisjointnessChecker ----------------------------------------------------

struct DisjointnessChecker::Impl {
  struct Extent {
    const void *End;
    const void *Cell;
    uint64_t Gen;
    const char *What;
  };
  mutable std::mutex M;
  /// Keyed by extent begin address; byte granularity.
  std::map<const void *, Extent> Live;

  /// First live extent overlapping [Begin, End), or Live.end(). Caller
  /// holds M.
  std::map<const void *, Extent>::iterator overlapOf(const void *Begin,
                                                     const void *End) {
    auto It = Live.upper_bound(Begin);
    if (It != Live.begin()) {
      auto Prev = std::prev(It);
      if (Prev->second.End > Begin)
        return Prev;
    }
    if (It != Live.end() && It->first < End)
      return It;
    return Live.end();
  }
};

DisjointnessChecker &DisjointnessChecker::instance() {
  static DisjointnessChecker C;
  return C;
}

DisjointnessChecker::DisjointnessChecker() : P(new Impl()) {}
DisjointnessChecker::~DisjointnessChecker() { delete P; }

void DisjointnessChecker::registerExtent(const void *Begin, const void *End,
                                         const void *Cell, uint64_t Gen,
                                         const char *What) {
  if (Begin >= End)
    return; // Empty halves of a degenerate split are trivially disjoint.
  std::lock_guard<std::mutex> Lock(P->M);
  auto It = P->overlapOf(Begin, End);
  if (It != P->Live.end() && It->second.Cell != Cell)
    reportViolation(
        ViolationKind::Disjointness, "DisjointnessChecker",
        "new %s extent [%p,%p) overlaps a live extent [%p,%p) from %s "
        "owned by a different scope: parallel children would not be "
        "disjoint",
        What, Begin, End, It->first, It->second.End, It->second.What);
  P->Live[Begin] = Impl::Extent{End, Cell, Gen, What};
}

void DisjointnessChecker::releaseExtent(const void *Begin,
                                        const void *Cell) {
  std::lock_guard<std::mutex> Lock(P->M);
  auto It = P->Live.find(Begin);
  if (It != P->Live.end() && It->second.Cell == Cell)
    P->Live.erase(It);
}

ExtentInfo DisjointnessChecker::detachExtentContaining(const void *Addr,
                                                       const void *Cell) {
  std::lock_guard<std::mutex> Lock(P->M);
  auto It = P->Live.upper_bound(Addr);
  if (It == P->Live.begin())
    return ExtentInfo{};
  --It;
  if (Addr < It->first || Addr >= It->second.End ||
      It->second.Cell != Cell)
    return ExtentInfo{};
  ExtentInfo Info{It->first, It->second.End, It->second.Gen,
                  It->second.What, true};
  P->Live.erase(It);
  return Info;
}

void DisjointnessChecker::restoreExtent(const ExtentInfo &Info,
                                        const void *Cell) {
  if (!Info.Valid)
    return;
  registerExtent(Info.Begin, Info.End, Cell, Info.Gen, Info.What);
}

AccessStatus DisjointnessChecker::classifyAccess(const void *Begin,
                                                 const void *End,
                                                 const void *Cell,
                                                 uint64_t Gen) const {
  std::lock_guard<std::mutex> Lock(P->M);
  auto It = P->Live.upper_bound(Begin);
  if (It == P->Live.begin())
    return AccessStatus::Unknown;
  --It;
  if (It->second.End < End || Begin < It->first)
    return AccessStatus::Unknown;
  if (It->second.Cell != Cell)
    return AccessStatus::ForeignOwner;
  if (It->second.Gen != Gen)
    return AccessStatus::Stale;
  return AccessStatus::Ok;
}

AccessStatus DisjointnessChecker::checkAccess(const void *Begin,
                                              const void *End,
                                              const void *Cell,
                                              uint64_t Gen) {
  AccessStatus S = classifyAccess(Begin, End, Cell, Gen);
  if (S == AccessStatus::ForeignOwner)
    reportViolation(
        ViolationKind::Disjointness, "DisjointnessChecker",
        "access at %p goes through a view whose region is currently owned "
        "by a different scope (an aliasing view crossed a forkSTSplit/"
        "zoom boundary)",
        Begin);
  else if (S == AccessStatus::Stale)
    reportViolation(
        ViolationKind::Disjointness, "DisjointnessChecker",
        "generation-stale access at %p: the view's ownership scope ended "
        "or its region was handed to forkSTSplit children",
        Begin);
  return S;
}

void DisjointnessChecker::describeAddress(const void *Addr, char *Buf,
                                          size_t BufLen) const {
  std::lock_guard<std::mutex> Lock(P->M);
  auto It = P->Live.upper_bound(Addr);
  if (It != P->Live.begin()) {
    --It;
    if (Addr >= It->first && Addr < It->second.End) {
      std::snprintf(Buf, BufLen,
                    "address %p currently lies in a live %s extent "
                    "[%p,%p) of another scope",
                    Addr, It->second.What, It->first, It->second.End);
      return;
    }
  }
  std::snprintf(Buf, BufLen,
                "address %p lies in no live registered extent", Addr);
}

size_t DisjointnessChecker::liveExtentCount() const {
  std::lock_guard<std::mutex> Lock(P->M);
  return P->Live.size();
}

void DisjointnessChecker::clearAllExtents() {
  std::lock_guard<std::mutex> Lock(P->M);
  P->Live.clear();
}

// -- EffectAuditor ----------------------------------------------------------

void auditEffect(Task *T, uint8_t Bit, const char *Op) {
  if (!T)
    return; // External session-setup writes predate any task.
  T->PerformedFx = static_cast<uint8_t>(T->PerformedFx | Bit);
  uint8_t Allowed = static_cast<uint8_t>(T->DeclaredFx | T->BlessedFx);
  if ((Bit & ~Allowed) != 0)
    reportViolation(
        ViolationKind::EffectDiscipline, "EffectAuditor",
        "task %p performed a %s effect (%s) beyond its declared effect "
        "set (declared mask=0x%02x): the static `Has%s` constraint was "
        "bypassed",
        static_cast<void *>(T), effectName(Bit), Op, T->DeclaredFx,
        effectName(Bit));
}

} // namespace check
} // namespace lvish

#else // !LVISH_CHECK

namespace lvish {
namespace check {
namespace detail {
// Keep the archive non-empty in checker-less builds.
int CheckDisabledAnchor = 0;
} // namespace detail
} // namespace check
} // namespace lvish

#endif // LVISH_CHECK
