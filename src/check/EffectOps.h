//===- EffectOps.h - Effect mask metadata shared with tooling ---*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ONE place the effect-bit encoding and the "which operation needs
/// which effect bit" table live. Two consumers share it:
///
///  * the runtime EffectAuditor (src/check/EffectAuditor.h), which stamps
///    per-task declared/performed masks at the spawn and mutation
///    chokepoints, and
///  * the static analyzer (tools/analyze/), which resolves the declared
///    `EffectSet` at every fork/spawn/runPar site and compares it against
///    the LVish operations named in the task body - the compile-time dual
///    of the audit, mirroring the `requires` clauses on the public API.
///
/// Keeping the table here means a new effectful operation is added in
/// exactly one place; the auditor and the analyzer cannot drift apart.
/// Depends only on src/core/Effects.h so the tool build stays light.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CHECK_EFFECTOPS_H
#define LVISH_CHECK_EFFECTOPS_H

#include "src/core/Effects.h"

#include <cstdint>

namespace lvish {
namespace check {

/// Bit encoding of EffectSet for the per-task masks (Task stores plain
/// bytes so the sched layer need not know about EffectSet).
enum : uint8_t {
  FxPut = 1,
  FxGet = 2,
  FxBump = 4,
  FxFreeze = 8,
  FxIO = 16,
  FxST = 32,
  FxAll = 63
};

/// Compresses an EffectSet into the task-mask encoding.
constexpr uint8_t effectMask(EffectSet E) {
  return static_cast<uint8_t>((E.Put ? FxPut : 0) | (E.Get ? FxGet : 0) |
                              (E.Bump ? FxBump : 0) |
                              (E.Freeze ? FxFreeze : 0) |
                              (E.IO ? FxIO : 0) | (E.ST ? FxST : 0));
}

/// Names a single effect bit for diagnostics.
constexpr const char *effectName(uint8_t Bit) {
  switch (Bit) {
  case FxPut:
    return "Put";
  case FxGet:
    return "Get";
  case FxBump:
    return "Bump";
  case FxFreeze:
    return "Freeze";
  case FxIO:
    return "IO";
  case FxST:
    return "ST";
  default:
    return "?";
  }
}

/// One public ParCtx-taking operation and the effect bits its `requires`
/// clause demands. The static analyzer treats an unqualified (or
/// lvish::-qualified) call `Name(Ctx, ...)` as performing \c Required.
struct StaticEffectOp {
  const char *Name;
  uint8_t Required;
};

/// Every effect-requiring operation of the public API, mirroring the
/// `requires(has...)` clauses. Only the unified spellings exist now: the
/// PR-5-era per-structure threshold-read aliases were removed, and the
/// deprecated-threshold-read analyzer rule survives purely as an
/// unknown-name safety net against their resurrection.
inline constexpr StaticEffectOp StaticEffectOps[] = {
    // HasPut: least-upper-bound writes.
    {"put", FxPut},
    {"putIdx", FxPut},
    {"putAndLeft", FxPut},
    {"putAndRight", FxPut},
    {"putPureLVar", FxPut},
    {"insert", FxPut},
    {"insertPure", FxPut},
    {"cancel", FxPut}, // `cancel :: HasPut m2 => ...` (Section 6.1).
    {"putMin", FxPut},   // MinMap: lub (= min) write to a keyed label.
    {"putMinAt", FxPut}, // MinVec: lub (= min) write to a dense cell.
    {"advance", FxPut},  // BoundedStream: lub write to the release mark.
    // HasGet: blocking threshold reads (the unified spellings). Note the
    // analyzer resolves stream puts by the shared name `put` -> FxPut; the
    // bounded overload additionally requires Get (it blocks on the
    // consumer watermark), which only the runtime audit can distinguish.
    {"get", FxGet},
    {"waitSize", FxGet},
    {"quiesce", FxGet},
    {"readCFuture", FxGet},
    {"getAndLV", FxGet},
    // HasBump: non-idempotent inflationary updates.
    {"incrCounter", FxBump},
    {"incrCounterAt", FxBump},
    // HasFreeze: exact (quasi-deterministic) reads.
    {"freezeCounter", FxFreeze},
    {"freezeCounterVec", FxFreeze},
    {"freezeMap", FxFreeze},
    {"freezeSet", FxFreeze},
    {"freezePureMap", FxFreeze},
    {"freezePureLVar", FxFreeze},
    {"freezeIVar", FxFreeze},
    {"freezeMinMap", FxFreeze},
    {"freezeMinVec", FxFreeze},
    {"freezeStream", FxFreeze},
    // HasIO: arbitrary nondeterminism in the parent signature.
    {"forkCancelableND", FxIO},
    // HasST: disjoint destructive state (the paper's msplit/forkSTSplit).
    {"forkSTSplit", static_cast<uint8_t>(FxST | FxPut | FxGet)},
    {"forkSTSplit2", static_cast<uint8_t>(FxST | FxPut | FxGet)},
    {"zoomIn", FxST},
    {"withTempBuffer", FxST},
    // Combinators demanding Put and Get together.
    {"asyncAnd", static_cast<uint8_t>(FxPut | FxGet)},
    {"asyncAndTree", static_cast<uint8_t>(FxPut | FxGet)},
    {"getMemo", static_cast<uint8_t>(FxPut | FxGet)},
    {"getMemoRO", FxGet},
    {"forkWithDeadlockDetection", static_cast<uint8_t>(FxPut | FxGet)},
    {"parallelFor", static_cast<uint8_t>(FxPut | FxGet)},
    {"parallelForPar", static_cast<uint8_t>(FxPut | FxGet)},
    {"parallelReduce", static_cast<uint8_t>(FxPut | FxGet)},
    {"forSpeculative", static_cast<uint8_t>(FxPut | FxGet)},
};

/// ParCtx-taking operations with NO effect requirement. The analyzer
/// treats them as known calls (they cannot hide an effect), so a scope
/// that only uses these can still be checked for surplus declared bits.
inline constexpr const char *StaticNeutralOps[] = {
    "fork",         "yield",       "newPool",       "newEmptyMap",
    "newISet",      "newIVar",     "newCounter",    "newAndLV",
    "newIStructure", "newPureLVar", "addHandler",    "addHandlerRef",
    "forkCancelable", "runParVec", "noteBytes",     "newMinMap",
    "newMinVec",    "newStream",   "newBoundedStream",
};

/// A named effect level (the Eff:: namespace) and its mask; the analyzer
/// resolves `Eff::Det` and friends through this table.
struct NamedEffectLevel {
  const char *Name; ///< Without the "Eff::" qualifier.
  uint8_t Mask;
};

inline constexpr NamedEffectLevel NamedEffectLevels[] = {
    {"Det", effectMask(Eff::Det)},
    {"DetBump", effectMask(Eff::DetBump)},
    {"ReadOnly", effectMask(Eff::ReadOnly)},
    {"WriteOnly", effectMask(Eff::WriteOnly)},
    {"QuasiDet", effectMask(Eff::QuasiDet)},
    {"DetST", effectMask(Eff::DetST)},
    {"FullIO", effectMask(Eff::FullIO)},
};

} // namespace check
} // namespace lvish

#endif // LVISH_CHECK_EFFECTOPS_H
