//===- EffectAuditor.h - Runtime declared-vs-performed effects --*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime audit of the paper's effect discipline (Section 3). Statically,
/// every effectful operation demands the corresponding `EffectSet` bit from
/// the capability token `ParCtx<E>`, so well-typed user code cannot
/// misbehave. What the `requires` clauses canNOT catch is code that forges
/// a stronger context (`detail::CtxAccess::make`) or calls an LVar's state
/// methods directly, bypassing the token - the escape hatches trusted
/// library internals use, and the exact holes the calibration band warned
/// about ("no effect typing; manual ... discipline error-prone").
///
/// The auditor closes the loop dynamically. Each task carries
///  * a *declared* effect mask, stamped at the spawn path (fork, runPar,
///    forkCancelable, handler tasks, deadlock scopes) from the effect level
///    the body was forked at;
///  * a *performed* mask, accumulated by the structure-level mutators and
///    parkGet - the chokepoints every effect funnels through regardless of
///    how its context was obtained.
/// An operation whose bit is absent from declared|blessed reports an
/// EffectDiscipline violation eagerly, naming the op (e.g. a ReadOnly
/// cancelable child that writes - the Section 6.1 safety condition).
///
/// Trusted escapes are made explicit instead of silent: \c BlessScope
/// (the hidden result-put of forkCancelable, getMemoRO's request-put -
/// Section 6.2's "blessed as safe/unobservable") and \c RaiseDeclaredScope
/// (runParVec granting the ST capability to the current task, Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CHECK_EFFECTAUDITOR_H
#define LVISH_CHECK_EFFECTAUDITOR_H

#include "src/check/CheckBase.h"
#include "src/check/EffectOps.h"
#include "src/core/Effects.h"
#include "src/sched/Task.h"

namespace lvish {
namespace check {

// The Fx* bit encoding, effectMask, and effectName live in EffectOps.h
// (shared with the static analyzer in tools/analyze/).

#if LVISH_CHECK

/// Stamps \p T's declared effect mask; called on every task spawn path
/// with the effect level the body was forked at.
inline void declareTaskEffects(Task *T, uint8_t Mask) {
  T->DeclaredFx = Mask;
}

/// Records that \p T performed the effect \p Bit while executing \p Op,
/// and reports an EffectDiscipline violation if the task never declared
/// (nor was blessed for) it. \p T may be null for external session-setup
/// writes, which run before any task exists and are exempt.
void auditEffect(Task *T, uint8_t Bit, const char *Op);

/// RAII: temporarily adds \p Bits to the current task's blessed mask, for
/// the trusted internal operations the paper explicitly blesses (the
/// forkCancelable result-put, getMemoRO's request-put). Must not span a
/// task switch - blessing is per dynamic extent within one task.
class BlessScope {
public:
  BlessScope(Task *T, uint8_t Bits) : Tsk(T), Saved(T->BlessedFx) {
    T->BlessedFx = static_cast<uint8_t>(T->BlessedFx | Bits);
  }
  ~BlessScope() { Tsk->BlessedFx = Saved; }
  BlessScope(const BlessScope &) = delete;
  BlessScope &operator=(const BlessScope &) = delete;

private:
  Task *Tsk;
  uint8_t Saved;
};

/// RAII: widens the current task's *declared* mask for a region that
/// legitimately runs at a stronger effect level on the same task - the
/// runParVec pattern, where the body receives an ST-enabled context
/// without a fork. Unlike BlessScope this mask is the task's advertised
/// level, so children forked inside inherit correctness from their own
/// fork-time declaration.
class RaiseDeclaredScope {
public:
  RaiseDeclaredScope(Task *T, uint8_t Bits) : Tsk(T), Saved(T->DeclaredFx) {
    T->DeclaredFx = static_cast<uint8_t>(T->DeclaredFx | Bits);
  }
  ~RaiseDeclaredScope() { Tsk->DeclaredFx = Saved; }
  RaiseDeclaredScope(const RaiseDeclaredScope &) = delete;
  RaiseDeclaredScope &operator=(const RaiseDeclaredScope &) = delete;

private:
  Task *Tsk;
  uint8_t Saved;
};

#else // !LVISH_CHECK

inline void declareTaskEffects(Task *, uint8_t) {}
inline void auditEffect(Task *, uint8_t, const char *) {}

class BlessScope {
public:
  BlessScope(Task *, uint8_t) {}
};

class RaiseDeclaredScope {
public:
  RaiseDeclaredScope(Task *, uint8_t) {}
};

#endif // LVISH_CHECK

} // namespace check
} // namespace lvish

#endif // LVISH_CHECK_EFFECTAUDITOR_H
