//===- DisjointnessChecker.h - Shadow map of ParST extents ------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime stand-in for Section 5's static disjointness guarantee. The
/// Haskell/DPJ design makes "the memory updated by different threads is
/// disjoint" a type-level fact (higher-rank types prevent a parent's view
/// from being captured by forkSTSplit children). Our VecView carries only
/// a generation cell, which detects *stale* views but says nothing about
/// *which* scope owns a region now, and cannot detect overlapping extents
/// that were constructed incorrectly in the first place.
///
/// This checker keeps a process-wide shadow interval map of every live
/// VecView extent registered by the trusted ParST combinators (runParVec,
/// forkSTSplit, forkSTSplit2, zoomIn, withTempBuffer):
///
///  * registration asserts the new extent overlaps no live extent of a
///    different ownership scope - catching bad split arithmetic and
///    hand-built aliasing views the moment they are created;
///  * sampled element accesses are classified against the map, upgrading
///    the bare "poisoned view" generation abort into a precise diagnostic
///    (stale generation vs. region now owned by another scope vs. clean).
///
/// The map is guarded by a plain mutex: this is a Debug-only analysis and
/// registration happens at fork-join granularity, not per element.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CHECK_DISJOINTNESSCHECKER_H
#define LVISH_CHECK_DISJOINTNESSCHECKER_H

#include "src/check/CheckBase.h"

#include <cstddef>
#include <cstdint>

namespace lvish {
namespace check {

/// How an access relates to the shadow map; see \c classifyAccess.
enum class AccessStatus : unsigned {
  Ok = 0,        ///< Inside a live extent of the accessing view's scope.
  Unknown = 1,   ///< No registered extent covers it (unmanaged storage).
  Stale = 2,     ///< Scope matches but the generation moved on.
  ForeignOwner = 3, ///< Covered by an extent owned by a different scope.
};

/// A detached extent, held by a split/zoom combinator while children own
/// the region; see \c DisjointnessChecker::detachExtentContaining.
struct ExtentInfo {
  const void *Begin = nullptr;
  const void *End = nullptr;
  uint64_t Gen = 0;
  const char *What = nullptr;
  bool Valid = false;
};

#if LVISH_CHECK

/// Shadow interval map of live ParST extents; see file comment.
class DisjointnessChecker {
public:
  static DisjointnessChecker &instance();

  /// Registers the byte extent [Begin, End) owned by scope \p Cell at
  /// generation \p Gen. Reports a Disjointness violation if it overlaps a
  /// live extent of a *different* cell; the extent is registered either
  /// way so the matching release stays balanced. \p What names the
  /// creating combinator for diagnostics.
  void registerExtent(const void *Begin, const void *End, const void *Cell,
                      uint64_t Gen, const char *What);

  /// Releases the extent starting at \p Begin for scope \p Cell (no-op
  /// with a diagnostic-free pass if it was never registered, so unbalanced
  /// teardown on error paths cannot cascade).
  void releaseExtent(const void *Begin, const void *Cell);

  /// Removes and returns the live extent of scope \p Cell containing
  /// \p Addr (the parent side of a forkSTSplit/zoomIn, which may be wider
  /// than the view being split when that view is a slice). Returns an
  /// invalid ExtentInfo if none is registered. Re-register the result
  /// with \c restoreExtent at the join.
  ExtentInfo detachExtentContaining(const void *Addr, const void *Cell);

  /// Re-registers a previously detached extent for scope \p Cell; no-op
  /// for invalid infos, so callers need not branch.
  void restoreExtent(const ExtentInfo &Info, const void *Cell);

  /// Classifies the byte access [Begin, End) made through a view of scope
  /// \p Cell at generation \p Gen. Pure query - no reporting.
  AccessStatus classifyAccess(const void *Begin, const void *End,
                              const void *Cell, uint64_t Gen) const;

  /// Classifies and reports Stale/ForeignOwner results as Disjointness
  /// violations with a precise diagnostic. Returns the classification.
  AccessStatus checkAccess(const void *Begin, const void *End,
                           const void *Cell, uint64_t Gen);

  /// Writes a human-readable description of what the map knows about
  /// \p Addr into \p Buf (for upgrading generation-abort messages).
  void describeAddress(const void *Addr, char *Buf, size_t BufLen) const;

  /// Number of live extents (tests assert this drains back to zero).
  size_t liveExtentCount() const;

  /// Drops all extents (test fixtures recovering from seeded violations).
  void clearAllExtents();

private:
  DisjointnessChecker();
  ~DisjointnessChecker();
  DisjointnessChecker(const DisjointnessChecker &) = delete;
  DisjointnessChecker &operator=(const DisjointnessChecker &) = delete;

  struct Impl;
  Impl *P;
};

#else // !LVISH_CHECK - zero-cost stub with the same surface.

class DisjointnessChecker {
public:
  static DisjointnessChecker &instance() {
    static DisjointnessChecker C;
    return C;
  }
  void registerExtent(const void *, const void *, const void *, uint64_t,
                      const char *) {}
  void releaseExtent(const void *, const void *) {}
  ExtentInfo detachExtentContaining(const void *, const void *) {
    return ExtentInfo{};
  }
  void restoreExtent(const ExtentInfo &, const void *) {}
  AccessStatus classifyAccess(const void *, const void *, const void *,
                              uint64_t) const {
    return AccessStatus::Unknown;
  }
  AccessStatus checkAccess(const void *, const void *, const void *,
                           uint64_t) {
    return AccessStatus::Unknown;
  }
  void describeAddress(const void *, char *Buf, size_t BufLen) const {
    if (BufLen)
      Buf[0] = '\0';
  }
  size_t liveExtentCount() const { return 0; }
  void clearAllExtents() {}
};

#endif // LVISH_CHECK

} // namespace check
} // namespace lvish

#endif // LVISH_CHECK_DISJOINTNESSCHECKER_H
