//===- LatticeChecker.h - Dynamic join-law validation -----------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic validation of the lattice proof obligations that data-structure
/// authors carry in the paper (Section 2: join must be a least upper bound;
/// Section 3: bump families must be inflationary and commutative). In
/// Haskell these are stated obligations backed by the type system's
/// structural guarantees; here we spot-check them on *live states* flowing
/// through sampled put/bump operations, so a buggy user lattice is caught
/// on real data rather than only by the offline sweeps in
/// tests/LatticeLawsTest.cpp.
///
/// Checked laws, for a sampled put of \c New onto current state \c Old:
///  * commutativity:   join(Old, New) == join(New, Old)
///  * idempotence:     join(New, New) == New
///  * upper bound:     Old <= join(Old, New) and New <= join(Old, New)
///    (inflationarity of the induced update)
///  * associativity:   join(join(Old, New), Prev) == join(Old, join(New,
///    Prev)) where Prev is the previous sampled state on this thread - a
///    rolling third witness, so associativity is exercised across genuinely
///    observed values instead of a fixed corpus.
///
/// Threshold sets: \c checkThresholdSets validates pairwise
/// incompatibility of trigger sets at get registration (lub of states
/// drawn from two different sets must be top), the paper's condition for
/// threshold reads to be deterministic.
///
//======---------------------------------------------------------------===//

#ifndef LVISH_CHECK_LATTICECHECKER_H
#define LVISH_CHECK_LATTICECHECKER_H

#include "src/check/CheckBase.h"
#include "src/core/Lattice.h"

#include <optional>
#include <vector>

namespace lvish {
namespace check {

#if LVISH_CHECK

/// Validates the join laws on the live pair (\p Old state, \p New incoming
/// value); see file comment. Callers sample via \c sampleHit first - this
/// performs several joins and is not free.
template <typename L>
  requires Lattice<L>
void checkJoinLaws(const typename L::ValueType &Old,
                   const typename L::ValueType &New) {
  using V = typename L::ValueType;
  const V AB = L::join(Old, New);
  const V BA = L::join(New, Old);
  if (!(AB == BA))
    reportViolation(ViolationKind::LatticeLaw, "LatticeChecker",
                    "join is not commutative on live states: "
                    "join(old,new) != join(new,old)");
  if (!(L::join(New, New) == New))
    reportViolation(ViolationKind::LatticeLaw, "LatticeChecker",
                    "join is not idempotent on a live state: "
                    "join(x,x) != x");
  // Upper-bound/inflationary: both operands must lie below the join.
  if (!(L::join(Old, AB) == AB) || !(L::join(New, AB) == AB))
    reportViolation(ViolationKind::LatticeLaw, "LatticeChecker",
                    "join is not an upper bound of its operands "
                    "(non-inflationary put)");
  // Associativity against a rolling per-thread third witness.
  static thread_local std::optional<V> Prev;
  if (Prev) {
    const V L1 = L::join(AB, *Prev);
    const V L2 = L::join(Old, L::join(New, *Prev));
    if (!(L1 == L2))
      reportViolation(ViolationKind::LatticeLaw, "LatticeChecker",
                      "join is not associative across live states");
  }
  Prev = New;
}

/// Validates that a bump is inflationary: the counter must move up the
/// naturals-under-<= lattice, so wrap-around is a determinism bug (an
/// observer could see the value decrease).
inline void checkBumpInflates(uint64_t Old, uint64_t Amount,
                              const char *What) {
  if (Old + Amount < Old)
    reportViolation(ViolationKind::LatticeLaw, "LatticeChecker",
                    "%s bump overflowed (old=%llu amount=%llu): the update "
                    "is no longer inflationary",
                    What, static_cast<unsigned long long>(Old),
                    static_cast<unsigned long long>(Amount));
}

/// Asserts pairwise incompatibility of threshold trigger sets at get
/// registration (requires a designated top to be decidable; lattices
/// without one rely on the author's obligation alone, as in the paper).
/// Also flags empty trigger sets, which could never activate.
template <typename L>
  requires Lattice<L>
void checkThresholdSets(
    const std::vector<std::vector<typename L::ValueType>> &Sets) {
  for (size_t I = 0; I < Sets.size(); ++I)
    if (Sets[I].empty())
      reportViolation(ViolationKind::ThresholdSet, "LatticeChecker",
                      "threshold trigger set #%zu is empty and can never "
                      "activate",
                      I);
  if constexpr (LatticeWithTop<L>) {
    for (size_t I = 0; I < Sets.size(); ++I)
      for (size_t J = I + 1; J < Sets.size(); ++J)
        for (const auto &A : Sets[I])
          for (const auto &B : Sets[J])
            if (!L::isTop(L::join(A, B)))
              reportViolation(
                  ViolationKind::ThresholdSet, "LatticeChecker",
                  "threshold trigger sets #%zu and #%zu are compatible "
                  "(their lub is not top): a read could activate on "
                  "either depending on schedule",
                  I, J);
  }
}

#else // !LVISH_CHECK

template <typename L>
  requires Lattice<L>
inline void checkJoinLaws(const typename L::ValueType &,
                          const typename L::ValueType &) {}
inline void checkBumpInflates(uint64_t, uint64_t, const char *) {}
template <typename L>
  requires Lattice<L>
inline void checkThresholdSets(
    const std::vector<std::vector<typename L::ValueType>> &) {}

#endif // LVISH_CHECK

} // namespace check
} // namespace lvish

#endif // LVISH_CHECK_LATTICECHECKER_H
