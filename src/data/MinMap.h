//===- MinMap.h - Min-label map and dense min-vector LVars ------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two LVars over MinUint64Lattice (src/core/Lattice.h), built for the
/// PBBS port (src/pbbs/):
///
///  * \c MinMap<K> - a keyed map whose per-key state is a uint64 label
///    under *min*-join. Unlike IMap (exactly-once single-assignment per
///    key), a MinMap key may be written many times; each write joins (takes
///    the minimum), and registered handlers fire once per *winning* strict
///    decrease with the (key, newLabel) delta. That monotone delta stream
///    is what drives label-propagation fixpoints: connected components
///    seeds label[v] = v and a handler relaxes each improvement across the
///    vertex's edges until quiescence.
///
///  * \c MinVec - the dense cousin: a fixed array of min-cells, the shape
///    Boruvka's minimum-edge selection wants (one cell per component,
///    proposals join by min, the winner is read after a barrier). No
///    handlers - it pairs with fork-join rounds, not fixpoints - so a cell
///    is one padded atomic and a proposal is one CAS loop.
///
/// Deterministic observations mirror ISet/IMap: threshold reads ("the
/// label of K has dropped to <= Bound" is a stable, monotone fact),
/// cardinality waits, and freeze for exact contents.
///
/// Bottom (UINT64_MAX) is "no information": putting it is a no-op join,
/// so every key physically present in a MinMap carries a real label and
/// the key-count itself is a monotone threshold surface.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_DATA_MINMAP_H
#define LVISH_DATA_MINMAP_H

#include "src/core/LVarBase.h"
#include "src/core/Lattice.h"
#include "src/core/Par.h"
#include "src/data/MonotoneHashMap.h"

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace lvish {

/// Keyed min-label LVar; construct via \c newMinMap.
template <typename K, typename HashT = DefaultHash<K>>
class MinMap : public LVarBase {
  /// Cells are heap boxes because MonotoneHashMap::insert moves its value
  /// argument and std::atomic is immovable; the box indirection also keeps
  /// the CAS target stable forever (node-based buckets).
  using Cell = std::unique_ptr<std::atomic<uint64_t>>;

public:
  /// Bottom of MinUint64Lattice: "no label yet".
  static constexpr uint64_t Bottom = MinUint64Lattice::bottom();

  using DeltaType = std::pair<K, uint64_t>;
  using Handler = std::function<void(const DeltaType &)>;

  explicit MinMap(uint64_t SessionId) : LVarBase(SessionId) {
    Handlers.store(std::make_shared<const std::vector<Handler>>());
  }

  /// Lub write: joins \p Label into the key's cell by min. Fires handlers
  /// with (Key, Label) exactly when this call strictly lowered the cell
  /// (first write included); repeats and non-improving labels are no-ops.
  void joinKey(const K &Key, uint64_t Label, Task *Writer) {
    checkSession(Writer);
    check::auditEffect(Writer, check::FxPut, "MinMap put");
    obs::count(obs::Event::Puts);
    if (Label == Bottom) {
      obs::count(obs::Event::NoOpJoins);
      obs::count(obs::Event::NotifySkips);
      return; // join(bottom, x) = x: nothing to record, nothing to wake.
    }
    AsymmetricGate::FastGuard Gate(HandlerGate);
    // Insert the label directly so no reader ever observes a transient
    // bottom cell; on a lost race the CAS loop below joins into the
    // winner's cell.
    auto [CellPtr, Inserted] =
        Table.insert(Key, std::make_unique<std::atomic<uint64_t>>(Label));
    std::atomic<uint64_t> &A = **CellPtr;
    if (!Inserted) {
      uint64_t Cur = A.load(std::memory_order_acquire);
      for (;;) {
        if (Label >= Cur) {
          obs::count(obs::Event::NoOpJoins);
          obs::count(obs::Event::NotifySkips);
          return; // Non-improving join.
        }
        if (isFrozen())
          putAfterFreezeError(Writer, this);
        if (A.compare_exchange_weak(Cur, Label, std::memory_order_acq_rel,
                                    std::memory_order_acquire))
          break;
      }
    } else if (isFrozen()) {
      putAfterFreezeError(Writer, this);
    }
    auto Snapshot = Handlers.load(std::memory_order_acquire);
    DeltaType D{Key, Label};
    for (const Handler &H : *Snapshot)
      H(D);
    notifyDelta(Writer, HashT{}(Key), Table.size());
  }

  /// Current label, or nullopt if the key has never been written.
  /// Deterministic only when frozen/quiescent (labels can still drop).
  std::optional<uint64_t> peekKey(const K &Key) const {
    const Cell *C = Table.find(Key);
    if (!C)
      return std::nullopt;
    return (*C)->load(std::memory_order_acquire);
  }

  /// Number of keys carrying a label; monotone, so threshold-readable.
  size_t sizeNow() const { return Table.size(); }

  /// Registers a handler; delivers the current label of every existing
  /// key, then every future winning decrease (footnote-6 gate).
  void addHandlerRaw(Handler H, Task *Registrar) {
    checkSession(Registrar);
    AsymmetricGate::SlowGuard Gate(HandlerGate);
    auto Old = Handlers.load(std::memory_order_acquire);
    auto New = std::make_shared<std::vector<Handler>>(*Old);
    New->push_back(H);
    Handlers.store(std::shared_ptr<const std::vector<Handler>>(std::move(New)),
                   std::memory_order_release);
    Table.forEach([&H](const K &Key, const Cell &C) {
      H(DeltaType{Key, C->load(std::memory_order_acquire)});
    });
  }

  /// Sorted (key, label) snapshot; call after freezing.
  std::vector<std::pair<K, uint64_t>> toSortedVector() const {
    assert(isFrozen() && "iterating an unfrozen MinMap is nondeterministic");
    std::vector<std::pair<K, uint64_t>> Out;
    Out.reserve(Table.size());
    Table.forEach([&Out](const K &Key, const Cell &C) {
      Out.emplace_back(Key, C->load(std::memory_order_acquire));
    });
    std::sort(Out.begin(), Out.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    return Out;
  }

  /// Threshold read: unblocks once label[Key] <= Bound. "Label dropped to
  /// Bound or below" is a stable fact (labels only decrease), so the read
  /// is deterministic; it returns only the bound, never the exact label.
  class WaitLeqAwaiter {
  public:
    WaitLeqAwaiter(MinMap &M, Task *Reader, K Key, uint64_t Bound)
        : Map(M), Tsk(Reader), Target(std::move(Key)), Threshold(Bound) {}

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      return Map.parkGet(Tsk, H, this, WaitSlot::key(HashT{}(Target)));
    }
    uint64_t await_resume() const { return Threshold; }

    bool tryCapture() {
      const Cell *C = Map.Table.find(Target);
      return C && (*C)->load(std::memory_order_acquire) <= Threshold;
    }

  private:
    MinMap &Map;
    Task *Tsk;
    K Target;
    uint64_t Threshold;
  };

  /// Threshold read: unblocks once at least N keys carry a label.
  class WaitSizeAwaiter {
  public:
    WaitSizeAwaiter(MinMap &M, Task *Reader, size_t N)
        : Map(M), Tsk(Reader), Threshold(N) {}

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      return Map.parkGet(Tsk, H, this, WaitSlot::size(Threshold));
    }
    void await_resume() const noexcept {}

    bool tryCapture() { return Map.Table.size() >= Threshold; }

  private:
    MinMap &Map;
    Task *Tsk;
    size_t Threshold;
  };

private:
  MonotoneHashMap<K, Cell, HashT> Table;
  std::atomic<std::shared_ptr<const std::vector<Handler>>> Handlers;
};

/// Allocates an empty min-map for the current session.
template <typename K, EffectSet E>
std::shared_ptr<MinMap<K>> newMinMap(ParCtx<E> Ctx) {
  return std::make_shared<MinMap<K>>(Ctx.sessionId());
}

/// `putMin :: HasPut e => k -> Word64 -> MinMap s k -> Par e s ()`
template <EffectSet E, typename K, typename HashT>
  requires(hasPut(E))
void putMin(ParCtx<E> Ctx, MinMap<K, HashT> &Map, const K &Key,
            uint64_t Label) {
  Map.joinKey(Key, Label, Ctx.task());
}

/// Blocks until label[Key] <= Bound - the unified threshold-read spelling.
template <EffectSet E, typename K, typename HashT>
  requires(hasGet(E))
typename MinMap<K, HashT>::WaitLeqAwaiter
get(ParCtx<E> Ctx, MinMap<K, HashT> &Map, K Key, uint64_t Bound) {
  return typename MinMap<K, HashT>::WaitLeqAwaiter(Map, Ctx.task(),
                                                   std::move(Key), Bound);
}

/// Blocks until at least \p N keys carry a label.
template <EffectSet E, typename K, typename HashT>
  requires(hasGet(E))
typename MinMap<K, HashT>::WaitSizeAwaiter
waitSize(ParCtx<E> Ctx, MinMap<K, HashT> &Map, size_t N) {
  return typename MinMap<K, HashT>::WaitSizeAwaiter(Map, Ctx.task(), N);
}

/// Freezes (quasi-deterministic mid-session; deterministic after quiesce)
/// and returns the sorted (key, label) contents.
template <EffectSet E, typename K, typename HashT>
  requires(hasFreeze(E))
std::vector<std::pair<K, uint64_t>> freezeMinMap(ParCtx<E> Ctx,
                                                 MinMap<K, HashT> &Map) {
  Map.checkSession(Ctx.task());
  check::auditEffect(Ctx.task(), check::FxFreeze, "MinMap freeze");
  Map.markFrozen();
  return Map.toSortedVector();
}

/// A fixed-size array of min-cells sharing one LVar identity - the
/// CounterVec of the min lattice. Cells are cache-line padded; a join is
/// one CAS loop. Reads (\c peekAt / \c snapshot) are deterministic once
/// the writers have joined (fork-join barrier) or after freezing.
class MinVec : public LVarBase {
  struct alignas(64) Cell {
    std::atomic<uint64_t> V{MinUint64Lattice::bottom()};
  };

public:
  static constexpr uint64_t Bottom = MinUint64Lattice::bottom();

  MinVec(uint64_t SessionId, size_t N) : LVarBase(SessionId), Cells(N) {}

  size_t size() const { return Cells.size(); }

  /// Lub write: Cells[I] <- min(Cells[I], Label).
  void joinAt(size_t I, uint64_t Label, Task *Writer) {
    checkSession(Writer);
    check::auditEffect(Writer, check::FxPut, "MinVec put");
    assert(I < Cells.size() && "MinVec index out of range");
    obs::count(obs::Event::Puts);
    uint64_t Cur = Cells[I].V.load(std::memory_order_acquire);
    for (;;) {
      if (Label >= Cur) {
        obs::count(obs::Event::NoOpJoins);
        obs::count(obs::Event::NotifySkips);
        return;
      }
      if (isFrozen())
        putAfterFreezeError(Writer, this);
      // seq_cst on success so notifyWaiters can order its no-waiter probe
      // against this write without a standalone fence (as CounterVec).
      if (Cells[I].V.compare_exchange_weak(Cur, Label,
                                           std::memory_order_seq_cst,
                                           std::memory_order_acquire))
        break;
    }
    notifyWaiters(Writer, NotifyOrder::StateSeqCst);
  }

  uint64_t peekAt(size_t I) const {
    assert(I < Cells.size() && "MinVec index out of range");
    return Cells[I].V.load(std::memory_order_acquire);
  }

  /// Copies all cells out; deterministic once quiescent/frozen.
  std::vector<uint64_t> snapshot() const {
    std::vector<uint64_t> Out(Cells.size());
    for (size_t I = 0; I < Cells.size(); ++I)
      Out[I] = peekAt(I);
    return Out;
  }

private:
  std::vector<Cell> Cells;
};

/// Allocates a min-vector of \p N bottom (UINT64_MAX) cells.
template <EffectSet E>
std::shared_ptr<MinVec> newMinVec(ParCtx<E> Ctx, size_t N) {
  return std::make_shared<MinVec>(Ctx.sessionId(), N);
}

template <EffectSet E>
  requires(hasPut(E))
void putMinAt(ParCtx<E> Ctx, MinVec &MV, size_t I, uint64_t Label) {
  MV.joinAt(I, Label, Ctx.task());
}

template <EffectSet E>
  requires(hasFreeze(E))
std::vector<uint64_t> freezeMinVec(ParCtx<E> Ctx, MinVec &MV) {
  MV.checkSession(Ctx.task());
  check::auditEffect(Ctx.task(), check::FxFreeze, "MinVec freeze");
  MV.markFrozen();
  return MV.snapshot();
}

} // namespace lvish

#endif // LVISH_DATA_MINMAP_H
