//===- ISet.h - Monotone concurrent set LVar --------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `Data.LVar.Set`: a set LVar that "supports concurrent insertion, but not
/// deletion, during Par computations". The lattice is the powerset of the
/// element type ordered by inclusion; insert is the lub with a singleton.
/// Deterministic observations:
///  * \c lvish::get(Ctx, Set, Elem) (the paper's `waitElem`) - threshold
///    read that unblocks once a given element is present (the returned
///    information, "x is in the set", is stable);
///  * \c waitSize - unblocks once the cardinality reaches N (cardinality is
///    monotone, and the read returns only the threshold N, not the exact
///    size);
///  * handlers - run for each element exactly once (current and future);
///  * freezing - exact contents, quasi-deterministic unless performed at
///    session quiescence (runParThenFreeze).
///
/// As in the paper, ISet deliberately has no \c bump operations: put-style
/// and bump-style updates never mix on one LVar.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_DATA_ISET_H
#define LVISH_DATA_ISET_H

#include "src/core/LVarBase.h"
#include "src/core/Par.h"
#include "src/data/MonotoneHashMap.h"

#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace lvish {

/// Monotone set LVar; construct via \c newISet.
template <typename T, typename HashT = DefaultHash<T>>
class ISet : public LVarBase {
  struct Unit {};

public:
  using DeltaType = T;
  using Handler = std::function<void(const T &)>;

  explicit ISet(uint64_t SessionId) : LVarBase(SessionId) {
    Handlers.store(std::make_shared<const std::vector<Handler>>());
  }

  /// Lub write: adds \p Elem. No-op if already present (idempotent).
  void insertElem(const T &Elem, Task *Writer) {
    checkSession(Writer);
    check::auditEffect(Writer, check::FxPut, "ISet insert");
    obs::count(obs::Event::Puts);
    AsymmetricGate::FastGuard Gate(HandlerGate);
    auto [Ptr, Inserted] = Table.insert(Elem, Unit{});
    (void)Ptr;
    if (!Inserted) {
      obs::count(obs::Event::NoOpJoins);
      obs::count(obs::Event::NotifySkips);
      return; // Idempotent repeat: no delta, nothing to wake.
    }
    if (isFrozen())
      putAfterFreezeError(Writer, this);
    auto Snapshot = Handlers.load(std::memory_order_acquire);
    for (const Handler &H : *Snapshot)
      H(Elem);
    notifyDelta(Writer, HashT{}(Elem), Table.size());
  }

  bool containsElem(const T &Elem) const { return Table.contains(Elem); }

  /// Exact cardinality; deterministic only when frozen/quiescent.
  size_t sizeNow() const { return Table.size(); }

  /// Registers a handler; delivers every existing element, then every
  /// future one, exactly once (footnote-6 gate).
  void addHandlerRaw(Handler H, Task *Registrar) {
    checkSession(Registrar);
    AsymmetricGate::SlowGuard Gate(HandlerGate);
    auto Old = Handlers.load(std::memory_order_acquire);
    auto New = std::make_shared<std::vector<Handler>>(*Old);
    New->push_back(H);
    Handlers.store(std::shared_ptr<const std::vector<Handler>>(std::move(New)),
                   std::memory_order_release);
    Table.forEach([&H](const T &Elem, const Unit &) { H(Elem); });
  }

  /// Sorted snapshot; call after freezing for deterministic iteration.
  std::vector<T> toSortedVector() const {
    assert(isFrozen() && "iterating an unfrozen ISet is nondeterministic");
    return Table.snapshotSortedKeys();
  }

  /// Unordered traversal (post-freeze or at quiescence).
  template <typename FnT> void forEachFrozen(FnT &&Fn) const {
    assert(isFrozen() && "iterating an unfrozen ISet is nondeterministic");
    Table.forEach([&Fn](const T &Elem, const Unit &) { Fn(Elem); });
  }

  /// Threshold read: unblocks once \p Elem is present.
  class WaitElemAwaiter {
  public:
    WaitElemAwaiter(ISet &S, Task *Reader, T Elem)
        : Set(S), Tsk(Reader), Target(std::move(Elem)) {}

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      return Set.parkGet(Tsk, H, this, WaitSlot::key(HashT{}(Target)));
    }
    void await_resume() const noexcept {}

    bool tryCapture() { return Set.Table.contains(Target); }

  private:
    ISet &Set;
    Task *Tsk;
    T Target;
  };

  /// Threshold read: unblocks once |set| >= N.
  class WaitSizeAwaiter {
  public:
    WaitSizeAwaiter(ISet &S, Task *Reader, size_t N)
        : Set(S), Tsk(Reader), Threshold(N) {}

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      return Set.parkGet(Tsk, H, this, WaitSlot::size(Threshold));
    }
    void await_resume() const noexcept {}

    bool tryCapture() { return Set.Table.size() >= Threshold; }

  private:
    ISet &Set;
    Task *Tsk;
    size_t Threshold;
  };

private:
  MonotoneHashMap<T, Unit, HashT> Table;
  std::atomic<std::shared_ptr<const std::vector<Handler>>> Handlers;
};

/// Allocates an empty set for the current session.
template <typename T, EffectSet E>
std::shared_ptr<ISet<T>> newISet(ParCtx<E> Ctx) {
  return std::make_shared<ISet<T>>(Ctx.sessionId());
}

/// `insert :: HasPut e => a -> ISet s a -> Par e s ()`
template <EffectSet E, typename T, typename HashT>
  requires(hasPut(E))
void insert(ParCtx<E> Ctx, ISet<T, HashT> &Set, const T &Elem) {
  Set.insertElem(Elem, Ctx.task());
}

/// Blocks until \p Elem appears - the unified threshold-read spelling
/// (the paper's `waitElem`).
template <EffectSet E, typename T, typename HashT>
  requires(hasGet(E))
typename ISet<T, HashT>::WaitElemAwaiter get(ParCtx<E> Ctx,
                                             ISet<T, HashT> &Set, T Elem) {
  return typename ISet<T, HashT>::WaitElemAwaiter(Set, Ctx.task(),
                                                  std::move(Elem));
}

/// Blocks until the set has at least \p N elements.
template <EffectSet E, typename T, typename HashT>
  requires(hasGet(E))
typename ISet<T, HashT>::WaitSizeAwaiter waitSize(ParCtx<E> Ctx,
                                                  ISet<T, HashT> &Set,
                                                  size_t N) {
  return typename ISet<T, HashT>::WaitSizeAwaiter(Set, Ctx.task(), N);
}

/// Freezes mid-computation (quasi-deterministic) and returns the sorted
/// contents.
template <EffectSet E, typename T, typename HashT>
  requires(hasFreeze(E))
std::vector<T> freezeSet(ParCtx<E> Ctx, ISet<T, HashT> &Set) {
  Set.checkSession(Ctx.task());
  check::auditEffect(Ctx.task(), check::FxFreeze, "ISet freeze");
  Set.markFrozen();
  return Set.toSortedVector();
}

} // namespace lvish

#endif // LVISH_DATA_ISET_H
