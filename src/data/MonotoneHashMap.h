//===- MonotoneHashMap.h - Insert-only concurrent hash map ------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent substrate under ISet and IMap: a striped-lock hash map
/// that supports insertion and lookup but never deletion - the monotone
/// growth discipline that makes LVar collections deterministic. Entries
/// are stable once inserted (node-based buckets), so lookups can hand out
/// pointers that stay valid for the life of the table.
///
/// Striping note: 64 stripes bound contention at the worker counts this
/// library targets; an insert takes exactly one stripe lock. The size
/// counter is maintained separately so threshold reads on cardinality
/// (waitSize) never sweep the stripes.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_DATA_MONOTONEHASHMAP_H
#define LVISH_DATA_MONOTONEHASHMAP_H

#include "src/support/Hashing.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace lvish {

/// Insert-only concurrent hash map; see file comment.
template <typename K, typename V, typename HashT = DefaultHash<K>>
class MonotoneHashMap {
public:
  static constexpr size_t NumStripes = 64;

  MonotoneHashMap() = default;
  MonotoneHashMap(const MonotoneHashMap &) = delete;
  MonotoneHashMap &operator=(const MonotoneHashMap &) = delete;

  /// Inserts (Key, Value) if Key is absent. Returns {pointer to the stored
  /// value, true if newly inserted}. The pointer stays valid forever (no
  /// deletion, node-based storage).
  std::pair<const V *, bool> insert(const K &Key, V Value) {
    Stripe &S = stripeFor(Key);
    // lvish-lint: allow(raw-sync) - striped-lock table internals
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto [It, Inserted] = S.Map.try_emplace(Key, std::move(Value));
    if (Inserted)
      Count.fetch_add(1, std::memory_order_acq_rel);
    return {&It->second, Inserted};
  }

  /// Looks up Key; returns a stable pointer or null.
  const V *find(const K &Key) const {
    const Stripe &S = stripeFor(Key);
    // lvish-lint: allow(raw-sync) - striped-lock table internals
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Map.find(Key);
    return It == S.Map.end() ? nullptr : &It->second;
  }

  bool contains(const K &Key) const { return find(Key) != nullptr; }

  /// Number of entries (exact; monotonically non-decreasing).
  size_t size() const { return Count.load(std::memory_order_acquire); }

  /// Applies \p Fn to every entry. Only deterministic when the table is
  /// quiescent (frozen or post-session); iteration order is unspecified -
  /// use \c snapshotSorted for deterministic order.
  template <typename FnT> void forEach(FnT &&Fn) const {
    for (const Stripe &S : Stripes) {
      // lvish-lint: allow(raw-sync) - striped-lock table internals
    std::lock_guard<std::mutex> Lock(S.Mutex);
      for (const auto &KV : S.Map)
        Fn(KV.first, KV.second);
    }
  }

  /// Copies all keys out, sorted with operator< for deterministic
  /// iteration after freezing.
  std::vector<K> snapshotSortedKeys() const {
    std::vector<K> Keys;
    Keys.reserve(size());
    forEach([&Keys](const K &Key, const V &) { Keys.push_back(Key); });
    std::sort(Keys.begin(), Keys.end());
    return Keys;
  }

  /// Copies all entries out, sorted by key.
  std::vector<std::pair<K, V>> snapshotSorted() const {
    std::vector<std::pair<K, V>> Entries;
    Entries.reserve(size());
    forEach([&Entries](const K &Key, const V &Val) {
      Entries.emplace_back(Key, Val);
    });
    std::sort(Entries.begin(), Entries.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    return Entries;
  }

private:
  struct StdHashAdapter {
    size_t operator()(const K &Key) const {
      return static_cast<size_t>(HashT{}(Key));
    }
  };

  struct alignas(64) Stripe {
    mutable std::mutex Mutex; // lvish-lint: allow(raw-sync)
    std::unordered_map<K, V, StdHashAdapter> Map;
  };

  Stripe &stripeFor(const K &Key) {
    return Stripes[HashT{}(Key) % NumStripes];
  }
  const Stripe &stripeFor(const K &Key) const {
    return Stripes[HashT{}(Key) % NumStripes];
  }

  Stripe Stripes[NumStripes];
  std::atomic<size_t> Count{0};
};

} // namespace lvish

#endif // LVISH_DATA_MONOTONEHASHMAP_H
