//===- PureMap.h - Pure-value map LVar (Data.LVar.PureMap) ------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `Data.LVar.PureMap` - the map used in the paper's appendix quickstart.
/// Where IMap (src/data/IMap.h) is the *scalable* variant backed by a
/// striped concurrent hash table, PureMap follows the PureLVar recipe: the
/// whole map is "a single, pure value in a mutable box", with insertion as
/// a lub against the map-union lattice and \c lvish::get(Ctx, Map, Key) as
/// a general monotone threshold read (footnote 5). Simpler to reason about (its
/// join is literally map union with per-key conflict detection), slower
/// under contention - the same trade the Haskell library offered.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_DATA_PUREMAP_H
#define LVISH_DATA_PUREMAP_H

#include "src/core/PureLVar.h"

#include <map>
#include <memory>
#include <optional>

namespace lvish {

/// The map-union lattice: bottom is the empty map; join is key-wise union;
/// binding one key to two different values is the (designated) top,
/// represented as nullopt - exactly the per-key-IVar semantics of IMap,
/// expressed as a pure lattice.
template <typename K, typename V> struct MapUnionLattice {
  using MapT = std::map<K, V>;
  using ValueType = std::optional<MapT>; // nullopt = top.

  static ValueType bottom() { return MapT{}; }

  static ValueType join(const ValueType &A, const ValueType &B) {
    if (!A || !B)
      return std::nullopt;
    MapT Out = *A;
    for (const auto &[Key, Val] : *B) {
      auto [It, Inserted] = Out.insert({Key, Val});
      if (!Inserted && !(It->second == Val))
        return std::nullopt; // Conflicting binding: top.
    }
    return Out;
  }

  static bool isTop(const ValueType &A) { return !A.has_value(); }
};

/// Pure-value map LVar; see file comment.
template <typename K, typename V>
using PureMap = PureLVar<MapUnionLattice<K, V>>;

/// Allocates an empty PureMap (the appendix's `newEmptyMap`).
template <typename K, typename V, EffectSet E>
std::shared_ptr<PureMap<K, V>> newEmptyPureMap(ParCtx<E> Ctx) {
  return newPureLVar<MapUnionLattice<K, V>>(Ctx);
}

/// Inserts a binding: a lub with the singleton map. Conflicting rebinds
/// hit lattice top (a deterministic error), equal rebinds are idempotent.
template <EffectSet E, typename K, typename V>
  requires(hasPut(E))
void insertPure(ParCtx<E> Ctx, PureMap<K, V> &Map, const K &Key,
                const V &Val) {
  typename MapUnionLattice<K, V>::MapT Singleton{{Key, Val}};
  putPureLVar(Ctx, Map,
              typename MapUnionLattice<K, V>::ValueType(
                  std::move(Singleton)));
}

/// Blocks until \p Key is bound, returns its value - the unified
/// threshold-read spelling (the appendix's `getKey`). A monotone
/// threshold function: once a key is bound its value can never change
/// (change would be top), so the returned observation is stable.
template <EffectSet E, typename K, typename V>
  requires(hasGet(E))
auto get(ParCtx<E> Ctx, PureMap<K, V> &Map, K Key) {
  using VT = typename MapUnionLattice<K, V>::ValueType;
  return get(Ctx, Map,
             [Key = std::move(Key)](const VT &State) -> std::optional<V> {
               if (!State)
                 return std::nullopt; // Top unreachable (put aborts first).
               auto It = State->find(Key);
               if (It == State->end())
                 return std::nullopt;
               return It->second;
             });
}

/// Blocks until the map holds at least \p N bindings (cardinality is
/// monotone; the observation returns only N itself).
template <EffectSet E, typename K, typename V>
  requires(hasGet(E))
auto waitSize(ParCtx<E> Ctx, PureMap<K, V> &Map, size_t N) {
  using VT = typename MapUnionLattice<K, V>::ValueType;
  return get(Ctx, Map, [N](const VT &State) -> std::optional<size_t> {
    if (State && State->size() >= N)
      return N;
    return std::nullopt;
  });
}

/// Freezes and returns the exact contents (requires HasFreeze); also the
/// runParThenFreeze-compatible exact read.
template <EffectSet E, typename K, typename V>
  requires(hasFreeze(E))
std::map<K, V> freezePureMap(ParCtx<E> Ctx, PureMap<K, V> &Map) {
  auto State = freezePureLVar(Ctx, Map);
  return State ? *State : std::map<K, V>{};
}

} // namespace lvish

#endif // LVISH_DATA_PUREMAP_H
