//===- Counter.h - Bump-only counter LVars ----------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `Data.LVar.Counter`: the flagship of the paper's read-modify-write
/// extension (Section 3). The lattice is the naturals under <=; the bump
/// family is {(+1), (+2), ...}: commutative and inflationary but *not*
/// lub-shaped, so it can be implemented as a single fetch-and-add on one
/// memory location - "an atomically incremented counter that occupies one
/// memory location".
///
/// Crucially, Counter exposes only \c incrCounter (bump); it has no \c put.
/// "It is not safe to update the same LVar with both put and bump ... In
/// practice, this distinction is enforced by the type system." The same
/// enforcement holds here: there is no put entry point to misuse, and
/// \c incrCounter requires the HasBump effect.
///
/// Idempotence note: a lub write may be re-applied harmlessly (join is
/// idempotent), which is what lets put paths use optimistic retry; a bump
/// must be applied exactly once, which the single atomic RMW guarantees -
/// the C++ shape of the paper's "deleveraging idempotency" re-engineering.
///
/// \c CounterVec is the LVar-collection-of-counters used by PhyBin's
/// distance matrix: "an LVar could represent a monotonically growing
/// collection of counter LVars, where each counter ... supports only bump."
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_DATA_COUNTER_H
#define LVISH_DATA_COUNTER_H

#include "src/check/LatticeChecker.h"
#include "src/core/LVarBase.h"
#include "src/core/Par.h"

#include <atomic>
#include <memory>
#include <vector>

namespace lvish {

/// Bump-only counter LVar; see file comment.
class Counter : public LVarBase {
public:
  explicit Counter(uint64_t SessionId) : LVarBase(SessionId), Value(0) {}

  /// Inflationary, commutative, non-idempotent update (exactly-once RMW).
  void bump(uint64_t Amount, Task *Writer) {
    checkSession(Writer);
    check::auditEffect(Writer, check::FxBump, "Counter bump");
    obs::count(obs::Event::Puts);
    if (Amount == 0) {
      obs::count(obs::Event::NoOpJoins);
      obs::count(obs::Event::NotifySkips);
      return;
    }
    if (isFrozen())
      putAfterFreezeError(Writer, this);
    // seq_cst RMW: on common targets no dearer than acq_rel (still one
    // locked/LL-SC op), and it lets notifyWaiters order its no-waiter
    // probe against this write without a standalone fence.
#if LVISH_CHECK
    uint64_t Old = Value.fetch_add(Amount, std::memory_order_seq_cst);
    if (check::sampleHit())
      check::checkBumpInflates(Old, Amount, "Counter");
#else
    Value.fetch_add(Amount, std::memory_order_seq_cst);
#endif
    notifyWaiters(Writer, NotifyOrder::StateSeqCst);
  }

  /// Exact value; deterministic only when frozen or quiescent.
  uint64_t peek() const { return Value.load(std::memory_order_acquire); }

  /// Threshold read: unblocks once the counter reaches \p N; returns only
  /// the threshold itself (the exact value is not observable).
  class WaitThresholdAwaiter {
  public:
    WaitThresholdAwaiter(Counter &C, Task *Reader, uint64_t N)
        : Ctr(C), Tsk(Reader), Threshold(N) {}

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      return Ctr.parkGet(Tsk, H, this);
    }
    uint64_t await_resume() const { return Threshold; }

    bool tryCapture() {
      return Ctr.Value.load(std::memory_order_acquire) >= Threshold;
    }

  private:
    Counter &Ctr;
    Task *Tsk;
    uint64_t Threshold;
  };

private:
  std::atomic<uint64_t> Value;
};

/// Allocates a zeroed counter.
template <EffectSet E> std::shared_ptr<Counter> newCounter(ParCtx<E> Ctx) {
  return std::make_shared<Counter>(Ctx.sessionId());
}

/// `incrCounter :: HasBump e => Counter s -> Par e s ()`
template <EffectSet E>
  requires(hasBump(E))
void incrCounter(ParCtx<E> Ctx, Counter &C, uint64_t Amount = 1) {
  C.bump(Amount, Ctx.task());
}

/// Blocks until the counter reaches \p N - the unified threshold-read
/// spelling; returns the threshold itself.
template <EffectSet E>
  requires(hasGet(E))
Counter::WaitThresholdAwaiter get(ParCtx<E> Ctx, Counter &C, uint64_t N) {
  return Counter::WaitThresholdAwaiter(C, Ctx.task(), N);
}

/// Freezes and reads the exact value.
template <EffectSet E>
  requires(hasFreeze(E))
uint64_t freezeCounter(ParCtx<E> Ctx, Counter &C) {
  C.checkSession(Ctx.task());
  check::auditEffect(Ctx.task(), check::FxFreeze, "Counter freeze");
  C.markFrozen();
  return C.peek();
}

/// A fixed-size array of bump-only counters sharing one LVar identity: the
/// distance-matrix shape from the PhyBin case study (Section 7.1). Element
/// counters are cache-line padded to keep concurrent bumps of neighboring
/// cells from false-sharing.
class CounterVec : public LVarBase {
  struct alignas(64) Cell {
    std::atomic<uint64_t> V{0};
  };

public:
  CounterVec(uint64_t SessionId, size_t N)
      : LVarBase(SessionId), Cells(N) {}

  size_t size() const { return Cells.size(); }

  void bumpAt(size_t I, uint64_t Amount, Task *Writer) {
    checkSession(Writer);
    check::auditEffect(Writer, check::FxBump, "CounterVec bump");
    assert(I < Cells.size() && "CounterVec index out of range");
    obs::count(obs::Event::Puts);
    if (Amount == 0) {
      obs::count(obs::Event::NoOpJoins);
      obs::count(obs::Event::NotifySkips);
      return;
    }
    if (isFrozen())
      putAfterFreezeError(Writer, this);
#if LVISH_CHECK
    uint64_t Old = Cells[I].V.fetch_add(Amount, std::memory_order_seq_cst);
    if (check::sampleHit())
      check::checkBumpInflates(Old, Amount, "CounterVec");
#else
    Cells[I].V.fetch_add(Amount, std::memory_order_seq_cst);
#endif
    // Threshold waiters on CounterVec are rare (the PhyBin pattern is
    // bump-then-freeze); skip the waiter scan when nobody waits. The
    // seq_cst RMW above stands in for the notify fence.
    notifyWaiters(Writer, NotifyOrder::StateSeqCst);
  }

  uint64_t peekAt(size_t I) const {
    assert(I < Cells.size() && "CounterVec index out of range");
    return Cells[I].V.load(std::memory_order_acquire);
  }

  /// Copies all cells out; deterministic once frozen/quiescent.
  std::vector<uint64_t> snapshot() const {
    std::vector<uint64_t> Out(Cells.size());
    for (size_t I = 0; I < Cells.size(); ++I)
      Out[I] = peekAt(I);
    return Out;
  }

private:
  std::vector<Cell> Cells;
};

/// Allocates a zeroed counter vector of \p N cells.
template <EffectSet E>
std::shared_ptr<CounterVec> newCounterVec(ParCtx<E> Ctx, size_t N) {
  return std::make_shared<CounterVec>(Ctx.sessionId(), N);
}

template <EffectSet E>
  requires(hasBump(E))
void incrCounterAt(ParCtx<E> Ctx, CounterVec &C, size_t I,
                   uint64_t Amount = 1) {
  C.bumpAt(I, Amount, Ctx.task());
}

template <EffectSet E>
  requires(hasFreeze(E))
std::vector<uint64_t> freezeCounterVec(ParCtx<E> Ctx, CounterVec &C) {
  C.checkSession(Ctx.task());
  check::auditEffect(Ctx.task(), check::FxFreeze, "CounterVec freeze");
  C.markFrozen();
  return C.snapshot();
}

} // namespace lvish

#endif // LVISH_DATA_COUNTER_H
