//===- AndLV.h - Parallel-and LVar and asyncAnd -----------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example (Section 2, Figure 1): an LVar storing the
/// result of a parallel logical "and" of two inputs. States are pairs of
/// {Bot, T, F} plus an error top; the threshold sets
///
///   bothtrue = { (T,T) }
///   anyfalse = { (F,Bot), (Bot,F), (F,T), (T,F), (F,F) }
///
/// are pairwise incompatible, so \c getAndLV is a deterministic read that
/// can unblock ("short-circuit") after only one input arrives, if that
/// input is false.
///
/// \c asyncAnd launches two boolean Par computations and combines them
/// through an AndLV; \c asyncAndTree folds it over a whole list, as in the
/// paper's 100-leaf example.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_DATA_ANDLV_H
#define LVISH_DATA_ANDLV_H

#include "src/core/Par.h"
#include "src/core/PureLVar.h"

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace lvish {

/// One input of the parallel and: unwritten, true, or false.
enum class Inp : uint8_t { Bot = 0, T = 1, F = 2 };

/// Lattice of Figure 1. nullopt is top (conflicting writes to one input);
/// Just(Bot,Bot) is bottom.
struct AndLattice {
  using ValueType = std::optional<std::pair<Inp, Inp>>;

  static ValueType bottom() { return std::make_pair(Inp::Bot, Inp::Bot); }

  static std::optional<Inp> joinInp(Inp X, Inp Y) {
    if (X == Y)
      return X;
    if (X == Inp::Bot)
      return Y;
    if (Y == Inp::Bot)
      return X;
    return std::nullopt; // T join F = top.
  }

  static ValueType join(const ValueType &A, const ValueType &B) {
    if (!A || !B)
      return std::nullopt;
    std::optional<Inp> X = joinInp(A->first, B->first);
    std::optional<Inp> Y = joinInp(A->second, B->second);
    if (!X || !Y)
      return std::nullopt;
    return std::make_pair(*X, *Y);
  }

  static bool isTop(const ValueType &A) { return !A.has_value(); }

  /// Enumerates the full 10-state lattice (for exhaustive law tests).
  static std::vector<ValueType> allStates() {
    std::vector<ValueType> States;
    for (Inp X : {Inp::Bot, Inp::T, Inp::F})
      for (Inp Y : {Inp::Bot, Inp::T, Inp::F})
        States.push_back(std::make_pair(X, Y));
    States.push_back(std::nullopt);
    return States;
  }
};

using AndLV = PureLVar<AndLattice>;

inline Inp toInp(bool B) { return B ? Inp::T : Inp::F; }

/// Allocates a fresh AndLV at bottom.
template <EffectSet E> std::shared_ptr<AndLV> newAndLV(ParCtx<E> Ctx) {
  return newPureLVar<AndLattice>(Ctx);
}

/// Writes the left (first) input.
template <EffectSet E>
  requires(hasPut(E))
void putAndLeft(ParCtx<E> Ctx, AndLV &LV, bool B) {
  putPureLVar(Ctx, LV, AndLattice::ValueType(std::make_pair(toInp(B),
                                                            Inp::Bot)));
}

/// Writes the right (second) input.
template <EffectSet E>
  requires(hasPut(E))
void putAndRight(ParCtx<E> Ctx, AndLV &LV, bool B) {
  putPureLVar(Ctx, LV, AndLattice::ValueType(std::make_pair(Inp::Bot,
                                                            toInp(B))));
}

/// Deterministic threshold read of the conjunction; may unblock after a
/// single false input (short-circuit).
template <EffectSet E>
  requires(hasGet(E))
Par<bool> getAndLV(ParCtx<E> Ctx, std::shared_ptr<AndLV> LV) {
  using VT = AndLattice::ValueType;
  auto Pair = [](Inp X, Inp Y) { return VT(std::make_pair(X, Y)); };
  ThresholdSets<VT> Triggers{
      /*bothtrue=*/{Pair(Inp::T, Inp::T)},
      /*anyfalse=*/
      {Pair(Inp::F, Inp::Bot), Pair(Inp::Bot, Inp::F), Pair(Inp::F, Inp::T),
       Pair(Inp::T, Inp::F), Pair(Inp::F, Inp::F)}};
  size_t Which = co_await get(Ctx, *LV, Triggers);
  co_return Which == 0;
}

/// Launches two boolean computations in parallel and returns the result of
/// their logical and (Section 2's asyncAnd). The callables are template
/// parameters (not std::function) so that passing stateless lambdas creates
/// no non-trivially-destructible temporaries in the caller's co_await
/// expression - see the GCC 12 note in src/core/Par.h.
template <EffectSet E, typename F1, typename F2>
  requires(hasPut(E) && hasGet(E))
Par<bool> asyncAnd(ParCtx<E> Ctx, F1 M1, F2 M2) {
  auto Res = newAndLV(Ctx);
  fork(Ctx, [Res, M1](ParCtx<E> C) -> Par<void> {
    bool B1 = co_await M1(C);
    putAndLeft(C, *Res, B1);
  });
  fork(Ctx, [Res, M2](ParCtx<E> C) -> Par<void> {
    bool B2 = co_await M2(C);
    putAndRight(C, *Res, B2);
  });
  bool Result = co_await getAndLV(Ctx, Res);
  co_return Result;
}

/// Balanced asyncAnd over a whole list of boolean computations (the
/// paper's foldr asyncAnd example, but as a tree so depth is logarithmic).
template <EffectSet E>
  requires(hasPut(E) && hasGet(E))
Par<bool> asyncAndTree(ParCtx<E> Ctx,
                       std::vector<std::function<Par<bool>(ParCtx<E>)>> Ms) {
  if (Ms.empty())
    co_return true;
  if (Ms.size() == 1)
    co_return co_await Ms.front()(Ctx);
  size_t Mid = Ms.size() / 2;
  std::vector<std::function<Par<bool>(ParCtx<E>)>> Left(
      Ms.begin(), Ms.begin() + static_cast<long>(Mid));
  std::vector<std::function<Par<bool>(ParCtx<E>)>> Right(
      Ms.begin() + static_cast<long>(Mid), Ms.end());
  // Named before the await: the capturing closures are not trivially
  // destructible (GCC 12 discipline, see src/core/Par.h).
  auto LeftBranch = [Left](ParCtx<E> C) -> Par<bool> {
    bool B = co_await asyncAndTree<E>(C, Left);
    co_return B;
  };
  auto RightBranch = [Right](ParCtx<E> C) -> Par<bool> {
    bool B = co_await asyncAndTree<E>(C, Right);
    co_return B;
  };
  bool Result = co_await asyncAnd<E>(Ctx, LeftBranch, RightBranch);
  co_return Result;
}

} // namespace lvish

#endif // LVISH_DATA_ANDLV_H
