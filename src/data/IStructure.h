//===- IStructure.h - Arrays of single-assignment slots ---------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// I-structures (Arvind, Nikhil & Pingali 1989, cited as [1] in the paper):
/// an array of write-once cells with blocking per-slot reads. The natural
/// substrate for dataflow-style array programs in a Par computation; used
/// by the functional merge-sort kernel to hand off sorted sub-results.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_DATA_ISTRUCTURE_H
#define LVISH_DATA_ISTRUCTURE_H

#include "src/core/IVar.h"

#include <memory>
#include <vector>

namespace lvish {

/// Fixed-size array of IVars sharing one session.
template <typename T> class IStructure {
public:
  IStructure(uint64_t SessionId, size_t N) {
    Slots.reserve(N);
    for (size_t I = 0; I < N; ++I)
      Slots.push_back(std::make_unique<IVar<T>>(SessionId));
  }

  size_t size() const { return Slots.size(); }

  IVar<T> &slot(size_t I) {
    assert(I < Slots.size() && "IStructure index out of range");
    return *Slots[I];
  }

private:
  std::vector<std::unique_ptr<IVar<T>>> Slots;
};

/// Allocates an IStructure of \p N empty slots.
template <typename T, EffectSet E>
std::shared_ptr<IStructure<T>> newIStructure(ParCtx<E> Ctx, size_t N) {
  return std::make_shared<IStructure<T>>(Ctx.sessionId(), N);
}

/// Writes slot \p I (single-assignment).
template <EffectSet E, typename T>
  requires(hasPut(E))
void putIdx(ParCtx<E> Ctx, IStructure<T> &S, size_t I, const T &V) {
  S.slot(I).putValue(V, Ctx.task());
}

/// Blocking read of slot \p I - the unified threshold-read spelling.
template <EffectSet E, typename T>
  requires(hasGet(E))
typename IVar<T>::GetAwaiter get(ParCtx<E> Ctx, IStructure<T> &S,
                                 size_t I) {
  return get(Ctx, S.slot(I));
}

} // namespace lvish

#endif // LVISH_DATA_ISTRUCTURE_H
