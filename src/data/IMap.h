//===- IMap.h - Monotone concurrent key-value map LVar ----------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `Data.LVar.Map` / `Data.LVar.PureMap`: a key-value map LVar supporting
/// concurrent insertion but not deletion or update. Each key behaves like
/// an IVar: inserting a key twice with conflicting values is a
/// deterministic error (per-key lattice top). \c lvish::get(Ctx, Map, Key)
/// (the paper's `getKey`) is the blocking threshold read from the
/// appendix shopping-cart example:
///
///   p = do cart <- newEmptyMap
///          fork (insert Book 2 cart)
///          fork (insert Shoes 1 cart)
///          getKey Book cart        -- blocks until Book is present
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_DATA_IMAP_H
#define LVISH_DATA_IMAP_H

#include "src/core/LVarBase.h"
#include "src/core/Par.h"
#include "src/data/MonotoneHashMap.h"

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace lvish {

/// Monotone map LVar; construct via \c newEmptyMap.
template <typename K, typename V, typename HashT = DefaultHash<K>>
class IMap : public LVarBase {
public:
  using DeltaType = std::pair<K, V>;
  using Handler = std::function<void(const DeltaType &)>;

  explicit IMap(uint64_t SessionId) : LVarBase(SessionId) {
    Handlers.store(std::make_shared<const std::vector<Handler>>());
  }

  /// Lub write: binds \p Key to \p Val. Re-inserting an equal value is a
  /// no-op; a conflicting value for an existing key is a deterministic
  /// error.
  void insertKV(const K &Key, const V &Val, Task *Writer) {
    checkSession(Writer);
    check::auditEffect(Writer, check::FxPut, "IMap insert");
    fault::injectPoint(fault::Point::Put, Writer);
    obs::count(obs::Event::Puts);
    AsymmetricGate::FastGuard Gate(HandlerGate);
    auto [Stored, Inserted] = Table.insert(Key, Val);
    if (!Inserted) {
      if constexpr (std::equality_comparable<V>) {
        if (*Stored == Val) {
          obs::count(obs::Event::NoOpJoins);
          obs::count(obs::Event::NotifySkips);
          return; // Idempotent repeat: no delta, nothing to wake.
        }
      }
      detail::raiseSessionFault(Writer, FaultCode::ConflictingInsert,
                                "conflicting insert for an existing IMap key "
                                "(per-key lattice top reached)",
                                debugName());
    }
    if (isFrozen())
      putAfterFreezeError(Writer, this);
    auto Snapshot = Handlers.load(std::memory_order_acquire);
    if (!Snapshot->empty()) {
      DeltaType Delta(Key, Val);
      for (const Handler &H : *Snapshot)
        H(Delta);
    }
    notifyDelta(Writer, HashT{}(Key), Table.size());
  }

  /// Non-blocking probe (deterministic only for keys known to be present,
  /// or when frozen). Returns a stable pointer or null.
  const V *lookupNow(const K &Key) const { return Table.find(Key); }

  /// Monotone get-or-create (LVish's `modify` for nested-LVar values): if
  /// \p Key is absent, binds it to \p Factory(); returns the stable stored
  /// value either way. Deterministic when the factory produces a fresh
  /// bottom LVar (every winner is indistinguishable) - the idiom behind
  /// "a map of sets" in the PhyBin parallelization (Section 7.1).
  template <typename FactoryT>
  const V &modifyKey(const K &Key, FactoryT Factory, Task *Writer) {
    checkSession(Writer);
    check::auditEffect(Writer, check::FxPut, "IMap modifyKey");
    fault::injectPoint(fault::Point::Put, Writer);
    if (const V *Existing = Table.find(Key))
      return *Existing;
    obs::count(obs::Event::Puts);
    AsymmetricGate::FastGuard Gate(HandlerGate);
    auto [Stored, Inserted] = Table.insert(Key, Factory());
    if (!Inserted) {
      obs::count(obs::Event::NoOpJoins);
      obs::count(obs::Event::NotifySkips);
      return *Stored; // Lost the race; the winner's value is canonical.
    }
    if (isFrozen())
      putAfterFreezeError(Writer, this);
    auto Snapshot = Handlers.load(std::memory_order_acquire);
    if (!Snapshot->empty()) {
      DeltaType Delta(Key, *Stored);
      for (const Handler &H : *Snapshot)
        H(Delta);
    }
    notifyDelta(Writer, HashT{}(Key), Table.size());
    return *Stored;
  }

  size_t sizeNow() const { return Table.size(); }

  void addHandlerRaw(Handler H, Task *Registrar) {
    checkSession(Registrar);
    AsymmetricGate::SlowGuard Gate(HandlerGate);
    auto Old = Handlers.load(std::memory_order_acquire);
    auto New = std::make_shared<std::vector<Handler>>(*Old);
    New->push_back(H);
    Handlers.store(std::shared_ptr<const std::vector<Handler>>(std::move(New)),
                   std::memory_order_release);
    Table.forEach([&H](const K &Key, const V &Val) {
      H(DeltaType(Key, Val));
    });
  }

  /// Sorted snapshot; call after freezing for deterministic iteration.
  std::vector<std::pair<K, V>> toSortedVector() const {
    assert(isFrozen() && "iterating an unfrozen IMap is nondeterministic");
    return Table.snapshotSorted();
  }

  /// Unordered traversal (post-freeze or at quiescence).
  template <typename FnT> void forEachFrozen(FnT &&Fn) const {
    assert(isFrozen() && "iterating an unfrozen IMap is nondeterministic");
    Table.forEach(Fn);
  }

  /// Threshold read: unblocks once \p Key is bound; returns its value.
  class GetKeyAwaiter {
  public:
    GetKeyAwaiter(IMap &M, Task *Reader, K Key)
        : Map(M), Tsk(Reader), Target(std::move(Key)) {}

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      return Map.parkGet(Tsk, H, this, WaitSlot::key(HashT{}(Target)));
    }
    V await_resume() { return std::move(*Out); }

    bool tryCapture() {
      const V *P = Map.Table.find(Target);
      if (!P)
        return false;
      Out = *P;
      return true;
    }

  private:
    IMap &Map;
    Task *Tsk;
    K Target;
    std::optional<V> Out;
  };

  /// Threshold read on cardinality.
  class WaitSizeAwaiter {
  public:
    WaitSizeAwaiter(IMap &M, Task *Reader, size_t N)
        : Map(M), Tsk(Reader), Threshold(N) {}

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      return Map.parkGet(Tsk, H, this, WaitSlot::size(Threshold));
    }
    void await_resume() const noexcept {}

    bool tryCapture() { return Map.Table.size() >= Threshold; }

  private:
    IMap &Map;
    Task *Tsk;
    size_t Threshold;
  };

private:
  MonotoneHashMap<K, V, HashT> Table;
  std::atomic<std::shared_ptr<const std::vector<Handler>>> Handlers;
};

/// Allocates an empty map for the current session.
template <typename K, typename V, EffectSet E>
std::shared_ptr<IMap<K, V>> newEmptyMap(ParCtx<E> Ctx) {
  return std::make_shared<IMap<K, V>>(Ctx.sessionId());
}

/// `insert :: HasPut e => k -> v -> IMap k s v -> Par e s ()`
template <EffectSet E, typename K, typename V, typename HashT>
  requires(hasPut(E))
void insert(ParCtx<E> Ctx, IMap<K, V, HashT> &Map, const K &Key,
            const V &Val) {
  Map.insertKV(Key, Val, Ctx.task());
}

/// `getKey :: HasGet e => k -> IMap k s v -> Par e s v` - the unified
/// threshold-read spelling: blocks until \p Key is bound, returns its
/// value.
template <EffectSet E, typename K, typename V, typename HashT>
  requires(hasGet(E))
typename IMap<K, V, HashT>::GetKeyAwaiter get(ParCtx<E> Ctx,
                                              IMap<K, V, HashT> &Map,
                                              K Key) {
  return typename IMap<K, V, HashT>::GetKeyAwaiter(Map, Ctx.task(),
                                                   std::move(Key));
}

/// Blocks until the map has at least \p N bindings.
template <EffectSet E, typename K, typename V, typename HashT>
  requires(hasGet(E))
typename IMap<K, V, HashT>::WaitSizeAwaiter
waitSize(ParCtx<E> Ctx, IMap<K, V, HashT> &Map, size_t N) {
  return typename IMap<K, V, HashT>::WaitSizeAwaiter(Map, Ctx.task(), N);
}

/// Freezes mid-computation (quasi-deterministic) and returns the sorted
/// contents.
template <EffectSet E, typename K, typename V, typename HashT>
  requires(hasFreeze(E))
std::vector<std::pair<K, V>> freezeMap(ParCtx<E> Ctx,
                                       IMap<K, V, HashT> &Map) {
  Map.checkSession(Ctx.task());
  check::auditEffect(Ctx.task(), check::FxFreeze, "IMap freeze");
  Map.markFrozen();
  return Map.toSortedVector();
}

} // namespace lvish

#endif // LVISH_DATA_IMAP_H
