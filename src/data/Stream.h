//===- Stream.h - Prefix-ordered streaming LVars ----------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic streaming on LVar foundations (Rioux & Zdancewic,
/// "Functional Meaning for Parallel Streaming"): a stream is a monotone
/// LVar over the prefix-ordered sequence lattice. The state is a partial
/// map index -> value; `put(Ctx, S, idx, v)` binds a producer-owned index
/// (each index written at most once, like an IVar cell), and the *observable*
/// state is the contiguous filled prefix, whose length only grows:
///  * out-of-order puts join into a hole-tracking buffer; filling the
///    lowest hole advances the prefix over every already-buffered cell;
///  * a duplicate put to an index is a no-op when the value is equal and a
///    deterministic \c FaultCode::ConflictingInsert otherwise (the per-index
///    lattice top, exactly IMap's per-key rule);
///  * threshold reads are the unified spellings - \c lvish::get(Ctx, S, N)
///    blocks until the filled prefix reaches length N and returns element
///    N-1 (stable information: cell N-1 of the prefix never changes), and
///    \c waitSize(Ctx, S, N) blocks on the same watermark returning only
///    the threshold. Both ride the sharded waiter table's size heap;
///  * handlers fire exactly once per filled cell (current and future),
///    receiving \c StreamDelta{index, value};
///  * \c freezeStream closes the stream and yields a zero-copy
///    \c Stream::View of the final prefix (quasi-deterministic unless done
///    at session quiescence, like every freeze).
///
/// \c BoundedStream adds deterministic backpressure: a producer putting at
/// index I blocks until `I < Released + Capacity`, where \c Released is a
/// monotone consumer watermark advanced by \c advance(Ctx, S, upTo). The
/// park condition is monotone in Released, so whether a producer blocks is
/// a deterministic function of the put/advance partial order; *which* of
/// several starved producers resumes first when a credit arrives is the one
/// genuinely schedule-dependent choice, and it is surfaced to the explorer
/// as its own decision kind (ScheduleCtl::onBackpressure) so src/explore/
/// enumerates and replays it bit-for-bit. Producers park in a dedicated
/// key bucket that appends never scan, so credit wakes and prefix wakes
/// stay disjoint.
///
/// Locking: state (cells + prefix length) is guarded by the inherited
/// \c WaitMutex (the IVar idiom - Bucket0's mutex doubles as the state
/// lock), with an atomic mirror of the prefix length so the size heap's
/// tryCapture - which runs under the heap lock - never takes the state
/// lock. Frame-safety: once parkGet returns true the coroutine may already
/// have been resumed and destroyed on another worker, so awaiters never
/// touch their own members after a successful park; wake-side telemetry is
/// counted in await_resume.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_DATA_STREAM_H
#define LVISH_DATA_STREAM_H

#include "src/check/LatticeChecker.h"
#include "src/core/Lattice.h"
#include "src/core/LVarBase.h"
#include "src/core/Par.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace lvish {

/// One filled stream cell, as delivered to handlers.
template <typename T> struct StreamDelta {
  uint64_t Index;
  T Value;
};

/// Prefix-ordered sequence LVar; construct via \c newStream. See file
/// comment.
template <typename T> class Stream : public LVarBase {
public:
  using DeltaType = StreamDelta<T>;
  using Handler = std::function<void(const DeltaType &)>;

  explicit Stream(uint64_t SessionId) : LVarBase(SessionId) {
    Handlers.store(std::make_shared<const std::vector<Handler>>());
  }

  /// Lub write: binds cell \p Idx to \p Val. Duplicate equal puts are
  /// no-ops; a conflicting value for a bound index is a deterministic
  /// error. Advances the filled prefix over any holes this put closes and
  /// wakes the prefix waiters it satisfies.
  void appendAt(uint64_t Idx, T Val, Task *Writer) {
    checkSession(Writer);
    check::auditEffect(Writer, check::FxPut, "Stream put");
    fault::injectPoint(fault::Point::Put, Writer);
    obs::count(obs::Event::Puts);
    AsymmetricGate::FastGuard Gate(HandlerGate);
    uint64_t NewFilled;
    {
      StateGuard Lock(WaitMutex);
      if (Idx < Cells.size() && Cells[Idx].has_value()) {
        if constexpr (std::equality_comparable<T>) {
          if (*Cells[Idx] == Val) {
            obs::count(obs::Event::NoOpJoins);
            obs::count(obs::Event::NotifySkips);
            return; // Idempotent repeat: no delta, nothing to wake.
          }
        }
        detail::raiseSessionFault(Writer, FaultCode::ConflictingInsert,
                                  "conflicting put for an already-bound "
                                  "Stream index (per-cell lattice top "
                                  "reached)",
                                  debugName());
      }
      // Frozen check under the state lock (freezeStream also locks), so a
      // View handed out by freeze can never race a cell write.
      if (isFrozen())
        putAfterFreezeError(Writer, this);
      if (Idx >= Cells.size())
        Cells.resize(Idx + 1);
      Cells[Idx] = std::move(Val);
#if LVISH_CHECK
      const uint64_t OldFilled = Filled;
#endif
      while (Filled < Cells.size() && Cells[Filled].has_value())
        ++Filled;
      NewFilled = Filled;
      FilledAtomic.store(NewFilled, std::memory_order_release);
#if LVISH_CHECK
      if (check::sampleHit())
        check::checkJoinLaws<MaxUint64Lattice>(OldFilled, NewFilled);
#endif
    }
    obs::count(obs::Event::StreamAppends);
    // Handler delivery outside the state lock (a handler may put back into
    // this stream); the FastGuard still excludes a concurrent registration
    // replay, so each cell is delivered exactly once.
    auto Snapshot = Handlers.load(std::memory_order_acquire);
    if (!Snapshot->empty()) {
      const DeltaType Delta{Idx, cellAt(Idx)};
      for (const Handler &H : *Snapshot)
        H(Delta);
    }
    notifyDelta(Writer, /*KeyHash=*/0, NewFilled);
  }

  /// Length of the contiguous filled prefix right now; deterministic only
  /// when frozen or quiescent (it is a monotone watermark otherwise).
  uint64_t filledNow() const {
    return FilledAtomic.load(std::memory_order_acquire);
  }

  /// Registers a handler; delivers every already-filled cell (including
  /// out-of-order cells beyond the current prefix), then every future one,
  /// exactly once (footnote-6 gate).
  void addHandlerRaw(Handler H, Task *Registrar) {
    checkSession(Registrar);
    AsymmetricGate::SlowGuard Gate(HandlerGate);
    auto Old = Handlers.load(std::memory_order_acquire);
    auto New = std::make_shared<std::vector<Handler>>(*Old);
    New->push_back(H);
    Handlers.store(std::shared_ptr<const std::vector<Handler>>(std::move(New)),
                   std::memory_order_release);
    std::vector<DeltaType> Replay;
    {
      StateGuard Lock(WaitMutex);
      for (uint64_t I = 0; I < Cells.size(); ++I)
        if (Cells[I].has_value())
          Replay.push_back(DeltaType{I, *Cells[I]});
    }
    for (const DeltaType &D : Replay)
      H(D);
  }

  /// Zero-copy snapshot of the final filled prefix, handed out by
  /// \c freezeStream. Valid as long as the stream outlives it; cells
  /// beyond the frozen prefix (unfilled holes' buffered successors) are
  /// not observable through the view.
  class View {
  public:
    View() = default;
    View(const Stream *S, uint64_t Len) : Src(S), Len(Len) {}

    uint64_t size() const { return Len; }
    bool empty() const { return Len == 0; }
    const T &operator[](uint64_t I) const {
      assert(I < Len && "Stream::View index out of range");
      return *Src->Cells[I];
    }

  private:
    const Stream *Src = nullptr;
    uint64_t Len = 0;
  };

  /// Closes the stream under the state lock and returns the final prefix
  /// view. Called by \c freezeStream (which audits the Freeze effect).
  View freezeNow() {
    StateGuard Lock(WaitMutex);
    markFrozen();
    return View(this, Filled);
  }

  /// Threshold read: unblocks once the filled prefix reaches length
  /// \p Threshold; returns a copy of element Threshold-1.
  class GetPrefixAwaiter {
  public:
    GetPrefixAwaiter(Stream &S, Task *Reader, uint64_t Threshold)
        : Str(S), Tsk(Reader), Threshold(Threshold) {
      assert(Threshold >= 1 && "prefix threshold must be at least 1");
    }

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      // Set before parkGet: after a successful park this frame may already
      // be resumed (and destroyed) on another worker, so no member of this
      // awaiter may be touched on this path again.
      Parked = true;
      if (Str.parkGet(Tsk, H, this, WaitSlot::size(Threshold)))
        return true;
      Parked = false;
      return false;
    }
    T await_resume() {
      if (Parked)
        obs::count(obs::Event::PrefixWakeups);
      typename Stream<T>::StateGuard Lock(Str.WaitMutex);
      return *Str.Cells[Threshold - 1];
    }

    // Size-heap contract: exactly "current size >= Threshold", against the
    // atomic mirror so the state lock is never taken under the heap lock.
    bool tryCapture() {
      return Str.FilledAtomic.load(std::memory_order_acquire) >= Threshold;
    }

  private:
    Stream &Str;
    Task *Tsk;
    uint64_t Threshold;
    bool Parked = false;
  };

  /// Threshold read on the prefix length alone (no element access).
  class WaitPrefixAwaiter {
  public:
    WaitPrefixAwaiter(Stream &S, Task *Reader, uint64_t Threshold)
        : Str(S), Tsk(Reader), Threshold(Threshold) {}

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      Parked = true;
      if (Str.parkGet(Tsk, H, this, WaitSlot::size(Threshold)))
        return true;
      Parked = false;
      return false;
    }
    void await_resume() {
      if (Parked)
        obs::count(obs::Event::PrefixWakeups);
    }

    bool tryCapture() {
      return Str.FilledAtomic.load(std::memory_order_acquire) >= Threshold;
    }

  private:
    Stream &Str;
    Task *Tsk;
    uint64_t Threshold;
    bool Parked = false;
  };

protected:
  /// Locked read of a cell known to be bound (a bound cell never changes,
  /// so the returned reference is stable after the lock drops).
  const T &cellAt(uint64_t Idx) const {
    StateGuard Lock(WaitMutex);
    return *Cells[Idx];
  }

  /// Contiguous-prefix mirror probed lock-free by size-heap tryCapture and
  /// the notify fast path.
  std::atomic<uint64_t> FilledAtomic{0};

private:
  /// Partial map index -> value (holes = unbound cells), guarded by
  /// WaitMutex.
  std::vector<std::optional<T>> Cells;
  /// Length of the contiguous filled prefix, guarded by WaitMutex;
  /// FilledAtomic mirrors it for lock-free probes.
  uint64_t Filled = 0;
  std::atomic<std::shared_ptr<const std::vector<Handler>>> Handlers;
};

/// Bounded variant with deterministic backpressure; see file comment.
/// Producers block while their index is at least \c Released + Capacity;
/// the consumer side grants credit with \c advance.
template <typename T> class BoundedStream : public Stream<T> {
public:
  /// Producers waiting for credit park in this key bucket; appends notify
  /// with KeyHash 0 so prefix deltas never scan it (disjoint wake paths).
  static constexpr uint64_t BackpressureKeyHash = 1;

  BoundedStream(uint64_t SessionId, uint64_t Capacity)
      : Stream<T>(SessionId), Capacity(Capacity) {
    assert(Capacity >= 1 && "BoundedStream capacity must be at least 1");
  }

  uint64_t capacity() const { return Capacity; }

  /// The consumer's monotone release watermark.
  uint64_t releasedNow() const {
    return Released.load(std::memory_order_acquire);
  }

  /// Consumer side: joins \p UpTo into the release watermark (CAS-max; a
  /// stale advance is a no-op, so racing consumers are deterministic) and
  /// grants the freed capacity to parked producers.
  void advanceTo(uint64_t UpTo, Task *Caller) {
    this->checkSession(Caller);
    check::auditEffect(Caller, check::FxPut, "BoundedStream advance");
    obs::count(obs::Event::Puts);
    uint64_t Old = Released.load(std::memory_order_relaxed);
    while (Old < UpTo &&
           !Released.compare_exchange_weak(Old, UpTo,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed)) {
    }
    if (Old >= UpTo) {
      obs::count(obs::Event::NoOpJoins);
      obs::count(obs::Event::NotifySkips);
      return; // Stale watermark: nothing newly released.
    }
#if LVISH_CHECK
    if (check::sampleHit())
      check::checkJoinLaws<MaxUint64Lattice>(Old, UpTo);
#endif
    this->notifyCredit(Caller, BackpressureKeyHash);
  }

  /// Blocking producer put: waits until index \p Idx is within the
  /// released capacity window, then binds the cell (same join semantics
  /// as the unbounded put).
  class PutAwaiter {
  public:
    PutAwaiter(BoundedStream &S, Task *Writer, uint64_t Idx, T Val)
        : Str(S), Tsk(Writer), Idx(Idx), Val(std::move(Val)) {}

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      Parked = true;
      if (Str.parkGet(Tsk, H, this, WaitSlot::key(BackpressureKeyHash)))
        return true;
      Parked = false;
      return false;
    }
    void await_resume() {
      if (Parked)
        obs::count(obs::Event::BackpressureParks);
      Str.appendAt(Idx, std::move(Val), Tsk);
    }

    // Monotone in Released: once the window admits Idx it stays admitted,
    // so whether this producer parks is deterministic.
    bool tryCapture() {
      return Idx < Str.Released.load(std::memory_order_acquire) +
                       Str.Capacity;
    }

  private:
    BoundedStream &Str;
    Task *Tsk;
    uint64_t Idx;
    T Val;
    bool Parked = false;
  };

private:
  const uint64_t Capacity;
  std::atomic<uint64_t> Released{0};
};

/// Allocates an empty (unbounded) stream for the current session.
template <typename T, EffectSet E>
std::shared_ptr<Stream<T>> newStream(ParCtx<E> Ctx) {
  return std::make_shared<Stream<T>>(Ctx.sessionId());
}

/// Allocates an empty bounded stream with \p Capacity cells of producer
/// headroom beyond the consumer's release watermark.
template <typename T, EffectSet E>
std::shared_ptr<BoundedStream<T>> newBoundedStream(ParCtx<E> Ctx,
                                                   uint64_t Capacity) {
  return std::make_shared<BoundedStream<T>>(Ctx.sessionId(), Capacity);
}

/// `put :: HasPut e => Stream s a -> Int -> a -> Par e s ()` - binds cell
/// \p Idx (producer-owned index). Non-blocking.
template <EffectSet E, typename T>
  requires(hasPut(E))
void put(ParCtx<E> Ctx, Stream<T> &S, uint64_t Idx, T Val) {
  S.appendAt(Idx, std::move(Val), Ctx.task());
}

/// Bounded producer put: `co_await put(Ctx, S, Idx, Val)`. Requires Get as
/// well as Put - waiting for the consumer's release watermark IS a
/// threshold read (the producer learns monotone information about
/// Released before writing).
template <EffectSet E, typename T>
  requires(hasPut(E) && hasGet(E))
typename BoundedStream<T>::PutAwaiter put(ParCtx<E> Ctx, BoundedStream<T> &S,
                                          uint64_t Idx, T Val) {
  return typename BoundedStream<T>::PutAwaiter(S, Ctx.task(), Idx,
                                               std::move(Val));
}

/// Blocks until the filled prefix reaches length \p N (N >= 1) and returns
/// element N-1 - the unified threshold-read spelling.
template <EffectSet E, typename T>
  requires(hasGet(E))
typename Stream<T>::GetPrefixAwaiter get(ParCtx<E> Ctx, Stream<T> &S,
                                         uint64_t N) {
  return typename Stream<T>::GetPrefixAwaiter(S, Ctx.task(), N);
}

/// Blocks until the filled prefix reaches length \p N; returns only the
/// threshold (the element itself is not observed).
template <EffectSet E, typename T>
  requires(hasGet(E))
typename Stream<T>::WaitPrefixAwaiter waitSize(ParCtx<E> Ctx, Stream<T> &S,
                                               uint64_t N) {
  return typename Stream<T>::WaitPrefixAwaiter(S, Ctx.task(), N);
}

/// Consumer side of a BoundedStream: releases producer capacity up to
/// index \p UpTo (exclusive). A put-class effect - it joins a monotone
/// watermark and can only unblock writers.
template <EffectSet E, typename T>
  requires(hasPut(E))
void advance(ParCtx<E> Ctx, BoundedStream<T> &S, uint64_t UpTo) {
  S.advanceTo(UpTo, Ctx.task());
}

/// Freezes mid-computation (quasi-deterministic) and returns the zero-copy
/// view of the final filled prefix.
template <EffectSet E, typename T>
  requires(hasFreeze(E))
typename Stream<T>::View freezeStream(ParCtx<E> Ctx, Stream<T> &S) {
  S.checkSession(Ctx.task());
  check::auditEffect(Ctx.task(), check::FxFreeze, "Stream freeze");
  return S.freezeNow();
}

} // namespace lvish

#endif // LVISH_DATA_STREAM_H
