//===- ParRng.h - Deterministic parallel random numbers ---------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c RngT (Section 4): deterministic pseudo-random number generation as an
/// application of splittable state. "The idea is simple: either use the
/// pedigree itself as a seed, or keep the random generator state itself
/// with StateT." We keep a SplitMix64 generator in a state layer: at every
/// fork it splits into two independent streams, so the numbers any task
/// draws depend only on its position in the fork tree - never on the
/// schedule. "In LVish, no such runtime system modification is necessary"
/// (contrast with Intel's Cilk changes).
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_TRANS_PARRNG_H
#define LVISH_TRANS_PARRNG_H

#include "src/support/SplitMix.h"
#include "src/trans/StateLayer.h"

namespace lvish {

/// Splittable-generator state; the SplittableState instance mirrors
/// `instance RandomGen g => SplittableState g` in the paper.
struct RngState {
  SplitMix64 Gen;

  RngState splitForChild() {
    auto [L, R] = Gen.split();
    Gen = R;
    return RngState{L};
  }
};

struct RngTag {};

/// Runs \p Body with a deterministic parallel RNG seeded by \p Seed.
template <EffectSet E, typename F>
auto withRng(ParCtx<E> Ctx, uint64_t Seed, F Body) {
  return withState<RngState, RngTag>(Ctx, RngState{SplitMix64(Seed)}, Body);
}

/// The nullary `rand` of the paper: callable on any task under withRng.
template <EffectSet E> uint64_t rand(ParCtx<E> Ctx) {
  return stateRef<RngState, RngTag>(Ctx).Gen.next();
}

/// Uniform value in [0, Bound).
template <EffectSet E> uint64_t randBounded(ParCtx<E> Ctx, uint64_t Bound) {
  return stateRef<RngState, RngTag>(Ctx).Gen.nextBounded(Bound);
}

/// Uniform double in [0, 1).
template <EffectSet E> double randDouble(ParCtx<E> Ctx) {
  return stateRef<RngState, RngTag>(Ctx).Gen.nextDouble();
}

} // namespace lvish

#endif // LVISH_TRANS_PARRNG_H
