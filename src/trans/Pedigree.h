//===- Pedigree.h - Fork-tree pedigrees as a transformer --------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c PedigreeT (Section 4): "keeps the index in the binary control-flow
/// tree as implicit state, e.g. 'LRRLL' ... In this case the split action
/// is to add 'L' or 'R' for each branch of the fork, respectively.
/// Pedigrees can then be augmented with counters that increase with certain
/// sequential actions, thus providing a form of parallel program counter."
/// Intel modified the Cilk runtime to support this (Leiserson et al.,
/// PPoPP 2012); in LVish it is just a state layer.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_TRANS_PEDIGREE_H
#define LVISH_TRANS_PEDIGREE_H

#include "src/trans/StateLayer.h"

#include <string>

namespace lvish {

/// The pedigree state: path in the fork tree plus a sequential counter.
struct PedigreeState {
  std::string Path;      ///< 'L'/'R' per fork, root is "".
  uint64_t SeqCount = 0; ///< Bumped by \c pedigreeTick.

  /// Fork split: the child descends Left, the parent continues Right.
  PedigreeState splitForChild() {
    PedigreeState Child{Path + 'L', 0};
    Path += 'R';
    SeqCount = 0;
    return Child;
  }
};

struct PedigreeTag {};

/// Runs \p Body with pedigree tracking; forks inside extend the path.
template <EffectSet E, typename F>
auto withPedigree(ParCtx<E> Ctx, F Body) {
  return withState<PedigreeState, PedigreeTag>(Ctx, PedigreeState{}, Body);
}

/// The current task's pedigree path (requires withPedigree in scope).
template <EffectSet E> std::string pedigree(ParCtx<E> Ctx) {
  return stateRef<PedigreeState, PedigreeTag>(Ctx).Path;
}

/// Advances the sequential component of the pedigree "program counter".
template <EffectSet E> void pedigreeTick(ParCtx<E> Ctx) {
  ++stateRef<PedigreeState, PedigreeTag>(Ctx).SeqCount;
}

/// Full pedigree including the sequential counter, e.g. "LRL#3".
template <EffectSet E> std::string pedigreeFull(ParCtx<E> Ctx) {
  PedigreeState &S = stateRef<PedigreeState, PedigreeTag>(Ctx);
  return S.Path + "#" + std::to_string(S.SeqCount);
}

/// Answers "could A have happened before B?" for two pedigrees: true iff
/// A is a proper prefix of B on the Right spine... conservatively, two
/// pedigrees are concurrent unless one is an ancestor of the other in the
/// fork tree. Examining pedigrees at runtime "can answer happens-before or
/// happens-in-parallel questions" (Section 4).
inline bool pedigreesConcurrent(const std::string &A, const std::string &B) {
  size_t N = std::min(A.size(), B.size());
  size_t I = 0;
  while (I < N && A[I] == B[I])
    ++I;
  if (I == A.size() || I == B.size())
    return false; // One is an ancestor of (or equal to) the other.
  return true;    // They diverged at a fork: parallel branches.
}

} // namespace lvish

#endif // LVISH_TRANS_PEDIGREE_H
