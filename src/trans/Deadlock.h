//===- Deadlock.h - Deadlock-detecting scopes (DeadlockT) -------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c DeadlockT (Section 6): "returns when all computations underneath a
/// forked child have either returned or blocked indefinitely. This
/// transformer is useful for detecting and responding to cycles in graphs
/// of computations."
///
/// The child computation and everything it forks are counted by a
/// Runnable-mode TaskScope: a task leaves the count when it finishes or
/// parks, re-enters when woken. The scope drains exactly at the paper's
/// condition. Two obligations carry over:
///
///  * Children must be "blind" toward the outside world: they may write
///    LVars visible outside but must only *read* LVars created inside the
///    scope. "If they could read [outside data], they could block on data
///    outside of their control, which creates ambiguity between genuine
///    deadlock and temporary blocking." The effect system cannot see
///    inside/outside, so this is a documented contract (checked in spirit
///    by requiring HasPut; reads remain possible for scope-internal
///    dataflow).
///  * Tasks left permanently blocked are reaped at the end of the session
///    (see Scheduler::finishSession); their effects can never occur.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_TRANS_DEADLOCK_H
#define LVISH_TRANS_DEADLOCK_H

#include "src/check/EffectAuditor.h"
#include "src/core/Par.h"
#include "src/sched/TaskScope.h"

#include <memory>

namespace lvish {

/// What a deadlock scope observed once it drained.
struct DeadlockReport {
  /// Tasks of the scope still alive (necessarily parked) at drain time:
  /// 0 means everything returned; > 0 means a deadlock (e.g. a dependency
  /// cycle) left that many tasks permanently blocked.
  int64_t BlockedTasks = 0;

  bool deadlocked() const { return BlockedTasks > 0; }
};

namespace detail {

/// Awaits a Runnable-mode scope's drain.
class ScopeDrainAwaiter {
public:
  ScopeDrainAwaiter(std::shared_ptr<TaskScope> S, Task *T)
      : Scope(std::move(S)), Tsk(T) {}

  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> H) {
    if (Tsk->isCancelled()) {
      Tsk->Sched->deferRetire(Tsk);
      return true;
    }
    Tsk->Resume = H;
    return Scope->parkUntilDrained(Tsk);
  }
  void await_resume() const noexcept {}

private:
  std::shared_ptr<TaskScope> Scope;
  Task *Tsk;
};

} // namespace detail

/// Runs \p Body as a forked child under deadlock detection; returns when
/// every task underneath has returned or blocked indefinitely, reporting
/// how many remained blocked.
template <EffectSet E, typename F>
  requires(hasPut(E) && hasGet(E))
Par<DeadlockReport> forkWithDeadlockDetection(ParCtx<E> Ctx, F Body) {
  static_assert(std::is_invocable_r_v<Par<void>, F, ParCtx<E>>,
                "deadlock-scope body must be Par<void>(ParCtx<E>)");
  // Runnable scope detects the returned-or-blocked condition; the Live
  // twin lets us count how many tasks were still alive (blocked) at drain.
  auto Runnable = std::make_shared<TaskScope>(TaskScope::Mode::Runnable);
  auto Live = std::make_shared<TaskScope>(TaskScope::Mode::Live);

  Par<void> Wrapper = detail::forkBody<E>(std::move(Body));
  Task *Child = detail::installTaskRoot(*Ctx.sched(), std::move(Wrapper),
                                        Ctx.task());
  check::declareTaskEffects(Child, check::effectMask(E));
  Child->Scopes.push_back(Runnable.get());
  Child->Scopes.push_back(Live.get());
  // Blocked descendants may be retired long after this frame returns;
  // anchor the scopes to every task that references them.
  Child->Keepalives.push_back(Runnable);
  Child->Keepalives.push_back(Live);
  Runnable->enter();
  Live->enter();
  Ctx.sched()->schedule(Child);

  co_await detail::ScopeDrainAwaiter(Runnable, Ctx.task());
  DeadlockReport Report;
  Report.BlockedTasks = Live->activeCount();
  co_return Report;
}

} // namespace lvish

#endif // LVISH_TRANS_DEADLOCK_H
