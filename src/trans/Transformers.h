//===- Transformers.h - Umbrella for Par transformers ------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella for the "parallel effect zoo": state threading, pedigrees,
/// deterministic RNG, cancellation, disjoint destructive state, deadlock
/// detection, bulk retry, and memoization.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_TRANS_TRANSFORMERS_H
#define LVISH_TRANS_TRANSFORMERS_H

#include "src/trans/BulkRetry.h"   // IWYU pragma: export
#include "src/trans/Cancel.h"      // IWYU pragma: export
#include "src/trans/Deadlock.h"    // IWYU pragma: export
#include "src/trans/Memo.h"        // IWYU pragma: export
#include "src/trans/ParRng.h"      // IWYU pragma: export
#include "src/trans/ParST.h"       // IWYU pragma: export
#include "src/trans/Pedigree.h"    // IWYU pragma: export
#include "src/trans/StateLayer.h"  // IWYU pragma: export

#endif // LVISH_TRANS_TRANSFORMERS_H
