//===- Memo.h - Memo tables from Set and Map LVars --------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoization (Section 6.2): "A basic memo table has a direct encoding
/// using only the public interface of Set and Map LVars. Specifically, we
/// use one LVar for requests and a second for results":
///
///   type Memo e s k v = (ISet s k, IMap k s v)
///
/// A handler on the request set launches one compute job per unique key;
/// the job stores (k, v) into the result map. "Doing a lookup on the memo
/// table consists of simply inserting into the set, and then performing a
/// blocking get on the map."
///
/// The synergy with cancellation: a lookup is a put (it writes the request
/// set), so a plain \c getMemo cannot run inside a cancellable (ReadOnly)
/// computation. But when the memoized function is itself ReadOnly, the
/// request-put's only observable effect is that memoized calls get faster -
/// so \c getMemoRO blesses it, and cancelled speculative branches can
/// deposit reusable memo entries: "one can learn something from a
/// computation that never happened - deterministically!"
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_TRANS_MEMO_H
#define LVISH_TRANS_MEMO_H

#include "src/core/HandlerPool.h"
#include "src/data/IMap.h"
#include "src/data/ISet.h"

#include <memory>

namespace lvish {

/// A memo table for a function K -> V whose effect level is \p FE.
template <typename K, typename V, EffectSet FE = Eff::ReadOnly> class Memo {
public:
  Memo(std::shared_ptr<ISet<K>> Req, std::shared_ptr<IMap<K, V>> Res,
       std::shared_ptr<HandlerPool> P)
      : Requests(std::move(Req)), Results(std::move(Res)),
        Pool(std::move(P)) {}

  std::shared_ptr<ISet<K>> Requests;
  std::shared_ptr<IMap<K, V>> Results;
  std::shared_ptr<HandlerPool> Pool;
};

/// Builds a memo table for \p Fn (signature `Par<V>(ParCtx<FE>, K)`).
/// Jobs for distinct keys run in parallel; duplicate requests are
/// deduplicated by the request set's lub semantics.
template <typename K, EffectSet FE = Eff::ReadOnly, EffectSet E, typename F>
auto makeMemo(ParCtx<E> Ctx, F Fn) {
  using RetPar = std::invoke_result_t<F, ParCtx<FE>, K>;
  using V = decltype(std::declval<RetPar>().await_resume());
  auto Requests = newISet<K>(Ctx);
  auto Results = newEmptyMap<K, V>(Ctx);
  auto Pool = newPool(Ctx);
  // The handler needs FE (to run Fn) plus Put/Get (to fill the results
  // map); that wrapper is trusted code.
  constexpr EffectSet HE = FE | Eff::Det;
  ParCtx<HE> RegCtx = detail::CtxAccess::make<HE>(Ctx.task());
  [[maybe_unused]] HandlerHandle H =
      addHandler(RegCtx, Pool, *Requests,
                 [Results, Fn](ParCtx<HE> C, const K &Key) -> Par<void> {
                   ParCtx<FE> FnCtx = C; // Subsumption: restrict to FE.
                   V Val = co_await Fn(FnCtx, Key);
                   insert(C, *Results, Key, Val);
                 });
  return std::make_shared<Memo<K, V, FE>>(Requests, Results, Pool);
}

/// Memoized call: insert the request (a put effect!), then block on the
/// result. "Reading from a memo table has a put effect" - hence HasPut.
template <EffectSet E, typename K, typename V, EffectSet FE>
  requires(hasPut(E) && hasGet(E))
Par<V> getMemo(ParCtx<E> Ctx, std::shared_ptr<Memo<K, V, FE>> M, K Key) {
  // Hit/miss is probed before the insert; racing lookups of a fresh key
  // may each count a miss, which matches how much work was *requested*.
  obs::count(M->Requests->containsElem(Key) ? obs::Event::MemoHits
                                            : obs::Event::MemoMisses);
  insert(Ctx, *M->Requests, Key);
  V Val = co_await get(Ctx, *M->Results, Key);
  co_return Val;
}

/// `getMemoRO :: ReadOnly e => Memo e s k v -> k -> Par e s v` - callable
/// from read-only (hence cancellable) computations, provided the memoized
/// function is itself ReadOnly. The request-put is hidden ("blessed as
/// safe/unobservable") because its only effect is accelerating other
/// memoized calls.
template <EffectSet E, typename K, typename V, EffectSet FE>
  requires(hasGet(E) && readOnly(FE))
Par<V> getMemoRO(ParCtx<E> Ctx, std::shared_ptr<Memo<K, V, FE>> M, K Key) {
  obs::count(M->Requests->containsElem(Key) ? obs::Event::MemoHits
                                            : obs::Event::MemoMisses);
  constexpr EffectSet Blessed{true, true, false, false, false, false};
  ParCtx<Blessed> Full = detail::CtxAccess::make<Blessed>(Ctx.task());
  {
    check::BlessScope Bless(Ctx.task(), check::FxPut);
    insert(Full, *M->Requests, Key);
  }
  V Val = co_await get(Ctx, *M->Results, Key);
  co_return Val;
}

} // namespace lvish

#endif // LVISH_TRANS_MEMO_H
