//===- Cancel.h - Deterministic speculation and cancellation ----*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c CancelT (Section 6.1): speculative parallel computations that can be
/// cancelled without breaking determinism.
///
///  * \c forkCancelable runs a *read-only* computation in parallel and
///    returns a cancellable future. Read-only-ness (enforced by the effect
///    system) is what makes cancellation safe: a computation with no
///    visible effect but its result can disappear without changing any
///    observable outcome.
///  * \c cancel kills the future "and all of that thread's subthreads,
///    transitively". Because cancellation may deterministically deprive a
///    reader of a value, cancel itself counts as a put effect.
///  * "It is an error to both cancel and read such a future, even if the
///    read happens first" - both orders raise the same deterministic error.
///  * \c forkCancelableND allows arbitrary effects in the child but
///    requires the nondeterminism (IO) bit in the *parent's* signature.
///
/// Implementation: one CancelNode per cancellable future ("this location
/// stores a tuple (live, children)"); regular forks share the parent's
/// node. The scheduler polls liveness "every time a scheduler action (get,
/// fork, put, and so on) is performed. Because scheduler actions are
/// frequent, this is sufficient" - no asynchronous-exception machinery.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_TRANS_CANCEL_H
#define LVISH_TRANS_CANCEL_H

#include "src/check/EffectAuditor.h"
#include "src/core/IVar.h"
#include "src/core/Par.h"

#include <memory>

namespace lvish {

/// A cancellable future: the result IVar plus the cancellation-tree node
/// guarding the computation that fills it.
template <typename T> class CFuture {
public:
  CFuture(std::shared_ptr<IVar<T>> R, std::shared_ptr<CancelNode> N)
      : Result(std::move(R)), Node(std::move(N)) {}

  const std::shared_ptr<IVar<T>> &result() const { return Result; }
  const std::shared_ptr<CancelNode> &node() const { return Node; }

private:
  std::shared_ptr<IVar<T>> Result;
  std::shared_ptr<CancelNode> Node;
};

namespace detail {

/// Spawns \p Body as a new task under a fresh cancellation node, funneling
/// its result into an IVar. \p ChildE is the effect level handed to the
/// child's body; the internal result-put is trusted code (blessed), like
/// the hidden put inside getMemoRO.
template <EffectSet ChildE, typename T, EffectSet E, typename F>
CFuture<T> forkCancelableImpl(ParCtx<E> Ctx, F Body) {
  auto Result = std::make_shared<IVar<T>>(Ctx.sessionId());
  auto Node = std::make_shared<CancelNode>();
  Ctx.task()->Cancel->addChild(Node);
  Par<void> Wrapper = forkBody<ChildE>(
      [Result, B = std::move(Body)](ParCtx<ChildE> C) mutable -> Par<void> {
        T V = co_await B(C);
        // Trusted: materialize a put-capable context to fill the future.
        // A cancellable future "must have no visible effect but its
        // result"; this is that result.
        constexpr EffectSet Blessed{true, true, false, false, false, false};
        ParCtx<Blessed> Full = CtxAccess::make<Blessed>(C.task());
        check::BlessScope Bless(C.task(), check::FxPut);
        put(Full, *Result, V);
      });
  Task *T_ = installTaskRoot(*Ctx.sched(), std::move(Wrapper), Ctx.task());
  T_->Cancel = Node; // Override the inherited node: new cancellable scope.
  check::declareTaskEffects(T_, check::effectMask(ChildE));
  Ctx.sched()->schedule(T_);
  return CFuture<T>(std::move(Result), std::move(Node));
}

} // namespace detail

/// `forkCancelable :: (ReadOnly m, ...) => CancelT m a -> CancelT m (CFuture m a)`
/// The child body runs at ReadOnly effect level; its type is
/// `Par<T>(ParCtx<Eff::ReadOnly>)`.
template <typename F, EffectSet E>
auto forkCancelable(ParCtx<E> Ctx, F Body) {
  using RetPar = std::invoke_result_t<F, ParCtx<Eff::ReadOnly>>;
  using T = decltype(std::declval<RetPar>().await_resume());
  return detail::forkCancelableImpl<Eff::ReadOnly, T>(Ctx, std::move(Body));
}

/// Variant allowing arbitrary effects in the child; correspondingly the
/// parent computation must admit nondeterminism (HasIO), as in the paper.
template <typename F, EffectSet E>
  requires(hasIO(E))
auto forkCancelableND(ParCtx<E> Ctx, F Body) {
  using RetPar = std::invoke_result_t<F, ParCtx<E>>;
  using T = decltype(std::declval<RetPar>().await_resume());
  return detail::forkCancelableImpl<E, T>(Ctx, std::move(Body));
}

/// `cancel :: (HasPut m2, ...) => CFuture m1 a -> CancelT m2 ()`
/// Kills the future's computation and all of its subthreads, transitively.
/// Deterministic error if the future was (or is later) read.
template <EffectSet E, typename T>
  requires(hasPut(E))
void cancel(ParCtx<E> Ctx, const CFuture<T> &Future) {
  obs::count(obs::Event::Cancellations);
  Future.node()->cancel();
  if (Future.node()->noteCancelConflict())
    detail::raiseSessionFault(Ctx.task(), FaultCode::CancelReadConflict,
                              "a CFuture was both cancelled and read "
                              "(order-independent determinism error)");
}

/// Blocking read of a cancellable future. Deterministic error if the
/// future was (or is later) cancelled - even when the read "wins".
template <EffectSet E, typename T>
  requires(hasGet(E))
Par<T> readCFuture(ParCtx<E> Ctx, CFuture<T> Future) {
  if (Future.node()->noteRead())
    detail::raiseSessionFault(Ctx.task(), FaultCode::CancelReadConflict,
                              "a CFuture was both cancelled and read "
                              "(order-independent determinism error)");
  T V = co_await get(Ctx, *Future.result());
  co_return V;
}

} // namespace lvish

#endif // LVISH_TRANS_CANCEL_H
