//===- StateLayer.h - Splittable per-task implicit state --------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The \c StateT Par-monad transformer of Section 4: "even if m is a Par
/// monad, for StateT s m to also be a Par monad, the state s must be
/// *splittable*; that is, it must be specified what is to be done with the
/// state at fork points in the control flow."
///
/// In lvish-cpp a transformer is a *layer* on the task's layer stack (see
/// src/sched/Task.h). \c withState pushes a layer holding a value of any
/// \c SplittableState type for the dynamic extent of a computation; every
/// \c fork inside that extent splits the value between parent and child,
/// exactly like the paper's
///
///   instance (SplittableState s, ParMonad m) => ParMonad (StateT s m)
///
/// Layers compose: nesting two \c withState calls (even at the same type,
/// with different tags) stacks two transformers, which the paper notes is
/// impossible for capabilities baked into the scheduler.
///
/// Determinism: like StateT, this is "effectively syntactic sugar" - an
/// implicit argument and return value - so it cannot break the determinism
/// of the underlying Par computation.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_TRANS_STATELAYER_H
#define LVISH_TRANS_STATELAYER_H

#include "src/core/Par.h"

#include <concepts>
#include <memory>
#include <utility>

namespace lvish {

/// A state that knows how to split itself at a fork: the parent keeps the
/// mutated *this, the child receives the returned value. This is
/// `splitState :: a -> (a, a)` with the parent's half threaded in place.
template <typename S>
concept SplittableState = requires(S A) {
  { A.splitForChild() } -> std::convertible_to<S>;
};

/// Default discriminator for \c withState layers; supply your own empty
/// tag struct to stack two independent layers of the same state type.
struct DefaultStateTag {};

namespace detail {

template <typename S, typename Tag>
class StateLayerNode final : public LayerState {
public:
  explicit StateLayerNode(S V) : Value(std::move(V)) {}

  std::unique_ptr<LayerState> splitForChild() override {
    return std::make_unique<StateLayerNode>(Value.splitForChild());
  }

  const void *typeKey() const override { return key(); }

  static const void *key() {
    static const char Key = 0;
    return &Key;
  }

  S Value;
};

} // namespace detail

/// Returns a reference to the innermost state layer of type \p S (tag
/// \p Tag) on the current task. Fatal if no such layer is in scope - the
/// moral equivalent of using a StateT operation outside the transformer.
template <typename S, typename Tag = DefaultStateTag, EffectSet E>
  requires SplittableState<S>
S &stateRef(ParCtx<E> Ctx) {
  using Node = detail::StateLayerNode<S, Tag>;
  LayerState *L = Ctx.task()->findLayer(Node::key());
  if (!L)
    // Static misuse of the transformer stack, caught before any task
    // could differ on it. lvish-lint: allow(fatal)
    fatalError("stateRef: no matching state layer in scope (withState "
               "missing from the transformer stack)");
  return static_cast<Node *>(L)->Value;
}

/// True if a state layer of type \p S / \p Tag is in scope.
template <typename S, typename Tag = DefaultStateTag, EffectSet E>
  requires SplittableState<S>
bool hasStateLayer(ParCtx<E> Ctx) {
  return Ctx.task()->findLayer(detail::StateLayerNode<S, Tag>::key()) !=
         nullptr;
}

/// Runs \p Body with a state layer holding \p Init pushed for its dynamic
/// extent; forks inside split the state. Returns Body's result. The layer
/// is popped afterwards (already-forked children keep their split copies).
template <typename S, typename Tag = DefaultStateTag, EffectSet E,
          typename F>
  requires SplittableState<S>
auto withState(ParCtx<E> Ctx, S Init, F Body)
    -> std::invoke_result_t<F, ParCtx<E>> {
  using Node = detail::StateLayerNode<S, Tag>;
  Task *T = Ctx.task();
  T->Layers.push_back(std::make_unique<Node>(std::move(Init)));
  // NOTE: the pop below runs when Body completes, on whatever the task's
  // layer stack is then. Body must not leak un-popped layers.
  if constexpr (std::is_void_v<
                    decltype(std::declval<std::invoke_result_t<F, ParCtx<E>>>()
                                 .await_resume())>) {
    co_await Body(Ctx);
    T->Layers.pop_back();
    co_return;
  } else {
    auto R = co_await Body(Ctx);
    T->Layers.pop_back();
    co_return R;
  }
}

/// Trivially splittable wrapper: both sides get copies (the "duplicated"
/// split policy the paper mentions).
template <typename S> struct Duplicated {
  S Value;
  Duplicated splitForChild() const { return Duplicated{Value}; }
};

} // namespace lvish

#endif // LVISH_TRANS_STATELAYER_H
