//===- ParST.h - Disjoint destructive parallel state ------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c ParST (Section 5): "it should be possible for threads to update
/// memory destructively, so long as the memory updated by different
/// threads is disjoint" - Deterministic Parallel Java's discipline,
/// integrated with blocking LVar dataflow.
///
/// The mutable state is accessed through \c VecView slices. Safety rests on
/// the paper's two requirements, transposed to C++:
///
///  * Disjointness. \c forkSTSplit partitions a view at a split point and
///    runs two child computations fork-join style, each seeing only its
///    half (child index 0 of the right half is global index split). While
///    the children run, the parent's view is *generation-poisoned*: any
///    access through it aborts. (Haskell used higher-rank types to make
///    this a compile error; without effect typing we make it a runtime
///    check, as anticipated by this reproduction's calibration notes.)
///  * Alias freedom. "Users do not populate the state directly, but only
///    describe a recipe for its creation": \c runParVec allocates the
///    vector itself and hands the body a unique root view, so two views
///    can never secretly alias unless produced by splitting - which is
///    disjoint by construction.
///
/// The ST capability is a one-shot switch on the effect set: \c runParVec
/// requires a not-yet-ST context and provides an ST one; \c forkSTSplit
/// requires ST. "A given Par monad can either have the ST feature, or not
/// ... It is not safe to combine two copies of ParST." Reordering-tolerant
/// transformers (withState, withRng, ...) compose freely on either side.
///
/// State transformation: \c zoomIn runs a computation on a sub-range, and
/// \c withTempBuffer "zooms out" by pairing the state with a fresh scratch
/// vector (the shape the merge phase of the parallel sort needs).
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_TRANS_PARST_H
#define LVISH_TRANS_PARST_H

#include "src/check/DisjointnessChecker.h"
#include "src/check/EffectAuditor.h"
#include "src/core/IVar.h"
#include "src/core/Par.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

namespace lvish {

/// An alias-free window onto a contiguous block of mutable state. Cheap to
/// copy; validity is tracked by a generation cell shared with the region's
/// current owner chain.
template <typename T> class VecView {
public:
  VecView() : Data(nullptr), Len(0), Gen(nullptr), MyGen(0) {}

  VecView(T *D, size_t N, std::shared_ptr<std::atomic<uint64_t>> G,
          uint64_t Expected)
      : Data(D), Len(N), Gen(std::move(G)), MyGen(Expected) {}

  size_t size() const { return Len; }

  /// Direct pointer to the underlying storage - the paper's \c reify,
  /// "a pointer ... that can be passed to any standard library procedures".
  /// Checks validity once; the pointer must not outlive the view's scope.
  T *raw() const {
    shadowCheck(Data, Len);
    checkLive();
    return Data;
  }

  T &operator[](size_t I) const {
#ifndef NDEBUG
    shadowCheck(Data + I, 1);
    checkLive();
    assert(I < Len && "VecView index out of range");
#endif
    return Data[I];
  }

  /// Reads/writes with always-on checking (tests and non-hot paths).
  T readChecked(size_t I) const {
    shadowCheck(Data + I, 1);
    checkLive();
    if (I >= Len)
      // ST-discipline breach: the abort is the deterministic outcome the
      // DisjointnessChecker documents. lvish-lint: allow(fatal)
      fatalError("VecView access out of range");
    return Data[I];
  }
  void writeChecked(size_t I, const T &V) const {
    shadowCheck(Data + I, 1);
    checkLive();
    if (I >= Len)
      // lvish-lint: allow(fatal)
      fatalError("VecView write out of range");
    Data[I] = V;
  }

  /// Fills the whole view with \p V (the paper's \c set).
  void fill(const T &V) const {
    shadowCheck(Data, Len);
    checkLive();
    for (size_t I = 0; I < Len; ++I)
      Data[I] = V;
  }

  bool live() const {
    return Gen && Gen->load(std::memory_order_acquire) == MyGen;
  }

  /// Aborts unless the view is live. Public so the split/zoom combinators
  /// (trusted code) can check before taking ownership.
  void checkLive() const {
    if (live())
      return;
#if LVISH_CHECK
    // Upgrade the generic generation-mismatch abort with what the shadow
    // interval map knows about the region's current owner.
    char Desc[160];
    check::DisjointnessChecker::instance().describeAddress(Data, Desc,
                                                           sizeof(Desc));
    char Msg[288];
    std::snprintf(Msg, sizeof(Msg),
                  "access through a poisoned VecView (view generation "
                  "%llu); %s",
                  static_cast<unsigned long long>(MyGen), Desc);
    // Poisoned-view access may race task teardown; abort, do not unwind.
    // lvish-lint: allow(fatal)
    fatalError(Msg);
#else
    // lvish-lint: allow(fatal)
    fatalError("access through a poisoned VecView (the region is "
               "currently owned by forkSTSplit children, or its scope "
               "ended)");
#endif
  }

  /// Sub-view sharing this view's ownership scope. The two views alias;
  /// use forkSTSplit (not two slices) to hand disjoint halves to parallel
  /// children. Intended for sequential leaf code.
  VecView slice(size_t Begin, size_t End) const {
    assert(Begin <= End && End <= Len && "bad slice bounds");
    return VecView(Data, Len, Gen, MyGen).offsetUnsafe(Begin, End);
  }

  /// The ownership generation cell (trusted combinators only).
  const std::shared_ptr<std::atomic<uint64_t>> &ownerGenCell() const {
    return Gen;
  }

  /// The generation this view expects its cell to hold while it is live
  /// (trusted combinators and the disjointness checker only).
  uint64_t expectedGen() const { return MyGen; }

private:
  VecView offsetUnsafe(size_t Begin, size_t End) const {
    return VecView(Data + Begin, End - Begin, Gen, MyGen);
  }

  /// Sampled classification of the byte access [P, P+Count) against the
  /// shadow interval map; reports Stale/ForeignOwner before the coarse
  /// generation abort fires, so the diagnostic names the actual owner.
  void shadowCheck(const T *P, size_t Count) const {
#if LVISH_CHECK
    if (check::sampleHit())
      check::DisjointnessChecker::instance().checkAccess(P, P + Count,
                                                         Gen.get(), MyGen);
#else
    (void)P;
    (void)Count;
#endif
  }

  T *Data;
  size_t Len;
  std::shared_ptr<std::atomic<uint64_t>> Gen;
  uint64_t MyGen;
};

namespace detail {

/// Fresh generation cell for a newly owned region.
inline std::shared_ptr<std::atomic<uint64_t>> newGenCell() {
  return std::make_shared<std::atomic<uint64_t>>(0);
}

} // namespace detail

/// Allocates a vector of \p N copies of \p Init and runs \p Body with (a)
/// an ST-enabled context and (b) the unique root view of the vector. The
/// vector lives exactly as long as the call: the returned view is poisoned
/// afterwards. Mirrors `runParVecT n (...)`.
///
/// \p Wanted is the ST-enabled effect level the body runs at; it defaults
/// to the caller's effects plus ST. The caller must not already hold ST
/// (one-shot switch).
template <EffectSet Wanted = Eff::DetST, EffectSet E, typename T, typename F>
auto runParVec(ParCtx<E> Ctx, size_t N, T Init, F Body) {
  static_assert(!hasST(E), "ParST cannot be stacked: this context already "
                           "has the ST capability (Section 5)");
  static_assert(hasST(Wanted), "runParVec must grant the ST capability");
  static_assert(Wanted.subsumes(E),
                "the ST-enabled level must keep every capability the "
                "caller already had (pass Wanted explicitly for Bump/"
                "Freeze contexts)");
  using Ret = std::invoke_result_t<F, ParCtx<Wanted>, VecView<T>>;
  return [](ParCtx<E> Ctx2, size_t N2, T Init2, F Body2) -> Ret {
    std::vector<T> Storage(N2, Init2);
    auto Gen = detail::newGenCell();
    VecView<T> Root(Storage.data(), Storage.size(), Gen, 0);
    ParCtx<Wanted> STCtx = detail::CtxAccess::make<Wanted>(Ctx2.task());
    // The grant is legitimate (one-shot switch, statically checked above):
    // widen the running task's declared mask so the audit agrees.
    check::RaiseDeclaredScope Raise(Ctx2.task(), check::effectMask(Wanted));
    auto &DC = check::DisjointnessChecker::instance();
    DC.registerExtent(Storage.data(), Storage.data() + Storage.size(),
                      Gen.get(), 0, "runParVec root");
    if constexpr (std::is_void_v<decltype(std::declval<Ret>()
                                              .await_resume())>) {
      co_await Body2(STCtx, Root);
      DC.releaseExtent(Storage.data(), Gen.get());
      Gen->fetch_add(1, std::memory_order_acq_rel); // Poison escapees.
      co_return;
    } else {
      auto R = co_await Body2(STCtx, Root);
      DC.releaseExtent(Storage.data(), Gen.get());
      Gen->fetch_add(1, std::memory_order_acq_rel);
      co_return R;
    }
  }(Ctx, N, std::move(Init), std::move(Body));
}

/// Fork-join disjoint split (the paper's `forkSTSplit (SplitAt mid)`):
/// partitions \p View at \p Mid, runs \p Left on [0,Mid) and \p Right on
/// [Mid,len) in parallel, and returns when both complete. The parent view
/// is poisoned for the duration; the children receive fresh views that die
/// at the join. Children may freely use LVar effects - this is the
/// integration of DPJ-style disjoint update with dataflow communication.
template <typename T, EffectSet E, typename L, typename R>
  requires(hasST(E) && hasPut(E) && hasGet(E))
Par<void> forkSTSplit(ParCtx<E> Ctx, VecView<T> View, size_t Mid, L Left,
                      R Right) {
  if (Mid > View.size())
    // Static misuse of the split API. lvish-lint: allow(fatal)
    fatalError("forkSTSplit: split point out of range");
  check::auditEffect(Ctx.task(), check::FxST, "forkSTSplit");
  T *Base = View.raw();
  // Poison the parent view; each child gets its OWN ownership scope (a
  // shared cell would let one child's nested split poison its sibling).
  View.ownerGenCell()->fetch_add(1, std::memory_order_acq_rel);
  auto LGen = detail::newGenCell();
  auto RGen = detail::newGenCell();
  VecView<T> LView(Base, Mid, LGen, 0);
  VecView<T> RView(Base + Mid, View.size() - Mid, RGen, 0);
  // Hand the region over in the shadow map: the parent's extent steps
  // aside while the children's halves are live, and returns at the join.
  auto &DC = check::DisjointnessChecker::instance();
  check::ExtentInfo ParentExtent =
      DC.detachExtentContaining(Base, View.ownerGenCell().get());
  DC.registerExtent(Base, Base + Mid, LGen.get(), 0, "forkSTSplit left");
  DC.registerExtent(Base + Mid, Base + View.size(), RGen.get(), 0,
                    "forkSTSplit right");

  auto Done = newIVar<bool>(Ctx);
  fork(Ctx, [Done, LView, Left](ParCtx<E> C) -> Par<void> {
    co_await Left(C, LView);
    put(C, *Done, true);
  });
  co_await Right(Ctx, RView);
  co_await get(Ctx, *Done);

  // Join: retire the child views, then un-poison the parent.
  DC.releaseExtent(Base, LGen.get());
  DC.releaseExtent(Base + Mid, RGen.get());
  DC.restoreExtent(ParentExtent, View.ownerGenCell().get());
  LGen->fetch_add(1, std::memory_order_acq_rel);
  RGen->fetch_add(1, std::memory_order_acq_rel);
  View.ownerGenCell()->fetch_sub(1, std::memory_order_acq_rel);
  co_return;
}

/// Two-region variant: splits view \p A at \p MidA and view \p B at
/// \p MidB; Left gets (A[0,MidA), B[0,MidB)), Right the complements. This
/// is the tuple-of-vectors state shape of the merge phase (Section 7.3),
/// where "both of these buffers are split at the same locations".
template <typename T, typename T2, EffectSet E, typename L, typename R>
  requires(hasST(E) && hasPut(E) && hasGet(E))
Par<void> forkSTSplit2(ParCtx<E> Ctx, VecView<T> A, size_t MidA,
                       VecView<T2> B, size_t MidB, L Left, R Right) {
  if (MidA > A.size() || MidB > B.size())
    // lvish-lint: allow(fatal)
    fatalError("forkSTSplit2: split point out of range");
  check::auditEffect(Ctx.task(), check::FxST, "forkSTSplit2");
  T *BaseA = A.raw();
  T2 *BaseB = B.raw();
  A.ownerGenCell()->fetch_add(1, std::memory_order_acq_rel);
  if (B.ownerGenCell() != A.ownerGenCell())
    B.ownerGenCell()->fetch_add(1, std::memory_order_acq_rel);
  // Left and right children each own their (pair of) regions through a
  // private cell; see the sibling-poisoning note in forkSTSplit.
  auto LGen = detail::newGenCell();
  auto RGen = detail::newGenCell();
  VecView<T> LA(BaseA, MidA, LGen, 0);
  VecView<T> RA(BaseA + MidA, A.size() - MidA, RGen, 0);
  VecView<T2> LB(BaseB, MidB, LGen, 0);
  VecView<T2> RB(BaseB + MidB, B.size() - MidB, RGen, 0);
  auto &DC = check::DisjointnessChecker::instance();
  check::ExtentInfo ExtA =
      DC.detachExtentContaining(BaseA, A.ownerGenCell().get());
  check::ExtentInfo ExtB =
      DC.detachExtentContaining(BaseB, B.ownerGenCell().get());
  DC.registerExtent(BaseA, BaseA + MidA, LGen.get(), 0, "forkSTSplit2 left");
  DC.registerExtent(BaseB, BaseB + MidB, LGen.get(), 0, "forkSTSplit2 left");
  DC.registerExtent(BaseA + MidA, BaseA + A.size(), RGen.get(), 0,
                    "forkSTSplit2 right");
  DC.registerExtent(BaseB + MidB, BaseB + B.size(), RGen.get(), 0,
                    "forkSTSplit2 right");

  auto Done = newIVar<bool>(Ctx);
  fork(Ctx, [Done, LA, LB, Left](ParCtx<E> C) -> Par<void> {
    co_await Left(C, LA, LB);
    put(C, *Done, true);
  });
  co_await Right(Ctx, RA, RB);
  co_await get(Ctx, *Done);

  DC.releaseExtent(BaseA, LGen.get());
  DC.releaseExtent(BaseB, LGen.get());
  DC.releaseExtent(BaseA + MidA, RGen.get());
  DC.releaseExtent(BaseB + MidB, RGen.get());
  DC.restoreExtent(ExtA, A.ownerGenCell().get());
  DC.restoreExtent(ExtB, B.ownerGenCell().get());
  LGen->fetch_add(1, std::memory_order_acq_rel);
  RGen->fetch_add(1, std::memory_order_acq_rel);
  A.ownerGenCell()->fetch_sub(1, std::memory_order_acq_rel);
  if (B.ownerGenCell() != A.ownerGenCell())
    B.ownerGenCell()->fetch_sub(1, std::memory_order_acq_rel);
  co_return;
}

/// Zoom in: runs \p Body on the sub-range [Begin, End) of \p View. The
/// parent view is poisoned for the duration (the sub-view is the unique
/// capability), restoring afterwards.
template <typename T, EffectSet E, typename F>
  requires(hasST(E))
auto zoomIn(ParCtx<E> Ctx, VecView<T> View, size_t Begin, size_t End,
            F Body) {
  using Ret = std::invoke_result_t<F, ParCtx<E>, VecView<T>>;
  return [](ParCtx<E> C, VecView<T> V, size_t B2, size_t E2,
            F Body2) -> Ret {
    if (B2 > E2 || E2 > V.size())
      // lvish-lint: allow(fatal)
      fatalError("zoomIn: bad sub-range");
    check::auditEffect(C.task(), check::FxST, "zoomIn");
    T *Base = V.raw();
    V.ownerGenCell()->fetch_add(1, std::memory_order_acq_rel);
    auto SubGen = detail::newGenCell();
    VecView<T> Sub(Base + B2, E2 - B2, SubGen, 0);
    auto &DC = check::DisjointnessChecker::instance();
    check::ExtentInfo ParentExtent =
        DC.detachExtentContaining(Base, V.ownerGenCell().get());
    DC.registerExtent(Base + B2, Base + E2, SubGen.get(), 0, "zoomIn");
    if constexpr (std::is_void_v<decltype(std::declval<Ret>()
                                              .await_resume())>) {
      co_await Body2(C, Sub);
      DC.releaseExtent(Base + B2, SubGen.get());
      DC.restoreExtent(ParentExtent, V.ownerGenCell().get());
      SubGen->fetch_add(1, std::memory_order_acq_rel);
      V.ownerGenCell()->fetch_sub(1, std::memory_order_acq_rel);
      co_return;
    } else {
      auto R = co_await Body2(C, Sub);
      DC.releaseExtent(Base + B2, SubGen.get());
      DC.restoreExtent(ParentExtent, V.ownerGenCell().get());
      SubGen->fetch_add(1, std::memory_order_acq_rel);
      V.ownerGenCell()->fetch_sub(1, std::memory_order_acq_rel);
      co_return R;
    }
  }(Ctx, View, Begin, End, std::move(Body));
}

/// Zoom out: pairs \p View with a freshly allocated scratch vector of
/// \p TempLen default-initialized elements for the extent of \p Body -
/// "placing the current state inside a newly constructed one". The sort's
/// merge phase shifts from a single-vector state to (input, buffer) this
/// way.
template <typename T, EffectSet E, typename F>
  requires(hasST(E))
auto withTempBuffer(ParCtx<E> Ctx, VecView<T> View, size_t TempLen, F Body) {
  using Ret = std::invoke_result_t<F, ParCtx<E>, VecView<T>, VecView<T>>;
  return [](ParCtx<E> C, VecView<T> V, size_t N, F Body2) -> Ret {
    V.checkLive();
    check::auditEffect(C.task(), check::FxST, "withTempBuffer");
    std::vector<T> Scratch(N);
    auto TmpGen = detail::newGenCell();
    VecView<T> Tmp(Scratch.data(), Scratch.size(), TmpGen, 0);
    auto &DC = check::DisjointnessChecker::instance();
    DC.registerExtent(Scratch.data(), Scratch.data() + Scratch.size(),
                      TmpGen.get(), 0, "withTempBuffer scratch");
    if constexpr (std::is_void_v<decltype(std::declval<Ret>()
                                              .await_resume())>) {
      co_await Body2(C, V, Tmp);
      DC.releaseExtent(Scratch.data(), TmpGen.get());
      TmpGen->fetch_add(1, std::memory_order_acq_rel);
      co_return;
    } else {
      auto R = co_await Body2(C, V, Tmp);
      DC.releaseExtent(Scratch.data(), TmpGen.get());
      TmpGen->fetch_add(1, std::memory_order_acq_rel);
      co_return R;
    }
  }(Ctx, View, TempLen, std::move(Body));
}

} // namespace lvish

#endif // LVISH_TRANS_PARST_H
