//===- BulkRetry.h - Deterministic reservations (BulkRetryT) ----*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c BulkRetryT (Section 6, after Blelloch et al.'s deterministic
/// reservations): "to efficiently execute a parallel for loop with a large
/// iteration space, it is often better to cheaply mark the iterations that
/// fail and retry them in bulk" instead of blocking each iteration on a
/// get. \c forSpeculative runs rounds over the not-yet-done iterations
/// until a round leaves nothing pending.
///
/// "The approach of aborting and retrying rather than blocking requires
/// that each iteration of computation have only idempotent effects" - so
/// the body's effect level must not contain Bump, which the requires
/// clause enforces statically (fine-grained effect tracking earning its
/// keep, as the paper's Section 6 closes by observing).
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_TRANS_BULKRETRY_H
#define LVISH_TRANS_BULKRETRY_H

#include "src/core/IVar.h"
#include "src/core/Par.h"

#include <cstddef>
#include <vector>

namespace lvish {

/// Result of one speculative iteration.
enum class Spec : uint8_t {
  Done,  ///< Iteration committed.
  Retry, ///< Prerequisites missing; run again next round.
};

namespace detail {

/// Runs one round over Indices[Begin, End), returning the failed indices.
template <EffectSet E, typename F>
Par<std::vector<size_t>> specRound(ParCtx<E> Ctx,
                                   const std::vector<size_t> *Indices,
                                   size_t Begin, size_t End, size_t Grain,
                                   F Fn) {
  if (End - Begin <= Grain) {
    std::vector<size_t> Failed;
    for (size_t I = Begin; I < End; ++I) {
      size_t Idx = (*Indices)[I];
      Spec R = co_await Fn(Ctx, Idx);
      if (R == Spec::Retry)
        Failed.push_back(Idx);
    }
    co_return Failed;
  }
  size_t Mid = Begin + (End - Begin) / 2;
  auto Left = newIVar<std::vector<size_t>>(Ctx);
  fork(Ctx, [Left, Indices, Begin, Mid, Grain, Fn](ParCtx<E> C) -> Par<void> {
    std::vector<size_t> L =
        co_await specRound(C, Indices, Begin, Mid, Grain, Fn);
    put(C, *Left, L);
  });
  std::vector<size_t> Right =
      co_await specRound(Ctx, Indices, Mid, End, Grain, Fn);
  std::vector<size_t> L = co_await get(Ctx, *Left);
  L.insert(L.end(), Right.begin(), Right.end());
  co_return L;
}

} // namespace detail

/// Speculative parallel for over [Begin, End): \p Fn returns Spec::Done or
/// Spec::Retry; failed iterations are retried in bulk, round after round,
/// until all commit. Returns the number of rounds executed. \p Fn must be
/// idempotent (no Bump effects - statically enforced - and no
/// non-monotonic external side effects). If an iteration can never commit
/// the loop diverges, exactly like a blocked get would.
template <EffectSet E, typename F>
  requires(hasPut(E) && hasGet(E) && !hasBump(E))
Par<size_t> forSpeculative(ParCtx<E> Ctx, size_t Begin, size_t End, F Fn,
                           size_t Grain = 16) {
  static_assert(std::is_invocable_r_v<Par<Spec>, F, ParCtx<E>, size_t> ||
                    std::is_invocable_v<F, ParCtx<E>, size_t>,
                "body must be Par<Spec>(ParCtx<E>, size_t)");
  std::vector<size_t> Pending;
  Pending.reserve(End - Begin);
  for (size_t I = Begin; I < End; ++I)
    Pending.push_back(I);
  size_t Rounds = 0;
  while (!Pending.empty()) {
    ++Rounds;
    std::vector<size_t> Failed = co_await detail::specRound(
        Ctx, &Pending, 0, Pending.size(), Grain, Fn);
    // Retry order is sorted for determinism of the round structure (the
    // result is deterministic regardless; this stabilizes round counts).
    std::sort(Failed.begin(), Failed.end());
    Pending = std::move(Failed);
  }
  co_return Rounds;
}

} // namespace lvish

#endif // LVISH_TRANS_BULKRETRY_H
