//===- All.h - Full-surface umbrella header ---------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Everything-included umbrella: the core (src/core/LVish.h) plus the
/// Data.LVar.* structures (src/data) and the effect transformers
/// (src/trans). Examples and quick prototypes include this one header;
/// library and benchmark code should keep including the specific headers
/// it uses (src/core/LVish.h stays core-only by design).
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_LVISH_ALL_H
#define LVISH_LVISH_ALL_H

// Core: Par, effects, lattices, runPar/RunOptions, IVar, handler pools.
#include "src/core/LVish.h"  // IWYU pragma: export
#include "src/core/ParFor.h" // IWYU pragma: export

// Data structures (Data.LVar.* in the paper).
#include "src/data/AndLV.h"           // IWYU pragma: export
#include "src/data/Counter.h"         // IWYU pragma: export
#include "src/data/IMap.h"            // IWYU pragma: export
#include "src/data/ISet.h"            // IWYU pragma: export
#include "src/data/IStructure.h"      // IWYU pragma: export
#include "src/data/MonotoneHashMap.h" // IWYU pragma: export
#include "src/data/PureMap.h"         // IWYU pragma: export
#include "src/data/Stream.h"          // IWYU pragma: export

// Transformers and derived abstractions (Sections 5-6).
#include "src/trans/BulkRetry.h"    // IWYU pragma: export
#include "src/trans/Cancel.h"       // IWYU pragma: export
#include "src/trans/Deadlock.h"     // IWYU pragma: export
#include "src/trans/Memo.h"         // IWYU pragma: export
#include "src/trans/ParRng.h"       // IWYU pragma: export
#include "src/trans/ParST.h"        // IWYU pragma: export
#include "src/trans/Pedigree.h"     // IWYU pragma: export
#include "src/trans/StateLayer.h"   // IWYU pragma: export
#include "src/trans/Transformers.h" // IWYU pragma: export

#endif // LVISH_LVISH_ALL_H
