//===- SchedulerStats.h - Scheduler counter snapshot ------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler's performance-counter surface: a per-worker, cache-line
/// padded block of relaxed counters (obs::WorkerCounters) that each worker
/// bumps without ever contending with its siblings, and the aggregate
/// SchedulerStats snapshot that Scheduler::stats() sums them into.
///
/// Counters here are always on: they sit on paths that already pay an
/// atomic (scheduling, stealing, parking), so one extra relaxed add per
/// event is noise. The *LVar-level* event counters, which sit on put fast
/// paths, live behind LVISH_TELEMETRY instead (src/obs/Telemetry.h).
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_OBS_SCHEDULERSTATS_H
#define LVISH_OBS_SCHEDULERSTATS_H

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace lvish {

/// One aggregate snapshot of scheduler activity, produced by
/// Scheduler::stats(). Counters are cumulative over the scheduler's
/// lifetime (they span sessions) and are collected with relaxed loads, so
/// a snapshot taken while workers are running is approximate; after
/// waitSessionQuiescent() it is exact.
struct SchedulerStats {
  uint64_t TasksCreated = 0;  ///< Tasks allocated by createTask.
  uint64_t TasksExecuted = 0; ///< Tasks that ran to completion.
  uint64_t LocalPops = 0;     ///< Tasks popped from the worker's own deque.
  uint64_t StealAttempts = 0; ///< steal() probes, successful or not.
  uint64_t Steals = 0;        ///< Successful steals.
  uint64_t Parks = 0;         ///< Tasks parked on a waiter list.
  uint64_t Wakes = 0;         ///< Parked tasks made runnable again.
  uint64_t MaxDequeDepth = 0; ///< Deepest any worker deque ever got.
  unsigned NumWorkers = 0;    ///< Worker-thread count of the scheduler.

  /// Merges another snapshot in (for benches aggregating over several
  /// schedulers): counters add, the two maxima take the max.
  SchedulerStats &operator+=(const SchedulerStats &O) {
    TasksCreated += O.TasksCreated;
    TasksExecuted += O.TasksExecuted;
    LocalPops += O.LocalPops;
    StealAttempts += O.StealAttempts;
    Steals += O.Steals;
    Parks += O.Parks;
    Wakes += O.Wakes;
    MaxDequeDepth = std::max(MaxDequeDepth, O.MaxDequeDepth);
    NumWorkers = std::max(NumWorkers, O.NumWorkers);
    return *this;
  }

  /// Delta between two snapshots of the SAME scheduler (this = later,
  /// \p Start = earlier): event counters subtract, giving the activity in
  /// between - what Scheduler::sessionStats reports per session.
  /// MaxDequeDepth and NumWorkers are not differences; the later
  /// snapshot's (cumulative) values carry through.
  SchedulerStats operator-(const SchedulerStats &Start) const {
    SchedulerStats D = *this;
    D.TasksCreated -= Start.TasksCreated;
    D.TasksExecuted -= Start.TasksExecuted;
    D.LocalPops -= Start.LocalPops;
    D.StealAttempts -= Start.StealAttempts;
    D.Steals -= Start.Steals;
    D.Parks -= Start.Parks;
    D.Wakes -= Start.Wakes;
    return D;
  }
};

namespace obs {

/// Per-worker counter block. Exactly one cache line (8 x uint64_t),
/// aligned so a worker's relaxed adds never false-share with a sibling's.
/// The scheduler keeps one block per worker plus one shared block for
/// events raised off the worker threads (runPar roots, external wakes).
struct alignas(64) WorkerCounters {
  std::atomic<uint64_t> TasksCreated{0};
  std::atomic<uint64_t> TasksExecuted{0};
  std::atomic<uint64_t> LocalPops{0};
  std::atomic<uint64_t> StealAttempts{0};
  std::atomic<uint64_t> Steals{0};
  std::atomic<uint64_t> Parks{0};
  std::atomic<uint64_t> Wakes{0};
  std::atomic<uint64_t> MaxDequeDepth{0};

  static void bump(std::atomic<uint64_t> &C, uint64_t N = 1) {
    C.fetch_add(N, std::memory_order_relaxed);
  }

  /// Running maximum of the owning worker's deque depth. Only the owning
  /// worker calls this (pushes are owner-only), so load-then-store cannot
  /// lose an update.
  void noteDepth(uint64_t Depth) {
    if (Depth > MaxDequeDepth.load(std::memory_order_relaxed))
      MaxDequeDepth.store(Depth, std::memory_order_relaxed);
  }

  /// Adds this block into \p S (sum for event counts, max for depth).
  void accumulateInto(SchedulerStats &S) const {
    S.TasksCreated += TasksCreated.load(std::memory_order_relaxed);
    S.TasksExecuted += TasksExecuted.load(std::memory_order_relaxed);
    S.LocalPops += LocalPops.load(std::memory_order_relaxed);
    S.StealAttempts += StealAttempts.load(std::memory_order_relaxed);
    S.Steals += Steals.load(std::memory_order_relaxed);
    S.Parks += Parks.load(std::memory_order_relaxed);
    S.Wakes += Wakes.load(std::memory_order_relaxed);
    S.MaxDequeDepth = std::max(
        S.MaxDequeDepth, MaxDequeDepth.load(std::memory_order_relaxed));
  }
};

static_assert(sizeof(WorkerCounters) == 64,
              "WorkerCounters must fill exactly one cache line");

} // namespace obs
} // namespace lvish

#endif // LVISH_OBS_SCHEDULERSTATS_H
