//===- Telemetry.cpp - LVar/session event counters ------------------------===//

#include "src/obs/Telemetry.h"

#include <mutex>

using namespace lvish;
using namespace lvish::obs;

const char *obs::eventName(Event E) {
  switch (E) {
  case Event::Puts:
    return "puts";
  case Event::NoOpJoins:
    return "noop_joins";
  case Event::ThresholdWakeups:
    return "threshold_wakeups";
  case Event::HandlerInvocations:
    return "handler_invocations";
  case Event::QuiesceWaits:
    return "quiesce_waits";
  case Event::Cancellations:
    return "cancellations";
  case Event::MemoHits:
    return "memo_hits";
  case Event::MemoMisses:
    return "memo_misses";
  case Event::FaultsRaised:
    return "faults_raised";
  case Event::FaultsContained:
    return "faults_contained";
  case Event::InjectedFaults:
    return "injected_faults";
  case Event::ExploreSchedules:
    return "explore_schedules";
  case Event::ExploreSteps:
    return "explore_steps";
  case Event::ExploreShrinkRuns:
    return "explore_shrink_runs";
  case Event::BucketScans:
    return "bucket_scans";
  case Event::HandlerBatchFlushes:
    return "handler_batch_flushes";
  case Event::NotifySkips:
    return "notify_skips";
  case Event::SessionsSubmitted:
    return "sessions_submitted";
  case Event::SessionsCompleted:
    return "sessions_completed";
  case Event::SessionsRejected:
    return "sessions_rejected";
  case Event::SessionsShed:
    return "sessions_shed";
  case Event::DeadlineFaults:
    return "deadline_faults";
  case Event::BudgetFaults:
    return "budget_faults";
  case Event::DrainWaits:
    return "drain_waits";
  case Event::StreamAppends:
    return "stream_appends";
  case Event::PrefixWakeups:
    return "prefix_wakeups";
  case Event::BackpressureParks:
    return "backpressure_parks";
  }
  return "unknown";
}

#ifndef LVISH_GIT_REV
#define LVISH_GIT_REV "unknown"
#endif

const char *obs::gitRevision() { return LVISH_GIT_REV; }

#if LVISH_TELEMETRY

obs::detail::TelemetryStripe obs::detail::Stripes[NumStripes];
std::atomic<uint64_t> obs::detail::QuiesceWaitNanosTotal{0};
std::atomic<uint64_t> obs::detail::SessionLatencyNanosTotal{0};

unsigned obs::detail::assignStripe() {
  static std::atomic<unsigned> Next{0};
  return Next.fetch_add(1, std::memory_order_relaxed) % NumStripes;
}

TelemetrySnapshot obs::telemetrySnapshot() {
  TelemetrySnapshot S;
  for (const detail::TelemetryStripe &Stripe : detail::Stripes)
    for (unsigned E = 0; E < NumEvents; ++E)
      S.Counts[E] += Stripe.Counts[E].load(std::memory_order_relaxed);
  S.QuiesceWaitNanos =
      detail::QuiesceWaitNanosTotal.load(std::memory_order_relaxed);
  S.SessionLatencyNanos =
      detail::SessionLatencyNanosTotal.load(std::memory_order_relaxed);
  return S;
}

void obs::resetTelemetry() {
  for (detail::TelemetryStripe &Stripe : detail::Stripes)
    for (unsigned E = 0; E < NumEvents; ++E)
      Stripe.Counts[E].store(0, std::memory_order_relaxed);
  detail::QuiesceWaitNanosTotal.store(0, std::memory_order_relaxed);
  detail::SessionLatencyNanosTotal.store(0, std::memory_order_relaxed);
}

namespace {
// The span log is cold (one append per Span destruction, typically a
// handful per bench series), so a plain mutex-protected vector is fine.
std::mutex SpanMutex;
std::vector<SpanRecord> Spans;
} // namespace

Span::~Span() {
  SpanRecord R{Name, StartNanos, nowNanos() - StartNanos};
  std::lock_guard<std::mutex> Lock(SpanMutex);
  Spans.push_back(std::move(R));
}

std::vector<SpanRecord> obs::spanLog() {
  std::lock_guard<std::mutex> Lock(SpanMutex);
  return Spans;
}

void obs::clearSpans() {
  std::lock_guard<std::mutex> Lock(SpanMutex);
  Spans.clear();
}

#endif // LVISH_TELEMETRY
