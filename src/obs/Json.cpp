//===- Json.cpp - Minimal JSON writer and parser --------------------------===//

#include "src/obs/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace lvish;
using namespace lvish::obs;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

void JsonWriter::escapeTo(std::string &Out, std::string_view S) {
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
}

void JsonWriter::value(double D) {
  comma();
  if (!std::isfinite(D)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    Out += "null";
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  Out += Buf;
}

void JsonWriter::value(uint64_t N) {
  comma();
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(N));
  Out += Buf;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent parser over a string_view. Not performance-critical:
/// it reads bench reports, not hot-path data.
class Parser {
public:
  Parser(std::string_view Text, std::string *Err) : Text(Text), Err(Err) {}

  bool parse(JsonValue &Out) {
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after value");
    return true;
  }

private:
  bool fail(const char *Msg) {
    if (Err)
      *Err = std::string(Msg) + " at byte " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consume(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return fail("invalid literal");
    Pos += Word.size();
    return true;
  }

  bool parseValue(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.BoolV = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.BoolV = false;
      return literal("false");
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (consume('}'))
      return true;
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!consume(':'))
        return fail("expected ':' after object key");
      JsonValue Member;
      if (!parseValue(Member))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(Member));
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (consume(']'))
      return true;
    while (true) {
      JsonValue Elem;
      if (!parseValue(Elem))
        return false;
      Out.Arr.push_back(std::move(Elem));
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool hex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("invalid \\u escape digit");
    }
    return true;
  }

  static void appendUtf8(std::string &S, unsigned Cp) {
    if (Cp < 0x80) {
      S += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      S += static_cast<char>(0xC0 | (Cp >> 6));
      S += static_cast<char>(0x80 | (Cp & 0x3F));
    } else if (Cp < 0x10000) {
      S += static_cast<char>(0xE0 | (Cp >> 12));
      S += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (Cp & 0x3F));
    } else {
      S += static_cast<char>(0xF0 | (Cp >> 18));
      S += static_cast<char>(0x80 | ((Cp >> 12) & 0x3F));
      S += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (Cp & 0x3F));
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Cp = 0;
        if (!hex4(Cp))
          return false;
        if (Cp >= 0xD800 && Cp <= 0xDBFF) {
          // High surrogate: must be followed by \uDC00..\uDFFF.
          if (Pos + 1 >= Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("lone high surrogate");
          Pos += 2;
          unsigned Lo = 0;
          if (!hex4(Lo))
            return false;
          if (Lo < 0xDC00 || Lo > 0xDFFF)
            return fail("invalid low surrogate");
          Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Lo - 0xDC00);
        } else if (Cp >= 0xDC00 && Cp <= 0xDFFF) {
          return fail("lone low surrogate");
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size()) {
      Pos = Start;
      return fail("malformed number");
    }
    Out.K = JsonValue::Kind::Number;
    Out.Num = D;
    return true;
  }

  std::string_view Text;
  std::string *Err;
  size_t Pos = 0;
};

void writeValue(JsonWriter &W, const JsonValue &V) {
  switch (V.K) {
  case JsonValue::Kind::Null:
    W.null();
    break;
  case JsonValue::Kind::Bool:
    W.value(V.BoolV);
    break;
  case JsonValue::Kind::Number:
    // Integers survive the double round-trip exactly up to 2^53; print
    // them without an exponent so counters stay greppable.
    if (V.Num == std::floor(V.Num) && V.Num >= 0 && V.Num < 9.007199254740992e15)
      W.value(static_cast<uint64_t>(V.Num));
    else
      W.value(V.Num);
    break;
  case JsonValue::Kind::String:
    W.value(std::string_view(V.Str));
    break;
  case JsonValue::Kind::Array:
    W.beginArray();
    for (const JsonValue &E : V.Arr)
      writeValue(W, E);
    W.endArray();
    break;
  case JsonValue::Kind::Object:
    W.beginObject();
    for (const auto &[K, E] : V.Obj) {
      W.key(K);
      writeValue(W, E);
    }
    W.endObject();
    break;
  }
}

} // namespace

bool JsonValue::parse(std::string_view Text, JsonValue &Out,
                      std::string *Err) {
  Out = JsonValue();
  Parser P(Text, Err);
  return P.parse(Out);
}

std::string JsonValue::write() const {
  JsonWriter W;
  writeValue(W, *this);
  return W.take();
}
