//===- Json.h - Minimal JSON writer and parser ------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dependency-free JSON layer for the telemetry subsystem:
/// JsonWriter produces the machine-readable BENCH_*.json files and
/// chrome://tracing exports; JsonValue parses them back (used by
/// tools/bench-report for schema validation and regression diffs, and by
/// TelemetryTest to prove the writer round-trips). Deliberately minimal:
/// no streaming parse, numbers are doubles, objects preserve insertion
/// order and allow duplicate keys (find returns the first).
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_OBS_JSON_H
#define LVISH_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lvish {
namespace obs {

/// A parsed JSON document node.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool BoolV = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Object member lookup; null unless this is an object with the key.
  const JsonValue *find(std::string_view Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[Name, Value] : Obj)
      if (Name == Key)
        return &Value;
    return nullptr;
  }

  /// Parses \p Text into \p Out. On failure returns false and, when
  /// \p Err is non-null, stores a byte-offset-tagged message.
  static bool parse(std::string_view Text, JsonValue &Out,
                    std::string *Err = nullptr);

  /// Re-serializes the node (canonical escaping, no whitespace).
  std::string write() const;
};

/// Streaming JSON emitter with correct string escaping. Usage:
///   JsonWriter W;
///   W.beginObject();
///   W.key("name"); W.value("bench_micro_lvar");
///   W.key("times"); W.beginArray(); W.value(0.5); W.endArray();
///   W.endObject();
///   writeFile(W.str());
class JsonWriter {
public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  /// Emits an object key; must be followed by exactly one value or
  /// begin{Object,Array}.
  void key(std::string_view K) {
    comma();
    quote(K);
    Out += ':';
    AfterKey = true;
  }

  void value(std::string_view S) {
    comma();
    quote(S);
  }
  void value(const char *S) { value(std::string_view(S)); }
  void value(bool B) {
    comma();
    Out += B ? "true" : "false";
  }
  void value(double D);
  void value(uint64_t N);
  void value(int N) { value(static_cast<uint64_t>(N < 0 ? 0 : N)); }
  void value(unsigned N) { value(static_cast<uint64_t>(N)); }
  void null() {
    comma();
    Out += "null";
  }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

  /// Appends \p S to \p Out with JSON escaping ("\bfnrt plus \u00XX for
  /// other control characters; non-ASCII bytes pass through as UTF-8).
  static void escapeTo(std::string &Out, std::string_view S);

private:
  void open(char C) {
    comma();
    Out += C;
    NeedComma.push_back(false);
  }
  void close(char C) {
    NeedComma.pop_back();
    Out += C;
    if (!NeedComma.empty())
      NeedComma.back() = true;
  }
  void comma() {
    if (AfterKey) {
      AfterKey = false;
      return;
    }
    if (!NeedComma.empty()) {
      if (NeedComma.back())
        Out += ',';
      NeedComma.back() = true;
    }
  }
  void quote(std::string_view S) {
    Out += '"';
    escapeTo(Out, S);
    Out += '"';
  }

  std::string Out;
  std::vector<bool> NeedComma;
  bool AfterKey = false;
};

} // namespace obs
} // namespace lvish

#endif // LVISH_OBS_JSON_H
