//===- Telemetry.h - LVar/session event counters ----------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Library-level telemetry behind the LVISH_TELEMETRY switch (ON by
/// default; -DLVISH_TELEMETRY=OFF compiles every hook down to an empty
/// inline function and an empty snapshot struct).
///
/// Two facilities:
///
///   * Event counters - process-wide counts of the semantic events the
///     paper's effect zoo is made of: puts, no-op joins (a put that did
///     not change the lattice value), threshold wakeups, handler
///     invocations, quiescence waits (plus their summed latency),
///     cancellations, and memo hits/misses. Counters are striped across
///     cache-line-padded blocks indexed per thread, so the hot-path cost
///     is one relaxed fetch_add with no cross-thread contention.
///
///   * Span - a scoped wall-clock timer whose begin/end records land in a
///     process-wide span log, exportable together with TraceRecorder
///     slices as a chrome://tracing file (src/obs/ChromeTrace.h).
///
/// Counting is process-wide rather than per-scheduler because the hooks
/// fire inside LVar operations, which deliberately know nothing about the
/// scheduler that runs them. Snapshot before/after a region and subtract.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_OBS_TELEMETRY_H
#define LVISH_OBS_TELEMETRY_H

#include "src/support/Timer.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#ifndef LVISH_TELEMETRY
#define LVISH_TELEMETRY 0
#endif

namespace lvish {
namespace obs {

/// The LVar/session event kinds counted under LVISH_TELEMETRY.
enum class Event : unsigned {
  Puts = 0,           ///< LVar writes (put/insert/bump) that reached the
                      ///< store, including no-op joins.
  NoOpJoins,          ///< Puts whose join left the value unchanged.
  ThresholdWakeups,   ///< Parked readers released by a put or freeze.
  HandlerInvocations, ///< Handler-pool callback tasks spawned.
  QuiesceWaits,       ///< quiesce() calls that actually had to park.
  Cancellations,      ///< cancel() requests delivered to a CancelNode.
  MemoHits,           ///< getMemo calls whose key was already requested.
  MemoMisses,         ///< getMemo calls that requested a fresh key.
  FaultsRaised,       ///< Contract violations recorded as session Faults.
  FaultsContained,    ///< Sessions that returned a Fault instead of a value.
  InjectedFaults,     ///< Failures raised by the LVISH_FAULTS harness.
  ExploreSchedules,   ///< Explorer sessions started (one per Engine run).
  ExploreSteps,       ///< Tasks resumed under a controlled schedule.
  ExploreShrinkRuns,  ///< Candidate replays executed while shrinking.
  BucketScans,        ///< Waiter buckets a notify actually locked/scanned.
  HandlerBatchFlushes,///< Batched handler flush tasks spawned (one per
                      ///< armed (pool, worker) batch, not per delta).
  NotifySkips,        ///< Notifies that found no occupied bucket to scan,
                      ///< plus no-op joins that skipped notify entirely.
  SessionsSubmitted,  ///< Sessions launched on a scheduler (blocking runs
                      ///< and async submissions alike).
  SessionsCompleted,  ///< Sessions finalized with an outcome (value or
                      ///< contained Fault).
  SessionsRejected,   ///< Sessions refused by Runtime admission (e.g.
                      ///< explore-mode sessions on a busy shared pool).
                      ///< Counted for every refusal, including the three
                      ///< specialized refusals below.
  SessionsShed,       ///< Submissions refused because the admission queue
                      ///< was at RuntimeConfig::MaxQueuedSessions.
  DeadlineFaults,     ///< Sessions resolved with DeadlineExceeded because
                      ///< no slot freed within SubmitDeadlineNanos.
  BudgetFaults,       ///< Sessions killed by their deterministic step
                      ///< budget (FaultCode::BudgetExceeded).
  DrainWaits,         ///< Runtime::drain() calls that actually had to
                      ///< wait for in-flight sessions to finish.
  StreamAppends,      ///< Stream cells filled (one per accepted put; no-op
                      ///< duplicate joins count NoOpJoins instead).
  PrefixWakeups,      ///< Stream prefix readers (get/waitSize) that parked
                      ///< and were later released by an append.
  BackpressureParks,  ///< BoundedStream producers that parked waiting for
                      ///< a consumer advance() capacity credit.
};

inline constexpr unsigned NumEvents = 27;

/// Stable lower-snake-case name, used as the JSON key in BENCH_*.json.
const char *eventName(Event E);

/// The commit the binary was built from (CMake bakes it in; "unknown"
/// outside a git checkout). Lives here so every BENCH_*.json is
/// attributable to a revision even with telemetry compiled out.
const char *gitRevision();

/// One completed Span, for the chrome://tracing exporter.
struct SpanRecord {
  std::string Name;
  uint64_t StartNanos = 0;
  uint64_t DurationNanos = 0;
};

#if LVISH_TELEMETRY

inline constexpr bool TelemetryEnabled = true;

/// Event totals plus summed quiescence-wait latency. With telemetry
/// compiled out this struct is empty (see the #else branch) - that is
/// what TelemetryTest's static_assert pins down.
struct TelemetrySnapshot {
  uint64_t Counts[NumEvents] = {};
  uint64_t QuiesceWaitNanos = 0;
  /// Summed submit-to-outcome latency over SessionsCompleted sessions
  /// (divide for the mean; benches report full percentiles themselves).
  uint64_t SessionLatencyNanos = 0;

  uint64_t count(Event E) const { return Counts[static_cast<unsigned>(E)]; }
};

namespace detail {

/// One cache line of event counters; threads are striped across a small
/// fixed pool of these so concurrent puts on different threads do not
/// bounce a shared line.
struct alignas(64) TelemetryStripe {
  std::atomic<uint64_t> Counts[NumEvents] = {};
};

inline constexpr unsigned NumStripes = 16;
extern TelemetryStripe Stripes[NumStripes];
extern std::atomic<uint64_t> QuiesceWaitNanosTotal;
extern std::atomic<uint64_t> SessionLatencyNanosTotal;

/// Round-robin stripe assignment, cached per thread.
unsigned assignStripe();

inline unsigned myStripe() {
  thread_local unsigned Stripe = assignStripe();
  return Stripe;
}

} // namespace detail

/// Records \p N occurrences of \p E. One relaxed fetch_add on this
/// thread's stripe.
inline void count(Event E, uint64_t N = 1) {
  detail::Stripes[detail::myStripe()]
      .Counts[static_cast<unsigned>(E)]
      .fetch_add(N, std::memory_order_relaxed);
}

/// Accumulates measured quiescence-wait latency (paired with a
/// QuiesceWaits count bump at the park site).
inline void addQuiesceWaitNanos(uint64_t Nanos) {
  detail::QuiesceWaitNanosTotal.fetch_add(Nanos, std::memory_order_relaxed);
}

/// Accumulates one session's submit-to-outcome latency (paired with a
/// SessionsCompleted count bump at finalization).
inline void addSessionLatencyNanos(uint64_t Nanos) {
  detail::SessionLatencyNanosTotal.fetch_add(Nanos,
                                             std::memory_order_relaxed);
}

/// Sums all stripes into one snapshot. Relaxed reads: exact once the
/// counted activity has quiesced, approximate while it runs.
TelemetrySnapshot telemetrySnapshot();

/// Zeroes every counter (test isolation; do not call concurrently with
/// counted work).
void resetTelemetry();

/// Scoped wall-clock timer: construction starts it, destruction appends a
/// SpanRecord to the process-wide span log.
class Span {
public:
  explicit Span(const char *Name) : Name(Name), StartNanos(nowNanos()) {}
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name;
  uint64_t StartNanos;
};

/// Snapshot of every completed span so far (oldest first).
std::vector<SpanRecord> spanLog();

/// Empties the span log.
void clearSpans();

#else // !LVISH_TELEMETRY

inline constexpr bool TelemetryEnabled = false;

/// Empty fallback: with telemetry compiled out the snapshot carries no
/// data and every hook below is a no-op the optimizer deletes.
struct TelemetrySnapshot {};

inline void count(Event, uint64_t = 1) {}
inline void addQuiesceWaitNanos(uint64_t) {}
inline void addSessionLatencyNanos(uint64_t) {}
inline TelemetrySnapshot telemetrySnapshot() { return {}; }
inline void resetTelemetry() {}

class Span {
public:
  explicit Span(const char *) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
};

inline std::vector<SpanRecord> spanLog() { return {}; }
inline void clearSpans() {}

#endif // LVISH_TELEMETRY

} // namespace obs
} // namespace lvish

#endif // LVISH_OBS_TELEMETRY_H
