//===- ChromeTrace.h - chrome://tracing exporter ----------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports scheduler activity as a Chrome trace-event JSON file (load it
/// at chrome://tracing or https://ui.perfetto.dev). Two sources are
/// merged into one timeline:
///
///   * TraceRecorder slices - every recorded execution slice becomes a
///     complete ("ph":"X") event on a per-task lane, using the slice's
///     wall-clock start timestamp (TraceSlice::StartNanos) and measured
///     duration;
///   * the obs::Span log - harness- or user-level scoped timers, on a
///     dedicated "spans" lane (thread id 0).
///
/// Timestamps are normalized so the earliest event starts at t=0.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_OBS_CHROMETRACE_H
#define LVISH_OBS_CHROMETRACE_H

#include <string>

namespace lvish {

class TraceRecorder;

namespace obs {

/// Renders the merged trace as a JSON string. \p Rec may be null (spans
/// only). Call after the traced run has quiesced.
std::string chromeTraceJson(const TraceRecorder *Rec);

/// Writes chromeTraceJson() to \p Path; false if the file cannot be
/// opened.
bool writeChromeTrace(const std::string &Path, const TraceRecorder *Rec);

} // namespace obs
} // namespace lvish

#endif // LVISH_OBS_CHROMETRACE_H
