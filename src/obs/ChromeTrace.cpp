//===- ChromeTrace.cpp - chrome://tracing exporter ------------------------===//

#include "src/obs/ChromeTrace.h"

#include "src/obs/Json.h"
#include "src/obs/Telemetry.h"
#include "src/sched/Trace.h"

#include <algorithm>
#include <cstdio>
#include <limits>

using namespace lvish;
using namespace lvish::obs;

namespace {

// Chrome's trace format takes microseconds; keep fractional precision so
// sub-microsecond slices stay visible.
double micros(uint64_t Nanos) { return static_cast<double>(Nanos) * 1e-3; }

void emitEvent(JsonWriter &W, std::string_view Name, uint64_t StartNanos,
               uint64_t DurNanos, uint64_t Base, uint64_t Tid) {
  W.beginObject();
  W.key("name");
  W.value(Name);
  W.key("ph");
  W.value("X");
  W.key("pid");
  W.value(uint64_t(0));
  W.key("tid");
  W.value(Tid);
  W.key("ts");
  W.value(micros(StartNanos - Base));
  W.key("dur");
  W.value(micros(DurNanos));
  W.endObject();
}

} // namespace

std::string obs::chromeTraceJson(const TraceRecorder *Rec) {
  std::vector<SpanRecord> Spans = spanLog();

  // Normalize to the earliest timestamp on either source. Slices recorded
  // without a start timestamp (hand-built traces) are skipped: they have
  // no place on a wall-clock timeline.
  uint64_t Base = std::numeric_limits<uint64_t>::max();
  for (const SpanRecord &S : Spans)
    Base = std::min(Base, S.StartNanos);
  if (Rec)
    for (const TraceSlice &S : Rec->slices())
      if (S.StartNanos)
        Base = std::min(Base, S.StartNanos);
  if (Base == std::numeric_limits<uint64_t>::max())
    Base = 0;

  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  for (const SpanRecord &S : Spans)
    emitEvent(W, S.Name, S.StartNanos, S.DurationNanos, Base, /*Tid=*/0);
  if (Rec) {
    char Name[32];
    for (const TraceSlice &S : Rec->slices()) {
      if (!S.StartNanos)
        continue;
      // Lane per task; +1 keeps task 0 off the span lane.
      std::snprintf(Name, sizeof(Name), "task %u", S.Task);
      emitEvent(W, Name, S.StartNanos, S.DurationNanos, Base,
                uint64_t(S.Task) + 1);
    }
  }
  W.endArray();
  W.key("displayTimeUnit");
  W.value("ms");
  W.endObject();
  return W.take();
}

bool obs::writeChromeTrace(const std::string &Path, const TraceRecorder *Rec) {
  std::string Json = chromeTraceJson(Rec);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  return true;
}
