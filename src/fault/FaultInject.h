//===- FaultInject.h - Schedule-point injection hooks -----------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Task-aware half of the LVISH_FAULTS harness: thin inline hooks the
/// runtime drops at its schedule points (fork, park, put; the scheduler's
/// steal point uses FaultPlan.h directly). Each hook is a no-op unless the
/// build was configured with -DLVISH_FAULTS=ON *and* a FaultPlan is
/// installed, so tier-1 builds pay nothing.
///
/// Doomed-task failures raise through the same raiseSessionFault path as
/// real contract violations, so an injected failure exercises exactly the
/// containment machinery a production fault would: record-least-fault,
/// transitive cancellation, quiescence, Fault outcome.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_FAULT_FAULTINJECT_H
#define LVISH_FAULT_FAULTINJECT_H

#include "src/fault/FaultPlan.h"
#include "src/obs/Telemetry.h"
#include "src/sched/FaultSignal.h"
#include "src/sched/Task.h"

namespace lvish {
namespace fault {

/// Injection poll at a schedule point executed *by* task \p T (put or
/// park). Applies plan delays, then raises InjectedFailure if \p T was
/// doomed at creation. Must be called before the point's state change so
/// a doomed task's put never lands.
inline void injectPoint(Point P, Task *T) {
  if constexpr (InjectionEnabled) {
    if (!planActive())
      return;
    maybeDelay(P);
    if (T && T->InjectDoomed) {
      T->InjectDoomed = false;
      obs::count(obs::Event::InjectedFaults);
      detail::raiseSessionFault(T, FaultCode::InjectedFailure,
                                "injected task failure (LVISH_FAULTS "
                                "fault-injection plan)");
    }
  } else {
    (void)P;
    (void)T;
  }
}

/// Allocation-failure shim at fork, called in the forking \p Parent
/// before the child task is created: deterministically fails the spawn
/// (per parent pedigree and spawn clock) as if the task allocation had
/// failed.
inline void injectSpawn(Task *Parent) {
  if constexpr (InjectionEnabled) {
    if (!planActive() || !Parent)
      return;
    maybeDelay(Point::Spawn);
    uint64_t Clock = Parent->InjectClock++;
    if (shouldFailSpawn(Parent->Ped, Clock)) {
      obs::count(obs::Event::InjectedFaults);
      detail::raiseSessionFault(Parent, FaultCode::InjectedFailure,
                                "injected allocation failure at task spawn "
                                "(LVISH_FAULTS fault-injection plan)");
    }
  } else {
    (void)Parent;
  }
}

} // namespace fault
} // namespace lvish

#endif // LVISH_FAULT_FAULTINJECT_H
