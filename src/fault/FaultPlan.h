//===- FaultPlan.h - Seeded fault-injection plans ---------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision core of the LVISH_FAULTS injection harness: a process-wide
/// \c FaultPlan describing which tasks fail, where artificial delays land,
/// and how often spawn allocation is simulated to fail. Every decision is
/// a pure SplitMix-style hash of (plan seed, task pedigree, per-task
/// decision clock), so injected *failures* are deterministic per plan
/// regardless of worker count or steal order; injected *delays* are
/// deliberately non-semantic (they perturb interleavings, never outcomes)
/// and may use thread-local clocks.
///
/// This header depends only on src/support/ so the scheduler can consult
/// it without a layering cycle; the Task-aware raising glue lives in
/// src/fault/FaultInject.h. Build with -DLVISH_FAULTS=ON to arm the hooks
/// (\c InjectionEnabled); the plan API itself always compiles so tests can
/// configure and skip cleanly.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_FAULT_FAULTPLAN_H
#define LVISH_FAULT_FAULTPLAN_H

#include "src/support/Pedigree.h"

#include <cstdint>
#include <string>

#ifndef LVISH_FAULTS
#define LVISH_FAULTS 0
#endif

namespace lvish {
namespace fault {

#if LVISH_FAULTS
inline constexpr bool InjectionEnabled = true;
#else
inline constexpr bool InjectionEnabled = false;
#endif

/// Schedule points where injection decisions are polled.
enum class Point : unsigned {
  Spawn = 0, ///< fork / task creation (allocation-failure shim).
  Steal,     ///< Worker work-finding loop (delay only).
  Park,      ///< Blocking threshold read about to park.
  Put,       ///< LVar state-changing write.
};

/// One injection campaign; install with setFaultPlan/PlanScope *before*
/// the runPar session under test starts.
struct FaultPlan {
  /// Base seed: all decisions are pure functions of it.
  uint64_t Seed = 0;

  /// Targeted task failure: when armed, the one task whose creation
  /// pedigree (L/R string, "" = session root) equals FailPedigree raises
  /// FaultCode::InjectedFailure at its next put/park injection poll.
  /// This is the mode FaultStressTest uses to assert outcome *identity*
  /// across schedules: exactly one task fails, deterministically.
  bool HaveFailPedigree = false;
  std::string FailPedigree;

  /// Chaos-mode task failure: every created task whose seeded pedigree
  /// hash lands on a multiple of this period is doomed. 0 disables.
  /// Outcomes are well-formed (value or InjectedFailure Fault) but the
  /// winning fault may differ across schedules when several tasks race.
  uint32_t FailHashPeriod = 0;

  /// Artificial delays at steal/park/put points: roughly one poll in
  /// DelayPeriod spins for DelayNanos. 0 disables.
  uint32_t DelayPeriod = 0;
  uint32_t DelayNanos = 2000;

  /// Allocation-failure shim: a spawn whose seeded (parent pedigree,
  /// spawn-clock) hash lands on a multiple of this period raises
  /// InjectedFailure in the forking parent, as if task allocation failed.
  /// 0 disables; 1 fails every spawn.
  uint32_t AllocFailPeriod = 0;
};

/// Installs \p Plan process-wide. Not thread-safe against running
/// sessions: configure before runPar, clear after it returns.
void setFaultPlan(const FaultPlan &Plan);

/// Disarms the active plan.
void clearFaultPlan();

/// True while a plan is installed (relaxed probe; hot paths bail early).
bool planActive();

/// RAII plan installation for tests.
class PlanScope {
public:
  explicit PlanScope(const FaultPlan &Plan) { setFaultPlan(Plan); }
  ~PlanScope() { clearFaultPlan(); }
  PlanScope(const PlanScope &) = delete;
  PlanScope &operator=(const PlanScope &) = delete;
};

/// Decided at task creation: is the task at this pedigree doomed to an
/// injected failure? (Exact-pedigree targeting or chaos hash; see
/// FaultPlan.) Pure in (plan, pedigree).
bool shouldDoomTask(const Pedigree &Ped);

/// Decided at fork, in the parent: does this spawn's allocation shim
/// fire? Pure in (plan, parent pedigree, parent spawn clock).
bool shouldFailSpawn(const Pedigree &Ped, uint64_t SpawnClock);

/// Busy-spins for the plan's DelayNanos when the (thread-local) delay
/// clock lands on the period. Non-semantic by construction.
void maybeDelay(Point P);

} // namespace fault
} // namespace lvish

#endif // LVISH_FAULT_FAULTPLAN_H
