//===- FaultPlan.cpp - Seeded fault-injection plans -----------------------===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "src/fault/FaultPlan.h"

#include "src/support/Fault.h"
#include "src/support/Hashing.h"
#include "src/support/Timer.h"

#include <atomic>

using namespace lvish;
using namespace lvish::fault;

namespace {

FaultPlan GPlan;
std::atomic<bool> GActive{false};

/// Stable hash of a pedigree position. Uses the rendered depth too so a
/// saturated 64-bit path still distinguishes deeper tasks.
uint64_t hashPedigree(uint64_t PedPath, uint32_t PedDepth) {
  return hashCombine(mix64(PedPath), PedDepth);
}

} // namespace

void fault::setFaultPlan(const FaultPlan &Plan) {
  GPlan = Plan;
  GActive.store(true, std::memory_order_release);
}

void fault::clearFaultPlan() {
  GActive.store(false, std::memory_order_release);
}

bool fault::planActive() {
  return GActive.load(std::memory_order_acquire);
}

bool fault::shouldDoomTask(uint64_t PedPath, uint32_t PedDepth) {
  if (!planActive())
    return false;
  if (GPlan.HaveFailPedigree)
    return renderPedigree(PedPath, PedDepth) == GPlan.FailPedigree;
  if (GPlan.FailHashPeriod)
    return mix64(GPlan.Seed ^ hashPedigree(PedPath, PedDepth)) %
               GPlan.FailHashPeriod ==
           0;
  return false;
}

bool fault::shouldFailSpawn(uint64_t PedPath, uint32_t PedDepth,
                            uint64_t SpawnClock) {
  if (!planActive() || GPlan.AllocFailPeriod == 0)
    return false;
  uint64_t H = hashCombine(GPlan.Seed ^ hashPedigree(PedPath, PedDepth),
                           SpawnClock);
  return H % GPlan.AllocFailPeriod == 0;
}

void fault::maybeDelay(Point P) {
  if (!planActive() || GPlan.DelayPeriod == 0)
    return;
  // Thread-local clock: delays are jitter, not semantics, so they need no
  // cross-schedule determinism - only a seed-dependent spread of where
  // they land.
  thread_local uint64_t DelayClock = 0;
  uint64_t H = hashCombine(GPlan.Seed ^ (static_cast<uint64_t>(P) << 32),
                           DelayClock++);
  if (H % GPlan.DelayPeriod != 0)
    return;
  uint64_t Until = nowNanos() + GPlan.DelayNanos;
  while (nowNanos() < Until) {
    // Busy spin: short (microseconds), and sleeping would just hide the
    // interleavings the delay is meant to expose.
  }
}
