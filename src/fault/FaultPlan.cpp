//===- FaultPlan.cpp - Seeded fault-injection plans -----------------------===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "src/fault/FaultPlan.h"

#include "src/support/Fault.h"
#include "src/support/Hashing.h"
#include "src/support/Timer.h"

#include <atomic>

using namespace lvish;
using namespace lvish::fault;

namespace {

FaultPlan GPlan;
std::atomic<bool> GActive{false};

} // namespace

void fault::setFaultPlan(const FaultPlan &Plan) {
  GPlan = Plan;
  GActive.store(true, std::memory_order_release);
}

void fault::clearFaultPlan() {
  GActive.store(false, std::memory_order_release);
}

bool fault::planActive() {
  return GActive.load(std::memory_order_acquire);
}

bool fault::shouldDoomTask(const Pedigree &Ped) {
  if (!planActive())
    return false;
  if (GPlan.HaveFailPedigree)
    return Ped.render() == GPlan.FailPedigree;
  if (GPlan.FailHashPeriod)
    return mix64(GPlan.Seed ^ Ped.hash()) % GPlan.FailHashPeriod == 0;
  return false;
}

bool fault::shouldFailSpawn(const Pedigree &Ped, uint64_t SpawnClock) {
  if (!planActive() || GPlan.AllocFailPeriod == 0)
    return false;
  uint64_t H = hashCombine(GPlan.Seed ^ Ped.hash(), SpawnClock);
  return H % GPlan.AllocFailPeriod == 0;
}

void fault::maybeDelay(Point P) {
  if (!planActive() || GPlan.DelayPeriod == 0)
    return;
  // Thread-local clock: delays are jitter, not semantics, so they need no
  // cross-schedule determinism - only a seed-dependent spread of where
  // they land.
  thread_local uint64_t DelayClock = 0;
  uint64_t H = hashCombine(GPlan.Seed ^ (static_cast<uint64_t>(P) << 32),
                           DelayClock++);
  if (H % GPlan.DelayPeriod != 0)
    return;
  uint64_t Until = nowNanos() + GPlan.DelayNanos;
  while (nowNanos() < Until) {
    // Busy spin: short (microseconds), and sleeping would just hide the
    // interleavings the delay is meant to expose.
  }
}
