//===- ServiceChaos.h - Seeded chaos for the service runtime ----*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service-layer half of the fault-injection harness (src/fault):
/// where FaultPlan dooms individual tasks inside one session, ServiceChaos
/// attacks the multi-tenant Runtime around the sessions - the failure
/// modes a long-lived pool actually sees:
///
///   * mid-flight session doom: a seeded subset of submitted sessions is
///     killed while running, by delivering Scheduler::raiseFault
///     (FaultCode::InjectedFailure) from a background thread after a
///     seeded delay. Delivery races session completion on purpose - a
///     doomed session may legitimately finish first, in which case
///     raiseFault drops the fault (the documented benign race). What must
///     hold either way: the doomed tenant's NEIGHBORS are unperturbed.
///   * admission delay injection: a seeded subset of submissions sleeps
///     before submit, jittering arrival order against the admission
///     queue's deadline/shed machinery.
///   * worker stall shim: stallPlan() derives a FaultPlan whose
///     steal/park/put delays (fault::maybeDelay) stutter the workers
///     under the sessions; armed via PlanScope in LVISH_FAULTS builds and
///     inert otherwise.
///
/// WHICH sessions are doomed/delayed is a pure SplitMix hash of
/// (plan seed, submission index) - reproducible per seed. WHEN a doom
/// lands is wall-clock jitter and deliberately non-deterministic: the
/// harness probes isolation under timing chaos, while ServiceChaosTest's
/// assertions only state schedule-independent facts (neighbor values
/// exact, doomed outcomes well-formed).
///
/// Header-only and always compiled (the background thread is plain
/// library code); only the stall shim needs -DLVISH_FAULTS.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_FAULT_SERVICECHAOS_H
#define LVISH_FAULT_SERVICECHAOS_H

#include "src/fault/FaultPlan.h"
#include "src/obs/Telemetry.h"
#include "src/sched/Scheduler.h"
#include "src/support/SplitMix.h"
#include "src/support/Timer.h"

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lvish {
namespace fault {

/// One chaos campaign against a service::Runtime; seeded decisions, see
/// file comment.
struct ServiceChaosPlan {
  /// Base seed: which sessions are doomed/delayed is a pure function of
  /// (Seed, submission index).
  uint64_t Seed = 0;
  /// Roughly one submission in DoomPeriod is doomed mid-flight.
  /// 0 disables dooming.
  uint32_t DoomPeriod = 0;
  /// Doom delivery waits a seeded delay in [0, DoomDelayMaxNanos] after
  /// armDoom, so kills land at varied points of the session's life.
  uint64_t DoomDelayMaxNanos = 200'000;
  /// Roughly one submission in AdmitDelayPeriod sleeps AdmitDelayNanos
  /// before submitting. 0 disables.
  uint32_t AdmitDelayPeriod = 0;
  uint64_t AdmitDelayNanos = 50'000;
  /// Worker stall shim: forwarded into stallPlan()'s FaultPlan delay
  /// knobs (active only in LVISH_FAULTS builds). 0 disables.
  uint32_t StallDelayPeriod = 0;
  uint32_t StallDelayNanos = 2000;
};

/// Drives one ServiceChaosPlan against the Scheduler under a Runtime.
/// Construction starts the delivery thread; destruction joins it (deliver
/// or discard pending dooms first - see drainDooms).
class ServiceChaos {
public:
  ServiceChaos(Scheduler &Sched, ServiceChaosPlan Plan)
      : Sched(Sched), Plan(Plan) {
    Deliverer = std::thread([this] { deliverLoop(); });
  }

  ~ServiceChaos() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Stop = true;
      CV.notify_all();
    }
    Deliverer.join();
  }

  ServiceChaos(const ServiceChaos &) = delete;
  ServiceChaos &operator=(const ServiceChaos &) = delete;

  /// Pure: is submission \p Index doomed under this plan's seed?
  bool doomed(uint64_t Index) const {
    return Plan.DoomPeriod != 0 &&
           decision(Index, 0x646f6f6dULL) % Plan.DoomPeriod == 0;
  }

  /// Pure: this submission's admission-delay injection (0 = none).
  uint64_t admitDelayNanos(uint64_t Index) const {
    if (Plan.AdmitDelayPeriod == 0 ||
        decision(Index, 0x61646d6974ULL) % Plan.AdmitDelayPeriod != 0)
      return 0;
    return Plan.AdmitDelayNanos;
  }

  /// Sleeps the admission-delay injection for \p Index, if any. Call
  /// just before submitting.
  void maybeDelayAdmission(uint64_t Index) const {
    if (uint64_t Delay = admitDelayNanos(Index))
      std::this_thread::sleep_for(std::chrono::nanoseconds(Delay));
  }

  /// Schedules the mid-flight kill of session \p SessionId (the id of
  /// doomed submission \p Index, read from its future after launch): the
  /// delivery thread raises InjectedFailure after a seeded delay.
  void armDoom(uint64_t SessionId, uint64_t Index) {
    uint64_t Delay =
        Plan.DoomDelayMaxNanos
            ? decision(Index, 0x64656c6179ULL) % (Plan.DoomDelayMaxNanos + 1)
            : 0;
    std::lock_guard<std::mutex> Lock(Mu);
    Pending.push_back({nowNanos() + Delay, SessionId});
    CV.notify_all();
  }

  /// Blocks until every armed doom has been delivered (the fault may
  /// still be dropped by the scheduler if its session already finished).
  void drainDooms() {
    std::unique_lock<std::mutex> Lock(Mu);
    CV.wait(Lock, [this] { return Pending.empty(); });
  }

  /// Dooms delivered to Scheduler::raiseFault so far (delivered, not
  /// necessarily recorded - finished sessions drop theirs).
  uint64_t doomsDelivered() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Delivered;
  }

  /// The worker stall shim: a FaultPlan carrying only this chaos plan's
  /// delay knobs, for installation via fault::PlanScope around the sweep.
  /// Delays are non-semantic (they perturb interleavings, never
  /// outcomes) and fire only in -DLVISH_FAULTS builds.
  FaultPlan stallPlan() const {
    FaultPlan P;
    P.Seed = Plan.Seed;
    P.DelayPeriod = Plan.StallDelayPeriod;
    P.DelayNanos = Plan.StallDelayNanos;
    return P;
  }

private:
  struct Doom {
    uint64_t DueNanos;
    uint64_t SessionId;
  };

  /// Pure per-(seed, index, salt) decision hash.
  uint64_t decision(uint64_t Index, uint64_t Salt) const {
    SplitMix64 Rng(Plan.Seed ^ mix64(Index + Salt));
    return Rng.next();
  }

  void deliverLoop() {
    std::unique_lock<std::mutex> Lock(Mu);
    for (;;) {
      if (Pending.empty()) {
        if (Stop)
          return;
        CV.wait(Lock, [this] { return Stop || !Pending.empty(); });
        continue;
      }
      // Earliest due doom first.
      size_t Next = 0;
      for (size_t I = 1; I < Pending.size(); ++I)
        if (Pending[I].DueNanos < Pending[Next].DueNanos)
          Next = I;
      uint64_t Now = nowNanos();
      if (Pending[Next].DueNanos > Now && !Stop) {
        CV.wait_for(Lock, std::chrono::nanoseconds(Pending[Next].DueNanos -
                                                   Now));
        continue;
      }
      Doom D = Pending[Next];
      Pending.erase(Pending.begin() + static_cast<ptrdiff_t>(Next));
      ++Delivered;
      Lock.unlock();
      Fault F;
      F.Code = FaultCode::InjectedFailure;
      F.SessionId = D.SessionId;
      F.Worker = -1;
      F.Pedigree.clear();
      F.Message = "ServiceChaos: session doomed mid-flight "
                  "[code=injected_failure, session=" +
                  std::to_string(D.SessionId) + ", pedigree=<root>]";
      obs::count(obs::Event::InjectedFaults);
      // Races session completion by design; raiseFault drops faults for
      // finished sessions.
      Sched.raiseFault(std::move(F));
      Lock.lock();
      CV.notify_all(); // drainDooms watches Pending.
    }
  }

  Scheduler &Sched;
  const ServiceChaosPlan Plan;

  mutable std::mutex Mu;
  std::condition_variable CV;
  std::vector<Doom> Pending;
  uint64_t Delivered = 0;
  bool Stop = false;
  std::thread Deliverer;
};

} // namespace fault
} // namespace lvish

#endif // LVISH_FAULT_SERVICECHAOS_H
