//===- Histogram.h - PBBS histogram / removeDuplicates on LVars -*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PBBS key-stream pair, exercising the two write disciplines the
/// paper keeps strictly apart (Section 3):
///
///  * \c histogramLVar - Counter territory: bucket counts are CounterVec
///    \c bump cells (commutative, inflationary, NOT idempotent - each
///    occurrence must count exactly once, which the single fetch-add
///    guarantees). Skewed streams make a handful of cells white-hot.
///
///  * \c removeDuplicatesLVar - put territory: distinct keys pour into an
///    ISet whose idempotent join IS the dedup (re-inserting an existing
///    key is a no-op by construction, not by a check).
///
/// One workload, both effect families - and the golden test pins down
/// that exactness and idempotence give schedule-independent answers.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_PBBS_HISTOGRAM_H
#define LVISH_PBBS_HISTOGRAM_H

#include "src/core/RunPar.h"

#include <cstdint>
#include <vector>

namespace lvish {
namespace pbbs {

/// Sequential reference: occurrence counts per bucket (Key % NumBuckets).
std::vector<uint64_t> histogramSeq(const std::vector<uint64_t> &Keys,
                                   uint64_t NumBuckets);

/// LVar histogram on CounterVec bumps; equals \c histogramSeq on every
/// schedule (bumps are exact, not just monotone).
std::vector<uint64_t> histogramLVar(const std::vector<uint64_t> &Keys,
                                    uint64_t NumBuckets,
                                    const RunOptions &Opts = RunOptions());

/// Sequential reference: sorted distinct keys.
std::vector<uint64_t> removeDuplicatesSeq(const std::vector<uint64_t> &Keys);

/// LVar dedup on an ISet; equals \c removeDuplicatesSeq on every schedule.
std::vector<uint64_t>
removeDuplicatesLVar(const std::vector<uint64_t> &Keys,
                     const RunOptions &Opts = RunOptions());

} // namespace pbbs
} // namespace lvish

#endif // LVISH_PBBS_HISTOGRAM_H
