//===- Bfs.cpp - PBBS breadth-first search on LVars ------------------------===//

#include "src/pbbs/Bfs.h"

#include "src/core/HandlerPool.h"
#include "src/core/ParFor.h"
#include "src/data/ISet.h"

#include <deque>

using namespace lvish;
using namespace lvish::pbbs;

std::vector<uint32_t> pbbs::bfsSeq(const Graph &G, uint32_t Source) {
  std::vector<uint32_t> Levels(G.NumVertices, UnreachedLevel);
  if (Source >= G.NumVertices)
    return Levels;
  Levels[Source] = 0;
  std::deque<uint32_t> Queue{Source};
  while (!Queue.empty()) {
    uint32_t V = Queue.front();
    Queue.pop_front();
    for (const uint32_t *W = G.neighborsBegin(V), *End = G.neighborsEnd(V);
         W != End; ++W)
      if (Levels[*W] == UnreachedLevel) {
        Levels[*W] = Levels[V] + 1;
        Queue.push_back(*W);
      }
  }
  return Levels;
}

namespace {

/// The frontier-round engine needs put (frontier inserts), get (the
/// parallelFor barrier), and freeze (reading each round's frontier).
constexpr EffectSet BfsEff = Eff::QuasiDet;
constexpr size_t BfsGrain = 64;

} // namespace

std::vector<uint32_t> pbbs::bfsLevels(const Graph &G, uint32_t Source,
                                      const RunOptions &Opts) {
  std::vector<uint32_t> Levels(G.NumVertices, UnreachedLevel);
  if (Source >= G.NumVertices)
    return Levels;
  Levels[Source] = 0;
  const Graph *GP = &G;
  std::vector<uint32_t> *LP = &Levels;
  runParIO<BfsEff>(
      [GP, LP, Source](ParCtx<BfsEff> Ctx) -> Par<void> {
        std::vector<uint32_t> Frontier{Source};
        for (uint32_t Round = 1; !Frontier.empty(); ++Round) {
          auto Next = newISet<uint32_t>(Ctx);
          const std::vector<uint32_t> *FP = &Frontier;
          ISet<uint32_t> *NP = Next.get();
          // Levels is only READ during the round (it was last written
          // between rounds, below); racing discoveries of the same vertex
          // dedup inside the ISet join.
          auto Body = [GP, LP, FP, NP](ParCtx<BfsEff> C,
                                       size_t I) -> Par<void> {
            uint32_t V = (*FP)[I];
            for (const uint32_t *W = GP->neighborsBegin(V),
                                *End = GP->neighborsEnd(V);
                 W != End; ++W)
              if ((*LP)[*W] == UnreachedLevel)
                insert(C, *NP, *W);
            co_return;
          };
          co_await parallelForPar(Ctx, 0, Frontier.size(),
                                  pickGrain(BfsGrain, Frontier.size()), Body);
          // The barrier above quiesced every writer of Next: freezing here
          // is deterministic, and the sorted contents give a canonical
          // next frontier regardless of insertion order.
          std::vector<uint32_t> Sorted = freezeSet(Ctx, *Next);
          for (uint32_t W : Sorted)
            (*LP)[W] = Round;
          Frontier = std::move(Sorted);
        }
        co_return;
      },
      Opts);
  return Levels;
}

std::vector<uint32_t> pbbs::bfsReachSeq(const Graph &G, uint32_t Source) {
  std::vector<uint32_t> Levels = bfsSeq(G, Source);
  std::vector<uint32_t> Reached;
  for (uint32_t V = 0; V < G.NumVertices; ++V)
    if (Levels[V] != UnreachedLevel)
      Reached.push_back(V);
  return Reached;
}

std::vector<uint32_t> pbbs::bfsReach(const Graph &G, uint32_t Source,
                                     const RunOptions &Opts) {
  if (Source >= G.NumVertices)
    return {};
  constexpr EffectSet E = Eff::Det; // put + get; the freeze is on exit.
  const Graph *GP = &G;
  auto Seen = runParThenFreeze<E>(
      [GP, Source](ParCtx<E> Ctx) -> Par<std::shared_ptr<ISet<uint32_t>>> {
        auto S = newISet<uint32_t>(Ctx);
        auto Pool = newPool(Ctx);
        // addHandlerRef: the callback receives the set by reference, so
        // the closure holds no owning pointer back into the LVar (the
        // shared_ptr-cycle hazard of HandlerPool.h).
        auto Handler = [GP](ParCtx<E> C, ISet<uint32_t> &SeenRef,
                            const uint32_t &V) -> Par<void> {
          for (const uint32_t *W = GP->neighborsBegin(V),
                              *End = GP->neighborsEnd(V);
               W != End; ++W)
            insert(C, SeenRef, *W);
          co_return;
        };
        [[maybe_unused]] HandlerHandle H =
            addHandlerRef(Ctx, Pool, *S, Handler);
        insert(Ctx, *S, Source);
        co_await quiesce(Ctx, Pool);
        co_return S;
      },
      Opts);
  return Seen->toSortedVector();
}
