//===- Input.cpp - Seeded deterministic PBBS input generators --------------===//

#include "src/pbbs/Input.h"

#include "src/support/SplitMix.h"

#include <cmath>

using namespace lvish;
using namespace lvish::pbbs;

namespace {

/// Builds the symmetric CSR from a list of (U, V) endpoint pairs.
Graph buildCsr(uint32_t N, const std::vector<std::pair<uint32_t, uint32_t>>
                               &Pairs) {
  Graph G;
  G.NumVertices = N;
  G.Offsets.assign(static_cast<size_t>(N) + 1, 0);
  for (const auto &[U, V] : Pairs) {
    ++G.Offsets[U + 1];
    ++G.Offsets[V + 1];
  }
  for (uint32_t I = 0; I < N; ++I)
    G.Offsets[I + 1] += G.Offsets[I];
  G.Adjacency.resize(2 * Pairs.size());
  std::vector<uint32_t> Cursor(G.Offsets.begin(), G.Offsets.end() - 1);
  for (const auto &[U, V] : Pairs) {
    G.Adjacency[Cursor[U]++] = V;
    G.Adjacency[Cursor[V]++] = U;
  }
  return G;
}

} // namespace

Graph pbbs::makeUniformGraph(uint32_t N, uint32_t AvgDegree, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<std::pair<uint32_t, uint32_t>> Pairs;
  if (N < 2)
    return buildCsr(N, Pairs);
  size_t M = static_cast<size_t>(N) * AvgDegree / 2;
  Pairs.reserve(M);
  while (Pairs.size() < M) {
    auto U = static_cast<uint32_t>(Rng.nextBounded(N));
    auto V = static_cast<uint32_t>(Rng.nextBounded(N));
    if (U != V)
      Pairs.emplace_back(U, V);
  }
  return buildCsr(N, Pairs);
}

Graph pbbs::makePowerLawGraph(uint32_t N, uint32_t AvgDegree,
                              uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<std::pair<uint32_t, uint32_t>> Pairs;
  if (N < 2)
    return buildCsr(N, Pairs);
  unsigned Scale = 1;
  while ((1u << Scale) < N)
    ++Scale;
  size_t M = static_cast<size_t>(N) * AvgDegree / 2;
  Pairs.reserve(M);
  while (Pairs.size() < M) {
    // RMAT quadrant descent: each bit of (U, V) chosen with the skewed
    // quadrant probabilities a=0.57, b=c=0.19, d=0.05.
    uint32_t U = 0, V = 0;
    for (unsigned B = 0; B < Scale; ++B) {
      double P = Rng.nextDouble();
      U = (U << 1) | (P >= 0.76 ? 1u : 0u);        // c + d quadrants
      V = (V << 1) |
          ((P >= 0.57 && P < 0.76) || P >= 0.95 ? 1u : 0u); // b + d
    }
    if (U < N && V < N && U != V)
      Pairs.emplace_back(U, V);
  }
  return buildCsr(N, Pairs);
}

EdgeList pbbs::toEdgeList(const Graph &G) {
  EdgeList E;
  E.NumVertices = G.NumVertices;
  for (uint32_t U = 0; U < G.NumVertices; ++U)
    for (const uint32_t *W = G.neighborsBegin(U), *End = G.neighborsEnd(U);
         W != End; ++W)
      if (U < *W)
        E.Edges.emplace_back(U, *W);
  return E;
}

std::vector<uint64_t> pbbs::makeSkewedKeys(size_t N, uint64_t Universe,
                                           uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<uint64_t> Keys(N);
  for (uint64_t &K : Keys) {
    double U = Rng.nextDouble();
    K = static_cast<uint64_t>(static_cast<double>(Universe) * U * U * U);
    if (K >= Universe) // guard the U ~ 1.0 edge of the transform
      K = Universe - 1;
  }
  return Keys;
}

std::vector<uint64_t> pbbs::makeUniformKeys(size_t N, uint64_t Universe,
                                            uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<uint64_t> Keys(N);
  for (uint64_t &K : Keys)
    K = Rng.nextBounded(Universe);
  return Keys;
}
