//===- ConnectedComponents.h - PBBS connectivity on LVars -------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PBBS connected components as a min-label propagation fixpoint on a
/// \c MinMap (src/data/MinMap.h): every vertex is seeded with its own id,
/// and a handler relaxes each winning label decrease across the vertex's
/// edges (putMin to every neighbor). Labels only fall, min-joins commute,
/// and \c quiesce detects the fixpoint - at which point label[v] is
/// exactly the minimum vertex id of v's component, independent of
/// schedule. The monotone-fixpoint cousin of BFS: same handler shape, a
/// richer lattice than set-membership.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_PBBS_CONNECTEDCOMPONENTS_H
#define LVISH_PBBS_CONNECTEDCOMPONENTS_H

#include "src/core/RunPar.h"
#include "src/pbbs/Input.h"

#include <cstdint>
#include <vector>

namespace lvish {
namespace pbbs {

/// Sequential reference: label[v] = min vertex id in v's component.
std::vector<uint32_t> componentsSeq(const Graph &G);

/// LVar min-label propagation; equals \c componentsSeq on every schedule.
std::vector<uint32_t> componentsLVar(const Graph &G,
                                     const RunOptions &Opts = RunOptions());

} // namespace pbbs
} // namespace lvish

#endif // LVISH_PBBS_CONNECTEDCOMPONENTS_H
