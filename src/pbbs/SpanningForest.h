//===- SpanningForest.h - PBBS spanning forest on ParST + LVars -*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PBBS spanning forest as deterministic parallel Boruvka, combining the
/// two halves of the paper's Section 5 story (DESIGN.md Section 17):
///
///  * ParST for the destructive part: the live-edge array is recursively
///    partitioned with \c forkSTSplit, and each leaf *mutates its own
///    disjoint slice in place* - relabeling both endpoints of every edge
///    to its component root - while proposing the minimum incident edge
///    index of each component into a \c MinVec (putMinAt, a commuting
///    lub), the monotone channel out of the destructive region.
///
///  * LVars for the monotone part: accepted edges accumulate in an ISet
///    of edge indices - the "monotone union structure" that only ever
///    grows toward the forest - frozen once at the end for the sorted
///    answer.
///
/// Determinism does not come from luck: edge *indices* are the weights,
/// all distinct, so the minimum spanning forest is unique, each round's
/// per-component minimum is a schedule-independent min-join, and the
/// whole parallel computation provably equals the sequential
/// Kruskal-by-index reference (\c spanningForestSeq) - the golden test's
/// oracle.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_PBBS_SPANNINGFOREST_H
#define LVISH_PBBS_SPANNINGFOREST_H

#include "src/core/RunPar.h"
#include "src/pbbs/Input.h"

#include <cstdint>
#include <vector>

namespace lvish {
namespace pbbs {

/// Sequential reference: union-find scan in index order (Kruskal with
/// index-as-weight); returns the sorted accepted edge indices.
std::vector<uint64_t> spanningForestSeq(const EdgeList &EL);

/// Parallel Boruvka over ParST edge partitions; equals
/// \c spanningForestSeq on every schedule.
std::vector<uint64_t>
spanningForestLVar(const EdgeList &EL,
                   const RunOptions &Opts = RunOptions());

} // namespace pbbs
} // namespace lvish

#endif // LVISH_PBBS_SPANNINGFOREST_H
