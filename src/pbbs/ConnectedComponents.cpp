//===- ConnectedComponents.cpp - PBBS connectivity on LVars ----------------===//

#include "src/pbbs/ConnectedComponents.h"

#include "src/core/HandlerPool.h"
#include "src/core/ParFor.h"
#include "src/data/MinMap.h"

#include <deque>

using namespace lvish;
using namespace lvish::pbbs;

namespace {
constexpr uint32_t NoLabel = ~0u;
} // namespace

std::vector<uint32_t> pbbs::componentsSeq(const Graph &G) {
  std::vector<uint32_t> Labels(G.NumVertices, NoLabel);
  for (uint32_t Root = 0; Root < G.NumVertices; ++Root) {
    if (Labels[Root] != NoLabel)
      continue; // Already labeled by a smaller root.
    // BFS from the smallest unlabeled vertex: it is its component's min.
    Labels[Root] = Root;
    std::deque<uint32_t> Queue{Root};
    while (!Queue.empty()) {
      uint32_t V = Queue.front();
      Queue.pop_front();
      for (const uint32_t *W = G.neighborsBegin(V),
                          *End = G.neighborsEnd(V);
           W != End; ++W)
        if (Labels[*W] == NoLabel) {
          Labels[*W] = Root;
          Queue.push_back(*W);
        }
    }
  }
  return Labels;
}

namespace {

/// put (seeding + relaxation), get (parallelFor + quiesce), freeze (the
/// final labeled snapshot after the fixpoint).
constexpr EffectSet CcEff = Eff::QuasiDet;
/// The relaxation handler only ever writes (putMin); registering it at
/// put-only strength routes it through the HandlerPool's batched
/// non-blocking path - deltas queue per worker and one flush task drains
/// them - instead of spawning a scheduler task per winning decrease.
constexpr EffectSet RelaxEff{/*put*/ true,    /*get*/ false,
                             /*bump*/ false,  /*freeze*/ false,
                             /*io*/ false,    /*st*/ false};
constexpr size_t SeedGrain = 128;

} // namespace

std::vector<uint32_t> pbbs::componentsLVar(const Graph &G,
                                           const RunOptions &Opts) {
  const Graph *GP = &G;
  uint32_t N = G.NumVertices;
  if (N == 0)
    return {};
  return runParIO<CcEff>(
      [GP, N](ParCtx<CcEff> Ctx) -> Par<std::vector<uint32_t>> {
        auto Labels = newMinMap<uint32_t>(Ctx);
        auto Pool = newPool(Ctx);
        // Relaxation: each winning decrease of label[v] pushes the new
        // label to every neighbor. Non-improving pushes are no-op joins,
        // so the cascade dies out exactly at the fixpoint.
        auto Relax = [GP](ParCtx<RelaxEff> C, MinMap<uint32_t> &M,
                          const std::pair<uint32_t, uint64_t> &D)
            -> Par<void> {
          uint32_t V = D.first;
          uint64_t L = D.second;
          // Stale-wave cutoff: if label[V] has already dropped below L,
          // the handler run for that smaller delta pushes a value that
          // strictly subsumes L at every neighbor (min-join), so pushing
          // L here could only seed doomed churn. The advisory peek cannot
          // change the fixpoint - it only skips no-op-bound work - so the
          // frozen result stays schedule-independent.
          auto Cur = M.peekKey(V);
          if (Cur && *Cur < L)
            co_return;
          for (const uint32_t *W = GP->neighborsBegin(V),
                              *End = GP->neighborsEnd(V);
               W != End; ++W)
            putMin(C, M, *W, L);
          co_return;
        };
        [[maybe_unused]] HandlerHandle H = addHandlerRef(
            ParCtx<RelaxEff>(Ctx), Pool, *Labels, Relax);
        MinMap<uint32_t> *MP = Labels.get();
        // Seed only local minima (vertices smaller than every neighbor).
        // A component's final label - its smallest vertex id - is always a
        // local minimum, so the fixpoint is unchanged, but the N - |minima|
        // waves that were doomed to lose never start. Without this filter
        // every vertex launches a wave and the relaxation cascade degrades
        // to quadratic label churn under adversarial task orders.
        auto SeedBody = [MP, GP](ParCtx<CcEff> C, size_t V) -> Par<void> {
          uint32_t U = static_cast<uint32_t>(V);
          for (const uint32_t *W = GP->neighborsBegin(U),
                              *End = GP->neighborsEnd(U);
               W != End; ++W)
            if (*W < U)
              co_return;
          putMin(C, *MP, U, static_cast<uint64_t>(V));
          co_return;
        };
        co_await parallelForPar(Ctx, 0, N, pickGrain(SeedGrain, N), SeedBody);
        co_await quiesce(Ctx, Pool);
        // Post-quiescence freeze: deterministic exact contents.
        auto Frozen = freezeMinMap(Ctx, *Labels);
        std::vector<uint32_t> Out(N, 0);
        for (const auto &[V, L] : Frozen)
          Out[V] = static_cast<uint32_t>(L);
        co_return Out;
      },
      Opts);
}
