//===- Histogram.cpp - PBBS histogram / removeDuplicates on LVars ----------===//

#include "src/pbbs/Histogram.h"

#include "src/core/ParFor.h"
#include "src/data/Counter.h"
#include "src/data/ISet.h"
#include "src/pbbs/Input.h"

#include <algorithm>

using namespace lvish;
using namespace lvish::pbbs;

std::vector<uint64_t> pbbs::histogramSeq(const std::vector<uint64_t> &Keys,
                                         uint64_t NumBuckets) {
  std::vector<uint64_t> Counts(NumBuckets, 0);
  for (uint64_t K : Keys)
    ++Counts[K % NumBuckets];
  return Counts;
}

namespace {

/// bump (the counts), put+get (parallelFor), freeze (the exact read).
constexpr EffectSet HistEff{true, true, true, true, false, false};
constexpr size_t KeyGrain = 256;

} // namespace

std::vector<uint64_t> pbbs::histogramLVar(const std::vector<uint64_t> &Keys,
                                          uint64_t NumBuckets,
                                          const RunOptions &Opts) {
  const uint64_t *KP = Keys.data();
  size_t N = Keys.size();
  return runParIO<HistEff>(
      [KP, N, NumBuckets](ParCtx<HistEff> Ctx) -> Par<std::vector<uint64_t>> {
        auto Counts = newCounterVec(Ctx, NumBuckets);
        CounterVec *CP = Counts.get();
        auto Body = [KP, CP, NumBuckets](ParCtx<HistEff> C,
                                         size_t I) -> Par<void> {
          incrCounterAt(C, *CP, static_cast<size_t>(KP[I] % NumBuckets));
          co_return;
        };
        co_await parallelForPar(Ctx, 0, N, pickGrain(KeyGrain, N), Body);
        co_return freezeCounterVec(Ctx, *Counts);
      },
      Opts);
}

std::vector<uint64_t>
pbbs::removeDuplicatesSeq(const std::vector<uint64_t> &Keys) {
  std::vector<uint64_t> Out(Keys);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

namespace {

constexpr EffectSet DedupEff = Eff::QuasiDet;

} // namespace

std::vector<uint64_t>
pbbs::removeDuplicatesLVar(const std::vector<uint64_t> &Keys,
                           const RunOptions &Opts) {
  const uint64_t *KP = Keys.data();
  size_t N = Keys.size();
  return runParIO<DedupEff>(
      [KP, N](ParCtx<DedupEff> Ctx) -> Par<std::vector<uint64_t>> {
        auto Distinct = newISet<uint64_t>(Ctx);
        ISet<uint64_t> *DP = Distinct.get();
        auto Body = [KP, DP](ParCtx<DedupEff> C, size_t I) -> Par<void> {
          insert(C, *DP, KP[I]);
          co_return;
        };
        co_await parallelForPar(Ctx, 0, N, pickGrain(KeyGrain, N), Body);
        // Quiescent at the barrier: the freeze is deterministic and the
        // sorted snapshot is the canonical dedup result.
        co_return freezeSet(Ctx, *Distinct);
      },
      Opts);
}
