//===- SpanningForest.cpp - PBBS spanning forest on ParST + LVars ----------===//

#include "src/pbbs/SpanningForest.h"

#include "src/data/ISet.h"
#include "src/data/MinMap.h"
#include "src/trans/ParST.h"

#include <algorithm>

using namespace lvish;
using namespace lvish::pbbs;

namespace {

/// Path-compressing find over a plain parent array (sequential phases
/// only; the parallel passes read a fully flattened copy).
uint32_t findRoot(std::vector<uint32_t> &Parent, uint32_t V) {
  uint32_t Root = V;
  while (Parent[Root] != Root)
    Root = Parent[Root];
  while (Parent[V] != Root) {
    uint32_t Next = Parent[V];
    Parent[V] = Root;
    V = Next;
  }
  return Root;
}

} // namespace

std::vector<uint64_t> pbbs::spanningForestSeq(const EdgeList &EL) {
  std::vector<uint32_t> Parent(EL.NumVertices);
  for (uint32_t V = 0; V < EL.NumVertices; ++V)
    Parent[V] = V;
  std::vector<uint64_t> Accepted;
  for (size_t I = 0; I < EL.Edges.size(); ++I) {
    uint32_t RU = findRoot(Parent, EL.Edges[I].first);
    uint32_t RV = findRoot(Parent, EL.Edges[I].second);
    if (RU == RV)
      continue;
    Parent[RU < RV ? RV : RU] = RU < RV ? RU : RV;
    Accepted.push_back(I);
  }
  return Accepted;
}

namespace {

/// A live edge: endpoints relabeled to component roots as rounds proceed,
/// plus the original index (the edge's identity and weight).
struct EdgeRec {
  uint32_t U, V;
  uint32_t Idx;
};

/// ST (the disjoint slice mutation), put (the MinVec proposals and the
/// forest inserts), get (fork-join), freeze (reading each round's
/// proposals and the final forest).
constexpr EffectSet ForestEff{true, true, false, true, false, true};
constexpr size_t EdgeGrain = 512;

/// One Boruvka pass over the owned slice: relabel both endpoints to their
/// current roots IN PLACE (the destructive update ParST licenses), and
/// propose still-external edges into both components' min cells. Splits
/// recursively via forkSTSplit until the slice fits the grain.
Par<void> relabelAndPropose(ParCtx<ForestEff> C, VecView<EdgeRec> View,
                            const uint32_t *Roots, MinVec *MV,
                            size_t Grain) {
  if (View.size() <= Grain) {
    EdgeRec *E = View.raw();
    size_t N = View.size();
    C.noteBytes(2 * N * sizeof(EdgeRec));
    for (size_t I = 0; I < N; ++I) {
      uint32_t CU = Roots[E[I].U];
      uint32_t CV = Roots[E[I].V];
      E[I].U = CU;
      E[I].V = CV;
      if (CU != CV) {
        putMinAt(C, *MV, CU, E[I].Idx);
        putMinAt(C, *MV, CV, E[I].Idx);
      }
    }
    co_return;
  }
  size_t Mid = View.size() / 2;
  auto Child = [Roots, MV, Grain](ParCtx<ForestEff> C2,
                                  VecView<EdgeRec> Sub) -> Par<void> {
    co_await relabelAndPropose(C2, Sub, Roots, MV, Grain);
  };
  co_await forkSTSplit(C, View, Mid, Child, Child);
}

} // namespace

std::vector<uint64_t> pbbs::spanningForestLVar(const EdgeList &EL,
                                               const RunOptions &Opts) {
  const EdgeList *ELP = &EL;
  uint32_t N = EL.NumVertices;
  return runParIO<ForestEff>(
      [ELP, N](ParCtx<ForestEff> Ctx) -> Par<std::vector<uint64_t>> {
        auto Forest = newISet<uint64_t>(Ctx);
        std::vector<uint32_t> Parent(N);
        for (uint32_t V = 0; V < N; ++V)
          Parent[V] = V;
        std::vector<EdgeRec> Live;
        Live.reserve(ELP->Edges.size());
        for (size_t I = 0; I < ELP->Edges.size(); ++I)
          Live.push_back({ELP->Edges[I].first, ELP->Edges[I].second,
                          static_cast<uint32_t>(I)});
        while (!Live.empty()) {
          auto MinEdge = newMinVec(Ctx, N);
          // -- Parallel phase: disjoint ParST slices over the live
          // edges. The caller-owned array becomes the round's root view
          // (the in-place grant of Kernels.cpp's mergeSortParST; the
          // session's effect level already holds ST, so no forging).
          {
            auto Gen = detail::newGenCell();
            VecView<EdgeRec> Root(Live.data(), Live.size(), Gen, 0);
            auto &DC = check::DisjointnessChecker::instance();
            DC.registerExtent(Live.data(), Live.data() + Live.size(),
                              Gen.get(), 0, "pbbs forest round");
            co_await relabelAndPropose(Ctx, Root, Parent.data(),
                                       MinEdge.get(),
                                       pickGrain(EdgeGrain, Live.size()));
            DC.releaseExtent(Live.data(), Gen.get());
            Gen->fetch_add(1, std::memory_order_acq_rel); // Poison views.
          }
          // -- Sequential phase. The fork-join barrier quiesced every
          // proposer, so the freeze reads the exact per-component minima.
          std::vector<uint64_t> Mins = freezeMinVec(Ctx, *MinEdge);
          bool Any = false;
          for (uint32_t Comp = 0; Comp < N; ++Comp) {
            uint64_t Idx = Mins[Comp];
            if (Idx == MinVec::Bottom)
              continue;
            uint32_t RU = findRoot(
                Parent, ELP->Edges[static_cast<size_t>(Idx)].first);
            uint32_t RV = findRoot(
                Parent, ELP->Edges[static_cast<size_t>(Idx)].second);
            if (RU == RV)
              continue; // The other endpoint's component took it already.
            Parent[RU < RV ? RV : RU] = RU < RV ? RU : RV;
            insert(Ctx, *Forest, Idx);
            Any = true;
          }
          if (!Any)
            break; // All live edges internal (unreachable post-compact).
          // Flatten so the next parallel pass can relabel with one read.
          for (uint32_t V = 0; V < N; ++V)
            Parent[V] = findRoot(Parent, V);
          // Compact: drop edges now internal to a component. Endpoints
          // were relabeled to pre-union roots in the parallel pass, so
          // one flattened lookup decides.
          Live.erase(std::remove_if(Live.begin(), Live.end(),
                                    [&Parent](const EdgeRec &E) {
                                      return Parent[E.U] == Parent[E.V];
                                    }),
                     Live.end());
        }
        co_return freezeSet(Ctx, *Forest);
      },
      Opts);
}
