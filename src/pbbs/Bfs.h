//===- Bfs.h - PBBS breadth-first search on LVars ---------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PBBS breadth-first search, the motivating example of the paper's
/// Section 1/2, ported two ways (DESIGN.md Section 17):
///
///  * \c bfsLevels - level-synchronous frontier rounds. Each round the
///    unvisited neighbors of the frontier pour into a fresh ISet (racing
///    inserts dedup by join); the parallelFor barrier quiesces the round,
///    so freezing the set is deterministic, and its *sorted* contents
///    become the next frontier. Produces per-vertex hop distances.
///
///  * \c bfsReach - the paper's one-LVar fixpoint: an \c addHandlerRef
///    handler re-inserts each newly seen vertex's neighbors into the same
///    set, and \c quiesce waits for the transitive closure. Produces the
///    reachable set (no levels - the fixpoint has no rounds).
///
/// Both are cross-checked against \c bfsSeq / \c bfsReachSeq in
/// tests/PbbsGoldenTest.cpp over the shared generators (Input.h).
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_PBBS_BFS_H
#define LVISH_PBBS_BFS_H

#include "src/core/RunPar.h"
#include "src/pbbs/Input.h"

#include <cstdint>
#include <vector>

namespace lvish {
namespace pbbs {

/// Level of a vertex the search never reached.
inline constexpr uint32_t UnreachedLevel = ~0u;

/// Sequential reference: queue BFS hop distances from \p Source.
std::vector<uint32_t> bfsSeq(const Graph &G, uint32_t Source);

/// LVar level-synchronous BFS; equals \c bfsSeq on every schedule.
std::vector<uint32_t> bfsLevels(const Graph &G, uint32_t Source,
                                const RunOptions &Opts = RunOptions());

/// Sequential reference: sorted vertices reachable from \p Source.
std::vector<uint32_t> bfsReachSeq(const Graph &G, uint32_t Source);

/// LVar handler-fixpoint reachability; equals \c bfsReachSeq on every
/// schedule.
std::vector<uint32_t> bfsReach(const Graph &G, uint32_t Source,
                               const RunOptions &Opts = RunOptions());

} // namespace pbbs
} // namespace lvish

#endif // LVISH_PBBS_BFS_H
