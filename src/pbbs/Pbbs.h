//===- Pbbs.h - PBBS problem suite umbrella ---------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One include for the PBBS-on-LVars suite (DESIGN.md Section 17): shared
/// seeded input generators plus the four ported problems, each a
/// (sequential reference, LVar-parallel) pair golden-tested against each
/// other.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_PBBS_PBBS_H
#define LVISH_PBBS_PBBS_H

#include "src/pbbs/Bfs.h"
#include "src/pbbs/ConnectedComponents.h"
#include "src/pbbs/Histogram.h"
#include "src/pbbs/Input.h"
#include "src/pbbs/SpanningForest.h"

#endif // LVISH_PBBS_PBBS_H
