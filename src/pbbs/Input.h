//===- Input.h - Seeded deterministic PBBS input generators -----*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared input side of the PBBS port (DESIGN.md Section 17): seeded,
/// machine-independent generators for the graph and key-stream workloads,
/// used verbatim by both the golden tests (tests/PbbsGoldenTest.cpp) and
/// the benches (bench/bench_pbbs_*.cpp) so a committed baseline and a
/// failing test always talk about the same input. All randomness is
/// SplitMix64 (support/SplitMix.h): a generator's output is a pure
/// function of (parameters, seed).
///
/// Two graph distributions, matching the PBBS inputs the paper's suite
/// draws on: uniform random (Erdos-Renyi-ish) and a power-law / RMAT-style
/// recursive-quadrant sampler whose skewed degrees stress the handler
/// fixpoints far harder than the uniform case.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_PBBS_INPUT_H
#define LVISH_PBBS_INPUT_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lvish {
namespace pbbs {

/// An undirected (multi)graph in CSR form; edges appear in both
/// directions. Parallel edges are kept (the LVar algorithms are join-based
/// and idempotent, so duplicates only cost work, never correctness).
struct Graph {
  uint32_t NumVertices = 0;
  std::vector<uint32_t> Offsets; ///< size NumVertices + 1
  std::vector<uint32_t> Adjacency;

  uint32_t degree(uint32_t V) const { return Offsets[V + 1] - Offsets[V]; }
  const uint32_t *neighborsBegin(uint32_t V) const {
    return Adjacency.data() + Offsets[V];
  }
  const uint32_t *neighborsEnd(uint32_t V) const {
    return Adjacency.data() + Offsets[V + 1];
  }
  size_t numDirectedEdges() const { return Adjacency.size(); }
};

/// An undirected edge list (each edge once, U < V); the spanning-forest
/// input shape. The *position* of an edge is its identity: index-as-weight
/// makes the minimum spanning forest unique, which is what lets a
/// parallel Boruvka and a sequential Kruskal-by-index agree exactly.
struct EdgeList {
  uint32_t NumVertices = 0;
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
};

/// Uniform random multigraph: ~N*AvgDegree/2 endpoint pairs drawn
/// uniformly (self-loops discarded), symmetrized into CSR.
Graph makeUniformGraph(uint32_t N, uint32_t AvgDegree, uint64_t Seed);

/// Power-law-ish RMAT graph: endpoints drawn by recursive quadrant
/// descent with probabilities (0.57, 0.19, 0.19, 0.05), giving the
/// heavy-tailed degree distribution of the PBBS rMat inputs.
Graph makePowerLawGraph(uint32_t N, uint32_t AvgDegree, uint64_t Seed);

/// Flattens a CSR graph into an undirected edge list (U < V, one entry
/// per undirected edge occurrence, CSR order - deterministic).
EdgeList toEdgeList(const Graph &G);

/// Skewed key stream over [0, Universe): a cubed-uniform transform
/// concentrates mass near 0 (Zipf-flavored), the removeDuplicates /
/// histogram stress shape - a few keys extremely hot, a long cold tail.
std::vector<uint64_t> makeSkewedKeys(size_t N, uint64_t Universe,
                                     uint64_t Seed);

/// Uniform key stream over [0, Universe); the low-contention contrast.
std::vector<uint64_t> makeUniformKeys(size_t N, uint64_t Universe,
                                      uint64_t Seed);

/// Chunk grain that still forks on small inputs: \p Default capped at
/// N/8, floored at 1. Bench-sized inputs keep the tuned grain; the tiny
/// graphs of the golden and explored tests still split into ~8 chunks,
/// so worker sweeps and virtual schedules exercise real parallel
/// structure instead of degenerating to one sequential task.
inline size_t pickGrain(size_t Default, size_t N) {
  size_t Adaptive = N / 8;
  if (Adaptive < 1)
    Adaptive = 1;
  return Default < Adaptive ? Default : Adaptive;
}

} // namespace pbbs
} // namespace lvish

#endif // LVISH_PBBS_INPUT_H
