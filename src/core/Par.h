//===- Par.h - The Par computation type and fork ----------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c Par<T> is the C++ rendition of the paper's `Par e s a` monad: a lazy
/// coroutine whose \c co_await is monadic bind. Effect tracking lives on
/// the capability token \c ParCtx<E> (see Effects.h); the session parameter
/// `s` becomes a runtime session id carried by the task.
///
/// The minimal Par-monad interface of Section 4 is `fork :: m () -> m ()`;
/// here \c fork takes a callable from a child context to \c Par<void>, so
/// the child body runs with *its own* task context (transformer layers
/// split, pedigree extended, cancellation inherited) rather than the
/// parent's. "Programs with fork create a binary tree of monadic actions."
///
/// Usage sketch:
/// \code
///   Par<int> work(ParCtx<Eff::Det> Ctx, std::shared_ptr<IVar<int>> IV) {
///     fork(Ctx, [IV](ParCtx<Eff::Det> C) -> Par<void> {
///       put(C, *IV, 42);
///       co_return;
///     });
///     int V = co_await get(Ctx, *IV);
///     co_return V + 1;
///   }
///   int R = runPar<Eff::Det>([&](ParCtx<Eff::Det> Ctx) {
///     return work(Ctx, IV);
///   });
/// \endcode
///
/// \warning GCC 12 coroutine bug (toolchain workaround). g++ 12 destroys a
/// non-trivially-destructible *temporary* argument of an awaited
/// Par-returning call twice when the callee suspends (standalone
/// reproducer: tools/gcc12_coawait_temp_bug.cpp; fixed in later GCC).
/// Discipline used throughout this repository and required of callers on
/// GCC 12:
///
///   // BAD:  capturing-lambda temporary inside the co_await expression
///   co_await parallelForPar(Ctx, 0, N, 1,
///                           [Shared](ParCtx<E> C, size_t I) -> Par<void>
///                           { ... });
///   // GOOD: bind it first, then await
///   auto Body = [Shared](ParCtx<E> C, size_t I) -> Par<void> { ... };
///   co_await parallelForPar(Ctx, 0, N, 1, Body);
///
/// Only prvalue temporaries with non-trivial destructors are affected
/// (capturing lambdas, std::function, containers, shared_ptr). Named
/// lvalues - even passed by value - and stateless lambdas are safe, and
/// plain awaiter-returning operations (get, waitSize, quiesce, ...) are
/// safe with any argument shape.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_PAR_H
#define LVISH_CORE_PAR_H

#include "src/check/EffectAuditor.h"
#include "src/core/Effects.h"
#include "src/fault/FaultInject.h"
#include "src/sched/FaultSignal.h"
#include "src/sched/Scheduler.h"
#include "src/support/Assert.h"

#include <coroutine>
#include <cstdio>
#include <optional>
#include <type_traits>
#include <utility>

#ifdef LVISH_TRACE_DEBUG
#define LVISH_TRACE(...) std::fprintf(stderr, __VA_ARGS__)
#else
#define LVISH_TRACE(...) (void)0
#endif

namespace lvish {

template <typename T> class Par;
template <EffectSet E> class ParCtx;

namespace detail {

/// Internal factory for contexts; keeps ParCtx unforgeable by user code
/// (only runPar and the fork machinery mint them).
struct CtxAccess {
  template <EffectSet E> static ParCtx<E> make(Task *T) {
    return ParCtx<E>(T);
  }
};

/// Shared final-awaiter: transfer to the awaiting parent coroutine, or
/// retire the task when this coroutine is a task root.
template <typename Promise> struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  std::coroutine_handle<>
  await_suspend(std::coroutine_handle<Promise> H) noexcept {
    Promise &P = H.promise();
    LVISH_TRACE("final %p cont=%p task=%p\n", H.address(),
                P.Continuation.address(), (void *)P.OwnerTask);
    Task *Cur = Scheduler::currentTask();
    if (Cur && Cur->FaultPoisoned) {
      // A FaultSignal unwound this coroutine (see FaultSignal.h): the
      // session fault is recorded and the session is being cancelled, so
      // retire the whole task here instead of resuming the continuation.
      // onTaskFinished destroys the task's root frame, which transitively
      // destroys H's frame; nothing below may touch either.
      Cur->Sched->onTaskFinished(Cur);
      return std::noop_coroutine();
    }
    if (P.Continuation)
      return P.Continuation;
    Task *T = P.OwnerTask;
    assert(T && "finished coroutine with no continuation and no task");
    // onTaskFinished destroys H's frame; nothing below may touch it.
    T->Sched->onTaskFinished(T);
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

/// Promise bits shared between Par<T> and Par<void>.
struct PromiseBase {
  std::coroutine_handle<> Continuation; ///< Awaiting coroutine (same task).
  Task *OwnerTask = nullptr;            ///< Set when installed as task root.

  std::suspend_always initial_suspend() const noexcept { return {}; }

  void unhandled_exception() {
    try {
      throw; // lvish-lint: allow(no-throw) - rethrow to classify.
    } catch (const FaultSignal &) {
      // A contract violation already recorded the session fault (see
      // FaultSignal.h); mark the task so the final awaiter retires it.
      Task *T = Scheduler::currentTask();
      assert(T && "FaultSignal outside a scheduled task");
      if (T)
        T->FaultPoisoned = true;
    } catch (...) {
      // User exceptions have no deterministic containment story; the
      // legacy abort stands. lvish-lint: allow(fatal)
      fatalError("exception escaped a Par computation (lvish-cpp library "
                 "code never throws; check user code)");
    }
  }
};

} // namespace detail

/// A lazy parallel computation returning \p T; see file comment. Move-only;
/// consumed by `co_await` or by \c fork / \c runPar.
template <typename T> class Par {
public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> Value;

    Par get_return_object() {
      return Par(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::FinalAwaiter<promise_type> final_suspend() const noexcept {
      return {};
    }
    void return_value(T V) { Value.emplace(std::move(V)); }
  };

  Par() = default;
  explicit Par(std::coroutine_handle<promise_type> H) : Handle(H) {}

  Par(Par &&O) noexcept : Handle(std::exchange(O.Handle, nullptr)) {}
  Par &operator=(Par &&O) noexcept {
    if (this != &O) {
      destroy();
      Handle = std::exchange(O.Handle, nullptr);
    }
    return *this;
  }
  Par(const Par &) = delete;
  Par &operator=(const Par &) = delete;
  ~Par() { destroy(); }

  bool valid() const { return Handle != nullptr; }

  // -- Awaitable interface: sequential bind within the same task ----------
  bool await_ready() const noexcept { return false; }

  std::coroutine_handle<>
  await_suspend(std::coroutine_handle<> Awaiting) noexcept {
    assert(Handle && "co_await on an empty Par");
    LVISH_TRACE("awaitT %p -> child %p\n", Awaiting.address(),
                Handle.address());
    Handle.promise().Continuation = Awaiting;
    return Handle; // Symmetric transfer: start the child immediately.
  }

  T await_resume() {
    assert(Handle.promise().Value && "Par finished without a value");
    return std::move(*Handle.promise().Value);
  }

  /// Releases ownership of the coroutine (fork/runPar internals only).
  std::coroutine_handle<promise_type> release() {
    return std::exchange(Handle, nullptr);
  }
  std::coroutine_handle<promise_type> handle() const { return Handle; }

private:
  void destroy() {
    if (Handle) {
      Handle.destroy();
      Handle = nullptr;
    }
  }
  std::coroutine_handle<promise_type> Handle;
};

/// Par<void>: forked bodies and effect-only computations.
template <> class Par<void> {
public:
  struct promise_type : detail::PromiseBase {
    Par get_return_object() {
      return Par(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::FinalAwaiter<promise_type> final_suspend() const noexcept {
      return {};
    }
    void return_void() const noexcept {}
  };

  Par() = default;
  explicit Par(std::coroutine_handle<promise_type> H) : Handle(H) {}

  Par(Par &&O) noexcept : Handle(std::exchange(O.Handle, nullptr)) {}
  Par &operator=(Par &&O) noexcept {
    if (this != &O) {
      destroy();
      Handle = std::exchange(O.Handle, nullptr);
    }
    return *this;
  }
  Par(const Par &) = delete;
  Par &operator=(const Par &) = delete;
  ~Par() { destroy(); }

  bool valid() const { return Handle != nullptr; }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<>
  await_suspend(std::coroutine_handle<> Awaiting) noexcept {
    assert(Handle && "co_await on an empty Par");
    LVISH_TRACE("awaitV %p -> child %p\n", Awaiting.address(),
                Handle.address());
    Handle.promise().Continuation = Awaiting;
    return Handle;
  }
  void await_resume() const noexcept {}

  std::coroutine_handle<promise_type> release() {
    return std::exchange(Handle, nullptr);
  }
  std::coroutine_handle<promise_type> handle() const { return Handle; }

private:
  void destroy() {
    if (Handle) {
      Handle.destroy();
      Handle = nullptr;
    }
  }
  std::coroutine_handle<promise_type> Handle;
};

/// The capability token: a Par computation's effect level \p E plus its
/// identity (task, scheduler, session). Obtained from \c runPar or inside
/// a \c fork body; implicitly convertible to any weaker effect level
/// (explicit subtype coercion in the paper's terms).
template <EffectSet E> class ParCtx {
public:
  Task *task() const { return Tsk; }
  Scheduler *sched() const { return Tsk->Sched; }
  uint64_t sessionId() const { return Tsk->SessionId; }

  static constexpr EffectSet Effects = E;

  /// Subsumption: a context may be used wherever a context demanding fewer
  /// effects is expected.
  template <EffectSet E2>
    requires(E.subsumes(E2))
  operator ParCtx<E2>() const {
    return detail::CtxAccess::make<E2>(Tsk);
  }

  /// Announces memory traffic for the bandwidth model of the parallelism
  /// simulator (no-op unless tracing is enabled).
  void noteBytes(uint64_t N) const {
    if (Tsk->Sched->trace())
      Tsk->SliceBytes += N;
  }

private:
  friend struct detail::CtxAccess;
  explicit ParCtx(Task *T) : Tsk(T) { assert(T && "null task in ParCtx"); }
  Task *Tsk;
};

namespace detail {

/// Trampoline that materializes the child's own context once the child
/// task actually runs (Scheduler::currentTask() is then the child).
template <EffectSet E, typename F> Par<void> forkBody(F Body) {
  ParCtx<E> Ctx = CtxAccess::make<E>(Scheduler::currentTask());
  co_await Body(Ctx);
}

/// Installs \p P as the root coroutine of a new task under \p Parent
/// (without scheduling it). Shared by fork, runPar, and the
/// cancellation/deadlock transformers.
inline Task *installTaskRoot(Scheduler &Sched, Par<void> P, Task *Parent) {
  auto H = P.release();
  assert(H && "installing an empty Par as a task");
  Task *T = Sched.createTask(H, Parent);
  H.promise().OwnerTask = T;
  return T;
}

/// Installs and immediately schedules a new task under \p Parent.
inline Task *spawnTaskRoot(Scheduler &Sched, Par<void> P, Task *Parent) {
  Task *T = installTaskRoot(Sched, std::move(P), Parent);
  Sched.schedule(T);
  return T;
}

} // namespace detail

/// Forks \p Body to run in parallel as a new task. \p Body is invoked with
/// the child's own context (same effect level as the parent's) and must
/// return \c Par<void>. This is the `fork` of the paper's \c ParMonad type
/// class.
template <EffectSet E, typename F> void fork(ParCtx<E> Ctx, F Body) {
  static_assert(std::is_invocable_r_v<Par<void>, F, ParCtx<E>>,
                "fork body must be callable as Par<void>(ParCtx<E>)");
  // LVISH_FAULTS allocation-failure shim (no-op otherwise).
  fault::injectSpawn(Ctx.task());
  Par<void> P = detail::forkBody<E>(std::move(Body));
  Task *T = detail::installTaskRoot(*Ctx.sched(), std::move(P), Ctx.task());
  check::declareTaskEffects(T, check::effectMask(E));
  Ctx.sched()->schedule(T);
}

/// Cooperative yield: reschedules the current task, letting siblings run.
/// Also a cancellation poll point.
struct YieldAwaiter {
  Task *T;

  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> H) const {
    if (T->isCancelled()) {
      T->Sched->deferRetire(T);
      return true;
    }
    T->Resume = H;
    Scheduler *S = T->Sched;
    Task *Self = T;
    // The task stays runnable; requeue without pending-count churn.
    S->wakeKeepPending(Self);
    return true;
  }
  void await_resume() const noexcept {}
};

template <EffectSet E> YieldAwaiter yield(ParCtx<E> Ctx) {
  return YieldAwaiter{Ctx.task()};
}

} // namespace lvish

#endif // LVISH_CORE_PAR_H
