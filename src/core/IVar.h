//===- IVar.h - Single-assignment variables ---------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IVars: single-assignment variables with blocking read semantics (Arvind
/// et al.'s I-structures), "a special case of LVars, corresponding to a
/// lattice with one empty and multiple full states, where
/// forall i. empty < full_i". A second put with a *different* value hits
/// top and is a deterministic error; re-putting an equal value is the
/// idempotent lub and is allowed.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_IVAR_H
#define LVISH_CORE_IVAR_H

#include "src/core/LVarBase.h"
#include "src/core/Par.h"

#include <memory>
#include <optional>

namespace lvish {

/// Single-assignment LVar; see file comment. Construct via \c newIVar.
template <typename T> class IVar : public LVarBase {
public:
  explicit IVar(uint64_t SessionId) : LVarBase(SessionId) {}

  /// Lub write: empty -> full(V). Full(V) -> full(V) is a no-op; a
  /// conflicting value is a deterministic error (lattice top).
  void putValue(const T &V, Task *Writer) {
    checkSession(Writer);
    check::auditEffect(Writer, check::FxPut, "IVar put");
    fault::injectPoint(fault::Point::Put, Writer);
    obs::count(obs::Event::Puts);
    {
      std::lock_guard<std::mutex> Lock(WaitMutex);
      if (Full) {
        if constexpr (std::equality_comparable<T>) {
          if (*Slot == V) {
            obs::count(obs::Event::NoOpJoins);
            obs::count(obs::Event::NotifySkips);
            return; // Idempotent repeat of the same write.
          }
        }
        detail::raiseSessionFault(Writer, FaultCode::ConflictingPut,
                                  "multiple put to an IVar with conflicting "
                                  "values (lattice top reached)",
                                  debugName());
      }
      if (isFrozen())
        putAfterFreezeError(Writer, this);
      Slot.emplace(V);
      Full = true;
    }
    // State and every parked waiter live under WaitMutex (Bucket0.Mu), so
    // the mutex alone orders this notify's probe - no fence needed.
    notifyWaiters(Writer, NotifyOrder::MutexGuarded);
  }

  /// Non-blocking peek used by freezing reads and tests. Only deterministic
  /// after a freeze or at session quiescence.
  std::optional<T> peek() const {
    std::lock_guard<std::mutex> Lock(WaitMutex);
    return Full ? Slot : std::nullopt;
  }

  /// Blocking threshold read: unblocks once full.
  class GetAwaiter {
  public:
    GetAwaiter(IVar &V, Task *Reader) : Var(V), Tsk(Reader) {}

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      return Var.parkGet(Tsk, H, this);
    }
    T await_resume() { return std::move(*Out); }

    /// Called under WaitMutex by parkGet/notifyWaiters.
    bool tryCapture() {
      if (!Var.Full)
        return false;
      Out = Var.Slot; // Copy: many readers may capture the same value.
      return true;
    }

  private:
    IVar &Var;
    Task *Tsk;
    std::optional<T> Out;
  };

private:
  friend class GetAwaiter;
  // State guarded by WaitMutex (an IVar transitions at most once, so the
  // mutex is uncontended in steady state).
  bool Full = false;
  std::optional<T> Slot;
};

/// Allocates an IVar tied to the current session. LVars are heap-allocated
/// and shared so their lifetime covers every task that may park on them
/// (the GC would do this in Haskell).
template <typename T, EffectSet E>
std::shared_ptr<IVar<T>> newIVar(ParCtx<E> Ctx) {
  return std::make_shared<IVar<T>>(Ctx.sessionId());
}

/// Named variant: the name shows up as "lvar=<Name>" in fault diagnostics.
template <typename T, EffectSet E>
std::shared_ptr<IVar<T>> newIVar(ParCtx<E> Ctx, const char *Name) {
  auto IV = std::make_shared<IVar<T>>(Ctx.sessionId());
  IV->setDebugName(Name);
  return IV;
}

/// `put :: HasPut e => IVar s a -> a -> Par e s ()`
template <EffectSet E, typename T>
  requires(hasPut(E))
void put(ParCtx<E> Ctx, IVar<T> &IV, const T &Value) {
  IV.putValue(Value, Ctx.task());
}

/// `get :: HasGet e => IVar s a -> Par e s a` - awaitable.
template <EffectSet E, typename T>
  requires(hasGet(E))
typename IVar<T>::GetAwaiter get(ParCtx<E> Ctx, IVar<T> &IV) {
  return typename IVar<T>::GetAwaiter(IV, Ctx.task());
}

/// Freezes an IVar mid-computation (quasi-deterministic; requires the
/// Freeze effect) and returns its exact current contents.
template <EffectSet E, typename T>
  requires(hasFreeze(E))
std::optional<T> freezeIVar(ParCtx<E> Ctx, IVar<T> &IV) {
  IV.checkSession(Ctx.task());
  check::auditEffect(Ctx.task(), check::FxFreeze, "IVar freeze");
  IV.markFrozen();
  return IV.peek();
}

/// Forks \p Body and returns an IVar future carrying its result: the
/// \c spawn of the ParFuture interface, built from fork + IVar exactly as
/// in monad-par.
template <EffectSet E, typename F>
auto spawn(ParCtx<E> Ctx, F Body) {
  using RetPar = std::invoke_result_t<F, ParCtx<E>>;
  using R = decltype(std::declval<RetPar>().await_resume());
  static_assert(hasPut(E) && hasGet(E),
                "spawn needs Put (to fill the future) and Get (to read it)");
  auto Future = newIVar<R>(Ctx);
  fork(Ctx, [Future, B = std::move(Body)](ParCtx<E> C) mutable -> Par<void> {
    R Value = co_await B(C);
    put(C, *Future, Value);
  });
  return Future;
}

} // namespace lvish

#endif // LVISH_CORE_IVAR_H
