//===- ParFor.h - Parallel loops over index ranges --------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Divide-and-conquer parallel loops built from fork + IVar joins: the
/// bread-and-butter idiom of the traditional-kernel benchmark suite
/// (Section 7.2 / Figure 4). The recursive binary split bottoms out at a
/// grain size, below which iterations run sequentially.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_PARFOR_H
#define LVISH_CORE_PARFOR_H

#include "src/core/IVar.h"
#include "src/core/Par.h"

#include <cstddef>

namespace lvish {

/// Parallel for over [Begin, End): calls \p Fn(I) for every index. The
/// body is a plain callable (no blocking); iterations must be independent.
template <EffectSet E, typename F>
  requires(hasPut(E) && hasGet(E) && std::is_invocable_v<F, size_t>)
Par<void> parallelFor(ParCtx<E> Ctx, size_t Begin, size_t End, size_t Grain,
                      F Fn) {
  assert(Grain > 0 && "grain must be positive");
  if (End - Begin <= Grain) {
    for (size_t I = Begin; I < End; ++I)
      Fn(I);
    co_return;
  }
  size_t Mid = Begin + (End - Begin) / 2;
  auto Done = newIVar<bool>(Ctx);
  fork(Ctx, [Done, Begin, Mid, Grain, Fn](ParCtx<E> C) -> Par<void> {
    co_await parallelFor(C, Begin, Mid, Grain, Fn);
    put(C, *Done, true);
  });
  co_await parallelFor(Ctx, Mid, End, Grain, Fn);
  co_await get(Ctx, *Done);
}

/// Parallel for whose body is itself a Par computation (may block, fork,
/// and perform LVar effects).
template <EffectSet E, typename F>
  requires(hasPut(E) && hasGet(E) &&
           std::is_invocable_r_v<Par<void>, F, ParCtx<E>, size_t>)
Par<void> parallelForPar(ParCtx<E> Ctx, size_t Begin, size_t End,
                         size_t Grain, F Fn) {
  assert(Grain > 0 && "grain must be positive");
  if (End - Begin <= Grain) {
    for (size_t I = Begin; I < End; ++I)
      co_await Fn(Ctx, I);
    co_return;
  }
  size_t Mid = Begin + (End - Begin) / 2;
  auto Done = newIVar<bool>(Ctx);
  fork(Ctx, [Done, Begin, Mid, Grain, Fn](ParCtx<E> C) -> Par<void> {
    co_await parallelForPar(C, Begin, Mid, Grain, Fn);
    put(C, *Done, true);
  });
  co_await parallelForPar(Ctx, Mid, End, Grain, Fn);
  co_await get(Ctx, *Done);
}

/// Parallel reduction over [Begin, End): \p Leaf maps an index to a value,
/// \p Combine folds two values (must be associative for determinism; the
/// reduction tree shape is fixed by the range, so commutativity is NOT
/// required).
template <typename T, EffectSet E, typename LeafF, typename CombineF>
  requires(hasPut(E) && hasGet(E))
Par<T> parallelReduce(ParCtx<E> Ctx, size_t Begin, size_t End, size_t Grain,
                      LeafF Leaf, CombineF Combine, T Identity) {
  assert(Grain > 0 && "grain must be positive");
  if (End - Begin <= Grain) {
    T Acc = Identity;
    for (size_t I = Begin; I < End; ++I)
      Acc = Combine(Acc, Leaf(I));
    co_return Acc;
  }
  size_t Mid = Begin + (End - Begin) / 2;
  auto Left = newIVar<T>(Ctx);
  fork(Ctx,
       [Left, Begin, Mid, Grain, Leaf, Combine, Identity](ParCtx<E> C)
           -> Par<void> {
         T V = co_await parallelReduce<T>(C, Begin, Mid, Grain, Leaf, Combine,
                                          Identity);
         put(C, *Left, V);
       });
  T Right = co_await parallelReduce<T>(Ctx, Mid, End, Grain, Leaf, Combine,
                                       Identity);
  T LeftV = co_await get(Ctx, *Left);
  co_return Combine(LeftV, Right);
}

} // namespace lvish

#endif // LVISH_CORE_PARFOR_H
