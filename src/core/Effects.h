//===- Effects.h - Static effect tracking for Par ---------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's fine-grained effect tracking (Section 3): a Par computation
/// is indexed by "a type-level encoding of booleans indicating whether or
/// not writes, reads, non-idempotent (bump), or non-deterministic (IO)
/// operations are allowed to run inside it". Haskell encodes this with a
/// phantom type parameter and constraints like `HasPut e`. Here the same
/// switches live in an \c EffectSet non-type template parameter on the
/// capability token \c ParCtx<E>; every effectful operation requires the
/// corresponding bit via a `requires` clause, so a read-only computation
/// that tries to \c put fails to compile, exactly as in LVish 2.x.
///
/// The \c ST bit corresponds to the paper's Section 5 rule that "a given
/// Par monad can either have the ST feature, or not": \c ParST state can
/// only be introduced once, which \c runParST enforces by setting the bit
/// at the boundary.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_EFFECTS_H
#define LVISH_CORE_EFFECTS_H

namespace lvish {

/// A set of effect switches; a structural literal type so it can be used as
/// a non-type template parameter.
struct EffectSet {
  bool Put = false;    ///< Least-upper-bound LVar writes.
  bool Get = false;    ///< Blocking threshold reads.
  bool Bump = false;   ///< Non-idempotent inflationary updates.
  bool Freeze = false; ///< Exact (quasi-deterministic) reads.
  bool IO = false;     ///< Arbitrary nondeterminism (cancel of effectful
                       ///< children, timing observations, ...).
  bool ST = false;     ///< Disjoint destructive state (ParST).

  /// True iff a context with this effect set may be used where \p O is
  /// required (every switch \p O demands is present here).
  constexpr bool subsumes(EffectSet O) const {
    return (!O.Put || Put) && (!O.Get || Get) && (!O.Bump || Bump) &&
           (!O.Freeze || Freeze) && (!O.IO || IO) && (!O.ST || ST);
  }

  friend constexpr bool operator==(EffectSet A, EffectSet B) {
    return A.Put == B.Put && A.Get == B.Get && A.Bump == B.Bump &&
           A.Freeze == B.Freeze && A.IO == B.IO && A.ST == B.ST;
  }

  /// Union of two effect sets.
  friend constexpr EffectSet operator|(EffectSet A, EffectSet B) {
    return EffectSet{A.Put || B.Put,       A.Get || B.Get,
                     A.Bump || B.Bump,     A.Freeze || B.Freeze,
                     A.IO || B.IO,         A.ST || B.ST};
  }
};

/// Common effect levels, named after the paper's idioms.
namespace Eff {
/// Pure deterministic Par: puts and gets only. `runPar` accepts this.
inline constexpr EffectSet Det{true, true, false, false, false, false};
/// Deterministic plus non-idempotent bumps (Section 3).
inline constexpr EffectSet DetBump{true, true, true, false, false, false};
/// Read-only: what forkCancelable requires of its child (Section 6.1).
inline constexpr EffectSet ReadOnly{false, true, false, false, false, false};
/// Write-only ("blind"): what DeadlockT requires of its children.
inline constexpr EffectSet WriteOnly{true, false, false, false, false, false};
/// Quasi-deterministic: freezing during the computation is allowed.
inline constexpr EffectSet QuasiDet{true, true, false, true, false, false};
/// Deterministic plus disjoint destructive state (Section 5).
inline constexpr EffectSet DetST{true, true, false, false, false, true};
/// Everything, including nondeterminism; `runParIO` territory.
inline constexpr EffectSet FullIO{true, true, true, true, true, true};
} // namespace Eff

// Readability helpers for `requires` clauses; e.g.
//   template <EffectSet E> requires (hasPut(E)) void put(ParCtx<E>, ...);
constexpr bool hasPut(EffectSet E) { return E.Put; }
constexpr bool hasGet(EffectSet E) { return E.Get; }
constexpr bool hasBump(EffectSet E) { return E.Bump; }
constexpr bool hasFreeze(EffectSet E) { return E.Freeze; }
constexpr bool hasIO(EffectSet E) { return E.IO; }
constexpr bool hasST(EffectSet E) { return E.ST; }
constexpr bool noFreeze(EffectSet E) { return !E.Freeze; }
constexpr bool noIO(EffectSet E) { return !E.IO; }
constexpr bool readOnly(EffectSet E) {
  return !E.Put && !E.Bump && !E.Freeze && !E.IO && !E.ST;
}

} // namespace lvish

#endif // LVISH_CORE_EFFECTS_H
