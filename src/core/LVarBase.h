//===- LVarBase.h - Common LVar runtime machinery ---------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime substrate shared by every LVar data structure: the sharded
/// waiter table for blocked threshold reads, the freeze bit for
/// quasi-deterministic exact reads, the session id standing in for the
/// paper's `s` parameter, and the asymmetric put/handler-registration gate
/// of footnote 6.
///
/// Waiter sharding (DESIGN.md Section 13): a blocked threshold read parks
/// in the bucket named by its \c WaitSlot -
///  * \c WaitSlot::dflt() - the inline default bucket, whose mutex doubles
///    as the state lock of mutex-guarded structures (IVar, PureLVar) and
///    holds the unclassifiable waiters of Counter/CounterVec;
///  * \c WaitSlot::key(H) - one of \c NumKeyBuckets lazily allocated
///    per-key-hash buckets (IMap/ISet element reads), so a put re-checks
///    only the waiters its own key can satisfy;
///  * \c WaitSlot::size(N) - a lazily allocated min-heap of cardinality
///    watermarks (the waitSize family), skipped entirely while the
///    structure's size is below the smallest parked threshold. A size
///    waiter's tryCapture MUST be exactly "current size >= N" (monotone in
///    N), which is what lets the heap stop at the first unsatisfied
///    threshold.
///
/// Park/wake protocol (no lost wakeups): the parker PUBLISHES its entry
/// (bucket push + count/watermark update), issues a seq_cst fence, and
/// only then re-checks the threshold, withdrawing the entry if it is
/// already satisfied. A put applies its state change, issues a seq_cst
/// fence, and then reads the bucket counts/watermark to decide whether to
/// scan. This is the store-buffering (Dekker) pattern: the put missing the
/// published entry AND the parker missing the state change cannot both
/// happen, so any racing pair resolves to either a scan that wakes the
/// waiter or a re-check that never parks. Both sides run tryCapture under
/// the bucket mutex, so awaiter state is never touched concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_LVARBASE_H
#define LVISH_CORE_LVARBASE_H

#include "src/check/EffectAuditor.h"
#include "src/fault/FaultInject.h"
#include "src/obs/Telemetry.h"
#include "src/sched/FaultSignal.h"
#include "src/sched/Scheduler.h"
#include "src/sched/Task.h"
#include "src/support/AsymmetricGate.h"
#include "src/support/Assert.h"

#include <algorithm>
#include <atomic>
#include <coroutine>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#ifdef LVISH_TRACE_DEBUG
#define LVISH_TRACE2(...) std::fprintf(stderr, __VA_ARGS__)
#else
#define LVISH_TRACE2(...) (void)0
#endif

namespace lvish {

/// How a notify entry point is ordered against the put's state change -
/// what makes the publish-then-recheck protocol's store-buffering argument
/// go through (see the file comment). The cheapest sound option depends on
/// how the data structure guards its state.
enum class NotifyOrder {
  /// State writes carry no usable ordering (lock-free hash tables): issue
  /// a seq_cst fence before probing the bucket counts.
  FenceBefore,
  /// The state write itself was a seq_cst RMW (Counter's fetch_add):
  /// seq_cst probe loads are ordered after it in the SC total order, so
  /// no fence is needed - a seq_cst load is a plain load on x86.
  StateSeqCst,
  /// State is written under Bucket0.Mu and every waiter parks in Bucket0
  /// under the same mutex (IVar, PureLVar): the mutex's happens-before
  /// makes any ordering between probe and state write race-free.
  MutexGuarded,
};

/// Names the waiter bucket a blocking threshold read parks in; see the
/// file comment for the three kinds.
struct WaitSlot {
  enum class Kind : uint8_t { Default, Key, Size };
  Kind K = Kind::Default;
  uint64_t Value = 0;

  /// The default bucket (mutex-guarded state, or unclassifiable waiters).
  static constexpr WaitSlot dflt() { return WaitSlot{}; }
  /// A per-key-hash bucket; \p Hash must be the same value the writing
  /// side passes to notifyDelta for the matching key.
  static constexpr WaitSlot key(uint64_t Hash) {
    return WaitSlot{Kind::Key, Hash};
  }
  /// The size-watermark heap; the awaiter's tryCapture must be exactly
  /// "current size >= Threshold".
  static constexpr WaitSlot size(uint64_t Threshold) {
    return WaitSlot{Kind::Size, Threshold};
  }
};

/// Base class of every LVar; see file comment.
class LVarBase : public ParkSite {
public:
  explicit LVarBase(uint64_t SessionId)
      : WaitMutex(Bucket0.Mu), Session(SessionId) {}

  ~LVarBase() override {
    delete[] KeyBuckets.load(std::memory_order_acquire);
    delete SizeList.load(std::memory_order_acquire);
  }

  LVarBase(const LVarBase &) = delete;
  LVarBase &operator=(const LVarBase &) = delete;

  uint64_t sessionId() const { return Session; }

  /// True after a freeze; further state-changing puts are deterministic
  /// errors.
  bool isFrozen() const { return Frozen.load(std::memory_order_acquire); }

  /// Marks this LVar frozen. Exposed operations wrap this with the
  /// HasFreeze effect requirement; runParThenFreeze calls it after session
  /// quiescence, which is the always-deterministic pattern.
  void markFrozen() { Frozen.store(true, std::memory_order_release); }

  /// Optional debug name carried into fault diagnostics ("lvar=..." in
  /// Fault messages). Set it right after construction, before the LVar is
  /// shared with other tasks; reads at fault time take no lock.
  void setDebugName(std::string Name) { DbgName = std::move(Name); }

  /// The debug name, or null when none was set.
  const char *debugName() const {
    return DbgName.empty() ? nullptr : DbgName.c_str();
  }

  /// ParkSite: forget a reaped waiter (only called at quiescence). O(one
  /// bucket): Task::ParkedSlot remembers which bucket holds the entry.
  void removeParkedTask(Task *T) override {
    const uint32_t Slot = T->ParkedSlot;
    if (Slot == SlotSize) {
      SizeWaiters *L = SizeList.load(std::memory_order_acquire);
      if (!L)
        return;
      std::lock_guard<std::mutex> Lock(L->Mu);
      for (auto It = L->Heap.begin(); It != L->Heap.end();)
        if (It->E.Owner == T) {
          It = L->Heap.erase(It);
          T->ParkedOn = nullptr;
        } else {
          ++It;
        }
      std::make_heap(L->Heap.begin(), L->Heap.end(), ThresholdGreater{});
      L->MinWatermark.store(L->Heap.empty() ? UINT64_MAX
                                            : L->Heap.front().Threshold,
                            std::memory_order_seq_cst);
      return;
    }
    WaiterBucket *B = nullptr;
    if (Slot == SlotDefault) {
      B = &Bucket0;
    } else if (WaiterBucket *KB = KeyBuckets.load(std::memory_order_acquire)) {
      assert(Slot - 1 < NumKeyBuckets && "corrupt ParkedSlot");
      B = &KB[Slot - 1];
    }
    if (!B)
      return;
    std::lock_guard<std::mutex> Lock(B->Mu);
    for (auto It = B->Waiters.begin(); It != B->Waiters.end();)
      if (It->Owner == T) {
        It = B->Waiters.erase(It);
        B->Count.fetch_sub(1, std::memory_order_release);
        T->ParkedOn = nullptr;
      } else {
        ++It;
      }
  }

  /// Asserts the accessing task belongs to this LVar's session (the
  /// runtime stand-in for the `s` type parameter).
  void checkSession(const Task *T) const {
    assert(T && "LVar access outside a Par computation");
    assert(T->SessionId == Session &&
           "LVar reused across runPar sessions (the `s` parameter would "
           "have rejected this program)");
    (void)T;
  }

protected:
  /// One blocked threshold read. \c TryCapture re-checks the threshold
  /// against the current state and, when satisfied, stores the read result
  /// into the awaiter (which lives in the parked coroutine's frame).
  struct WaiterEntry {
    Task *Owner;
    void *Awaiter;
    bool (*TryCapture)(void *Awaiter);
  };

  /// One waiter shard: its own cache line, its own lock, and a lock-free
  /// occupancy probe for the notify fast path.
  struct alignas(64) WaiterBucket {
    std::mutex Mu;
    std::vector<WaiterEntry> Waiters;
    /// Tracks Waiters.size(); probed without the lock by notifiers.
    std::atomic<uint32_t> Count{0};
  };

  /// Parks the calling coroutine unless the awaiter's threshold is already
  /// satisfied. Returns true if parked (the awaiter must suspend), false
  /// if \c A->tryCapture() succeeded (the awaiter must resume
  /// immediately). \p Slot picks the waiter bucket (see WaitSlot). Also
  /// the cancellation poll point for reads (Section 6.1).
  template <typename AwaiterT>
  bool parkGet(Task *T, std::coroutine_handle<> H, AwaiterT *A,
               WaitSlot Slot = WaitSlot()) {
    checkSession(T);
    check::auditEffect(T, check::FxGet, "blocking threshold read");
    // LVISH_FAULTS park-point poll (no-op otherwise). A raise here throws
    // out of await_suspend, which resumes the coroutine and rethrows in
    // its body - reaching unhandled_exception as usual.
    fault::injectPoint(fault::Point::Park, T);
    if (T->isCancelled()) {
      T->Sched->deferRetire(T);
      return true; // Suspend; the worker destroys the frame right after.
    }
    WaiterEntry Entry{
        T, A, [](void *P) { return static_cast<AwaiterT *>(P)->tryCapture(); }};
    if (Slot.K == WaitSlot::Kind::Size) {
      SizeWaiters &L = sizeList();
      std::lock_guard<std::mutex> Lock(L.Mu);
      // Publish-then-recheck: entry and lowered watermark first, fence,
      // then the threshold probe (see file comment).
      L.Heap.push_back(SizeWaiter{Slot.Value, Entry});
      const uint64_t OldMark = L.MinWatermark.load(std::memory_order_relaxed);
      if (Slot.Value < OldMark)
        L.MinWatermark.store(Slot.Value, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (A->tryCapture()) {
        L.Heap.pop_back(); // Withdraw: the push had not been heapified yet.
        if (Slot.Value < OldMark)
          L.MinWatermark.store(OldMark, std::memory_order_relaxed);
        return false;
      }
      std::push_heap(L.Heap.begin(), L.Heap.end(), ThresholdGreater{});
      T->Resume = H;
      T->ParkedOn = this;
      T->ParkedSlot = SlotSize;
      // Park bookkeeping last, under the lock (session-quiescence
      // protocol).
      T->Sched->onTaskParked(T);
      return true;
    }
    uint32_t SlotIdx = SlotDefault;
    WaiterBucket *B = &Bucket0;
    if (Slot.K == WaitSlot::Kind::Key) {
      const uint32_t Idx =
          static_cast<uint32_t>(Slot.Value & (NumKeyBuckets - 1));
      B = &keyBuckets()[Idx];
      SlotIdx = Idx + 1;
    }
    std::lock_guard<std::mutex> Lock(B->Mu);
    B->Waiters.push_back(Entry);
    B->Count.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (A->tryCapture()) {
      LVISH_TRACE2("parkGet lv=%p task=%p h=%p CAPTURED\n", (void *)this,
                   (void *)T, H.address());
      B->Waiters.pop_back(); // Withdraw our own (still last) entry.
      B->Count.fetch_sub(1, std::memory_order_release);
      return false;
    }
    LVISH_TRACE2("parkGet lv=%p task=%p h=%p PARKED\n", (void *)this,
                 (void *)T, H.address());
    T->Resume = H;
    T->ParkedOn = this;
    T->ParkedSlot = SlotIdx;
    // Park bookkeeping last, under the lock (session-quiescence protocol).
    T->Sched->onTaskParked(T);
    return true;
  }

  /// Full-table notify: re-checks every waiter in every occupied bucket.
  /// For structures without a per-key/size decomposition (IVar, PureLVar,
  /// Counter, CounterVec) all waiters live in the default bucket, so this
  /// degenerates to exactly the pre-sharding scan. \p Order picks the
  /// cheapest sound ordering against the caller's state write (see
  /// NotifyOrder): only FenceBefore pays a full fence on the no-waiter
  /// fast path.
  void notifyWaiters(Task *Waker,
                     NotifyOrder Order = NotifyOrder::FenceBefore) {
    if (Order == NotifyOrder::FenceBefore)
      std::atomic_thread_fence(std::memory_order_seq_cst);
    // StateSeqCst: the probe loads themselves must be seq_cst so they are
    // ordered after the caller's seq_cst state RMW in the SC total order
    // (a plain load on x86). Otherwise relaxed suffices - the fence or the
    // mutex supplies the ordering.
    const std::memory_order Probe = Order == NotifyOrder::StateSeqCst
                                        ? std::memory_order_seq_cst
                                        : std::memory_order_relaxed;
    std::vector<Task *> ToWake;
    bool Scanned = false;
    if (Bucket0.Count.load(Probe) != 0) {
      collectBucket(Bucket0, ToWake);
      Scanned = true;
    }
    if (WaiterBucket *KB = KeyBuckets.load(std::memory_order_acquire))
      for (unsigned I = 0; I < NumKeyBuckets; ++I)
        if (KB[I].Count.load(Probe) != 0) {
          collectBucket(KB[I], ToWake);
          Scanned = true;
        }
    if (SizeWaiters *L = SizeList.load(std::memory_order_acquire))
      if (L->MinWatermark.load(Probe) != UINT64_MAX) {
        collectSize(*L, ToWake);
        Scanned = true;
      }
    if (!Scanned) {
      obs::count(obs::Event::NotifySkips);
      return;
    }
    dispatchWakes(Waker, ToWake);
  }

  /// Targeted notify for a delta that bound key \p KeyHash and grew the
  /// structure to \p NewSize: scans only the default bucket (usually
  /// empty), the one key bucket this delta can satisfy, and - only when
  /// the smallest parked watermark is reached - the size heap.
  void notifyDelta(Task *Waker, uint64_t KeyHash, uint64_t NewSize) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::vector<Task *> ToWake;
    bool Scanned = false;
    if (Bucket0.Count.load(std::memory_order_relaxed) != 0) {
      collectBucket(Bucket0, ToWake);
      Scanned = true;
    }
    if (WaiterBucket *KB = KeyBuckets.load(std::memory_order_acquire)) {
      WaiterBucket &B = KB[KeyHash & (NumKeyBuckets - 1)];
      if (B.Count.load(std::memory_order_relaxed) != 0) {
        collectBucket(B, ToWake);
        Scanned = true;
      }
    }
    if (SizeWaiters *L = SizeList.load(std::memory_order_acquire))
      if (NewSize >= L->MinWatermark.load(std::memory_order_relaxed)) {
        collectSize(*L, ToWake);
        Scanned = true;
      }
    if (!Scanned) {
      obs::count(obs::Event::NotifySkips);
      return;
    }
    dispatchWakes(Waker, ToWake);
  }

  /// Targeted notify for a capacity credit (a BoundedStream consumer's
  /// advance): scans only the producer bucket named by \p KeyHash and
  /// routes the resume-order choice through ScheduleCtl::onBackpressure
  /// (its own decision kind) instead of onPick. Credit wakes are not
  /// threshold reads, so ThresholdWakeups is deliberately not counted
  /// here; the released producers count BackpressureParks on resume.
  void notifyCredit(Task *Waker, uint64_t KeyHash) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    WaiterBucket *KB = KeyBuckets.load(std::memory_order_acquire);
    if (!KB) {
      obs::count(obs::Event::NotifySkips);
      return;
    }
    WaiterBucket &B = KB[KeyHash & (NumKeyBuckets - 1)];
    if (B.Count.load(std::memory_order_relaxed) == 0) {
      obs::count(obs::Event::NotifySkips);
      return;
    }
    std::vector<Task *> ToWake;
    collectBucket(B, ToWake);
    if (ToWake.empty())
      return;
    if (ToWake.size() > 1)
      ToWake.front()->Sched->explorePermuteBackpressure(ToWake);
    for (Task *T : ToWake)
      T->Sched->wake(T, Waker);
  }

  /// The always-present default shard.
  mutable WaiterBucket Bucket0;

  /// The default bucket's mutex, which mutex-guarded structures (IVar,
  /// PureLVar) also use as their state lock: their awaiters park in the
  /// default bucket, so tryCapture always runs under the state lock.
  /// (A reference, not a mutex: declared after Bucket0 so it binds to a
  /// constructed member, and usable from const methods unlike a direct
  /// alias through `this`.)
  std::mutex &WaitMutex;

  /// RAII guard for \c WaitMutex, exported so mutex-guarded structures
  /// outside the trusted core layer (Stream) can take the state lock
  /// without naming a raw sync primitive themselves - the lock they take
  /// is still this base's, never a new one, which is exactly what the
  /// raw-sync analyzer rule is guarding.
  using StateGuard = std::lock_guard<std::mutex>;

  /// Footnote-6 gate: puts take the fast side; handler registration takes
  /// the slow side. See src/support/AsymmetricGate.h.
  AsymmetricGate HandlerGate;

private:
  /// Key-bucket fan-out; power of two. 16 shards keeps the per-LVar lazy
  /// allocation at one cache line per shard while cutting the put-side
  /// scan by the same factor.
  static constexpr unsigned NumKeyBuckets = 16;
  /// Task::ParkedSlot encoding: 0 = default bucket, 1..NumKeyBuckets =
  /// key bucket index + 1, SlotSize = the size heap.
  static constexpr uint32_t SlotDefault = 0;
  static constexpr uint32_t SlotSize = ~0u;

  struct SizeWaiter {
    uint64_t Threshold;
    WaiterEntry E;
  };
  struct ThresholdGreater {
    bool operator()(const SizeWaiter &A, const SizeWaiter &B) const {
      return A.Threshold > B.Threshold; // std::*_heap => min-heap.
    }
  };
  /// The waitSize shard: a min-heap on the parked thresholds plus the
  /// smallest one mirrored in an atomic, so a put below every parked
  /// watermark skips the lock entirely.
  struct alignas(64) SizeWaiters {
    std::mutex Mu;
    std::vector<SizeWaiter> Heap;
    std::atomic<uint64_t> MinWatermark{UINT64_MAX};
  };

  /// Lazily allocates the key-bucket array (first key park only; LVars
  /// that never park a per-key read - the bump-heavy PhyBin case, plain
  /// futures - never pay for it). Bucket0.Mu doubles as the allocation
  /// lock.
  WaiterBucket *keyBuckets() {
    WaiterBucket *P = KeyBuckets.load(std::memory_order_acquire);
    if (P)
      return P;
    std::lock_guard<std::mutex> Lock(Bucket0.Mu);
    P = KeyBuckets.load(std::memory_order_relaxed);
    if (!P) {
      P = new WaiterBucket[NumKeyBuckets];
      KeyBuckets.store(P, std::memory_order_release);
    }
    return P;
  }

  /// Lazily allocates the size-waiter heap (first waitSize park only).
  SizeWaiters &sizeList() {
    SizeWaiters *P = SizeList.load(std::memory_order_acquire);
    if (P)
      return *P;
    std::lock_guard<std::mutex> Lock(Bucket0.Mu);
    P = SizeList.load(std::memory_order_relaxed);
    if (!P) {
      P = new SizeWaiters();
      SizeList.store(P, std::memory_order_release);
    }
    return *P;
  }

  /// Locks one bucket and moves its satisfied waiters into \p ToWake.
  void collectBucket(WaiterBucket &B, std::vector<Task *> &ToWake) {
    std::lock_guard<std::mutex> Lock(B.Mu);
    if (B.Waiters.empty())
      return;
    obs::count(obs::Event::BucketScans);
    for (auto It = B.Waiters.begin(); It != B.Waiters.end();)
      if (It->TryCapture(It->Awaiter)) {
        It->Owner->ParkedOn = nullptr;
        ToWake.push_back(It->Owner);
        It = B.Waiters.erase(It);
        B.Count.fetch_sub(1, std::memory_order_release);
      } else {
        ++It;
      }
  }

  /// Pops satisfied size waiters in ascending-threshold order. Stops at
  /// the first unsatisfied threshold: size waiters are monotone in N (the
  /// WaitSlot::size contract), so nothing above the heap top can fire.
  void collectSize(SizeWaiters &L, std::vector<Task *> &ToWake) {
    std::lock_guard<std::mutex> Lock(L.Mu);
    if (L.Heap.empty())
      return;
    obs::count(obs::Event::BucketScans);
    while (!L.Heap.empty()) {
      WaiterEntry &Top = L.Heap.front().E;
      if (!Top.TryCapture(Top.Awaiter))
        break;
      Top.Owner->ParkedOn = nullptr;
      ToWake.push_back(Top.Owner);
      std::pop_heap(L.Heap.begin(), L.Heap.end(), ThresholdGreater{});
      L.Heap.pop_back();
    }
    L.MinWatermark.store(L.Heap.empty() ? UINT64_MAX
                                        : L.Heap.front().Threshold,
                         std::memory_order_relaxed);
  }

  /// Releases a collected wake batch; a multi-task wakeup is a scheduling
  /// decision point, so in explore mode the controller chooses the order.
  void dispatchWakes(Task *Waker, std::vector<Task *> &ToWake) {
    if (ToWake.empty())
      return;
    obs::count(obs::Event::ThresholdWakeups, ToWake.size());
    if (ToWake.size() > 1)
      ToWake.front()->Sched->explorePermuteWakes(ToWake);
    for (Task *T : ToWake) {
      LVISH_TRACE2("notify lv=%p wake task=%p resume=%p\n", (void *)this,
                   (void *)T, T->Resume.address());
      T->Sched->wake(T, Waker);
    }
  }

  mutable std::atomic<WaiterBucket *> KeyBuckets{nullptr};
  mutable std::atomic<SizeWaiters *> SizeList{nullptr};
  std::atomic<bool> Frozen{false};
  uint64_t Session;
  std::string DbgName;
};

/// Reports a state-changing put on a frozen LVar: the deterministic error
/// of the quasi-deterministic fragment (Kuper et al., POPL 2014). Raised
/// as a session Fault (code put_after_freeze) attributed to \p Writer and
/// \p LV; aborts only outside a session.
[[noreturn]] inline void putAfterFreezeError(Task *Writer,
                                             const LVarBase *LV) {
  detail::raiseSessionFault(Writer, FaultCode::PutAfterFreeze,
                            "put changed the state of a frozen LVar "
                            "(quasi-determinism violation)",
                            LV ? LV->debugName() : nullptr);
}

} // namespace lvish

#endif // LVISH_CORE_LVARBASE_H
