//===- LVarBase.h - Common LVar runtime machinery ---------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime substrate shared by every LVar data structure: the waiter
/// list for blocked threshold reads, the freeze bit for quasi-deterministic
/// exact reads, the session id standing in for the paper's `s` parameter,
/// and the asymmetric put/handler-registration gate of footnote 6.
///
/// Park/wake protocol (no lost wakeups):
///  * A get-awaiter calls \c parkGet, which under \c WaitMutex re-checks
///    the threshold via the awaiter's \c tryCapture. If unsatisfied it
///    publishes the waiter entry and performs the scheduler's park
///    bookkeeping *last*, still under the lock (see Scheduler.h).
///  * A put applies its state change (with the structure's own
///    synchronization), then calls \c notifyWaiters, which under the same
///    lock re-runs \c tryCapture for each waiter. Any change that lands
///    between a waiter's check and its publication is observed by the
///    put's scan, because the scan serializes after the publication on
///    \c WaitMutex.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_LVARBASE_H
#define LVISH_CORE_LVARBASE_H

#include "src/check/EffectAuditor.h"
#include "src/fault/FaultInject.h"
#include "src/obs/Telemetry.h"
#include "src/sched/FaultSignal.h"
#include "src/sched/Scheduler.h"
#include "src/sched/Task.h"
#include "src/support/AsymmetricGate.h"
#include "src/support/Assert.h"

#include <atomic>
#include <coroutine>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#ifdef LVISH_TRACE_DEBUG
#define LVISH_TRACE2(...) std::fprintf(stderr, __VA_ARGS__)
#else
#define LVISH_TRACE2(...) (void)0
#endif

namespace lvish {

/// Base class of every LVar; see file comment.
class LVarBase : public ParkSite {
public:
  explicit LVarBase(uint64_t SessionId) : Session(SessionId) {}
  ~LVarBase() override = default;

  LVarBase(const LVarBase &) = delete;
  LVarBase &operator=(const LVarBase &) = delete;

  uint64_t sessionId() const { return Session; }

  /// True after a freeze; further state-changing puts are deterministic
  /// errors.
  bool isFrozen() const { return Frozen.load(std::memory_order_acquire); }

  /// Marks this LVar frozen. Exposed operations wrap this with the
  /// HasFreeze effect requirement; runParThenFreeze calls it after session
  /// quiescence, which is the always-deterministic pattern.
  void markFrozen() { Frozen.store(true, std::memory_order_release); }

  /// Optional debug name carried into fault diagnostics ("lvar=..." in
  /// Fault messages). Set it right after construction, before the LVar is
  /// shared with other tasks; reads at fault time take no lock.
  void setDebugName(std::string Name) { DbgName = std::move(Name); }

  /// The debug name, or null when none was set.
  const char *debugName() const {
    return DbgName.empty() ? nullptr : DbgName.c_str();
  }

  /// ParkSite: forget a reaped waiter (only called at quiescence).
  void removeParkedTask(Task *T) override {
    std::lock_guard<std::mutex> Lock(WaitMutex);
    for (auto It = Waiters.begin(); It != Waiters.end();)
      if (It->Owner == T) {
        It = Waiters.erase(It);
        WaiterCount.fetch_sub(1, std::memory_order_release);
        T->ParkedOn = nullptr;
      } else {
        ++It;
      }
  }

  /// Asserts the accessing task belongs to this LVar's session (the
  /// runtime stand-in for the `s` type parameter).
  void checkSession(const Task *T) const {
    assert(T && "LVar access outside a Par computation");
    assert(T->SessionId == Session &&
           "LVar reused across runPar sessions (the `s` parameter would "
           "have rejected this program)");
    (void)T;
  }

protected:
  /// One blocked threshold read. \c TryCapture re-checks the threshold
  /// against the current state and, when satisfied, stores the read result
  /// into the awaiter (which lives in the parked coroutine's frame).
  struct WaiterEntry {
    Task *Owner;
    void *Awaiter;
    bool (*TryCapture)(void *Awaiter);
  };

  /// Parks the calling coroutine unless the awaiter's threshold is already
  /// satisfied. Returns true if parked (the awaiter must suspend), false if
  /// \c A->tryCapture() succeeded (the awaiter must resume immediately).
  /// Also the cancellation poll point for reads (Section 6.1).
  template <typename AwaiterT>
  bool parkGet(Task *T, std::coroutine_handle<> H, AwaiterT *A) {
    checkSession(T);
    check::auditEffect(T, check::FxGet, "blocking threshold read");
    // LVISH_FAULTS park-point poll (no-op otherwise). A raise here throws
    // out of await_suspend, which resumes the coroutine and rethrows in
    // its body - reaching unhandled_exception as usual.
    fault::injectPoint(fault::Point::Park, T);
    if (T->isCancelled()) {
      T->Sched->deferRetire(T);
      return true; // Suspend; the worker destroys the frame right after.
    }
    std::lock_guard<std::mutex> Lock(WaitMutex);
    if (A->tryCapture()) {
      LVISH_TRACE2("parkGet lv=%p task=%p h=%p CAPTURED\n", (void *)this,
                   (void *)T, H.address());
      return false;
    }
    LVISH_TRACE2("parkGet lv=%p task=%p h=%p PARKED\n", (void *)this,
                 (void *)T, H.address());
    T->Resume = H;
    Waiters.push_back(WaiterEntry{
        T, A, [](void *P) { return static_cast<AwaiterT *>(P)->tryCapture(); }});
    WaiterCount.fetch_add(1, std::memory_order_release);
    T->ParkedOn = this;
    // Park bookkeeping last, under the lock (session-quiescence protocol).
    T->Sched->onTaskParked(T);
    return true;
  }

  /// Re-checks all waiters after a state change and wakes the satisfied
  /// ones. \p Waker is the task performing the put (for trace edges); may
  /// be null for external (session-setup) writes.
  void notifyWaiters(Task *Waker) {
    // Fast path: no parked readers (the overwhelmingly common case for
    // bump-heavy workloads like PhyBin's distance phase). Safe: waiters
    // register under WaitMutex and re-check the threshold there, so any
    // reader arriving after this load has already seen our state change.
    if (WaiterCount.load(std::memory_order_acquire) == 0)
      return;
    std::vector<Task *> ToWake;
    {
      std::lock_guard<std::mutex> Lock(WaitMutex);
      if (Waiters.empty())
        return;
      for (auto It = Waiters.begin(); It != Waiters.end();)
        if (It->TryCapture(It->Awaiter)) {
          It->Owner->ParkedOn = nullptr;
          ToWake.push_back(It->Owner);
          It = Waiters.erase(It);
          WaiterCount.fetch_sub(1, std::memory_order_release);
        } else {
          ++It;
        }
    }
    if (!ToWake.empty())
      obs::count(obs::Event::ThresholdWakeups, ToWake.size());
    // A multi-task wakeup is a scheduling decision point: in explore mode
    // the controller chooses the release order (null check otherwise).
    if (ToWake.size() > 1)
      ToWake.front()->Sched->explorePermuteWakes(ToWake);
    for (Task *T : ToWake) {
      LVISH_TRACE2("notify lv=%p wake task=%p resume=%p\n", (void *)this,
                   (void *)T, T->Resume.address());
      T->Sched->wake(T, Waker);
    }
  }

  /// Guards Waiters and (for mutex-based structures like PureLVar) the
  /// state itself.
  mutable std::mutex WaitMutex;
  std::vector<WaiterEntry> Waiters;
  /// Lock-free probe for the notify fast path; tracks Waiters.size().
  std::atomic<uint32_t> WaiterCount{0};

  /// Footnote-6 gate: puts take the fast side; handler registration takes
  /// the slow side. See src/support/AsymmetricGate.h.
  AsymmetricGate HandlerGate;

private:
  std::atomic<bool> Frozen{false};
  uint64_t Session;
  std::string DbgName;
};

/// Reports a state-changing put on a frozen LVar: the deterministic error
/// of the quasi-deterministic fragment (Kuper et al., POPL 2014). Raised
/// as a session Fault (code put_after_freeze) attributed to \p Writer and
/// \p LV; aborts only outside a session.
[[noreturn]] inline void putAfterFreezeError(Task *Writer,
                                             const LVarBase *LV) {
  detail::raiseSessionFault(Writer, FaultCode::PutAfterFreeze,
                            "put changed the state of a frozen LVar "
                            "(quasi-determinism violation)",
                            LV ? LV->debugName() : nullptr);
}

} // namespace lvish

#endif // LVISH_CORE_LVARBASE_H
