//===- LVish.h - Umbrella header for the LVish core --------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella: the Par type, effect levels, runPar entry points,
/// IVars, pure LVars, and handler pools. Data structures (Data.LVar.* in
/// the paper) live under src/data; transformers under src/trans.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_LVISH_H
#define LVISH_CORE_LVISH_H

#include "src/core/Effects.h"       // IWYU pragma: export
#include "src/core/HandlerPool.h"   // IWYU pragma: export
#include "src/core/IVar.h"          // IWYU pragma: export
#include "src/core/Lattice.h"       // IWYU pragma: export
#include "src/core/Par.h"           // IWYU pragma: export
#include "src/core/PureLVar.h"      // IWYU pragma: export
#include "src/core/RunPar.h"        // IWYU pragma: export

#endif // LVISH_CORE_LVISH_H
