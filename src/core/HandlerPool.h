//===- HandlerPool.h - Event handlers and quiescence ------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Handler pools: LVish lets a program "register latent event handlers
/// that run when puts that change the state of an LVar occur ... these are
/// equivalent to an implicit set of functions blocked on gets" (Section 2,
/// footnote 3). A pool groups handler invocations so that \c quiesce can
/// block until the entire cascade they trigger has drained - the pattern
/// behind the graph-traversal example in the paper's appendix.
///
/// Any LVar data structure exposing
///   using DeltaType = ...;
///   void addHandlerRaw(std::function<void(const DeltaType&)>, Task*);
/// plugs into \c addHandler below; this is the "general data-structure /
/// scheduler interface" role that \c ParLVar plays in Section 4's
/// independent-extensibility discussion.
///
/// Delta batching (DESIGN.md Section 13): handlers whose effect level
/// cannot block (no HasGet) do not spawn one task per delta. Each pool
/// keeps one delta batch per worker (plus one for external callers); a put
/// appends a thunk to its worker's batch and spawns a single flush task
/// only when the batch was idle. The flush task drains the batch - and
/// whatever lands in it while draining - then disarms. TaskScope
/// enter/exit is per *flush*, not per delta, so quiescence still counts
/// every pending delta (a delta is only ever pending while its batch's
/// flush is armed). Handlers that CAN block (HasGet in their effect row)
/// keep the one-task-per-delta path: a parked handler would otherwise
/// stall every delta queued behind it in the batch.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_HANDLERPOOL_H
#define LVISH_CORE_HANDLERPOOL_H

#include "src/core/Par.h"
#include "src/obs/Telemetry.h"
#include "src/sched/TaskScope.h"
#include "src/support/Timer.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace lvish {

/// Groups handler invocations for quiescence; see file comment.
class HandlerPool {
public:
  /// One per-worker delta batch (its own cache line). A put holds Mu just
  /// long enough to append; the flush task holds it just long enough to
  /// swap the pending vector out.
  struct alignas(64) WorkerBatch {
    std::mutex Mu;
    std::vector<std::function<Par<void>()>> Pending;
    /// True while a flush task owns this batch (one Scope.enter per arm).
    bool FlushArmed = false;
  };

  /// \p NumBatchSlots must be the scheduler's numWorkers() + 1 (the last
  /// slot serves external, non-worker callers); newPool does this.
  explicit HandlerPool(unsigned NumBatchSlots)
      : Scope(TaskScope::Mode::Live),
        Batches(std::make_unique<WorkerBatch[]>(NumBatchSlots)),
        NumBatchSlots(NumBatchSlots) {}

  /// Counts every handler task spawned under this pool, including the
  /// tasks they transitively fork.
  TaskScope Scope;

  /// Per-worker delta batches for non-blocking handlers.
  std::unique_ptr<WorkerBatch[]> Batches;
  unsigned NumBatchSlots;

  /// Union of the effect masks of every registration whose deltas may
  /// share a batch; flush tasks declare this (a superset per delta, which
  /// the audit permits - declared effects bound performed ones).
  std::atomic<uint8_t> BatchFx{0};

  /// Monotonic registration ordinal source for HandlerHandle.
  std::atomic<uint64_t> Registrations{0};
};

/// Names one handler registration (which pool, which ordinal). Returned by
/// \c addHandler so callers can tie a registration to its pool - e.g. to
/// keep the pool alive or to quiesce the right pool later.
struct HandlerHandle {
  std::shared_ptr<HandlerPool> Pool;
  uint64_t Registration = 0;

  explicit operator bool() const { return Pool != nullptr; }
};

/// Allocates a handler pool for the current session, sized to the
/// scheduler's worker count (one delta batch per worker plus one for
/// external callers).
template <EffectSet E> std::shared_ptr<HandlerPool> newPool(ParCtx<E> Ctx) {
  return std::make_shared<HandlerPool>(Ctx.sched()->numWorkers() + 1);
}

/// Registers \p Callback (signature `Par<void>(ParCtx<E>, const Delta&)`)
/// to run, as a task counted by \p Pool, for the LVar's current contents
/// and for every subsequent change. Returns a HandlerHandle naming the
/// registration; [[nodiscard]] because dropping it discards the only name
/// the program has for the registration (and the only way to pass it to a
/// future deregistration API) - bind it even if only to note the intent.
///
/// Ownership note: the callback is stored inside the LVar for the LVar's
/// whole lifetime. A handler that refers to its *own* LVar (the fixpoint
/// idiom, e.g. graph traversal) must capture a non-owning pointer or
/// reference - capturing the shared_ptr would create a reference cycle
/// that Haskell's GC would collect but C++ cannot. Prefer \c addHandlerRef
/// below, which passes the LVar back into the callback by reference so
/// there is nothing to capture.
template <EffectSet E, typename LVarT, typename F>
[[nodiscard]] HandlerHandle addHandler(ParCtx<E> Ctx,
                                       std::shared_ptr<HandlerPool> Pool,
                                       LVarT &LV, F Callback) {
  using Delta = typename LVarT::DeltaType;
  static_assert(
      std::is_invocable_r_v<Par<void>, F, ParCtx<E>, const Delta &>,
      "handler callback must be callable as Par<void>(ParCtx<E>, Delta)");
  Scheduler *Sched = Ctx.sched();
  Pool->BatchFx.fetch_or(check::effectMask(E), std::memory_order_relaxed);
  uint64_t Ordinal =
      Pool->Registrations.fetch_add(1, std::memory_order_relaxed);
  if constexpr (!hasGet(E)) {
    // Non-blocking handler: batch deltas per worker, one flush task per
    // armed batch (see file comment).
    LV.addHandlerRaw(
        [Sched, Pool, Callback](const Delta &D) {
          obs::count(obs::Event::HandlerInvocations);
          HandlerPool::WorkerBatch &B =
              Pool->Batches[Sched->callerBatchIndex()];
          bool Spawn = false;
          {
            std::lock_guard<std::mutex> Lock(B.Mu);
            B.Pending.push_back([Callback, D]() -> Par<void> {
              return detail::forkBody<E>(
                  [Callback, D](ParCtx<E> C) -> Par<void> {
                    co_await Callback(C, D);
                  });
            });
            if (!B.FlushArmed) {
              B.FlushArmed = true;
              // Enter the scope while still holding B.Mu: the scope count
              // covers the pending delta before anyone can observe the
              // batch, so quiesce never sees a transient drain.
              Pool->Scope.enter();
              Spawn = true;
            }
          }
          if (!Spawn)
            return; // An armed flush task will pick the delta up.
          Task *Spawner = Scheduler::currentTask();
          HandlerPool::WorkerBatch *BP = &B;
          Par<void> Body = detail::forkBody<E>(
              [BP](ParCtx<E>) -> Par<void> {
                std::vector<std::function<Par<void>()>> Local;
                for (;;) {
                  {
                    std::lock_guard<std::mutex> Lock(BP->Mu);
                    if (BP->Pending.empty()) {
                      BP->FlushArmed = false;
                      break;
                    }
                    Local.swap(BP->Pending);
                  }
                  for (auto &Thunk : Local)
                    co_await Thunk();
                  Local.clear();
                }
              });
          Task *T = detail::installTaskRoot(*Sched, std::move(Body), Spawner);
          check::declareTaskEffects(
              T, Pool->BatchFx.load(std::memory_order_relaxed));
          T->Scopes.push_back(&Pool->Scope);
          T->Keepalives.push_back(Pool); // Batches must outlive the task.
          obs::count(obs::Event::HandlerBatchFlushes);
          Sched->schedule(T);
        },
        Ctx.task());
  } else {
    // Blocking-capable handler: one task per delta, so a parked handler
    // never stalls deltas queued behind it.
    LV.addHandlerRaw(
        [Sched, Pool, Callback](const Delta &D) {
          // Runs synchronously inside the put (or registration); spawn the
          // user callback as its own task so the put does not block.
          Task *Spawner = Scheduler::currentTask();
          obs::count(obs::Event::HandlerInvocations);
          Par<void> Body = detail::forkBody<E>(
              [Callback, D](ParCtx<E> C) -> Par<void> {
                co_await Callback(C, D);
              });
          Task *T = detail::installTaskRoot(*Sched, std::move(Body), Spawner);
          check::declareTaskEffects(T, check::effectMask(E));
          T->Scopes.push_back(&Pool->Scope);
          T->Keepalives.push_back(Pool); // Scope must outlive the task.
          Pool->Scope.enter();
          Sched->schedule(T);
        },
        Ctx.task());
  }
  return HandlerHandle{std::move(Pool), Ordinal};
}

/// Like \c addHandler, but the callback receives the LVar by reference
/// (signature `Par<void>(ParCtx<E>, LVarT&, const Delta&)`), so the
/// fixpoint idiom - a handler that writes back into the LVar it watches -
/// needs no self-capture at all. This is the safe spelling of the
/// ownership note above: the reference is non-owning by construction and
/// cannot form the shared_ptr cycle.
template <EffectSet E, typename LVarT, typename F>
[[nodiscard]] HandlerHandle addHandlerRef(ParCtx<E> Ctx,
                                          std::shared_ptr<HandlerPool> Pool,
                                          LVarT &LV, F Callback) {
  using Delta = typename LVarT::DeltaType;
  static_assert(
      std::is_invocable_r_v<Par<void>, F, ParCtx<E>, LVarT &, const Delta &>,
      "handler callback must be callable as "
      "Par<void>(ParCtx<E>, LVarT&, Delta)");
  LVarT *Raw = &LV;
  return addHandler(Ctx, std::move(Pool), LV,
                    [Raw, Callback](ParCtx<E> C, const Delta &D) {
                      return Callback(C, *Raw, D);
                    });
}

/// Awaitable that blocks until every handler task in the pool (and
/// everything those tasks forked) has finished: LVish's `quiesce`.
class QuiesceAwaiter {
public:
  QuiesceAwaiter(std::shared_ptr<HandlerPool> P, Task *T)
      : Pool(std::move(P)), Tsk(T) {}

  bool await_ready() const noexcept { return false; }

  bool await_suspend(std::coroutine_handle<> H) {
    if (Tsk->isCancelled()) {
      Tsk->Sched->deferRetire(Tsk);
      return true;
    }
    Tsk->Resume = H;
    // Stamp the wait start *before* parking: once parkUntilDrained
    // publishes the task, another worker may resume it (and run
    // await_resume) concurrently with this frame.
    if constexpr (obs::TelemetryEnabled)
      WaitStart = nowNanos();
    bool Parked = Pool->Scope.parkUntilDrained(Tsk);
    if constexpr (obs::TelemetryEnabled) {
      if (Parked)
        obs::count(obs::Event::QuiesceWaits);
      else
        WaitStart = 0; // Already drained: no wait to attribute. Safe to
                       // clear - the task was never published.
    }
    return Parked;
  }

  void await_resume() const noexcept {
    if constexpr (obs::TelemetryEnabled) {
      if (WaitStart)
        obs::addQuiesceWaitNanos(nowNanos() - WaitStart);
    }
  }

private:
  std::shared_ptr<HandlerPool> Pool;
  Task *Tsk;
  /// Wall-clock park time of a real quiescence wait (telemetry only; 0
  /// when the pool was already drained).
  uint64_t WaitStart = 0;
};

/// Blocks until \p Pool has drained. The caller must not itself be a
/// handler task of the same pool (it could then never drain).
template <EffectSet E>
  requires(hasGet(E))
QuiesceAwaiter quiesce(ParCtx<E> Ctx, std::shared_ptr<HandlerPool> Pool) {
  return QuiesceAwaiter(std::move(Pool), Ctx.task());
}

} // namespace lvish

#endif // LVISH_CORE_HANDLERPOOL_H
