//===- HandlerPool.h - Event handlers and quiescence ------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Handler pools: LVish lets a program "register latent event handlers
/// that run when puts that change the state of an LVar occur ... these are
/// equivalent to an implicit set of functions blocked on gets" (Section 2,
/// footnote 3). A pool groups handler invocations so that \c quiesce can
/// block until the entire cascade they trigger has drained - the pattern
/// behind the graph-traversal example in the paper's appendix.
///
/// Any LVar data structure exposing
///   using DeltaType = ...;
///   void addHandlerRaw(std::function<void(const DeltaType&)>, Task*);
/// plugs into \c addHandler below; this is the "general data-structure /
/// scheduler interface" role that \c ParLVar plays in Section 4's
/// independent-extensibility discussion.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_HANDLERPOOL_H
#define LVISH_CORE_HANDLERPOOL_H

#include "src/core/Par.h"
#include "src/obs/Telemetry.h"
#include "src/sched/TaskScope.h"
#include "src/support/Timer.h"

#include <memory>

namespace lvish {

/// Groups handler invocations for quiescence; see file comment.
class HandlerPool {
public:
  HandlerPool() : Scope(TaskScope::Mode::Live) {}

  /// Counts every handler task spawned under this pool, including the
  /// tasks they transitively fork.
  TaskScope Scope;
};

/// Allocates a handler pool for the current session.
template <EffectSet E> std::shared_ptr<HandlerPool> newPool(ParCtx<E> Ctx) {
  (void)Ctx;
  return std::make_shared<HandlerPool>();
}

/// Registers \p Callback (signature `Par<void>(ParCtx<E>, const Delta&)`)
/// to run, as a freshly forked task counted by \p Pool, for the LVar's
/// current contents and for every subsequent change.
///
/// Ownership note: the callback is stored inside the LVar for the LVar's
/// whole lifetime. A handler that refers to its *own* LVar (the fixpoint
/// idiom, e.g. graph traversal) must capture a non-owning pointer or
/// reference - capturing the shared_ptr would create a reference cycle
/// that Haskell's GC would collect but C++ cannot.
template <EffectSet E, typename LVarT, typename F>
void addHandler(ParCtx<E> Ctx, std::shared_ptr<HandlerPool> Pool, LVarT &LV,
                F Callback) {
  using Delta = typename LVarT::DeltaType;
  static_assert(
      std::is_invocable_r_v<Par<void>, F, ParCtx<E>, const Delta &>,
      "handler callback must be callable as Par<void>(ParCtx<E>, Delta)");
  Scheduler *Sched = Ctx.sched();
  LV.addHandlerRaw(
      [Sched, Pool, Callback](const Delta &D) {
        // Runs synchronously inside the put (or registration); spawn the
        // user callback as its own task so the put does not block.
        Task *Spawner = Scheduler::currentTask();
        obs::count(obs::Event::HandlerInvocations);
        Par<void> Body = detail::forkBody<E>(
            [Callback, D](ParCtx<E> C) -> Par<void> {
              co_await Callback(C, D);
            });
        Task *T = detail::installTaskRoot(*Sched, std::move(Body), Spawner);
        check::declareTaskEffects(T, check::effectMask(E));
        T->Scopes.push_back(&Pool->Scope);
        T->Keepalives.push_back(Pool); // Scope must outlive the task.
        Pool->Scope.enter();
        Sched->schedule(T);
      },
      Ctx.task());
}

/// Awaitable that blocks until every handler task in the pool (and
/// everything those tasks forked) has finished: LVish's `quiesce`.
class QuiesceAwaiter {
public:
  QuiesceAwaiter(std::shared_ptr<HandlerPool> P, Task *T)
      : Pool(std::move(P)), Tsk(T) {}

  bool await_ready() const noexcept { return false; }

  bool await_suspend(std::coroutine_handle<> H) {
    if (Tsk->isCancelled()) {
      Tsk->Sched->deferRetire(Tsk);
      return true;
    }
    Tsk->Resume = H;
    // Stamp the wait start *before* parking: once parkUntilDrained
    // publishes the task, another worker may resume it (and run
    // await_resume) concurrently with this frame.
    if constexpr (obs::TelemetryEnabled)
      WaitStart = nowNanos();
    bool Parked = Pool->Scope.parkUntilDrained(Tsk);
    if constexpr (obs::TelemetryEnabled) {
      if (Parked)
        obs::count(obs::Event::QuiesceWaits);
      else
        WaitStart = 0; // Already drained: no wait to attribute. Safe to
                       // clear - the task was never published.
    }
    return Parked;
  }

  void await_resume() const noexcept {
    if constexpr (obs::TelemetryEnabled) {
      if (WaitStart)
        obs::addQuiesceWaitNanos(nowNanos() - WaitStart);
    }
  }

private:
  std::shared_ptr<HandlerPool> Pool;
  Task *Tsk;
  /// Wall-clock park time of a real quiescence wait (telemetry only; 0
  /// when the pool was already drained).
  uint64_t WaitStart = 0;
};

/// Blocks until \p Pool has drained. The caller must not itself be a
/// handler task of the same pool (it could then never drain).
template <EffectSet E>
  requires(hasGet(E))
QuiesceAwaiter quiesce(ParCtx<E> Ctx, std::shared_ptr<HandlerPool> Pool) {
  return QuiesceAwaiter(std::move(Pool), Ctx.task());
}

} // namespace lvish

#endif // LVISH_CORE_HANDLERPOOL_H
