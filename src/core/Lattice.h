//===- Lattice.h - Lattice policy concept -----------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lattice-policy concept behind PureLVar: a type supplying the
/// bounded-join-semilattice structure (D, leq, bottom, top) of Section 2.
/// "We do not require that every pair of elements have a greatest lower
/// bound, only a least upper bound" - so only bottom and join are required;
/// a designated top is optional and, when present, enables the exhaustive
/// pairwise-incompatibility checks on threshold sets.
///
/// Data-structure authors carry the paper's proof obligations: join must be
/// associative, commutative, idempotent, and inflationary. The law-checking
/// helpers in tests/LatticeLawsTest.cpp sweep these properties for every
/// lattice shipped in this repository.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_LATTICE_H
#define LVISH_CORE_LATTICE_H

#include <concepts>

namespace lvish {

/// A lattice policy: value type + bottom + join.
template <typename L>
concept Lattice = requires(const typename L::ValueType &A,
                           const typename L::ValueType &B) {
  { L::bottom() } -> std::convertible_to<typename L::ValueType>;
  { L::join(A, B) } -> std::convertible_to<typename L::ValueType>;
  { A == B } -> std::convertible_to<bool>;
};

/// A lattice with a designated greatest element (error state).
template <typename L>
concept LatticeWithTop = Lattice<L> && requires(const typename L::ValueType
                                                    &A) {
  { L::isTop(A) } -> std::convertible_to<bool>;
};

/// Derived partial order: a leq b iff join(a, b) == b.
template <typename L>
  requires Lattice<L>
bool latticeLeq(const typename L::ValueType &A,
                const typename L::ValueType &B) {
  return L::join(A, B) == B;
}

// -- Stock lattices ---------------------------------------------------------

/// Natural numbers under max: the counter-shaped lattice of Section 3's
/// running example ("states are natural numbers ... the ordering induces a
/// lub operation equivalent to max").
struct MaxUint64Lattice {
  using ValueType = unsigned long long;
  static ValueType bottom() { return 0; }
  static ValueType join(ValueType A, ValueType B) { return A > B ? A : B; }
};

/// Two-point lattice Bot < Top; the simplest "flag" LVar.
struct BoolOrLattice {
  using ValueType = bool;
  static ValueType bottom() { return false; }
  static ValueType join(ValueType A, ValueType B) { return A || B; }
};

/// uint64 under *min*: the dual of MaxUint64Lattice, ordered by >= so that
/// bottom is "no information yet" (+infinity, encoded UINT64_MAX) and every
/// write can only lower the value. This is the label lattice of the PBBS
/// connected-components port (src/pbbs/): a vertex's component label only
/// ever improves (decreases) toward the component's minimum vertex id, so
/// min-joins from racing propagation handlers commute and the fixpoint is
/// schedule-independent.
struct MinUint64Lattice {
  using ValueType = unsigned long long;
  static constexpr ValueType bottom() { return ~0ULL; }
  static constexpr ValueType join(ValueType A, ValueType B) {
    return A < B ? A : B;
  }
};

} // namespace lvish

#endif // LVISH_CORE_LATTICE_H
