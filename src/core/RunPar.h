//===- RunPar.h - Session entry points --------------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runPar family: the bridge between ordinary sequential code and Par
/// computations.
///
///   runPar :: (NoFreeze e, NoIO e) => (forall s. Par e s a) -> a
///
/// becomes `runPar<E>(Body)` with a static assertion that E contains
/// neither Freeze nor IO, so the result is a pure function of the program.
/// `runParIO` lifts that restriction (nondeterministic effects allowed);
/// `runParThenFreeze` runs to full quiescence, then freezes the returned
/// LVar so its exact contents can be read deterministically.
///
/// Sessions run to *full* quiescence before returning: every forked task
/// has either finished or is permanently blocked (and is then reaped; see
/// Scheduler.h). If the root itself never produced a value the program has
/// a deterministic deadlock and runPar reports a fatal error.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_RUNPAR_H
#define LVISH_CORE_RUNPAR_H

#include "src/core/Par.h"

#include <memory>
#include <optional>
#include <type_traits>

namespace lvish {

namespace detail {

template <typename P> struct ParValue;
template <typename T> struct ParValue<Par<T>> {
  using type = T;
};

/// Root coroutine: materializes the session context and funnels the result
/// out to the caller's stack (which outlives the session).
template <EffectSet E, typename F, typename R>
Par<void> rootBody(F Body, std::optional<R> *Out) {
  ParCtx<E> Ctx = CtxAccess::make<E>(Scheduler::currentTask());
  *Out = co_await Body(Ctx);
}

template <EffectSet E, typename F>
Par<void> rootBodyVoid(F Body, bool *Done) {
  ParCtx<E> Ctx = CtxAccess::make<E>(Scheduler::currentTask());
  co_await Body(Ctx);
  *Done = true;
}

template <EffectSet E, typename F>
auto runParOnImpl(Scheduler &Sched, F Body) {
  using RetPar = std::invoke_result_t<F, ParCtx<E>>;
  using R = typename ParValue<RetPar>::type;

  auto Launch = [&](Par<void> RootPar) {
    Task *Root = installTaskRoot(Sched, std::move(RootPar), nullptr);
    Root->SessionId = Sched.newSessionId();
    Root->Cancel = std::make_shared<CancelNode>();
    check::declareTaskEffects(Root, check::effectMask(E));
    Sched.schedule(Root);
    Sched.waitSessionQuiescent();
    Sched.finishSession();
  };

  if constexpr (std::is_void_v<R>) {
    bool Done = false;
    Launch(rootBodyVoid<E>(std::move(Body), &Done));
    if (!Done)
      fatalError("runPar: deterministic deadlock (the main computation "
                 "blocked forever)");
    return;
  } else {
    std::optional<R> Slot;
    Launch(rootBody<E, F, R>(std::move(Body), &Slot));
    if (!Slot)
      fatalError("runPar: deterministic deadlock (the main computation "
                 "blocked forever)");
    return std::move(*Slot);
  }
}

} // namespace detail

/// Runs \p Body on an existing scheduler (one session at a time). Useful
/// for benchmarks that amortize worker startup.
template <EffectSet E = Eff::Det, typename F>
auto runParOn(Scheduler &Sched, F Body) {
  static_assert(noFreeze(E) && noIO(E),
                "runPar requires NoFreeze and NoIO; use runParIO or "
                "runParThenFreeze");
  return detail::runParOnImpl<E>(Sched, std::move(Body));
}

/// Runs \p Body on a fresh scheduler and returns its pure result.
template <EffectSet E = Eff::Det, typename F>
auto runPar(F Body, SchedulerConfig Config = SchedulerConfig()) {
  static_assert(noFreeze(E) && noIO(E),
                "runPar requires NoFreeze and NoIO; use runParIO or "
                "runParThenFreeze");
  Scheduler Sched(Config);
  return detail::runParOnImpl<E>(Sched, std::move(Body));
}

/// Like runPar but without the purity restriction: quasi-deterministic
/// freezes and nondeterministic (IO-bit) operations are allowed.
template <EffectSet E = Eff::FullIO, typename F>
auto runParIO(F Body, SchedulerConfig Config = SchedulerConfig()) {
  Scheduler Sched(Config);
  return detail::runParOnImpl<E>(Sched, std::move(Body));
}

template <EffectSet E = Eff::FullIO, typename F>
auto runParIOOn(Scheduler &Sched, F Body) {
  return detail::runParOnImpl<E>(Sched, std::move(Body));
}

/// Runs \p Body (which returns a shared_ptr to an LVar data structure),
/// waits for full quiescence, then freezes the structure "on the way out"
/// so its exact contents can be read - the always-deterministic freezing
/// pattern (runParThenFreeze in LVish).
template <EffectSet E = Eff::Det, typename F>
auto runParThenFreeze(F Body, SchedulerConfig Config = SchedulerConfig()) {
  static_assert(noFreeze(E) && noIO(E),
                "the computation under runParThenFreeze must not freeze "
                "explicitly");
  Scheduler Sched(Config);
  auto Result = detail::runParOnImpl<E>(Sched, std::move(Body));
  // The session is fully quiescent: freezing here cannot race any put.
  Result->markFrozen();
  return Result;
}

} // namespace lvish

#endif // LVISH_CORE_RUNPAR_H
