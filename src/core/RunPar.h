//===- RunPar.h - One-shot session entry points -----------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runPar family: the bridge between ordinary sequential code and Par
/// computations.
///
///   runPar :: (NoFreeze e, NoIO e) => (forall s. Par e s a) -> a
///
/// becomes `runPar<E>(Body)` with a static assertion that E contains
/// neither Freeze nor IO, so the result is a pure function of the program.
/// `runParIO` lifts that restriction (nondeterministic effects allowed);
/// `runParThenFreeze` runs to full quiescence, then freezes the returned
/// LVar so its exact contents can be read deterministically.
///
/// Every entry point here is a ONE-SHOT wrapper: it spins up a private
/// service::Runtime (src/service/Runtime.h), runs the body as that
/// Runtime's single session, and tears the pool down. Long-lived callers
/// - benches amortizing worker startup, services multiplexing concurrent
/// sessions - should hold a service::Runtime and use Runtime::run /
/// Runtime::submit directly. (The pre-Runtime borrowed-scheduler surface
/// - RunOptions::Borrowed/::On and the *On wrappers - is gone; the
/// lvish-analyze rule deprecated-borrowed-scheduler now simply rejects
/// any resurrection of those names.)
///
/// Sessions run to *full* quiescence before returning: every forked task
/// has either finished or is permanently blocked (and is then reaped; see
/// Scheduler.h).
///
/// Fault containment (DESIGN.md Section 8): each session returns a
/// ParOutcome - the body's value, or the session's deterministic Fault.
/// A contract violation inside the session (conflicting put, put after
/// freeze, cancelled-and-read future, checker violation, injected
/// failure) records the lattice-least Fault on the session, cancels its
/// remaining tasks transitively through the session root's CancelNode,
/// lets the session quiesce, and surfaces here. A root that never
/// produced a value without any recorded fault is a deterministic
/// deadlock, reported as a Fault too (code deadlock_drained when the root
/// was the only leftover task, deadlock_leaked_tasks when other blocked
/// tasks leaked with it).
///
/// The tryRunPar* family exposes the ParOutcome; the classic runPar*
/// names keep their value-returning signatures as thin wrappers that
/// funnel every failure through ONE abort choke point,
/// ParOutcome::valueOrAbort.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_RUNPAR_H
#define LVISH_CORE_RUNPAR_H

#include "src/core/Par.h"
#include "src/obs/SchedulerStats.h"
#include "src/service/Runtime.h"
#include "src/support/Fault.h"

#include <type_traits>
#include <utility>

namespace lvish {

/// Session parameters orthogonal to the effect level. Aggregate-initialize
/// the fields you need, or start from one of the named factories:
///
///   SchedulerStats Stats;
///   auto R = runPar(Body, RunOptions::CollectStats(Stats));
///   // Stats.TasksCreated, Stats.Steals, ... now describe the run.
struct RunOptions {
  /// Configuration for the session's private scheduler pool.
  SchedulerConfig Config{};
  /// After quiescence, markFrozen() the returned LVar handle - the
  /// always-deterministic freeze-on-the-way-out of runParThenFreeze.
  /// Requires the body to return a (shared_ptr to an) LVar structure.
  bool FreezeOnExit = false;
  /// When non-null, receives the session's scheduler-stats DELTA after it
  /// quiesces: the pool's counters at session start subtracted from the
  /// counters at session end (Scheduler::sessionStats). For the one-shot
  /// wrappers the delta equals the private pool's whole history; on a
  /// shared Runtime it isolates this session (exactly, when no other
  /// session overlaps it).
  SchedulerStats *StatsOut = nullptr;
  /// Deterministic step budget forwarded to SessionOptions::MaxSteps: the
  /// session is killed with FaultCode::BudgetExceeded after this many
  /// scheduler decisions. Steps, not wall clock, so budget kills replay
  /// bit-for-bit under Explore (DESIGN.md Section 16). 0 = unlimited.
  uint64_t SessionBudget = 0;

  /// Options that deposit the session's stats delta into \p Out.
  static RunOptions CollectStats(SchedulerStats &Out) {
    RunOptions O;
    O.StatsOut = &Out;
    return O;
  }

  /// Options that run the session in controlled-scheduling (explore) mode:
  /// no OS worker threads; \p Ctl decides every scheduling step across
  /// \p VirtualWorkers virtual workers (DESIGN.md Section 12). Compose with
  /// the tryRunPar* entry points so a schedule-dependent fault surfaces as
  /// a ParOutcome instead of aborting the search. One session per
  /// controller at a time.
  static RunOptions Explore(explore::ScheduleCtl &Ctl,
                            unsigned VirtualWorkers = 2) {
    RunOptions O;
    O.Config.NumWorkers = VirtualWorkers;
    O.Config.Explore = &Ctl;
    return O;
  }
};

namespace detail {

/// The one session front door every runPar* wrapper funnels into.
/// Translates RunOptions into a session on a private one-shot Runtime and
/// returns the body's value or the session's deterministic Fault.
template <EffectSet E, typename F>
auto runParOnImpl(const RunOptions &Opts, F Body) {
  service::SessionOptions SOpts;
  SOpts.FreezeOnExit = Opts.FreezeOnExit;
  SOpts.StatsOut = Opts.StatsOut;
  SOpts.Explore = Opts.Config.Explore;
  SOpts.MaxSteps = Opts.SessionBudget;
  service::RuntimeConfig RC;
  RC.Sched = Opts.Config;
  service::Runtime RT(RC);
  return RT.runSession<E>(std::move(Body), SOpts);
}

} // namespace detail

/// Runs \p Body and returns a ParOutcome: the body's pure result, or the
/// session's deterministic Fault. The fault-aware front of the runPar
/// family; every other entry point below derives from it.
///
/// The whole tryRunPar* family is [[nodiscard]]: discarding the
/// ParOutcome silently swallows a session Fault, which is exactly the
/// failure mode these entry points exist to surface (use the runPar*
/// forms if aborting on Fault is acceptable).
template <EffectSet E = Eff::Det, typename F>
[[nodiscard]] auto tryRunPar(F Body, const RunOptions &Opts) {
  static_assert(noFreeze(E) && noIO(E),
                "runPar requires NoFreeze and NoIO; use runParIO or "
                "runParThenFreeze");
  return detail::runParOnImpl<E>(Opts, std::move(Body));
}

/// tryRunPar on a fresh one-shot Runtime.
template <EffectSet E = Eff::Det, typename F>
[[nodiscard]] auto tryRunPar(F Body, SchedulerConfig Config = SchedulerConfig()) {
  RunOptions Opts;
  Opts.Config = Config;
  return tryRunPar<E>(std::move(Body), Opts);
}

/// Fault-aware runParIO: like tryRunPar but without the purity
/// restriction (quasi-deterministic freezes and IO-bit operations
/// allowed).
template <EffectSet E = Eff::FullIO, typename F>
[[nodiscard]] auto tryRunParIO(F Body, const RunOptions &Opts) {
  return detail::runParOnImpl<E>(Opts, std::move(Body));
}

template <EffectSet E = Eff::FullIO, typename F>
[[nodiscard]] auto tryRunParIO(F Body, SchedulerConfig Config = SchedulerConfig()) {
  RunOptions Opts;
  Opts.Config = Config;
  return tryRunParIO<E>(std::move(Body), Opts);
}

/// Runs \p Body with explicit options and returns its pure result,
/// aborting the process on any session Fault (the classic LVish
/// signature). All failure paths funnel through ParOutcome::valueOrAbort,
/// the single fatalError choke point of the library.
template <EffectSet E = Eff::Det, typename F>
auto runPar(F Body, const RunOptions &Opts) {
  return tryRunPar<E>(std::move(Body), Opts).valueOrAbort();
}

/// Runs \p Body on a fresh one-shot Runtime and returns its pure result.
template <EffectSet E = Eff::Det, typename F>
auto runPar(F Body, SchedulerConfig Config = SchedulerConfig()) {
  RunOptions Opts;
  Opts.Config = Config;
  return runPar<E>(std::move(Body), Opts);
}

/// Like runPar but without the purity restriction: quasi-deterministic
/// freezes and nondeterministic (IO-bit) operations are allowed.
template <EffectSet E = Eff::FullIO, typename F>
auto runParIO(F Body, const RunOptions &Opts) {
  return tryRunParIO<E>(std::move(Body), Opts).valueOrAbort();
}

template <EffectSet E = Eff::FullIO, typename F>
auto runParIO(F Body, SchedulerConfig Config = SchedulerConfig()) {
  RunOptions Opts;
  Opts.Config = Config;
  return runParIO<E>(std::move(Body), Opts);
}

/// Fault-aware runParThenFreeze: quiesce, freeze the returned LVar handle
/// on the way out, and surface any session Fault as a ParOutcome. The
/// explorer uses this to search freeze-free programs whose results are
/// read through the exit freeze.
template <EffectSet E = Eff::Det, typename F>
[[nodiscard]] auto tryRunParThenFreeze(F Body, RunOptions Opts = RunOptions()) {
  static_assert(noFreeze(E) && noIO(E),
                "the computation under runParThenFreeze must not freeze "
                "explicitly");
  Opts.FreezeOnExit = true;
  return detail::runParOnImpl<E>(Opts, std::move(Body));
}

/// Runs \p Body (which returns a shared_ptr to an LVar data structure),
/// waits for full quiescence, then freezes the structure "on the way out"
/// so its exact contents can be read - the always-deterministic freezing
/// pattern (runParThenFreeze in LVish).
template <EffectSet E = Eff::Det, typename F>
auto runParThenFreeze(F Body, SchedulerConfig Config = SchedulerConfig()) {
  static_assert(noFreeze(E) && noIO(E),
                "the computation under runParThenFreeze must not freeze "
                "explicitly");
  RunOptions Opts;
  Opts.Config = Config;
  Opts.FreezeOnExit = true;
  return detail::runParOnImpl<E>(Opts, std::move(Body)).valueOrAbort();
}

/// runParThenFreeze with explicit options (explore mode, stats); aborts
/// on a session Fault like the classic signature.
template <EffectSet E = Eff::Det, typename F>
auto runParThenFreeze(F Body, RunOptions Opts) {
  return tryRunParThenFreeze<E>(std::move(Body), std::move(Opts))
      .valueOrAbort();
}

} // namespace lvish

#endif // LVISH_CORE_RUNPAR_H
