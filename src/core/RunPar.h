//===- RunPar.h - Session entry points --------------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runPar family: the bridge between ordinary sequential code and Par
/// computations.
///
///   runPar :: (NoFreeze e, NoIO e) => (forall s. Par e s a) -> a
///
/// becomes `runPar<E>(Body)` with a static assertion that E contains
/// neither Freeze nor IO, so the result is a pure function of the program.
/// `runParIO` lifts that restriction (nondeterministic effects allowed);
/// `runParThenFreeze` runs to full quiescence, then freezes the returned
/// LVar so its exact contents can be read deterministically.
///
/// Every entry point is a thin wrapper over one front door,
/// detail::runParOnImpl, parameterized by a RunOptions struct: scheduler
/// config or a borrowed Scheduler&, the freeze-on-exit flag, and an
/// optional SchedulerStats out-pointer filled after the session quiesces.
/// The effect level E is what distinguishes the named wrappers; RunOptions
/// carries everything orthogonal to effects.
///
/// Sessions run to *full* quiescence before returning: every forked task
/// has either finished or is permanently blocked (and is then reaped; see
/// Scheduler.h). If the root itself never produced a value the program has
/// a deterministic deadlock and runPar reports a fatal error.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_RUNPAR_H
#define LVISH_CORE_RUNPAR_H

#include "src/core/Par.h"
#include "src/obs/SchedulerStats.h"

#include <memory>
#include <optional>
#include <type_traits>

namespace lvish {

/// Session parameters orthogonal to the effect level. Aggregate-initialize
/// the fields you need, or start from one of the named factories:
///
///   SchedulerStats Stats;
///   auto R = runPar(Body, RunOptions::CollectStats(Stats));
///   // Stats.TasksCreated, Stats.Steals, ... now describe the run.
struct RunOptions {
  /// Configuration for the session's own scheduler. Ignored when
  /// \c Borrowed is set.
  SchedulerConfig Config{};
  /// Run on this existing scheduler instead of constructing one (one
  /// session at a time; amortizes worker startup across sessions).
  Scheduler *Borrowed = nullptr;
  /// After quiescence, markFrozen() the returned LVar handle - the
  /// always-deterministic freeze-on-the-way-out of runParThenFreeze.
  /// Requires the body to return a (shared_ptr to an) LVar structure.
  bool FreezeOnExit = false;
  /// When non-null, receives Scheduler::stats() after the session has
  /// quiesced. Note the counters are cumulative per scheduler: with
  /// \c Borrowed they include earlier sessions on that scheduler.
  SchedulerStats *StatsOut = nullptr;

  /// Options that run on \p Sched instead of a fresh scheduler.
  static RunOptions On(Scheduler &Sched) {
    RunOptions O;
    O.Borrowed = &Sched;
    return O;
  }

  /// Options that deposit the post-run scheduler stats into \p Out.
  static RunOptions CollectStats(SchedulerStats &Out) {
    RunOptions O;
    O.StatsOut = &Out;
    return O;
  }
};

namespace detail {

template <typename P> struct ParValue;
template <typename T> struct ParValue<Par<T>> {
  using type = T;
};

/// Root coroutine: materializes the session context and funnels the result
/// out to the caller's stack (which outlives the session).
template <EffectSet E, typename F, typename R>
Par<void> rootBody(F Body, std::optional<R> *Out) {
  ParCtx<E> Ctx = CtxAccess::make<E>(Scheduler::currentTask());
  *Out = co_await Body(Ctx);
}

template <EffectSet E, typename F>
Par<void> rootBodyVoid(F Body, bool *Done) {
  ParCtx<E> Ctx = CtxAccess::make<E>(Scheduler::currentTask());
  co_await Body(Ctx);
  *Done = true;
}

/// The one session front door every runPar* wrapper funnels into.
template <EffectSet E, typename F>
auto runParOnImpl(const RunOptions &Opts, F Body) {
  using RetPar = std::invoke_result_t<F, ParCtx<E>>;
  using R = typename ParValue<RetPar>::type;

  // Scheduler is neither copyable nor movable, so the owned case lives in
  // an optional constructed in place.
  std::optional<Scheduler> Owned;
  Scheduler &Sched =
      Opts.Borrowed ? *Opts.Borrowed : Owned.emplace(Opts.Config);

  auto Launch = [&](Par<void> RootPar) {
    Task *Root = installTaskRoot(Sched, std::move(RootPar), nullptr);
    Root->SessionId = Sched.newSessionId();
    Root->Cancel = std::make_shared<CancelNode>();
    check::declareTaskEffects(Root, check::effectMask(E));
    Sched.schedule(Root);
    Sched.waitSessionQuiescent();
    Sched.finishSession();
    if (Opts.StatsOut)
      *Opts.StatsOut = Sched.stats();
  };

  if constexpr (std::is_void_v<R>) {
    assert(!Opts.FreezeOnExit &&
           "FreezeOnExit requires the body to return an LVar handle");
    bool Done = false;
    Launch(rootBodyVoid<E>(std::move(Body), &Done));
    if (!Done)
      fatalError("runPar: deterministic deadlock (the main computation "
                 "blocked forever)");
    return;
  } else {
    std::optional<R> Slot;
    Launch(rootBody<E, F, R>(std::move(Body), &Slot));
    if (!Slot)
      fatalError("runPar: deterministic deadlock (the main computation "
                 "blocked forever)");
    if constexpr (requires { (*Slot)->markFrozen(); }) {
      // The session is fully quiescent: freezing here cannot race a put.
      if (Opts.FreezeOnExit)
        (*Slot)->markFrozen();
    } else {
      assert(!Opts.FreezeOnExit &&
             "FreezeOnExit requires the body to return an LVar handle");
    }
    return std::move(*Slot);
  }
}

} // namespace detail

/// Runs \p Body with explicit options and returns its pure result (the
/// most general deterministic entry point; the named wrappers below cover
/// the common shapes).
template <EffectSet E = Eff::Det, typename F>
auto runPar(F Body, const RunOptions &Opts) {
  static_assert(noFreeze(E) && noIO(E),
                "runPar requires NoFreeze and NoIO; use runParIO or "
                "runParThenFreeze");
  return detail::runParOnImpl<E>(Opts, std::move(Body));
}

/// Runs \p Body on a fresh scheduler and returns its pure result.
template <EffectSet E = Eff::Det, typename F>
auto runPar(F Body, SchedulerConfig Config = SchedulerConfig()) {
  RunOptions Opts;
  Opts.Config = Config;
  return runPar<E>(std::move(Body), Opts);
}

/// Runs \p Body on an existing scheduler (one session at a time). Useful
/// for benchmarks that amortize worker startup.
template <EffectSet E = Eff::Det, typename F>
auto runParOn(Scheduler &Sched, F Body) {
  return runPar<E>(std::move(Body), RunOptions::On(Sched));
}

/// Like runPar but without the purity restriction: quasi-deterministic
/// freezes and nondeterministic (IO-bit) operations are allowed.
template <EffectSet E = Eff::FullIO, typename F>
auto runParIO(F Body, const RunOptions &Opts) {
  return detail::runParOnImpl<E>(Opts, std::move(Body));
}

template <EffectSet E = Eff::FullIO, typename F>
auto runParIO(F Body, SchedulerConfig Config = SchedulerConfig()) {
  RunOptions Opts;
  Opts.Config = Config;
  return runParIO<E>(std::move(Body), Opts);
}

template <EffectSet E = Eff::FullIO, typename F>
auto runParIOOn(Scheduler &Sched, F Body) {
  return runParIO<E>(std::move(Body), RunOptions::On(Sched));
}

/// Runs \p Body (which returns a shared_ptr to an LVar data structure),
/// waits for full quiescence, then freezes the structure "on the way out"
/// so its exact contents can be read - the always-deterministic freezing
/// pattern (runParThenFreeze in LVish).
template <EffectSet E = Eff::Det, typename F>
auto runParThenFreeze(F Body, SchedulerConfig Config = SchedulerConfig()) {
  static_assert(noFreeze(E) && noIO(E),
                "the computation under runParThenFreeze must not freeze "
                "explicitly");
  RunOptions Opts;
  Opts.Config = Config;
  Opts.FreezeOnExit = true;
  return detail::runParOnImpl<E>(Opts, std::move(Body));
}

/// runParThenFreeze on an existing scheduler.
template <EffectSet E = Eff::Det, typename F>
auto runParThenFreezeOn(Scheduler &Sched, F Body) {
  static_assert(noFreeze(E) && noIO(E),
                "the computation under runParThenFreeze must not freeze "
                "explicitly");
  RunOptions Opts = RunOptions::On(Sched);
  Opts.FreezeOnExit = true;
  return detail::runParOnImpl<E>(Opts, std::move(Body));
}

} // namespace lvish

#endif // LVISH_CORE_RUNPAR_H
