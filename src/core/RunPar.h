//===- RunPar.h - Session entry points --------------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runPar family: the bridge between ordinary sequential code and Par
/// computations.
///
///   runPar :: (NoFreeze e, NoIO e) => (forall s. Par e s a) -> a
///
/// becomes `runPar<E>(Body)` with a static assertion that E contains
/// neither Freeze nor IO, so the result is a pure function of the program.
/// `runParIO` lifts that restriction (nondeterministic effects allowed);
/// `runParThenFreeze` runs to full quiescence, then freezes the returned
/// LVar so its exact contents can be read deterministically.
///
/// Every entry point is a thin wrapper over one front door,
/// detail::runParOnImpl, parameterized by a RunOptions struct: scheduler
/// config or a borrowed Scheduler&, the freeze-on-exit flag, and an
/// optional SchedulerStats out-pointer filled after the session quiesces.
/// The effect level E is what distinguishes the named wrappers; RunOptions
/// carries everything orthogonal to effects.
///
/// Sessions run to *full* quiescence before returning: every forked task
/// has either finished or is permanently blocked (and is then reaped; see
/// Scheduler.h).
///
/// Fault containment (DESIGN.md Section 8): runParOnImpl returns a
/// ParOutcome - the body's value, or the session's deterministic Fault.
/// A contract violation inside the session (conflicting put, put after
/// freeze, cancelled-and-read future, checker violation, injected
/// failure) records the lattice-least Fault on the scheduler, cancels the
/// remaining tasks transitively through the session root's CancelNode,
/// lets the session quiesce, and surfaces here. A root that never
/// produced a value without any recorded fault is a deterministic
/// deadlock, reported as a Fault too (code deadlock_drained when the root
/// was the only leftover task, deadlock_leaked_tasks when other blocked
/// tasks leaked with it).
///
/// The tryRunPar* family exposes the ParOutcome; the classic runPar*
/// names keep their value-returning signatures as thin wrappers that
/// funnel every failure through ONE abort choke point,
/// ParOutcome::valueOrAbort.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_RUNPAR_H
#define LVISH_CORE_RUNPAR_H

#include "src/core/Par.h"
#include "src/obs/SchedulerStats.h"
#include "src/obs/Telemetry.h"
#include "src/support/Fault.h"

#include <memory>
#include <optional>
#include <string>
#include <type_traits>

namespace lvish {

/// Session parameters orthogonal to the effect level. Aggregate-initialize
/// the fields you need, or start from one of the named factories:
///
///   SchedulerStats Stats;
///   auto R = runPar(Body, RunOptions::CollectStats(Stats));
///   // Stats.TasksCreated, Stats.Steals, ... now describe the run.
struct RunOptions {
  /// Configuration for the session's own scheduler. Ignored when
  /// \c Borrowed is set.
  SchedulerConfig Config{};
  /// Run on this existing scheduler instead of constructing one (one
  /// session at a time; amortizes worker startup across sessions).
  Scheduler *Borrowed = nullptr;
  /// After quiescence, markFrozen() the returned LVar handle - the
  /// always-deterministic freeze-on-the-way-out of runParThenFreeze.
  /// Requires the body to return a (shared_ptr to an) LVar structure.
  bool FreezeOnExit = false;
  /// When non-null, receives Scheduler::stats() after the session has
  /// quiesced. Note the counters are cumulative per scheduler: with
  /// \c Borrowed they include earlier sessions on that scheduler.
  SchedulerStats *StatsOut = nullptr;

  /// Options that run on \p Sched instead of a fresh scheduler.
  static RunOptions On(Scheduler &Sched) {
    RunOptions O;
    O.Borrowed = &Sched;
    return O;
  }

  /// Options that deposit the post-run scheduler stats into \p Out.
  static RunOptions CollectStats(SchedulerStats &Out) {
    RunOptions O;
    O.StatsOut = &Out;
    return O;
  }

  /// Options that run the session in controlled-scheduling (explore) mode:
  /// no OS worker threads; \p Ctl decides every scheduling step across
  /// \p VirtualWorkers virtual workers (DESIGN.md Section 12). Compose with
  /// the tryRunPar* entry points so a schedule-dependent fault surfaces as
  /// a ParOutcome instead of aborting the search. One session per
  /// controller at a time.
  static RunOptions Explore(explore::ScheduleCtl &Ctl,
                            unsigned VirtualWorkers = 2) {
    RunOptions O;
    O.Config.NumWorkers = VirtualWorkers;
    O.Config.Explore = &Ctl;
    return O;
  }
};

namespace detail {

template <typename P> struct ParValue;
template <typename T> struct ParValue<Par<T>> {
  using type = T;
};

/// Root coroutine: materializes the session context and funnels the result
/// out to the caller's stack (which outlives the session).
template <EffectSet E, typename F, typename R>
Par<void> rootBody(F Body, std::optional<R> *Out) {
  ParCtx<E> Ctx = CtxAccess::make<E>(Scheduler::currentTask());
  *Out = co_await Body(Ctx);
}

template <EffectSet E, typename F>
Par<void> rootBodyVoid(F Body, bool *Done) {
  ParCtx<E> Ctx = CtxAccess::make<E>(Scheduler::currentTask());
  co_await Body(Ctx);
  *Done = true;
}

/// Builds the deadlock Fault for a session whose root never produced a
/// value and never recorded a fault. \p Leftover counts every task reaped
/// at quiescence, *including* the blocked root, so Leftover <= 1 means the
/// scheduler fully drained (only the root was stuck) and Leftover > 1
/// means other blocked tasks leaked alongside it - two different bugs in
/// user code, hence two Fault codes.
inline Fault makeDeadlockFault(size_t Leftover, uint64_t SessionId) {
  Fault F;
  F.Code = Leftover <= 1 ? FaultCode::DeadlockDrained
                         : FaultCode::DeadlockLeakedTasks;
  F.SessionId = SessionId;
  F.Worker = -1;       // Detected on the session thread, not a worker.
  F.Pedigree.clear();  // The root's pedigree is the empty path.
  std::string Msg = "runPar: deterministic deadlock (the main computation "
                    "blocked forever; ";
  if (Leftover <= 1)
    Msg += "scheduler drained: no other task remained";
  else
    Msg += std::to_string(Leftover - 1) + " other blocked task(s) leaked";
  Msg += ") [code=";
  Msg += faultCodeName(F.Code);
  Msg += ", session=" + std::to_string(SessionId) + ", pedigree=<root>]";
  F.Message = std::move(Msg);
  return F;
}

/// The one session front door every runPar* wrapper funnels into.
/// Returns the body's value or the session's deterministic Fault.
template <EffectSet E, typename F>
auto runParOnImpl(const RunOptions &Opts, F Body) {
  using RetPar = std::invoke_result_t<F, ParCtx<E>>;
  using R = typename ParValue<RetPar>::type;

  // Scheduler is neither copyable nor movable, so the owned case lives in
  // an optional constructed in place.
  std::optional<Scheduler> Owned;
  Scheduler &Sched =
      Opts.Borrowed ? *Opts.Borrowed : Owned.emplace(Opts.Config);

  uint64_t SessionId = 0;
  size_t Leftover = 0;
  auto Launch = [&](Par<void> RootPar) {
    Task *Root = installTaskRoot(Sched, std::move(RootPar), nullptr);
    SessionId = Root->SessionId = Sched.newSessionId();
    Root->Cancel = std::make_shared<CancelNode>();
    // Arm the fault scope with the root's CancelNode: a raised fault
    // cancels the whole session transitively through it.
    Sched.beginSessionFaultScope(Root->Cancel);
    check::declareTaskEffects(Root, check::effectMask(E));
    Sched.schedule(Root);
    Sched.waitSessionQuiescent();
    Leftover = Sched.finishSession();
    if (Opts.StatsOut)
      *Opts.StatsOut = Sched.stats();
  };

  // Resolves the session's failure, if any: a recorded fault wins (even if
  // the root produced a value before a sibling faulted); otherwise a
  // root that never produced a value is a deterministic deadlock.
  auto FinishFault = [&](bool Produced) -> std::optional<Fault> {
    std::optional<Fault> Flt = Sched.takeSessionFault();
    if (!Flt && !Produced) {
      Flt = makeDeadlockFault(Leftover, SessionId);
      obs::count(obs::Event::FaultsRaised); // Not routed via raiseFault.
    }
    if (Flt)
      obs::count(obs::Event::FaultsContained);
    return Flt;
  };

  if constexpr (std::is_void_v<R>) {
    assert(!Opts.FreezeOnExit &&
           "FreezeOnExit requires the body to return an LVar handle");
    bool Done = false;
    Launch(rootBodyVoid<E>(std::move(Body), &Done));
    if (std::optional<Fault> Flt = FinishFault(Done))
      return ParOutcome<void>::failure(std::move(*Flt));
    return ParOutcome<void>::success();
  } else {
    std::optional<R> Slot;
    Launch(rootBody<E, F, R>(std::move(Body), &Slot));
    if (std::optional<Fault> Flt = FinishFault(Slot.has_value()))
      return ParOutcome<R>::failure(std::move(*Flt));
    if constexpr (requires { (*Slot)->markFrozen(); }) {
      // The session is fully quiescent: freezing here cannot race a put.
      if (Opts.FreezeOnExit)
        (*Slot)->markFrozen();
    } else {
      assert(!Opts.FreezeOnExit &&
             "FreezeOnExit requires the body to return an LVar handle");
    }
    return ParOutcome<R>::success(std::move(*Slot));
  }
}

} // namespace detail

/// Runs \p Body and returns a ParOutcome: the body's pure result, or the
/// session's deterministic Fault. The fault-aware front of the runPar
/// family; every other entry point below derives from it.
///
/// The whole tryRunPar* family is [[nodiscard]]: discarding the
/// ParOutcome silently swallows a session Fault, which is exactly the
/// failure mode these entry points exist to surface (use the runPar*
/// forms if aborting on Fault is acceptable).
template <EffectSet E = Eff::Det, typename F>
[[nodiscard]] auto tryRunPar(F Body, const RunOptions &Opts) {
  static_assert(noFreeze(E) && noIO(E),
                "runPar requires NoFreeze and NoIO; use runParIO or "
                "runParThenFreeze");
  return detail::runParOnImpl<E>(Opts, std::move(Body));
}

/// tryRunPar on a fresh scheduler.
template <EffectSet E = Eff::Det, typename F>
[[nodiscard]] auto tryRunPar(F Body, SchedulerConfig Config = SchedulerConfig()) {
  RunOptions Opts;
  Opts.Config = Config;
  return tryRunPar<E>(std::move(Body), Opts);
}

/// tryRunPar on an existing scheduler (one session at a time).
template <EffectSet E = Eff::Det, typename F>
[[nodiscard]] auto tryRunParOn(Scheduler &Sched, F Body) {
  return tryRunPar<E>(std::move(Body), RunOptions::On(Sched));
}

/// Fault-aware runParIO: like tryRunPar but without the purity
/// restriction (quasi-deterministic freezes and IO-bit operations
/// allowed).
template <EffectSet E = Eff::FullIO, typename F>
[[nodiscard]] auto tryRunParIO(F Body, const RunOptions &Opts) {
  return detail::runParOnImpl<E>(Opts, std::move(Body));
}

template <EffectSet E = Eff::FullIO, typename F>
[[nodiscard]] auto tryRunParIO(F Body, SchedulerConfig Config = SchedulerConfig()) {
  RunOptions Opts;
  Opts.Config = Config;
  return tryRunParIO<E>(std::move(Body), Opts);
}

template <EffectSet E = Eff::FullIO, typename F>
[[nodiscard]] auto tryRunParIOOn(Scheduler &Sched, F Body) {
  return tryRunParIO<E>(std::move(Body), RunOptions::On(Sched));
}

/// Runs \p Body with explicit options and returns its pure result,
/// aborting the process on any session Fault (the classic LVish
/// signature). All failure paths funnel through ParOutcome::valueOrAbort,
/// the single fatalError choke point of the library.
template <EffectSet E = Eff::Det, typename F>
auto runPar(F Body, const RunOptions &Opts) {
  return tryRunPar<E>(std::move(Body), Opts).valueOrAbort();
}

/// Runs \p Body on a fresh scheduler and returns its pure result.
template <EffectSet E = Eff::Det, typename F>
auto runPar(F Body, SchedulerConfig Config = SchedulerConfig()) {
  RunOptions Opts;
  Opts.Config = Config;
  return runPar<E>(std::move(Body), Opts);
}

/// Runs \p Body on an existing scheduler (one session at a time). Useful
/// for benchmarks that amortize worker startup.
template <EffectSet E = Eff::Det, typename F>
auto runParOn(Scheduler &Sched, F Body) {
  return runPar<E>(std::move(Body), RunOptions::On(Sched));
}

/// Like runPar but without the purity restriction: quasi-deterministic
/// freezes and nondeterministic (IO-bit) operations are allowed.
template <EffectSet E = Eff::FullIO, typename F>
auto runParIO(F Body, const RunOptions &Opts) {
  return tryRunParIO<E>(std::move(Body), Opts).valueOrAbort();
}

template <EffectSet E = Eff::FullIO, typename F>
auto runParIO(F Body, SchedulerConfig Config = SchedulerConfig()) {
  RunOptions Opts;
  Opts.Config = Config;
  return runParIO<E>(std::move(Body), Opts);
}

template <EffectSet E = Eff::FullIO, typename F>
auto runParIOOn(Scheduler &Sched, F Body) {
  return runParIO<E>(std::move(Body), RunOptions::On(Sched));
}

/// Fault-aware runParThenFreeze: quiesce, freeze the returned LVar handle
/// on the way out, and surface any session Fault as a ParOutcome. The
/// explorer uses this to search freeze-free programs whose results are
/// read through the exit freeze.
template <EffectSet E = Eff::Det, typename F>
[[nodiscard]] auto tryRunParThenFreeze(F Body, RunOptions Opts = RunOptions()) {
  static_assert(noFreeze(E) && noIO(E),
                "the computation under runParThenFreeze must not freeze "
                "explicitly");
  Opts.FreezeOnExit = true;
  return detail::runParOnImpl<E>(Opts, std::move(Body));
}

/// Runs \p Body (which returns a shared_ptr to an LVar data structure),
/// waits for full quiescence, then freezes the structure "on the way out"
/// so its exact contents can be read - the always-deterministic freezing
/// pattern (runParThenFreeze in LVish).
template <EffectSet E = Eff::Det, typename F>
auto runParThenFreeze(F Body, SchedulerConfig Config = SchedulerConfig()) {
  static_assert(noFreeze(E) && noIO(E),
                "the computation under runParThenFreeze must not freeze "
                "explicitly");
  RunOptions Opts;
  Opts.Config = Config;
  Opts.FreezeOnExit = true;
  return detail::runParOnImpl<E>(Opts, std::move(Body)).valueOrAbort();
}

/// runParThenFreeze with explicit options (explore mode, stats, borrowed
/// scheduler); aborts on a session Fault like the classic signature.
template <EffectSet E = Eff::Det, typename F>
auto runParThenFreeze(F Body, RunOptions Opts) {
  return tryRunParThenFreeze<E>(std::move(Body), std::move(Opts))
      .valueOrAbort();
}

/// runParThenFreeze on an existing scheduler.
template <EffectSet E = Eff::Det, typename F>
auto runParThenFreezeOn(Scheduler &Sched, F Body) {
  static_assert(noFreeze(E) && noIO(E),
                "the computation under runParThenFreeze must not freeze "
                "explicitly");
  RunOptions Opts = RunOptions::On(Sched);
  Opts.FreezeOnExit = true;
  return detail::runParOnImpl<E>(Opts, std::move(Body)).valueOrAbort();
}

} // namespace lvish

#endif // LVISH_CORE_RUNPAR_H
