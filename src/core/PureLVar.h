//===- PureLVar.h - LVars over a pure lattice value --------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c PureLVar: "the simplest way to implement an LVar data structure (and
/// the easiest way to satisfy said proof obligations) is to represent it as
/// a single, pure value in a mutable box" (Section 2). The box is guarded
/// by the LVar's mutex; \c put takes the least upper bound of the old and
/// new states, and \c getPure performs a threshold read against a set of
/// pairwise-incompatible trigger sets, returning the index of whichever
/// trigger the state rose above.
///
/// Handlers ("latent event handlers that run when puts that change the
/// state of an LVar occur") are delivered under the footnote-6 asymmetric
/// gate, so registration never races a put and every state change is
/// delivered exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_CORE_PURELVAR_H
#define LVISH_CORE_PURELVAR_H

#include "src/check/LatticeChecker.h"
#include "src/core/LVarBase.h"
#include "src/core/Lattice.h"
#include "src/core/Par.h"

#include <concepts>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

namespace lvish {

/// A threshold set for PureLVar reads: a list of trigger sets, each a list
/// of lattice states. The read unblocks when the LVar's state is >= some
/// element of some trigger set, and returns that trigger set's index. The
/// trigger sets must be pairwise incompatible (the lub of states drawn from
/// two different sets must be top); \c checkPairwiseIncompatible verifies
/// this for lattices with a designated top.
template <typename D> using ThresholdSets = std::vector<std::vector<D>>;

/// LVar holding one pure lattice value; see file comment.
template <typename L>
  requires Lattice<L>
class PureLVar : public LVarBase {
public:
  using D = typename L::ValueType;
  /// Handlers observe whole new states (the "delta" of a pure LVar is the
  /// state itself).
  using DeltaType = D;
  using Handler = std::function<void(const D &)>;

  PureLVar(uint64_t SessionId, D Initial)
      : LVarBase(SessionId), State(std::move(Initial)) {
    Handlers.store(std::make_shared<const std::vector<Handler>>());
  }

  explicit PureLVar(uint64_t SessionId) : PureLVar(SessionId, L::bottom()) {}

  /// Lub write. Top-valued results are a deterministic error when the
  /// lattice designates a top; state changes on a frozen LVar likewise.
  void putValue(const D &V, Task *Writer) {
    checkSession(Writer);
    check::auditEffect(Writer, check::FxPut, "PureLVar put");
    fault::injectPoint(fault::Point::Put, Writer);
    obs::count(obs::Event::Puts);
    AsymmetricGate::FastGuard Gate(HandlerGate);
    bool Changed = false;
    D NewState{L::bottom()};
    {
      std::lock_guard<std::mutex> Lock(WaitMutex);
#if LVISH_CHECK
      // Spot-check the author's join-law obligations on the live pair.
      if (check::sampleHit())
        check::checkJoinLaws<L>(State, V);
#endif
      D Joined = L::join(State, V);
      if (!(Joined == State)) {
        if (isFrozen())
          putAfterFreezeError(Writer, this);
        if constexpr (LatticeWithTop<L>) {
          if (L::isTop(Joined))
            detail::raiseSessionFault(Writer, FaultCode::LatticeTop,
                                      "PureLVar put reached lattice top "
                                      "(conflicting writes)",
                                      debugName());
        }
        State = Joined;
        Changed = true;
        NewState = State;
      }
    }
    if (!Changed) {
      obs::count(obs::Event::NoOpJoins);
      obs::count(obs::Event::NotifySkips);
      return;
    }
    // Deliver the new state to handlers while still inside the gate's fast
    // section, then re-check blocked threshold reads.
    auto Snapshot = Handlers.load(std::memory_order_acquire);
    for (const Handler &H : *Snapshot)
      H(NewState);
    // State and every parked waiter live under WaitMutex (Bucket0.Mu), so
    // the mutex alone orders this notify's probe - no fence needed.
    notifyWaiters(Writer, NotifyOrder::MutexGuarded);
  }

  /// Registers a change handler and delivers the current state to it once.
  /// Runs on the slow side of the footnote-6 gate: no put can be in flight
  /// while the handler list is swapped, so delivery is exactly-once.
  void addHandlerRaw(Handler H, Task *Registrar) {
    checkSession(Registrar);
    AsymmetricGate::SlowGuard Gate(HandlerGate);
    auto Old = Handlers.load(std::memory_order_acquire);
    auto New = std::make_shared<std::vector<Handler>>(*Old);
    New->push_back(H);
    Handlers.store(std::shared_ptr<const std::vector<Handler>>(std::move(New)),
                   std::memory_order_release);
    D Current;
    {
      std::lock_guard<std::mutex> Lock(WaitMutex);
      Current = State;
    }
    if (!(Current == L::bottom()))
      H(Current);
  }

  /// Exact read of the current state; deterministic only after freezing or
  /// at session quiescence.
  D peek() const {
    std::lock_guard<std::mutex> Lock(WaitMutex);
    return State;
  }

  /// Debug verification that trigger sets are pairwise incompatible
  /// (requires a designated top). Cheap for the finite lattices where it is
  /// exhaustive, e.g. the parallel-and lattice of Figure 1. Routed through
  /// the LatticeChecker when the dynamic checkers are compiled in, so
  /// violations report with the checker diagnostics (and tests can observe
  /// them); falls back to a direct fatal check otherwise.
  static void checkPairwiseIncompatible(const ThresholdSets<D> &Sets) {
#if LVISH_CHECK
    check::checkThresholdSets<L>(Sets);
#else
    if constexpr (LatticeWithTop<L>) {
      for (size_t I = 0; I < Sets.size(); ++I)
        for (size_t J = I + 1; J < Sets.size(); ++J)
          for (const D &A : Sets[I])
            for (const D &B : Sets[J])
              if (!L::isTop(L::join(A, B)))
                // Static misuse of the API, not a session-scoped runtime
                // contract violation. lvish-lint: allow(fatal)
                fatalError("threshold trigger sets are not pairwise "
                           "incompatible; reads would be nondeterministic");
    }
#endif
  }

  /// Blocking read against a *general monotone threshold function*
  /// (footnote 5 of the paper: "in practice, we allow ourselves to use
  /// more general monotonic threshold functions" than trigger sets). The
  /// function must be monotone: once it returns a value for some state,
  /// it must return the SAME value for every state above it - that is
  /// the author's proof obligation, checked only by the determinism
  /// sweeps in tests.
  template <typename R> class GetWithAwaiter {
  public:
    using ThresholdFn = std::function<std::optional<R>(const D &)>;

    GetWithAwaiter(PureLVar &V, Task *T, ThresholdFn Fn)
        : Var(V), Tsk(T), Fn(std::move(Fn)) {}

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      return Var.parkGet(Tsk, H, this);
    }
    R await_resume() { return std::move(*Out); }

    bool tryCapture() {
      Out = Fn(Var.State);
      return Out.has_value();
    }

  private:
    PureLVar &Var;
    Task *Tsk;
    ThresholdFn Fn;
    std::optional<R> Out;
  };

  /// Blocking threshold read; see ThresholdSets.
  class GetAwaiter {
  public:
    GetAwaiter(PureLVar &V, Task *T, ThresholdSets<D> Sets)
        : Var(V), Tsk(T), Triggers(std::move(Sets)) {
#ifndef NDEBUG
      checkPairwiseIncompatible(Triggers);
#endif
    }

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> H) {
      return Var.parkGet(Tsk, H, this);
    }
    size_t await_resume() const { return *Out; }

    /// Under WaitMutex: activated iff the state is above some element of
    /// some trigger set.
    bool tryCapture() {
      for (size_t I = 0, E = Triggers.size(); I != E; ++I)
        for (const D &Trig : Triggers[I])
          if (latticeLeq<L>(Trig, Var.State)) {
            Out = I;
            return true;
          }
      return false;
    }

  private:
    PureLVar &Var;
    Task *Tsk;
    ThresholdSets<D> Triggers;
    std::optional<size_t> Out;
  };

private:
  friend class GetAwaiter;
  template <typename R> friend class GetWithAwaiter;
  D State; ///< Guarded by WaitMutex.
  std::atomic<std::shared_ptr<const std::vector<Handler>>> Handlers;
};

/// Allocates a PureLVar at its lattice bottom.
template <typename L, EffectSet E>
  requires Lattice<L>
std::shared_ptr<PureLVar<L>> newPureLVar(ParCtx<E> Ctx) {
  return std::make_shared<PureLVar<L>>(Ctx.sessionId());
}

/// Allocates a PureLVar at a given initial (bottom-reachable) state.
template <typename L, EffectSet E>
  requires Lattice<L>
std::shared_ptr<PureLVar<L>> newPureLVar(ParCtx<E> Ctx,
                                         typename L::ValueType Init) {
  return std::make_shared<PureLVar<L>>(Ctx.sessionId(), std::move(Init));
}

/// `putPureLVar`: lub write (requires HasPut).
template <EffectSet E, typename L>
  requires(hasPut(E) && Lattice<L>)
void putPureLVar(ParCtx<E> Ctx, PureLVar<L> &LV,
                 const typename L::ValueType &V) {
  LV.putValue(V, Ctx.task());
}

/// Threshold read returning the activated trigger index - the unified
/// spelling of the paper's `getPureLVar`.
template <EffectSet E, typename L>
  requires(hasGet(E) && Lattice<L>)
typename PureLVar<L>::GetAwaiter
get(ParCtx<E> Ctx, PureLVar<L> &LV,
    ThresholdSets<typename L::ValueType> Triggers) {
  return typename PureLVar<L>::GetAwaiter(LV, Ctx.task(),
                                          std::move(Triggers));
}

/// General monotone-threshold read (footnote 5): blocks until \p Fn
/// returns an engaged optional on the LVar's state, and returns its
/// value. \p Fn must be monotone (stable above its activation point).
/// The result type is deduced from the callable's optional return.
template <EffectSet E, typename L, typename FnT>
  requires(hasGet(E) && Lattice<L> &&
           std::invocable<FnT &, const typename L::ValueType &>)
auto get(ParCtx<E> Ctx, PureLVar<L> &LV, FnT Fn) {
  using OptR = std::invoke_result_t<FnT &, const typename L::ValueType &>;
  using R = typename OptR::value_type;
  return typename PureLVar<L>::template GetWithAwaiter<R>(LV, Ctx.task(),
                                                          std::move(Fn));
}

/// Freezes and returns the exact state (requires HasFreeze).
template <EffectSet E, typename L>
  requires(hasFreeze(E) && Lattice<L>)
typename L::ValueType freezePureLVar(ParCtx<E> Ctx, PureLVar<L> &LV) {
  LV.checkSession(Ctx.task());
  check::auditEffect(Ctx.task(), check::FxFreeze, "PureLVar freeze");
  LV.markFrozen();
  return LV.peek();
}

} // namespace lvish

#endif // LVISH_CORE_PURELVAR_H
