//===- SchedulePlan.h - Schedule decision engines ---------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete ScheduleCtl engines behind controlled-scheduling test mode
/// (DESIGN.md Section 12). One \c Engine drives one session; it decides
/// every scheduling step the scheduler delegates through ExploreHooks.h
/// and records the full decision log, so any run - found by random
/// search, PCT priorities, or bounded enumeration - can be replayed
/// bit-for-bit from a compact printable string.
///
/// Modes:
///  * Random    - every decision uniform from a SplitMix64 stream.
///  * Pct       - PCT-style (Burckhardt et al., "A Randomized Scheduler
///                with Probabilistic Guarantees of Finding Bugs"): each
///                virtual worker gets a seeded priority, the
///                highest-priority worker's move wins, and a bounded
///                number of seeded change points demote the running
///                worker, forcing a preemption.
///  * Replay    - consume a recorded decision-index list; decisions past
///                the end of the list take the first option (index 0), so
///                a *shrunk* (truncated, zeroed) log is still a complete
///                schedule.
///  * Enumerate - follow a forced decision prefix, then take the
///                non-preempting default (the last-run worker continues)
///                for the rest; the driver in Explorer.h turns this into
///                a DFS over all schedules within a preemption bound.
///
/// All randomness comes from the seeded SplitMix64 plan - never from raw
/// RNG sources - which lvish-lint's explore-rng rule enforces for this
/// directory.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_EXPLORE_SCHEDULEPLAN_H
#define LVISH_EXPLORE_SCHEDULEPLAN_H

#include "src/sched/ExploreHooks.h"
#include "src/support/SplitMix.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lvish {
namespace explore {

/// Whether a log slot was a worker step, a wake/drain ordering pick, or a
/// bounded-stream backpressure credit (which of N parked producers a
/// consumer's advance resumes first). New kinds append at the end so the
/// canonical rank order of existing replay strings never shifts.
enum class DecisionKind : uint8_t { Step, Pick, Backpressure };

/// One recorded decision. \c Arity and \c ContinueIdx are observations of
/// the run (what was possible), not inputs: replay only needs \c Chosen,
/// but enumeration and shrinking use them to navigate the schedule space.
struct Decision {
  uint32_t Chosen = 0; ///< Option index taken.
  uint32_t Arity = 1;  ///< Number of options that were available.
  DecisionKind Kind = DecisionKind::Step;
  /// Step decisions: index of the non-preempting option (the last-run
  /// worker popping its own deque), or ~0u when no such option existed.
  uint32_t ContinueIdx = ~0u;
};

/// A parsed replay string: everything needed to re-run and verify a
/// schedule. \c PedHash pins the run bit-for-bit: a replay that resumes
/// the same tasks in the same order reproduces it exactly.
struct ReplaySpec {
  unsigned VirtualWorkers = 2;
  std::vector<uint32_t> Decisions;
  uint64_t PedHash = 0;
};

/// Renders a replay string: "lvx1:w<N>:h<hex16>:<d0>.<d1>..." (the
/// decision list may be empty: "lvx1:w2:h0000000000000000:").
std::string encodeReplay(const ReplaySpec &Spec);

/// Parses encodeReplay's format; std::nullopt on malformed input.
std::optional<ReplaySpec> decodeReplay(const std::string &S);

/// One session's schedule controller; see file comment.
class Engine final : public ScheduleCtl {
public:
  enum class Mode : uint8_t { Random, Pct, Replay, Enumerate };

  /// Uniform seeded random schedule.
  static Engine random(uint64_t Seed, unsigned VirtualWorkers = 2);
  /// PCT-style random-priority schedule with \p ChangePoints seeded
  /// priority demotions.
  static Engine pct(uint64_t Seed, unsigned VirtualWorkers = 2,
                    unsigned ChangePoints = 3);
  /// Replays \p Decisions; past the end, the first option is taken.
  static Engine replay(std::vector<uint32_t> Decisions,
                       unsigned VirtualWorkers = 2);
  /// Replays \p Spec.Decisions (VirtualWorkers from the spec).
  static Engine replay(const ReplaySpec &Spec);
  /// Forced \p Prefix, then the non-preempting default (enumeration DFS).
  static Engine enumerate(std::vector<uint32_t> Prefix,
                          unsigned VirtualWorkers = 2);

  unsigned virtualWorkers() const { return Workers; }
  Mode mode() const { return EngineMode; }

  // ScheduleCtl - called by the scheduler on the session thread.
  unsigned onStep(const StepOption *Options, unsigned N) override;
  unsigned onPick(unsigned N) override;
  unsigned onBackpressure(unsigned N) override;
  void onResume(const Pedigree &Ped) override;

  // Post-run interrogation.
  const std::vector<Decision> &log() const { return Log; }
  /// The flat chosen-index list (what replay() takes back).
  std::vector<uint32_t> chosen() const;
  /// Canonical replay string for this run's full decision log.
  std::string replayString() const;
  /// Order-sensitive hash of every resumed task's pedigree: two runs with
  /// equal hashes resumed the same fork-tree nodes in the same order.
  uint64_t pedigreeHash() const { return PedHash; }
  /// Tasks resumed (or reaped-from-queue) under this engine.
  uint64_t steps() const { return Steps; }
  /// Step decisions that had a non-preempting continue option available
  /// and did not take it.
  unsigned preemptions() const { return Preemptions; }
  /// Replay/Enumerate: true when an input decision index was >= the
  /// arity actually observed (the schedule no longer matches the log's
  /// program; the index was clamped to stay deterministic).
  bool inputClamped() const { return Clamped; }

private:
  Engine(Mode M, uint64_t Seed, unsigned VirtualWorkers);

  unsigned decide(unsigned N, DecisionKind Kind, uint32_t ContinueIdx,
                  const StepOption *Options);
  unsigned pickPct(const StepOption *Options, unsigned N);

  Mode EngineMode;
  unsigned Workers;
  SplitMix64 Rng;

  /// Replay/Enumerate input: forced decision indices.
  std::vector<uint32_t> Input;

  /// PCT state: per-worker priorities (higher runs first) and the budget
  /// of remaining seeded demotions.
  std::vector<uint64_t> Priorities;
  unsigned ChangeBudget = 0;
  uint64_t DemoteCounter = 0;

  std::vector<Decision> Log;
  int LastWorker = -1;
  uint64_t PedHash = 0;
  uint64_t Steps = 0;
  unsigned Preemptions = 0;
  bool Clamped = false;
};

} // namespace explore
} // namespace lvish

#endif // LVISH_EXPLORE_SCHEDULEPLAN_H
