//===- Explorer.h - Schedule search, enumeration, shrinking -----*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Search drivers over the schedule engines (SchedulePlan.h): run a
/// program under many controlled schedules looking for a run whose
/// ParOutcome is a Fault, then shrink the failing decision log and report
/// a compact replay string that reproduces the failure bit-for-bit.
///
/// A "program" here is any callable RunOptions -> ParOutcome<T>, i.e. a
/// thin wrapper that calls tryRunPar/tryRunParIO with a body of whatever
/// effect level it wants - the drivers only need ok()/fault():
///
///   ParOutcome<int> prog(const RunOptions &O) {
///     return tryRunParIO<Eff::FullIO>(body, O);
///   }
///   auto R = explore::searchPct(prog);                // <= 500 schedules
///   if (R.Failure)
///     FAIL() << R.Failure->Replay;                    // paste into a test
///
/// Three strategies:
///  * searchRandom  - uniform seeded schedules, seeds Seed, Seed+1, ...
///  * searchPct     - PCT-style priority schedules (better bug-depth
///                    guarantees for races needing few ordering points).
///  * enumerateBounded - DFS over *all* schedules whose preemption count
///                    is <= PreemptionBound (Musuvathi & Qadeer's
///                    iterative context bounding): most races need very
///                    few preemptions, so a tiny bound covers the
///                    interesting space of a small program exhaustively.
///
/// The program must be re-runnable: each schedule runs it in a fresh
/// session (faults compose as ParOutcome values, never aborts).
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_EXPLORE_EXPLORER_H
#define LVISH_EXPLORE_EXPLORER_H

#include "src/core/RunPar.h"
#include "src/explore/SchedulePlan.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace lvish {
namespace explore {

/// Options for this session's engine: NumWorkers mirrors the engine's
/// virtual worker count so RunOptions::Explore sizes the scheduler right.
inline RunOptions sessionOptions(Engine &E) {
  return RunOptions::Explore(E, E.virtualWorkers());
}

/// Search knobs; the defaults match the smoke profile ci.sh uses.
struct SearchOptions {
  unsigned VirtualWorkers = 2;
  uint64_t Seed = 0x6c76697368ULL; // "lvish"
  /// Schedule budget for the random/PCT searches (the --schedules N of
  /// the harness; tests read LVISH_EXPLORE_SCHEDULES to override).
  unsigned Schedules = 500;
  unsigned PctChangePoints = 3;
  /// Preemption bound for enumerateBounded.
  unsigned PreemptionBound = 2;
  /// Minimize a failing log before reporting it.
  bool Shrink = true;
  /// Safety valve for enumerateBounded on unexpectedly large programs.
  unsigned MaxExhaustive = 100000;
  /// Optional per-schedule observer, called after every run with the
  /// engine in its post-run state (log, pedigree hash, preemptions).
  /// Tests use it to assert coverage properties of the search.
  std::function<void(const Engine &)> OnSchedule;
};

/// A failing schedule, post-shrink.
struct FoundFailure {
  Fault F;
  /// Replay string reproducing the failure (shrunk when Shrink was set);
  /// decodeReplay + Engine::replay re-runs it bit-for-bit.
  std::string Replay;
  /// Which schedule (0-based) of the search first failed.
  unsigned ScheduleIndex = 0;
  /// Candidate replays executed while shrinking.
  unsigned ShrinkRuns = 0;
  /// Whether Replay was confirmed to reproduce the failure: with Shrink
  /// off it is the failing run's own log; with Shrink on, a verify run
  /// re-checked it (falling back to the unshrunk log if needed). False
  /// means the program is not schedule-deterministic - even the unshrunk
  /// log stopped failing on re-run - and Replay (PedHash 0) is only the
  /// schedule that happened to fail once, not a reproducer.
  bool Verified = true;
};

struct SearchResult {
  unsigned SchedulesRun = 0;
  uint64_t StepsTotal = 0;
  uint64_t DecisionsTotal = 0;
  /// enumerateBounded only: the whole bounded space was covered (always
  /// false when a failure stopped the search early).
  bool Exhausted = false;
  std::optional<FoundFailure> Failure;
};

/// The deterministic identity of a failure: same code at the same
/// fork-tree position. Message text (which embeds worker ids) and
/// diagnostics stay out of it.
inline std::string failureSig(const Fault &F) {
  std::string S = faultCodeName(F.Code);
  S += '@';
  S += F.Pedigree.empty() ? "<root>" : F.Pedigree.c_str();
  return S;
}

namespace detail {

/// Runs \p Program once under \p Eng; returns its fault, if any.
template <typename F> std::optional<Fault> runOnce(F &Program, Engine &Eng) {
  auto Out = Program(sessionOptions(Eng));
  if (Out.ok())
    return std::nullopt;
  return Out.fault();
}

/// Greedy shrink of a failing decision log. Two passes:
///  1. chunk zeroing (delta-debugging flavored): try replacing windows of
///     decisions with 0 (the replay default), halving the window size;
///  2. tail trim: drop trailing zeros (out-of-log decisions already
///     default to 0, so this is a pure representation shrink).
/// A candidate is kept only when it still fails with the same failureSig.
/// Returns the final log plus the pedigree hash of its verifying run.
template <typename F>
FoundFailure shrinkFailure(F &Program, unsigned Workers,
                           std::vector<uint32_t> Log, Fault Seed) {
  FoundFailure Found;
  std::string WantSig = failureSig(Seed);
  Found.F = std::move(Seed);
  uint64_t FinalHash = 0;
  const std::vector<uint32_t> Orig = Log;

  auto StillFails = [&](const std::vector<uint32_t> &Cand,
                        uint64_t *HashOut) {
    Engine Eng = Engine::replay(Cand, Workers);
    obs::count(obs::Event::ExploreShrinkRuns);
    ++Found.ShrinkRuns;
    std::optional<Fault> Flt = runOnce(Program, Eng);
    if (!Flt || failureSig(*Flt) != WantSig)
      return false;
    if (HashOut)
      *HashOut = Eng.pedigreeHash();
    return true;
  };

  // Pass 1: zero ever-smaller windows while the failure persists.
  for (size_t Window = Log.size(); Window >= 1; Window /= 2) {
    for (size_t Start = 0; Start < Log.size(); Start += Window) {
      size_t End = Start + Window < Log.size() ? Start + Window : Log.size();
      bool AnyNonZero = false;
      for (size_t I = Start; I < End; ++I)
        AnyNonZero |= Log[I] != 0;
      if (!AnyNonZero)
        continue;
      std::vector<uint32_t> Cand = Log;
      for (size_t I = Start; I < End; ++I)
        Cand[I] = 0;
      if (StillFails(Cand, nullptr))
        Log = std::move(Cand);
    }
    if (Window == 1)
      break;
  }
  // Pass 2: trailing zeros are representation-only (replay defaults to 0
  // past the log), so drop them without re-running.
  while (!Log.empty() && Log.back() == 0)
    Log.pop_back();

  // Verifying run: pins the replay hash. A program that is not perfectly
  // schedule-deterministic (possible under Eff::FullIO) can survive the
  // shrink passes yet diverge here; fall back to the unshrunk log and
  // re-verify THAT, and if even the original no longer reproduces, flag
  // the result instead of reporting a replay string that does not fail.
  if (!StillFails(Log, &FinalHash)) {
    Log = Orig;
    while (!Log.empty() && Log.back() == 0)
      Log.pop_back();
    Found.Verified = StillFails(Log, &FinalHash);
  }

  ReplaySpec Spec;
  Spec.VirtualWorkers = Workers;
  Spec.Decisions = std::move(Log);
  Spec.PedHash = FinalHash;
  Found.Replay = encodeReplay(Spec);
  return Found;
}

} // namespace detail

/// Seeded schedule search; \p UsePct selects PCT priorities over uniform
/// random. Stops at the first failing schedule.
template <typename F>
SearchResult search(F Program, const SearchOptions &O, bool UsePct) {
  SearchResult R;
  for (unsigned I = 0; I < O.Schedules; ++I) {
    Engine Eng = UsePct ? Engine::pct(O.Seed + I, O.VirtualWorkers,
                                      O.PctChangePoints)
                        : Engine::random(O.Seed + I, O.VirtualWorkers);
    std::optional<Fault> Flt = detail::runOnce(Program, Eng);
    ++R.SchedulesRun;
    R.StepsTotal += Eng.steps();
    R.DecisionsTotal += Eng.log().size();
    if (O.OnSchedule)
      O.OnSchedule(Eng);
    if (!Flt)
      continue;
    FoundFailure Found =
        O.Shrink ? detail::shrinkFailure(Program, O.VirtualWorkers,
                                         Eng.chosen(), std::move(*Flt))
                 : FoundFailure{std::move(*Flt), Eng.replayString(), 0, 0};
    Found.ScheduleIndex = I;
    R.Failure = std::move(Found);
    return R;
  }
  return R;
}

template <typename F>
SearchResult searchRandom(F Program, const SearchOptions &O = SearchOptions()) {
  return search(std::move(Program), O, /*UsePct=*/false);
}

template <typename F>
SearchResult searchPct(F Program, const SearchOptions &O = SearchOptions()) {
  return search(std::move(Program), O, /*UsePct=*/true);
}

/// Bounded exhaustive enumeration: DFS over every schedule with at most
/// O.PreemptionBound preemptions (wake/drain ordering picks are free -
/// they are not preemptions). Stops early on the first failure; otherwise
/// Exhausted reports full coverage of the bounded space.
template <typename F>
SearchResult enumerateBounded(F Program,
                              const SearchOptions &O = SearchOptions()) {
  SearchResult R;
  auto IsPreempt = [](const Decision &D, uint32_t Choice) {
    return D.Kind == DecisionKind::Step && D.ContinueIdx != ~0u &&
           Choice != D.ContinueIdx;
  };
  // The DFS walks each position's options in a canonical order keyed by
  // RANK, not raw option index: rank 0 is the non-preempting default the
  // engine visits first (ContinueIdx when one exists, else option 0), and
  // ranks 1.. are the remaining options in ascending index order. Bumping
  // the rank is what makes the enumeration complete: options are listed
  // worker-major, so ContinueIdx is frequently > 0 and a raw Chosen+1
  // bump would skip every option below it - exactly the in-bound
  // preemptions by lower-indexed workers.
  auto RankOf = [](const Decision &D) -> uint32_t {
    if (D.ContinueIdx == ~0u || D.ContinueIdx >= D.Arity)
      return D.Chosen;
    if (D.Chosen == D.ContinueIdx)
      return 0;
    return D.Chosen < D.ContinueIdx ? D.Chosen + 1 : D.Chosen;
  };
  auto OptionAtRank = [](const Decision &D, uint32_t Rank) -> uint32_t {
    if (D.ContinueIdx == ~0u || D.ContinueIdx >= D.Arity)
      return Rank;
    if (Rank == 0)
      return D.ContinueIdx;
    return Rank - 1 < D.ContinueIdx ? Rank - 1 : Rank;
  };
  std::vector<uint32_t> Prefix;
  bool More = true;
  while (More && R.SchedulesRun < O.MaxExhaustive) {
    Engine Eng = Engine::enumerate(Prefix, O.VirtualWorkers);
    std::optional<Fault> Flt = detail::runOnce(Program, Eng);
    ++R.SchedulesRun;
    R.StepsTotal += Eng.steps();
    R.DecisionsTotal += Eng.log().size();
    if (O.OnSchedule)
      O.OnSchedule(Eng);
    if (Flt) {
      FoundFailure Found =
          O.Shrink ? detail::shrinkFailure(Program, O.VirtualWorkers,
                                           Eng.chosen(), std::move(*Flt))
                   : FoundFailure{std::move(*Flt), Eng.replayString(), 0, 0};
      Found.ScheduleIndex = R.SchedulesRun - 1;
      R.Failure = std::move(Found);
      return R;
    }
    // Next prefix: bump the rightmost decision that still has unexplored
    // options within the preemption bound. Deterministic replay makes
    // this sound: an unchanged prefix reproduces the same options (same
    // arity, same continue index) at every position up to the change.
    const std::vector<Decision> &Log = Eng.log();
    More = false;
    // Preemptions contributed by Log[0..P-1], updated as P walks left.
    std::vector<unsigned> PreBefore(Log.size() + 1, 0);
    for (size_t I = 0; I < Log.size(); ++I)
      PreBefore[I + 1] = PreBefore[I] + (IsPreempt(Log[I], Log[I].Chosen) ? 1 : 0);
    for (size_t P = Log.size(); P-- > 0;) {
      for (uint32_t Rank = RankOf(Log[P]) + 1; Rank < Log[P].Arity; ++Rank) {
        uint32_t Next = OptionAtRank(Log[P], Rank);
        if (PreBefore[P] + (IsPreempt(Log[P], Next) ? 1 : 0) >
            O.PreemptionBound)
          continue;
        Prefix.resize(P);
        for (size_t I = 0; I < P; ++I)
          Prefix[I] = Log[I].Chosen;
        Prefix.push_back(Next);
        More = true;
        break;
      }
      if (More)
        break;
    }
  }
  R.Exhausted = !More;
  return R;
}

/// Re-runs a decoded replay once. \p BitIdentical (optional) reports
/// whether the run's pedigree hash matched the spec's committed hash -
/// the bit-for-bit reproduction check the regression corpus asserts.
template <typename F>
std::optional<Fault> replaySession(F Program, const ReplaySpec &Spec,
                                   bool *BitIdentical = nullptr) {
  Engine Eng = Engine::replay(Spec);
  std::optional<Fault> Flt = detail::runOnce(Program, Eng);
  if (BitIdentical)
    *BitIdentical = Eng.pedigreeHash() == Spec.PedHash;
  return Flt;
}

} // namespace explore
} // namespace lvish

#endif // LVISH_EXPLORE_EXPLORER_H
