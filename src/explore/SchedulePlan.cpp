//===- SchedulePlan.cpp - Schedule decision engines -----------------------===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "src/explore/SchedulePlan.h"

#include "src/obs/Telemetry.h"
#include "src/support/Assert.h"

#include <cassert>
#include <cstdio>

using namespace lvish;
using namespace lvish::explore;

std::string explore::encodeReplay(const ReplaySpec &Spec) {
  char Head[64];
  std::snprintf(Head, sizeof(Head), "lvx1:w%u:h%016llx:", Spec.VirtualWorkers,
                static_cast<unsigned long long>(Spec.PedHash));
  std::string S = Head;
  for (size_t I = 0; I < Spec.Decisions.size(); ++I) {
    if (I)
      S += '.';
    S += std::to_string(Spec.Decisions[I]);
  }
  return S;
}

std::optional<ReplaySpec> explore::decodeReplay(const std::string &S) {
  ReplaySpec Spec;
  unsigned long long Hash = 0;
  int Consumed = 0;
  if (std::sscanf(S.c_str(), "lvx1:w%u:h%16llx:%n", &Spec.VirtualWorkers,
                  &Hash, &Consumed) < 2 ||
      Consumed <= 0 || Spec.VirtualWorkers == 0)
    return std::nullopt;
  Spec.PedHash = Hash;
  size_t Pos = static_cast<size_t>(Consumed);
  while (Pos < S.size()) {
    size_t Dot = S.find('.', Pos);
    size_t End = Dot == std::string::npos ? S.size() : Dot;
    if (End == Pos)
      return std::nullopt; // Empty segment ("1..2").
    uint32_t V = 0;
    for (size_t I = Pos; I < End; ++I) {
      char C = S[I];
      if (C < '0' || C > '9')
        return std::nullopt;
      uint32_t Digit = static_cast<uint32_t>(C - '0');
      if (V > (UINT32_MAX - Digit) / 10)
        return std::nullopt; // Decision overflows uint32_t: corrupt string.
      V = V * 10 + Digit;
    }
    Spec.Decisions.push_back(V);
    Pos = End + (Dot == std::string::npos ? 0 : 1);
    if (Dot != std::string::npos && Pos == S.size())
      return std::nullopt; // Trailing dot.
    if (Dot == std::string::npos)
      break;
  }
  return Spec;
}

Engine::Engine(Mode M, uint64_t Seed, unsigned VirtualWorkers)
    : EngineMode(M), Workers(VirtualWorkers), Rng(Seed) {
  assert(Workers > 0 && "an engine needs at least one virtual worker");
  obs::count(obs::Event::ExploreSchedules);
}

Engine Engine::random(uint64_t Seed, unsigned VirtualWorkers) {
  return Engine(Mode::Random, Seed, VirtualWorkers);
}

Engine Engine::pct(uint64_t Seed, unsigned VirtualWorkers,
                   unsigned ChangePoints) {
  Engine E(Mode::Pct, Seed, VirtualWorkers);
  E.ChangeBudget = ChangePoints;
  // Distinct seeded starting priorities, all far above the demotion range
  // so a demoted worker stays demoted until every worker has been.
  E.Priorities.resize(VirtualWorkers);
  for (unsigned W = 0; W < VirtualWorkers; ++W)
    E.Priorities[W] = (uint64_t{1} << 32) + E.Rng.next() % (uint64_t{1} << 31);
  return E;
}

Engine Engine::replay(std::vector<uint32_t> Decisions,
                      unsigned VirtualWorkers) {
  Engine E(Mode::Replay, 0, VirtualWorkers);
  E.Input = std::move(Decisions);
  return E;
}

Engine Engine::replay(const ReplaySpec &Spec) {
  return replay(Spec.Decisions, Spec.VirtualWorkers);
}

Engine Engine::enumerate(std::vector<uint32_t> Prefix,
                         unsigned VirtualWorkers) {
  Engine E(Mode::Enumerate, 0, VirtualWorkers);
  E.Input = std::move(Prefix);
  return E;
}

unsigned Engine::pickPct(const StepOption *Options, unsigned N) {
  // Seeded change point: demote the running worker to the bottom of the
  // priority range, forcing someone else ahead of it (the "d change
  // points" of PCT). The demotion schedule is a pure hash of the seed
  // stream, so the whole run stays a function of (seed, program).
  if (ChangeBudget > 0 && LastWorker >= 0 &&
      Rng.nextBounded(8) == 0) {
    Priorities[static_cast<unsigned>(LastWorker)] = DemoteCounter++;
    --ChangeBudget;
  }
  // Highest-priority worker that has an option wins; among that worker's
  // own options (inject vs steal victims) draw from the seeded stream so
  // different seeds explore different acquisition paths.
  unsigned BestWorker = Options[0].Worker;
  for (unsigned I = 1; I < N; ++I)
    if (Priorities[Options[I].Worker] > Priorities[BestWorker])
      BestWorker = Options[I].Worker;
  unsigned First = N, Count = 0;
  for (unsigned I = 0; I < N; ++I)
    if (Options[I].Worker == BestWorker) {
      if (First == N)
        First = I;
      ++Count;
    }
  // A worker's options are contiguous in the scheduler's enumeration.
  return First + static_cast<unsigned>(Count > 1 ? Rng.nextBounded(Count) : 0);
}

unsigned Engine::decide(unsigned N, DecisionKind Kind, uint32_t ContinueIdx,
                        const StepOption *Options) {
  unsigned Chosen;
  size_t Slot = Log.size();
  if (Slot < Input.size()) {
    Chosen = Input[Slot];
    if (Chosen >= N) {
      // The input log no longer matches this program point (possible
      // mid-shrink); clamp so the run stays deterministic and flag it.
      Chosen = N - 1;
      Clamped = true;
    }
  } else {
    switch (EngineMode) {
    case Mode::Random:
      Chosen = static_cast<unsigned>(Rng.nextBounded(N));
      break;
    case Mode::Pct:
      Chosen = (Kind == DecisionKind::Step && Options)
                   ? pickPct(Options, N)
                   : static_cast<unsigned>(Rng.nextBounded(N));
      break;
    case Mode::Replay:
      Chosen = 0;
      break;
    case Mode::Enumerate:
      Chosen = ContinueIdx != ~0u ? ContinueIdx : 0;
      break;
    }
  }
  Log.push_back({Chosen, N, Kind, ContinueIdx});
  if (Kind == DecisionKind::Step) {
    if (ContinueIdx != ~0u && Chosen != ContinueIdx)
      ++Preemptions;
    if (Options)
      LastWorker = static_cast<int>(Options[Chosen].Worker);
  }
  return Chosen;
}

unsigned Engine::onStep(const StepOption *Options, unsigned N) {
  assert(N >= 1);
  // The non-preempting default: the worker that ran the previous slice
  // continues with its own pop. (If it has a pop option, that is its only
  // option - the scheduler forces own-work-first per worker.)
  uint32_t ContinueIdx = ~0u;
  if (LastWorker >= 0)
    for (unsigned I = 0; I < N; ++I)
      if (Options[I].Worker == static_cast<uint16_t>(LastWorker) &&
          Options[I].Kind == StepKind::Pop) {
        ContinueIdx = I;
        break;
      }
  return decide(N, DecisionKind::Step, ContinueIdx, Options);
}

unsigned Engine::onPick(unsigned N) {
  assert(N >= 2);
  return decide(N, DecisionKind::Pick, ~0u, nullptr);
}

unsigned Engine::onBackpressure(unsigned N) {
  assert(N >= 2);
  return decide(N, DecisionKind::Backpressure, ~0u, nullptr);
}

void Engine::onResume(const Pedigree &Ped) {
  PedHash = hashCombine(PedHash, Ped.hash());
  ++Steps;
  obs::count(obs::Event::ExploreSteps);
}

std::vector<uint32_t> Engine::chosen() const {
  std::vector<uint32_t> Out;
  Out.reserve(Log.size());
  for (const Decision &D : Log)
    Out.push_back(D.Chosen);
  return Out;
}

std::string Engine::replayString() const {
  ReplaySpec Spec;
  Spec.VirtualWorkers = Workers;
  Spec.Decisions = chosen();
  Spec.PedHash = PedHash;
  return encodeReplay(Spec);
}
