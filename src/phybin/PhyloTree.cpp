//===- PhyloTree.cpp - Phylogenetic tree representation --------------------===//

#include "src/phybin/PhyloTree.h"

#include <vector>

using namespace lvish;
using namespace lvish::phybin;

bool PhyloTree::validate(std::string *Error) const {
  auto Fail = [Error](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (Nodes.empty() || Root == InvalidNode ||
      size_t(Root) >= Nodes.size())
    return Fail("missing or out-of-range root");
  if (Nodes[size_t(Root)].Parent != InvalidNode)
    return Fail("root has a parent");
  // Every node reachable from the root exactly once; links consistent.
  std::vector<char> Seen(Nodes.size(), 0);
  std::vector<NodeId> Stack{Root};
  size_t Count = 0;
  while (!Stack.empty()) {
    NodeId N = Stack.back();
    Stack.pop_back();
    if (Seen[size_t(N)])
      return Fail("node reachable twice (cycle or shared subtree)");
    Seen[size_t(N)] = 1;
    ++Count;
    const PhyloNode &Nd = Nodes[size_t(N)];
    if (Nd.isLeaf() && Nd.Species < 0)
      return Fail("unlabeled leaf");
    if (!Nd.isLeaf() && Nd.Species >= 0)
      return Fail("labeled internal node");
    for (NodeId C : Nd.Children) {
      if (size_t(C) >= Nodes.size())
        return Fail("child index out of range");
      if (Nodes[size_t(C)].Parent != N)
        return Fail("child's parent link is inconsistent");
      Stack.push_back(C);
    }
  }
  if (Count != Nodes.size())
    return Fail("unreachable nodes in arena");
  return true;
}

bool TreeSet::validate(std::string *Error) const {
  for (size_t TI = 0; TI < Trees.size(); ++TI) {
    if (!Trees[TI].validate(Error))
      return false;
    std::vector<char> Present(SpeciesNames.size(), 0);
    size_t Leaves = 0;
    for (size_t N = 0; N < Trees[TI].numNodes(); ++N) {
      const PhyloNode &Nd = Trees[TI].node(static_cast<NodeId>(N));
      if (!Nd.isLeaf())
        continue;
      ++Leaves;
      if (Nd.Species < 0 ||
          size_t(Nd.Species) >= SpeciesNames.size()) {
        if (Error)
          *Error = "leaf species index out of range";
        return false;
      }
      if (Present[size_t(Nd.Species)]) {
        if (Error)
          *Error = "species appears on two leaves of one tree";
        return false;
      }
      Present[size_t(Nd.Species)] = 1;
    }
    if (Leaves != SpeciesNames.size()) {
      if (Error)
        *Error = "tree does not cover the species universe";
      return false;
    }
  }
  return true;
}
