//===- Cluster.cpp - Hierarchical clustering of tree sets ------------------===//

#include "src/phybin/Cluster.h"

#include <algorithm>
#include <limits>
#include <map>

using namespace lvish;
using namespace lvish::phybin;

Dendrogram phybin::clusterSingleLinkage(const DistanceMatrix &D) {
  // SLINK (Sibson 1973). Processes points incrementally, maintaining the
  // pointer representation (Pi, Lambda).
  size_t N = D.size();
  Dendrogram Out;
  Out.Pi.assign(N, 0);
  Out.Lambda.assign(N, std::numeric_limits<double>::infinity());
  if (N == 0)
    return Out;
  std::vector<double> M(N, 0);
  for (size_t I = 0; I < N; ++I) {
    Out.Pi[I] = I;
    Out.Lambda[I] = std::numeric_limits<double>::infinity();
    for (size_t J = 0; J < I; ++J)
      M[J] = static_cast<double>(D.at(I, J));
    for (size_t J = 0; J < I; ++J) {
      if (Out.Lambda[J] >= M[J]) {
        M[Out.Pi[J]] = std::min(M[Out.Pi[J]], Out.Lambda[J]);
        Out.Lambda[J] = M[J];
        Out.Pi[J] = I;
      } else {
        M[Out.Pi[J]] = std::min(M[Out.Pi[J]], M[J]);
      }
    }
    for (size_t J = 0; J < I; ++J)
      if (Out.Lambda[J] >= Out.Lambda[Out.Pi[J]])
        Out.Pi[J] = I;
  }
  return Out;
}

std::vector<size_t> phybin::cutClusters(const Dendrogram &Dend,
                                        double MaxDistance) {
  // Union elements with their Pi target when the merge height is within
  // the cut; then renumber components by smallest member.
  size_t N = Dend.size();
  std::vector<size_t> Parent(N);
  for (size_t I = 0; I < N; ++I)
    Parent[I] = I;
  // Tiny union-find with path halving.
  auto Find = [&Parent](size_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  for (size_t I = 0; I < N; ++I)
    if (Dend.Lambda[I] <= MaxDistance) {
      size_t A = Find(I), B = Find(Dend.Pi[I]);
      if (A != B)
        Parent[std::max(A, B)] = std::min(A, B);
    }
  std::vector<size_t> Assignment(N);
  std::map<size_t, size_t> Renumber;
  for (size_t I = 0; I < N; ++I) {
    size_t Root = Find(I);
    auto [It, Inserted] = Renumber.emplace(Root, Renumber.size());
    (void)Inserted;
    Assignment[I] = It->second;
  }
  return Assignment;
}

std::string phybin::formatClusters(const std::vector<size_t> &Assignment) {
  size_t K = 0;
  for (size_t C : Assignment)
    K = std::max(K, C + 1);
  std::vector<std::vector<size_t>> Bins(K);
  for (size_t I = 0; I < Assignment.size(); ++I)
    Bins[Assignment[I]].push_back(I);
  std::string Out;
  for (size_t C = 0; C < K; ++C) {
    Out += "bin " + std::to_string(C) + " (" +
           std::to_string(Bins[C].size()) + " trees):";
    for (size_t T : Bins[C])
      Out += " " + std::to_string(T);
    Out += "\n";
  }
  return Out;
}
