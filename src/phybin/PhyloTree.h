//===- PhyloTree.h - Phylogenetic tree representation -----------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tree substrate for the PhyBin case study (Section 7.1): "a
/// phylogenetic tree represents a possible ancestry for a set of N species.
/// Leaf nodes in the tree are labeled with species' names, and the
/// structure of the tree represents a hypothesis about common ancestors."
///
/// Trees are stored as node arenas; leaves carry species indices into a
/// shared species table (a \c TreeSet holds many trees over one species
/// universe, the shape PhyBin consumes).
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_PHYBIN_PHYLOTREE_H
#define LVISH_PHYBIN_PHYLOTREE_H

#include <cstdint>
#include <string>
#include <vector>

namespace lvish {
namespace phybin {

/// Index of a node within its tree's arena.
using NodeId = int32_t;
inline constexpr NodeId InvalidNode = -1;

/// One tree node. Leaves have Species >= 0 and no children.
struct PhyloNode {
  NodeId Parent = InvalidNode;
  std::vector<NodeId> Children;
  int32_t Species = -1;    ///< Species index for leaves; -1 for internals.
  double BranchLength = 0; ///< Optional; not used by RF distance.

  bool isLeaf() const { return Children.empty(); }
};

/// An unordered rooted tree over a species universe. RF distance treats
/// trees as unrooted; the bipartition extraction (Bipartition.h) handles
/// that by canonicalizing each split.
class PhyloTree {
public:
  PhyloTree() = default;

  NodeId root() const { return Root; }
  void setRoot(NodeId N) { Root = N; }

  size_t numNodes() const { return Nodes.size(); }
  const PhyloNode &node(NodeId N) const { return Nodes[size_t(N)]; }
  PhyloNode &node(NodeId N) { return Nodes[size_t(N)]; }

  /// Appends a fresh node and returns its id.
  NodeId addNode() {
    Nodes.push_back(PhyloNode());
    return static_cast<NodeId>(Nodes.size() - 1);
  }

  /// Appends a leaf for species \p Species.
  NodeId addLeaf(int32_t Species) {
    NodeId N = addNode();
    Nodes[size_t(N)].Species = Species;
    return N;
  }

  /// Attaches \p Child under \p Parent (maintains both links).
  void attach(NodeId Parent, NodeId Child) {
    Nodes[size_t(Parent)].Children.push_back(Child);
    Nodes[size_t(Child)].Parent = Parent;
  }

  /// Number of leaves (counted).
  size_t countLeaves() const {
    size_t N = 0;
    for (const PhyloNode &Nd : Nodes)
      if (Nd.isLeaf())
        ++N;
    return N;
  }

  /// Structural well-formedness check (single root, parent/child links
  /// consistent, every leaf labeled). Used by tests and the parser.
  bool validate(std::string *Error = nullptr) const;

private:
  std::vector<PhyloNode> Nodes;
  NodeId Root = InvalidNode;
};

/// A collection of trees over one shared species table: PhyBin's input.
/// All trees must have exactly one leaf per species.
struct TreeSet {
  std::vector<std::string> SpeciesNames;
  std::vector<PhyloTree> Trees;

  size_t numSpecies() const { return SpeciesNames.size(); }
  size_t numTrees() const { return Trees.size(); }

  /// Checks every tree covers the species universe exactly once.
  bool validate(std::string *Error = nullptr) const;
};

} // namespace phybin
} // namespace lvish

#endif // LVISH_PHYBIN_PHYLOTREE_H
