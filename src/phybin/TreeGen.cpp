//===- TreeGen.cpp - Synthetic phylogenetic tree sets ----------------------===//

#include "src/phybin/TreeGen.h"

#include <cassert>
#include <string>

using namespace lvish;
using namespace lvish::phybin;

PhyloTree phybin::randomBinaryTree(size_t NumSpecies, SplitMix64 &Rng) {
  assert(NumSpecies >= 2 && "need at least two species");
  PhyloTree Tree;
  std::vector<NodeId> Roots;
  Roots.reserve(NumSpecies);
  for (size_t S = 0; S < NumSpecies; ++S)
    Roots.push_back(Tree.addLeaf(static_cast<int32_t>(S)));
  while (Roots.size() > 1) {
    size_t A = Rng.nextBounded(Roots.size());
    NodeId Left = Roots[A];
    Roots[A] = Roots.back();
    Roots.pop_back();
    size_t B = Rng.nextBounded(Roots.size());
    NodeId Right = Roots[B];
    NodeId Join = Tree.addNode();
    Tree.attach(Join, Left);
    Tree.attach(Join, Right);
    Roots[B] = Join;
  }
  Tree.setRoot(Roots.front());
  return Tree;
}

void phybin::mutateNNI(PhyloTree &Tree, size_t Moves, SplitMix64 &Rng) {
  // Collect mutable internal nodes (non-root internals with a parent).
  std::vector<NodeId> Internal;
  for (size_t N = 0; N < Tree.numNodes(); ++N) {
    NodeId Id = static_cast<NodeId>(N);
    const PhyloNode &Nd = Tree.node(Id);
    if (!Nd.isLeaf() && Nd.Parent != InvalidNode)
      Internal.push_back(Id);
  }
  if (Internal.empty())
    return;
  for (size_t M = 0; M < Moves; ++M) {
    NodeId V = Internal[Rng.nextBounded(Internal.size())];
    NodeId U = Tree.node(V).Parent;
    PhyloNode &Un = Tree.node(U);
    PhyloNode &Vn = Tree.node(V);
    // Pick a sibling of V under U and a child of V; swap them.
    size_t SibIdx = Rng.nextBounded(Un.Children.size());
    if (Un.Children[SibIdx] == V)
      SibIdx = (SibIdx + 1) % Un.Children.size();
    if (Un.Children[SibIdx] == V)
      continue; // U has only V as child; degenerate, skip.
    size_t ChildIdx = Rng.nextBounded(Vn.Children.size());
    NodeId Sib = Un.Children[SibIdx];
    NodeId Child = Vn.Children[ChildIdx];
    Un.Children[SibIdx] = Child;
    Vn.Children[ChildIdx] = Sib;
    Tree.node(Child).Parent = U;
    Tree.node(Sib).Parent = V;
  }
}

TreeSet phybin::generateTreeSet(size_t NumTrees, size_t NumSpecies,
                                size_t MutationsPerTree, uint64_t Seed) {
  TreeSet Out;
  Out.SpeciesNames.reserve(NumSpecies);
  for (size_t S = 0; S < NumSpecies; ++S)
    Out.SpeciesNames.push_back("sp" + std::to_string(S));
  SplitMix64 Rng(Seed);
  PhyloTree Base = randomBinaryTree(NumSpecies, Rng);
  Out.Trees.reserve(NumTrees);
  for (size_t T = 0; T < NumTrees; ++T) {
    PhyloTree Tree = Base;
    mutateNNI(Tree, MutationsPerTree, Rng);
    Out.Trees.push_back(std::move(Tree));
  }
  return Out;
}
