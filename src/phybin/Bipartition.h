//===- Bipartition.h - Tree bipartitions as bit vectors ---------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Each intermediate node of a tree can be seen as partitioning the set of
/// leaves into those below and above the node ... Identical trees convert
/// to the same set of bipartitions. Furthermore, after converting trees to
/// sets of bipartitions, set difference may be computed using standard set
/// data structures." (Section 7.1.)
///
/// A bipartition is encoded as a \c DenseBitset over the species universe -
/// the paper's \c DenseLabelSet - canonicalized so that species 0 is always
/// on the zero side (a split and its complement denote the same unrooted
/// edge). Trivial splits (single leaf / all-but-one) carry no topological
/// information and are omitted, following RF-distance convention.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_PHYBIN_BIPARTITION_H
#define LVISH_PHYBIN_BIPARTITION_H

#include "src/phybin/PhyloTree.h"
#include "src/support/DenseBitset.h"

#include <vector>

namespace lvish {
namespace phybin {

/// The paper's DenseLabelSet: one bipartition as a species bit vector.
using DenseLabelSet = DenseBitset;

/// Canonicalizes a split in place: complements it if species 0 is set, so
/// each unrooted edge has exactly one encoding.
void canonicalizeBipartition(DenseLabelSet &Split);

/// Extracts the canonical non-trivial bipartitions of \p Tree over a
/// universe of \p NumSpecies. Deterministic order (sorted).
std::vector<DenseLabelSet> extractBipartitions(const PhyloTree &Tree,
                                               size_t NumSpecies);

/// Symmetric-difference size between two *sorted* bipartition lists: the
/// Robinson-Foulds distance between their trees.
size_t symmetricDifferenceSize(const std::vector<DenseLabelSet> &A,
                               const std::vector<DenseLabelSet> &B);

} // namespace phybin
} // namespace lvish

#endif // LVISH_PHYBIN_BIPARTITION_H
