//===- Newick.h - Newick tree format parser/printer -------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader and writer for the Newick phylogenetic tree format, the input
/// format of PhyBin and the other tools in Table 1 (e.g. "(A:0.1,(B,C))R;").
/// Supported: nested parenthesized groups, leaf and internal labels,
/// branch lengths, quoted labels, whitespace. Errors are reported with a
/// character offset rather than thrown.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_PHYBIN_NEWICK_H
#define LVISH_PHYBIN_NEWICK_H

#include "src/phybin/PhyloTree.h"

#include <string>
#include <string_view>
#include <vector>

namespace lvish {
namespace phybin {

/// Parse failure description (Offset == npos means success).
struct NewickError {
  size_t Offset = std::string::npos;
  std::string Message;

  bool ok() const { return Offset == std::string::npos; }
};

/// Parses one Newick string into \p Out, resolving leaf names through
/// \p Species: existing names map to their indices, new names are
/// appended. Internal-node labels are accepted and discarded (RF distance
/// only uses topology).
NewickError parseNewick(std::string_view Text, PhyloTree &Out,
                        std::vector<std::string> &Species);

/// Parses a whole file's worth of semicolon-terminated trees into a
/// TreeSet (one tree per semicolon).
NewickError parseNewickForest(std::string_view Text, TreeSet &Out);

/// Renders \p Tree back to Newick (without branch lengths when zero).
std::string printNewick(const PhyloTree &Tree,
                        const std::vector<std::string> &Species);

} // namespace phybin
} // namespace lvish

#endif // LVISH_PHYBIN_NEWICK_H
