//===- RFDistance.cpp - Robinson-Foulds distance matrices ------------------===//

#include "src/phybin/RFDistance.h"

#include "src/core/LVish.h"
#include "src/core/ParFor.h"
#include "src/data/Counter.h"
#include "src/data/IMap.h"
#include "src/data/ISet.h"
#include "src/phybin/Bipartition.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

using namespace lvish;
using namespace lvish::phybin;

DistanceMatrix phybin::rfNaivePairwise(const TreeSet &Trees) {
  size_t N = Trees.numTrees();
  size_t S = Trees.numSpecies();
  DistanceMatrix D(N);
  // Deliberately re-extracts bipartitions per pair: this is the locality
  // profile of the N^2/2-metric-applications tools (Phylip, DendroPy).
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J) {
      auto BI = extractBipartitions(Trees.Trees[I], S);
      auto BJ = extractBipartitions(Trees.Trees[J], S);
      D.set(I, J, static_cast<uint32_t>(symmetricDifferenceSize(BI, BJ)));
    }
  return D;
}

DistanceMatrix phybin::rfHashRFSequential(const TreeSet &Trees) {
  size_t N = Trees.numTrees();
  size_t S = Trees.numSpecies();

  // Phase 1 (Figure 3): biptable :: bipartition -> set of trees.
  // The per-tree bipartition counts are kept for the final subtraction.
  struct BipHash {
    uint64_t operator()(const DenseLabelSet &B) const { return B.hash(); }
  };
  std::unordered_map<DenseLabelSet, std::vector<uint32_t>, BipHash> BipTable;
  std::vector<uint32_t> BipCount(N, 0);
  for (size_t T = 0; T < N; ++T) {
    auto Bips = extractBipartitions(Trees.Trees[T], S);
    BipCount[T] = static_cast<uint32_t>(Bips.size());
    for (DenseLabelSet &B : Bips)
      BipTable[std::move(B)].push_back(static_cast<uint32_t>(T));
  }

  // Phase 2: count shared bipartitions per tree pair; this reads only the
  // (much smaller) per-bipartition tree sets. RF(t1,t2) =
  // |bips t1| + |bips t2| - 2*shared(t1,t2).
  std::vector<uint32_t> Shared(N * N, 0);
  for (const auto &[Bip, Members] : BipTable) {
    (void)Bip;
    for (size_t A = 0; A < Members.size(); ++A)
      for (size_t B = A + 1; B < Members.size(); ++B)
        ++Shared[size_t(Members[A]) * N + Members[B]];
  }
  DistanceMatrix D(N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      D.set(I, J, BipCount[I] + BipCount[J] - 2 * Shared[I * N + J]);
  return D;
}

namespace {

/// Effect level of the parallel distance computation: LVar writes and
/// reads, non-idempotent counter bumps, and the two phase-boundary freezes
/// (each performed after a full fork-join, where freezing is
/// deterministic - the runParThenFreeze argument applied mid-session).
constexpr EffectSet PhyBinEff{true, true, true, true, false, false};

using TreeSetLV = ISet<uint32_t>;
struct BipHashLV {
  uint64_t operator()(const DenseLabelSet &B) const { return B.hash(); }
};
using BipTableLV =
    IMap<DenseLabelSet, std::shared_ptr<TreeSetLV>, BipHashLV>;

Par<DistanceMatrix> rfParallelBody(ParCtx<PhyBinEff> Ctx,
                                   const TreeSet *Trees) {
  size_t N = Trees->numTrees();
  size_t S = Trees->numSpecies();

  auto BipTable = std::make_shared<BipTableLV>(Ctx.sessionId());
  // Written disjointly (one slot per tree) by phase 1: the DPJ-style
  // disjoint-update pattern, safe without atomics.
  auto BipCount = std::make_shared<std::vector<uint32_t>>(N, 0);

  // Phase 1: all trees in parallel, inserting into the map-of-sets.
  uint64_t Session = Ctx.sessionId();
  auto Phase1 = [BipTable, BipCount, Trees, S,
                 Session](ParCtx<PhyBinEff> C, size_t T) -> Par<void> {
    auto Bips = extractBipartitions(Trees->Trees[T], S);
    (*BipCount)[T] = static_cast<uint32_t>(Bips.size());
    for (const DenseLabelSet &B : Bips) {
      // Heterogeneous call the generic modifyKey wrapper cannot express
      // (the factory returns a nested LVar). lvish-lint: allow(state-bypass)
      const std::shared_ptr<TreeSetLV> &Set = BipTable->modifyKey(
          B, [Session] { return std::make_shared<TreeSetLV>(Session); },
          C.task());
      insert(C, *Set, static_cast<uint32_t>(T));
    }
    co_return;
  };
  co_await parallelForPar(Ctx, 0, N, 4, Phase1);

  // Phase boundary: the join above guarantees quiescence of all inserts,
  // so freezing here is deterministic.
  // lvish-lint: allow(state-bypass) - post-join quiescent freeze.
  BipTable->markFrozen();
  std::vector<std::shared_ptr<TreeSetLV>> Entries;
  BipTable->forEachFrozen(
      [&Entries](const DenseLabelSet &, const std::shared_ptr<TreeSetLV> &V) {
        Entries.push_back(V);
      });

  // Phase 2: one task per chunk of bipartitions, bumping the shared-pair
  // counters (the "vector of monotonic bump counters").
  auto SharedCounts = newCounterVec(Ctx, N * N);
  auto EntriesPtr = &Entries;
  auto Phase2 = [SharedCounts, EntriesPtr,
                 N](ParCtx<PhyBinEff> C, size_t EI) -> Par<void> {
    TreeSetLV &Members = *(*EntriesPtr)[EI];
    // Quiescent since phase 1's join. lvish-lint: allow(state-bypass)
    Members.markFrozen();
    std::vector<uint32_t> List;
    Members.forEachFrozen(
        [&List](const uint32_t &T) { List.push_back(T); });
    std::sort(List.begin(), List.end());
    for (size_t A = 0; A < List.size(); ++A)
      for (size_t B = A + 1; B < List.size(); ++B)
        incrCounterAt(C, *SharedCounts,
                      size_t(List[A]) * N + List[B]);
    co_return;
  };
  co_await parallelForPar(Ctx, 0, Entries.size(), 8, Phase2);

  // Final pure pass: assemble the matrix.
  std::vector<uint64_t> Shared = freezeCounterVec(Ctx, *SharedCounts);
  DistanceMatrix D(N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      D.set(I, J,
            (*BipCount)[I] + (*BipCount)[J] -
                2 * static_cast<uint32_t>(Shared[I * N + J]));
  co_return D;
}

} // namespace

DistanceMatrix phybin::rfHashRFParallelOn(service::Runtime &RT,
                                          const TreeSet &Trees) {
  const TreeSet *Ptr = &Trees;
  return RT.runIO<PhyBinEff>([Ptr](ParCtx<PhyBinEff> Ctx)
                                 -> Par<DistanceMatrix> {
           DistanceMatrix D = co_await rfParallelBody(Ctx, Ptr);
           co_return D;
         })
      .valueOrAbort();
}

DistanceMatrix phybin::rfHashRFParallel(const TreeSet &Trees,
                                        const SchedulerConfig &Config) {
  service::RuntimeConfig RC;
  RC.Sched = Config;
  service::Runtime RT(RC);
  return rfHashRFParallelOn(RT, Trees);
}
