//===- TreeGen.h - Synthetic phylogenetic tree sets -------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator for PhyBin workloads. The paper's evaluation used
/// biological tree sets (e.g. 100 trees x 150 species, 1000 trees x 150
/// species); those inputs are not redistributable, so - per this
/// reproduction's substitution rule - we synthesize sets with the same
/// statistical shape: a base random binary topology plus per-tree random
/// NNI (nearest-neighbor-interchange) perturbations. Biologists' tree sets
/// are exactly "many alternative hypotheses that are mostly similar",
/// which NNI mutation models; the bipartition-table sizes and sharing
/// profile (what drives HashRF's running time) behave like the real data.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_PHYBIN_TREEGEN_H
#define LVISH_PHYBIN_TREEGEN_H

#include "src/phybin/PhyloTree.h"
#include "src/support/SplitMix.h"

namespace lvish {
namespace phybin {

/// Generates a uniformly random rooted binary tree over \p NumSpecies
/// leaves (random sequential joins).
PhyloTree randomBinaryTree(size_t NumSpecies, SplitMix64 &Rng);

/// Applies \p Moves random nearest-neighbor interchanges in place.
/// Each move swaps a random internal node's child with its sibling,
/// changing one bipartition while keeping the tree binary.
void mutateNNI(PhyloTree &Tree, size_t Moves, SplitMix64 &Rng);

/// Builds a PhyBin workload: \p NumTrees trees over \p NumSpecies species;
/// tree i is the shared base topology perturbed by \p MutationsPerTree NNI
/// moves. Deterministic in \p Seed. Species are named "sp0".."spN-1".
TreeSet generateTreeSet(size_t NumTrees, size_t NumSpecies,
                        size_t MutationsPerTree, uint64_t Seed);

} // namespace phybin
} // namespace lvish

#endif // LVISH_PHYBIN_TREEGEN_H
