//===- Bipartition.cpp - Tree bipartitions as bit vectors ------------------===//

#include "src/phybin/Bipartition.h"

#include <algorithm>

using namespace lvish;
using namespace lvish::phybin;

void phybin::canonicalizeBipartition(DenseLabelSet &Split) {
  if (Split.universeSize() > 0 && Split.test(0))
    Split.flipAll();
}

std::vector<DenseLabelSet>
phybin::extractBipartitions(const PhyloTree &Tree, size_t NumSpecies) {
  // Post-order accumulation of leaf sets: children before parents. The
  // arena has no guaranteed topological order, so compute one explicitly.
  size_t N = Tree.numNodes();
  std::vector<NodeId> PostOrder;
  PostOrder.reserve(N);
  {
    std::vector<std::pair<NodeId, size_t>> Stack;
    Stack.emplace_back(Tree.root(), 0);
    while (!Stack.empty()) {
      auto &[Node, NextChild] = Stack.back();
      const PhyloNode &Nd = Tree.node(Node);
      if (NextChild < Nd.Children.size()) {
        NodeId C = Nd.Children[NextChild++];
        Stack.emplace_back(C, 0);
      } else {
        PostOrder.push_back(Node);
        Stack.pop_back();
      }
    }
  }

  std::vector<DenseLabelSet> Below(N, DenseLabelSet(NumSpecies));
  std::vector<DenseLabelSet> Result;
  for (NodeId Node : PostOrder) {
    const PhyloNode &Nd = Tree.node(Node);
    DenseLabelSet &Mine = Below[size_t(Node)];
    if (Nd.isLeaf()) {
      Mine.set(size_t(Nd.Species));
    } else {
      for (NodeId C : Nd.Children)
        Mine |= Below[size_t(C)];
    }
    // Every internal, non-root edge (Node -> parent) induces a split.
    if (Nd.isLeaf() || Nd.Parent == InvalidNode)
      continue;
    size_t SideSize = Mine.count();
    if (SideSize <= 1 || SideSize >= NumSpecies - 1)
      continue; // Trivial split.
    DenseLabelSet Split = Mine;
    canonicalizeBipartition(Split);
    Result.push_back(std::move(Split));
  }
  std::sort(Result.begin(), Result.end());
  Result.erase(std::unique(Result.begin(), Result.end()), Result.end());
  return Result;
}

size_t
phybin::symmetricDifferenceSize(const std::vector<DenseLabelSet> &A,
                                const std::vector<DenseLabelSet> &B) {
  size_t IA = 0, IB = 0, Shared = 0;
  while (IA < A.size() && IB < B.size()) {
    if (A[IA] == B[IB]) {
      ++Shared;
      ++IA;
      ++IB;
    } else if (A[IA] < B[IB]) {
      ++IA;
    } else {
      ++IB;
    }
  }
  return A.size() + B.size() - 2 * Shared;
}
