//===- RFDistance.h - Robinson-Foulds distance matrices ---------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All-to-all Robinson-Foulds tree-edit-distance matrices - the
/// computational core of PhyBin (Section 7.1) - in three implementations
/// matching the systems compared in Table 1:
///
///  * \c rfNaivePairwise - the Phylip/DendroPy-class baseline: N*(N-1)/2
///    full applications of the distance metric, re-extracting both trees'
///    bipartitions per pair. "These slower packages ... read all trees in
///    from memory N^2/2 times" - deliberately poor locality.
///  * \c rfHashRFSequential - the HashRF algorithm (Sul & Williams, APBC
///    2007; Figure 3 of the paper): one pass populating a table mapping
///    each observed bipartition to the set of trees containing it, then a
///    second phase that "only needs to read from the much smaller trset".
///  * \c rfHashRFParallel - the LVish parallelization: "the biptable in
///    the first phase is a map of sets, which are directly replaced by
///    their LVar counterparts [IMap of ISets]. The distmat in the second
///    phase is a vector of monotonic bump counters [CounterVec]." All
///    loops of Figure 3 run in parallel.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_PHYBIN_RFDISTANCE_H
#define LVISH_PHYBIN_RFDISTANCE_H

#include "src/phybin/PhyloTree.h"
#include "src/service/Runtime.h"

#include <cstdint>
#include <vector>

namespace lvish {
namespace phybin {

/// Symmetric N x N matrix of RF distances.
class DistanceMatrix {
public:
  DistanceMatrix() = default;
  explicit DistanceMatrix(size_t N) : N(N), Data(N * N, 0) {}

  size_t size() const { return N; }

  uint32_t at(size_t I, size_t J) const { return Data[I * N + J]; }
  void set(size_t I, size_t J, uint32_t V) {
    Data[I * N + J] = V;
    Data[J * N + I] = V;
  }

  friend bool operator==(const DistanceMatrix &A, const DistanceMatrix &B) {
    return A.N == B.N && A.Data == B.Data;
  }

private:
  size_t N = 0;
  std::vector<uint32_t> Data;
};

/// Phylip/DendroPy-class baseline; see file comment.
DistanceMatrix rfNaivePairwise(const TreeSet &Trees);

/// Sequential HashRF (Figure 3); see file comment.
DistanceMatrix rfHashRFSequential(const TreeSet &Trees);

/// LVish-parallel HashRF; deterministic for any scheduler configuration.
DistanceMatrix rfHashRFParallel(const TreeSet &Trees,
                                const SchedulerConfig &Config);

/// Same, reusing an existing scheduler (for benchmarking without worker
/// startup costs).
DistanceMatrix rfHashRFParallelOn(service::Runtime &RT,
                                  const TreeSet &Trees);

} // namespace phybin
} // namespace lvish

#endif // LVISH_PHYBIN_RFDISTANCE_H
