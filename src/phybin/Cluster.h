//===- Cluster.h - Hierarchical clustering of tree sets ---------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The primary output of the software is a hierarchical clustering of the
/// input tree set (a tree of trees)" (Section 7.1). This module implements
/// single-linkage agglomerative clustering over an RF distance matrix via
/// the SLINK algorithm (Sibson 1973) - O(N^2) time, O(N) space - plus a
/// threshold cut that bins trees by topology, matching PhyBin's published
/// purpose ("PhyBin: binning trees by topology").
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_PHYBIN_CLUSTER_H
#define LVISH_PHYBIN_CLUSTER_H

#include "src/phybin/RFDistance.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lvish {
namespace phybin {

/// A dendrogram in SLINK's pointer representation: element i merges into
/// cluster Pi[i] at height Lambda[i] (the last element has Lambda = inf).
struct Dendrogram {
  std::vector<size_t> Pi;
  std::vector<double> Lambda;

  size_t size() const { return Pi.size(); }
};

/// Single-linkage hierarchical clustering of the distance matrix.
Dendrogram clusterSingleLinkage(const DistanceMatrix &D);

/// Cuts the dendrogram at \p MaxDistance: trees whose single-linkage merge
/// height is <= MaxDistance share a bin. Returns a cluster id per tree,
/// with ids numbered 0..k-1 in order of each cluster's smallest member
/// (deterministic).
std::vector<size_t> cutClusters(const Dendrogram &Dend, double MaxDistance);

/// Renders the clustering as a sorted, human-readable summary (one line
/// per bin), for the demo executable and golden tests.
std::string formatClusters(const std::vector<size_t> &Assignment);

} // namespace phybin
} // namespace lvish

#endif // LVISH_PHYBIN_CLUSTER_H
