//===- Newick.cpp - Newick tree format parser/printer ----------------------===//

#include "src/phybin/Newick.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

using namespace lvish;
using namespace lvish::phybin;

namespace {

/// Recursive-descent Newick parser over a string_view cursor.
class Parser {
public:
  Parser(std::string_view Text, PhyloTree &Tree,
         std::vector<std::string> &Species)
      : Text(Text), Tree(Tree), Species(Species) {
    for (size_t I = 0; I < Species.size(); ++I)
      NameToIndex[Species[I]] = static_cast<int32_t>(I);
  }

  NewickError run() {
    skipSpace();
    NodeId Root = parseNode();
    if (Failed)
      return Err;
    skipSpace();
    if (!eat(';'))
      return fail("expected ';' at end of tree");
    Tree.setRoot(Root);
    return NewickError();
  }

  size_t position() const { return Pos; }

private:
  NodeId parseNode() {
    skipSpace();
    NodeId N;
    if (peek() == '(') {
      N = parseGroup();
      if (Failed)
        return InvalidNode;
      // Optional internal label, discarded.
      std::string Label = parseLabel();
      (void)Label;
    } else {
      std::string Label = parseLabel();
      if (Label.empty()) {
        fail("expected a leaf label");
        return InvalidNode;
      }
      N = Tree.addLeaf(speciesIndex(Label));
    }
    if (Failed)
      return InvalidNode;
    // Optional branch length.
    if (peek() == ':') {
      ++Pos;
      Tree.node(N).BranchLength = parseNumber();
    }
    return N;
  }

  NodeId parseGroup() {
    // Caller saw '('.
    ++Pos;
    NodeId Group = Tree.addNode();
    for (;;) {
      NodeId Child = parseNode();
      if (Failed)
        return InvalidNode;
      Tree.attach(Group, Child);
      skipSpace();
      if (eat(','))
        continue;
      if (eat(')'))
        return Group;
      fail("expected ',' or ')' in group");
      return InvalidNode;
    }
  }

  std::string parseLabel() {
    skipSpace();
    std::string Label;
    if (peek() == '\'') {
      ++Pos;
      while (Pos < Text.size() && Text[Pos] != '\'')
        Label.push_back(Text[Pos++]);
      if (Pos == Text.size()) {
        fail("unterminated quoted label");
        return Label;
      }
      ++Pos; // Closing quote.
      return Label;
    }
    while (Pos < Text.size() && !strchr("():,;'", Text[Pos]) &&
           !std::isspace(static_cast<unsigned char>(Text[Pos])))
      Label.push_back(Text[Pos++]);
    return Label;
  }

  double parseNumber() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            strchr("+-.eE", Text[Pos])))
      ++Pos;
    if (Pos == Start) {
      fail("expected a branch length after ':'");
      return 0;
    }
    return std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                       nullptr);
  }

  int32_t speciesIndex(const std::string &Name) {
    auto It = NameToIndex.find(Name);
    if (It != NameToIndex.end())
      return It->second;
    int32_t Idx = static_cast<int32_t>(Species.size());
    Species.push_back(Name);
    NameToIndex.emplace(Name, Idx);
    return Idx;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  bool eat(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }
  NewickError fail(const char *Msg) {
    if (!Failed) {
      Failed = true;
      Err.Offset = Pos;
      Err.Message = Msg;
    }
    return Err;
  }

  std::string_view Text;
  PhyloTree &Tree;
  std::vector<std::string> &Species;
  std::unordered_map<std::string, int32_t> NameToIndex;
  size_t Pos = 0;
  bool Failed = false;
  NewickError Err;
};

void printNode(const PhyloTree &Tree, NodeId N,
               const std::vector<std::string> &Species, std::string &Out) {
  const PhyloNode &Nd = Tree.node(N);
  if (Nd.isLeaf()) {
    Out += Species[size_t(Nd.Species)];
  } else {
    Out.push_back('(');
    for (size_t I = 0; I < Nd.Children.size(); ++I) {
      if (I)
        Out.push_back(',');
      printNode(Tree, Nd.Children[I], Species, Out);
    }
    Out.push_back(')');
  }
  if (Nd.BranchLength != 0) {
    Out.push_back(':');
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", Nd.BranchLength);
    Out += Buf;
  }
}

} // namespace

NewickError phybin::parseNewick(std::string_view Text, PhyloTree &Out,
                                std::vector<std::string> &Species) {
  Parser P(Text, Out, Species);
  return P.run();
}

NewickError phybin::parseNewickForest(std::string_view Text, TreeSet &Out) {
  size_t Pos = 0;
  while (Pos < Text.size()) {
    // Skip whitespace between trees.
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos >= Text.size())
      break;
    size_t End = Text.find(';', Pos);
    if (End == std::string_view::npos) {
      NewickError E;
      E.Offset = Pos;
      E.Message = "tree not terminated by ';'";
      return E;
    }
    PhyloTree Tree;
    NewickError E = parseNewick(Text.substr(Pos, End - Pos + 1), Tree,
                                Out.SpeciesNames);
    if (!E.ok()) {
      E.Offset += Pos;
      return E;
    }
    Out.Trees.push_back(std::move(Tree));
    Pos = End + 1;
  }
  return NewickError();
}

std::string phybin::printNewick(const PhyloTree &Tree,
                                const std::vector<std::string> &Species) {
  std::string Out;
  printNode(Tree, Tree.root(), Species, Out);
  Out.push_back(';');
  return Out;
}
