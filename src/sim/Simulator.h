//===- Simulator.h - Multi-worker replay of recorded task DAGs --*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardware-substitution substrate for the paper's thread-scaling
/// figures (see DESIGN.md): the evaluation machine was a dual-socket
/// 12-core Xeon X5660; this container has one CPU. We therefore record a
/// program's dynamic slice DAG during a real single-core run (src/sched/
/// Trace.h) and replay it here under P virtual workers:
///
///  * greedy (list) scheduling: a worker picks the lowest-id ready slice -
///    deterministic, and within the classic 2x bound of optimal (Graham);
///  * a memory-bandwidth contention model: each slice carries measured CPU
///    nanoseconds plus announced bytes; when concurrently running slices
///    collectively demand more bandwidth than the machine sustains, their
///    memory-bound fractions stretch (processor-sharing, recomputed at
///    every start/finish event).
///
/// The bandwidth model is what reproduces the *shape* of Figure 4/5: the
/// copying functional merge sort "reads the entire input memory at least
/// log2(N) times, greatly increasing memory traffic" and so "completely
/// stops scaling", while the in-place ParST sort keeps scaling. Compute-
/// bound kernels (sumeuler, nbody, blackscholes) are insensitive to the
/// model and scale until the DAG's critical path dominates.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SIM_SIMULATOR_H
#define LVISH_SIM_SIMULATOR_H

#include "src/sched/Trace.h"

#include <cstdint>
#include <vector>

namespace lvish {
namespace sim {

/// An immutable replay DAG built from a TraceRecorder.
class TaskGraph {
public:
  TaskGraph() = default;

  /// Builds the graph from a completed trace. Validates that edges are
  /// in-range; duplicate edges are coalesced.
  static TaskGraph fromTrace(const TraceRecorder &Trace);

  size_t numSlices() const { return DurationNs.size(); }
  uint64_t duration(size_t I) const { return DurationNs[I]; }
  uint64_t bytes(size_t I) const { return BytesOf[I]; }
  const std::vector<uint32_t> &successors(size_t I) const {
    return Succ[I];
  }
  uint32_t indegree(size_t I) const { return Indegree[I]; }

  /// Sum of all slice durations (the work term of Brent's bound).
  uint64_t totalWorkNanos() const;
  /// Longest dependency chain (the span term of Brent's bound).
  uint64_t criticalPathNanos() const;
  /// Sum of all announced bytes.
  uint64_t totalBytes() const;

private:
  std::vector<uint64_t> DurationNs;
  std::vector<uint64_t> BytesOf;
  std::vector<std::vector<uint32_t>> Succ;
  std::vector<uint32_t> Indegree;
};

/// Machine model for the replay.
struct MachineModel {
  /// Sustained bandwidth of one stream, bytes/second. Calibrated to the
  /// recording machine so that a fully memory-bound slice's announced
  /// bytes take about as long as its measured duration.
  double StreamBandwidth = 8e9;
  /// Aggregate bandwidth the machine sustains across all cores, as a
  /// multiple of StreamBandwidth. Real multicores saturate well below
  /// NumWorkers x single-stream (e.g. ~3x on the paper's 2009-era Xeon).
  double AggregateFactor = 3.0;
  /// Per-task scheduling overhead added to each slice, nanoseconds.
  double PerSliceOverheadNs = 0;
};

/// Result of one replay.
struct SimResult {
  double MakespanSeconds = 0;
  double BusySeconds = 0; ///< Total worker-busy time (utilization probe).
};

/// Replays \p Graph on \p Workers virtual workers; deterministic.
SimResult simulate(const TaskGraph &Graph, unsigned Workers,
                   const MachineModel &Model = MachineModel());

/// Convenience: simulated speedup curve relative to one worker.
std::vector<double> speedupSeries(const TaskGraph &Graph,
                                  const std::vector<unsigned> &WorkerCounts,
                                  const MachineModel &Model = MachineModel());

} // namespace sim
} // namespace lvish

#endif // LVISH_SIM_SIMULATOR_H
