//===- Simulator.cpp - Multi-worker replay of recorded task DAGs -----------===//

#include "src/sim/Simulator.h"

#include "src/support/Assert.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

using namespace lvish;
using namespace lvish::sim;

TaskGraph TaskGraph::fromTrace(const TraceRecorder &Trace) {
  TaskGraph G;
  size_t N = Trace.slices().size();
  G.DurationNs.resize(N);
  G.BytesOf.resize(N);
  G.Succ.assign(N, {});
  G.Indegree.assign(N, 0);
  for (size_t I = 0; I < N; ++I) {
    G.DurationNs[I] = Trace.slices()[I].DurationNanos;
    G.BytesOf[I] = Trace.slices()[I].Bytes;
  }
  for (const TraceEdge &E : Trace.edges()) {
    if (E.Src >= N || E.Dst >= N)
      // Offline-analysis invariant, outside any Par session.
      // lvish-lint: allow(fatal)
      fatalError("trace edge out of range (trace read before completion?)");
    G.Succ[E.Src].push_back(E.Dst);
  }
  for (auto &S : G.Succ) {
    std::sort(S.begin(), S.end());
    S.erase(std::unique(S.begin(), S.end()), S.end());
  }
  for (const auto &S : G.Succ)
    for (uint32_t D : S)
      ++G.Indegree[D];
  return G;
}

uint64_t TaskGraph::totalWorkNanos() const {
  uint64_t Sum = 0;
  for (uint64_t D : DurationNs)
    Sum += D;
  return Sum;
}

uint64_t TaskGraph::totalBytes() const {
  uint64_t Sum = 0;
  for (uint64_t B : BytesOf)
    Sum += B;
  return Sum;
}

uint64_t TaskGraph::criticalPathNanos() const {
  // Longest path via topological (Kahn) order. Slice ids are NOT
  // guaranteed topological (a child's first slice can have a lower id
  // than a late parent slice), so compute the order explicitly.
  size_t N = numSlices();
  std::vector<uint32_t> Deg(Indegree);
  std::vector<uint64_t> Dist(N, 0);
  std::vector<uint32_t> Queue;
  Queue.reserve(N);
  for (size_t I = 0; I < N; ++I)
    if (Deg[I] == 0) {
      Queue.push_back(static_cast<uint32_t>(I));
      Dist[I] = DurationNs[I];
    }
  uint64_t Longest = 0;
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    uint32_t U = Queue[Head];
    Longest = std::max(Longest, Dist[U]);
    for (uint32_t V : Succ[U]) {
      Dist[V] = std::max(Dist[V], Dist[U] + DurationNs[V]);
      if (--Deg[V] == 0)
        Queue.push_back(V);
    }
  }
  if (Queue.size() != N)
    // Offline-analysis invariant, outside any Par session.
    // lvish-lint: allow(fatal)
    fatalError("cycle in recorded task graph");
  return Longest;
}

namespace {

/// One running slice's progress state, in seconds.
struct Running {
  uint32_t Id;
  double ComputeLeft; ///< Compute-only seconds remaining.
  double MemoryLeft;  ///< Memory seconds remaining at full stream speed.
};

} // namespace

SimResult sim::simulate(const TaskGraph &Graph, unsigned Workers,
                        const MachineModel &Model) {
  assert(Workers > 0 && "need at least one worker");
  size_t N = Graph.numSlices();
  SimResult Result;
  if (N == 0)
    return Result;

  // Min-heap of ready slices by id: deterministic greedy list scheduling.
  std::priority_queue<uint32_t, std::vector<uint32_t>,
                      std::greater<uint32_t>>
      Ready;
  std::vector<uint32_t> Deg(N);
  for (size_t I = 0; I < N; ++I) {
    Deg[I] = Graph.indegree(I);
    if (Deg[I] == 0)
      Ready.push(static_cast<uint32_t>(I));
  }

  std::vector<Running> Run;
  Run.reserve(Workers);
  double Now = 0;
  size_t Finished = 0;

  auto SplitWork = [&Model](uint32_t Id, const TaskGraph &G) {
    double Total =
        (static_cast<double>(G.duration(Id)) + Model.PerSliceOverheadNs) *
        1e-9;
    double Mem = static_cast<double>(G.bytes(Id)) / Model.StreamBandwidth;
    // The measured duration already includes single-stream memory time;
    // anything beyond it is pure compute.
    Mem = std::min(Mem, Total);
    return Running{Id, Total - Mem, Mem};
  };

  while (Finished < N) {
    // Fill idle workers.
    while (Run.size() < Workers && !Ready.empty()) {
      uint32_t Id = Ready.top();
      Ready.pop();
      Run.push_back(SplitWork(Id, Graph));
    }
    if (Run.empty())
      // Offline-analysis invariant, outside any Par session.
      // lvish-lint: allow(fatal)
      fatalError("simulator starved with unfinished slices (disconnected "
                 "or cyclic graph)");

    // Current memory-contention factor: streams with memory work left
    // share the aggregate bandwidth.
    size_t MemActive = 0;
    for (const Running &R : Run)
      if (R.MemoryLeft > 0)
        ++MemActive;
    double Rho =
        MemActive == 0
            ? 1.0
            : std::min(1.0, Model.AggregateFactor /
                                static_cast<double>(MemActive));

    // Next event: a slice finishing, or a slice draining its memory part
    // (which raises Rho for the others).
    double Dt = std::numeric_limits<double>::infinity();
    for (const Running &R : Run) {
      double MemTime = R.MemoryLeft > 0 ? R.MemoryLeft / Rho : 0;
      double FinishIn = std::max(R.ComputeLeft, MemTime);
      Dt = std::min(Dt, FinishIn);
      if (R.MemoryLeft > 0 && MemTime < FinishIn)
        Dt = std::min(Dt, MemTime); // Memory drains first: rate change.
    }
    assert(Dt >= 0 && std::isfinite(Dt) && "bad event horizon");

    // Advance all running slices by Dt.
    Now += Dt;
    Result.BusySeconds += Dt * static_cast<double>(Run.size());
    constexpr double Eps = 1e-15;
    for (size_t I = 0; I < Run.size();) {
      Running &R = Run[I];
      R.ComputeLeft = std::max(0.0, R.ComputeLeft - Dt);
      R.MemoryLeft = std::max(0.0, R.MemoryLeft - Dt * Rho);
      if (R.ComputeLeft <= Eps && R.MemoryLeft <= Eps) {
        // Finished: release successors.
        for (uint32_t V : Graph.successors(R.Id))
          if (--Deg[V] == 0)
            Ready.push(V);
        ++Finished;
        Run[I] = Run.back();
        Run.pop_back();
      } else {
        ++I;
      }
    }
  }
  Result.MakespanSeconds = Now;
  return Result;
}

std::vector<double>
sim::speedupSeries(const TaskGraph &Graph,
                   const std::vector<unsigned> &WorkerCounts,
                   const MachineModel &Model) {
  double Base = simulate(Graph, 1, Model).MakespanSeconds;
  std::vector<double> Out;
  Out.reserve(WorkerCounts.size());
  for (unsigned W : WorkerCounts) {
    double T = simulate(Graph, W, Model).MakespanSeconds;
    Out.push_back(T > 0 ? Base / T : 0);
  }
  return Out;
}
