//===- Assert.h - Assertions and fatal errors ------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion helpers and deterministic fatal-error reporting. Library code
/// never throws; invariant violations abort with a message, and
/// user-triggerable determinism violations (e.g. put-after-freeze) report
/// through \c fatalError so the failure itself is deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SUPPORT_ASSERT_H
#define LVISH_SUPPORT_ASSERT_H

#include <cassert>

namespace lvish {

/// Prints \p Msg to stderr and aborts. Used for unrecoverable violations of
/// the deterministic-parallelism contract (conflicting freeze/put, reading a
/// cancelled future, aliased ParST state). The message is printed exactly
/// once even under concurrent failure.
[[noreturn]] void fatalError(const char *Msg);

/// Marks a point in the code that must be unreachable if the library's
/// invariants hold.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace lvish

#define LVISH_UNREACHABLE(msg)                                                 \
  ::lvish::unreachableInternal(msg, __FILE__, __LINE__)

#endif // LVISH_SUPPORT_ASSERT_H
