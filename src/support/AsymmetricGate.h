//===- AsymmetricGate.h - Put/handler-registration gate ---------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's footnote 6: the key engineering challenge in supporting
/// non-idempotent writes is "resolving a race between puts and attempts to
/// register new handlers (callbacks) on an LVar. Our solution is a
/// specialized variant of a reader-writer lock that requires zero writes to
/// shared addresses if no handlers are currently being registered."
///
/// \c AsymmetricGate implements that lock. The fast side (a \c put) only
/// writes to a cache line private to the calling thread; it reads one shared
/// flag. The slow side (handler registration) raises the flag and waits for
/// every in-flight fast-side critical section to drain. Correctness relies
/// on sequentially-consistent ordering between the fast side's slot store
/// and flag load versus the slow side's flag store and slot loads (the
/// classic Dekker pattern).
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SUPPORT_ASYMMETRICGATE_H
#define LVISH_SUPPORT_ASYMMETRICGATE_H

#include <atomic>
#include <cstdint>
#include <mutex>

namespace lvish {

/// Asymmetric reader-writer gate. Many concurrent fast-side holders are
/// allowed; slow-side holders are exclusive against both sides.
class AsymmetricGate {
public:
  /// Maximum number of threads with a private fast-path slot. Threads beyond
  /// this bound fall back to the slow path (still correct, just slower).
  static constexpr unsigned MaxSlots = 128;

  AsymmetricGate();
  ~AsymmetricGate() = default;

  AsymmetricGate(const AsymmetricGate &) = delete;
  AsymmetricGate &operator=(const AsymmetricGate &) = delete;

  /// Enters a fast-side (put-side) critical section. Returns an opaque token
  /// for \c exitFast. When no registration is active this performs no writes
  /// to shared cache lines.
  int enterFast();

  /// Leaves the fast-side critical section entered with token \p Slot.
  void exitFast(int Slot);

  /// Enters the exclusive slow side (handler registration). Blocks until all
  /// fast-side sections drain.
  void enterSlow();

  /// Leaves the exclusive slow side.
  void exitSlow();

  /// RAII fast-side guard.
  class FastGuard {
  public:
    explicit FastGuard(AsymmetricGate &G) : Gate(G), Slot(G.enterFast()) {}
    ~FastGuard() { Gate.exitFast(Slot); }
    FastGuard(const FastGuard &) = delete;
    FastGuard &operator=(const FastGuard &) = delete;

  private:
    AsymmetricGate &Gate;
    int Slot;
  };

  /// RAII slow-side guard.
  class SlowGuard {
  public:
    explicit SlowGuard(AsymmetricGate &G) : Gate(G) { Gate.enterSlow(); }
    ~SlowGuard() { Gate.exitSlow(); }
    SlowGuard(const SlowGuard &) = delete;
    SlowGuard &operator=(const SlowGuard &) = delete;

  private:
    AsymmetricGate &Gate;
  };

private:
  struct alignas(64) Slot {
    std::atomic<uint32_t> Active{0};
  };

  /// Raised while a slow-side holder is active or waiting.
  std::atomic<uint32_t> SlowActive{0};
  /// Serializes slow-side holders and the shared fallback fast path.
  std::mutex SlowMutex;
  Slot Slots[MaxSlots];
};

} // namespace lvish

#endif // LVISH_SUPPORT_ASYMMETRICGATE_H
