//===- Fault.h - Session-scoped deterministic faults ------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic fault model. The paper's quasi-determinism theorem
/// makes *error* a first-class outcome: a conflicting put, a
/// put-after-freeze, or a cancel/read conflict must produce the same error
/// on every run. Rather than aborting the process, a violation inside a
/// runPar session is recorded as a \c Fault, the session's remaining tasks
/// are transitively cancelled, and the session returns a
/// \c ParOutcome<T> holding the fault.
///
/// When several tasks fault concurrently, the session keeps the
/// *lattice-least* fault under \c faultLess: pedigrees ordered
/// lexicographically ('L' < 'R', ancestors before descendants - the
/// leftmost/outermost position in the fork tree), ties broken by code and
/// message. For a program with a single faulting site this is trivially
/// deterministic; with several *independent* faulting sites the winner is
/// deterministic whenever every faulting task actually reaches its fault
/// before cancellation, which the containment path does not guarantee -
/// see DESIGN.md section 8 for the exact contract.
///
/// The legacy value-returning runPar API is a thin wrapper that funnels
/// every abort through one choke point, \c ParOutcome::valueOrAbort.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SUPPORT_FAULT_H
#define LVISH_SUPPORT_FAULT_H

#include "src/support/Assert.h"

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace lvish {

/// What kind of contract violation a Fault records. One code per
/// deterministic error in the effect zoo, plus the injection harness.
enum class FaultCode : uint8_t {
  ConflictingPut,      ///< IVar second put with a different value.
  ConflictingInsert,   ///< IMap rebind of an existing key to a new value.
  LatticeTop,          ///< PureLVar join reached the designated top.
  PutAfterFreeze,      ///< State-changing put on a frozen LVar.
  CancelReadConflict,  ///< A CFuture was both cancelled and read.
  DeadlockDrained,     ///< Root blocked forever; every other task finished.
  DeadlockLeakedTasks, ///< Root blocked forever; other tasks also blocked.
  CheckerViolation,    ///< A dynamic checker (src/check) fired in-session.
  InjectedFailure,     ///< Raised by the LVISH_FAULTS injection harness.
  SessionRejected,     ///< Runtime admission refused the session (e.g. an
                       ///< explore-mode session on a busy shared Runtime).
  BudgetExceeded,      ///< The session burned through its deterministic
                       ///< step budget (SessionOptions::MaxSteps) and was
                       ///< cancelled by the scheduler.
  DeadlineExceeded,    ///< The session's wall-clock admission deadline
                       ///< (RuntimeConfig::SubmitDeadlineNanos) elapsed
                       ///< before a slot freed; it never ran.
  Shed,                ///< Overload shedding: the admission queue was at
                       ///< RuntimeConfig::MaxQueuedSessions, so the
                       ///< submission was refused immediately.
  RuntimeStopping,     ///< The Runtime was draining (Runtime::drain); the
                       ///< session was rejected instead of admitted.
  FutureConsumed,      ///< SessionFuture::get() called after the outcome
                       ///< was already consumed.
};

/// Stable lower-snake-case name (JSON/telemetry-friendly).
inline const char *faultCodeName(FaultCode C) {
  switch (C) {
  case FaultCode::ConflictingPut:
    return "conflicting_put";
  case FaultCode::ConflictingInsert:
    return "conflicting_insert";
  case FaultCode::LatticeTop:
    return "lattice_top";
  case FaultCode::PutAfterFreeze:
    return "put_after_freeze";
  case FaultCode::CancelReadConflict:
    return "cancel_read_conflict";
  case FaultCode::DeadlockDrained:
    return "deadlock_drained";
  case FaultCode::DeadlockLeakedTasks:
    return "deadlock_leaked_tasks";
  case FaultCode::CheckerViolation:
    return "checker_violation";
  case FaultCode::InjectedFailure:
    return "injected_failure";
  case FaultCode::SessionRejected:
    return "session_rejected";
  case FaultCode::BudgetExceeded:
    return "budget_exceeded";
  case FaultCode::DeadlineExceeded:
    return "deadline_exceeded";
  case FaultCode::Shed:
    return "shed";
  case FaultCode::RuntimeStopping:
    return "runtime_stopping";
  case FaultCode::FutureConsumed:
    return "future_consumed";
  }
  return "unknown";
}

// Pedigree rendering lives in src/support/Pedigree.h (Pedigree::render);
// Fault::Pedigree stores the rendered L/R string, not the bit path.

/// One contained contract violation; see file comment.
struct Fault {
  FaultCode Code = FaultCode::CheckerViolation;
  /// Full human-readable message, including the diagnostic suffix
  /// (code, LVar debug name, session, worker, pedigree).
  std::string Message;
  /// Faulting task's fork-tree pedigree ("" = the session root).
  std::string Pedigree;
  /// Debug name of the faulting LVar, when one was set ("" otherwise).
  std::string LVarName;
  uint64_t SessionId = 0;
  /// Worker that observed the fault, or -1 (diagnostic only; NOT part of
  /// the deterministic identity).
  int Worker = -1;
};

/// The deterministic "least fault" order: leftmost/outermost fork-tree
/// position first (lexicographic pedigree, 'L' < 'R' and prefixes first),
/// then code, then message. Worker/session never participate.
inline bool faultLess(const Fault &A, const Fault &B) {
  if (A.Pedigree != B.Pedigree)
    return A.Pedigree < B.Pedigree;
  if (A.Code != B.Code)
    return static_cast<uint8_t>(A.Code) < static_cast<uint8_t>(B.Code);
  return A.Message < B.Message;
}

/// Value-or-Fault result of a runPar session. \c tryRunPar and friends
/// return this; the legacy value-returning wrappers call \c valueOrAbort,
/// the single place where a contained fault still becomes a process abort.
template <typename T> class ParOutcome {
public:
  static ParOutcome success(T V) {
    ParOutcome O;
    O.Value.emplace(std::move(V));
    return O;
  }
  static ParOutcome failure(Fault F) {
    ParOutcome O;
    O.Failure.emplace(std::move(F));
    return O;
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  T &value() & {
    assert(ok() && "ParOutcome::value() on a faulted outcome");
    return *Value;
  }
  const T &value() const & {
    assert(ok() && "ParOutcome::value() on a faulted outcome");
    return *Value;
  }
  T &&value() && {
    assert(ok() && "ParOutcome::value() on a faulted outcome");
    return std::move(*Value);
  }

  const Fault &fault() const {
    assert(!ok() && "ParOutcome::fault() on a successful outcome");
    return *Failure;
  }

  /// THE abort choke point: the only place a contained Fault turns back
  /// into the legacy process abort (every value-returning runPar wrapper
  /// ends here). New code should consume the outcome instead.
  T valueOrAbort() && {
    if (!Value)
      fatalError(Failure->Message.c_str());
    return std::move(*Value);
  }

private:
  ParOutcome() = default;
  std::optional<T> Value;
  std::optional<Fault> Failure;
};

/// Effect-only sessions: ok() or a Fault.
template <> class ParOutcome<void> {
public:
  static ParOutcome success() { return ParOutcome(); }
  static ParOutcome failure(Fault F) {
    ParOutcome O;
    O.Failure.emplace(std::move(F));
    return O;
  }

  bool ok() const { return !Failure.has_value(); }
  explicit operator bool() const { return ok(); }

  const Fault &fault() const {
    assert(!ok() && "ParOutcome::fault() on a successful outcome");
    return *Failure;
  }

  /// See ParOutcome<T>::valueOrAbort.
  void valueOrAbort() && {
    if (Failure)
      fatalError(Failure->Message.c_str());
  }

private:
  ParOutcome() = default;
  std::optional<Fault> Failure;
};

} // namespace lvish

#endif // LVISH_SUPPORT_FAULT_H
