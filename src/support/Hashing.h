//===- Hashing.h - Hash mixing utilities ------------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small, deterministic hash utilities shared by the concurrent hash tables
/// (src/data) and the bipartition tables in the PhyBin substrate. Hashes are
/// platform-independent so experiments are reproducible across machines.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SUPPORT_HASHING_H
#define LVISH_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

namespace lvish {

/// Finalizing 64-bit mixer (the SplitMix64 / Murmur3 fmix64 step). Maps
/// correlated inputs to well-distributed outputs.
constexpr uint64_t mix64(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ULL;
  X ^= X >> 33;
  return X;
}

/// Combines an existing hash with a new value, order-sensitively.
constexpr uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return mix64(Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                       (Seed >> 2)));
}

/// FNV-1a over a byte range; used for strings and bit vectors.
constexpr uint64_t hashBytes(const void *Data, size_t Len,
                             uint64_t Seed = 0xcbf29ce484222325ULL) {
  const auto *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// Default hasher used by the monotone hash tables. Specialize or pass a
/// custom functor for user types.
template <typename T> struct DefaultHash {
  uint64_t operator()(const T &V) const {
    if constexpr (std::is_integral_v<T> || std::is_enum_v<T>)
      return mix64(static_cast<uint64_t>(V));
    else if constexpr (std::is_pointer_v<T>)
      return mix64(reinterpret_cast<uint64_t>(V));
    else
      return std::hash<T>{}(V);
  }
};

template <> struct DefaultHash<std::string> {
  uint64_t operator()(const std::string &S) const {
    return hashBytes(S.data(), S.size());
  }
};

} // namespace lvish

#endif // LVISH_SUPPORT_HASHING_H
