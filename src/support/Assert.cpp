//===- Assert.cpp - Assertions and fatal errors --------------------------===//

#include "src/support/Assert.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

using namespace lvish;

// Serializes fatal reports so concurrent failures print one message.
static std::atomic<bool> FatalReported{false};

void lvish::fatalError(const char *Msg) {
  bool Expected = false;
  if (FatalReported.compare_exchange_strong(Expected, true)) {
    std::fprintf(stderr, "lvish fatal error: %s\n", Msg);
    std::fflush(stderr);
  }
  std::abort();
}

void lvish::unreachableInternal(const char *Msg, const char *File,
                                unsigned Line) {
  std::fprintf(stderr, "lvish internal error at %s:%u: %s\n", File, Line, Msg);
  std::fflush(stderr);
  std::abort();
}
