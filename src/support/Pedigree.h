//===- Pedigree.h - Widened fork-tree pedigree ------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The task's deterministic identity: its position in the session's fork
/// tree, one bit per branch (0 = Left, a forked child; 1 = Right, the
/// parent's continuation). The original single-uint64_t packing silently
/// stopped recording bits past depth 64, so two distinct tasks deeper than
/// 64 forks could share a pedigree - which breaks the least-fault winner
/// rule and LVISH_FAULTS targeting. This type widens storage to 256
/// recorded bits (4 inline words, no heap), which covers every fork chain
/// the repo's stress tests produce with a wide margin; beyond that the
/// path *explicitly* saturates: depth keeps counting, \c overflowed()
/// reports it, and \c render() appends a "+N" suffix so saturated
/// pedigrees are at least visibly distinct from exact ones.
///
/// Lives in src/support/ (not src/sched/Task.h) so the fault layer's plan
/// decisions (src/fault/FaultPlan.h, which may not include scheduler
/// headers) and the support-only unit tests can use it directly.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SUPPORT_PEDIGREE_H
#define LVISH_SUPPORT_PEDIGREE_H

#include "src/support/Hashing.h"

#include <cstdint>
#include <string>

namespace lvish {

/// Fork-tree position; see file comment. Value type, trivially copyable,
/// empty path = the session root.
class Pedigree {
public:
  /// Recorded-bit capacity. Appends past this saturate (depth still
  /// counts) instead of silently wrapping into earlier bits.
  static constexpr uint32_t Capacity = 256;
  static constexpr uint32_t NumWords = Capacity / 64;

  /// Appends one branch (0 = Left, 1 = Right).
  void append(unsigned Bit) {
    if (Depth < Capacity && Bit)
      Words[Depth / 64] |= (uint64_t{1} << (Depth % 64));
    ++Depth;
  }

  /// Total branches taken from the session root (may exceed Capacity).
  uint32_t depth() const { return Depth; }

  /// True when appends were dropped: two overflowed pedigrees with equal
  /// recorded prefixes and depths may denote different tasks.
  bool overflowed() const { return Depth > Capacity; }

  /// Recorded branch \p I (must be < min(depth, Capacity)).
  bool bit(uint32_t I) const { return (Words[I / 64] >> (I % 64)) & 1; }

  /// L/R string rendering ("" = session root); saturated depths append
  /// "+N" for the N unrecorded branches. This string is the fault model's
  /// canonical pedigree form (Fault::Pedigree, FaultPlan::FailPedigree).
  std::string render() const {
    std::string S;
    uint32_t N = Depth < Capacity ? Depth : Capacity;
    S.reserve(N);
    for (uint32_t I = 0; I < N; ++I)
      S.push_back(bit(I) ? 'R' : 'L');
    if (Depth > Capacity) {
      S += '+';
      S += std::to_string(Depth - Capacity);
    }
    return S;
  }

  /// Stable, platform-independent hash of (recorded path, depth).
  uint64_t hash() const {
    uint64_t H = Depth;
    for (uint32_t W = 0; W < NumWords; ++W)
      H = hashCombine(H, Words[W]);
    return mix64(H);
  }

  friend bool operator==(const Pedigree &A, const Pedigree &B) {
    if (A.Depth != B.Depth)
      return false;
    for (uint32_t W = 0; W < NumWords; ++W)
      if (A.Words[W] != B.Words[W])
        return false;
    return true;
  }
  friend bool operator!=(const Pedigree &A, const Pedigree &B) {
    return !(A == B);
  }

private:
  uint64_t Words[NumWords] = {};
  uint32_t Depth = 0;
};

} // namespace lvish

#endif // LVISH_SUPPORT_PEDIGREE_H
