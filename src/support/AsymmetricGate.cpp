//===- AsymmetricGate.cpp - Put/handler-registration gate ----------------===//

#include "src/support/AsymmetricGate.h"

#include <thread>

using namespace lvish;

// Global thread -> slot-index assignment, shared by all gate instances (the
// index is only an identity; each gate owns its own slot array).
static std::atomic<unsigned> NextThreadSlot{0};

static int myThreadSlot() {
  thread_local int Slot = -2;
  if (Slot == -2) {
    unsigned S = NextThreadSlot.fetch_add(1, std::memory_order_relaxed);
    Slot = S < AsymmetricGate::MaxSlots ? static_cast<int>(S) : -1;
  }
  return Slot;
}

AsymmetricGate::AsymmetricGate() = default;

int AsymmetricGate::enterFast() {
  int S = myThreadSlot();
  if (S < 0) {
    // No private slot available: fall back to the exclusive mutex.
    SlowMutex.lock();
    return -1;
  }
  std::atomic<uint32_t> &Mine = Slots[S].Active;
  // Nested fast sections on the same thread skip the Dekker handshake; the
  // outermost section already synchronized with any registrar.
  if (Mine.load(std::memory_order_relaxed) > 0) {
    Mine.fetch_add(1, std::memory_order_relaxed);
    return S;
  }
  for (;;) {
    // Dekker publication: announce intent on a private line, then check the
    // shared flag. Both must be sequentially consistent.
    Mine.store(1, std::memory_order_seq_cst);
    if (!SlowActive.load(std::memory_order_seq_cst))
      return S;
    // A registrar is active or waiting; back out and wait it out.
    Mine.store(0, std::memory_order_seq_cst);
    while (SlowActive.load(std::memory_order_acquire))
      std::this_thread::yield();
  }
}

void AsymmetricGate::exitFast(int Slot) {
  if (Slot < 0) {
    SlowMutex.unlock();
    return;
  }
  Slots[Slot].Active.fetch_sub(1, std::memory_order_release);
}

void AsymmetricGate::enterSlow() {
  SlowMutex.lock();
  SlowActive.store(1, std::memory_order_seq_cst);
  // Wait for every in-flight fast-side section to drain.
  for (unsigned I = 0; I < MaxSlots; ++I)
    while (Slots[I].Active.load(std::memory_order_seq_cst))
      std::this_thread::yield();
}

void AsymmetricGate::exitSlow() {
  SlowActive.store(0, std::memory_order_release);
  SlowMutex.unlock();
}
