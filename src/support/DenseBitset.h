//===- DenseBitset.h - Fixed-universe dynamic bitset ------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact bitset over a universe whose size is fixed at construction.
/// This is the paper's \c DenseLabelSet: PhyBin encodes each tree
/// bipartition as a bit vector over the leaf/species set. It also backs the
/// tree-membership masks in the HashRF distance phase.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SUPPORT_DENSEBITSET_H
#define LVISH_SUPPORT_DENSEBITSET_H

#include "src/support/Assert.h"
#include "src/support/Hashing.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lvish {

/// Fixed-universe bitset with value semantics, deterministic hashing, and
/// total ordering (lexicographic on words) so containers iterate
/// deterministically.
class DenseBitset {
public:
  DenseBitset() : NumBits(0) {}

  /// Creates an all-zero set over a universe of \p N bits.
  explicit DenseBitset(size_t N) : NumBits(N), Words((N + 63) / 64, 0) {}

  size_t universeSize() const { return NumBits; }

  void set(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= (uint64_t(1) << (I % 64));
  }

  void reset(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }

  bool test(size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  /// Number of set bits.
  size_t count() const {
    size_t C = 0;
    for (uint64_t W : Words)
      C += static_cast<size_t>(__builtin_popcountll(W));
    return C;
  }

  bool none() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  bool all() const { return count() == NumBits; }

  /// In-place union with \p O (same universe required).
  DenseBitset &operator|=(const DenseBitset &O) {
    assert(NumBits == O.NumBits && "universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= O.Words[I];
    return *this;
  }

  /// In-place intersection with \p O (same universe required).
  DenseBitset &operator&=(const DenseBitset &O) {
    assert(NumBits == O.NumBits && "universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= O.Words[I];
    return *this;
  }

  /// Flips every bit in the universe. Used to canonicalize bipartitions
  /// (a bipartition and its complement denote the same tree edge).
  void flipAll() {
    for (uint64_t &W : Words)
      W = ~W;
    clearPadding();
  }

  /// True iff this set and \p O share no elements.
  bool disjointWith(const DenseBitset &O) const {
    assert(NumBits == O.NumBits && "universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & O.Words[I])
        return false;
    return true;
  }

  /// True iff every element of this set is in \p O.
  bool subsetOf(const DenseBitset &O) const {
    assert(NumBits == O.NumBits && "universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & ~O.Words[I])
        return false;
    return true;
  }

  friend bool operator==(const DenseBitset &A, const DenseBitset &B) {
    return A.NumBits == B.NumBits && A.Words == B.Words;
  }

  friend bool operator!=(const DenseBitset &A, const DenseBitset &B) {
    return !(A == B);
  }

  /// Deterministic total order: first by universe size, then by words.
  friend bool operator<(const DenseBitset &A, const DenseBitset &B) {
    if (A.NumBits != B.NumBits)
      return A.NumBits < B.NumBits;
    return A.Words < B.Words;
  }

  /// Deterministic, platform-independent hash of the contents.
  uint64_t hash() const {
    uint64_t H = mix64(NumBits);
    for (uint64_t W : Words)
      H = hashCombine(H, W);
    return H;
  }

  /// Renders as a 0/1 string, bit 0 first (for diagnostics and tests).
  std::string toString() const {
    std::string S;
    S.reserve(NumBits);
    for (size_t I = 0; I < NumBits; ++I)
      S.push_back(test(I) ? '1' : '0');
    return S;
  }

private:
  void clearPadding() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  size_t NumBits;
  std::vector<uint64_t> Words;
};

template <> struct DefaultHash<DenseBitset> {
  uint64_t operator()(const DenseBitset &B) const { return B.hash(); }
};

} // namespace lvish

#endif // LVISH_SUPPORT_DENSEBITSET_H
