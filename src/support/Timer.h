//===- Timer.h - Wall-clock timing for benchmarks ---------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timing helpers used by the benchmark harnesses and
/// the scheduler's task-duration recorder.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SUPPORT_TIMER_H
#define LVISH_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace lvish {

/// Nanoseconds on the steady clock. The ONE sanctioned wall-clock read in
/// the deterministic layers (everything else is barred by the analyzer's
/// wall-clock-in-core rule): callers use it for diagnostics and latency
/// accounting only, never for semantic decisions - those stay functions
/// of the schedule so explore/replay reproduce bit-for-bit.
inline uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          // lvish-lint: allow(wall-clock-in-core)
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Measures elapsed wall-clock time from construction (or the last
/// \c restart()).
class WallTimer {
public:
  WallTimer() : Start(nowNanos()) {}

  void restart() { Start = nowNanos(); }

  uint64_t elapsedNanos() const { return nowNanos() - Start; }

  double elapsedSeconds() const {
    return static_cast<double>(elapsedNanos()) * 1e-9;
  }

private:
  uint64_t Start;
};

/// Runs \p F repeatedly and returns the median elapsed seconds over
/// \p Reps runs. The paper reports medians of five runs; benchmark
/// harnesses default to the same.
template <typename F> double medianSeconds(F &&Fn, int Reps = 5) {
  double Times[64];
  if (Reps > 64)
    Reps = 64;
  if (Reps < 1)
    Reps = 1;
  for (int I = 0; I < Reps; ++I) {
    WallTimer T;
    Fn();
    Times[I] = T.elapsedSeconds();
  }
  // Insertion sort; Reps is tiny.
  for (int I = 1; I < Reps; ++I)
    for (int J = I; J > 0 && Times[J] < Times[J - 1]; --J) {
      double Tmp = Times[J];
      Times[J] = Times[J - 1];
      Times[J - 1] = Tmp;
    }
  return Times[Reps / 2];
}

} // namespace lvish

#endif // LVISH_SUPPORT_TIMER_H
