//===- SplitMix.h - Splittable pseudo-random numbers ------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A splittable PRNG in the SplitMix64 family. Section 4 of the paper builds
/// deterministic parallel random-number generation (\c RngT) out of a
/// splittable generator threaded through a state transformer: at every
/// \c fork the generator state is split into two independent streams, so the
/// numbers drawn by each task are a function of the fork tree (the task's
/// pedigree), not of the scheduler's interleaving.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SUPPORT_SPLITMIX_H
#define LVISH_SUPPORT_SPLITMIX_H

#include "src/support/Hashing.h"

#include <cstdint>
#include <utility>

namespace lvish {

/// Deterministic splittable PRNG. \c next() advances the stream; \c split()
/// derives two statistically independent child generators. Splitting mixes a
/// distinct "gamma"-style constant per branch so left and right children of a
/// fork never collide.
class SplitMix64 {
public:
  SplitMix64() : State(0x9e3779b97f4a7c15ULL) {}
  explicit SplitMix64(uint64_t Seed) : State(mix64(Seed)) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    return mix64(State);
  }

  /// Uniform value in [0, Bound) (Bound > 0). Uses 128-bit multiply-shift
  /// reduction; the slight modulo bias of the classic method is avoided.
  uint64_t nextBounded(uint64_t Bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Splits this generator into two independent children, consuming it.
  /// Deterministic: the pair depends only on the current state.
  std::pair<SplitMix64, SplitMix64> split() const {
    SplitMix64 L, R;
    L.State = mix64(State ^ 0xa5a5a5a5a5a5a5a5ULL);
    R.State = mix64(State ^ 0x5a5a5a5a5a5a5a5aULL);
    return {L, R};
  }

  uint64_t rawState() const { return State; }

  friend bool operator==(const SplitMix64 &A, const SplitMix64 &B) {
    return A.State == B.State;
  }

private:
  uint64_t State;
};

} // namespace lvish

#endif // LVISH_SUPPORT_SPLITMIX_H
