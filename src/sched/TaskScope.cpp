//===- TaskScope.cpp - Counted task scopes with quiescence ----------------===//

#include "src/sched/TaskScope.h"

#include "src/sched/Scheduler.h"
#include "src/sched/Task.h"

#include <cassert>

using namespace lvish;

void TaskScope::exitOne() {
  if (Active.fetch_sub(1, std::memory_order_acq_rel) != 1)
    return;
  std::vector<Task *> ToWake;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Active.load(std::memory_order_acquire) != 0)
      return; // A racing enter() revived the scope.
    ToWake.swap(DrainWaiters);
    for (Task *T : ToWake)
      T->ParkedOn = nullptr;
  }
  // Drain order is a scheduling decision point: in explore mode the
  // controller chooses which quiesce waiter resumes first.
  if (ToWake.size() > 1)
    ToWake.front()->Sched->explorePermuteWakes(ToWake);
  for (Task *T : ToWake)
    T->Sched->wake(T, Scheduler::currentTask());
}

bool TaskScope::parkUntilDrained(Task *Waiter) {
  assert(Waiter && "scope waiter must be a task");
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Active.load(std::memory_order_acquire) == 0)
    return false; // Already drained; caller must not suspend.
  DrainWaiters.push_back(Waiter);
  Waiter->ParkedOn = this;
  // Bookkeeping last, under the lock: once the pending-work count drops,
  // anyone observing quiescence must also observe this park (see
  // Scheduler.h session protocol).
  Waiter->Sched->onTaskParked(Waiter);
  return true;
}

void TaskScope::removeParkedTask(Task *T) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto It = DrainWaiters.begin(); It != DrainWaiters.end(); ++It)
    if (*It == T) {
      DrainWaiters.erase(It);
      T->ParkedOn = nullptr;
      return;
    }
}
