//===- CancelNode.h - Transitive cancellation tree --------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The liveness tree behind the paper's \c CancelT transformer (Section
/// 6.1). Each cancellable future allocates one node storing "whether the
/// computation is still alive, and a list of the child CFutures, which must
/// be cancelled if the current thread is cancelled". Regular forks share
/// the parent's node; \c forkCancelable creates a child node. The scheduler
/// polls a task's node at every scheduler action (fork, get, put), which the
/// paper observes is sufficient because scheduler actions are frequent.
///
/// The node also tracks the read-vs-cancel conflict: "It is an error to both
/// cancel and read such a future, even if the read happens first." Both
/// orders deterministically raise the same error.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SCHED_CANCELNODE_H
#define LVISH_SCHED_CANCELNODE_H

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace lvish {

/// One node in the cancellation tree. Shared by all tasks forked (without a
/// new cancellable boundary) under the same \c forkCancelable.
class CancelNode {
public:
  CancelNode() = default;

  CancelNode(const CancelNode &) = delete;
  CancelNode &operator=(const CancelNode &) = delete;

  /// True while this computation may still run.
  bool isLive() const { return Live.load(std::memory_order_acquire); }

  /// Cancels this node and, transitively, every registered child node.
  /// Idempotent and safe to race with child registration.
  void cancel() {
    // Mark first so new work under this node observes death immediately.
    if (Live.exchange(false, std::memory_order_acq_rel) == false)
      return; // Already cancelled.
    WasCancelled.store(true, std::memory_order_release);
    std::vector<std::shared_ptr<CancelNode>> Snapshot;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Snapshot = Children;
    }
    for (const auto &Child : Snapshot)
      Child->cancel();
  }

  /// Registers \p Child so a later cancel of this node reaches it. If this
  /// node is already dead the child is cancelled immediately.
  void addChild(std::shared_ptr<CancelNode> Child) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Children.push_back(Child);
    }
    // Re-check after publication: a concurrent cancel either saw the child
    // in its snapshot or we see Live == false here (or both; cancel is
    // idempotent).
    if (!isLive())
      Child->cancel();
  }

  /// Records that the future guarded by this node was read. Returns true if
  /// the node was also cancelled (a determinism error the caller must
  /// report).
  bool noteRead() {
    WasRead.store(true, std::memory_order_release);
    return WasCancelled.load(std::memory_order_acquire);
  }

  /// Records a cancel for conflict detection. Returns true if the future
  /// was also read.
  bool noteCancelConflict() const {
    return WasRead.load(std::memory_order_acquire);
  }

private:
  std::atomic<bool> Live{true};
  std::atomic<bool> WasRead{false};
  std::atomic<bool> WasCancelled{false};
  std::mutex Mutex;
  std::vector<std::shared_ptr<CancelNode>> Children;
};

} // namespace lvish

#endif // LVISH_SCHED_CANCELNODE_H
