//===- SessionState.h - Per-session scheduler accounting --------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One \c SessionState per in-flight runPar session on a scheduler. The
/// paper's `s` type parameter scopes every LVar to one session; the service
/// runtime (src/service) additionally multiplexes many *concurrent*
/// sessions onto one worker pool, so the bookkeeping that used to be
/// scheduler-global - the outstanding-task count whose zero means
/// quiescence, the recorded fault and the cancellation root it fires, the
/// quiescence condition variable - lives here, one instance per session.
///
/// Lifetime: created by Scheduler::beginSession, shared (shared_ptr)
/// between the scheduler's session table, every Task of the session, and
/// the submitter's completion plumbing. Tasks hold a shared_ptr so the
/// retire path can decrement \c Pending after the task is destroyed even
/// if the session table entry is concurrently erased.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SCHED_SESSIONSTATE_H
#define LVISH_SCHED_SESSIONSTATE_H

#include "src/obs/SchedulerStats.h"
#include "src/sched/CancelNode.h"
#include "src/support/Fault.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

namespace lvish {

/// Per-session scheduler state; see file comment. Fields are manipulated
/// by the owning Scheduler only (callers go through the Scheduler's
/// session API).
class SessionState {
public:
  /// Session id, also stamped on every Task and LVar of the session.
  uint64_t Id = 0;

  /// Tasks of THIS session that are runnable or running. Zero means the
  /// session is quiescent: nothing of this session can ever create work
  /// again. The scheduler's global PendingWork counts all sessions (the
  /// explore driver loops on it); this one scopes quiescence per session.
  std::atomic<int64_t> Pending{0};

  /// The session root's cancellation node: what raiseFault cancels to
  /// contain a fault to this session.
  std::shared_ptr<CancelNode> CancelRoot;

  /// Deterministic step budget: maximum number of scheduler decisions
  /// (task resumes) this session may consume before it is killed with
  /// FaultCode::BudgetExceeded. 0 means unlimited. Written once, before
  /// the session root is scheduled (publication piggybacks on the
  /// schedule() handoff), read by every worker that pops a task of this
  /// session. Counted in steps - not wall clock - so the kill point is
  /// identical on every run of the same schedule (DESIGN.md Section 16).
  uint64_t StepBudget = 0;

  /// Scheduler decisions charged so far (relaxed; the kill is raised by
  /// exactly the worker whose fetch_add crossed the budget).
  std::atomic<uint64_t> StepsUsed{0};

  /// Scheduler::stats() snapshot taken at beginSession; the session's
  /// stats delta is the current snapshot minus this one. Exact when
  /// sessions run back-to-back; approximate while sessions overlap
  /// (concurrent sessions' events land in the same worker counters).
  SchedulerStats StartStats;

  /// Guards SessionFault / Observer / ObserverFired and backs CV.
  std::mutex Mutex;

  /// Signalled when Pending hits zero (see Scheduler::removePendingFor).
  std::condition_variable CV;

  /// Lattice-least fault recorded for this session, if any.
  std::optional<Fault> SessionFault;

  /// Fired exactly once when Pending first hits zero, AFTER Mutex is
  /// released. May run under a park-site lock (the last task of a session
  /// can park while holding one), so it must only enqueue - the service
  /// runtime pushes the session onto its completion queue here; heavy
  /// finalization (finishSession) happens on the finalizer thread.
  std::function<void()> Observer;
  bool ObserverFired = false;
};

} // namespace lvish

#endif // LVISH_SCHED_SESSIONSTATE_H
