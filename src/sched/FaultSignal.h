//===- FaultSignal.h - In-session fault raising -----------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The containment half of the fault model (src/support/Fault.h): every
/// contract-violation site (conflicting put, put-after-freeze, cancel/read
/// conflict, checker violation, injected failure) calls
/// \c detail::raiseSessionFault instead of \c fatalError. The helper
///
///   1. formats the enriched diagnostic (fault code, LVar debug name,
///      session id, worker id, task pedigree),
///   2. records it as the session's fault via Scheduler::raiseFault (the
///      lattice-least fault wins under races, and the session's root
///      CancelNode is cancelled so remaining tasks are transitively
///      retired at their next poll point), and
///   3. throws \c FaultSignal, unwinding the faulting coroutine.
///
/// \c PromiseBase::unhandled_exception (src/core/Par.h) catches the signal
/// and marks the task \c FaultPoisoned; the final awaiter then retires the
/// whole task. Outside a session (no current task) the helper falls back
/// to the legacy process abort: there is no session to contain into.
///
/// FaultSignal is the one exception type lvish library code ever throws,
/// and it never escapes the scheduler: it is always caught by the promise
/// of the coroutine that triggered it.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SCHED_FAULTSIGNAL_H
#define LVISH_SCHED_FAULTSIGNAL_H

#include "src/support/Fault.h"

namespace lvish {

class Task;

/// Thrown (and always re-caught inside the same task) after a fault has
/// been recorded; see file comment. Deliberately carries no payload - the
/// session's fault slot is the single source of truth.
struct FaultSignal {};

namespace detail {

/// Raises \p Code with base message \p Msg as the current session's fault
/// and unwinds by throwing FaultSignal; see file comment. \p T must be the
/// task executing this call (null falls back to fatalError). \p LVarName
/// is the faulting LVar's debug name, or null.
[[noreturn]] void raiseSessionFault(Task *T, FaultCode Code, const char *Msg,
                                    const char *LVarName = nullptr);

} // namespace detail
} // namespace lvish

#endif // LVISH_SCHED_FAULTSIGNAL_H
