//===- Scheduler.h - Work-stealing Par scheduler ----------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work-stealing scheduler that runs Par computations, mirroring the
/// "lightweight, library-level threads ... scheduled by a custom
/// work-stealing scheduler provided by LVish" (Section 2 of the paper).
/// Tasks are C++20 coroutine chains (see src/sched/Task.h); a blocked
/// threshold read parks its task on the LVar's waiter list and the worker
/// moves on, so blocking never occupies an OS thread.
///
/// Session protocol (driven by the service runtime in src/service, which
/// runPar wraps):
///   1. beginSession() allocates a SessionState (id, per-session pending
///      count, fault slot, cancel root); the root task is tagged with it
///      and scheduled;
///   2. waitSessionQuiescent(S) blocks until no task OF THAT SESSION is
///      runnable or running - sibling sessions sharing the pool keep
///      running; async submitters install a quiescence observer instead;
///   3. finishSession(S) reaps the session's permanently parked tasks. A
///      task that is still parked at quiescence can never be woken (only
///      tasks perform puts, and LVars are session-local), so destroying it
///      cannot change any observable outcome; this is how cancelled-and-
///      forgotten or speculatively blocked tasks are collected, matching
///      GC of blocked green threads in the Haskell original. If the *root*
///      never produced a result, the program has a deterministic deadlock,
///      which the session driver reports as a Fault.
///
/// Fairness across sessions: externally submitted and yielded tasks land
/// in per-session inject queues drained round-robin (one task per session
/// per turn), and every FairnessStride-th dispatch a worker checks the
/// inject queues BEFORE its own deque, so a fan-out-heavy session whose
/// deques never drain cannot starve injected siblings.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SCHED_SCHEDULER_H
#define LVISH_SCHED_SCHEDULER_H

#include "src/obs/SchedulerStats.h"
#include "src/sched/ExploreHooks.h"
#include "src/sched/SessionState.h"
#include "src/sched/Task.h"
#include "src/sched/Trace.h"
#include "src/sched/WorkStealingDeque.h"
#include "src/support/Fault.h"
#include "src/support/SplitMix.h"

#include <atomic>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lvish {

/// Scheduler construction parameters.
struct SchedulerConfig {
  /// Number of worker threads. 0 means std::thread::hardware_concurrency().
  unsigned NumWorkers = 0;
  /// Record the task DAG for the parallelism simulator (src/sim).
  bool EnableTracing = false;
  /// Seed for the (non-semantic) steal-victim randomization.
  uint64_t StealSeed = 0x6c76697368ULL; // "lvish"
  /// Multi-session fairness: every FairnessStride-th dispatch a worker
  /// checks the (round-robin, per-session) inject queues before its own
  /// deque, bounding how long a fan-out-heavy session can starve injected
  /// siblings. 0 disables the preemption check (single-tenant behavior);
  /// the stride only matters when several sessions share the pool.
  unsigned FairnessStride = 61;
  /// Controlled-scheduling test mode (DESIGN.md Section 12): when
  /// non-null, no worker threads are spawned and the session thread
  /// single-steps NumWorkers *virtual* workers, delegating every
  /// nondeterministic decision to this controller. Set via
  /// RunOptions::Explore; null (zero overhead) in production runs.
  explore::ScheduleCtl *Explore = nullptr;
};

/// Work-stealing scheduler; see file comment. One scheduler runs many
/// sessions, concurrently: each session carries its own SessionState, so
/// quiescence, faults, and stats deltas are all session-scoped.
class Scheduler {
public:
  explicit Scheduler(SchedulerConfig Config = SchedulerConfig());
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Index of the calling worker's per-worker slot in a [0, numWorkers()]
  /// array, with numWorkers() for external (non-worker) callers. Used by
  /// HandlerPool to pick the delta batch of the worker running a put.
  unsigned callerBatchIndex() const;

  /// Creates (but does not schedule) a task owning coroutine \p Root.
  /// When \p Parent is non-null the child inherits session, cancellation
  /// node, scopes, and a split of every transformer layer.
  Task *createTask(std::coroutine_handle<> Root, Task *Parent);

  /// Makes \p T runnable for the first time, or again after a park.
  void schedule(Task *T);

  /// Wakes a parked task; \p Waker (may be null) is recorded as the
  /// dataflow edge source when tracing.
  void wake(Task *T, Task *Waker);

  /// Requeues a task that is yielding cooperatively: it never parked, so
  /// the pending-work count and scope counts are untouched.
  void wakeKeepPending(Task *T);

  /// Bookkeeping for a task that just parked itself on a waiter list;
  /// called by the parking awaiter under the park site's lock (see
  /// LVarBase for the exact publication protocol).
  void onTaskParked(Task *T);

  /// Called from a root coroutine's final awaiter: retires the finished
  /// task, destroying its frame.
  void onTaskFinished(Task *T);

  /// Defers destruction of the (currently suspended) cancelled task to the
  /// worker loop, immediately after the current resume slice unwinds.
  void deferRetire(Task *T);

  /// Opens a new session: allocates an id, snapshots the stats baseline,
  /// and registers the state in the session table so raiseFault can route
  /// to it. \p SessionRoot is the root CancelNode a contained fault
  /// cancels. Call BEFORE creating the session's root task so the root's
  /// creation lands inside the session's stats delta; then stamp the root
  /// (Task::Session / Task::SessionId / Task::Cancel) before scheduling.
  std::shared_ptr<SessionState> beginSession(
      std::shared_ptr<CancelNode> SessionRoot);

  /// Stamps a freshly installed session root (Task::Session /
  /// Task::SessionId / Task::Cancel) under the task-registry lock.
  /// createTask publishes the root into the registry before the driver
  /// can stamp it, and finishSession scans the registry from other
  /// threads reading Task::Session - so the stamp must synchronize with
  /// that scan. Child tasks inherit these fields inside createTask and
  /// never need this.
  void bindSessionRoot(Task *Root, std::shared_ptr<SessionState> S,
                       std::shared_ptr<CancelNode> Cancel);

  /// Installs \p OnQuiescent to fire exactly once when the session's
  /// pending count first reaches zero. Must be installed before the
  /// session's root is scheduled. The callback may run under a park-site
  /// lock: it must only enqueue (see SessionState::Observer).
  void setSessionObserver(SessionState &S, std::function<void()> OnQuiescent);

  /// Blocks the calling (non-worker) thread until no task of session \p S
  /// is runnable or running; sibling sessions keep executing. In explore
  /// mode this is where the session actually executes: the calling thread
  /// single-steps the virtual workers to quiescence.
  void waitSessionQuiescent(SessionState &S);

  /// Explore mode: reorders a batch of tasks about to be woken together
  /// (multi-task threshold wakeups, handler-pool drains) by repeatedly
  /// asking the controller which of the remaining tasks fires next. No-op
  /// (one null check) outside explore mode or for batches of one.
  void explorePermuteWakes(std::vector<Task *> &ToWake);

  /// Explore mode: reorders a batch of parked producers about to be
  /// resumed by a BoundedStream capacity credit. Identical mechanics to
  /// explorePermuteWakes but routed through ScheduleCtl::onBackpressure so
  /// the choice is recorded (and replayed) as its own decision kind. No-op
  /// outside explore mode or for batches of one.
  void explorePermuteBackpressure(std::vector<Task *> &ToWake);

  /// The session's schedule controller, or null outside explore mode.
  explore::ScheduleCtl *exploreCtl() const { return ExploreCtl; }

  /// Reaps every task of session \p S still registered (all are
  /// permanently parked at this point), unregisters the session from the
  /// table, and returns how many tasks were reaped. Requires the session
  /// to be quiescent (Pending == 0). Sibling sessions are untouched:
  /// LVars are session-local (LVarBase::checkSession), so reaping one
  /// session's park sites can never wake another's waiters.
  size_t finishSession(SessionState &S);

  /// Records \p F as its session's fault - routed by F.SessionId through
  /// the session table, keeping whichever of the old and new fault is
  /// least under faultLess, so the winner under a fault race is
  /// deterministic - and transitively cancels THAT SESSION ONLY via its
  /// root CancelNode. Thread-safe; called from workers mid-violation. A
  /// fault for an already-finished session is dropped.
  void raiseFault(Fault F);

  /// Takes (and clears) the fault recorded for session \p S, if any.
  /// Called by the session driver after finishSession.
  std::optional<Fault> takeSessionFault(SessionState &S);

  /// The session's scheduler-stats delta: stats() minus the baseline
  /// snapshotted at beginSession. Counters are exact once the session has
  /// quiesced AND no sibling session ran concurrently; with overlapping
  /// sessions the delta attributes shared-pool activity approximately.
  /// MaxDequeDepth and NumWorkers are not differences: the current
  /// (cumulative) values are reported.
  SchedulerStats sessionStats(const SessionState &S) const;

  /// The task currently executing on this thread (null on non-workers).
  static Task *currentTask();

  /// Worker index of the calling thread (on whichever scheduler owns it),
  /// or -1 on non-worker threads. Diagnostic only.
  static int currentWorkerIndex();

  /// Trace recorder, or null when tracing is disabled.
  TraceRecorder *trace() { return Tracing ? &Recorder : nullptr; }

  /// Aggregates every worker's counter block (plus the shared block for
  /// off-worker events) into one snapshot. Counters are cumulative over
  /// the scheduler's lifetime; the snapshot is exact once all sessions
  /// have quiesced, approximate while workers run. Per-session deltas
  /// (what SessionOptions::StatsOut delivers) come from sessionStats().
  SchedulerStats stats() const;

private:
  struct alignas(64) Worker {
    WorkStealingDeque<Task> Deque;
    SplitMix64 StealRng;
    Task *PendingRetire = nullptr;
    std::thread Thread;
    /// Dispatches since this worker last checked the inject queues ahead
    /// of its own deque (see SchedulerConfig::FairnessStride).
    unsigned InjectStreak = 0;
    /// This worker's private counter block (its own cache line).
    obs::WorkerCounters Counters;
  };

  void workerLoop(unsigned Index);
  Task *findWork(unsigned Index);
  /// Charges one scheduler decision against \p T's session step budget
  /// (SessionState::StepBudget). Exactly the call whose count first
  /// crosses the budget raises FaultCode::BudgetExceeded through the
  /// normal cancel-and-drain path; the popped task then retires via the
  /// isCancelled check that follows every charge site. No-op (one load)
  /// for unbudgeted sessions.
  void chargeBudgetStep(Task *T);
  /// Explore mode's session driver: runs on the waitSessionQuiescent
  /// caller, masquerading as each virtual worker in turn.
  void exploreRun();
  /// The calling thread's counter block: the worker's own when called on
  /// a worker of this scheduler, else the shared external block (runPar
  /// roots and wakes arrive from non-worker threads).
  obs::WorkerCounters &myCounters();
  Task *tryInjected();
  /// Enqueues \p T on its session's inject queue (round-robin drained).
  void pushInjected(Task *T);
  /// Bumps the global pending count and \p T's session count.
  void addPending(Task *T);
  /// Drops both counts for a still-live task (park path).
  void removePending(Task *T);
  /// Drops both counts when the task may already be destroyed (retire
  /// paths capture the shared session state first). Fires the session's
  /// quiescence CV/observer when its count hits zero.
  void removePendingFor(const std::shared_ptr<SessionState> &S);
  void retire(Task *T);
  void registryAdd(Task *T);
  void registryRemove(Task *T);
  void sliceEnd(Task *T);
  void sliceBegin(Task *T);
  /// Ends the current slice and opens a new one (at fork and wake points);
  /// returns the ended slice's id, or TraceRecorder::None.
  uint32_t sliceCut(Task *T);

  const bool Tracing;
  explore::ScheduleCtl *const ExploreCtl;
  const unsigned FairnessStride;
  TraceRecorder Recorder;

  std::vector<std::unique_ptr<Worker>> Workers;
  std::atomic<bool> Shutdown{false};

  /// Tasks that are runnable or currently running, across ALL sessions.
  /// Zero means full-pool quiescence; the explore driver loops on it.
  /// Per-session quiescence is SessionState::Pending.
  std::atomic<int64_t> PendingWork{0};

  std::atomic<uint64_t> NextSessionId{1};

  /// Counter block for events raised off the worker threads.
  obs::WorkerCounters ExternalCounters;

  // External submission queues (session roots; yields; wakes from
  // non-worker threads), one per session, drained round-robin: each turn
  // takes ONE task from the front session's queue, then rotates that
  // session to the back - deficit round-robin with quantum 1. A single
  // session degenerates to the old FIFO.
  std::mutex InjectMutex;
  std::unordered_map<uint64_t, std::deque<Task *>> InjectBySession;
  std::deque<uint64_t> InjectOrder;
  size_t InjectedCount = 0;

  // Idle workers sleep here.
  std::mutex IdleMutex;
  std::condition_variable IdleCV;
  std::atomic<int> SleeperCount{0};

  // Live sessions, keyed by id (raiseFault routes through this).
  mutable std::mutex SessionsMutex;
  std::unordered_map<uint64_t, std::shared_ptr<SessionState>> Sessions;

  // Registry of all live tasks (intrusive list through Task::RegPrev/Next).
  std::mutex RegistryMutex;
  Task *RegistryHead = nullptr;
};

} // namespace lvish

#endif // LVISH_SCHED_SCHEDULER_H
