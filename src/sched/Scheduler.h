//===- Scheduler.h - Work-stealing Par scheduler ----------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work-stealing scheduler that runs Par computations, mirroring the
/// "lightweight, library-level threads ... scheduled by a custom
/// work-stealing scheduler provided by LVish" (Section 2 of the paper).
/// Tasks are C++20 coroutine chains (see src/sched/Task.h); a blocked
/// threshold read parks its task on the LVar's waiter list and the worker
/// moves on, so blocking never occupies an OS thread.
///
/// Session protocol (driven by runPar in src/core/RunPar.h):
///   1. create a root task, assign a fresh session id, schedule it;
///   2. waitSessionQuiescent() blocks until no task is runnable or running;
///   3. finishSession() reaps permanently parked tasks. A task that is
///      still parked at quiescence can never be woken (only tasks perform
///      puts), so destroying it cannot change any observable outcome; this
///      is how cancelled-and-forgotten or speculatively blocked tasks are
///      collected, matching GC of blocked green threads in the Haskell
///      original. If the *root* never produced a result, the program has a
///      deterministic deadlock, which runPar reports as a fatal error.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SCHED_SCHEDULER_H
#define LVISH_SCHED_SCHEDULER_H

#include "src/obs/SchedulerStats.h"
#include "src/sched/ExploreHooks.h"
#include "src/sched/Task.h"
#include "src/sched/Trace.h"
#include "src/sched/WorkStealingDeque.h"
#include "src/support/Fault.h"
#include "src/support/SplitMix.h"

#include <atomic>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace lvish {

/// Scheduler construction parameters.
struct SchedulerConfig {
  /// Number of worker threads. 0 means std::thread::hardware_concurrency().
  unsigned NumWorkers = 0;
  /// Record the task DAG for the parallelism simulator (src/sim).
  bool EnableTracing = false;
  /// Seed for the (non-semantic) steal-victim randomization.
  uint64_t StealSeed = 0x6c76697368ULL; // "lvish"
  /// Controlled-scheduling test mode (DESIGN.md Section 12): when
  /// non-null, no worker threads are spawned and the session thread
  /// single-steps NumWorkers *virtual* workers, delegating every
  /// nondeterministic decision to this controller. Set via
  /// RunOptions::Explore; null (zero overhead) in production runs.
  explore::ScheduleCtl *Explore = nullptr;
};

/// Work-stealing scheduler; see file comment. One scheduler may run many
/// sessions, but only one session at a time.
class Scheduler {
public:
  explicit Scheduler(SchedulerConfig Config = SchedulerConfig());
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Index of the calling worker's per-worker slot in a [0, numWorkers()]
  /// array, with numWorkers() for external (non-worker) callers. Used by
  /// HandlerPool to pick the delta batch of the worker running a put.
  unsigned callerBatchIndex() const;

  /// Creates (but does not schedule) a task owning coroutine \p Root.
  /// When \p Parent is non-null the child inherits session, cancellation
  /// node, scopes, and a split of every transformer layer.
  Task *createTask(std::coroutine_handle<> Root, Task *Parent);

  /// Makes \p T runnable for the first time, or again after a park.
  void schedule(Task *T);

  /// Wakes a parked task; \p Waker (may be null) is recorded as the
  /// dataflow edge source when tracing.
  void wake(Task *T, Task *Waker);

  /// Requeues a task that is yielding cooperatively: it never parked, so
  /// the pending-work count and scope counts are untouched.
  void wakeKeepPending(Task *T);

  /// Bookkeeping for a task that just parked itself on a waiter list;
  /// called by the parking awaiter under the park site's lock (see
  /// LVarBase for the exact publication protocol).
  void onTaskParked(Task *T);

  /// Called from a root coroutine's final awaiter: retires the finished
  /// task, destroying its frame.
  void onTaskFinished(Task *T);

  /// Defers destruction of the (currently suspended) cancelled task to the
  /// worker loop, immediately after the current resume slice unwinds.
  void deferRetire(Task *T);

  /// Allocates a fresh session id.
  uint64_t newSessionId() {
    return NextSessionId.fetch_add(1, std::memory_order_relaxed);
  }

  /// Blocks the calling (non-worker) thread until no task is runnable or
  /// running. In explore mode this is where the session actually executes:
  /// the calling thread single-steps the virtual workers to quiescence.
  void waitSessionQuiescent();

  /// Explore mode: reorders a batch of tasks about to be woken together
  /// (multi-task threshold wakeups, handler-pool drains) by repeatedly
  /// asking the controller which of the remaining tasks fires next. No-op
  /// (one null check) outside explore mode or for batches of one.
  void explorePermuteWakes(std::vector<Task *> &ToWake);

  /// The session's schedule controller, or null outside explore mode.
  explore::ScheduleCtl *exploreCtl() const { return ExploreCtl; }

  /// Reaps every task still registered (all are permanently parked at this
  /// point) and returns how many were reaped.
  size_t finishSession();

  /// Opens the session's fault scope: clears any previously recorded
  /// fault and remembers the session root's cancellation node (what
  /// raiseFault cancels). Called by runPar before scheduling the root.
  void beginSessionFaultScope(std::shared_ptr<CancelNode> SessionRoot);

  /// Records \p F as the session's fault - keeping whichever of the old
  /// and new fault is least under faultLess, so the winner under a fault
  /// race is deterministic - and transitively cancels the session via its
  /// root CancelNode. Thread-safe; called from workers mid-violation.
  void raiseFault(Fault F);

  /// Takes (and clears) the fault recorded for the just-finished session,
  /// if any. Called by runPar after finishSession.
  std::optional<Fault> takeSessionFault();

  /// The task currently executing on this thread (null on non-workers).
  static Task *currentTask();

  /// Worker index of the calling thread (on whichever scheduler owns it),
  /// or -1 on non-worker threads. Diagnostic only.
  static int currentWorkerIndex();

  /// Trace recorder, or null when tracing is disabled.
  TraceRecorder *trace() { return Tracing ? &Recorder : nullptr; }

  /// Aggregates every worker's counter block (plus the shared block for
  /// off-worker events) into one snapshot. Counters are cumulative over
  /// the scheduler's lifetime; the snapshot is exact once the session has
  /// quiesced, approximate while workers run. RunOptions::StatsOut (see
  /// src/core/RunPar.h) delivers this automatically after a run.
  SchedulerStats stats() const;

  /// \deprecated Pre-stats() accessors, kept as wrappers for out-of-tree
  /// callers; use stats().TasksCreated / stats().Steals.
  [[deprecated("use Scheduler::stats().TasksCreated")]]
  uint64_t tasksCreatedStat() const {
    return stats().TasksCreated;
  }
  [[deprecated("use Scheduler::stats().Steals")]]
  uint64_t stealsStat() const {
    return stats().Steals;
  }

private:
  struct alignas(64) Worker {
    WorkStealingDeque<Task> Deque;
    SplitMix64 StealRng;
    Task *PendingRetire = nullptr;
    std::thread Thread;
    /// This worker's private counter block (its own cache line).
    obs::WorkerCounters Counters;
  };

  void workerLoop(unsigned Index);
  Task *findWork(unsigned Index);
  /// Explore mode's session driver: runs on the waitSessionQuiescent
  /// caller, masquerading as each virtual worker in turn.
  void exploreRun();
  /// The calling thread's counter block: the worker's own when called on
  /// a worker of this scheduler, else the shared external block (runPar
  /// roots and wakes arrive from non-worker threads).
  obs::WorkerCounters &myCounters();
  Task *tryInjected();
  void addPending();
  void removePending();
  void retire(Task *T);
  void registryAdd(Task *T);
  void registryRemove(Task *T);
  void sliceEnd(Task *T);
  void sliceBegin(Task *T);
  /// Ends the current slice and opens a new one (at fork and wake points);
  /// returns the ended slice's id, or TraceRecorder::None.
  uint32_t sliceCut(Task *T);

  const bool Tracing;
  explore::ScheduleCtl *const ExploreCtl;
  TraceRecorder Recorder;

  std::vector<std::unique_ptr<Worker>> Workers;
  std::atomic<bool> Shutdown{false};

  /// Tasks that are runnable or currently running. Zero means session
  /// quiescence: nothing can ever create work again.
  std::atomic<int64_t> PendingWork{0};

  std::atomic<uint64_t> NextSessionId{1};

  /// Counter block for events raised off the worker threads.
  obs::WorkerCounters ExternalCounters;

  // External submission queue (runPar roots; wakes from non-worker threads).
  std::mutex InjectMutex;
  std::deque<Task *> Injected;

  // Idle workers sleep here.
  std::mutex IdleMutex;
  std::condition_variable IdleCV;
  std::atomic<int> SleeperCount{0};

  // Session-quiescence handoff to the runPar caller.
  std::mutex SessionMutex;
  std::condition_variable SessionCV;

  // Session fault scope (see beginSessionFaultScope/raiseFault).
  std::mutex FaultMutex;
  std::optional<Fault> SessionFault;
  std::shared_ptr<CancelNode> SessionCancelRoot;

  // Registry of all live tasks (intrusive list through Task::RegPrev/Next).
  std::mutex RegistryMutex;
  Task *RegistryHead = nullptr;
};

} // namespace lvish

#endif // LVISH_SCHED_SCHEDULER_H
