//===- ParkSite.h - Places a task can park on -------------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A \c ParkSite is anything that holds parked tasks: an LVar's waiter list
/// or a TaskScope's drain list. When the scheduler reaps a permanently
/// parked task at the end of a session, it first tells the park site to
/// forget the task so no dangling waiter entry survives the task's frame.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SCHED_PARKSITE_H
#define LVISH_SCHED_PARKSITE_H

namespace lvish {

class Task;

/// Interface for waiter-list owners; see file comment.
class ParkSite {
public:
  virtual ~ParkSite();

  /// Removes \p T from this site's waiter list if present. Idempotent, and
  /// only called when \p T can no longer be concurrently woken.
  virtual void removeParkedTask(Task *T) = 0;
};

} // namespace lvish

#endif // LVISH_SCHED_PARKSITE_H
