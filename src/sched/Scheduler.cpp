//===- Scheduler.cpp - Work-stealing Par scheduler ------------------------===//

#include "src/sched/Scheduler.h"

#include "src/fault/FaultPlan.h"
#include "src/obs/Telemetry.h"
#include "src/support/Assert.h"
#include "src/support/Timer.h"

#include <cassert>
#include <cstdio>
#include <utility>

#ifdef LVISH_TRACE_DEBUG
#define LVISH_TRACE3(...) std::fprintf(stderr, __VA_ARGS__)
#else
#define LVISH_TRACE3(...) (void)0
#endif

using namespace lvish;

// Thread-local identity of the current worker. WorkerSched distinguishes
// workers of different scheduler instances sharing a process.
namespace {
thread_local Task *CurrentTaskTL = nullptr;
thread_local Scheduler *WorkerSchedTL = nullptr;
thread_local unsigned WorkerIndexTL = ~0u;
} // namespace

Task *Scheduler::currentTask() { return CurrentTaskTL; }

int Scheduler::currentWorkerIndex() {
  return WorkerIndexTL == ~0u ? -1 : static_cast<int>(WorkerIndexTL);
}

std::shared_ptr<SessionState> Scheduler::beginSession(
    std::shared_ptr<CancelNode> SessionRoot) {
  auto S = std::make_shared<SessionState>();
  S->Id = NextSessionId.fetch_add(1, std::memory_order_relaxed);
  S->CancelRoot = std::move(SessionRoot);
  S->StartStats = stats();
  std::lock_guard<std::mutex> Lock(SessionsMutex);
  Sessions.emplace(S->Id, S);
  return S;
}

void Scheduler::setSessionObserver(SessionState &S,
                                   std::function<void()> OnQuiescent) {
  std::lock_guard<std::mutex> Lock(S.Mutex);
  assert(!S.ObserverFired && "observer installed after quiescence");
  S.Observer = std::move(OnQuiescent);
}

void Scheduler::raiseFault(Fault F) {
  obs::count(obs::Event::FaultsRaised);
  std::shared_ptr<SessionState> S;
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    auto It = Sessions.find(F.SessionId);
    if (It != Sessions.end())
      S = It->second;
  }
  // A fault for a session that already finished has nothing left to
  // cancel or report into; drop it.
  if (!S)
    return;
  std::shared_ptr<CancelNode> Root;
  {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    if (!S->SessionFault || faultLess(F, *S->SessionFault))
      S->SessionFault = std::move(F);
    Root = S->CancelRoot;
  }
  // Cancel outside the session lock: the cancel tree takes its own node
  // locks, and only THIS session's subtree hangs off Root.
  if (Root)
    Root->cancel();
}

void Scheduler::chargeBudgetStep(Task *T) {
  SessionState *S = T->Session.get();
  if (!S || S->StepBudget == 0)
    return;
  // Every pop of a session task - including reaps of already-cancelled
  // ones - is one scheduler decision. Exactly the charge that first
  // crosses the budget raises the fault; later charges see Used >
  // Budget + 1 and do nothing, so the kill is raised once even when
  // several workers pop tasks of the session concurrently.
  uint64_t Used = S->StepsUsed.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Used != S->StepBudget + 1)
    return;
  Fault F;
  F.Code = FaultCode::BudgetExceeded;
  F.SessionId = S->Id;
  F.Worker = currentWorkerIndex();
  F.Pedigree = T->pedigreeString();
  // Deterministic message: budget, session, pedigree only - no timings.
  F.Message = "Scheduler: session step budget exceeded (" +
              std::to_string(S->StepBudget) +
              " scheduler steps) [code=budget_exceeded, session=" +
              std::to_string(S->Id) + ", pedigree=" +
              (F.Pedigree.empty() ? "<root>" : F.Pedigree) + "]";
  obs::count(obs::Event::BudgetFaults);
  raiseFault(std::move(F));
}

std::optional<Fault> Scheduler::takeSessionFault(SessionState &S) {
  std::lock_guard<std::mutex> Lock(S.Mutex);
  std::optional<Fault> F = std::move(S.SessionFault);
  S.SessionFault.reset();
  return F;
}

SchedulerStats Scheduler::sessionStats(const SessionState &S) const {
  return stats() - S.StartStats;
}

obs::WorkerCounters &Scheduler::myCounters() {
  if (WorkerSchedTL == this)
    return Workers[WorkerIndexTL]->Counters;
  return ExternalCounters;
}

unsigned Scheduler::callerBatchIndex() const {
  // Under exploreRun the TLS masquerade sets WorkerIndexTL to the virtual
  // worker of the current step, so batches stay a ScheduleCtl-visible
  // function of the controlled schedule.
  return WorkerSchedTL == this ? WorkerIndexTL : numWorkers();
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats S;
  for (const auto &W : Workers)
    W->Counters.accumulateInto(S);
  ExternalCounters.accumulateInto(S);
  S.NumWorkers = numWorkers();
  return S;
}

explore::ScheduleCtl::~ScheduleCtl() = default;

Scheduler::Scheduler(SchedulerConfig Config)
    : Tracing(Config.EnableTracing), ExploreCtl(Config.Explore),
      FairnessStride(Config.FairnessStride) {
  unsigned N = Config.NumWorkers;
  if (N == 0)
    N = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    auto W = std::make_unique<Worker>();
    W->StealRng = SplitMix64(Config.StealSeed + I * 0x9e37ULL);
    Workers.push_back(std::move(W));
  }
  // Explore mode: the workers stay virtual (deques without threads); the
  // session thread drives them from exploreRun().
  if (!ExploreCtl)
    for (unsigned I = 0; I < N; ++I)
      Workers[I]->Thread = std::thread([this, I] { workerLoop(I); });
}

Scheduler::~Scheduler() {
  Shutdown.store(true, std::memory_order_release);
  IdleCV.notify_all();
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
  assert(RegistryHead == nullptr && "tasks leaked past their session");
}

Task *Scheduler::createTask(std::coroutine_handle<> Root, Task *Parent) {
  Task *T = new Task();
  LVISH_TRACE3("create task=%p root=%p parent=%p\n", (void *)T,
               Root.address(), (void *)Parent);
  T->Root = Root;
  T->Resume = Root;
  T->Sched = this;
  if (Parent) {
    assert(Parent->Sched == this && "cross-scheduler fork");
    T->SessionId = Parent->SessionId;
    T->Session = Parent->Session;
    T->Cancel = Parent->Cancel;
    // Effect-audit default: inherit the parent's declared level; spawn
    // wrappers that know their body's exact effect level overwrite this
    // before scheduling (see src/check/EffectAuditor.h).
    T->DeclaredFx = Parent->DeclaredFx;
    T->Scopes = Parent->Scopes;
    T->Keepalives = Parent->Keepalives;
    T->Layers.reserve(Parent->Layers.size());
    for (auto &L : Parent->Layers)
      T->Layers.push_back(L->splitForChild());
    // Fork-tree pedigree split, mirroring PedigreeState::splitForChild:
    // the child descends Left from the parent's current position, the
    // parent's continuation proceeds Right. Safe to mutate the parent
    // here: fork runs on the parent's own thread.
    T->Ped = Parent->Ped;
    T->pedAppend(0);
    Parent->pedAppend(1);
  }
  if constexpr (fault::InjectionEnabled) {
    if (fault::planActive())
      T->InjectDoomed = fault::shouldDoomTask(T->Ped);
  }
  T->scopesOnCreate();
  obs::WorkerCounters::bump(myCounters().TasksCreated);
  if (Tracing) {
    // A fork cuts the parent's slice: the child depends on the fork point,
    // not on the whole parent task.
    uint32_t ParentSlice =
        Parent ? sliceCut(Parent) : TraceRecorder::None;
    T->TraceId = Recorder.onTaskCreated(ParentSlice);
  }
  registryAdd(T);
  return T;
}

void Scheduler::schedule(Task *T) {
  assert(T->DebugQueued.exchange(1, std::memory_order_acq_rel) == 0 &&
         "task scheduled while already queued or running");
  addPending(T);
  if (WorkerSchedTL == this) {
    Worker &W = *Workers[WorkerIndexTL];
    W.Deque.push(T);
    W.Counters.noteDepth(W.Deque.sizeApprox());
  } else {
    pushInjected(T);
  }
  if (SleeperCount.load(std::memory_order_acquire) > 0)
    IdleCV.notify_one();
}

void Scheduler::wake(Task *T, Task *Waker) {
  obs::WorkerCounters::bump(myCounters().Wakes);
  T->scopesOnUnpark();
  if (Tracing && Waker && Waker->TraceId != ~0u && T->TraceId != ~0u) {
    // The put that satisfied T's threshold precedes T's next slice.
    uint32_t WakerSlice = sliceCut(Waker);
    if (WakerSlice != TraceRecorder::None)
      Recorder.onWake(WakerSlice, T->TraceId);
  }
  schedule(T);
}

void Scheduler::wakeKeepPending(Task *T) {
  assert(T->DebugQueued.exchange(1, std::memory_order_acq_rel) == 0 &&
         "task requeued while already queued");
  sliceEnd(T);
  // Yields go to the back of the *inject* queue, not the worker's own
  // LIFO deque: re-pushing locally would pop the yielder right back and
  // starve its freshly forked siblings (workers prefer their own deque).
  pushInjected(T);
  if (SleeperCount.load(std::memory_order_acquire) > 0)
    IdleCV.notify_one();
}

void Scheduler::onTaskParked(Task *T) {
  obs::WorkerCounters::bump(myCounters().Parks);
  sliceEnd(T);
  T->scopesOnPark();
  removePending(T);
}

void Scheduler::onTaskFinished(Task *T) {
  LVISH_TRACE3("finished task=%p\n", (void *)T);
  obs::WorkerCounters::bump(myCounters().TasksExecuted);
  // retire() destroys T; keep the session state alive for the decrement
  // (which may fire the session's quiescence observer).
  std::shared_ptr<SessionState> S = T->Session;
  retire(T);
  removePendingFor(S);
}

void Scheduler::deferRetire(Task *T) {
  assert(WorkerSchedTL == this && "deferRetire off a worker thread");
  Worker &W = *Workers[WorkerIndexTL];
  assert(!W.PendingRetire && "one deferred retire per slice");
  W.PendingRetire = T;
}

void Scheduler::retire(Task *T) {
  sliceEnd(T);
  T->scopesOnFinish();
  registryRemove(T);
  if (T->Root)
    T->Root.destroy();
  delete T;
}

void Scheduler::waitSessionQuiescent(SessionState &S) {
  if (ExploreCtl) {
    // Explore mode: nothing runs until we step it; "waiting" IS running
    // the session, single-threaded, under the controller's decisions.
    exploreRun();
    return;
  }
  std::unique_lock<std::mutex> Lock(S.Mutex);
  S.CV.wait(Lock, [&S] {
    return S.Pending.load(std::memory_order_acquire) == 0;
  });
}

void Scheduler::explorePermuteWakes(std::vector<Task *> &ToWake) {
  if (!ExploreCtl || ToWake.size() < 2)
    return;
  // Selection order: decision I picks which of the remaining tasks fires
  // next. The chosen task is moved to position I with the relative order
  // of the rest preserved, so a replayed index sequence reconstructs the
  // same permutation.
  for (size_t I = 0; I + 1 < ToWake.size(); ++I) {
    unsigned K = ExploreCtl->onPick(static_cast<unsigned>(ToWake.size() - I));
    assert(K < ToWake.size() - I && "onPick out of range");
    Task *Chosen = ToWake[I + K];
    ToWake.erase(ToWake.begin() + static_cast<ptrdiff_t>(I + K));
    ToWake.insert(ToWake.begin() + static_cast<ptrdiff_t>(I), Chosen);
  }
}

void Scheduler::explorePermuteBackpressure(std::vector<Task *> &ToWake) {
  if (!ExploreCtl || ToWake.size() < 2)
    return;
  // Same selection-order scheme as explorePermuteWakes, but each choice is
  // recorded as DecisionKind::Backpressure so a replayed schedule can be
  // read back as "which starved producer got the credit first".
  for (size_t I = 0; I + 1 < ToWake.size(); ++I) {
    unsigned K =
        ExploreCtl->onBackpressure(static_cast<unsigned>(ToWake.size() - I));
    assert(K < ToWake.size() - I && "onBackpressure out of range");
    Task *Chosen = ToWake[I + K];
    ToWake.erase(ToWake.begin() + static_cast<ptrdiff_t>(I + K));
    ToWake.insert(ToWake.begin() + static_cast<ptrdiff_t>(I), Chosen);
  }
}

void Scheduler::exploreRun() {
  // The session thread masquerades as each virtual worker via the worker
  // TLS, so schedule()/deferRetire() inside a resumed slice route to the
  // chosen worker's deque exactly as they would on a real worker thread.
  Scheduler *SavedSched = WorkerSchedTL;
  unsigned SavedIndex = WorkerIndexTL;
  Task *SavedTask = CurrentTaskTL;
  const unsigned N = numWorkers();
  std::vector<explore::StepOption> Options;
  while (PendingWork.load(std::memory_order_acquire) > 0) {
    // Enumerate every possible next move, in a deterministic order. A
    // worker with local work always pops it first (matching the threaded
    // scheduler's own-deque priority); only idle workers consider the
    // inject queue and steals.
    Options.clear();
    bool HaveInjected;
    {
      std::lock_guard<std::mutex> Lock(InjectMutex);
      HaveInjected = InjectedCount > 0;
    }
    for (unsigned W = 0; W < N; ++W) {
      if (Workers[W]->Deque.sizeApprox() > 0) {
        Options.push_back({static_cast<uint16_t>(W), explore::StepKind::Pop,
                           uint16_t{0}});
        continue;
      }
      if (HaveInjected)
        Options.push_back({static_cast<uint16_t>(W),
                           explore::StepKind::Inject, uint16_t{0}});
      for (unsigned V = 0; V < N; ++V)
        if (V != W && Workers[V]->Deque.sizeApprox() > 0)
          Options.push_back({static_cast<uint16_t>(W),
                             explore::StepKind::Steal,
                             static_cast<uint16_t>(V)});
    }
    // PendingWork counts exactly the queued tasks here (nothing is
    // mid-resume between steps), so pending work implies an option.
    assert(!Options.empty() && "pending work with nothing queued");
    unsigned Choice =
        ExploreCtl->onStep(Options.data(), static_cast<unsigned>(Options.size()));
    assert(Choice < Options.size() && "onStep out of range");
    const explore::StepOption Opt = Options[Choice];

    WorkerSchedTL = this;
    WorkerIndexTL = Opt.Worker;
    Worker &Me = *Workers[Opt.Worker];
    Task *T = nullptr;
    switch (Opt.Kind) {
    case explore::StepKind::Pop:
      T = Me.Deque.pop();
      obs::WorkerCounters::bump(Me.Counters.LocalPops);
      break;
    case explore::StepKind::Inject:
      T = tryInjected();
      break;
    case explore::StepKind::Steal:
      obs::WorkerCounters::bump(Me.Counters.StealAttempts);
      T = Workers[Opt.Victim]->Deque.steal();
      if (T)
        obs::WorkerCounters::bump(Me.Counters.Steals);
      break;
    }
    assert(T && "explore step chose an empty source");
    assert(T->DebugQueued.exchange(0, std::memory_order_acq_rel) == 1 &&
           "popped task was not queued");
    ExploreCtl->onResume(T->Ped);
    chargeBudgetStep(T);

    if (T->isCancelled()) {
      std::shared_ptr<SessionState> Sess = T->Session;
      retire(T);
      removePendingFor(Sess);
      continue;
    }
    CurrentTaskTL = T;
    if (Tracing)
      sliceBegin(T);
    std::coroutine_handle<> H = T->Resume;
    assert(H && "scheduled task has no resume point");
    H.resume();
    CurrentTaskTL = nullptr;
    if (Task *R = Me.PendingRetire) {
      Me.PendingRetire = nullptr;
      std::shared_ptr<SessionState> Sess = R->Session;
      retire(R);
      removePendingFor(Sess);
    }
  }
  WorkerSchedTL = SavedSched;
  WorkerIndexTL = SavedIndex;
  CurrentTaskTL = SavedTask;
}

size_t Scheduler::finishSession(SessionState &S) {
  assert(S.Pending.load(std::memory_order_acquire) == 0 &&
         "finishSession before the session quiesced");
  // Phase 0: snapshot THIS session's leftover tasks from the registry.
  // Sibling sessions' tasks stay registered and running.
  std::vector<Task *> Leftover;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    for (Task *T = RegistryHead; T; T = T->RegNext)
      if (T->Session.get() == &S)
        Leftover.push_back(T);
  }
  // Phase 1: detach every leftover task from its park site while all task
  // frames (and therefore all LVars) are still alive. LVars are session-
  // local (LVarBase::checkSession), so these park sites hold only this
  // session's waiters.
  for (Task *T : Leftover) {
    assert(T->ParkedOn && "finishSession found a non-parked leftover task "
                          "(premature quiescence?)");
    if (ParkSite *Site = T->ParkedOn)
      Site->removeParkedTask(T);
  }
  // Phase 2: destroy the frames. Reaping can fire scope drains that try to
  // wake other leftover waiters; phase 1 already detached them, so those
  // wakes cannot reschedule anything (removeParkedTask emptied the lists).
  for (Task *T : Leftover)
    retire(T);
  // Unregister: raiseFault for this session id is a no-op from here on.
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    Sessions.erase(S.Id);
  }
  return Leftover.size();
}

void Scheduler::addPending(Task *T) {
  PendingWork.fetch_add(1, std::memory_order_acq_rel);
  if (T->Session)
    T->Session->Pending.fetch_add(1, std::memory_order_acq_rel);
}

void Scheduler::removePending(Task *T) { removePendingFor(T->Session); }

void Scheduler::removePendingFor(const std::shared_ptr<SessionState> &S) {
  PendingWork.fetch_sub(1, std::memory_order_acq_rel);
  if (!S)
    return;
  if (S->Pending.fetch_sub(1, std::memory_order_acq_rel) != 1)
    return;
  // This session just quiesced. Wake blocking waiters and fire the
  // (one-shot) observer. The notify runs under S->Mutex so a waiter
  // cannot miss it between its predicate check and its wait; the
  // observer runs after the unlock and may itself run under a park-site
  // lock (the decrement can come from onTaskParked), so it must only
  // enqueue (see SessionState::Observer).
  std::function<void()> Obs;
  {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->CV.notify_all();
    if (S->Observer && !S->ObserverFired) {
      S->ObserverFired = true;
      Obs = std::move(S->Observer);
      S->Observer = nullptr;
    }
  }
  if (Obs)
    Obs();
}

void Scheduler::bindSessionRoot(Task *Root, std::shared_ptr<SessionState> S,
                                std::shared_ptr<CancelNode> Cancel) {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  Root->SessionId = S->Id;
  Root->Session = std::move(S);
  Root->Cancel = std::move(Cancel);
}

void Scheduler::registryAdd(Task *T) {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  T->RegPrev = nullptr;
  T->RegNext = RegistryHead;
  if (RegistryHead)
    RegistryHead->RegPrev = T;
  RegistryHead = T;
}

void Scheduler::registryRemove(Task *T) {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  if (T->RegPrev)
    T->RegPrev->RegNext = T->RegNext;
  else
    RegistryHead = T->RegNext;
  if (T->RegNext)
    T->RegNext->RegPrev = T->RegPrev;
  T->RegPrev = T->RegNext = nullptr;
}

void Scheduler::sliceEnd(Task *T) {
  if (!Tracing || T->CurSlice == TraceRecorder::None)
    return;
  Recorder.onSliceEnd(T->CurSlice, nowNanos() - T->SliceStart,
                      T->SliceBytes, T->SliceStart);
  T->CurSlice = TraceRecorder::None;
  T->SliceBytes = 0;
}

void Scheduler::sliceBegin(Task *T) {
  if (!Tracing || T->TraceId == ~0u)
    return;
  T->CurSlice = Recorder.onSliceStart(T->TraceId);
  T->SliceStart = nowNanos();
  T->SliceBytes = 0;
}

uint32_t Scheduler::sliceCut(Task *T) {
  if (!Tracing || T->CurSlice == TraceRecorder::None)
    return TraceRecorder::None;
  uint32_t Ended = T->CurSlice;
  sliceEnd(T);
  sliceBegin(T);
  return Ended;
}

void Scheduler::pushInjected(Task *T) {
  uint64_t Sid = T->Session ? T->Session->Id : 0;
  std::lock_guard<std::mutex> Lock(InjectMutex);
  std::deque<Task *> &Q = InjectBySession[Sid];
  if (Q.empty())
    InjectOrder.push_back(Sid);
  Q.push_back(T);
  ++InjectedCount;
}

Task *Scheduler::tryInjected() {
  std::lock_guard<std::mutex> Lock(InjectMutex);
  if (InjectedCount == 0)
    return nullptr;
  // Deficit round-robin, quantum 1: take one task from the front
  // session, then rotate it behind the other queued sessions.
  assert(!InjectOrder.empty() && "inject count/order out of sync");
  uint64_t Sid = InjectOrder.front();
  InjectOrder.pop_front();
  auto It = InjectBySession.find(Sid);
  assert(It != InjectBySession.end() && !It->second.empty());
  Task *T = It->second.front();
  It->second.pop_front();
  if (It->second.empty())
    InjectBySession.erase(It);
  else
    InjectOrder.push_back(Sid);
  --InjectedCount;
  return T;
}

Task *Scheduler::findWork(unsigned Index) {
  Worker &Me = *Workers[Index];
  if constexpr (fault::InjectionEnabled) {
    // Artificial scheduling jitter at the steal point (non-semantic: it
    // perturbs interleavings, never outcomes).
    if (fault::planActive())
      fault::maybeDelay(fault::Point::Steal);
  }
  // Multi-session fairness: periodically let injected work (session
  // roots, yields - round-robin across sessions) preempt the local
  // deque, so one session's deep fan-out cannot starve its siblings'
  // submissions. Off (stride 0) this compiles to one predictable branch.
  if (FairnessStride && ++Me.InjectStreak >= FairnessStride) {
    Me.InjectStreak = 0;
    if (Task *T = tryInjected())
      return T;
  }
  if (Task *T = Me.Deque.pop()) {
    obs::WorkerCounters::bump(Me.Counters.LocalPops);
    return T;
  }
  if (Task *T = tryInjected())
    return T;
  unsigned N = numWorkers();
  if (N > 1) {
    for (unsigned Attempt = 0; Attempt < 2 * N; ++Attempt) {
      unsigned Victim =
          static_cast<unsigned>(Me.StealRng.nextBounded(N));
      if (Victim == Index)
        continue;
      obs::WorkerCounters::bump(Me.Counters.StealAttempts);
      if (Task *T = Workers[Victim]->Deque.steal()) {
        obs::WorkerCounters::bump(Me.Counters.Steals);
        return T;
      }
    }
  }
  return nullptr;
}

void Scheduler::workerLoop(unsigned Index) {
  WorkerSchedTL = this;
  WorkerIndexTL = Index;
  Worker &Me = *Workers[Index];
  unsigned IdleSpins = 0;
  while (!Shutdown.load(std::memory_order_acquire)) {
    Task *T = findWork(Index);
    if (!T) {
      // Nothing found: spin briefly, then sleep with a timeout (the
      // timeout makes lost wakeups impossible to wedge on).
      if (++IdleSpins < 64) {
        std::this_thread::yield();
        continue;
      }
      SleeperCount.fetch_add(1, std::memory_order_acq_rel);
      {
        std::unique_lock<std::mutex> Lock(IdleMutex);
        IdleCV.wait_for(Lock, std::chrono::microseconds(500));
      }
      SleeperCount.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    IdleSpins = 0;
    assert(T->DebugQueued.exchange(0, std::memory_order_acq_rel) == 1 &&
           "popped task was not queued");
    chargeBudgetStep(T);

    if (T->isCancelled()) {
      // A cancelled task is destroyed instead of resumed; the scheduler
      // polls liveness at every action, as in Section 6.1 of the paper.
      std::shared_ptr<SessionState> Sess = T->Session;
      retire(T);
      removePendingFor(Sess);
      continue;
    }

    CurrentTaskTL = T;
    if (Tracing)
      sliceBegin(T);
    std::coroutine_handle<> H = T->Resume;
    LVISH_TRACE3("worker resume task=%p h=%p\n", (void *)T, H.address());
    assert(H && "scheduled task has no resume point");
    H.resume();
    // NOTE: T may already be freed or running on another worker here; the
    // only safe cleanup is the thread-local reset and the deferred retire
    // handoff below.
    CurrentTaskTL = nullptr;
    if (Task *R = Me.PendingRetire) {
      Me.PendingRetire = nullptr;
      std::shared_ptr<SessionState> Sess = R->Session;
      retire(R);
      removePendingFor(Sess);
    }
  }
}
