//===- Task.cpp - Scheduler task and per-task context --------------------===//

#include "src/sched/Task.h"

#include "src/sched/TaskScope.h"

using namespace lvish;

// Virtual-method anchors.
ParkSite::~ParkSite() = default;
LayerState::~LayerState() = default;

void Task::scopesOnPark() {
  for (TaskScope *S : Scopes)
    if (S->mode() == TaskScope::Mode::Runnable)
      S->exitOne();
}

void Task::scopesOnUnpark() {
  for (TaskScope *S : Scopes)
    if (S->mode() == TaskScope::Mode::Runnable)
      S->enter();
}

void Task::scopesOnCreate() {
  for (TaskScope *S : Scopes)
    S->enter();
}

void Task::scopesOnFinish() {
  for (TaskScope *S : Scopes)
    S->exitOne();
}
