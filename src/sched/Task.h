//===- Task.h - Scheduler task and per-task context -------------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A \c Task is the scheduler's unit of work: one forked Par computation,
/// realized as a chain of C++20 coroutines. The task records where to
/// resume, its cancellation-tree node, the scopes that count it, and its
/// *layer stack* - the C++ rendition of the paper's Par-monad-transformer
/// stack. Every layer (implicit state, pedigree, RNG, ParST view, ...)
/// contributes one \c LayerState; at \c fork each layer splits its state
/// between parent and child, exactly like the paper's \c SplittableState
/// instance for \c StateT.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SCHED_TASK_H
#define LVISH_SCHED_TASK_H

#include "src/sched/CancelNode.h"
#include "src/sched/ParkSite.h"
#include "src/sched/SessionState.h"
#include "src/support/Fault.h"
#include "src/support/Pedigree.h"

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lvish {

class Scheduler;
class TaskScope;

/// One splittable layer of per-task implicit state; the C++ analogue of a
/// Par-monad transformer's per-computation payload. Layers nest: the stack
/// in \c Task::Layers is searched topmost-first, matching the innermost-
/// transformer-wins semantics of a Haskell transformer stack.
class LayerState {
public:
  virtual ~LayerState();

  /// Splits this layer's state for a fork: mutates the parent's copy (this)
  /// and returns the child's. Mirrors `splitState :: a -> (a,a)` where the
  /// parent keeps one half.
  virtual std::unique_ptr<LayerState> splitForChild() = 0;

  /// Identity key used to find a layer of a given kind on the stack. Each
  /// concrete layer returns the address of a static tag.
  virtual const void *typeKey() const = 0;
};

/// The scheduler's unit of work; see file comment. Tasks are heap-allocated
/// and owned by the scheduler from creation to retirement.
class alignas(64) Task {
public:
  Task() = default;
  Task(const Task &) = delete;
  Task &operator=(const Task &) = delete;

  /// The outermost coroutine of this task; destroying it unwinds the whole
  /// suspended chain (inner coroutines are owned by Par objects living in
  /// their awaiters' frames).
  std::coroutine_handle<> Root;

  /// The innermost suspended coroutine - what a worker resumes next.
  /// Updated by parking awaiters before the task becomes wakeable.
  std::coroutine_handle<> Resume;

  Scheduler *Sched = nullptr;

  /// Session id of the enclosing session; LVar accesses assert that the
  /// task's session matches the LVar's (the runtime check standing in for
  /// the paper's `s` type parameter).
  uint64_t SessionId = 0;

  /// Shared per-session accounting (pending count, fault slot, quiescence
  /// CV/observer). Stamped on the root by the session launcher before it
  /// is scheduled; inherited by children on fork. Shared ownership keeps
  /// the state alive through the retire-then-decrement ordering even when
  /// the scheduler's session table entry is gone.
  std::shared_ptr<SessionState> Session;

  /// Cancellation-tree node (always non-null once attached to a scheduler;
  /// the root task gets a fresh always-live node).
  std::shared_ptr<CancelNode> Cancel;

  /// Scopes counting this task (handler pools, deadlock scopes). Small in
  /// practice; copied to children on fork.
  std::vector<TaskScope *> Scopes;

  /// Ownership anchors keeping the objects behind Scopes (and any other
  /// borrowed infrastructure) alive at least as long as this task - a
  /// parked task may be retired long after the scope's creator returned.
  /// Copied to children on fork.
  std::vector<std::shared_ptr<void>> Keepalives;

  /// Transformer layer stack; split per-layer on fork.
  std::vector<std::unique_ptr<LayerState>> Layers;

  /// Where this task is parked, if parked. Written under the park site's
  /// internal lock; read during quiescent reaping only.
  ParkSite *ParkedOn = nullptr;

  /// Which waiter bucket of ParkedOn holds this task's entry (LVarBase's
  /// slot encoding: 0 = default bucket, 1..N = key bucket, ~0u = size
  /// heap). Written with ParkedOn; lets reaping lock only one bucket.
  uint32_t ParkedSlot = 0;

  // -- Trace bookkeeping (only meaningful when tracing is enabled) --------
  uint32_t TraceId = ~0u;   ///< Task id in the trace recorder.
  uint32_t CurSlice = ~0u;  ///< Open slice id, ~0u when not in a slice.
  uint64_t SliceStart = 0;  ///< Start timestamp of the open slice.
  uint64_t SliceBytes = 0;  ///< noteBytes accumulated in the open slice.

  // -- Intrusive registry list (guarded by the scheduler's registry lock) -
  Task *RegPrev = nullptr;
  Task *RegNext = nullptr;

  /// Debug invariant: a task must never be enqueued twice concurrently.
  std::atomic<uint8_t> DebugQueued{0};

  // -- Fork-tree pedigree (always on) -------------------------------------
  // A compact twin of the PedigreeT transformer layer (trans/Pedigree.h):
  // bit I is the I-th branch taken from the session root, 0 = Left (a
  // forked child), 1 = Right (the parent's continuation). Faults use it as
  // the task's deterministic identity; the LVISH_FAULTS harness uses it to
  // target injections; the explorer (src/explore) keys replay logs on it.
  // Maintained by Scheduler::createTask; mutating the parent there is safe
  // because fork runs on the parent's own thread. 256 recorded bits with
  // explicit saturation - see src/support/Pedigree.h.
  Pedigree Ped;

  /// Appends one branch (0 = Left, 1 = Right).
  void pedAppend(unsigned Bit) { Ped.append(Bit); }

  /// This task's pedigree as an L/R string ("" = session root).
  std::string pedigreeString() const { return Ped.render(); }

  // -- Fault containment (see src/sched/FaultSignal.h) --------------------
  /// Set by PromiseBase::unhandled_exception when a FaultSignal unwound
  /// this task's coroutine chain; the final awaiter then retires the task
  /// instead of resuming a continuation.
  bool FaultPoisoned = false;
  /// LVISH_FAULTS: this task was chosen by the active FaultPlan and raises
  /// an InjectedFailure at its next injection poll (put/park point).
  bool InjectDoomed = false;
  /// LVISH_FAULTS: per-task deterministic decision counter (spawn shims).
  uint64_t InjectClock = 0;

  // -- Effect-audit bookkeeping (see src/check/EffectAuditor.h) -----------
  // Plain bytes so this header needs no core/check types; only the task's
  // own (sequenced) execution mutates them. Meaningful only when the
  // LVISH_CHECK build flag is on; always present so toggling the flag
  // cannot change Task's ABI between TUs.
  uint8_t DeclaredFx = 63; ///< Effects the task's body was forked at.
  uint8_t BlessedFx = 0;   ///< Temporarily blessed trusted escapes.
  uint8_t PerformedFx = 0; ///< Effects actually observed at runtime.

  /// True if the cancellation tree above this task has been cancelled.
  bool isCancelled() const { return Cancel && !Cancel->isLive(); }

  /// Finds the topmost layer whose typeKey is \p Key, or null.
  LayerState *findLayer(const void *Key) {
    for (auto It = Layers.rbegin(), E = Layers.rend(); It != E; ++It)
      if ((*It)->typeKey() == Key)
        return It->get();
    return nullptr;
  }

  /// Scope notifications (bodies in Task.cpp to keep TaskScope out of this
  /// header). Park/unpark only affect Runnable-mode scopes; create/finish
  /// affect all scopes.
  void scopesOnPark();
  void scopesOnUnpark();
  void scopesOnCreate();
  void scopesOnFinish();
};

} // namespace lvish

#endif // LVISH_SCHED_TASK_H
