//===- SessionFault.cpp - In-session fault raising ------------------------===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "src/sched/FaultSignal.h"

#include "src/sched/Scheduler.h"
#include "src/sched/Task.h"
#include "src/support/Assert.h"

#include <string>

using namespace lvish;

void lvish::detail::raiseSessionFault(Task *T, FaultCode Code,
                                      const char *Msg,
                                      const char *LVarName) {
  if (!T || !T->Sched) {
    // No session to contain into (external/session-setup context): the
    // legacy deterministic abort is all that is left.
    fatalError(Msg); // lvish-lint: allow(fatal)
  }

  Fault F;
  F.Code = Code;
  F.Pedigree = T->pedigreeString();
  F.LVarName = LVarName ? LVarName : "";
  F.SessionId = T->SessionId;
  F.Worker = Scheduler::currentWorkerIndex();

  // Satellite of the fault model: every diagnostic carries the fault
  // code, LVar debug name, session id, worker id, and task pedigree.
  F.Message = Msg;
  F.Message += " [code=";
  F.Message += faultCodeName(Code);
  F.Message += ", lvar=";
  F.Message += LVarName ? LVarName : "<unnamed>";
  F.Message += ", session=";
  F.Message += std::to_string(F.SessionId);
  F.Message += ", worker=";
  F.Message += std::to_string(F.Worker);
  F.Message += ", pedigree=";
  F.Message += F.Pedigree.empty() ? "<root>" : F.Pedigree.c_str();
  F.Message += "]";

  T->Sched->raiseFault(std::move(F));
  // Unwind the faulting coroutine; PromiseBase::unhandled_exception marks
  // the task FaultPoisoned and the final awaiter retires it.
  throw FaultSignal{}; // lvish-lint: allow(no-throw)
}
