//===- WorkStealingDeque.h - Chase-Lev work-stealing deque ------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free work-stealing deque after Chase & Lev, with the C11 memory
/// ordering discipline of Le, Pop, Cohen & Zappa Nardelli ("Correct and
/// Efficient Work-Stealing for Weakly Ordered Memory Models", PPoPP 2013).
/// The owner worker pushes and pops at the bottom; thieves steal from the
/// top. This is the substrate under the LVish Par scheduler, mirroring the
/// "custom work-stealing scheduler provided by LVish" (Section 2).
///
/// Growth notes: the circular buffer doubles on overflow. Retired buffers
/// are kept until the deque is destroyed, because a concurrent thief may
/// still hold a pointer into an old buffer; this classic leak-until-teardown
/// scheme bounds memory by 2x the high-water mark.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SCHED_WORKSTEALINGDEQUE_H
#define LVISH_SCHED_WORKSTEALINGDEQUE_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#ifdef LVISH_LOCKED_DEQUE
#include <deque>
#include <mutex>
namespace lvish {
/// Mutex-based reference deque: used to cross-check the lock-free
/// implementation under sanitizers (enable with -DLVISH_LOCKED_DEQUE).
template <typename T> class WorkStealingDeque {
public:
  explicit WorkStealingDeque(uint64_t = 8) {}
  WorkStealingDeque(const WorkStealingDeque &) = delete;
  WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;
  void push(T *Item) {
    std::lock_guard<std::mutex> L(Mu);
    Q.push_back(Item);
  }
  T *pop() {
    std::lock_guard<std::mutex> L(Mu);
    if (Q.empty())
      return nullptr;
    T *V = Q.back();
    Q.pop_back();
    return V;
  }
  T *steal() {
    std::lock_guard<std::mutex> L(Mu);
    if (Q.empty())
      return nullptr;
    T *V = Q.front();
    Q.pop_front();
    return V;
  }
  uint64_t sizeApprox() const {
    std::lock_guard<std::mutex> L(Mu);
    return Q.size();
  }
private:
  mutable std::mutex Mu;
  std::deque<T *> Q;
};
} // namespace lvish
#else // !LVISH_LOCKED_DEQUE

namespace lvish {

/// Single-owner, multi-thief lock-free deque of pointers.
template <typename T> class WorkStealingDeque {
  static_assert(sizeof(T *) <= sizeof(void *), "pointer payloads only");

  /// Power-of-two circular buffer indexed modulo its capacity.
  struct Buffer {
    explicit Buffer(uint64_t LogCap)
        : LogCapacity(LogCap), Slots(new std::atomic<T *>[uint64_t(1)
                                                          << LogCap]) {}

    uint64_t capacity() const { return uint64_t(1) << LogCapacity; }

    T *get(int64_t I) const {
      return Slots[static_cast<uint64_t>(I) & (capacity() - 1)].load(
          std::memory_order_relaxed);
    }

    void put(int64_t I, T *V) {
      Slots[static_cast<uint64_t>(I) & (capacity() - 1)].store(
          V, std::memory_order_relaxed);
    }

    uint64_t LogCapacity;
    std::unique_ptr<std::atomic<T *>[]> Slots;
  };

public:
  explicit WorkStealingDeque(uint64_t LogInitialCapacity = 8)
      : Top(0), Bottom(0) {
    Buffers.push_back(std::make_unique<Buffer>(LogInitialCapacity));
    Buf.store(Buffers.back().get(), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque &) = delete;
  WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

  /// Owner-only: pushes \p Item at the bottom.
  void push(T *Item) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_acquire);
    Buffer *A = Buf.load(std::memory_order_relaxed);
    if (B - Tp > static_cast<int64_t>(A->capacity()) - 1)
      A = grow(B, Tp);
    A->put(B, Item);
    std::atomic_thread_fence(std::memory_order_release);
    Bottom.store(B + 1, std::memory_order_relaxed);
  }

  /// Owner-only: pops from the bottom (LIFO). Returns nullptr when empty.
  T *pop() {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Buffer *A = Buf.load(std::memory_order_relaxed);
    Bottom.store(B, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t Tp = Top.load(std::memory_order_relaxed);
    if (Tp > B) {
      // Deque was already empty; restore.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T *Item = A->get(B);
    if (Tp != B)
      return Item; // More than one element; no race with thieves.
    // Single element: race a pending steal for it.
    if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      Item = nullptr; // Lost to a thief.
    Bottom.store(B + 1, std::memory_order_relaxed);
    return Item;
  }

  /// Thief-side: steals from the top (FIFO). Returns nullptr when empty or
  /// when losing a race (the caller should retry elsewhere).
  T *steal() {
    int64_t Tp = Top.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_acquire);
    if (Tp >= B)
      return nullptr;
    Buffer *A = Buf.load(std::memory_order_consume);
    T *Item = A->get(Tp);
    if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return nullptr; // Lost the race.
    return Item;
  }

  /// Approximate size; only advisory (used for idle heuristics and stats).
  uint64_t sizeApprox() const {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_relaxed);
    return B > Tp ? static_cast<uint64_t>(B - Tp) : 0;
  }

private:
  Buffer *grow(int64_t B, int64_t Tp) {
    Buffer *Old = Buf.load(std::memory_order_relaxed);
    auto Grown = std::make_unique<Buffer>(Old->LogCapacity + 1);
    for (int64_t I = Tp; I != B; ++I)
      Grown->put(I, Old->get(I));
    Buffer *Raw = Grown.get();
    Buffers.push_back(std::move(Grown));
    Buf.store(Raw, std::memory_order_release);
    return Raw;
  }

  // Signed indices: pop on an empty deque transiently drives Bottom below
  // Top (even to -1), which unsigned indices would turn into catastrophic
  // wraparound.
  alignas(64) std::atomic<int64_t> Top;
  alignas(64) std::atomic<int64_t> Bottom;
  alignas(64) std::atomic<Buffer *> Buf;
  /// Owner-only: all buffers ever allocated (see growth notes above).
  std::vector<std::unique_ptr<Buffer>> Buffers;
};

} // namespace lvish

#endif // LVISH_LOCKED_DEQUE

#endif // LVISH_SCHED_WORKSTEALINGDEQUE_H
