//===- ExploreHooks.h - Scheduler decision-point interface ------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface between the scheduler and the schedule explorer
/// (src/explore). In explore mode (SchedulerConfig::Explore non-null) the
/// scheduler spawns no OS threads; instead the runPar caller's thread
/// single-steps the session, and every nondeterministic decision the
/// threaded scheduler would have made implicitly - which virtual worker
/// runs next, whether it pops its own deque, takes from the inject queue,
/// or steals (and from which victim), and in what order multi-task wakes
/// and handler-pool drains fire - is delegated through this interface.
///
/// This header lives in src/sched (not src/explore) so the scheduler needs
/// no dependency on the explorer library: the scheduler *asks* decisions
/// through the abstract ScheduleCtl, and the concrete engines (seeded
/// random, PCT priorities, bounded enumeration, replay) live a layer up in
/// src/explore/SchedulePlan.h. See DESIGN.md Section 12.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SCHED_EXPLOREHOOKS_H
#define LVISH_SCHED_EXPLOREHOOKS_H

#include "src/support/Pedigree.h"

#include <cstdint>

namespace lvish {
namespace explore {

/// How a virtual worker would acquire its next task.
enum class StepKind : uint8_t {
  Pop,    ///< Pop the worker's own deque (LIFO, the threaded fast path).
  Inject, ///< Take the front of the global inject queue (roots, yields).
  Steal,  ///< Steal the top (FIFO end) of \c Victim's deque.
};

/// One way the session could advance: \c Worker acquires a task via
/// \c Kind. The scheduler enumerates every currently-possible option in a
/// deterministic order (worker-major, Inject before Steals, victims
/// ascending) so a decision index fully identifies the step on replay.
struct StepOption {
  uint16_t Worker = 0;
  StepKind Kind = StepKind::Pop;
  uint16_t Victim = 0; ///< Meaningful for Steal only.
};

/// The explorer's side of the decision protocol. One controller drives at
/// most one session at a time; all calls arrive on the session thread.
class ScheduleCtl {
public:
  virtual ~ScheduleCtl();

  /// Called once per scheduling step with every possible next move
  /// (N >= 1). Returns the index of the option to take.
  virtual unsigned onStep(const StepOption *Options, unsigned N) = 0;

  /// Called for ordering decisions that are not worker steps: which of N
  /// remaining tasks a multi-task threshold wake releases first, and which
  /// of N handler-pool drain waiters resumes first. Returns an index in
  /// [0, N); N >= 2.
  virtual unsigned onPick(unsigned N) = 0;

  /// Called when a capacity credit (a BoundedStream consumer's advance)
  /// releases N >= 2 parked producers at once: returns which of the N
  /// remaining producers resumes first (selection order, like onPick).
  /// Defaults to the first option so ScheduleCtl implementations predating
  /// bounded streams keep compiling; the explore engines override it with
  /// a recorded decision of its own kind so replays stay bit-for-bit.
  virtual unsigned onBackpressure(unsigned N) {
    (void)N;
    return 0;
  }

  /// Called just before a chosen task is resumed (or reaped, when it was
  /// cancelled in the queue) with its fork-tree pedigree; engines fold
  /// these into the schedule hash that pins a replay bit-for-bit.
  virtual void onResume(const Pedigree &Ped) = 0;
};

} // namespace explore
} // namespace lvish

#endif // LVISH_SCHED_EXPLOREHOOKS_H
