//===- TaskScope.h - Counted task scopes with quiescence --------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A \c TaskScope counts a dynamic set of tasks and lets other tasks wait
/// for the count to drain to zero. Two counting disciplines cover the two
/// consumers in the paper:
///
///  * \c Mode::Live - a task counts from creation until it finishes. This is
///    handler-pool quiescence (\c quiesce in LVish): a handler blocked on a
///    \c get is still outstanding work.
///  * \c Mode::Runnable - a task stops counting while it is parked on an
///    LVar. This is \c DeadlockT (Section 6): the scope drains exactly when
///    every task underneath "has either returned or blocked indefinitely".
///
/// A scope is itself a \c ParkSite: tasks blocked in \c quiesce are parked
/// on the scope's drain list and woken at the zero transition.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SCHED_TASKSCOPE_H
#define LVISH_SCHED_TASKSCOPE_H

#include "src/sched/ParkSite.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace lvish {

class Task;

/// Counted scope over a set of tasks; see file comment.
class TaskScope : public ParkSite {
public:
  enum class Mode : uint8_t { Live, Runnable };

  explicit TaskScope(Mode M) : CountMode(M) {}

  TaskScope(const TaskScope &) = delete;
  TaskScope &operator=(const TaskScope &) = delete;

  Mode mode() const { return CountMode; }

  /// A task entered the scope (was created, or became runnable again under
  /// Mode::Runnable).
  void enter() { Active.fetch_add(1, std::memory_order_acq_rel); }

  /// A task left the scope (finished, or parked under Mode::Runnable).
  /// Wakes all drain waiters if the count hits zero.
  void exitOne();

  /// Parks \p Waiter until the scope drains. Returns false (and does not
  /// park) if the scope is already drained. The waiter must not itself be
  /// counted by this scope, or it could never drain. The caller is the
  /// quiesce awaiter, which has already prepared \p Waiter for suspension.
  bool parkUntilDrained(Task *Waiter);

  /// ParkSite: forget a reaped drain waiter.
  void removeParkedTask(Task *T) override;

  /// Current count (advisory; for assertions and stats).
  int64_t activeCount() const {
    return Active.load(std::memory_order_acquire);
  }

private:
  const Mode CountMode;
  std::atomic<int64_t> Active{0};
  std::mutex Mutex;
  std::vector<Task *> DrainWaiters;
};

} // namespace lvish

#endif // LVISH_SCHED_TASKSCOPE_H
