//===- Trace.h - Slice-level task-DAG trace recording -----------*- C++ -*-===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optional recording of the dynamic computation DAG executed by the
/// scheduler, at the granularity of *slices*: maximal stretches of one
/// task's execution with no scheduling event inside. A slice ends when its
/// task parks, finishes, forks a child, or performs a put that wakes
/// another task - so every dependency in the recorded graph is a clean
/// "slice A completed before slice B started" edge:
///
///   * chain edges     - consecutive slices of one task;
///   * spawn edges     - the fork point precedes the child's first slice;
///   * wake edges      - the waking put precedes the blocked task's next
///                       slice.
///
/// The graph feeds the parallelism simulator (src/sim), which replays it
/// under P virtual workers to reproduce the paper's thread-scaling figures
/// on hardware with fewer cores than the authors' 12-core testbed (see
/// DESIGN.md, "Simulated hardware substitution"). Per-slice CPU time is
/// measured during a real run; per-slice memory traffic comes from
/// \c ParCtx::noteBytes annotations in the kernels.
///
//===----------------------------------------------------------------------===//

#ifndef LVISH_SCHED_TRACE_H
#define LVISH_SCHED_TRACE_H

#include <cstdint>
#include <mutex>
#include <vector>

namespace lvish {

/// One recorded slice (a node of the replay DAG).
struct TraceSlice {
  uint32_t Task = 0;          ///< Owning task's trace id.
  uint64_t DurationNanos = 0; ///< Measured CPU time of this slice.
  uint64_t Bytes = 0;         ///< Announced memory traffic of this slice.
  /// Wall-clock start (nowNanos) of the slice; 0 when unknown (hand-built
  /// traces). Ignored by the simulator, consumed by the chrome://tracing
  /// exporter (src/obs/ChromeTrace.h).
  uint64_t StartNanos = 0;
};

/// A dependency edge between slices: Dst cannot start before Src ends.
struct TraceEdge {
  uint32_t Src;
  uint32_t Dst;
};

/// Thread-safe slice-level recorder. Enabled per Scheduler via
/// SchedulerConfig::EnableTracing; adds measurable overhead, so keep it
/// off outside DAG-capture runs.
class TraceRecorder {
public:
  static constexpr uint32_t None = ~0u;

  /// Registers a task; returns its trace id. \p ParentSlice is the
  /// spawning fork's slice (None for roots): it becomes a dependency of
  /// the task's first slice.
  uint32_t onTaskCreated(uint32_t ParentSlice) {
    std::lock_guard<std::mutex> Lock(Mutex);
    uint32_t Id = static_cast<uint32_t>(TaskPending.size());
    TaskPending.emplace_back();
    TaskLastSlice.push_back(None);
    if (ParentSlice != None)
      TaskPending[Id].push_back(ParentSlice);
    return Id;
  }

  /// Opens a new slice for \p TaskId; links it after the task's previous
  /// slice and any pending wake/spawn dependencies. Returns the slice id.
  uint32_t onSliceStart(uint32_t TaskId) {
    std::lock_guard<std::mutex> Lock(Mutex);
    uint32_t SliceId = static_cast<uint32_t>(Slices.size());
    Slices.push_back(TraceSlice{TaskId, 0, 0});
    if (TaskLastSlice[TaskId] != None)
      Edges.push_back(TraceEdge{TaskLastSlice[TaskId], SliceId});
    for (uint32_t Dep : TaskPending[TaskId])
      Edges.push_back(TraceEdge{Dep, SliceId});
    TaskPending[TaskId].clear();
    TaskLastSlice[TaskId] = SliceId;
    return SliceId;
  }

  /// Records the measured duration and byte count of a finished slice.
  /// \p StartNanos is the slice's wall-clock start, for timeline exports
  /// (0 = unknown, fine for simulator-only traces).
  void onSliceEnd(uint32_t SliceId, uint64_t DurationNanos, uint64_t Bytes,
                  uint64_t StartNanos = 0) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Slices[SliceId].DurationNanos = DurationNanos;
    Slices[SliceId].Bytes = Bytes;
    Slices[SliceId].StartNanos = StartNanos;
  }

  /// Records that \p WakerSlice's put unblocked \p TaskId: the task's next
  /// slice will depend on it.
  void onWake(uint32_t WakerSlice, uint32_t TaskId) {
    std::lock_guard<std::mutex> Lock(Mutex);
    TaskPending[TaskId].push_back(WakerSlice);
  }

  // Snapshot accessors (call only after the traced run has completed).
  const std::vector<TraceSlice> &slices() const { return Slices; }
  const std::vector<TraceEdge> &edges() const { return Edges; }
  size_t numTasks() const { return TaskLastSlice.size(); }

  void clear() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Slices.clear();
    Edges.clear();
    TaskPending.clear();
    TaskLastSlice.clear();
  }

private:
  std::mutex Mutex;
  std::vector<TraceSlice> Slices;
  std::vector<TraceEdge> Edges;
  /// Per task: dependencies awaiting the task's next slice.
  std::vector<std::vector<uint32_t>> TaskPending;
  /// Per task: its most recent slice (chain-edge source).
  std::vector<uint32_t> TaskLastSlice;
};

} // namespace lvish

#endif // LVISH_SCHED_TRACE_H
