//===- ServiceRuntimeTest.cpp - Multi-tenant session isolation -------------===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service::Runtime contracts (DESIGN.md Section 15): N concurrent
/// sessions on one shared pool produce exactly the N sequential results;
/// a session's quiescence never waits on a sibling's work; a doomed
/// session faults alone, tagged with its own session id, while its
/// neighbors finish untouched; explore-mode sessions either own the
/// Runtime's scheduling outright or are rejected deterministically; and
/// MaxActiveSessions really bounds concurrency with FIFO admission.
///
/// The ci.sh `service` stage reruns this binary under ThreadSanitizer -
/// the cross-session code paths (shared waiter buckets, per-session
/// inject queues, the finalizer thread) are exactly where a data race
/// would hide.
///
//===----------------------------------------------------------------------===//

#include "src/core/LVish.h"
#include "src/data/ISet.h"
#include "src/data/Stream.h"
#include "src/explore/SchedulePlan.h"
#include "src/service/Runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;
constexpr EffectSet IOE = Eff::FullIO;

/// Fork-join sum of I*I over [Lo, Hi): a small task tree so concurrent
/// sessions genuinely interleave on the shared pool.
Par<uint64_t> sumSquares(ParCtx<D> Ctx, uint64_t Lo, uint64_t Hi) {
  if (Hi - Lo <= 8) {
    uint64_t S = 0;
    for (uint64_t I = Lo; I < Hi; ++I)
      S += I * I;
    co_return S;
  }
  uint64_t Mid = Lo + (Hi - Lo) / 2;
  auto Left = newIVar<uint64_t>(Ctx);
  auto LeftBody = [Left, Lo, Mid](ParCtx<D> C) -> Par<void> {
    uint64_t V = co_await sumSquares(C, Lo, Mid);
    put(C, *Left, V);
  };
  fork(Ctx, LeftBody);
  uint64_t Right = co_await sumSquares(Ctx, Mid, Hi);
  uint64_t LeftV = co_await get(Ctx, *Left);
  co_return LeftV + Right;
}

uint64_t sumSquaresSeq(uint64_t Lo, uint64_t Hi) {
  uint64_t S = 0;
  for (uint64_t I = Lo; I < Hi; ++I)
    S += I * I;
  return S;
}

TEST(ServiceRuntime, ConcurrentSessionsMatchSequential) {
  constexpr int N = 12;
  service::Runtime RT({.Sched = {.NumWorkers = 4}});
  std::vector<service::SessionFuture<uint64_t>> Futures;
  for (int I = 0; I < N; ++I) {
    uint64_t Hi = 100 + 17 * static_cast<uint64_t>(I);
    Futures.push_back(RT.submit<D>([Hi](ParCtx<D> Ctx) -> Par<uint64_t> {
      co_return co_await sumSquares(Ctx, 0, Hi);
    }));
  }
  std::set<uint64_t> Ids;
  for (int I = 0; I < N; ++I) {
    auto O = Futures[I].get();
    ASSERT_TRUE(O.ok()) << "session " << I << ": " << O.fault().Message;
    uint64_t Hi = 100 + 17 * static_cast<uint64_t>(I);
    EXPECT_EQ(O.value(), sumSquaresSeq(0, Hi)) << "session " << I;
    uint64_t Id = Futures[I].sessionId();
    EXPECT_NE(Id, 0u);
    Ids.insert(Id);
    EXPECT_GT(Futures[I].latencyNanos(), 0u);
  }
  EXPECT_EQ(Ids.size(), static_cast<size_t>(N)) << "session ids collide";
}

TEST(ServiceRuntime, QuiesceScopesAreSessionLocal) {
  // Session A keeps tasks pending until released from outside; session B
  // runs to completion meanwhile. If quiescence were pool-global (the old
  // borrowed-Scheduler world), B's blocking run() could not return while
  // A still has work in flight.
  service::Runtime RT({.Sched = {.NumWorkers = 2}});
  std::atomic<bool> Release{false};
  auto FA = RT.submitIO<IOE>([&Release](ParCtx<IOE> Ctx) -> Par<int> {
    while (!Release.load(std::memory_order_acquire))
      co_await yield(Ctx);
    co_return 42;
  });
  for (int I = 0; I < 20; ++I) {
    auto O = RT.run<D>([I](ParCtx<D> Ctx) -> Par<uint64_t> {
      co_return co_await sumSquares(Ctx, 0, 64 + static_cast<uint64_t>(I));
    });
    ASSERT_TRUE(O.ok()) << O.fault().Message;
    EXPECT_EQ(O.value(), sumSquaresSeq(0, 64 + static_cast<uint64_t>(I)));
  }
  // A is still parked in its spin loop: its outcome cannot exist yet.
  EXPECT_FALSE(FA.ready())
      << "a sibling's quiescence completed session A's scope";
  Release.store(true, std::memory_order_release);
  auto OA = FA.get();
  ASSERT_TRUE(OA.ok()) << OA.fault().Message;
  EXPECT_EQ(OA.value(), 42);
}

TEST(ServiceRuntime, DoomedSessionFaultsAloneOnSharedPool) {
  service::Runtime RT({.Sched = {.NumWorkers = 4}});
  // The doomed tenant: a deterministic ConflictingPut.
  auto Bad = RT.submit<D>([](ParCtx<D> Ctx) -> Par<int> {
    auto IV = newIVar<int>(Ctx, "doomed-ivar");
    put(Ctx, *IV, 1);
    put(Ctx, *IV, 2);
    co_return co_await get(Ctx, *IV);
  });
  // Healthy tenants sharing the pool while Bad is cancelled and drained.
  std::vector<service::SessionFuture<uint64_t>> Good;
  for (int I = 0; I < 6; ++I)
    Good.push_back(RT.submit<D>([I](ParCtx<D> Ctx) -> Par<uint64_t> {
      co_return co_await sumSquares(Ctx, 0, 200 + static_cast<uint64_t>(I));
    }));
  auto OBad = Bad.get();
  ASSERT_FALSE(OBad.ok()) << "the conflicting put must fault";
  EXPECT_EQ(OBad.fault().Code, FaultCode::ConflictingPut);
  EXPECT_EQ(OBad.fault().SessionId, Bad.sessionId())
      << "the fault must be tagged with the doomed session's own id";
  for (int I = 0; I < 6; ++I) {
    auto O = Good[I].get();
    ASSERT_TRUE(O.ok()) << "neighbor " << I
                        << " infected by the doomed session: "
                        << O.fault().Message;
    EXPECT_EQ(O.value(), sumSquaresSeq(0, 200 + static_cast<uint64_t>(I)));
  }
  // The pool itself survives: the next tenant is unaffected.
  auto After = RT.run<D>(
      [](ParCtx<D> Ctx) -> Par<uint64_t> { co_return co_await sumSquares(
                                               Ctx, 0, 100); });
  ASSERT_TRUE(After.ok()) << After.fault().Message;
  EXPECT_EQ(After.value(), sumSquaresSeq(0, 100));
}

TEST(ServiceRuntime, StreamingSessionsIsolateOnSharedPool) {
  // Two tenants each run a private BoundedStream pipeline on the shared
  // pool, while a third is doomed by a duplicate-index conflict on its
  // own stream. Session isolation must hold the streaming state apart:
  // both healthy pipelines produce their sequential sums, and the fault
  // carries only the doomed session's id.
  service::Runtime RT({.Sched = {.NumWorkers = 4}});
  auto Pipeline = [](int Scale) {
    return [Scale](ParCtx<IOE> Ctx) -> Par<int> {
      auto BS = newBoundedStream<int>(Ctx, 2);
      auto Producer = [BS, Scale](ParCtx<IOE> C) -> Par<void> {
        for (int I = 0; I < 24; ++I) {
          auto Pw = put(C, *BS, static_cast<uint64_t>(I), I * Scale);
          co_await Pw;
        }
      };
      fork(Ctx, Producer);
      int Sum = 0;
      for (int I = 0; I < 24; ++I) {
        auto Gw = get(Ctx, *BS, static_cast<uint64_t>(I) + 1);
        int V = co_await Gw;
        Sum += V;
        advance(Ctx, *BS, static_cast<uint64_t>(I) + 1);
      }
      co_return Sum;
    };
  };
  auto FA = RT.submitIO<IOE>(Pipeline(1));
  auto FB = RT.submitIO<IOE>(Pipeline(3));
  auto Bad = RT.submitIO<IOE>([](ParCtx<IOE> Ctx) -> Par<int> {
    auto S = newStream<int>(Ctx);
    put(Ctx, *S, 0, 1);
    put(Ctx, *S, 0, 2); // Cell-lattice top: this tenant faults alone.
    co_return 0;
  });
  auto OBad = Bad.get();
  ASSERT_FALSE(OBad.ok());
  EXPECT_EQ(OBad.fault().Code, FaultCode::ConflictingInsert);
  EXPECT_EQ(OBad.fault().SessionId, Bad.sessionId());
  auto OA = FA.get();
  auto OB = FB.get();
  ASSERT_TRUE(OA.ok()) << "tenant A infected: " << OA.fault().Message;
  ASSERT_TRUE(OB.ok()) << "tenant B infected: " << OB.fault().Message;
  EXPECT_EQ(OA.value(), 24 * 23 / 2);
  EXPECT_EQ(OB.value(), 3 * 24 * 23 / 2);
}

TEST(ServiceRuntime, ExploreSessionRejectedDeterministically) {
  explore::Engine Eng = explore::Engine::random(5, 2);
  service::SessionOptions Want;
  Want.Explore = &Eng;
  // A threaded Runtime cannot grant a controller every scheduling
  // decision: deterministic rejection, bit-identical across attempts.
  service::Runtime RT({.Sched = {.NumWorkers = 2}});
  auto O1 = RT.runIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> { co_return 1; }, Want);
  auto O2 = RT.runIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> { co_return 1; }, Want);
  ASSERT_FALSE(O1.ok());
  ASSERT_FALSE(O2.ok());
  EXPECT_EQ(O1.fault().Code, FaultCode::SessionRejected);
  EXPECT_EQ(O1.fault().Message, O2.fault().Message)
      << "rejection must be bit-identical run to run";

  // A controller mismatch on an explore Runtime is an equally
  // deterministic refusal - never a silent run under the wrong engine.
  explore::Engine PoolEng = explore::Engine::random(9, 2);
  service::RuntimeConfig RC;
  RC.Sched.NumWorkers = 2;
  RC.Sched.Explore = &PoolEng;
  service::Runtime ExploreRT(RC);
  auto O3 = ExploreRT.runIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> { co_return 1; }, Want);
  ASSERT_FALSE(O3.ok());
  EXPECT_EQ(O3.fault().Code, FaultCode::SessionRejected);
  EXPECT_NE(O3.fault().Message, O1.fault().Message)
      << "distinct rejection reasons must stay distinguishable";
}

TEST(ServiceRuntime, ExploreSessionOwnsAMatchingRuntime) {
  explore::Engine Eng = explore::Engine::random(3, 2);
  service::RuntimeConfig RC;
  RC.Sched.NumWorkers = 2;
  RC.Sched.Explore = &Eng;
  service::Runtime RT(RC);
  service::SessionOptions Want;
  Want.Explore = &Eng;
  auto O = RT.runIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<uint64_t> {
        co_return co_await sumSquares(Ctx, 0, 40);
      },
      Want);
  ASSERT_TRUE(O.ok()) << O.fault().Message;
  EXPECT_EQ(O.value(), sumSquaresSeq(0, 40));
}

TEST(ServiceRuntime, MaxActiveSessionsBoundsConcurrency) {
  constexpr unsigned Bound = 2;
  service::Runtime RT(
      {.Sched = {.NumWorkers = 4}, .MaxActiveSessions = Bound});
  std::atomic<int> Cur{0};
  std::atomic<int> MaxSeen{0};
  std::vector<service::SessionFuture<int>> Futures;
  for (int I = 0; I < 10; ++I)
    Futures.push_back(RT.submitIO<IOE>([&](ParCtx<IOE> Ctx) -> Par<int> {
      int Now = 1 + Cur.fetch_add(1, std::memory_order_acq_rel);
      int Prev = MaxSeen.load(std::memory_order_relaxed);
      while (Now > Prev &&
             !MaxSeen.compare_exchange_weak(Prev, Now,
                                            std::memory_order_relaxed)) {
      }
      for (int Y = 0; Y < 50; ++Y)
        co_await yield(Ctx);
      Cur.fetch_sub(1, std::memory_order_acq_rel);
      co_return Now;
    }));
  RT.awaitIdle();
  for (auto &F : Futures) {
    ASSERT_TRUE(F.ready()) << "awaitIdle() returned with a session unfinished";
    auto O = F.get();
    ASSERT_TRUE(O.ok()) << O.fault().Message;
    EXPECT_LE(O.value(), static_cast<int>(Bound));
  }
  EXPECT_LE(MaxSeen.load(), static_cast<int>(Bound))
      << "admission let more than MaxActiveSessions run at once";
  EXPECT_GT(MaxSeen.load(), 0);
}

TEST(ServiceRuntime, SecondGetFaultsInsteadOfAsserting) {
  // Consuming a SessionFuture twice used to be an assert (vanishing in
  // NDEBUG builds into a moved-from read). Now the second get() resolves
  // deterministically: FaultCode::FutureConsumed, tagged with the
  // session's id, without blocking.
  service::Runtime RT({.Sched = {.NumWorkers = 2}});
  auto F = RT.submit<D>([](ParCtx<D> Ctx) -> Par<uint64_t> {
    co_return co_await sumSquares(Ctx, 0, 50);
  });
  auto First = F.get();
  ASSERT_TRUE(First.ok()) << First.fault().Message;
  EXPECT_EQ(First.value(), sumSquaresSeq(0, 50));
  EXPECT_TRUE(F.ready()) << "a consumed future still reports ready";
  auto Second = F.get();
  ASSERT_FALSE(Second.ok());
  EXPECT_EQ(Second.fault().Code, FaultCode::FutureConsumed);
  EXPECT_EQ(Second.fault().SessionId, F.sessionId());
  auto Third = F.get();
  ASSERT_FALSE(Third.ok());
  EXPECT_EQ(Third.fault().Message, Second.fault().Message)
      << "repeat consumption faults must be bit-identical";
}

TEST(ServiceRuntime, PerSessionStatsDeltasOnSharedPool) {
  service::Runtime RT({.Sched = {.NumWorkers = 2}});
  SchedulerStats A, B;
  service::SessionOptions OA;
  OA.StatsOut = &A;
  service::SessionOptions OB;
  OB.StatsOut = &B;
  // Non-overlapping sessions: the deltas are exact. Root + 3 forks each.
  auto Body = [](ParCtx<D> Ctx) -> Par<uint64_t> {
    auto Done = newISet<int>(Ctx);
    for (int I = 0; I < 3; ++I)
      fork(Ctx, [Done, I](ParCtx<D> C) -> Par<void> {
        insert(C, *Done, I);
        co_return;
      });
    co_await waitSize(Ctx, *Done, 3);
    co_return 3;
  };
  ASSERT_TRUE(RT.run<D>(Body, OA).ok());
  ASSERT_TRUE(RT.run<D>(Body, OB).ok());
  EXPECT_EQ(A.TasksCreated, 4u);
  EXPECT_EQ(B.TasksCreated, 4u);
  EXPECT_EQ(RT.scheduler().stats().TasksCreated, 8u)
      << "pool cumulative stats keep the whole history";
}

} // namespace
