//===- TransformersTest.cpp - The parallel effect zoo ----------------------===//
//
// Tests for Section 4-6 machinery: splittable state layers, pedigrees,
// deterministic RNG, cancellation, ParST disjoint update, deadlock scopes,
// bulk retry, and memo tables.
//
//===----------------------------------------------------------------------===//

#include "src/core/LVish.h"
#include "src/core/ParFor.h"
#include "src/data/Counter.h"
#include "src/trans/Transformers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;

// -- StateLayer ---------------------------------------------------------

struct SplitCounter {
  int Depth = 0;
  SplitCounter splitForChild() {
    ++Depth; // Parent notes the fork...
    return SplitCounter{Depth}; // ...child starts from the new depth.
  }
};

TEST(StateLayer, ForkSplitsState) {
  int ChildDepth = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        co_return co_await withState(Ctx, SplitCounter{}, [](ParCtx<D> C)
                                                              -> Par<int> {
          auto Out = newIVar<int>(C);
          fork(C, [Out](ParCtx<D> C2) -> Par<void> {
            put(C2, *Out, stateRef<SplitCounter>(C2).Depth);
            co_return;
          });
          int V = co_await get(C, *Out);
          co_return V;
        });
      },
      SchedulerConfig{2});
  EXPECT_EQ(ChildDepth, 1);
}

TEST(StateLayer, TwoStackedLayersAreIndependent) {
  struct TagA {};
  struct TagB {};
  runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
    co_await withState<Duplicated<int>, TagA>(
        Ctx, Duplicated<int>{1}, [](ParCtx<D> C) -> Par<void> {
          co_await withState<Duplicated<int>, TagB>(
              C, Duplicated<int>{2}, [](ParCtx<D> C2) -> Par<void> {
                EXPECT_EQ((stateRef<Duplicated<int>, TagA>(C2).Value), 1);
                EXPECT_EQ((stateRef<Duplicated<int>, TagB>(C2).Value), 2);
                co_return;
              });
          co_return;
        });
    co_return;
  });
}

TEST(StateLayer, MissingLayerIsDetectable) {
  runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
    EXPECT_FALSE((hasStateLayer<Duplicated<int>>(Ctx)));
    co_return;
  });
}

// -- Pedigree ---------------------------------------------------------------

TEST(Pedigree, RootIsEmptyAndForksExtend) {
  auto Paths = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<std::vector<std::string>> {
        co_return co_await withPedigree(
            Ctx, [](ParCtx<D> C) -> Par<std::vector<std::string>> {
              std::vector<std::string> Out(3);
              Out[0] = pedigree(C); // Root: "".
              auto IV = newIVar<std::string>(C);
              fork(C, [IV](ParCtx<D> C2) -> Par<void> {
                put(C2, *IV, pedigree(C2)); // First child: "L".
                co_return;
              });
              Out[1] = co_await get(C, *IV);
              Out[2] = pedigree(C); // Parent after one fork: "R".
              co_return Out;
            });
      },
      SchedulerConfig{2});
  EXPECT_EQ(Paths[0], "");
  EXPECT_EQ(Paths[1], "L");
  EXPECT_EQ(Paths[2], "R");
}

TEST(Pedigree, ConcurrencyOracle) {
  EXPECT_TRUE(pedigreesConcurrent("L", "R"));
  EXPECT_TRUE(pedigreesConcurrent("LR", "LL"));
  EXPECT_FALSE(pedigreesConcurrent("L", "LR"));  // Ancestor.
  EXPECT_FALSE(pedigreesConcurrent("LR", "LR")); // Same task.
}

TEST(Pedigree, TickAdvancesSequentialCounter) {
  std::string Full = runPar<D>([](ParCtx<D> Ctx) -> Par<std::string> {
    co_return co_await withPedigree(Ctx, [](ParCtx<D> C) -> Par<std::string> {
      pedigreeTick(C);
      pedigreeTick(C);
      co_return pedigreeFull(C);
    });
  });
  EXPECT_EQ(Full, "#2");
}

// -- RngT ------------------------------------------------------------------

TEST(ParRng, DeterministicAcrossSchedulesAndWorkers) {
  auto Draw = [](unsigned Workers, uint64_t StealSeed) {
    SchedulerConfig Cfg;
    Cfg.NumWorkers = Workers;
    Cfg.StealSeed = StealSeed;
    return runPar<D>(
        [](ParCtx<D> Ctx) -> Par<std::vector<uint64_t>> {
          co_return co_await withRng(
              Ctx, 42, [](ParCtx<D> C) -> Par<std::vector<uint64_t>> {
                constexpr int N = 16;
                std::vector<std::shared_ptr<IVar<uint64_t>>> Outs;
                for (int I = 0; I < N; ++I)
                  Outs.push_back(newIVar<uint64_t>(C));
                for (int I = 0; I < N; ++I)
                  fork(C, [Out = Outs[static_cast<size_t>(I)]](
                              ParCtx<D> C2) -> Par<void> {
                    put(C2, *Out, rand(C2));
                    co_return;
                  });
                std::vector<uint64_t> Vals;
                for (auto &O : Outs)
                  Vals.push_back(co_await get(C, *O));
                co_return Vals;
              });
        },
        Cfg);
  };
  auto Ref = Draw(1, 7);
  EXPECT_EQ(Draw(2, 99), Ref);
  EXPECT_EQ(Draw(4, 1234), Ref);
  // And the streams are pairwise distinct (split independence).
  std::set<uint64_t> Uniq(Ref.begin(), Ref.end());
  EXPECT_EQ(Uniq.size(), Ref.size());
}

// -- CancelT ------------------------------------------------------------

TEST(Cancel, CancelledComputationStopsDoingWork) {
  // A cancellable read-only spinner bumps a plain atomic (observable to
  // the test only). After cancel, its progress must stop.
  std::atomic<long> Progress{0};
  runParIO<Eff::FullIO>(
      [&](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
        auto Fut = forkCancelable(
            Ctx, [&Progress](ParCtx<Eff::ReadOnly> C) -> Par<int> {
              for (;;) {
                Progress.fetch_add(1, std::memory_order_relaxed);
                co_await yield(C); // Poll point.
              }
            });
        for (int I = 0; I < 50; ++I)
          co_await yield(Ctx);
        cancel(Ctx, Fut);
        // Let the cancellation take effect, then watch for quiescence.
        long A = -1, B = -2;
        for (int Tries = 0; Tries < 1000 && A != B; ++Tries) {
          A = Progress.load();
          for (int I = 0; I < 10; ++I)
            co_await yield(Ctx);
          B = Progress.load();
        }
        EXPECT_EQ(A, B) << "cancelled task kept running";
        co_return;
      },
      SchedulerConfig{2});
}

TEST(Cancel, ResultReadableWhenNotCancelled) {
  int R = runParIO<Eff::FullIO>(
      [](ParCtx<Eff::FullIO> Ctx) -> Par<int> {
        auto Fut = forkCancelable(Ctx, [](ParCtx<Eff::ReadOnly> C) -> Par<int> {
          co_return 21;
        });
        int V = co_await readCFuture(Ctx, Fut);
        co_return V * 2;
      },
      SchedulerConfig{2});
  EXPECT_EQ(R, 42);
}

TEST(Cancel, TransitiveCancellationReachesGrandchildren) {
  std::atomic<long> GrandchildProgress{0};
  runParIO<Eff::FullIO>(
      [&](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
        auto Fut = forkCancelable(
            Ctx, [&](ParCtx<Eff::ReadOnly> C) -> Par<int> {
              // Regular fork shares the cancellable node: cancelling the
              // future must reach it.
              fork(C, [&](ParCtx<Eff::ReadOnly> C2) -> Par<void> {
                for (;;) {
                  GrandchildProgress.fetch_add(1, std::memory_order_relaxed);
                  co_await yield(C2);
                }
              });
              for (;;)
                co_await yield(C);
            });
        for (int I = 0; I < 50; ++I)
          co_await yield(Ctx);
        cancel(Ctx, Fut);
        long A = -1, B = -2;
        for (int Tries = 0; Tries < 1000 && A != B; ++Tries) {
          A = GrandchildProgress.load();
          for (int I = 0; I < 10; ++I)
            co_await yield(Ctx);
          B = GrandchildProgress.load();
        }
        EXPECT_EQ(A, B) << "grandchild survived transitive cancel";
        co_return;
      },
      SchedulerConfig{2});
}

TEST(Cancel, CancelIsIdempotent) {
  runParIO<Eff::FullIO>([](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
    auto Fut = forkCancelable(Ctx, [](ParCtx<Eff::ReadOnly> C) -> Par<int> {
      for (;;)
        co_await yield(C);
    });
    cancel(Ctx, Fut);
    cancel(Ctx, Fut);
    co_return;
  });
}

// -- ParST -------------------------------------------------------------

TEST(ParST, RunParVecFillAndReadBack) {
  int Sum = runPar<D>([](ParCtx<D> Ctx) -> Par<int> {
    co_return co_await runParVec(
        Ctx, 10, 0, [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<int> {
          V.fill(7);
          int S = 0;
          for (size_t I = 0; I < V.size(); ++I)
            S += V[I];
          co_return S;
        });
  });
  EXPECT_EQ(Sum, 70);
}

TEST(ParST, ForkSTSplitWritesAreDisjointAndGlobal) {
  // The paper's example: child index 0 of the right half is global index
  // Mid ("writing "c" to index 0 in the second child ... is really
  // writing to index 5 of the global vector").
  auto Result = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<std::vector<int>> {
        co_return co_await runParVec(
            Ctx, 10, 0,
            [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<std::vector<int>> {
              V.fill(1);
              co_await forkSTSplit(
                  C, V, 5,
                  [](ParCtx<Eff::DetST> C2, VecView<int> L) -> Par<void> {
                    L[0] = 100;
                    co_return;
                  },
                  [](ParCtx<Eff::DetST> C2, VecView<int> R) -> Par<void> {
                    R[0] = 200;
                    co_return;
                  });
              std::vector<int> Out;
              for (size_t I = 0; I < V.size(); ++I)
                Out.push_back(V[I]);
              co_return Out;
            });
      },
      SchedulerConfig{2});
  EXPECT_EQ(Result[0], 100);
  EXPECT_EQ(Result[5], 200);
  EXPECT_EQ(Result[1], 1);
  EXPECT_EQ(Result[9], 1);
}

TEST(ParST, ParentViewPoisonedDuringSplit) {
  runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
    co_await runParVec(
        Ctx, 8, 0, [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<void> {
          // Named: the right branch captures a VecView (non-trivial).
          auto LeftB = [](ParCtx<Eff::DetST> C2, VecView<int> L) -> Par<void> {
            co_return;
          };
          auto RightB = [V](ParCtx<Eff::DetST> C2,
                            VecView<int> R) -> Par<void> {
            // The captured parent view must be dead inside the split.
            EXPECT_FALSE(V.live());
            co_return;
          };
          co_await forkSTSplit(C, V, 4, LeftB, RightB);
          // And live again after the join.
          EXPECT_TRUE(V.live());
          co_return;
        });
    co_return;
  });
}

TEST(ParST, ChildViewsDieAtJoin) {
  runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
    co_await runParVec(
        Ctx, 8, 0, [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<void> {
          VecView<int> Escapee;
          auto LeftB = [&Escapee](ParCtx<Eff::DetST> C2,
                                  VecView<int> L) -> Par<void> {
            Escapee = L; // Deliberately leak the child view.
            co_return;
          };
          auto RightB = [](ParCtx<Eff::DetST> C2,
                           VecView<int> R) -> Par<void> { co_return; };
          co_await forkSTSplit(C, V, 4, LeftB, RightB);
          EXPECT_FALSE(Escapee.live()); // Poisoned at the join.
          co_return;
        });
    co_return;
  });
}

TEST(ParST, ZoomInGivesExclusiveSubrange) {
  int Mid = runPar<D>([](ParCtx<D> Ctx) -> Par<int> {
    co_return co_await runParVec(
        Ctx, 10, 3, [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<int> {
          co_await zoomIn(C, V, 2, 8,
                          [](ParCtx<Eff::DetST> C2,
                             VecView<int> Sub) -> Par<void> {
                            EXPECT_EQ(Sub.size(), 6u);
                            Sub.fill(9);
                            co_return;
                          });
          co_return V[0] * 100 + V[2]; // [0]=3 untouched, [2]=9.
        });
  });
  EXPECT_EQ(Mid, 309);
}

TEST(ParST, NestedSplitsSortSmallArrayInPlace) {
  // Recursion over forkSTSplit: in-place parallel "sort" of a reversed
  // array via even-odd halving down to singletons, then merging with
  // withTempBuffer. (The full merge sort lives in src/kernels.)
  auto Sorted = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<std::vector<int>> {
        co_return co_await runParVec(
            Ctx, 64, 0,
            [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<std::vector<int>> {
              for (size_t I = 0; I < V.size(); ++I)
                V[I] = static_cast<int>(V.size() - I);
              struct Rec {
                static Par<void> sort(ParCtx<Eff::DetST> C2,
                                      VecView<int> View) {
                  if (View.size() <= 8) {
                    std::sort(View.raw(), View.raw() + View.size());
                    co_return;
                  }
                  size_t Mid = View.size() / 2;
                  co_await forkSTSplit(
                      C2, View, Mid,
                      [](ParCtx<Eff::DetST> C3, VecView<int> L) -> Par<void> {
                        co_await sort(C3, L);
                      },
                      [](ParCtx<Eff::DetST> C3, VecView<int> R) -> Par<void> {
                        co_await sort(C3, R);
                      });
                  // Sequential merge through a temp buffer.
                  co_await withTempBuffer(
                      C2, View, View.size(),
                      [Mid](ParCtx<Eff::DetST> C3, VecView<int> A,
                            VecView<int> Tmp) -> Par<void> {
                        std::merge(A.raw(), A.raw() + Mid, A.raw() + Mid,
                                   A.raw() + A.size(), Tmp.raw());
                        std::copy(Tmp.raw(), Tmp.raw() + Tmp.size(), A.raw());
                        co_return;
                      });
                }
              };
              co_await Rec::sort(C, V);
              std::vector<int> Out;
              for (size_t I = 0; I < V.size(); ++I)
                Out.push_back(V[I]);
              co_return Out;
            });
      },
      SchedulerConfig{4});
  EXPECT_TRUE(std::is_sorted(Sorted.begin(), Sorted.end()));
  EXPECT_EQ(Sorted.front(), 1);
  EXPECT_EQ(Sorted.back(), 64);
}

// -- DeadlockT ----------------------------------------------------------

TEST(Deadlock, CleanSubtreeReportsNoDeadlock) {
  DeadlockReport R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<DeadlockReport> {
        co_return co_await forkWithDeadlockDetection(
            Ctx, [](ParCtx<D> C) -> Par<void> {
              auto IV = newIVar<int>(C);
              fork(C, [IV](ParCtx<D> C2) -> Par<void> {
                put(C2, *IV, 1);
                co_return;
              });
              int V = co_await get(C, *IV);
              (void)V;
              co_return;
            });
      },
      SchedulerConfig{2});
  EXPECT_FALSE(R.deadlocked());
  EXPECT_EQ(R.BlockedTasks, 0);
}

TEST(Deadlock, CycleIsDetectedAndReported) {
  // Two tasks blocked on each other's IVars: a genuine dependency cycle.
  DeadlockReport R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<DeadlockReport> {
        co_return co_await forkWithDeadlockDetection(
            Ctx, [](ParCtx<D> C) -> Par<void> {
              auto A = newIVar<int>(C);
              auto B = newIVar<int>(C);
              fork(C, [A, B](ParCtx<D> C2) -> Par<void> {
                int V = co_await get(C2, *A);
                put(C2, *B, V);
              });
              int V = co_await get(C, *B); // Completes the cycle.
              put(C, *A, V);
            });
      },
      SchedulerConfig{2});
  EXPECT_TRUE(R.deadlocked());
  EXPECT_EQ(R.BlockedTasks, 2);
}

// -- BulkRetryT ---------------------------------------------------------

TEST(BulkRetry, AllIterationsEventuallyCommit) {
  // Iteration i commits only once iteration i-1 has published; a chain
  // that forces multiple rounds.
  size_t Rounds = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<size_t> {
        constexpr size_t N = 20;
        auto Done = newISet<size_t>(Ctx);
        // Named body: GCC 12 co_await temporary discipline (see Par.h).
        auto Body = [Done](ParCtx<D> C, size_t I) -> Par<Spec> {
          if (I > 0 && !Done->containsElem(I - 1))
            co_return Spec::Retry;
          insert(C, *Done, I);
          co_return Spec::Done;
        };
        size_t R = co_await forSpeculative(Ctx, 0, N, Body, /*Grain=*/4);
        EXPECT_EQ(Done->sizeNow(), N);
        co_return R;
      },
      SchedulerConfig{2});
  EXPECT_GE(Rounds, 2u); // The chain cannot finish in one round.
}

TEST(BulkRetry, SingleRoundWhenNothingFails) {
  size_t Rounds = runPar<D>([](ParCtx<D> Ctx) -> Par<size_t> {
    co_return co_await forSpeculative(
        Ctx, 0, 100,
        [](ParCtx<D> C, size_t I) -> Par<Spec> { co_return Spec::Done; });
  });
  EXPECT_EQ(Rounds, 1u);
}

// -- Memo ------------------------------------------------------------------

TEST(Memo, MemoizedFunctionComputesOncePerKey) {
  std::atomic<int> Evaluations{0};
  runParIO<Eff::FullIO>(
      [&](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
        auto M = makeMemo<int>(Ctx, [&Evaluations](ParCtx<Eff::ReadOnly> C,
                                                   int K) -> Par<int> {
          Evaluations.fetch_add(1);
          co_return K * K;
        });
        int A = co_await getMemo(Ctx, M, 7);
        int B = co_await getMemo(Ctx, M, 7);
        int C2 = co_await getMemo(Ctx, M, 3);
        EXPECT_EQ(A, 49);
        EXPECT_EQ(B, 49);
        EXPECT_EQ(C2, 9);
        co_return;
      },
      SchedulerConfig{2});
  EXPECT_EQ(Evaluations.load(), 2); // Once for 7, once for 3.
}

TEST(Memo, EffectfulMemoizedFunctionCanUseLVars) {
  // makeMemo over a Par function that itself reads an LVar.
  int R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        auto Base = newIVar<int>(Ctx);
        put(Ctx, *Base, 10);
        auto M = makeMemo<int, Eff::Det>(
            Ctx, [Base](ParCtx<Eff::Det> C, int K) -> Par<int> {
              int B = co_await get(C, *Base);
              co_return B + K;
            });
        co_return co_await getMemo(Ctx, M, 32);
      },
      SchedulerConfig{2});
  EXPECT_EQ(R, 42);
}

TEST(Memo, GetMemoROWorksInsideCancellableComputation) {
  // The Section 6.2 punchline: a cancelled ReadOnly branch deposits memo
  // entries that survive - learning from a computation that never
  // "happened".
  std::atomic<int> Evaluations{0};
  int Final = runParIO<Eff::FullIO>(
      [&](ParCtx<Eff::FullIO> Ctx) -> Par<int> {
        auto M = makeMemo<int>(Ctx, [&Evaluations](ParCtx<Eff::ReadOnly> C,
                                                   int K) -> Par<int> {
          Evaluations.fetch_add(1);
          co_return K + 1;
        });
        auto Fut = forkCancelable(
            Ctx, [M](ParCtx<Eff::ReadOnly> C) -> Par<int> {
              // Memo request from a ReadOnly computation: only legal via
              // the blessed getMemoRO, not getMemo (which needs HasPut).
              int V = co_await getMemoRO(C, M, 5);
              co_return V;
            });
        // The branch's request populates the shared memo table; this call
        // either reuses it or races to the same single evaluation.
        int V = co_await getMemo(Ctx, M, 5);
        cancel(Ctx, Fut);
        co_return V;
      },
      SchedulerConfig{2});
  EXPECT_EQ(Final, 6);
  EXPECT_EQ(Evaluations.load(), 1); // Shared between branch and main.
}

} // namespace
