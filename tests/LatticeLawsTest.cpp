//===- LatticeLawsTest.cpp - Lattice and bump laws, property style ---------===//
//
// The paper's proof obligations for data-structure authors, checked as
// executable properties: joins must be associative, commutative,
// idempotent, and inflationary, with bottom as identity; bump families
// must commute and be inflationary; threshold trigger sets must be
// pairwise incompatible. Parameterized (TEST_P) across random seeds so
// each law is exercised on many generated states.
//
//===----------------------------------------------------------------------===//

#include "src/core/Lattice.h"
#include "src/data/AndLV.h"
#include "src/data/MonotoneHashMap.h"
#include "src/data/PureMap.h"
#include "src/support/DenseBitset.h"
#include "src/support/SplitMix.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

using namespace lvish;

namespace {

// -- Generic law checkers --------------------------------------------------

template <typename L>
void checkJoinLaws(const std::vector<typename L::ValueType> &States) {
  for (const auto &A : States) {
    EXPECT_EQ(L::join(A, L::bottom()), A) << "bottom not an identity";
    EXPECT_EQ(L::join(A, A), A) << "join not idempotent";
    for (const auto &B : States) {
      EXPECT_EQ(L::join(A, B), L::join(B, A)) << "join not commutative";
      auto J = L::join(A, B);
      EXPECT_EQ(L::join(A, J), J) << "join not inflationary";
      for (const auto &C : States)
        EXPECT_EQ(L::join(A, L::join(B, C)), L::join(L::join(A, B), C))
            << "join not associative";
    }
  }
}

// A set-union lattice over DenseBitset, used by ISet semantically; here
// we check the laws on the value type directly.
struct BitsetUnionLattice {
  using ValueType = DenseBitset;
  static constexpr size_t Universe = 48;
  static ValueType bottom() { return DenseBitset(Universe); }
  static ValueType join(const ValueType &A, const ValueType &B) {
    ValueType R = A;
    R |= B;
    return R;
  }
};

class LatticeLawsP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LatticeLawsP, MaxUint64JoinLaws) {
  SplitMix64 Rng(GetParam());
  std::vector<unsigned long long> States{0, 1,
                                         ~0ULL}; // Edge states always in.
  for (int I = 0; I < 6; ++I)
    States.push_back(Rng.next() >> (Rng.nextBounded(40)));
  checkJoinLaws<MaxUint64Lattice>(States);
}

TEST_P(LatticeLawsP, BitsetUnionJoinLaws) {
  SplitMix64 Rng(GetParam());
  std::vector<DenseBitset> States{BitsetUnionLattice::bottom()};
  for (int I = 0; I < 6; ++I) {
    DenseBitset B(BitsetUnionLattice::Universe);
    for (int K = 0; K < 10; ++K)
      B.set(Rng.nextBounded(BitsetUnionLattice::Universe));
    States.push_back(B);
  }
  checkJoinLaws<BitsetUnionLattice>(States);
}

TEST_P(LatticeLawsP, MinUint64JoinLaws) {
  // The PBBS connected-components label lattice (src/data/MinMap.h):
  // ordered by >=, bottom is +infinity, join is min.
  SplitMix64 Rng(GetParam());
  std::vector<unsigned long long> States{0, 1, ~0ULL};
  for (int I = 0; I < 6; ++I)
    States.push_back(Rng.next() >> (Rng.nextBounded(40)));
  checkJoinLaws<MinUint64Lattice>(States);
  // The derived order is the REVERSE of the numeric one: a lower label is
  // "more information". Thresholds of the form "label <= T" are therefore
  // upward-closed - once they fire they can never unfire, the monotone
  // read guarantee MinMap::WaitLeqAwaiter leans on.
  for (const auto &A : States)
    for (const auto &B : States) {
      EXPECT_EQ(latticeLeq<MinUint64Lattice>(A, B), A >= B);
      for (const auto &T : States)
        if (A <= T) // Threshold fired at A...
          EXPECT_LE(MinUint64Lattice::join(A, B), T)
              << "...so it must stay fired at every later state";
    }
}

// Key-wise min over partial label maps: the full MinMap state lattice
// (vertex -> component label), modeled on std::map. Absent keys are
// bottom (+infinity), so key union with per-key min IS the join.
struct MinLabelMapLattice {
  using ValueType = std::map<uint32_t, unsigned long long>;
  static ValueType bottom() { return {}; }
  static ValueType join(const ValueType &A, const ValueType &B) {
    ValueType R = A;
    for (const auto &[K, V] : B) {
      auto [It, Inserted] = R.insert({K, V});
      if (!Inserted)
        It->second = MinUint64Lattice::join(It->second, V);
    }
    return R;
  }
};

TEST_P(LatticeLawsP, MinLabelMapJoinLaws) {
  SplitMix64 Rng(GetParam());
  std::vector<MinLabelMapLattice::ValueType> States{
      MinLabelMapLattice::bottom()};
  for (int I = 0; I < 6; ++I) {
    MinLabelMapLattice::ValueType M;
    int N = 1 + static_cast<int>(Rng.nextBounded(5));
    for (int K = 0; K < N; ++K)
      M[static_cast<uint32_t>(Rng.nextBounded(6))] = Rng.nextBounded(8);
    States.push_back(std::move(M));
  }
  checkJoinLaws<MinLabelMapLattice>(States);
}

// The spanning forest's "monotone union structure": a grow-only set of
// accepted edge indices (operationally an ISet<uint64_t>), join = union.
struct EdgeSetUnionLattice {
  using ValueType = std::set<uint64_t>;
  static ValueType bottom() { return {}; }
  static ValueType join(const ValueType &A, const ValueType &B) {
    ValueType R = A;
    R.insert(B.begin(), B.end());
    return R;
  }
};

TEST_P(LatticeLawsP, EdgeSetUnionJoinLaws) {
  SplitMix64 Rng(GetParam());
  std::vector<EdgeSetUnionLattice::ValueType> States{
      EdgeSetUnionLattice::bottom()};
  for (int I = 0; I < 6; ++I) {
    EdgeSetUnionLattice::ValueType S;
    int N = static_cast<int>(Rng.nextBounded(8));
    for (int K = 0; K < N; ++K)
      S.insert(Rng.nextBounded(20));
    States.push_back(std::move(S));
  }
  checkJoinLaws<EdgeSetUnionLattice>(States);
  // Threshold shape used by the forest: "edge I is in the forest" is a
  // one-element lower set; distinct singletons are compatible (their join
  // is fine), which is why the forest reads only after a global freeze
  // rather than via per-element thresholds on incompatible states.
  for (const auto &A : States)
    for (const auto &B : States) {
      auto J = EdgeSetUnionLattice::join(A, B);
      for (uint64_t E : A)
        EXPECT_TRUE(J.count(E)) << "union lost an accepted edge";
    }
}

TEST_P(LatticeLawsP, MinLabelMapInsertOrderIndependence) {
  // Operational cousin of the law check: a fixed SET of (key, label)
  // min-writes lands on the same map whatever the arrival order - the
  // schedule-independence MinMap::joinKey inherits.
  SplitMix64 Rng(GetParam());
  std::vector<std::pair<uint32_t, unsigned long long>> Writes;
  for (int I = 0; I < 40; ++I)
    Writes.push_back({static_cast<uint32_t>(Rng.nextBounded(8)),
                      Rng.nextBounded(100)});
  std::vector<std::pair<uint32_t, unsigned long long>> Shuffled = Writes;
  for (size_t I = Shuffled.size(); I > 1; --I)
    std::swap(Shuffled[I - 1], Shuffled[Rng.nextBounded(I)]);
  auto Apply = [](const auto &Ws) {
    MinLabelMapLattice::ValueType M;
    for (const auto &[K, V] : Ws)
      M = MinLabelMapLattice::join(M, {{K, V}});
    return M;
  };
  EXPECT_EQ(Apply(Writes), Apply(Shuffled));
}

TEST_P(LatticeLawsP, BoolOrJoinLaws) {
  checkJoinLaws<BoolOrLattice>({false, true});
  (void)GetParam();
}

TEST_P(LatticeLawsP, AndLatticeJoinLawsExhaustive) {
  checkJoinLaws<AndLattice>(AndLattice::allStates());
  (void)GetParam();
}

TEST_P(LatticeLawsP, MapUnionJoinLaws) {
  // The PureMap lattice: key-wise union with a designated top for
  // conflicting rebinds. Random small maps over a tight key range so the
  // sweep hits both disjoint unions and genuine conflicts.
  using L = MapUnionLattice<int, int>;
  SplitMix64 Rng(GetParam());
  std::vector<L::ValueType> States{L::bottom(), std::nullopt /* top */};
  for (int I = 0; I < 6; ++I) {
    std::map<int, int> M;
    int N = 1 + static_cast<int>(Rng.nextBounded(4));
    for (int K = 0; K < N; ++K)
      M[static_cast<int>(Rng.nextBounded(5))] =
          static_cast<int>(Rng.nextBounded(3));
    States.push_back(std::move(M));
  }
  checkJoinLaws<L>(States);
  // Conflict is top, equal rebind is idempotent.
  L::ValueType A = std::map<int, int>{{1, 10}};
  L::ValueType B = std::map<int, int>{{1, 20}};
  EXPECT_TRUE(L::isTop(L::join(A, B)));
  EXPECT_EQ(L::join(A, A), A);
}

// The Stream state lattice (src/data/Stream.h), modeled: a partial map
// from index to value with a designated top for conflicting rebinds of
// one cell - exactly MapUnionLattice over (index, value). The stream's
// observable "filled prefix length" is a DERIVED quantity, so the model
// checks both the join laws and that the derivation is monotone.
using StreamCellLattice = MapUnionLattice<int, int>;

/// Length of the contiguous bound prefix of a model state (top => the
/// question is moot; the session has already faulted).
static size_t prefixLenOf(const StreamCellLattice::ValueType &V) {
  if (StreamCellLattice::isTop(V))
    return 0;
  size_t N = 0;
  while (V->count(static_cast<int>(N)))
    ++N;
  return N;
}

TEST_P(LatticeLawsP, StreamPrefixMapJoinLaws) {
  SplitMix64 Rng(GetParam());
  std::vector<StreamCellLattice::ValueType> States{
      StreamCellLattice::bottom(), std::nullopt /* top */};
  for (int I = 0; I < 6; ++I) {
    std::map<int, int> M;
    int N = 1 + static_cast<int>(Rng.nextBounded(5));
    for (int K = 0; K < N; ++K) {
      // Value is a function of the index, as the monotone discipline
      // requires of non-conflicting producers; the conflict case is
      // exercised separately below.
      int Idx = static_cast<int>(Rng.nextBounded(6));
      M[Idx] = Idx * 7 + 1;
    }
    States.push_back(std::move(M));
  }
  checkJoinLaws<StreamCellLattice>(States);
  // The derived prefix length is monotone under join: joining in more
  // cells can only extend (never shrink) the contiguous filled prefix.
  for (const auto &A : States)
    for (const auto &B : States) {
      auto J = StreamCellLattice::join(A, B);
      if (!StreamCellLattice::isTop(J))
        EXPECT_GE(prefixLenOf(J), std::max(prefixLenOf(A), prefixLenOf(B)))
            << "filled prefix shrank under join";
    }
  // Conflicting rebind of one index is the cell's top; equal rebind is a
  // no-op - the exact pair of behaviors Stream::appendAt implements as
  // (session fault, NoOpJoins skip).
  StreamCellLattice::ValueType A = std::map<int, int>{{0, 10}};
  StreamCellLattice::ValueType B = std::map<int, int>{{0, 20}};
  EXPECT_TRUE(StreamCellLattice::isTop(StreamCellLattice::join(A, B)));
  EXPECT_EQ(StreamCellLattice::join(A, A), A);
}

TEST_P(LatticeLawsP, StreamHoleThenFillOrderIndependence) {
  // Operational cousin: a fixed SET of (index, value) appends - holes
  // deliberately included, so some arrival orders fill cell 3 before
  // cell 1 exists - lands on the same state AND the same filled prefix
  // whatever the arrival order. This is the schedule-independence the
  // explored pipeline sweeps check end-to-end on the real structure.
  SplitMix64 Rng(GetParam());
  std::vector<std::pair<int, int>> Writes;
  for (int I = 0; I < 24; ++I) {
    int Idx = static_cast<int>(Rng.nextBounded(10));
    Writes.push_back({Idx, Idx * 7 + 1}); // Equal-on-duplicate values.
  }
  std::vector<std::pair<int, int>> Shuffled = Writes;
  for (size_t I = Shuffled.size(); I > 1; --I)
    std::swap(Shuffled[I - 1], Shuffled[Rng.nextBounded(I)]);
  auto Apply = [](const auto &Ws) {
    StreamCellLattice::ValueType S = StreamCellLattice::bottom();
    for (const auto &[Idx, V] : Ws)
      S = StreamCellLattice::join(S, std::map<int, int>{{Idx, V}});
    return S;
  };
  auto S1 = Apply(Writes), S2 = Apply(Shuffled);
  EXPECT_EQ(S1, S2);
  EXPECT_FALSE(StreamCellLattice::isTop(S1));
  EXPECT_EQ(prefixLenOf(S1), prefixLenOf(S2));
}

TEST_P(LatticeLawsP, AndLatticeSeededTripleSweep) {
  // Beyond the exhaustive pairwise pass above: seeded random TRIPLES so
  // associativity is hit on many (A, B, C) combinations per seed.
  SplitMix64 Rng(GetParam());
  const auto All = AndLattice::allStates();
  for (int I = 0; I < 32; ++I) {
    const auto &A = All[Rng.nextBounded(All.size())];
    const auto &B = All[Rng.nextBounded(All.size())];
    const auto &C = All[Rng.nextBounded(All.size())];
    EXPECT_EQ(AndLattice::join(A, AndLattice::join(B, C)),
              AndLattice::join(AndLattice::join(A, B), C));
    EXPECT_EQ(AndLattice::join(A, B), AndLattice::join(B, A));
    EXPECT_EQ(AndLattice::join(A, A), A);
  }
}

TEST_P(LatticeLawsP, MonotoneHashMapInsertOrderIndependence) {
  // The concurrent substrate under ISet/IMap, checked as a lattice: a
  // fixed SET of insertions must produce the same table regardless of
  // arrival order (join commutativity, operationally), first value wins
  // on duplicate keys only when values agree with the monotone discipline
  // (here: duplicates carry equal values, as LVar semantics require).
  SplitMix64 Rng(GetParam());
  std::vector<std::pair<int, int>> Inserts;
  for (int I = 0; I < 40; ++I) {
    int K = static_cast<int>(Rng.nextBounded(16));
    Inserts.push_back({K, K * 7 + 1}); // Value is a function of the key.
  }
  // Seeded Fisher-Yates for the second arrival order.
  std::vector<std::pair<int, int>> Shuffled = Inserts;
  for (size_t I = Shuffled.size(); I > 1; --I)
    std::swap(Shuffled[I - 1], Shuffled[Rng.nextBounded(I)]);

  MonotoneHashMap<int, int> M1, M2;
  for (const auto &[K, V] : Inserts)
    M1.insert(K, V);
  for (const auto &[K, V] : Shuffled)
    M2.insert(K, V);
  EXPECT_EQ(M1.snapshotSorted(), M2.snapshotSorted());
  EXPECT_EQ(M1.size(), M2.size());

  // Idempotence: re-inserting everything changes nothing.
  size_t Before = M1.size();
  for (const auto &[K, V] : Inserts) {
    auto [Ptr, Inserted] = M1.insert(K, V);
    EXPECT_FALSE(Inserted);
    EXPECT_EQ(*Ptr, V);
  }
  EXPECT_EQ(M1.size(), Before);
}

// -- Bump laws (Section 3) -------------------------------------------------
//
//   forall a, i:      a <= bump_i(a)
//   forall a, i, j:   bump_i(bump_j(a)) == bump_j(bump_i(a))

TEST_P(LatticeLawsP, CounterBumpFamilyCommutesAndInflates) {
  SplitMix64 Rng(GetParam());
  std::vector<uint64_t> Amounts{1, 2, 3, Rng.nextBounded(1000) + 1,
                                Rng.nextBounded(1000000) + 1};
  std::vector<uint64_t> States{0, 1, Rng.next() >> 20};
  auto Leq = [](uint64_t A, uint64_t B) { return A <= B; };
  for (uint64_t A : States)
    for (uint64_t I : Amounts) {
      EXPECT_TRUE(Leq(A, A + I)) << "bump not inflationary";
      for (uint64_t J : Amounts) {
        EXPECT_EQ((A + I) + J, (A + J) + I) << "bump family not commuting";
      }
    }
}

// The paper's cautionary example: put and bump do NOT commute, which is
// exactly why the library forbids mixing them on one LVar.
TEST_P(LatticeLawsP, PutAndBumpDoNotCommute) {
  // max(0, 4) then +1 gives 5; +1 then max(1, 4) gives 4 (Section 3).
  uint64_t PutFirst = MaxUint64Lattice::join(0, 4) + 1;
  uint64_t BumpFirst = MaxUint64Lattice::join(0 + 1, 4);
  EXPECT_NE(PutFirst, BumpFirst);
  (void)GetParam();
}

// -- Threshold-set incompatibility -------------------------------------

TEST_P(LatticeLawsP, RandomCompatibleTriggersAreRejectedByCheck) {
  // For MaxUint64, any two distinct thresholds are COMPATIBLE (their join
  // is just the max, never a designated top) - so a lattice without a top
  // cannot verify incompatibility and the check must be vacuous; whereas
  // AndLattice's designated top lets the check bite (verified in
  // AndLVTest). Here: derived leq is a partial order on random states.
  SplitMix64 Rng(GetParam());
  for (int I = 0; I < 8; ++I) {
    uint64_t A = Rng.next(), B = Rng.next();
    bool AB = latticeLeq<MaxUint64Lattice>(A, B);
    bool BA = latticeLeq<MaxUint64Lattice>(B, A);
    EXPECT_TRUE(AB || BA) << "max lattice is a total order";
    if (AB && BA)
      EXPECT_EQ(A, B) << "antisymmetry";
    EXPECT_TRUE(latticeLeq<MaxUint64Lattice>(A, A)) << "reflexivity";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeLawsP,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull,
                                           99991ull, 31337ull, 2026ull,
                                           777ull));

} // namespace
