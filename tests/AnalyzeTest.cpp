//===- AnalyzeTest.cpp - Golden tests for lvish-analyze -------------------===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the lvish-analyze passes against the on-disk fixture tree
/// (tests/fixtures/analyze/): one seeded-violation and one clean fixture
/// per pass, the multi-line shapes the retired per-line lint could not
/// see, the suppression-comment contract, and a baseline-file round trip.
///
/// Fixtures are scanned, never compiled, and each declares the path the
/// analyzer should believe it lives at (rule applicability is
/// path-scoped) in a first-line `lvish-analyze-fixture-path:` comment -
/// the real fixture path contains "tests/fixtures/", which the analyzer
/// deliberately exempts/skips.
///
//===----------------------------------------------------------------------===//

#include "tools/analyze/Analyzer.h"

#include "src/obs/Json.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

using namespace lvish::analyze;

std::string readFixture(const std::string &Name) {
  std::string Path = std::string(LVISH_ANALYZE_FIXTURE_DIR) + "/" + Name;
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "missing fixture " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// The path the fixture wants to be analyzed under (first-line comment).
std::string declaredPath(const std::string &Contents) {
  const std::string Tag = "lvish-analyze-fixture-path:";
  size_t At = Contents.find(Tag);
  EXPECT_NE(At, std::string::npos) << "fixture lacks a path declaration";
  size_t Begin = At + Tag.size();
  while (Begin < Contents.size() && Contents[Begin] == ' ')
    ++Begin;
  size_t End = Contents.find('\n', Begin);
  return Contents.substr(Begin, End - Begin);
}

std::vector<Finding> analyzeFixture(const std::string &Name,
                                    AnalyzerConfig Cfg = {}) {
  std::string Contents = readFixture(Name);
  return analyzeContents(declaredPath(Contents), Contents, Cfg);
}

int errorsOfRule(const std::vector<Finding> &Fs, const std::string &Rule) {
  int N = 0;
  for (const Finding &F : Fs)
    N += F.Sev == Finding::Error && F.Rule == Rule;
  return N;
}

int totalErrors(const std::vector<Finding> &Fs) {
  int N = 0;
  for (const Finding &F : Fs)
    N += F.Sev == Finding::Error;
  return N;
}

TEST(Analyze, EffectConsistencySeededViolations) {
  auto Fs = analyzeFixture("effect_violation.cpp");
  EXPECT_EQ(errorsOfRule(Fs, "effect-consistency"), 2);
  EXPECT_EQ(totalErrors(Fs), 2) << "no other rule should fire";
}

TEST(Analyze, EffectConsistencyCleanFixture) {
  auto Fs = analyzeFixture("effect_clean.cpp");
  EXPECT_EQ(totalErrors(Fs), 0);
}

TEST(Analyze, StreamEffectsSeededViolations) {
  // The streaming API flows through the shared EffectOps table: the
  // analyzer must charge stream put/advance as Put, get/waitSize as Get,
  // and freezeStream as Freeze against the declared level.
  auto Fs = analyzeFixture("stream_effects_violation.cpp");
  EXPECT_EQ(errorsOfRule(Fs, "effect-consistency"), 3);
  EXPECT_EQ(totalErrors(Fs), 3) << "no other rule should fire";
}

TEST(Analyze, StreamEffectsCleanFixture) {
  auto Fs = analyzeFixture("stream_effects_clean.cpp");
  EXPECT_EQ(totalErrors(Fs), 0);
}

TEST(Analyze, CtxEscapeSeededViolations) {
  auto Fs = analyzeFixture("ctx_escape_violation.cpp");
  EXPECT_EQ(errorsOfRule(Fs, "ctx-escape"), 2)
      << "handler capture + static-storage capture";
  EXPECT_EQ(totalErrors(Fs), 2);
}

TEST(Analyze, CtxEscapeCleanFixture) {
  auto Fs = analyzeFixture("ctx_escape_clean.cpp");
  EXPECT_EQ(totalErrors(Fs), 0);
}

TEST(Analyze, HandlerCycleSeededViolation) {
  auto Fs = analyzeFixture("handler_cycle_violation.cpp");
  EXPECT_EQ(errorsOfRule(Fs, "handler-cycle"), 1);
  EXPECT_EQ(totalErrors(Fs), 1);
}

TEST(Analyze, HandlerCycleCleanFixture) {
  auto Fs = analyzeFixture("handler_cycle_clean.cpp");
  EXPECT_EQ(totalErrors(Fs), 0);
}

TEST(Analyze, ParkUnderLockSeededViolation) {
  auto Fs = analyzeFixture("park_violation.cpp");
  EXPECT_EQ(errorsOfRule(Fs, "park-under-lock"), 1);
  EXPECT_EQ(totalErrors(Fs), 1);
}

TEST(Analyze, ParkUnderLockCleanFixture) {
  auto Fs = analyzeFixture("park_clean.cpp");
  EXPECT_EQ(totalErrors(Fs), 0);
}

TEST(Analyze, MultiLineShapesStillMatch) {
  auto Fs = analyzeFixture("multiline_violation.cpp");
  EXPECT_EQ(errorsOfRule(Fs, "raw-sync"), 1)
      << "std::mutex split across lines";
  EXPECT_EQ(errorsOfRule(Fs, "deprecated-threshold-read"), 1)
      << "deprecated call with ( on the next line";
  EXPECT_EQ(totalErrors(Fs), 2);
}

TEST(Analyze, DeprecatedBorrowedSchedulerSeededViolations) {
  auto Fs = analyzeFixture("borrowed_violation.cpp");
  EXPECT_EQ(errorsOfRule(Fs, "deprecated-borrowed-scheduler"), 8)
      << "field assignment x2, On() factory, and all five *On wrappers";
  EXPECT_EQ(totalErrors(Fs), 8);
}

TEST(Analyze, DeprecatedBorrowedSchedulerCleanFixture) {
  auto Fs = analyzeFixture("borrowed_clean.cpp");
  EXPECT_EQ(totalErrors(Fs), 0)
      << "Runtime::run/submit and the runParOnImpl funnel must not match";
}

TEST(Analyze, WallClockInCoreSeededViolations) {
  auto Fs = analyzeFixture("wallclock_violation.cpp");
  EXPECT_EQ(errorsOfRule(Fs, "wall-clock-in-core"), 3)
      << "steady/system/high_resolution ::now(), one split across lines";
  EXPECT_EQ(totalErrors(Fs), 3);
}

TEST(Analyze, WallClockInCoreCleanFixture) {
  auto Fs = analyzeFixture("wallclock_clean.cpp");
  EXPECT_EQ(totalErrors(Fs), 0)
      << "nowNanos(), step budgets, and clock TYPE mentions must not fire";
}

TEST(Analyze, SuppressionComments) {
  auto Fs = analyzeFixture("suppression.cpp");
  EXPECT_EQ(totalErrors(Fs), 0)
      << "every seeded violation carries its allow(<rule>) marker";
}

TEST(Analyze, FindingsCarryRuleFileAndLine) {
  auto Fs = analyzeFixture("park_violation.cpp");
  ASSERT_EQ(Fs.size(), 1u);
  EXPECT_EQ(Fs[0].Rule, "park-under-lock");
  EXPECT_EQ(Fs[0].File, "src/sched/park_violation.cpp");
  EXPECT_GT(Fs[0].Line, 0u);
  EXPECT_FALSE(Fs[0].Message.empty());
}

TEST(Analyze, BaselineRoundTrip) {
  auto Fs = analyzeFixture("effect_violation.cpp");
  ASSERT_EQ(totalErrors(Fs), 2);

  std::string Doc = baselineToJson(Fs);
  std::string Err;
  std::map<std::string, int> Baseline = loadBaseline(Doc, Err);
  EXPECT_TRUE(Err.empty()) << Err;

  // Applying the freshly-written baseline grandfathers every finding.
  int NewErrors = 0;
  for (const Finding &F : Fs) {
    auto It = Baseline.find(F.key());
    if (It != Baseline.end() && It->second > 0)
      --It->second;
    else if (F.Sev == Finding::Error)
      ++NewErrors;
  }
  EXPECT_EQ(NewErrors, 0);

  // A finding NOT in the baseline stays fatal.
  auto Other = analyzeFixture("park_violation.cpp");
  ASSERT_EQ(Other.size(), 1u);
  EXPECT_EQ(Baseline.count(Other[0].key()), 0u);

  // Corrupt documents are rejected with a diagnostic, not silently empty.
  loadBaseline("{\"schema\":\"bogus\"}", Err);
  EXPECT_FALSE(Err.empty());
}

TEST(Analyze, JsonDocumentShape) {
  auto Fs = analyzeFixture("multiline_violation.cpp");
  std::string Doc = findingsToJson(Fs, 0);
  lvish::obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(lvish::obs::JsonValue::parse(Doc, V, &Err)) << Err;
  const auto *Schema = V.find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->Str, "lvish-analyze-v1");
  const auto *List = V.find("findings");
  ASSERT_NE(List, nullptr);
  ASSERT_TRUE(List->isArray());
  ASSERT_EQ(List->Arr.size(), Fs.size());
  for (const auto &F : List->Arr) {
    EXPECT_NE(F.find("rule"), nullptr);
    EXPECT_NE(F.find("severity"), nullptr);
    EXPECT_NE(F.find("file"), nullptr);
    EXPECT_NE(F.find("line"), nullptr);
    EXPECT_NE(F.find("message"), nullptr);
    EXPECT_NE(F.find("key"), nullptr);
  }
}

TEST(Analyze, EngineSelfTest) { EXPECT_EQ(lvish::analyze::selfTest(), 0); }

} // namespace
