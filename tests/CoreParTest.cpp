//===- CoreParTest.cpp - Par/IVar/PureLVar core semantics ------------------===//
//
// Tests the core LVish machinery: runPar, fork, IVar put/get, PureLVar
// threshold reads, handlers, quiescence, and effect-level conversions.
//
//===----------------------------------------------------------------------===//

#include "src/core/LVish.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;

TEST(RunPar, ReturnsPureValue) {
  int R = runPar<D>([](ParCtx<D> Ctx) -> Par<int> { co_return 42; });
  EXPECT_EQ(R, 42);
}

TEST(RunPar, VoidBody) {
  std::atomic<int> Hit{0};
  runPar<D>([&](ParCtx<D> Ctx) -> Par<void> {
    Hit.fetch_add(1);
    co_return;
  });
  EXPECT_EQ(Hit.load(), 1);
}

TEST(RunPar, SequentialBindViaCoAwait) {
  auto Inner = [](ParCtx<D> Ctx, int X) -> Par<int> { co_return X * 2; };
  int R = runPar<D>([&](ParCtx<D> Ctx) -> Par<int> {
    int A = co_await Inner(Ctx, 10);
    int B = co_await Inner(Ctx, A);
    co_return B + 2;
  });
  EXPECT_EQ(R, 42);
}

TEST(IVar, PutThenGet) {
  int R = runPar<D>([](ParCtx<D> Ctx) -> Par<int> {
    auto IV = newIVar<int>(Ctx);
    put(Ctx, *IV, 7);
    int V = co_await get(Ctx, *IV);
    co_return V;
  });
  EXPECT_EQ(R, 7);
}

TEST(IVar, GetBlocksUntilForkedPut) {
  int R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        auto IV = newIVar<int>(Ctx);
        fork(Ctx, [IV](ParCtx<D> C) -> Par<void> {
          put(C, *IV, 99);
          co_return;
        });
        int V = co_await get(Ctx, *IV);
        co_return V;
      },
      SchedulerConfig{2});
  EXPECT_EQ(R, 99);
}

TEST(IVar, RepeatedEqualPutIsIdempotent) {
  int R = runPar<D>([](ParCtx<D> Ctx) -> Par<int> {
    auto IV = newIVar<int>(Ctx);
    put(Ctx, *IV, 5);
    put(Ctx, *IV, 5); // lub(full(5), full(5)) = full(5): allowed.
    co_return co_await get(Ctx, *IV);
  });
  EXPECT_EQ(R, 5);
}

TEST(IVar, ManyReadersOneWriter) {
  constexpr int NumReaders = 32;
  int Sum = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        auto IV = newIVar<int>(Ctx);
        auto Acc = newIVar<int>(Ctx); // Unused; keeps shape realistic.
        (void)Acc;
        std::vector<std::shared_ptr<IVar<int>>> Outs;
        for (int I = 0; I < NumReaders; ++I)
          Outs.push_back(newIVar<int>(Ctx));
        for (int I = 0; I < NumReaders; ++I)
          fork(Ctx, [IV, Out = Outs[I]](ParCtx<D> C) -> Par<void> {
            int V = co_await get(C, *IV);
            put(C, *Out, V);
          });
        put(Ctx, *IV, 3);
        int S = 0;
        for (int I = 0; I < NumReaders; ++I)
          S += co_await get(Ctx, *Outs[I]);
        co_return S;
      },
      SchedulerConfig{4});
  EXPECT_EQ(Sum, 3 * NumReaders);
}

TEST(Spawn, FutureRoundTrip) {
  int R = runPar<D>([](ParCtx<D> Ctx) -> Par<int> {
    auto F1 = spawn(Ctx, [](ParCtx<D> C) -> Par<int> { co_return 20; });
    auto F2 = spawn(Ctx, [](ParCtx<D> C) -> Par<int> { co_return 22; });
    int A = co_await get(Ctx, *F1);
    int B = co_await get(Ctx, *F2);
    co_return A + B;
  });
  EXPECT_EQ(R, 42);
}

TEST(Fork, DeepRecursiveForkTree) {
  // A fork tree computing a parallel sum via futures: exercises stealing,
  // symmetric transfer, and task retirement.
  struct Rec {
    static Par<long> sum(ParCtx<D> Ctx, long Lo, long Hi) {
      if (Hi - Lo <= 8) {
        long S = 0;
        for (long I = Lo; I < Hi; ++I)
          S += I;
        co_return S;
      }
      long Mid = Lo + (Hi - Lo) / 2;
      auto F = spawn(Ctx, [Lo, Mid](ParCtx<D> C) -> Par<long> {
        co_return co_await sum(C, Lo, Mid);
      });
      long Right = co_await sum(Ctx, Mid, Hi);
      long Left = co_await get(Ctx, *F);
      co_return Left + Right;
    }
  };
  long R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<long> { co_return co_await Rec::sum(Ctx, 0, 1000); },
      SchedulerConfig{4});
  EXPECT_EQ(R, 999L * 1000 / 2);
}

// -- PureLVar ---------------------------------------------------------------

TEST(PureLVar, MaxLatticeThreshold) {
  size_t Which = runPar<D>([](ParCtx<D> Ctx) -> Par<size_t> {
    auto LV = newPureLVar<MaxUint64Lattice>(Ctx);
    fork(Ctx, [LV](ParCtx<D> C) -> Par<void> {
      putPureLVar(C, *LV, 3ULL);
      putPureLVar(C, *LV, 10ULL);
      co_return;
    });
    // Unblocks once the state reaches 10; trigger index 0.
    // (Named variable: GCC 12 mis-handles braced init inside co_await.)
    ThresholdSets<unsigned long long> Th{{10ULL}};
    size_t Idx = co_await get(Ctx, *LV, Th);
    co_return Idx;
  });
  EXPECT_EQ(Which, 0u);
}

TEST(PureLVar, PutIsLubNotLastWriterWins) {
  auto LV = runParThenFreeze<D>([](ParCtx<D> Ctx) -> Par<
                                    std::shared_ptr<PureLVar<MaxUint64Lattice>>> {
    auto V = newPureLVar<MaxUint64Lattice>(Ctx);
    for (int I = 0; I < 8; ++I)
      fork(Ctx, [V, I](ParCtx<D> C) -> Par<void> {
        putPureLVar(C, *V, static_cast<unsigned long long>(I));
        co_return;
      });
    co_return V;
  });
  EXPECT_TRUE(LV->isFrozen());
  EXPECT_EQ(LV->peek(), 7ULL); // max over all writes, order-independent.
}

TEST(PureLVar, HandlerSeesEveryChangeAtLeastTheFinalState) {
  std::atomic<unsigned long long> MaxSeen{0};
  runParIO<Eff::FullIO>([&](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
    auto LV = newPureLVar<MaxUint64Lattice>(Ctx);
    auto Pool = newPool(Ctx);
    [[maybe_unused]] HandlerHandle H =
        addHandler(Ctx, Pool, *LV,
                   [&MaxSeen](ParCtx<Eff::FullIO> C,
                              const unsigned long long &S) -> Par<void> {
                     unsigned long long Cur = MaxSeen.load();
                     while (Cur < S && !MaxSeen.compare_exchange_weak(Cur, S)) {
                     }
                     co_return;
                   });
    putPureLVar(Ctx, *LV, 5ULL);
    putPureLVar(Ctx, *LV, 9ULL);
    co_await quiesce(Ctx, Pool);
    co_return;
  });
  EXPECT_EQ(MaxSeen.load(), 9ULL);
}

TEST(Quiesce, DrainsTransitiveHandlerCascade) {
  // Handler on LVar A writes to LVar B; quiescing the pool must cover the
  // cascaded work.
  unsigned long long FinalB = runParIO<Eff::FullIO>(
      [](ParCtx<Eff::FullIO> Ctx) -> Par<unsigned long long> {
        auto A = newPureLVar<MaxUint64Lattice>(Ctx);
        auto B = newPureLVar<MaxUint64Lattice>(Ctx);
        auto Pool = newPool(Ctx);
        [[maybe_unused]] HandlerHandle H =
            addHandler(Ctx, Pool, *A,
                       [B](ParCtx<Eff::FullIO> C,
                           const unsigned long long &S) -> Par<void> {
                         putPureLVar(C, *B, S * 2);
                         co_return;
                       });
        putPureLVar(Ctx, *A, 21ULL);
        co_await quiesce(Ctx, Pool);
        co_return B->peek();
      });
  EXPECT_EQ(FinalB, 42ULL);
}

// -- Effect levels ------------------------------------------------------

TEST(Effects, SubsumptionIsImplicit) {
  // A Det context can be passed where ReadOnly is expected.
  auto ReadOnlyFn = [](ParCtx<Eff::ReadOnly> C) -> Par<int> { co_return 1; };
  int R = runPar<D>([&](ParCtx<D> Ctx) -> Par<int> {
    co_return co_await ReadOnlyFn(Ctx);
  });
  EXPECT_EQ(R, 1);
}

TEST(Effects, SetAlgebra) {
  static_assert(Eff::Det.subsumes(Eff::ReadOnly));
  static_assert(!Eff::ReadOnly.subsumes(Eff::Det));
  static_assert(Eff::FullIO.subsumes(Eff::DetBump));
  static_assert((Eff::ReadOnly | Eff::WriteOnly) == Eff::Det);
  static_assert(noFreeze(Eff::Det) && noIO(Eff::Det));
  static_assert(readOnly(Eff::ReadOnly));
  static_assert(!readOnly(Eff::Det));
  SUCCEED();
}

TEST(Yield, CooperativeYieldRoundTrip) {
  int R = runPar<D>([](ParCtx<D> Ctx) -> Par<int> {
    co_await yield(Ctx);
    co_await yield(Ctx);
    co_return 5;
  });
  EXPECT_EQ(R, 5);
}

TEST(RunPar, ManySessionsOnOneScheduler) {
  service::Runtime RT({.Sched = {.NumWorkers = 2}});
  for (int I = 0; I < 20; ++I) {
    int R = RT.run<D>([I](ParCtx<D> Ctx) -> Par<int> {
      auto IV = newIVar<int>(Ctx);
      fork(Ctx, [IV, I](ParCtx<D> C) -> Par<void> {
        put(C, *IV, I);
        co_return;
      });
      co_return co_await get(Ctx, *IV);
    }).valueOrAbort();
    EXPECT_EQ(R, I);
  }
}

// Determinism sweep: the same program must produce the same value under
// many worker counts and steal seeds.
TEST(Determinism, SameResultAcrossSchedules) {
  auto Program = [](ParCtx<D> Ctx) -> Par<unsigned long long> {
    auto LV = newPureLVar<MaxUint64Lattice>(Ctx);
    for (int I = 0; I < 16; ++I)
      fork(Ctx, [LV, I](ParCtx<D> C) -> Par<void> {
        putPureLVar(C, *LV, static_cast<unsigned long long>((I * 7) % 13));
        co_return;
      });
    ThresholdSets<unsigned long long> Th{{12ULL}};
    co_return co_await get(Ctx, *LV, Th) + 12;
  };
  unsigned long long First = 0;
  bool Have = false;
  for (unsigned Workers : {1u, 2u, 3u, 4u}) {
    for (uint64_t Seed : {1ull, 99ull, 12345ull}) {
      SchedulerConfig Cfg;
      Cfg.NumWorkers = Workers;
      Cfg.StealSeed = Seed;
      unsigned long long R = runPar<D>(Program, Cfg);
      if (!Have) {
        First = R;
        Have = true;
      }
      EXPECT_EQ(R, First) << "workers=" << Workers << " seed=" << Seed;
    }
  }
}

} // namespace
