//===- PbbsExploreTest.cpp - Explored schedules over the PBBS suite --------===//
//
// The PBBS ports under the schedule explorer (src/explore/): seeded
// random AND PCT-priority virtual schedules per problem, on tiny inputs,
// each run compared against the 1-worker reference. A mismatch prints the
// engine's lvx1: replay string - paste it into decodeReplay +
// sessionOptions to re-run the exact offending interleaving.
//
// One "interesting" schedule per problem is pinned into a committed
// corpus (the ExploreRegressionTest pattern, inverted: these programs are
// DETERMINISTIC, so the pins assert the result still matches the
// reference under the pinned schedule and that the replay reproduces
// bit-for-bit - same pedigree hash - on every rep). Regenerate after
// scheduler changes with:
//
//   LVISH_EXPLORE_REGEN=1 ./PbbsExploreTest --gtest_filter='*Regen*'
//
//===----------------------------------------------------------------------===//

#include "src/explore/Explorer.h"
#include "src/pbbs/Pbbs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace lvish;
using namespace lvish::pbbs;

namespace {

// -- Tiny fixed inputs -----------------------------------------------------
// Small enough that a virtual schedule stays short (and a pinned replay
// string stays reviewable), large enough to have real parallel structure:
// several BFS rounds, multiple components, hot histogram buckets.

const Graph &tinyUniform() {
  static const Graph G = makeUniformGraph(10, 3, 7);
  return G;
}

const Graph &tinyPowerLaw() {
  static const Graph G = makePowerLawGraph(12, 2, 5);
  return G;
}

const std::vector<uint64_t> &tinyKeys() {
  static const std::vector<uint64_t> K = makeSkewedKeys(48, 32, 3);
  return K;
}

// -- The programs, RunOptions -> observable result -------------------------

std::vector<uint32_t> runBfsLevels(const RunOptions &O) {
  return bfsLevels(tinyUniform(), 0, O);
}

std::vector<uint32_t> runBfsReach(const RunOptions &O) {
  return bfsReach(tinyPowerLaw(), 0, O);
}

std::vector<uint32_t> runComponents(const RunOptions &O) {
  return componentsLVar(tinyPowerLaw(), O);
}

std::vector<uint64_t> runHistogram(const RunOptions &O) {
  return histogramLVar(tinyKeys(), 8, O);
}

std::vector<uint64_t> runDedup(const RunOptions &O) {
  return removeDuplicatesLVar(tinyKeys(), O);
}

std::vector<uint64_t> runForest(const RunOptions &O) {
  return spanningForestLVar(toEdgeList(tinyUniform()), O);
}

template <typename F> auto reference(F Program) {
  RunOptions Opts;
  Opts.Config.NumWorkers = 1;
  return Program(Opts);
}

// -- Seeded sweeps: random and PCT engines ---------------------------------

constexpr uint64_t SweepSeeds[] = {1, 7, 42, 99, 31337, 2014, 777};

template <typename F> void exploreSweep(const char *Name, F Program) {
  const auto Ref = reference(Program);
  for (unsigned Workers : {2u, 3u}) {
    for (uint64_t Seed : SweepSeeds) {
      {
        explore::Engine Eng = explore::Engine::random(Seed, Workers);
        auto Got = Program(explore::sessionOptions(Eng));
        EXPECT_EQ(Got, Ref)
            << Name << ": random seed=" << Seed << " workers=" << Workers
            << "\n  replay: " << Eng.replayString();
      }
      {
        explore::Engine Eng = explore::Engine::pct(Seed, Workers, 3);
        auto Got = Program(explore::sessionOptions(Eng));
        EXPECT_EQ(Got, Ref)
            << Name << ": pct seed=" << Seed << " workers=" << Workers
            << "\n  replay: " << Eng.replayString();
      }
    }
  }
}

TEST(PbbsExplored, BfsLevels) { exploreSweep("bfs-levels", runBfsLevels); }
TEST(PbbsExplored, BfsReach) { exploreSweep("bfs-reach", runBfsReach); }
TEST(PbbsExplored, Components) { exploreSweep("components", runComponents); }
TEST(PbbsExplored, Histogram) { exploreSweep("histogram", runHistogram); }
TEST(PbbsExplored, RemoveDuplicates) { exploreSweep("dedup", runDedup); }
TEST(PbbsExplored, SpanningForest) { exploreSweep("forest", runForest); }

// -- The pinned corpus -----------------------------------------------------
// One schedule per problem, chosen by a PCT engine (priority preemptions
// - the adversarial shape), committed as a replay string. Each pin must
// (a) still produce the reference answer and (b) reproduce the committed
// pedigree hash bit-for-bit on every rep.

using CheckFn = bool (*)(const RunOptions &);

template <typename F> bool runMatchesReference(F Program, const RunOptions &O) {
  return Program(O) == reference(Program);
}

bool checkBfsLevels(const RunOptions &O) {
  return runMatchesReference(runBfsLevels, O);
}
bool checkBfsReach(const RunOptions &O) {
  return runMatchesReference(runBfsReach, O);
}
bool checkComponents(const RunOptions &O) {
  return runMatchesReference(runComponents, O);
}
bool checkHistogram(const RunOptions &O) {
  return runMatchesReference(runHistogram, O);
}
bool checkDedup(const RunOptions &O) {
  return runMatchesReference(runDedup, O);
}
bool checkForest(const RunOptions &O) {
  return runMatchesReference(runForest, O);
}

struct PinEntry {
  const char *Name;
  CheckFn Check;
  /// Committed replay string (regenerate with LVISH_EXPLORE_REGEN=1).
  const char *Replay;
};

const PinEntry Corpus[] = {
    {"bfs-levels", checkBfsLevels,
     "lvx1:w2:h35a65ec46fd881c2:0.0.0.0.0.0.0.0.0.0.0"},
    {"bfs-reach", checkBfsReach,
     "lvx1:w2:h0c2b4e3c7506505d:0.0.0.0.0.0.0.0.0.0.0"},
    {"components", checkComponents,
     "lvx1:w2:hfc2b7a67945466e9:0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.1.1.1.1.1.1.1."
     "1.1.1"},
    {"histogram", checkHistogram,
     "lvx1:w2:h566163ad14b8f924:0.0.0.0.0.0.0.0.0.0.0.0.0.0.0"},
    {"dedup", checkDedup,
     "lvx1:w2:h566163ad14b8f924:0.0.0.0.0.0.0.0.0.0.0.0.0.0.0"},
    {"forest", checkForest,
     "lvx1:w2:h5b7b6b42ac782acb:0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.1.1.1.1.1.1.1."
     "1.1.1.1.1.1.1"},
};

TEST(PbbsExplored, PinnedSchedulesReproduce) {
  for (const PinEntry &E : Corpus) {
    SCOPED_TRACE(E.Name);
    auto Spec = explore::decodeReplay(E.Replay);
    ASSERT_TRUE(Spec.has_value()) << "corpus string does not decode";
    for (int Rep = 0; Rep < 3; ++Rep) {
      explore::Engine Eng = explore::Engine::replay(*Spec);
      EXPECT_TRUE(E.Check(explore::sessionOptions(Eng)))
          << "rep " << Rep << ": pinned schedule diverged from reference";
      EXPECT_EQ(Eng.pedigreeHash(), Spec->PedHash)
          << "rep " << Rep << ": schedule hash diverged from the corpus";
    }
  }
}

TEST(PbbsExplored, RegenerateCorpus) {
  if (!std::getenv("LVISH_EXPLORE_REGEN"))
    GTEST_SKIP() << "set LVISH_EXPLORE_REGEN=1 to regenerate the corpus";
  for (const PinEntry &E : Corpus) {
    // A PCT schedule with preemption change-points: the "interesting"
    // interleaving shape. The check must pass under it (these programs
    // are deterministic) - regen fails loudly if it does not.
    explore::Engine Eng = explore::Engine::pct(0x6c76697368ULL, 2, 3);
    if (!E.Check(explore::sessionOptions(Eng))) {
      ADD_FAILURE() << E.Name << ": diverged under the regen schedule";
      continue;
    }
    std::printf("    {\"%s\", check..., \"%s\"},\n", E.Name,
                Eng.replayString().c_str());
  }
  std::fflush(stdout);
}

} // namespace
