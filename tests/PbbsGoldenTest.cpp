//===- PbbsGoldenTest.cpp - PBBS suite vs sequential references ------------===//
//
// The acceptance gate of the PBBS port (DESIGN.md Section 17): every
// LVar-parallel problem must equal its single-threaded sequential
// reference EXACTLY, over a matrix of input seeds x input sizes x worker
// counts (1/2/4/8) x steal seeds, on both graph distributions and both
// key-stream shapes. Inputs come from the shared seeded generators
// (src/pbbs/Input.h) - the same functions the benches call - so a failure
// here names an input any machine can regenerate bit-for-bit.
//
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

using namespace lvish;
using namespace lvish::pbbs;

namespace {

// -- The schedule matrix ---------------------------------------------------

struct SchedParam {
  unsigned Workers;
  uint64_t StealSeed;
};

RunOptions schedOptions(const SchedParam &P) {
  RunOptions Opts;
  Opts.Config.NumWorkers = P.Workers;
  Opts.Config.StealSeed = P.StealSeed;
  return Opts;
}

// Worker counts 1/2/4/8; two steal seeds at each multi-worker width so the
// same thread count still samples different victim orders.
const SchedParam Schedules[] = {
    {1, 1},  {2, 7},    {2, 31337}, {4, 13},
    {4, 99}, {8, 2014}, {8, 777},
};

// -- Input matrix ----------------------------------------------------------

constexpr uint64_t InputSeeds[] = {1, 42, 99991};

struct GraphShape {
  const char *Name;
  uint32_t N;
  uint32_t AvgDegree;
};

constexpr GraphShape GraphShapes[] = {
    {"tiny", 24, 3},
    {"sparse", 160, 2},
    {"dense", 96, 12},
};

Graph makeGraph(bool PowerLaw, const GraphShape &S, uint64_t Seed) {
  return PowerLaw ? makePowerLawGraph(S.N, S.AvgDegree, Seed)
                  : makeUniformGraph(S.N, S.AvgDegree, Seed);
}

// Every (distribution, shape, seed) graph instance, built once per test.
template <typename Fn> void forEachGraph(Fn Body) {
  for (bool PowerLaw : {false, true})
    for (const GraphShape &S : GraphShapes)
      for (uint64_t Seed : InputSeeds) {
        SCOPED_TRACE(::testing::Message()
                     << (PowerLaw ? "powerlaw" : "uniform") << "/" << S.Name
                     << "/seed=" << Seed);
        Body(makeGraph(PowerLaw, S, Seed));
      }
}

// -- Generator sanity ------------------------------------------------------

TEST(PbbsInput, GeneratorsAreSeedDeterministic) {
  forEachGraph([](const Graph &G) {
    (void)G; // forEachGraph itself re-derives each instance fresh.
  });
  for (uint64_t Seed : InputSeeds) {
    Graph A = makeUniformGraph(200, 4, Seed);
    Graph B = makeUniformGraph(200, 4, Seed);
    EXPECT_EQ(A.Offsets, B.Offsets);
    EXPECT_EQ(A.Adjacency, B.Adjacency);
    Graph P = makePowerLawGraph(200, 4, Seed);
    Graph Q = makePowerLawGraph(200, 4, Seed);
    EXPECT_EQ(P.Offsets, Q.Offsets);
    EXPECT_EQ(P.Adjacency, Q.Adjacency);
    EXPECT_EQ(makeSkewedKeys(500, 64, Seed), makeSkewedKeys(500, 64, Seed));
    EXPECT_EQ(makeUniformKeys(500, 64, Seed), makeUniformKeys(500, 64, Seed));
  }
  // Different seeds actually produce different inputs.
  EXPECT_NE(makeUniformGraph(200, 4, 1).Adjacency,
            makeUniformGraph(200, 4, 2).Adjacency);
  EXPECT_NE(makeSkewedKeys(500, 64, 1), makeSkewedKeys(500, 64, 2));
}

TEST(PbbsInput, CsrIsSymmetricAndEdgeListCoversIt) {
  forEachGraph([](const Graph &G) {
    // Every directed arc has its reverse (the CSR is symmetrized).
    std::vector<std::pair<uint32_t, uint32_t>> Arcs;
    for (uint32_t V = 0; V < G.NumVertices; ++V)
      for (const uint32_t *W = G.neighborsBegin(V); W != G.neighborsEnd(V);
           ++W) {
        EXPECT_NE(V, *W) << "self-loop survived generation";
        Arcs.push_back({V, *W});
      }
    auto Sorted = Arcs;
    std::sort(Sorted.begin(), Sorted.end());
    for (const auto &[U, V] : Arcs)
      EXPECT_TRUE(std::binary_search(Sorted.begin(), Sorted.end(),
                                     std::make_pair(V, U)))
          << "missing reverse arc " << V << "->" << U;
    // The edge list is exactly the U < V half of the arcs.
    EdgeList EL = toEdgeList(G);
    EXPECT_EQ(2 * EL.Edges.size(), Arcs.size());
    for (const auto &[U, V] : EL.Edges)
      EXPECT_LT(U, V);
  });
}

TEST(PbbsInput, SkewedKeysAreActuallySkewed) {
  // The cubed-uniform transform concentrates mass near zero: the bottom
  // eighth of the universe must hold well over its uniform share.
  auto Keys = makeSkewedKeys(4000, 4096, 42);
  size_t Low = 0;
  for (uint64_t K : Keys) {
    EXPECT_LT(K, 4096u);
    Low += K < 512 ? 1 : 0;
  }
  EXPECT_GT(Low, Keys.size() / 3) << "skew transform lost its head";
}

// -- Golden matrices, one per problem --------------------------------------

TEST(PbbsGolden, BfsLevelsMatchesSequential) {
  forEachGraph([](const Graph &G) {
    auto Ref = bfsSeq(G, 0);
    for (const SchedParam &P : Schedules) {
      SCOPED_TRACE(::testing::Message() << "workers=" << P.Workers
                                        << " steal=" << P.StealSeed);
      EXPECT_EQ(bfsLevels(G, 0, schedOptions(P)), Ref);
    }
  });
}

TEST(PbbsGolden, BfsReachMatchesSequential) {
  forEachGraph([](const Graph &G) {
    auto Ref = bfsReachSeq(G, 0);
    for (const SchedParam &P : Schedules) {
      SCOPED_TRACE(::testing::Message() << "workers=" << P.Workers
                                        << " steal=" << P.StealSeed);
      EXPECT_EQ(bfsReach(G, 0, schedOptions(P)), Ref);
    }
  });
}

TEST(PbbsGolden, ConnectedComponentsMatchesSequential) {
  forEachGraph([](const Graph &G) {
    auto Ref = componentsSeq(G);
    for (const SchedParam &P : Schedules) {
      SCOPED_TRACE(::testing::Message() << "workers=" << P.Workers
                                        << " steal=" << P.StealSeed);
      EXPECT_EQ(componentsLVar(G, schedOptions(P)), Ref);
    }
  });
}

TEST(PbbsGolden, SpanningForestMatchesSequential) {
  forEachGraph([](const Graph &G) {
    EdgeList EL = toEdgeList(G);
    auto Ref = spanningForestSeq(EL);
    for (const SchedParam &P : Schedules) {
      SCOPED_TRACE(::testing::Message() << "workers=" << P.Workers
                                        << " steal=" << P.StealSeed);
      EXPECT_EQ(spanningForestLVar(EL, schedOptions(P)), Ref);
    }
  });
}

TEST(PbbsGolden, HistogramMatchesSequential) {
  for (bool Skewed : {false, true})
    for (uint64_t Seed : InputSeeds)
      for (size_t N : {100u, 3000u}) {
        auto Keys = Skewed ? makeSkewedKeys(N, 1 << 20, Seed)
                           : makeUniformKeys(N, 1 << 20, Seed);
        SCOPED_TRACE(::testing::Message()
                     << (Skewed ? "skewed" : "uniform") << "/seed=" << Seed
                     << "/n=" << N);
        constexpr uint64_t Buckets = 64;
        auto Ref = histogramSeq(Keys, Buckets);
        for (const SchedParam &P : Schedules) {
          SCOPED_TRACE(::testing::Message() << "workers=" << P.Workers
                                            << " steal=" << P.StealSeed);
          EXPECT_EQ(histogramLVar(Keys, Buckets, schedOptions(P)), Ref);
        }
      }
}

TEST(PbbsGolden, RemoveDuplicatesMatchesSequential) {
  for (bool Skewed : {false, true})
    for (uint64_t Seed : InputSeeds)
      for (size_t N : {100u, 3000u}) {
        auto Keys = Skewed ? makeSkewedKeys(N, 512, Seed)
                           : makeUniformKeys(N, 512, Seed);
        SCOPED_TRACE(::testing::Message()
                     << (Skewed ? "skewed" : "uniform") << "/seed=" << Seed
                     << "/n=" << N);
        auto Ref = removeDuplicatesSeq(Keys);
        for (const SchedParam &P : Schedules) {
          SCOPED_TRACE(::testing::Message() << "workers=" << P.Workers
                                            << " steal=" << P.StealSeed);
          EXPECT_EQ(removeDuplicatesLVar(Keys, schedOptions(P)), Ref);
        }
      }
}

// -- Cross-problem invariants ----------------------------------------------

TEST(PbbsGolden, ComponentsAgreeWithReachability) {
  // Two independent ports must tell one story: v is reachable from 0
  // exactly when it shares 0's component label.
  forEachGraph([](const Graph &G) {
    auto Reach = bfsReach(G, 0);
    auto Labels = componentsLVar(G);
    std::vector<uint32_t> SameComp;
    for (uint32_t V = 0; V < G.NumVertices; ++V)
      if (Labels[V] == Labels[0])
        SameComp.push_back(V);
    EXPECT_EQ(Reach, SameComp);
  });
}

TEST(PbbsGolden, ForestSizeMatchesComponentCount) {
  // |forest| == N - #components, the defining identity of a spanning
  // forest - checked against the *other* problem's independent answer.
  forEachGraph([](const Graph &G) {
    EdgeList EL = toEdgeList(G);
    auto Forest = spanningForestLVar(EL);
    auto Labels = componentsSeq(G);
    std::vector<uint32_t> Roots = Labels;
    std::sort(Roots.begin(), Roots.end());
    Roots.erase(std::unique(Roots.begin(), Roots.end()), Roots.end());
    EXPECT_EQ(Forest.size(), G.NumVertices - Roots.size());
  });
}

} // namespace
