//===- DeterminismStressTest.cpp - Schedule-independence sweeps ------------===//
//
// The headline property of the whole system, hammered two ways: complete
// programs mixing the effect zoo (handlers + quiescence, bump counters,
// memo tables, bulk retry, deterministic RNG) must produce bit-identical
// observable results
//
//  * across real threaded schedulers (worker counts x steal seeds), and
//  * across explorer-controlled virtual schedules (seeded adversarial
//    interleavings, src/explore/) - when a sweep fails here it prints the
//    replay string that reproduces the offending schedule bit-for-bit.
//
//===----------------------------------------------------------------------===//

#include "src/core/LVish.h"
#include "src/core/ParFor.h"
#include "src/data/Counter.h"
#include "src/data/IMap.h"
#include "src/data/ISet.h"
#include "src/explore/Explorer.h"
#include "src/trans/Transformers.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;
constexpr EffectSet DB{true, true, true, false, false, false};

// -- The programs, parameterized by RunOptions so one definition runs on
// -- real threaded schedulers AND under the explorer's virtual one.

std::vector<int> runHandlerClosure(const RunOptions &Opts) {
  auto Set = runParThenFreeze<D>(
      [](ParCtx<D> Ctx) -> Par<std::shared_ptr<ISet<int>>> {
        auto S = newISet<int>(Ctx);
        auto Pool = newPool(Ctx);
        ISet<int> *Raw = S.get();
        [[maybe_unused]] HandlerHandle H =
            addHandler(Ctx, Pool, *S,
                       [Raw](ParCtx<D> C, const int &V) -> Par<void> {
                         // Collatz-flavored closure, bounded to [0, 3000).
                         if (V % 2 == 0)
                           insert(C, *Raw, V / 2);
                     else if (3 * V + 1 < 3000)
                       insert(C, *Raw, 3 * V + 1);
                     co_return;
                   });
        for (int Seed : {27, 97, 871})
          insert(Ctx, *S, Seed);
        co_await quiesce(Ctx, Pool);
        co_return S;
      },
      Opts);
  return Set->toSortedVector();
}

std::vector<uint64_t> runCounterGrid(const RunOptions &Opts) {
  return runParIO<DB>(
      [](ParCtx<DB> Ctx) -> Par<std::vector<uint64_t>> {
        auto CV = newCounterVec(Ctx, 32);
        auto Body = [CV](ParCtx<DB> C, size_t I) -> Par<void> {
          incrCounterAt(C, *CV, (I * I) % 32, (I % 3) + 1);
          co_return;
        };
        co_await parallelForPar(Ctx, 0, 4096, 64, Body);
        CV->markFrozen();
        co_return CV->snapshot();
      },
      Opts);
}

uint64_t runMemoFib(const RunOptions &Opts) {
  return runParIO<Eff::FullIO>(
      [](ParCtx<Eff::FullIO> Ctx) -> Par<uint64_t> {
        // Memoized fib: recursive requests go through the memo table
        // itself. The recursive capture must be NON-owning (raw pointer
        // to the box) or the table would own its own handler - the
        // shared_ptr-cycle note in HandlerPool.h.
        auto Box = std::make_shared<
            std::shared_ptr<Memo<int, uint64_t, Eff::Det>>>();
        auto *BoxRaw = Box.get();
        *Box = makeMemo<int, Eff::Det>(
            Ctx, [BoxRaw](ParCtx<Eff::Det> C, int K) -> Par<uint64_t> {
              if (K < 2)
                co_return static_cast<uint64_t>(K);
              uint64_t A = co_await getMemo(C, *BoxRaw, K - 1);
              uint64_t B = co_await getMemo(C, *BoxRaw, K - 2);
              co_return A + B;
            });
        uint64_t R = co_await getMemo(Ctx, *Box, 30);
        co_return R;
      },
      Opts);
}

std::vector<int> runWavefront(const RunOptions &Opts) {
  return runPar<D>(
      [](ParCtx<D> Ctx) -> Par<std::vector<int>> {
        // A 2D wavefront: cell i commits once both neighbors (i-1, i-8)
        // have published; values accumulate deterministically.
        constexpr size_t N = 64;
        auto Done = newEmptyMap<size_t, int>(Ctx);
        auto Body = [Done](ParCtx<D> C, size_t I) -> Par<Spec> {
          int Left = 0, Up = 0;
          if (I % 8 != 0) {
            const int *P = Done->lookupNow(I - 1);
            if (!P)
              co_return Spec::Retry;
            Left = *P;
          }
          if (I >= 8) {
            const int *P = Done->lookupNow(I - 8);
            if (!P)
              co_return Spec::Retry;
            Up = *P;
          }
          insert(C, *Done, I, Left + Up + 1);
          co_return Spec::Done;
        };
        co_await forSpeculative(Ctx, 0, N, Body, 8);
        std::vector<int> Out;
        for (size_t I = 0; I < N; ++I)
          Out.push_back(*Done->lookupNow(I));
        co_return Out;
      },
      Opts);
}

uint64_t runRngMixed(const RunOptions &Opts) {
  return runPar<D>(
      [](ParCtx<D> Ctx) -> Par<uint64_t> {
        co_return co_await withRng(
            Ctx, 2014, [](ParCtx<D> C) -> Par<uint64_t> {
              // Fork a tree; each leaf contributes rand() xor'd into a
              // max-lattice LVar (order-independent combine).
              auto Acc = newPureLVar<MaxUint64Lattice>(C);
              auto Leaf = [Acc](ParCtx<D> C2, size_t) -> Par<void> {
                putPureLVar(C2, *Acc, rand(C2) >> 16);
                co_return;
              };
              co_await parallelForPar(C, 0, 64, 1, Leaf);
              co_return Acc->peek();
            });
      },
      Opts);
}

// Reference results computed once with a 1-worker scheduler.
template <typename F> auto reference(F Fn) {
  RunOptions Opts;
  Opts.Config.NumWorkers = 1;
  return Fn(Opts);
}

// -- Threaded sweep: worker counts x steal seeds ---------------------------

struct SchedParam {
  unsigned Workers;
  uint64_t Seed;
};

class DeterminismSweep : public ::testing::TestWithParam<SchedParam> {
protected:
  RunOptions config() const {
    RunOptions Opts;
    Opts.Config.NumWorkers = GetParam().Workers;
    Opts.Config.StealSeed = GetParam().Seed;
    return Opts;
  }
};

TEST_P(DeterminismSweep, HandlerClosureFixpoint) {
  EXPECT_EQ(runHandlerClosure(config()), reference(runHandlerClosure));
}

TEST_P(DeterminismSweep, CounterGridMatchesExactSum) {
  auto Result = runCounterGrid(config());
  EXPECT_EQ(Result, reference(runCounterGrid));
  // Exactness: total equals the closed-form sum of all bump amounts.
  uint64_t Total = std::accumulate(Result.begin(), Result.end(),
                                   uint64_t(0));
  uint64_t Expected = 0;
  for (size_t I = 0; I < 4096; ++I)
    Expected += (I % 3) + 1;
  EXPECT_EQ(Total, Expected);
}

TEST_P(DeterminismSweep, MemoizedFibonacci) {
  EXPECT_EQ(runMemoFib(config()), 832040u);
}

TEST_P(DeterminismSweep, BulkRetryWavefront) {
  auto R = runWavefront(config());
  EXPECT_EQ(R, reference(runWavefront));
  EXPECT_EQ(R[0], 1);
  EXPECT_EQ(R[9], R[8] + R[1] + 1);
}

TEST_P(DeterminismSweep, RngUnderMixedEffects) {
  EXPECT_EQ(runRngMixed(config()), reference(runRngMixed));
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, DeterminismSweep,
    ::testing::Values(SchedParam{1, 1}, SchedParam{2, 7}, SchedParam{2, 99},
                      SchedParam{3, 5}, SchedParam{4, 13},
                      SchedParam{4, 31337}, SchedParam{8, 2014}));

// -- Explored sweep: seeded adversarial virtual schedules ------------------
//
// Where the threaded sweep samples whatever interleavings the OS happens
// to produce, these runs force explorer-chosen ones - including
// pathological wake orders and steal patterns a real machine rarely hits.
// A mismatch prints the replay string; paste it into
// explore::decodeReplay + replaySession to re-run that exact schedule.

template <typename F>
void exploreSweep(const char *Name, F Program,
                  std::initializer_list<uint64_t> Seeds) {
  const auto Ref = reference(Program);
  for (unsigned Workers : {2u, 3u}) {
    for (uint64_t Seed : Seeds) {
      explore::Engine Eng = explore::Engine::random(Seed, Workers);
      auto Got = Program(explore::sessionOptions(Eng));
      EXPECT_EQ(Got, Ref) << Name << ": seed=" << Seed
                          << " workers=" << Workers
                          << "\n  replay: " << Eng.replayString();
    }
  }
}

constexpr std::initializer_list<uint64_t> SeedList{1, 7, 42, 99, 31337,
                                                   2014, 777, 123456789};

TEST(DeterminismExplored, HandlerClosureFixpoint) {
  exploreSweep("handler-closure", runHandlerClosure, SeedList);
}

TEST(DeterminismExplored, CounterGrid) {
  // Fewer seeds: 4096 grid bumps make each virtual schedule long.
  exploreSweep("counter-grid", runCounterGrid, {1, 42, 31337});
}

TEST(DeterminismExplored, MemoizedFibonacci) {
  exploreSweep("memo-fib", runMemoFib, {1, 7, 42, 99});
}

TEST(DeterminismExplored, BulkRetryWavefront) {
  exploreSweep("wavefront", runWavefront, {1, 7, 42, 99, 31337});
}

TEST(DeterminismExplored, RngUnderMixedEffects) {
  exploreSweep("rng-mixed", runRngMixed, SeedList);
}

} // namespace
