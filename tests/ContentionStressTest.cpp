//===- ContentionStressTest.cpp - Sharded waiter-table stress ---------------===//
//
// Stresses the sharded threshold-waiter hot path (DESIGN.md Section 13):
// many parked per-key getters, disjoint-key putter shards, and a handler
// cascade echoing every delta - the same shape as bench_micro_lvar's
// contended scenario, but asserting the invariants instead of timing it.
// A threaded variant exercises the real lost-wakeup window (publish-then-
// recheck under 8 OS workers); an explored variant pins the same program
// under ScheduleCtl and checks the schedule replays bit-for-bit, so the
// bucket fan-out never leaks nondeterminism into wake order.
//
//===----------------------------------------------------------------------===//

#include "src/core/HandlerPool.h"
#include "src/core/LVish.h"
#include "src/data/Counter.h"
#include "src/data/IMap.h"
#include "src/data/ISet.h"
#include "src/explore/Explorer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace lvish;

namespace {

constexpr EffectSet IOE = Eff::FullIO;

/// The contended put/wake program. \p Keys getters park (one per key, so
/// they spread across every key bucket and the size heap stays busy via
/// the root's waitSize); \p Putters shards insert disjoint keys; a
/// put-only handler echoes each delta into Echo. Returns
/// sum(value read by getter K) = sum(2K) = Keys*(Keys-1), so a single
/// lost wakeup, dropped delta, or misrouted bucket scan changes the
/// result (or deadlocks the session, which runPar reports).
template <typename RunFn>
auto contendedProgram(uint64_t Keys, int Putters, RunFn Run) {
  return Run([Keys, Putters](ParCtx<IOE> Ctx) -> Par<uint64_t> {
    const int KeysI = static_cast<int>(Keys);
    auto Map = newEmptyMap<int, int>(Ctx);
    auto Echo = newISet<int>(Ctx);
    auto Ready = newCounter(Ctx);
    auto Sum = newCounter(Ctx);
    auto Done = newCounter(Ctx);
    auto Pool = newPool(Ctx);
    ParCtx<Eff::WriteOnly> WCtx = Ctx;
    auto Handler = [Echo](ParCtx<Eff::WriteOnly> C,
                          const std::pair<int, int> &D) -> Par<void> {
      insert(C, *Echo, D.first);
      co_return;
    };
    [[maybe_unused]] HandlerHandle H = addHandler(WCtx, Pool, *Map, Handler);
    // Owning captures: forked tasks may outlive the root frame.
    for (int K = 0; K < KeysI; ++K) {
      auto Getter = [Map, Sum, Done, Ready, K](ParCtx<IOE> C) -> Par<void> {
        incrCounter(C, *Ready);
        int V = co_await get(C, *Map, K);
        incrCounter(C, *Sum, static_cast<uint64_t>(V));
        incrCounter(C, *Done);
      };
      fork(Ctx, Getter);
    }
    // Putters release only once every getter has announced itself, so the
    // waiter table really is full when the put storm begins.
    for (int P = 0; P < Putters; ++P) {
      auto Putter = [Map, Ready, P, Putters, KeysI](ParCtx<IOE> C)
          -> Par<void> {
        co_await get(C, *Ready, static_cast<uint64_t>(KeysI));
        for (int K = P; K < KeysI; K += Putters)
          insert(C, *Map, K, K * 2);
      };
      fork(Ctx, Putter);
    }
    co_await waitSize(Ctx, *Echo, Keys);
    co_await get(Ctx, *Done, Keys);
    co_await quiesce(Ctx, Pool);
    std::vector<int> EchoElems = freezeSet(Ctx, *Echo);
    uint64_t Total = freezeCounter(Ctx, *Sum);
    EXPECT_EQ(EchoElems.size(), Keys) << "handler cascade lost a delta";
    co_return Total;
  });
}

TEST(ContentionStress, ThreadedEightWorkersAllWakesDelivered) {
  // Real OS workers: this is the configuration where a publish/probe
  // ordering bug in the sharded table shows up as a lost wakeup
  // (deterministic deadlock) or a wrong sum.
  const uint64_t Keys = 96;
  service::Runtime RT({.Sched = {.NumWorkers = 8}});
  for (int Round = 0; Round < 5; ++Round) {
    uint64_t Total = contendedProgram(Keys, 8, [&](auto Body) {
      return RT.runIO<IOE>(Body).valueOrAbort();
    });
    EXPECT_EQ(Total, Keys * (Keys - 1)) << "round " << Round;
  }
}

TEST(ContentionStress, ExploredSchedulesAgreeAcrossSeeds) {
  // Under ScheduleCtl every wake order is a controlled decision; the
  // program is write-commutative, so EVERY schedule must produce the same
  // sum. Disagreement means the sharded buckets let a schedule observe a
  // non-lattice state.
  const uint64_t Keys = 6;
  for (uint64_t Seed = 0; Seed < 24; ++Seed) {
    explore::Engine Eng = explore::Engine::random(Seed, 3);
    auto O = contendedProgram(Keys, 2, [&](auto Body) {
      return tryRunParIO<IOE>(Body, explore::sessionOptions(Eng));
    });
    ASSERT_TRUE(O.ok()) << "seed " << Seed << ": "
                        << explore::failureSig(O.fault());
    EXPECT_EQ(O.value(), Keys *(Keys - 1)) << "seed " << Seed;
  }
}

TEST(ContentionStress, ExploredScheduleReplaysBitForBit) {
  // Record one randomly driven schedule of the contended program, then
  // replay its decision log: the pedigree hash must match exactly. This
  // is the determinism contract the batching/sharding must preserve -
  // batch flush points and bucket wake order stay ScheduleCtl decisions.
  const uint64_t Keys = 6;
  explore::Engine Rec = explore::Engine::random(7, 3);
  auto O1 = contendedProgram(Keys, 2, [&](auto Body) {
    return tryRunParIO<IOE>(Body, explore::sessionOptions(Rec));
  });
  ASSERT_TRUE(O1.ok()) << explore::failureSig(O1.fault());

  explore::Engine Rep = explore::Engine::replay(Rec.chosen(), 3);
  auto O2 = contendedProgram(Keys, 2, [&](auto Body) {
    return tryRunParIO<IOE>(Body, explore::sessionOptions(Rep));
  });
  ASSERT_TRUE(O2.ok()) << explore::failureSig(O2.fault());
  EXPECT_EQ(O1.value(), O2.value());
  EXPECT_EQ(Rec.pedigreeHash(), Rep.pedigreeHash())
      << "replay diverged: wake order or batch flush is not a pure "
         "function of the decision log";
}

} // namespace
