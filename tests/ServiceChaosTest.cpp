//===- ServiceChaosTest.cpp - Seeded chaos against the service runtime -----===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service chaos harness (src/fault/ServiceChaos.h) pointed at a live
/// Runtime: seeded mid-flight session dooms, admission delay injection,
/// and (in LVISH_FAULTS builds) the worker stall shim - all at once. The
/// timing of each attack is deliberately non-deterministic, so every
/// assertion here is schedule-INDEPENDENT:
///
///   * a session the plan did not doom completes with EXACTLY its
///     sequential value - faulted and shed tenants never corrupt a
///     neighbor;
///   * a doomed session's outcome is well-formed either way the race
///     lands: its exact value (it finished before the doom arrived - the
///     documented benign race) or an InjectedFailure tagged with its OWN
///     session id;
///   * under admission pressure every future resolves with ok / Shed /
///     DeadlineExceeded and nothing else, and drain() racing a doomed
///     sweep still finishes every active session.
///
/// The ci.sh `chaos` stage reruns this binary under ThreadSanitizer: the
/// doom-delivery thread vs. finalizer vs. admission interleavings are
/// exactly where a race would hide.
///
//===----------------------------------------------------------------------===//

#include "src/core/LVish.h"
#include "src/fault/ServiceChaos.h"
#include "src/service/Runtime.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;

uint64_t sumSquaresSeq(uint64_t Lo, uint64_t Hi) {
  uint64_t S = 0;
  for (uint64_t I = Lo; I < Hi; ++I)
    S += I * I;
  return S;
}

Par<uint64_t> sumSquares(ParCtx<D> Ctx, uint64_t Lo, uint64_t Hi) {
  if (Hi - Lo <= 8) {
    co_return sumSquaresSeq(Lo, Hi);
  }
  uint64_t Mid = Lo + (Hi - Lo) / 2;
  auto Left = newIVar<uint64_t>(Ctx);
  fork(Ctx, [Left, Lo, Mid](ParCtx<D> C) -> Par<void> {
    uint64_t V = co_await sumSquares(C, Lo, Mid);
    put(C, *Left, V);
  });
  uint64_t Right = co_await sumSquares(Ctx, Mid, Hi);
  co_return co_await get(Ctx, *Left) + Right;
}

/// Session workload size for submission \p I: big enough that dooms have
/// a real window to land mid-flight, small enough to keep the sweep fast.
uint64_t workOf(uint64_t I) { return 300 + 7 * I; }

TEST(ServiceChaos, DoomedTenantsNeverPerturbNeighbors) {
  constexpr uint64_t N = 32;
  for (uint64_t Seed : {7u, 20140609u}) {
    service::Runtime RT({.Sched = {.NumWorkers = 4}});
    fault::ServiceChaosPlan Plan;
    Plan.Seed = Seed;
    Plan.DoomPeriod = 4;          // ~1 in 4 sessions doomed.
    Plan.AdmitDelayPeriod = 5;    // ~1 in 5 submissions jittered.
    Plan.StallDelayPeriod = 13;   // Worker stutter (LVISH_FAULTS only).
    fault::ServiceChaos Chaos(RT.scheduler(), Plan);
    // The stall shim perturbs interleavings, never outcomes; inert
    // without -DLVISH_FAULTS.
    fault::PlanScope Stalls(Chaos.stallPlan());

    std::vector<service::SessionFuture<uint64_t>> Futures;
    uint64_t DoomedCount = 0;
    for (uint64_t I = 0; I < N; ++I) {
      Chaos.maybeDelayAdmission(I);
      Futures.push_back(RT.submit<D>([I](ParCtx<D> Ctx) -> Par<uint64_t> {
        co_return co_await sumSquares(Ctx, 0, workOf(I));
      }));
      if (Chaos.doomed(I)) {
        ++DoomedCount;
        Chaos.armDoom(Futures.back().sessionId(), I);
      }
    }
    ASSERT_GT(DoomedCount, 0u) << "seed " << Seed
                               << " must doom someone or the test is vacuous";
    ASSERT_LT(DoomedCount, N) << "and must spare someone";
    Chaos.drainDooms();
    EXPECT_EQ(Chaos.doomsDelivered(), DoomedCount);

    for (uint64_t I = 0; I < N; ++I) {
      auto O = Futures[I].get();
      if (!Chaos.doomed(I)) {
        // The core isolation claim: neighbors are bit-exact, always.
        ASSERT_TRUE(O.ok()) << "seed " << Seed << ": undoomed session " << I
                            << " infected by chaos: " << O.fault().Message;
        EXPECT_EQ(O.value(), sumSquaresSeq(0, workOf(I)));
      } else if (O.ok()) {
        // Benign race: the session finished before its doom arrived. Its
        // value must still be exact - a late fault never corrupts it.
        EXPECT_EQ(O.value(), sumSquaresSeq(0, workOf(I)))
            << "seed " << Seed << ": doomed session " << I
            << " survived with a WRONG value";
      } else {
        EXPECT_EQ(O.fault().Code, FaultCode::InjectedFailure)
            << "seed " << Seed << ": " << O.fault().Message;
        EXPECT_EQ(O.fault().SessionId, Futures[I].sessionId())
            << "a doom must land on its own session";
      }
    }
    // The pool survives the whole campaign.
    auto After = RT.run<D>([](ParCtx<D> Ctx) -> Par<uint64_t> {
      co_return co_await sumSquares(Ctx, 0, 100);
    });
    ASSERT_TRUE(After.ok()) << After.fault().Message;
    EXPECT_EQ(After.value(), sumSquaresSeq(0, 100));
  }
}

TEST(ServiceChaos, AdmissionPressureResolvesEveryFutureWellFormed) {
  // Chaos jitter against a deliberately undersized admission pipeline:
  // outcomes may be ok, Shed, or DeadlineExceeded - never anything else,
  // never a hang, and every ok value is exact.
  constexpr uint64_t N = 40;
  service::RuntimeConfig RC;
  RC.Sched.NumWorkers = 4;
  RC.MaxActiveSessions = 2;
  RC.MaxQueuedSessions = 3;
  RC.SubmitDeadlineNanos = 3'000'000; // 3 ms
  service::Runtime RT(RC);
  fault::ServiceChaosPlan Plan;
  Plan.Seed = 99;
  Plan.AdmitDelayPeriod = 3;
  Plan.AdmitDelayNanos = 100'000;
  fault::ServiceChaos Chaos(RT.scheduler(), Plan);

  std::vector<service::SessionFuture<uint64_t>> Futures;
  for (uint64_t I = 0; I < N; ++I) {
    Chaos.maybeDelayAdmission(I);
    Futures.push_back(RT.submit<D>([I](ParCtx<D> Ctx) -> Par<uint64_t> {
      co_return co_await sumSquares(Ctx, 0, 64 + I);
    }));
  }
  uint64_t Completed = 0, Refused = 0;
  for (uint64_t I = 0; I < N; ++I) {
    auto O = Futures[I].get();
    if (O.ok()) {
      ++Completed;
      EXPECT_EQ(O.value(), sumSquaresSeq(0, 64 + I)) << "session " << I;
    } else {
      ++Refused;
      EXPECT_TRUE(O.fault().Code == FaultCode::Shed ||
                  O.fault().Code == FaultCode::DeadlineExceeded)
          << "session " << I << ": " << O.fault().Message;
    }
  }
  EXPECT_EQ(Completed + Refused, N);
  EXPECT_GT(Completed, 0u) << "the pipeline must admit someone";
}

TEST(ServiceChaos, DrainRacesDoomedSweepToAWellFormedStop) {
  service::Runtime RT({.Sched = {.NumWorkers = 4}});
  fault::ServiceChaosPlan Plan;
  Plan.Seed = 5;
  Plan.DoomPeriod = 3;
  Plan.DoomDelayMaxNanos = 500'000;
  fault::ServiceChaos Chaos(RT.scheduler(), Plan);

  constexpr uint64_t N = 16;
  std::vector<service::SessionFuture<uint64_t>> Futures;
  for (uint64_t I = 0; I < N; ++I) {
    Futures.push_back(RT.submit<D>([I](ParCtx<D> Ctx) -> Par<uint64_t> {
      co_return co_await sumSquares(Ctx, 0, workOf(I));
    }));
    if (Chaos.doomed(I))
      Chaos.armDoom(Futures.back().sessionId(), I);
  }
  // Drain while dooms are still in flight: active sessions must all be
  // finalized (value or injected fault), nothing may hang.
  RT.drain();
  for (uint64_t I = 0; I < N; ++I) {
    ASSERT_TRUE(Futures[I].ready())
        << "drain() returned with session " << I << " unresolved";
    auto O = Futures[I].get();
    if (O.ok())
      EXPECT_EQ(O.value(), sumSquaresSeq(0, workOf(I))) << "session " << I;
    else
      EXPECT_EQ(O.fault().Code, FaultCode::InjectedFailure)
          << "session " << I << ": " << O.fault().Message;
  }
  Chaos.drainDooms();
}

TEST(ServiceChaos, DecisionsArePureFunctionsOfSeedAndIndex) {
  Scheduler Sched({.NumWorkers = 1});
  fault::ServiceChaosPlan Plan;
  Plan.Seed = 1234;
  Plan.DoomPeriod = 4;
  Plan.AdmitDelayPeriod = 5;
  fault::ServiceChaos A(Sched, Plan);
  fault::ServiceChaos B(Sched, Plan);
  std::set<uint64_t> Doomed;
  for (uint64_t I = 0; I < 64; ++I) {
    EXPECT_EQ(A.doomed(I), B.doomed(I)) << I;
    EXPECT_EQ(A.admitDelayNanos(I), B.admitDelayNanos(I)) << I;
    if (A.doomed(I))
      Doomed.insert(I);
  }
  EXPECT_GT(Doomed.size(), 0u);
  EXPECT_LT(Doomed.size(), 64u);
  // A different seed picks a different doom set (overwhelmingly likely
  // for a 64-draw sample of a 1-in-4 hash).
  Plan.Seed = 4321;
  fault::ServiceChaos C(Sched, Plan);
  std::set<uint64_t> Doomed2;
  for (uint64_t I = 0; I < 64; ++I)
    if (C.doomed(I))
      Doomed2.insert(I);
  EXPECT_NE(Doomed, Doomed2);
}

} // namespace
