//===- StressTest.cpp - Scheduler and LVar soak tests ----------------------===//
//
// High-churn workloads hunting lifetime and counting bugs: thousands of
// tasks per session, repeated sessions on one scheduler, oversubscribed
// workers on this container's single CPU (maximum preemption-driven
// interleaving), deep sequential co_await chains, handler storms, and
// randomized fork trees with dataflow joins.
//
//===----------------------------------------------------------------------===//

#include "src/core/LVish.h"
#include "src/core/ParFor.h"
#include "src/data/Counter.h"
#include "src/data/ISet.h"
#include "src/support/SplitMix.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;
constexpr EffectSet DB{true, true, true, false, false, false};

TEST(Stress, ThousandsOfTasksPerSession) {
  std::atomic<long> Ran{0};
  runPar<D>(
      [&](ParCtx<D> Ctx) -> Par<void> {
        auto Body = [&Ran](size_t) {
          Ran.fetch_add(1, std::memory_order_relaxed);
        };
        co_await parallelFor(Ctx, 0, 20000, 1, Body);
      },
      SchedulerConfig{8}); // Oversubscribed: 8 workers, 1 CPU.
  EXPECT_EQ(Ran.load(), 20000);
}

TEST(Stress, ManySessionsReuseOneScheduler) {
  service::Runtime RT({.Sched = {.NumWorkers = 4}});
  for (int Round = 0; Round < 200; ++Round) {
    long R = RT.run<D>([Round](ParCtx<D> Ctx) -> Par<long> {
      auto Leaf = [Round](size_t I) {
        return static_cast<long>(I) + Round;
      };
      auto Combine = [](long A, long B) { return A + B; };
      long S = co_await parallelReduce<long>(Ctx, 0, 64, 4, Leaf, Combine,
                                             0L);
      co_return S;
    }).valueOrAbort();
    EXPECT_EQ(R, 64L * 63 / 2 + 64L * Round);
  }
  EXPECT_GE(RT.scheduler().stats().TasksCreated, 200u);
}

TEST(Stress, DeepSequentialAwaitChain) {
  // 20000 nested co_awaits: coroutine frames are heap-allocated, so this
  // must not exhaust any stack.
  struct Rec {
    static Par<long> down(ParCtx<D> Ctx, long N) {
      if (N == 0)
        co_return 0;
      long Sub = co_await down(Ctx, N - 1);
      co_return Sub + 1;
    }
  };
  long R = runPar<D>([](ParCtx<D> Ctx) -> Par<long> {
    co_return co_await Rec::down(Ctx, 20000);
  });
  EXPECT_EQ(R, 20000);
}

TEST(Stress, HandlerStormExactlyOnce) {
  // 2000 elements through a handler that increments a counter: every
  // element delivered exactly once despite insertion from 16 tasks.
  uint64_t Count = runParIO<Eff::FullIO>(
      [](ParCtx<Eff::FullIO> Ctx) -> Par<uint64_t> {
        auto S = newISet<int>(Ctx);
        auto Ctr = newCounter(Ctx);
        auto Pool = newPool(Ctx);
        [[maybe_unused]] HandlerHandle H =
            addHandler(Ctx, Pool, *S,
                       [Ctr](ParCtx<Eff::FullIO> C, const int &) -> Par<void> {
                         incrCounter(C, *Ctr);
                         co_return;
                       });
        auto Producer = [S](ParCtx<Eff::FullIO> C, size_t T) -> Par<void> {
          // Overlapping ranges: plenty of duplicate inserts.
          for (int I = 0; I < 250; ++I)
            insert(C, *S, static_cast<int>((T * 125) % 1000) + I);
          co_return;
        };
        co_await parallelForPar(Ctx, 0, 16, 1, Producer);
        co_await quiesce(Ctx, Pool);
        co_return freezeCounter(Ctx, *Ctr);
      },
      SchedulerConfig{4});
  // Exactly the number of DISTINCT elements inserted.
  SplitMix64 Dummy(0); // (determinism of the expected set is structural)
  std::set<int> Expected;
  for (size_t T = 0; T < 16; ++T)
    for (int I = 0; I < 250; ++I)
      Expected.insert(static_cast<int>((T * 125) % 1000) + I);
  EXPECT_EQ(Count, Expected.size());
}

TEST(Stress, RandomForkTreesWithJoins) {
  // Randomized shapes, seeded: every leaf writes into a counter; the sum
  // must equal the leaf count regardless of tree shape or schedule.
  for (uint64_t Seed : {3ull, 17ull, 91ull}) {
    SplitMix64 Shape(Seed);
    // Precompute a deterministic tree shape: at each node, either split
    // (with a size in [2, 5]) or become a leaf.
    struct Rec {
      static Par<uint64_t> grow(ParCtx<D> Ctx, uint64_t State, int Depth) {
        SplitMix64 Rng(State);
        if (Depth == 0 || Rng.nextBounded(4) == 0)
          co_return 1; // Leaf.
        size_t Kids = 2 + Rng.nextBounded(3);
        std::vector<std::shared_ptr<IVar<uint64_t>>> Futures;
        for (size_t K = 0; K < Kids; ++K) {
          auto F = newIVar<uint64_t>(Ctx);
          Futures.push_back(F);
          uint64_t ChildState = mix64(State ^ (K + 1));
          auto Body = [F, ChildState, Depth](ParCtx<D> C) -> Par<void> {
            uint64_t N = co_await grow(C, ChildState, Depth - 1);
            put(C, *F, N);
          };
          fork(Ctx, Body);
        }
        uint64_t Total = 0;
        for (auto &F : Futures)
          Total += co_await get(Ctx, *F);
        co_return Total;
      }
    };
    auto Run = [Seed](unsigned Workers) {
      SchedulerConfig Cfg;
      Cfg.NumWorkers = Workers;
      Cfg.StealSeed = Seed * 31;
      return runPar<D>(
          [Seed](ParCtx<D> Ctx) -> Par<uint64_t> {
            co_return co_await Rec::grow(Ctx, Seed, 6);
          },
          Cfg);
    };
    uint64_t Ref = Run(1);
    EXPECT_GT(Ref, 0u);
    EXPECT_EQ(Run(4), Ref) << "seed " << Seed;
  }
}

TEST(Stress, OrphanRichSessionsShutDownCleanly) {
  // Sessions that leave many permanently blocked tasks behind: the reaper
  // must collect them all, repeatedly.
  service::Runtime RT({.Sched = {.NumWorkers = 3}});
  for (int Round = 0; Round < 50; ++Round) {
    int R = RT.run<D>([](ParCtx<D> Ctx) -> Par<int> {
      auto Never = newIVar<int>(Ctx);
      for (int I = 0; I < 20; ++I)
        fork(Ctx, [Never](ParCtx<D> C) -> Par<void> {
          int V = co_await get(C, *Never); // Blocks forever.
          (void)V;
        });
      co_return 5;
    }).valueOrAbort();
    EXPECT_EQ(R, 5);
  }
}

} // namespace
