//===- SupportTest.cpp - Support utilities tests ---------------------------===//

#include "src/support/Assert.h"
#include "src/support/AsymmetricGate.h"
#include "src/support/DenseBitset.h"
#include "src/support/Hashing.h"
#include "src/support/Pedigree.h"
#include "src/support/SplitMix.h"
#include "src/support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <unistd.h>
#endif

using namespace lvish;

namespace {

TEST(Hashing, Mix64IsInjectiveOnSmallRange) {
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I < 10000; ++I)
    Seen.insert(mix64(I));
  EXPECT_EQ(Seen.size(), 10000u);
}

TEST(Hashing, BytesHashIsStable) {
  EXPECT_EQ(hashBytes("abc", 3), hashBytes("abc", 3));
  EXPECT_NE(hashBytes("abc", 3), hashBytes("abd", 3));
}

TEST(DenseBitset, SetTestCount) {
  DenseBitset B(130);
  EXPECT_TRUE(B.none());
  B.set(0);
  B.set(64);
  B.set(129);
  EXPECT_EQ(B.count(), 3u);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(64));
  EXPECT_TRUE(B.test(129));
  EXPECT_FALSE(B.test(1));
  B.reset(64);
  EXPECT_EQ(B.count(), 2u);
}

TEST(DenseBitset, FlipAllRespectsPadding) {
  DenseBitset B(70);
  B.set(3);
  B.flipAll();
  EXPECT_EQ(B.count(), 69u);
  EXPECT_FALSE(B.test(3));
  // Padding bits above 70 must stay clear so equality/hash are canonical.
  B.flipAll();
  DenseBitset C(70);
  C.set(3);
  EXPECT_EQ(B, C);
  EXPECT_EQ(B.hash(), C.hash());
}

TEST(DenseBitset, SubsetAndDisjoint) {
  DenseBitset A(100), B(100);
  A.set(1);
  A.set(50);
  B.set(1);
  B.set(50);
  B.set(99);
  EXPECT_TRUE(A.subsetOf(B));
  EXPECT_FALSE(B.subsetOf(A));
  DenseBitset C(100);
  C.set(2);
  EXPECT_TRUE(A.disjointWith(C));
  EXPECT_FALSE(A.disjointWith(B));
}

TEST(DenseBitset, OrderingIsTotalAndDeterministic) {
  DenseBitset A(64), B(64);
  A.set(0);
  B.set(1);
  EXPECT_TRUE((A < B) != (B < A));
  EXPECT_FALSE(A < A);
}

TEST(SplitMix, DeterministicStreams) {
  SplitMix64 A(7), B(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix, SplitIndependence) {
  SplitMix64 G(123);
  auto [L, R] = G.split();
  EXPECT_NE(L.rawState(), R.rawState());
  // Streams should diverge immediately.
  SplitMix64 L2 = L, R2 = R;
  EXPECT_NE(L2.next(), R2.next());
}

TEST(SplitMix, SplitIsAFunctionOfState) {
  SplitMix64 G1(5), G2(5);
  auto [A1, B1] = G1.split();
  auto [A2, B2] = G2.split();
  EXPECT_EQ(A1, A2);
  EXPECT_EQ(B1, B2);
}

TEST(SplitMix, BoundedIsInRange) {
  SplitMix64 G(99);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(G.nextBounded(17), 17u);
}

TEST(SplitMix, DoubleIsInUnitInterval) {
  SplitMix64 G(3);
  for (int I = 0; I < 1000; ++I) {
    double D = G.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Timer, MedianOfConstantIsConstantish) {
  double T = medianSeconds([] {}, 5);
  EXPECT_GE(T, 0.0);
  EXPECT_LT(T, 0.5);
}

// -- AsymmetricGate -----------------------------------------------------

TEST(AsymmetricGate, FastSectionsAreConcurrent) {
  AsymmetricGate G;
  std::atomic<int> Inside{0};
  std::atomic<int> MaxInside{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 200; ++I) {
        AsymmetricGate::FastGuard Guard(G);
        int Now = Inside.fetch_add(1) + 1;
        int Max = MaxInside.load();
        while (Max < Now && !MaxInside.compare_exchange_weak(Max, Now)) {
        }
        Inside.fetch_sub(1);
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Inside.load(), 0);
}

TEST(AsymmetricGate, SlowSideExcludesFastSide) {
  AsymmetricGate G;
  std::atomic<bool> SlowActive{false};
  std::atomic<bool> Violation{false};
  std::atomic<bool> Stop{false};
  std::thread Fast([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      AsymmetricGate::FastGuard Guard(G);
      if (SlowActive.load(std::memory_order_acquire))
        Violation.store(true);
    }
  });
  for (int I = 0; I < 100; ++I) {
    AsymmetricGate::SlowGuard Guard(G);
    SlowActive.store(true, std::memory_order_release);
    // Dwell briefly; any fast-section overlap would observe SlowActive.
    for (int Spin = 0; Spin < 50; ++Spin)
      std::atomic_signal_fence(std::memory_order_seq_cst);
    SlowActive.store(false, std::memory_order_release);
  }
  Stop.store(true, std::memory_order_release);
  Fast.join();
  EXPECT_FALSE(Violation.load());
}

TEST(AsymmetricGate, NestedFastSectionsDoNotSelfDeadlock) {
  AsymmetricGate G;
  AsymmetricGate::FastGuard Outer(G);
  {
    AsymmetricGate::FastGuard Inner(G);
  }
  SUCCEED();
}

// -- Pedigree --------------------------------------------------------------

TEST(Pedigree, RootAndShallowPaths) {
  Pedigree Root;
  EXPECT_EQ(Root.depth(), 0u);
  EXPECT_EQ(Root.render(), "");
  EXPECT_FALSE(Root.overflowed());

  Pedigree P;
  P.append(1);
  P.append(0);
  P.append(1);
  EXPECT_EQ(P.depth(), 3u);
  EXPECT_EQ(P.render(), "RLR");
  EXPECT_TRUE(P.bit(0));
  EXPECT_FALSE(P.bit(1));
  EXPECT_NE(P, Root);
  EXPECT_NE(P.hash(), Root.hash());
}

TEST(Pedigree, DeepForksStayDistinctPastOneWord) {
  // The regression the widening fixes: the old single-uint64_t packing
  // dropped bits past depth 64, so pedigrees diverging only at a deeper
  // branch collided. Model two fork chains agreeing on the first 100
  // branches and diverging at branch 100.
  Pedigree A, B;
  for (unsigned I = 0; I < 100; ++I) {
    A.append(I & 1);
    B.append(I & 1);
  }
  A.append(0);
  B.append(1);
  EXPECT_EQ(A.depth(), 101u);
  EXPECT_NE(A, B);
  EXPECT_NE(A.hash(), B.hash());
  EXPECT_NE(A.render(), B.render());
  EXPECT_EQ(A.render().size(), 101u);
  // Every recorded bit round-trips, including those beyond word 0.
  for (unsigned I = 0; I < 100; ++I)
    EXPECT_EQ(A.bit(I), (I & 1) != 0) << "bit " << I;
  EXPECT_FALSE(A.bit(100));
  EXPECT_TRUE(B.bit(100));
}

TEST(Pedigree, SaturatesExplicitlyPastCapacity) {
  Pedigree P;
  for (unsigned I = 0; I < 300; ++I)
    P.append(1);
  EXPECT_EQ(P.depth(), 300u);
  EXPECT_TRUE(P.overflowed());
  // Recorded prefix renders fully, then the drop count - saturated paths
  // are visibly distinct from exact ones rather than silently wrong.
  std::string R = P.render();
  EXPECT_EQ(R.size(), Pedigree::Capacity + 3);
  EXPECT_EQ(R.substr(Pedigree::Capacity), "+44");
  EXPECT_EQ(R.find('L'), std::string::npos);

  // Saturation keeps counting depth, so pedigrees differing only past
  // capacity still differ when their depths differ.
  Pedigree Longer = P;
  Longer.append(0);
  EXPECT_NE(P, Longer);
  EXPECT_NE(P.hash(), Longer.hash());
}

TEST(Pedigree, HashIsAFunctionOfPathAndDepth) {
  // Same path, built twice -> identical hash (replay and fault-plan
  // targeting depend on this being stable).
  SplitMix64 Rng(7);
  Pedigree A, B;
  std::vector<unsigned> Bits;
  for (unsigned I = 0; I < 200; ++I)
    Bits.push_back(static_cast<unsigned>(Rng.nextBounded(2)));
  for (unsigned Bit : Bits)
    A.append(Bit);
  for (unsigned Bit : Bits)
    B.append(Bit);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_EQ(A.render(), B.render());

  // "L" vs "" vs "R": depth participates, not just the set bits.
  Pedigree L, R2;
  L.append(0);
  R2.append(1);
  EXPECT_NE(L.hash(), Pedigree().hash());
  EXPECT_NE(L.hash(), R2.hash());
}

// -- fatalError ------------------------------------------------------------

/// Helper scenario, only armed via LVISH_TEST_DOUBLE_FATAL in a child
/// process: two barrier-synced threads hit fatalError at the same moment.
/// The contract (Assert.h) is that the message prints exactly once even
/// under concurrent failure; the parent test below counts the lines.
TEST(FatalError, DoubleFatalChildScenario) {
  if (!std::getenv("LVISH_TEST_DOUBLE_FATAL"))
    GTEST_SKIP() << "helper; driven by ConcurrentFatalPrintsExactlyOnce";
  std::atomic<int> Ready{0};
  auto Racer = [&Ready](const char *Msg) {
    Ready.fetch_add(1);
    while (Ready.load() < 2) {
    }
    fatalError(Msg);
  };
  std::thread A(Racer, "concurrent failure A");
  std::thread B(Racer, "concurrent failure B");
  A.join(); // Never reached: both racers abort the process.
  B.join();
}

#ifdef __linux__
TEST(FatalError, ConcurrentFatalPrintsExactlyOnce) {
  // Resolve our own binary here: /proc/self/exe inside the popen command
  // would name the shell, not this test.
  char Exe[4096];
  ssize_t Len = readlink("/proc/self/exe", Exe, sizeof(Exe) - 1);
  ASSERT_GT(Len, 0);
  Exe[Len] = '\0';
  std::string Cmd =
      std::string("LVISH_TEST_DOUBLE_FATAL=1 '") + Exe +
      "' --gtest_filter=FatalError.DoubleFatalChildScenario 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  ASSERT_NE(P, nullptr);
  std::string Out;
  char Buf[256];
  while (size_t N = std::fread(Buf, 1, sizeof(Buf), P))
    Out.append(Buf, N);
  int Status = pclose(P);
  EXPECT_NE(Status, 0) << "the double-fatal child should have aborted";
  size_t Count = 0;
  for (size_t Pos = 0;
       (Pos = Out.find("lvish fatal error", Pos)) != std::string::npos;
       ++Pos)
    ++Count;
  EXPECT_EQ(Count, 1u) << "expected exactly one fatal report, got:\n"
                       << Out;
  EXPECT_NE(Out.find("concurrent failure"), std::string::npos) << Out;
}
#endif // __linux__

} // namespace
