//===- DequeTest.cpp - Chase-Lev deque tests -------------------------------===//

#include "src/sched/WorkStealingDeque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace lvish;

namespace {

struct Item {
  int Value;
};

TEST(Deque, LifoOwnerSemantics) {
  WorkStealingDeque<Item> D;
  Item A{1}, B{2}, C{3};
  D.push(&A);
  D.push(&B);
  D.push(&C);
  EXPECT_EQ(D.pop(), &C);
  EXPECT_EQ(D.pop(), &B);
  EXPECT_EQ(D.pop(), &A);
  EXPECT_EQ(D.pop(), nullptr);
}

TEST(Deque, FifoThiefSemantics) {
  WorkStealingDeque<Item> D;
  Item A{1}, B{2};
  D.push(&A);
  D.push(&B);
  EXPECT_EQ(D.steal(), &A);
  EXPECT_EQ(D.steal(), &B);
  EXPECT_EQ(D.steal(), nullptr);
}

TEST(Deque, GrowsPastInitialCapacity) {
  WorkStealingDeque<Item> D(2); // Capacity 4.
  std::vector<Item> Items(100);
  for (int I = 0; I < 100; ++I) {
    Items[I].Value = I;
    D.push(&Items[I]);
  }
  for (int I = 99; I >= 0; --I) {
    Item *P = D.pop();
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(P->Value, I);
  }
}

// Stress: one owner pushing/popping, several thieves stealing. Every item
// must be consumed exactly once.
TEST(Deque, StressExactlyOnceDelivery) {
  constexpr int NumItems = 20000;
  constexpr int NumThieves = 3;
  WorkStealingDeque<Item> D;
  std::vector<Item> Items(NumItems);
  std::vector<std::atomic<int>> Taken(NumItems);
  for (auto &T : Taken)
    T.store(0);
  std::atomic<bool> Done{false};
  std::atomic<int> Consumed{0};

  auto Consume = [&](Item *P) {
    Taken[P->Value].fetch_add(1);
    Consumed.fetch_add(1);
  };

  std::vector<std::thread> Thieves;
  for (int T = 0; T < NumThieves; ++T)
    Thieves.emplace_back([&] {
      while (!Done.load(std::memory_order_acquire) ||
             Consumed.load() < NumItems) {
        if (Item *P = D.steal())
          Consume(P);
        else
          std::this_thread::yield();
        if (Consumed.load() >= NumItems)
          break;
      }
    });

  // Owner: push all items, popping occasionally to mix in LIFO traffic.
  for (int I = 0; I < NumItems; ++I) {
    Items[I].Value = I;
    D.push(&Items[I]);
    if (I % 7 == 0)
      if (Item *P = D.pop())
        Consume(P);
  }
  Done.store(true, std::memory_order_release);
  while (Consumed.load() < NumItems)
    if (Item *P = D.pop())
      Consume(P);
    else
      std::this_thread::yield();

  for (auto &T : Thieves)
    T.join();

  for (int I = 0; I < NumItems; ++I)
    EXPECT_EQ(Taken[I].load(), 1) << "item " << I;
}

} // namespace
