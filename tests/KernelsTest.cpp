//===- KernelsTest.cpp - Benchmark kernels vs. sequential oracles ----------===//

#include "src/kernels/Harness.h"
#include "src/kernels/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace lvish;
using namespace lvish::kernels;

namespace {

TEST(BlackScholes, ParMatchesSeq) {
  auto Opts = makeOptions(5000, 7);
  auto Seq = blackScholesSeq(Opts);
  service::Runtime RT({.Sched = {.NumWorkers = 3}});
  auto Par = blackScholesPar(RT, Opts, 256);
  ASSERT_EQ(Seq.size(), Par.size());
  for (size_t I = 0; I < Seq.size(); ++I)
    EXPECT_DOUBLE_EQ(Seq[I], Par[I]);
}

TEST(BlackScholes, PutCallSanity) {
  // A deep in-the-money call is worth about S - K*exp(-rT).
  Option O{100, 50, 1.0, 0.05, 0.2, true};
  double Price = blackScholesSeq({O})[0];
  EXPECT_NEAR(Price, 100 - 50 * std::exp(-0.05), 0.5);
  // Put-call parity: C - P = S - K*exp(-rT).
  Option P = O;
  P.IsCall = false;
  double PutPrice = blackScholesSeq({P})[0];
  EXPECT_NEAR(Price - PutPrice, 100 - 50 * std::exp(-0.05), 1e-6);
}

TEST(SumEuler, ParMatchesSeqAndKnownValues) {
  // Known: sum of phi(i) for i=1..10 is 32; for 1..100 is 3044.
  EXPECT_EQ(sumEulerSeq(10), 32u);
  EXPECT_EQ(sumEulerSeq(100), 3044u);
  service::Runtime RT({.Sched = {.NumWorkers = 3}});
  EXPECT_EQ(sumEulerPar(RT, 100, 8), 3044u);
  EXPECT_EQ(sumEulerPar(RT, 1000, 32), sumEulerSeq(1000));
}

TEST(MatMult, ParMatchesSeq) {
  constexpr size_t N = 48;
  auto A = makeMatrix(N, 1);
  auto B = makeMatrix(N, 2);
  auto Seq = matMultSeq(A, B, N);
  service::Runtime RT({.Sched = {.NumWorkers = 3}});
  auto Par = matMultPar(RT, A, B, N, 4);
  ASSERT_EQ(Seq.size(), Par.size());
  for (size_t I = 0; I < Seq.size(); ++I)
    EXPECT_DOUBLE_EQ(Seq[I], Par[I]);
}

TEST(MatMult, IdentityIsNeutral) {
  constexpr size_t N = 16;
  auto A = makeMatrix(N, 3);
  std::vector<double> I(N * N, 0);
  for (size_t K = 0; K < N; ++K)
    I[K * N + K] = 1;
  auto C = matMultSeq(A, I, N);
  for (size_t K = 0; K < A.size(); ++K)
    EXPECT_NEAR(C[K], A[K], 1e-12);
}

TEST(NBody, ParMatchesSeqBitForBit) {
  auto B1 = makeBodies(64, 11);
  auto B2 = B1;
  nBodySeq(B1, 3);
  service::Runtime RT({.Sched = {.NumWorkers = 3}});
  nBodyPar(RT, B2, 3);
  for (size_t I = 0; I < B1.size(); ++I) {
    EXPECT_DOUBLE_EQ(B1[I].X, B2[I].X);
    EXPECT_DOUBLE_EQ(B1[I].VX, B2[I].VX);
    EXPECT_DOUBLE_EQ(B1[I].Z, B2[I].Z);
  }
}

TEST(NBody, MomentumRoughlyConserved) {
  auto Bodies = makeBodies(32, 5);
  auto P0 = [&] {
    double PX = 0;
    for (const Body &B : Bodies)
      PX += B.Mass * B.VX;
    return PX;
  }();
  nBodySeq(Bodies, 10);
  double PX = 0;
  for (const Body &B : Bodies)
    PX += B.Mass * B.VX;
  // Forces are not exactly pairwise-symmetric numerically, so allow slack.
  EXPECT_NEAR(PX, P0, 1e-2);
}

TEST(MergeSort, SeqOracleSorts) {
  auto Keys = makeKeys(10000, 13);
  auto Ref = Keys;
  std::sort(Ref.begin(), Ref.end());
  mergeSortSeq(Keys);
  EXPECT_EQ(Keys, Ref);
}

TEST(MergeSort, FunctionalCopyingSorts) {
  auto Keys = makeKeys(50000, 17);
  auto Ref = Keys;
  std::sort(Ref.begin(), Ref.end());
  service::Runtime RT({.Sched = {.NumWorkers = 3}});
  auto Sorted = mergeSortFP(RT, std::move(Keys), 1024);
  EXPECT_EQ(Sorted, Ref);
}

TEST(MergeSort, ParSTInPlaceSorts) {
  for (size_t N : {16u, 1000u, 50000u}) {
    auto Keys = makeKeys(N, 19);
    auto Ref = Keys;
    std::sort(Ref.begin(), Ref.end());
    service::Runtime RT({.Sched = {.NumWorkers = 3}});
    mergeSortParST(RT, Keys, 512, /*UseStdSortLeaf=*/false);
    EXPECT_EQ(Keys, Ref) << "N=" << N;
  }
}

TEST(MergeSort, ParSTWithStdSortLeaf) {
  auto Keys = makeKeys(30000, 23);
  auto Ref = Keys;
  std::sort(Ref.begin(), Ref.end());
  service::Runtime RT({.Sched = {.NumWorkers = 2}});
  mergeSortParST(RT, Keys, 512, /*UseStdSortLeaf=*/true);
  EXPECT_EQ(Keys, Ref);
}

TEST(MergeSort, AlreadySortedAndReversedInputs) {
  std::vector<int64_t> Up(4096), Down(4096);
  for (size_t I = 0; I < Up.size(); ++I) {
    Up[I] = static_cast<int64_t>(I);
    Down[I] = static_cast<int64_t>(Up.size() - I);
  }
  service::Runtime RT({.Sched = {.NumWorkers = 2}});
  auto UpRef = Up;
  mergeSortParST(RT, Up, 128);
  EXPECT_EQ(Up, UpRef);
  mergeSortParST(RT, Down, 128);
  EXPECT_TRUE(std::is_sorted(Down.begin(), Down.end()));
}

// -- Harness capture ------------------------------------------------------

TEST(Harness, CaptureProducesUsableGraph) {
  auto Fn = [](service::Runtime &RT) {
    auto Keys = makeKeys(20000, 3);
    mergeSortParST(RT, Keys, 1024);
  };
  KernelCapture Cap = captureKernel("sort", Fn, 1, 1);
  EXPECT_GT(Cap.RealSeconds, 0);
  EXPECT_GT(Cap.Graph.numSlices(), 10u);
  EXPECT_GT(Cap.Graph.totalWorkNanos(), 0u);
  // Span cannot exceed work; both positive.
  EXPECT_LE(Cap.Graph.criticalPathNanos(), Cap.Graph.totalWorkNanos());
  EXPECT_GT(Cap.Graph.totalBytes(), 0u);
}

} // namespace
