//===- AndLVTest.cpp - Parallel-and lattice and asyncAnd -------------------===//
//
// Exhaustively verifies the Figure 1 lattice (join laws over all 10x10
// state pairs), the threshold-read semantics, short-circuiting, and the
// paper's 100-computation fold example.
//
//===----------------------------------------------------------------------===//

#include "src/core/LVish.h"
#include "src/data/AndLV.h"

#include <gtest/gtest.h>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;
using VT = AndLattice::ValueType;

// "Because AndLV has a finite lattice, its join function can be trivially
// and exhaustively verified to compute a lub" (Section 2).
TEST(AndLattice, JoinIsCommutativeExhaustively) {
  for (const VT &A : AndLattice::allStates())
    for (const VT &B : AndLattice::allStates())
      EXPECT_EQ(AndLattice::join(A, B), AndLattice::join(B, A));
}

TEST(AndLattice, JoinIsAssociativeExhaustively) {
  auto All = AndLattice::allStates();
  for (const VT &A : All)
    for (const VT &B : All)
      for (const VT &C : All)
        EXPECT_EQ(AndLattice::join(A, AndLattice::join(B, C)),
                  AndLattice::join(AndLattice::join(A, B), C));
}

TEST(AndLattice, JoinIsIdempotentExhaustively) {
  for (const VT &A : AndLattice::allStates())
    EXPECT_EQ(AndLattice::join(A, A), A);
}

TEST(AndLattice, BottomIsIdentityAndTopAbsorbs) {
  for (const VT &A : AndLattice::allStates()) {
    EXPECT_EQ(AndLattice::join(A, AndLattice::bottom()), A);
    EXPECT_TRUE(AndLattice::isTop(AndLattice::join(A, std::nullopt)));
  }
}

TEST(AndLattice, JoinIsInflationaryExhaustively) {
  // a <= join(a, b) for all a, b (leq derived from join).
  auto All = AndLattice::allStates();
  for (const VT &A : All)
    for (const VT &B : All) {
      VT J = AndLattice::join(A, B);
      EXPECT_EQ(AndLattice::join(A, J), J) << "not inflationary";
    }
}

TEST(AndLattice, TriggerSetsArePairwiseIncompatible) {
  // The getAndLV threshold sets, verified exhaustively against the lattice.
  auto Pair = [](Inp X, Inp Y) { return VT(std::make_pair(X, Y)); };
  std::vector<VT> BothTrue{Pair(Inp::T, Inp::T)};
  std::vector<VT> AnyFalse{Pair(Inp::F, Inp::Bot), Pair(Inp::Bot, Inp::F),
                           Pair(Inp::F, Inp::T), Pair(Inp::T, Inp::F),
                           Pair(Inp::F, Inp::F)};
  for (const VT &A : BothTrue)
    for (const VT &B : AnyFalse)
      EXPECT_TRUE(AndLattice::isTop(AndLattice::join(A, B)));
}

// -- Runtime behaviour ----------------------------------------------------

TEST(AsyncAnd, TrueTrue) {
  bool R = runPar<D>([](ParCtx<D> Ctx) -> Par<bool> {
    co_return co_await asyncAnd<D>(
        Ctx, [](ParCtx<D> C) -> Par<bool> { co_return true; },
        [](ParCtx<D> C) -> Par<bool> { co_return true; });
  });
  EXPECT_TRUE(R);
}

TEST(AsyncAnd, TrueFalse) {
  bool R = runPar<D>([](ParCtx<D> Ctx) -> Par<bool> {
    co_return co_await asyncAnd<D>(
        Ctx, [](ParCtx<D> C) -> Par<bool> { co_return true; },
        [](ParCtx<D> C) -> Par<bool> { co_return false; });
  });
  EXPECT_FALSE(R);
}

TEST(AsyncAnd, ShortCircuitsOnFirstFalse) {
  // The left branch never completes (blocks forever); the right branch is
  // false. getAndLV must still return false - and the orphaned left branch
  // is reaped at session end.
  bool R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<bool> {
        auto Never = newIVar<int>(Ctx);
        // Named: captures a shared_ptr (GCC 12 discipline, see Par.h).
        auto Blocked = [Never](ParCtx<D> C) -> Par<bool> {
          int V = co_await get(C, *Never); // Blocks forever.
          co_return V != 0;
        };
        auto False = [](ParCtx<D> C) -> Par<bool> { co_return false; };
        bool R = co_await asyncAnd<D>(Ctx, Blocked, False);
        co_return R;
      },
      SchedulerConfig{2});
  EXPECT_FALSE(R);
}

TEST(AsyncAnd, FoldOver100Computations) {
  // The paper's main example: 100 replicated [true, false] computations.
  bool R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<bool> {
        std::vector<std::function<Par<bool>(ParCtx<D>)>> Ms;
        for (int I = 0; I < 100; ++I) {
          Ms.push_back([](ParCtx<D> C) -> Par<bool> { co_return true; });
          Ms.push_back([](ParCtx<D> C) -> Par<bool> { co_return false; });
        }
        co_return co_await asyncAndTree<D>(Ctx, Ms);
      },
      SchedulerConfig{4});
  EXPECT_FALSE(R);
}

TEST(AsyncAnd, FoldOverAllTrue) {
  bool R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<bool> {
        std::vector<std::function<Par<bool>(ParCtx<D>)>> Ms;
        for (int I = 0; I < 64; ++I)
          Ms.push_back([](ParCtx<D> C) -> Par<bool> { co_return true; });
        co_return co_await asyncAndTree<D>(Ctx, Ms);
      },
      SchedulerConfig{4});
  EXPECT_TRUE(R);
}

TEST(AsyncAnd, DeterministicAcrossSchedules) {
  for (unsigned W : {1u, 2u, 4u}) {
    bool R = runPar<D>(
        [](ParCtx<D> Ctx) -> Par<bool> {
          std::vector<std::function<Par<bool>(ParCtx<D>)>> Ms;
          for (int I = 0; I < 30; ++I)
            Ms.push_back([I](ParCtx<D> C) -> Par<bool> {
              co_return I != 17; // Exactly one false.
            });
          co_return co_await asyncAndTree<D>(Ctx, Ms);
        },
        SchedulerConfig{W});
    EXPECT_FALSE(R) << "workers=" << W;
  }
}

} // namespace
