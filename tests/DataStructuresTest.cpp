//===- DataStructuresTest.cpp - ISet/IMap/Counter/IStructure tests ---------===//

#include "src/core/LVish.h"
#include "src/core/ParFor.h"
#include "src/data/Counter.h"
#include "src/data/IMap.h"
#include "src/data/ISet.h"
#include "src/data/IStructure.h"
#include "src/data/MonotoneHashMap.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;
constexpr EffectSet DB = Eff::DetBump;

// -- MonotoneHashMap substrate -------------------------------------------

TEST(MonotoneHashMap, InsertFindBasics) {
  MonotoneHashMap<int, std::string> M;
  auto [P1, New1] = M.insert(1, "one");
  EXPECT_TRUE(New1);
  EXPECT_EQ(*P1, "one");
  auto [P2, New2] = M.insert(1, "uno");
  EXPECT_FALSE(New2);
  EXPECT_EQ(*P2, "one"); // First write wins; no overwrite ever.
  EXPECT_EQ(M.size(), 1u);
  EXPECT_TRUE(M.contains(1));
  EXPECT_FALSE(M.contains(2));
}

TEST(MonotoneHashMap, PointersAreStableAcrossGrowth) {
  MonotoneHashMap<int, int> M;
  auto [P, New] = M.insert(0, 42);
  (void)New;
  for (int I = 1; I < 5000; ++I)
    M.insert(I, I);
  EXPECT_EQ(*P, 42); // Node-based: stable despite 5000 inserts.
  EXPECT_EQ(M.size(), 5000u);
}

TEST(MonotoneHashMap, ConcurrentInsertExactCount) {
  MonotoneHashMap<int, int> M;
  constexpr int PerThread = 5000;
  constexpr int Threads = 4;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&M, T] {
      for (int I = 0; I < PerThread; ++I)
        M.insert(I, T); // All threads race on the same keys.
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(M.size(), static_cast<size_t>(PerThread));
}

TEST(MonotoneHashMap, SnapshotSortedIsSorted) {
  MonotoneHashMap<int, int> M;
  for (int I : {5, 3, 9, 1, 7})
    M.insert(I, I * 10);
  auto Snap = M.snapshotSorted();
  ASSERT_EQ(Snap.size(), 5u);
  EXPECT_TRUE(std::is_sorted(Snap.begin(), Snap.end()));
  EXPECT_EQ(Snap.front().first, 1);
  EXPECT_EQ(Snap.back().first, 9);
}

// -- ISet ------------------------------------------------------------------

TEST(ISet, InsertThenWaitElem) {
  runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
    auto S = newISet<int>(Ctx);
    fork(Ctx, [S](ParCtx<D> C) -> Par<void> {
      insert(C, *S, 42);
      co_return;
    });
    co_await get(Ctx, *S, 42);
    EXPECT_TRUE(S->containsElem(42));
    co_return;
  });
}

TEST(ISet, WaitSizeUnblocksAtThreshold) {
  runPar<D>(
      [](ParCtx<D> Ctx) -> Par<void> {
        auto S = newISet<int>(Ctx);
        for (int I = 0; I < 10; ++I)
          fork(Ctx, [S, I](ParCtx<D> C) -> Par<void> {
            insert(C, *S, I);
            co_return;
          });
        co_await waitSize(Ctx, *S, 10);
        EXPECT_GE(S->sizeNow(), 10u);
        co_return;
      },
      SchedulerConfig{4});
}

TEST(ISet, DuplicateInsertIsIdempotent) {
  auto S = runParThenFreeze<D>([](ParCtx<D> Ctx) -> Par<
                                   std::shared_ptr<ISet<int>>> {
    auto Set = newISet<int>(Ctx);
    for (int R = 0; R < 4; ++R)
      fork(Ctx, [Set](ParCtx<D> C) -> Par<void> {
        for (int I = 0; I < 50; ++I)
          insert(C, *Set, I);
        co_return;
      });
    co_return Set;
  });
  EXPECT_EQ(S->sizeNow(), 50u);
  auto Sorted = S->toSortedVector();
  ASSERT_EQ(Sorted.size(), 50u);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(Sorted[static_cast<size_t>(I)], I);
}

TEST(ISet, HandlerDeliversEachElementExactlyOnce) {
  std::atomic<int> Deliveries{0};
  std::atomic<long> Sum{0};
  runParIO<Eff::FullIO>([&](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
    auto S = newISet<int>(Ctx);
    auto Pool = newPool(Ctx);
    // Insert some elements BEFORE registration (delivered via snapshot)...
    insert(Ctx, *S, 100);
    insert(Ctx, *S, 200);
    [[maybe_unused]] HandlerHandle H =
        addHandler(Ctx, Pool, *S,
                   [&](ParCtx<Eff::FullIO> C, const int &V) -> Par<void> {
                     Deliveries.fetch_add(1);
                     Sum.fetch_add(V);
                     co_return;
                   });
    // ...and some after (delivered by the put path).
    insert(Ctx, *S, 1);
    insert(Ctx, *S, 2);
    insert(Ctx, *S, 1); // Duplicate: no delivery.
    co_await quiesce(Ctx, Pool);
    co_return;
  });
  EXPECT_EQ(Deliveries.load(), 4);
  EXPECT_EQ(Sum.load(), 303);
}

TEST(ISet, CascadingHandlersComputeClosure) {
  // Classic LVar idiom: a handler re-inserting f(x) until a fixpoint -
  // computes the closure of {1} under x -> 2x (mod 100).
  auto S = runParThenFreeze<D>([](ParCtx<D> Ctx) -> Par<
                                   std::shared_ptr<ISet<int>>> {
    auto Set = newISet<int>(Ctx);
    auto Pool = newPool(Ctx);
    // Self-referential handler: capture a non-owning pointer, or the
    // closure stored inside the set would keep the set alive forever
    // (shared_ptr cycle; see the ownership note in HandlerPool.h).
    ISet<int> *SetP = Set.get();
    [[maybe_unused]] HandlerHandle H =
        addHandler(Ctx, Pool, *Set, [SetP](ParCtx<D> C, const int &V) -> Par<void> {
          insert(C, *SetP, (V * 2) % 100);
          co_return;
        });
    insert(Ctx, *Set, 1);
    co_await quiesce(Ctx, Pool);
    co_return Set;
  });
  // Orbit of 1 under doubling mod 100: 1,2,4,8,16,32,64,28,56,12,24,48,96,
  // 92,84,68,36,72,44,88,76,52,4(cycle)...
  EXPECT_TRUE(S->containsElem(1));
  EXPECT_TRUE(S->containsElem(64));
  EXPECT_TRUE(S->containsElem(96));
  EXPECT_FALSE(S->containsElem(3));
}

// -- IMap -------------------------------------------------------------------

TEST(IMap, ShoppingCartAppendixExample) {
  // The paper's appendix A example: deterministically prints 2.
  enum class Item { Book, Shoes };
  struct ItemHash {
    uint64_t operator()(Item I) const {
      return mix64(static_cast<uint64_t>(I));
    }
  };
  int R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        auto Cart = std::make_shared<IMap<Item, int, ItemHash>>(
            Ctx.sessionId());
        fork(Ctx, [Cart](ParCtx<D> C) -> Par<void> {
          Cart->insertKV(Item::Book, 2, C.task());
          co_return;
        });
        fork(Ctx, [Cart](ParCtx<D> C) -> Par<void> {
          Cart->insertKV(Item::Shoes, 1, C.task());
          co_return;
        });
        int N = co_await get(Ctx, *Cart, Item::Book);
        co_return N;
      },
      SchedulerConfig{2});
  EXPECT_EQ(R, 2);
}

TEST(IMap, EqualReinsertIsIdempotent) {
  runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
    auto M = newEmptyMap<int, int>(Ctx);
    insert(Ctx, *M, 1, 10);
    insert(Ctx, *M, 1, 10); // Same value: fine.
    int V = co_await get(Ctx, *M, 1);
    EXPECT_EQ(V, 10);
    co_return;
  });
}

TEST(IMap, WaitMapSizeAndFreeze) {
  auto Entries = runParIO<Eff::QuasiDet>(
      [](ParCtx<Eff::QuasiDet> Ctx) -> Par<std::vector<std::pair<int, int>>> {
        auto M = newEmptyMap<int, int>(Ctx);
        for (int I = 0; I < 5; ++I)
          fork(Ctx, [M, I](ParCtx<Eff::QuasiDet> C) -> Par<void> {
            insert(C, *M, I, I * I);
            co_return;
          });
        co_await waitSize(Ctx, *M, 5);
        co_return freezeMap(Ctx, *M);
      });
  ASSERT_EQ(Entries.size(), 5u);
  for (int I = 0; I < 5; ++I) {
    EXPECT_EQ(Entries[static_cast<size_t>(I)].first, I);
    EXPECT_EQ(Entries[static_cast<size_t>(I)].second, I * I);
  }
}

TEST(IMap, HandlersSeePreexistingAndNewBindings) {
  std::atomic<int> Seen{0};
  runParIO<Eff::FullIO>([&](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
    auto M = newEmptyMap<int, int>(Ctx);
    auto Pool = newPool(Ctx);
    insert(Ctx, *M, 1, 1);
    [[maybe_unused]] HandlerHandle H =
        addHandler(Ctx, Pool, *M,
                   [&Seen](ParCtx<Eff::FullIO> C,
                           const std::pair<int, int> &KV) -> Par<void> {
                     Seen.fetch_add(KV.second);
                     co_return;
                   });
    insert(Ctx, *M, 2, 10);
    co_await quiesce(Ctx, Pool);
    co_return;
  });
  EXPECT_EQ(Seen.load(), 11);
}

// -- Counter ------------------------------------------------------------

TEST(Counter, ConcurrentBumpsAllLand) {
  // 8 tasks x 1000 bumps: exactly-once RMW means the total is exact, not
  // merely monotone (this is what lub-only LVars cannot express).
  uint64_t Total = runParIO<Eff::FullIO>(
      [](ParCtx<Eff::FullIO> Ctx) -> Par<uint64_t> {
        auto C = newCounter(Ctx);
        auto DoneCount = newCounter(Ctx);
        for (int T = 0; T < 8; ++T)
          fork(Ctx, [C, DoneCount](ParCtx<Eff::FullIO> Cc) -> Par<void> {
            for (int I = 0; I < 1000; ++I)
              incrCounter(Cc, *C);
            incrCounter(Cc, *DoneCount);
            co_return;
          });
        co_await get(Ctx, *DoneCount, 8);
        co_return freezeCounter(Ctx, *C);
      },
      SchedulerConfig{4});
  EXPECT_EQ(Total, 8000u);
}

TEST(Counter, ThresholdReadReturnsThresholdOnly) {
  uint64_t R = runPar<DB>(
      [](ParCtx<DB> Ctx) -> Par<uint64_t> {
        auto C = newCounter(Ctx);
        fork(Ctx, [C](ParCtx<DB> Cc) -> Par<void> {
          for (int I = 0; I < 100; ++I)
            incrCounter(Cc, *C, 2);
          co_return;
        });
        // Unblocks somewhere between 10 and 200; must return exactly 10.
        uint64_t V = co_await get(Ctx, *C, 10);
        co_return V;
      },
      SchedulerConfig{2});
  EXPECT_EQ(R, 10u);
}

// Compile-time property probe: must be a template so an unusable `put`
// yields false rather than a hard error.
template <typename LVarT>
constexpr bool SupportsPut =
    requires(ParCtx<Eff::FullIO> C, LVarT &LV, uint64_t V) {
      put(C, LV, V);
    };

TEST(Counter, HasNoPutInterface) {
  // Counter deliberately exposes no put; IVar does. (If the first ever
  // flips, the put/bump separation of Section 3 broke.)
  static_assert(!SupportsPut<Counter>);
  static_assert(SupportsPut<IVar<uint64_t>>);
  SUCCEED();
}

TEST(CounterVec, PerCellBumpsAndSnapshot) {
  auto Snap = runParIO<Eff::FullIO>(
      [](ParCtx<Eff::FullIO> Ctx) -> Par<std::vector<uint64_t>> {
        auto CV = newCounterVec(Ctx, 16);
        // Named body: GCC 12 co_await temporary discipline (see Par.h).
        auto Body = [CV](ParCtx<Eff::FullIO> C, size_t I) -> Par<void> {
          incrCounterAt(C, *CV, I % 16);
          co_return;
        };
        co_await parallelForPar(Ctx, 0, 64, 1, Body);
        co_return freezeCounterVec(Ctx, *CV);
      },
      SchedulerConfig{4});
  ASSERT_EQ(Snap.size(), 16u);
  for (uint64_t V : Snap)
    EXPECT_EQ(V, 4u);
}

// -- IStructure -------------------------------------------------------------

TEST(IStructure, DataflowArray) {
  // Slot i+1 depends on slot i: a chain of blocking reads.
  int Last = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        constexpr size_t N = 64;
        auto A = newIStructure<int>(Ctx, N);
        for (size_t I = 1; I < N; ++I)
          fork(Ctx, [A, I](ParCtx<D> C) -> Par<void> {
            int Prev = co_await get(C, *A, I - 1);
            putIdx(C, *A, I, Prev + 1);
          });
        putIdx(Ctx, *A, 0, 1);
        int V = co_await get(Ctx, *A, N - 1);
        co_return V;
      },
      SchedulerConfig{4});
  EXPECT_EQ(Last, 64);
}

} // namespace
