//===- PhybinTest.cpp - PhyBin substrate tests ------------------------------===//
//
// Newick round-trips, bipartition extraction, the three RF-distance
// implementations (cross-checked against each other and against hand
// calculations), determinism of the parallel version across schedules,
// tree generation, and clustering.
//
//===----------------------------------------------------------------------===//

#include "src/phybin/Bipartition.h"
#include "src/phybin/Cluster.h"
#include "src/phybin/Newick.h"
#include "src/phybin/RFDistance.h"
#include "src/phybin/TreeGen.h"

#include <gtest/gtest.h>

using namespace lvish;
using namespace lvish::phybin;

namespace {

TreeSet parseForest(const char *Text) {
  TreeSet TS;
  NewickError E = parseNewickForest(Text, TS);
  EXPECT_TRUE(E.ok()) << E.Message << " at offset " << E.Offset;
  return TS;
}

// -- Newick -----------------------------------------------------------------

TEST(Newick, ParsesSimpleTree) {
  std::vector<std::string> Species;
  PhyloTree T;
  NewickError E = parseNewick("(A,(B,C));", T, Species);
  ASSERT_TRUE(E.ok()) << E.Message;
  EXPECT_TRUE(T.validate());
  EXPECT_EQ(Species.size(), 3u);
  EXPECT_EQ(T.countLeaves(), 3u);
}

TEST(Newick, ParsesBranchLengthsAndQuotedLabels) {
  std::vector<std::string> Species;
  PhyloTree T;
  NewickError E =
      parseNewick("('species one':0.5,(B:1e-3,C):2.25)Root;", T, Species);
  ASSERT_TRUE(E.ok()) << E.Message;
  EXPECT_TRUE(T.validate());
  EXPECT_EQ(Species[0], "species one");
}

TEST(Newick, RoundTripPreservesTopology) {
  std::vector<std::string> Species;
  PhyloTree T;
  ASSERT_TRUE(parseNewick("((A,B),(C,(D,E)));", T, Species).ok());
  std::string Printed = printNewick(T, Species);
  PhyloTree T2;
  std::vector<std::string> Species2;
  ASSERT_TRUE(parseNewick(Printed, T2, Species2).ok());
  // Topology equality via canonical bipartition sets.
  EXPECT_EQ(extractBipartitions(T, Species.size()),
            extractBipartitions(T2, Species2.size()));
}

TEST(Newick, ReportsErrorsWithOffset) {
  std::vector<std::string> Species;
  PhyloTree T;
  NewickError E = parseNewick("(A,(B,C)", T, Species);
  EXPECT_FALSE(E.ok());
  EXPECT_NE(E.Offset, std::string::npos);
}

TEST(Newick, ForestSharesSpeciesTable) {
  TreeSet TS = parseForest("(A,(B,C));((A,B),C);");
  EXPECT_EQ(TS.numTrees(), 2u);
  EXPECT_EQ(TS.numSpecies(), 3u);
  EXPECT_TRUE(TS.validate());
}

// -- Bipartitions ---------------------------------------------------------

TEST(Bipartition, CanonicalizationMergesComplements) {
  DenseLabelSet A(5), B(5);
  A.set(0);
  A.set(1); // {0,1} -> complement {2,3,4} after canonicalization.
  B.set(2);
  B.set(3);
  B.set(4);
  canonicalizeBipartition(A);
  canonicalizeBipartition(B);
  EXPECT_EQ(A, B);
}

TEST(Bipartition, FiveLeafCaterpillarHasTwoNontrivialSplits) {
  // ((A,B),(C,(D,E))) over 5 species: internal edges {A,B} and {D,E}.
  TreeSet TS = parseForest("((A,B),(C,(D,E)));");
  auto Bips = extractBipartitions(TS.Trees[0], 5);
  EXPECT_EQ(Bips.size(), 2u);
}

TEST(Bipartition, IdenticalTreesGiveIdenticalSets) {
  // Same unrooted topology written with different rootings/orders.
  TreeSet TS = parseForest("((A,B),(C,D));((B,A),(D,C));");
  auto B0 = extractBipartitions(TS.Trees[0], TS.numSpecies());
  auto B1 = extractBipartitions(TS.Trees[1], TS.numSpecies());
  EXPECT_EQ(B0, B1);
}

TEST(Bipartition, SymmetricDifferenceHandCheck) {
  // ((A,B),(C,D)) vs ((A,C),(B,D)): each has one nontrivial split and
  // they differ -> RF distance 2.
  TreeSet TS = parseForest("((A,B),(C,D));((A,C),(B,D));");
  auto B0 = extractBipartitions(TS.Trees[0], 4);
  auto B1 = extractBipartitions(TS.Trees[1], 4);
  EXPECT_EQ(symmetricDifferenceSize(B0, B1), 2u);
  EXPECT_EQ(symmetricDifferenceSize(B0, B0), 0u);
}

// -- RF distance ------------------------------------------------------------

TEST(RFDistance, HandComputedMatrix) {
  TreeSet TS =
      parseForest("((A,B),(C,D));((A,C),(B,D));((A,B),(C,D));");
  DistanceMatrix D = rfNaivePairwise(TS);
  EXPECT_EQ(D.at(0, 1), 2u);
  EXPECT_EQ(D.at(0, 2), 0u); // Identical topologies.
  EXPECT_EQ(D.at(1, 2), 2u);
  EXPECT_EQ(D.at(1, 0), 2u); // Symmetric.
}

TEST(RFDistance, ThreeImplementationsAgreeOnRandomSets) {
  for (uint64_t Seed : {1ull, 42ull, 777ull}) {
    TreeSet TS = generateTreeSet(/*NumTrees=*/12, /*NumSpecies=*/16,
                                 /*MutationsPerTree=*/3, Seed);
    ASSERT_TRUE(TS.validate());
    DistanceMatrix Naive = rfNaivePairwise(TS);
    DistanceMatrix Hash = rfHashRFSequential(TS);
    DistanceMatrix Par = rfHashRFParallel(TS, SchedulerConfig{2});
    EXPECT_EQ(Naive, Hash) << "seed " << Seed;
    EXPECT_EQ(Naive, Par) << "seed " << Seed;
  }
}

TEST(RFDistance, MetricAxiomsOnRandomSet) {
  TreeSet TS = generateTreeSet(10, 12, 4, 99);
  DistanceMatrix D = rfNaivePairwise(TS);
  size_t N = TS.numTrees();
  for (size_t I = 0; I < N; ++I) {
    EXPECT_EQ(D.at(I, I), 0u);
    for (size_t J = 0; J < N; ++J) {
      EXPECT_EQ(D.at(I, J), D.at(J, I));
      for (size_t K = 0; K < N; ++K)
        EXPECT_LE(D.at(I, K), D.at(I, J) + D.at(J, K)) << "triangle";
    }
  }
}

TEST(RFDistance, ParallelIsDeterministicAcrossSchedules) {
  TreeSet TS = generateTreeSet(15, 20, 5, 2024);
  DistanceMatrix Ref = rfHashRFParallel(TS, SchedulerConfig{1});
  for (unsigned W : {2u, 3u, 4u}) {
    SchedulerConfig Cfg;
    Cfg.NumWorkers = W;
    Cfg.StealSeed = W * 7919;
    EXPECT_EQ(rfHashRFParallel(TS, Cfg), Ref) << "workers " << W;
  }
}

TEST(RFDistance, MutationsIncreaseDistanceFromBase) {
  // Trees with more NNI mutations should (on average) be farther from
  // each other than near-identical ones.
  TreeSet Light = generateTreeSet(8, 24, 1, 5);
  TreeSet Heavy = generateTreeSet(8, 24, 24, 5);
  auto AvgDist = [](const TreeSet &TS) {
    DistanceMatrix D = rfNaivePairwise(TS);
    double Sum = 0;
    size_t N = TS.numTrees(), Count = 0;
    for (size_t I = 0; I < N; ++I)
      for (size_t J = I + 1; J < N; ++J) {
        Sum += D.at(I, J);
        ++Count;
      }
    return Sum / static_cast<double>(Count);
  };
  EXPECT_LT(AvgDist(Light), AvgDist(Heavy));
}

// -- Tree generation --------------------------------------------------------

TEST(TreeGen, GeneratedSetsAreValidAndDeterministic) {
  TreeSet A = generateTreeSet(6, 10, 2, 123);
  TreeSet B = generateTreeSet(6, 10, 2, 123);
  ASSERT_TRUE(A.validate());
  EXPECT_EQ(rfNaivePairwise(A), rfNaivePairwise(B)); // Same seed, same set.
  TreeSet C = generateTreeSet(6, 10, 2, 124);
  EXPECT_FALSE(rfNaivePairwise(A) == rfNaivePairwise(C));
}

TEST(TreeGen, NNIPreservesValidity) {
  SplitMix64 Rng(7);
  PhyloTree T = randomBinaryTree(20, Rng);
  ASSERT_TRUE(T.validate());
  mutateNNI(T, 50, Rng);
  std::string Err;
  EXPECT_TRUE(T.validate(&Err)) << Err;
  EXPECT_EQ(T.countLeaves(), 20u);
}

TEST(TreeGen, NNIChangesTopology) {
  SplitMix64 Rng(11);
  PhyloTree Base = randomBinaryTree(16, Rng);
  PhyloTree Mut = Base;
  mutateNNI(Mut, 8, Rng);
  auto B0 = extractBipartitions(Base, 16);
  auto B1 = extractBipartitions(Mut, 16);
  EXPECT_NE(symmetricDifferenceSize(B0, B1), 0u);
}

// -- Clustering ---------------------------------------------------------

TEST(Cluster, PerfectlySeparatedBins) {
  // Two groups of identical trees, far apart: the cut must find exactly
  // the two bins.
  TreeSet TS = parseForest("((A,B),((C,D),(E,F)));"
                           "((A,B),((C,D),(E,F)));"
                           "(((A,C),(B,E)),(D,F));"
                           "(((A,C),(B,E)),(D,F));");
  DistanceMatrix D = rfNaivePairwise(TS);
  Dendrogram Dend = clusterSingleLinkage(D);
  std::vector<size_t> Bins = cutClusters(Dend, 0.0);
  EXPECT_EQ(Bins[0], Bins[1]);
  EXPECT_EQ(Bins[2], Bins[3]);
  EXPECT_NE(Bins[0], Bins[2]);
}

TEST(Cluster, CutAtInfinityIsOneBin) {
  TreeSet TS = generateTreeSet(10, 12, 3, 3);
  DistanceMatrix D = rfNaivePairwise(TS);
  Dendrogram Dend = clusterSingleLinkage(D);
  std::vector<size_t> Bins = cutClusters(Dend, 1e9);
  for (size_t B : Bins)
    EXPECT_EQ(B, 0u);
}

TEST(Cluster, CutAtNegativeIsAllSingletons) {
  TreeSet TS = generateTreeSet(7, 12, 6, 8);
  DistanceMatrix D = rfNaivePairwise(TS);
  Dendrogram Dend = clusterSingleLinkage(D);
  std::vector<size_t> Bins = cutClusters(Dend, -1.0);
  std::set<size_t> Uniq(Bins.begin(), Bins.end());
  // Distinct topologies => distinct singleton bins (identical trees may
  // merge at height 0, which -1 excludes entirely).
  EXPECT_EQ(Uniq.size(), Bins.size());
}

TEST(Cluster, SingleLinkageMergesAtMinimumDistance) {
  // Three trees where 0 and 1 are close, 2 is far: the dendrogram must
  // merge 0-1 below the height it merges 2.
  TreeSet TS = parseForest("((A,B),((C,D),(E,F)));"
                           "((A,B),((C,E),(D,F)));"
                           "(((A,E),(C,F)),(B,D));");
  DistanceMatrix D = rfNaivePairwise(TS);
  // Precondition for the single-linkage claim: tree 2 is strictly farther
  // from BOTH others than they are from each other (no chaining).
  ASSERT_LT(D.at(0, 1), D.at(0, 2));
  ASSERT_LT(D.at(0, 1), D.at(1, 2));
  Dendrogram Dend = clusterSingleLinkage(D);
  std::vector<size_t> Close = cutClusters(Dend, D.at(0, 1));
  EXPECT_EQ(Close[0], Close[1]);
  EXPECT_NE(Close[0], Close[2]);
}

TEST(Cluster, FormatIsStable) {
  std::vector<size_t> Assign{0, 0, 1, 0, 1};
  EXPECT_EQ(formatClusters(Assign),
            "bin 0 (3 trees): 0 1 3\nbin 1 (2 trees): 2 4\n");
}

} // namespace
