//===- PureMapTest.cpp - PureMap and general threshold functions -----------===//

#include "src/core/LVish.h"
#include "src/data/PureMap.h"

#include <gtest/gtest.h>

#include <string>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;

TEST(PureMap, AppendixQuickstartShape) {
  // The appendix program on the PureMap variant: prints 2.
  int R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        auto Cart = newEmptyPureMap<std::string, int>(Ctx);
        fork(Ctx, [Cart](ParCtx<D> C) -> Par<void> {
          insertPure(C, *Cart, std::string("Book"), 2);
          co_return;
        });
        fork(Ctx, [Cart](ParCtx<D> C) -> Par<void> {
          insertPure(C, *Cart, std::string("Shoes"), 1);
          co_return;
        });
        int N = co_await get(Ctx, *Cart, std::string("Book"));
        co_return N;
      },
      SchedulerConfig{2});
  EXPECT_EQ(R, 2);
}

TEST(PureMap, EqualRebindIsIdempotent) {
  runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
    auto M = newEmptyPureMap<int, int>(Ctx);
    insertPure(Ctx, *M, 1, 10);
    insertPure(Ctx, *M, 1, 10);
    int V = co_await get(Ctx, *M, 1);
    EXPECT_EQ(V, 10);
    co_return;
  });
}

TEST(PureMapDeathTest, ConflictingRebindHitsTop) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        auto M = newEmptyPureMap<int, int>(Ctx);
        insertPure(Ctx, *M, 1, 10);
        insertPure(Ctx, *M, 1, 11);
        co_return;
      }),
      "lattice top");
}

TEST(PureMap, WaitSizeThreshold) {
  size_t N = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<size_t> {
        auto M = newEmptyPureMap<int, int>(Ctx);
        for (int I = 0; I < 6; ++I)
          fork(Ctx, [M, I](ParCtx<D> C) -> Par<void> {
            insertPure(C, *M, I, I * I);
            co_return;
          });
        size_t Seen = co_await waitSize(Ctx, *M, 6);
        co_return Seen;
      },
      SchedulerConfig{3});
  EXPECT_EQ(N, 6u);
}

TEST(PureMap, FreezeAfterQuiescenceReadsExactContents) {
  auto M = runParThenFreeze<D>(
      [](ParCtx<D> Ctx) -> Par<std::shared_ptr<PureMap<int, int>>> {
        auto Map = newEmptyPureMap<int, int>(Ctx);
        for (int I = 0; I < 5; ++I)
          fork(Ctx, [Map, I](ParCtx<D> C) -> Par<void> {
            insertPure(C, *Map, I, 2 * I);
            co_return;
          });
        co_return Map;
      },
      SchedulerConfig{2});
  auto State = M->peek();
  ASSERT_TRUE(State.has_value());
  EXPECT_EQ(State->size(), 5u);
  EXPECT_EQ(State->at(3), 6);
}

TEST(PureMap, MapUnionLatticeLaws) {
  using L = MapUnionLattice<int, int>;
  std::vector<L::ValueType> States{
      L::bottom(),
      L::ValueType(std::map<int, int>{{1, 10}}),
      L::ValueType(std::map<int, int>{{2, 20}}),
      L::ValueType(std::map<int, int>{{1, 10}, {2, 20}}),
      L::ValueType(std::map<int, int>{{1, 99}}), // Conflicts with {1,10}.
      std::nullopt,
  };
  for (const auto &A : States) {
    EXPECT_EQ(L::join(A, L::bottom()), A);
    EXPECT_EQ(L::join(A, A), A);
    for (const auto &B : States) {
      EXPECT_EQ(L::join(A, B), L::join(B, A));
      auto J = L::join(A, B);
      EXPECT_EQ(L::join(A, J), J) << "inflationary";
      for (const auto &C : States)
        EXPECT_EQ(L::join(A, L::join(B, C)), L::join(L::join(A, B), C));
    }
  }
  EXPECT_TRUE(L::isTop(L::join(States[1], States[4])));
}

TEST(GeneralThreshold, MonotoneFunctionOnMaxLattice) {
  // A footnote-5 read that cannot be written as a finite trigger set:
  // "the first power of ten the counter reaches".
  unsigned long long R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<unsigned long long> {
        auto LV = newPureLVar<MaxUint64Lattice>(Ctx);
        fork(Ctx, [LV](ParCtx<D> C) -> Par<void> {
          for (unsigned long long V : {3ULL, 40ULL, 999ULL, 1500ULL})
            putPureLVar(C, *LV, V);
          co_return;
        });
        std::function<std::optional<unsigned long long>(
            const unsigned long long &)>
            Fn = [](const unsigned long long &S)
            -> std::optional<unsigned long long> {
          if (S >= 1000)
            return 1000ULL; // Stable above the activation point.
          return std::nullopt;
        };
        unsigned long long V = co_await get(Ctx, *LV, Fn);
        co_return V;
      },
      SchedulerConfig{2});
  EXPECT_EQ(R, 1000u);
}

} // namespace
