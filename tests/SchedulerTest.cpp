//===- SchedulerTest.cpp - Scheduler, scopes, and cancellation plumbing ----===//

#include "src/core/LVish.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;

TEST(Scheduler, StartsAndStopsCleanly) {
  Scheduler Sched(SchedulerConfig{3});
  EXPECT_EQ(Sched.numWorkers(), 3u);
}

TEST(Scheduler, CountsSpawnedTasks) {
  service::Runtime RT({.Sched = {.NumWorkers = 2}});
  RT.run<D>([](ParCtx<D> Ctx) -> Par<void> {
      for (int I = 0; I < 10; ++I)
        fork(Ctx, [](ParCtx<D> C) -> Par<void> { co_return; });
      co_return;
    }).valueOrAbort();
  // Root + 10 children.
  EXPECT_GE(RT.scheduler().stats().TasksCreated, 11u);
}

TEST(Scheduler, ManyFireAndForgetTasksAllRunBeforeSessionEnds) {
  std::atomic<int> Ran{0};
  runPar<D>(
      [&](ParCtx<D> Ctx) -> Par<void> {
        for (int I = 0; I < 500; ++I)
          fork(Ctx, [&Ran](ParCtx<D> C) -> Par<void> {
            Ran.fetch_add(1, std::memory_order_relaxed);
            co_return;
          });
        co_return;
        // Note: the session (not the root) waits for the children.
      },
      SchedulerConfig{4});
  EXPECT_EQ(Ran.load(), 500);
}

TEST(Scheduler, OrphanedBlockedTaskIsReapedNotDeadlocked) {
  // A forked child blocks on an IVar nobody ever fills. LVish semantics:
  // the main computation's result stands; the orphan is collected.
  int R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        auto Never = newIVar<int>(Ctx);
        fork(Ctx, [Never](ParCtx<D> C) -> Par<void> {
          int V = co_await get(C, *Never); // Parks forever.
          (void)V;
        });
        co_return 17;
      },
      SchedulerConfig{2});
  EXPECT_EQ(R, 17);
}

TEST(Scheduler, TraceRecordsSpawnTreeAndWakeEdges) {
  service::RuntimeConfig Cfg;
  Cfg.Sched.NumWorkers = 2;
  Cfg.Sched.EnableTracing = true;
  service::Runtime RT(Cfg);
  RT.run<D>([](ParCtx<D> Ctx) -> Par<void> {
      auto IV = newIVar<int>(Ctx);
      fork(Ctx, [IV](ParCtx<D> C) -> Par<void> {
        put(C, *IV, 1);
        co_return;
      });
      int V = co_await get(Ctx, *IV);
      (void)V;
      co_return;
    }).valueOrAbort();
  TraceRecorder *T = RT.scheduler().trace();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->numTasks(), 2u); // Root + one child.
  // The fork produced at least: root slice (cut at the fork), the child's
  // slice, and a spawn edge from the cut slice to the child's first slice.
  EXPECT_GE(T->slices().size(), 3u);
  EXPECT_GE(T->edges().size(), 2u);
  // Every edge well-formed and acyclic-by-id is checked in SimTest; here
  // just confirm ids are in range.
  for (const TraceEdge &E : T->edges()) {
    EXPECT_LT(E.Src, T->slices().size());
    EXPECT_LT(E.Dst, T->slices().size());
  }
}

TEST(TaskScope, LiveModeCountsParkedTasks) {
  // A Live-mode scope must NOT drain while a member task is merely parked.
  std::atomic<bool> HandlerSawDrainEarly{false};
  runPar<D>(
      [&](ParCtx<D> Ctx) -> Par<void> {
        auto Gate = newIVar<int>(Ctx);
        auto Pool = newPool(Ctx);
        auto Trigger = newPureLVar<MaxUint64Lattice>(Ctx);
        [[maybe_unused]] HandlerHandle H =
            addHandler(Ctx, Pool, *Trigger,
                       [Gate](ParCtx<D> C,
                              const unsigned long long &) -> Par<void> {
                         // Park inside the pool.
                         int V = co_await get(C, *Gate);
                         (void)V;
                       });
        putPureLVar(Ctx, *Trigger, 1ULL);
        // Give the handler a chance to park, then check the pool has not
        // drained (its task is parked, but alive).
        for (int I = 0; I < 10; ++I)
          co_await yield(Ctx);
        if (Pool->Scope.activeCount() == 0)
          HandlerSawDrainEarly.store(true);
        put(Ctx, *Gate, 1);
        co_await quiesce(Ctx, Pool);
        co_return;
      },
      SchedulerConfig{2});
  EXPECT_FALSE(HandlerSawDrainEarly.load());
}

TEST(CancelNode, TransitiveCancellation) {
  auto Root = std::make_shared<CancelNode>();
  auto Mid = std::make_shared<CancelNode>();
  auto Leaf = std::make_shared<CancelNode>();
  Root->addChild(Mid);
  Mid->addChild(Leaf);
  EXPECT_TRUE(Leaf->isLive());
  Root->cancel();
  EXPECT_FALSE(Root->isLive());
  EXPECT_FALSE(Mid->isLive());
  EXPECT_FALSE(Leaf->isLive());
}

TEST(CancelNode, AddChildToDeadParentCancelsChild) {
  auto Parent = std::make_shared<CancelNode>();
  Parent->cancel();
  auto Child = std::make_shared<CancelNode>();
  Parent->addChild(Child);
  EXPECT_FALSE(Child->isLive());
}

TEST(CancelNode, ReadAndCancelConflictDetected) {
  auto N = std::make_shared<CancelNode>();
  EXPECT_FALSE(N->noteRead());
  N->cancel();
  EXPECT_TRUE(N->noteRead());
  EXPECT_TRUE(N->noteCancelConflict());
}

} // namespace
