//===- CheckerTest.cpp - Dynamic determinism checkers ----------------------===//
//
// Tests for src/check/: the LatticeChecker (join laws, threshold-set
// incompatibility), the DisjointnessChecker (shadow interval map of ParST
// extents), and the EffectAuditor (declared-vs-performed effect masks).
// Each checker must catch a deliberately seeded violation, and the
// law-abiding equivalent must stay silent.
//
// Bodies are gated on LVISH_CHECK: in Release/RelWithDebInfo builds (where
// the checkers compile to nothing) the tests skip instead of failing, so
// the default tier-1 run stays green while the Debug configuration
// exercises everything.
//
//===----------------------------------------------------------------------===//

#include "src/core/LVish.h"
#include "src/data/Counter.h"
#include "src/trans/Transformers.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;

#if LVISH_CHECK

// -- Recording harness --------------------------------------------------

std::mutex RecMutex;
std::vector<std::pair<check::ViolationKind, std::string>> Recorded;

void recordViolation(const check::ViolationReport &R) {
  std::lock_guard<std::mutex> Lock(RecMutex);
  Recorded.emplace_back(R.Kind, std::string(R.Message));
}

/// Installs the recording handler, forces exhaustive sampling, and clears
/// every piece of global checker state between tests.
class CheckerTest : public ::testing::Test {
protected:
  void SetUp() override {
    {
      std::lock_guard<std::mutex> Lock(RecMutex);
      Recorded.clear();
    }
    Prev = check::setViolationHandler(&recordViolation);
    PrevPeriod = check::samplePeriod();
    check::setSamplePeriod(1);
    check::resetViolationCounts();
    check::DisjointnessChecker::instance().clearAllExtents();
  }
  void TearDown() override {
    check::setViolationHandler(Prev);
    check::setSamplePeriod(PrevPeriod);
    check::resetViolationCounts();
    check::DisjointnessChecker::instance().clearAllExtents();
  }

  static size_t recordedCount(check::ViolationKind K) {
    std::lock_guard<std::mutex> Lock(RecMutex);
    size_t N = 0;
    for (const auto &R : Recorded)
      if (R.first == K)
        ++N;
    return N;
  }

  static bool recordedMessageContains(const char *Needle) {
    std::lock_guard<std::mutex> Lock(RecMutex);
    for (const auto &R : Recorded)
      if (R.second.find(Needle) != std::string::npos)
        return true;
    return false;
  }

  check::ViolationHandler Prev = nullptr;
  uint64_t PrevPeriod = 64;
};

// -- LatticeChecker -----------------------------------------------------

/// Deliberately broken: "first argument wins" is neither commutative nor
/// an upper bound of its operands.
struct FirstWinsLattice {
  using ValueType = int;
  static ValueType bottom() { return 0; }
  static ValueType join(ValueType A, ValueType B) {
    (void)B;
    return A;
  }
};

TEST_F(CheckerTest, NonCommutativeJoinCaught) {
  runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
    auto LV = newPureLVar<FirstWinsLattice>(Ctx);
    putPureLVar(Ctx, *LV, 5);
    co_return;
  });
  EXPECT_GE(check::violationCount(check::ViolationKind::LatticeLaw), 1u);
  EXPECT_TRUE(recordedMessageContains("not commutative"));
}

TEST_F(CheckerTest, LawAbidingLatticeSilent) {
  runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
    auto LV = newPureLVar<MaxUint64Lattice>(Ctx);
    for (unsigned long long V = 1; V <= 32; ++V)
      putPureLVar(Ctx, *LV, V);
    co_return;
  });
  EXPECT_EQ(check::violationCount(check::ViolationKind::LatticeLaw), 0u);
}

TEST_F(CheckerTest, BumpOverflowCaught) {
  runPar<Eff::DetBump>([](ParCtx<Eff::DetBump> Ctx) -> Par<void> {
    auto C = newCounter(Ctx);
    incrCounter(Ctx, *C, ~0ull); // Counter now sits at the very top...
    incrCounter(Ctx, *C, 2);     // ...so this bump wraps: not inflationary.
    co_return;
  });
  EXPECT_GE(check::violationCount(check::ViolationKind::LatticeLaw), 1u);
  EXPECT_TRUE(recordedMessageContains("overflowed"));
}

TEST_F(CheckerTest, InRangeBumpsSilent) {
  runPar<Eff::DetBump>([](ParCtx<Eff::DetBump> Ctx) -> Par<void> {
    auto C = newCounter(Ctx);
    for (int I = 0; I < 100; ++I)
      incrCounter(Ctx, *C);
    co_return;
  });
  EXPECT_EQ(check::violationCount(check::ViolationKind::LatticeLaw), 0u);
}

/// Four-point diamond encoded as bits: 0 = bottom, 1/2 = incomparable
/// middle states, 3 = top. Join is bitwise or.
struct DiamondLattice {
  using ValueType = unsigned;
  static ValueType bottom() { return 0; }
  static ValueType join(ValueType A, ValueType B) { return A | B; }
  static bool isTop(ValueType V) { return V == 3; }
};

TEST_F(CheckerTest, CompatibleThresholdSetsCaught) {
  // {1} and {1} are trivially compatible (join is 1, not top): a read
  // could activate on either index depending on schedule.
  PureLVar<DiamondLattice>::checkPairwiseIncompatible({{1u}, {1u}});
  EXPECT_GE(check::violationCount(check::ViolationKind::ThresholdSet), 1u);
  EXPECT_TRUE(recordedMessageContains("compatible"));
}

TEST_F(CheckerTest, EmptyThresholdSetCaught) {
  PureLVar<DiamondLattice>::checkPairwiseIncompatible({{1u}, {}});
  EXPECT_GE(check::violationCount(check::ViolationKind::ThresholdSet), 1u);
  EXPECT_TRUE(recordedMessageContains("empty"));
}

TEST_F(CheckerTest, IncompatibleThresholdSetsSilent) {
  // {1} vs {2}: their lub is 3 = top - a legal threshold read.
  PureLVar<DiamondLattice>::checkPairwiseIncompatible({{1u}, {2u}});
  EXPECT_EQ(check::violationCount(check::ViolationKind::ThresholdSet), 0u);
}

TEST_F(CheckerTest, ThresholdReadThroughGetIsValidated) {
  // End-to-end: the compatible pair is caught at get registration.
  runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
    auto LV = newPureLVar<DiamondLattice>(Ctx);
    putPureLVar(Ctx, *LV, 1u);
    ThresholdSets<unsigned> Sets{{1u}, {1u}};
    size_t Idx = co_await get(Ctx, *LV, Sets);
    EXPECT_EQ(Idx, 0u);
    co_return;
  });
  EXPECT_GE(check::violationCount(check::ViolationKind::ThresholdSet), 1u);
}

// -- DisjointnessChecker ------------------------------------------------

TEST_F(CheckerTest, OverlappingExtentRegistrationCaught) {
  auto &DC = check::DisjointnessChecker::instance();
  int Storage[16];
  int CellA, CellB; // Addresses double as distinct ownership scopes.
  DC.registerExtent(&Storage[0], &Storage[8], &CellA, 0, "test left");
  // Overlaps [4, 8) of the first extent but claims a different scope.
  DC.registerExtent(&Storage[4], &Storage[12], &CellB, 0, "test right");
  EXPECT_GE(check::violationCount(check::ViolationKind::Disjointness), 1u);
  EXPECT_TRUE(recordedMessageContains("overlaps"));
}

TEST_F(CheckerTest, AccessClassification) {
  auto &DC = check::DisjointnessChecker::instance();
  int Storage[16];
  int CellA, CellB;
  DC.registerExtent(&Storage[0], &Storage[8], &CellA, 7, "test extent");
  EXPECT_EQ(DC.classifyAccess(&Storage[2], &Storage[3], &CellA, 7),
            check::AccessStatus::Ok);
  EXPECT_EQ(DC.classifyAccess(&Storage[2], &Storage[3], &CellA, 6),
            check::AccessStatus::Stale);
  EXPECT_EQ(DC.classifyAccess(&Storage[2], &Storage[3], &CellB, 7),
            check::AccessStatus::ForeignOwner);
  EXPECT_EQ(DC.classifyAccess(&Storage[12], &Storage[13], &CellA, 7),
            check::AccessStatus::Unknown);
}

TEST_F(CheckerTest, CleanRunParVecDrainsExtents) {
  auto &DC = check::DisjointnessChecker::instance();
  int Sum = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        co_return co_await runParVec(
            Ctx, 64, 1,
            [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<int> {
              auto Child = [](ParCtx<Eff::DetST> C2,
                              VecView<int> Half) -> Par<void> {
                Half.fill(2);
                co_return;
              };
              co_await forkSTSplit(C, V, 32, Child, Child);
              int S = 0;
              for (size_t I = 0; I < V.size(); ++I)
                S += V.readChecked(I);
              co_return S;
            });
      },
      SchedulerConfig{2});
  EXPECT_EQ(Sum, 128);
  EXPECT_EQ(check::violationCount(check::ViolationKind::Disjointness), 0u);
  // Every extent registered by runParVec/forkSTSplit was released again.
  EXPECT_EQ(DC.liveExtentCount(), 0u);
}

TEST_F(CheckerTest, NestedZoomAndTempBufferDrain) {
  auto &DC = check::DisjointnessChecker::instance();
  runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
    co_await runParVec(
        Ctx, 32, 0, [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<void> {
          auto Inner = [](ParCtx<Eff::DetST> C2,
                          VecView<int> Sub) -> Par<void> {
            Sub.fill(9);
            co_return;
          };
          co_await zoomIn(C, V, 8, 24, Inner);
          auto WithTmp = [](ParCtx<Eff::DetST> C2, VecView<int> S,
                            VecView<int> Tmp) -> Par<void> {
            Tmp.fill(1);
            S.writeChecked(0, Tmp.readChecked(0));
            co_return;
          };
          co_await withTempBuffer(C, V, 16, WithTmp);
          EXPECT_EQ(V.readChecked(8), 9);
          EXPECT_EQ(V.readChecked(0), 1);
          co_return;
        });
    co_return;
  });
  EXPECT_EQ(check::violationCount(check::ViolationKind::Disjointness), 0u);
  EXPECT_EQ(DC.liveExtentCount(), 0u);
}

// -- EffectAuditor ------------------------------------------------------

TEST_F(CheckerTest, ReadOnlyCancelableChildWriteCaught) {
  // The Section 6.1 safety condition: a cancellable child must be
  // read-only. Going through the LVar's state method directly bypasses
  // the `requires(hasPut(E))` wrapper - exactly what the audit catches.
  runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        auto Leak = newIVar<int>(Ctx);
        auto Fut = forkCancelable(
            Ctx, [Leak](ParCtx<Eff::ReadOnly> C) -> Par<int> {
              Leak->putValue(42, C.task()); // Undeclared Put effect.
              co_return 1;
            });
        co_return co_await readCFuture(Ctx, Fut);
      },
      SchedulerConfig{2});
  EXPECT_GE(check::violationCount(check::ViolationKind::EffectDiscipline),
            1u);
  EXPECT_TRUE(recordedMessageContains("Put"));
}

TEST_F(CheckerTest, ReadOnlyCancelableChildReadSilent) {
  // The blessed internal result-put of forkCancelable must NOT trip the
  // audit: it is the one write the paper explicitly allows the child.
  int V = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        auto Src = newIVar<int>(Ctx);
        put(Ctx, *Src, 21);
        auto Fut = forkCancelable(
            Ctx, [Src](ParCtx<Eff::ReadOnly> C) -> Par<int> {
              int X = co_await get(C, *Src);
              co_return X * 2;
            });
        co_return co_await readCFuture(Ctx, Fut);
      },
      SchedulerConfig{2});
  EXPECT_EQ(V, 42);
  EXPECT_EQ(check::violationCount(check::ViolationKind::EffectDiscipline),
            0u);
}

TEST_F(CheckerTest, DeclaredEffectsSilentAcrossStructures) {
  // A full deterministic workload across IVar/ISet/IMap with matching
  // static and declared effects produces no audit noise. (The freeze
  // audit is exercised by the whole existing suite running under the
  // checkers, e.g. PhybinTest's freezeCounterVec.)
  runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
    auto IV = newIVar<int>(Ctx);
    auto Set = newISet<int>(Ctx);
    auto Map = newEmptyMap<int, int>(Ctx);
    put(Ctx, *IV, 1);
    insert(Ctx, *Set, 2);
    insert(Ctx, *Map, 3, 4);
    int X = co_await get(Ctx, *IV);
    co_await get(Ctx, *Set, 2);
    int Y = co_await get(Ctx, *Map, 3);
    EXPECT_EQ(X + Y, 5);
    co_return;
  });
  EXPECT_EQ(check::violationCount(check::ViolationKind::EffectDiscipline),
            0u);
}

TEST_F(CheckerTest, MemoROBlessedRequestPutSilent) {
  // getMemoRO's hidden request-put is blessed trusted code (Section 6.2);
  // the audit must stay quiet for a ReadOnly caller.
  int V = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        auto M = makeMemo<int>(
            Ctx, [](ParCtx<Eff::ReadOnly> C, int K) -> Par<int> {
              (void)C;
              co_return K * 10;
            });
        auto Fut = forkCancelable(
            Ctx, [M](ParCtx<Eff::ReadOnly> C) -> Par<int> {
              int R = co_await getMemoRO(C, M, 7);
              co_return R;
            });
        co_return co_await readCFuture(Ctx, Fut);
      },
      SchedulerConfig{2});
  EXPECT_EQ(V, 70);
  EXPECT_EQ(check::violationCount(check::ViolationKind::EffectDiscipline),
            0u);
}

// -- Default (no handler) behavior: violations are fatal ----------------

using CheckerDeathTest = CheckerTest;

TEST_F(CheckerDeathTest, UnhandledViolationAborts) {
  EXPECT_DEATH(
      {
        check::setViolationHandler(nullptr);
        check::setSamplePeriod(1);
        runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
          auto LV = newPureLVar<FirstWinsLattice>(Ctx);
          putPureLVar(Ctx, *LV, 5);
          co_return;
        });
      },
      "determinism violation");
}

#else // !LVISH_CHECK

TEST(CheckerTest, CheckersCompiledOut) {
  GTEST_SKIP() << "LVISH_CHECK is off in this configuration; build with "
                  "-DCMAKE_BUILD_TYPE=Debug or -DLVISH_CHECK=ON";
}

#endif // LVISH_CHECK

} // namespace
