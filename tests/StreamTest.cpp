//===- StreamTest.cpp - Streaming LVars and deterministic backpressure -----===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stream / BoundedStream (DESIGN.md Section 18): the prefix-ordered
/// sequence lattice, producer-owned index appends with hole tracking,
/// unified threshold reads over the prefix length, handler delivery,
/// freeze-to-view, and - the part worth a regression corpus of its own -
/// deterministic backpressure: a BoundedStream consumer's advance that
/// releases several parked producers at once routes the release order
/// through a ScheduleCtl decision (DecisionKind::Backpressure), so the
/// explorer enumerates it and a pinned replay string reproduces a
/// backpressure-ordering race bit-for-bit.
///
/// The pinned corpus entry regenerates like ExploreRegressionTest's:
///
///   LVISH_EXPLORE_REGEN=1 ./StreamTest --gtest_filter='*Regen*'
///
//===----------------------------------------------------------------------===//

#include "src/core/HandlerPool.h"
#include "src/core/LVish.h"
#include "src/data/Counter.h"
#include "src/data/Stream.h"
#include "src/explore/Explorer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;
constexpr EffectSet Q = Eff::QuasiDet;
constexpr EffectSet IOE = Eff::FullIO;

/// ci.sh runs the explored members with a small budget
/// (LVISH_EXPLORE_SCHEDULES=N), like ExploreTest.
unsigned scheduleBudget(unsigned Def) {
  if (const char *S = std::getenv("LVISH_EXPLORE_SCHEDULES")) {
    unsigned N = static_cast<unsigned>(std::strtoul(S, nullptr, 10));
    if (N > 0)
      return N;
  }
  return Def;
}

// -- Unbounded Stream basics -----------------------------------------------

TEST(StreamTest, OutOfOrderPutsJoinIntoPrefix) {
  auto O = tryRunPar<D>([](ParCtx<D> Ctx) -> Par<int> {
    auto S = newStream<int>(Ctx);
    put(Ctx, *S, 2, 30); // Hole at 0,1: filled prefix stays empty.
    EXPECT_EQ(S->filledNow(), 0u);
    put(Ctx, *S, 0, 10);
    EXPECT_EQ(S->filledNow(), 1u);
    put(Ctx, *S, 1, 20); // Plugs the hole; prefix jumps over cell 2.
    EXPECT_EQ(S->filledNow(), 3u);
    auto Gw = get(Ctx, *S, 3); // Threshold read: element at index N-1.
    int V = co_await Gw;
    co_return V;
  });
  ASSERT_TRUE(O.ok()) << O.fault().Message;
  EXPECT_EQ(O.value(), 30);
}

TEST(StreamTest, DuplicateEqualPutIsIdempotent) {
  auto O = tryRunPar<D>([](ParCtx<D> Ctx) -> Par<int> {
    auto S = newStream<int>(Ctx);
    put(Ctx, *S, 0, 5);
    put(Ctx, *S, 0, 5); // Same index, same value: lattice no-op.
    auto Gw = get(Ctx, *S, 1);
    int V = co_await Gw;
    co_return V;
  });
  ASSERT_TRUE(O.ok()) << O.fault().Message;
  EXPECT_EQ(O.value(), 5);
}

TEST(StreamTest, ConflictingIndexPutFaults) {
  auto O = tryRunPar<D>([](ParCtx<D> Ctx) -> Par<int> {
    auto S = newStream<int>(Ctx);
    put(Ctx, *S, 0, 1);
    put(Ctx, *S, 0, 2); // Per-cell lattice top: deterministic fault.
    co_return 0;
  });
  ASSERT_FALSE(O.ok());
  EXPECT_EQ(O.fault().Code, FaultCode::ConflictingInsert);
}

TEST(StreamTest, WaitSizeBlocksUntilHoleFilled) {
  RunOptions Opts;
  Opts.Config.NumWorkers = 4;
  auto O = tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        auto S = newStream<int>(Ctx);
        put(Ctx, *S, 0, 1);
        put(Ctx, *S, 2, 3); // Prefix stuck at 1 until index 1 lands.
        auto Filler = [S](ParCtx<IOE> C) -> Par<void> {
          co_await yield(C);
          put(C, *S, 1, 2);
        };
        fork(Ctx, Filler);
        auto Ww = waitSize(Ctx, *S, 3);
        co_await Ww;
        EXPECT_GE(S->filledNow(), 3u);
        co_return 7;
      },
      Opts);
  ASSERT_TRUE(O.ok()) << O.fault().Message;
  EXPECT_EQ(O.value(), 7);
}

TEST(StreamTest, FreezeYieldsZeroCopySnapshotView) {
  auto O = tryRunParIO<Q>([](ParCtx<Q> Ctx) -> Par<int> {
    auto S = newStream<int>(Ctx);
    put(Ctx, *S, 0, 4);
    put(Ctx, *S, 1, 5);
    put(Ctx, *S, 3, 9); // Beyond the hole: not part of the frozen prefix.
    auto View = freezeStream(Ctx, *S);
    EXPECT_EQ(View.size(), 2u);
    EXPECT_FALSE(View.empty());
    co_return View[0] + View[1];
  });
  ASSERT_TRUE(O.ok()) << O.fault().Message;
  EXPECT_EQ(O.value(), 9);
}

TEST(StreamTest, PutAfterFreezeFaults) {
  auto O = tryRunParIO<Q>([](ParCtx<Q> Ctx) -> Par<int> {
    auto S = newStream<int>(Ctx);
    put(Ctx, *S, 0, 1);
    auto View = freezeStream(Ctx, *S);
    (void)View;
    put(Ctx, *S, 1, 2);
    co_return 0;
  });
  ASSERT_FALSE(O.ok());
  EXPECT_EQ(O.fault().Code, FaultCode::PutAfterFreeze);
}

// -- Handlers ---------------------------------------------------------------

TEST(StreamTest, HandlersSeeEveryAppendOnceEach) {
  auto O = tryRunParIO<IOE>([](ParCtx<IOE> Ctx) -> Par<uint64_t> {
    auto S = newStream<int>(Ctx);
    auto Sum = newCounter(Ctx);
    auto Pool = newPool(Ctx);
    Counter *Raw = Sum.get();
    auto Handler = [Raw](ParCtx<IOE> C,
                         const StreamDelta<int> &Dl) -> Par<void> {
      incrCounter(C, *Raw, static_cast<uint64_t>(Dl.Value));
      co_return;
    };
    [[maybe_unused]] HandlerHandle H = addHandler(Ctx, Pool, *S, Handler);
    put(Ctx, *S, 4, 50); // Beyond the prefix: handlers still see it.
    for (int I = 0; I < 4; ++I)
      put(Ctx, *S, static_cast<uint64_t>(I), (I + 1) * 10);
    co_await quiesce(Ctx, Pool);
    co_return freezeCounter(Ctx, *Sum);
  });
  ASSERT_TRUE(O.ok()) << O.fault().Message;
  EXPECT_EQ(O.value(), 10u + 20 + 30 + 40 + 50);
}

TEST(StreamTest, LateHandlerRegistrationReplaysExistingElements) {
  auto O = tryRunParIO<IOE>([](ParCtx<IOE> Ctx) -> Par<uint64_t> {
    auto S = newStream<int>(Ctx);
    auto Seen = newCounter(Ctx);
    put(Ctx, *S, 0, 1);
    put(Ctx, *S, 1, 1);
    put(Ctx, *S, 2, 1);
    auto Pool = newPool(Ctx);
    Counter *Raw = Seen.get();
    auto Handler = [Raw](ParCtx<IOE> C,
                         const StreamDelta<int> &Dl) -> Par<void> {
      (void)Dl;
      incrCounter(C, *Raw, 1);
      co_return;
    };
    [[maybe_unused]] HandlerHandle H = addHandler(Ctx, Pool, *S, Handler);
    co_await quiesce(Ctx, Pool);
    co_return freezeCounter(Ctx, *Seen);
  });
  ASSERT_TRUE(O.ok()) << O.fault().Message;
  EXPECT_EQ(O.value(), 3u);
}

// -- BoundedStream: threaded pipelines --------------------------------------

constexpr int PipeN = 64;

TEST(StreamTest, BoundedProducerConsumerPipelineThreaded) {
  RunOptions Opts;
  Opts.Config.NumWorkers = 4;
  for (int Run = 0; Run < 5; ++Run) {
    auto O = tryRunParIO<IOE>(
        [](ParCtx<IOE> Ctx) -> Par<int> {
          auto BS = newBoundedStream<int>(Ctx, 2);
          auto Producer = [BS](ParCtx<IOE> C) -> Par<void> {
            for (int I = 0; I < PipeN; ++I) {
              auto Pw = put(C, *BS, static_cast<uint64_t>(I), I);
              co_await Pw;
            }
          };
          fork(Ctx, Producer);
          int Sum = 0;
          for (int I = 0; I < PipeN; ++I) {
            auto Gw = get(Ctx, *BS, static_cast<uint64_t>(I) + 1);
            int V = co_await Gw;
            Sum += V;
            advance(Ctx, *BS, static_cast<uint64_t>(I) + 1);
          }
          co_return Sum;
        },
        Opts);
    ASSERT_TRUE(O.ok()) << "run " << Run << ": " << O.fault().Message;
    EXPECT_EQ(O.value(), PipeN * (PipeN - 1) / 2) << "run " << Run;
  }
}

TEST(StreamTest, TwoStagePipelineThreaded) {
  // parse -> transform -> aggregate across two chained bounded stages,
  // each stage a forked task, the root aggregating. The ETL bench's
  // shape, shrunk to a deterministic unit check.
  RunOptions Opts;
  Opts.Config.NumWorkers = 4;
  auto O = tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        auto Raw = newBoundedStream<int>(Ctx, 4);
        auto Cooked = newBoundedStream<int>(Ctx, 4);
        auto Parse = [Raw](ParCtx<IOE> C) -> Par<void> {
          for (int I = 0; I < 32; ++I) {
            auto Pw = put(C, *Raw, static_cast<uint64_t>(I), I + 1);
            co_await Pw;
          }
        };
        auto Transform = [Raw, Cooked](ParCtx<IOE> C) -> Par<void> {
          for (int I = 0; I < 32; ++I) {
            auto Gw = get(C, *Raw, static_cast<uint64_t>(I) + 1);
            int V = co_await Gw;
            advance(C, *Raw, static_cast<uint64_t>(I) + 1);
            auto Pw = put(C, *Cooked, static_cast<uint64_t>(I), V * 2);
            co_await Pw;
          }
        };
        fork(Ctx, Parse);
        fork(Ctx, Transform);
        int Sum = 0;
        for (int I = 0; I < 32; ++I) {
          auto Gw = get(Ctx, *Cooked, static_cast<uint64_t>(I) + 1);
          int V = co_await Gw;
          Sum += V;
          advance(Ctx, *Cooked, static_cast<uint64_t>(I) + 1);
        }
        co_return Sum;
      },
      Opts);
  ASSERT_TRUE(O.ok()) << O.fault().Message;
  EXPECT_EQ(O.value(), 2 * 32 * 33 / 2);
}

// -- Explored sweeps --------------------------------------------------------

/// Two interleaved producers on a capacity-2 stream, with the consumer
/// granting credits in BATCHES of two - a single advance can then release
/// both parked producers at once, which is the multi-release shape that
/// routes through the backpressure decision. Always sums to the same
/// value, whatever the explorer chooses.
ParOutcome<int> boundedPipelineProgram(const RunOptions &Opts) {
  return tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        auto BS = newBoundedStream<int>(Ctx, 2);
        auto ProduceHalf = [BS](ParCtx<IOE> C, int Lo) -> Par<void> {
          for (int I = Lo; I < 8; I += 2) {
            auto Pw = put(C, *BS, static_cast<uint64_t>(I), I * 3);
            co_await Pw;
          }
        };
        auto PA = [ProduceHalf](ParCtx<IOE> C) -> Par<void> {
          co_await ProduceHalf(C, 0);
        };
        auto PB = [ProduceHalf](ParCtx<IOE> C) -> Par<void> {
          co_await ProduceHalf(C, 1);
        };
        fork(Ctx, PA);
        fork(Ctx, PB);
        int Sum = 0;
        for (int I = 0; I < 8; I += 2) {
          auto G1 = get(Ctx, *BS, static_cast<uint64_t>(I) + 1);
          int V1 = co_await G1;
          auto G2 = get(Ctx, *BS, static_cast<uint64_t>(I) + 2);
          int V2 = co_await G2;
          Sum += V1 + V2;
          advance(Ctx, *BS, static_cast<uint64_t>(I) + 2);
        }
        co_return Sum;
      },
      Opts);
}

constexpr int PipelineSum = 3 * (8 * 7 / 2); // 3 * sum(0..7)

TEST(StreamTest, ExploredPipelineIsDeterministic) {
  // Every random schedule - including those that interleave the two
  // producers so a single advance releases both - lands on the same sum,
  // and at least one schedule in the sweep actually exercised a
  // DecisionKind::Backpressure choice (so the sweep is not vacuous).
  bool SawBackpressure = false;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    explore::Engine Eng = explore::Engine::random(Seed);
    auto O = boundedPipelineProgram(explore::sessionOptions(Eng));
    ASSERT_TRUE(O.ok()) << "seed " << Seed << ": " << O.fault().Message;
    EXPECT_EQ(O.value(), PipelineSum) << "seed " << Seed;
    for (const explore::Decision &Dc : Eng.log())
      SawBackpressure |= Dc.Kind == explore::DecisionKind::Backpressure;
  }
  EXPECT_TRUE(SawBackpressure)
      << "no schedule released 2+ parked producers at once; the sweep "
         "never reached the backpressure decision point";
}

TEST(StreamTest, SearchFindsNoFailureInCleanPipeline) {
  explore::SearchOptions O;
  O.Schedules = scheduleBudget(150);
  O.Shrink = false;
  explore::SearchResult R = explore::searchPct(boundedPipelineProgram, O);
  EXPECT_FALSE(R.Failure.has_value())
      << "clean pipeline failed under " << R.SchedulesRun << " schedules: "
      << (R.Failure ? explore::failureSig(R.Failure->F) : "");
}

// -- The pinned backpressure race -------------------------------------------

/// Two producers park on a full capacity-1 stream; the root's advance
/// releases BOTH at once, and the explorer-chosen release order decides
/// which of their conflicting IVar puts faults ("L" vs "RL" pedigree).
/// The release order is a DecisionKind::Backpressure slot in the log, so
/// the pinned string replays the ordering bit-for-bit.
ParOutcome<int> backpressureRace(const RunOptions &Opts) {
  return tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        auto BS = newBoundedStream<int>(Ctx, 1);
        auto Out = newIVar<int>(Ctx, "bp-out");
        auto Fill = put(Ctx, *BS, 0, 0); // Fills the only capacity slot.
        co_await Fill;
        auto P1 = [BS, Out](ParCtx<IOE> C) -> Par<void> {
          auto Pw = put(C, *BS, 1, 11);
          co_await Pw;
          put(C, *Out, 1);
        };
        auto P2 = [BS, Out](ParCtx<IOE> C) -> Par<void> {
          auto Pw = put(C, *BS, 2, 22);
          co_await Pw;
          put(C, *Out, 2);
        };
        fork(Ctx, P1);
        fork(Ctx, P2);
        co_await yield(Ctx); // Let both producers reach the park.
        co_await yield(Ctx);
        advance(Ctx, *BS, 2); // One credit releases both at once.
        auto Gw = get(Ctx, *Out);
        co_return co_await Gw;
      },
      Opts);
}

/// Replays \p Spec and reports whether the engine's decision log contains
/// a backpressure slot - i.e. the schedule genuinely routed a multi-
/// producer release through ScheduleCtl::onBackpressure.
bool replayExercisesBackpressure(ParOutcome<int> (*Program)(const RunOptions &),
                                 const explore::ReplaySpec &Spec) {
  explore::Engine Eng = explore::Engine::replay(Spec);
  (void)Program(explore::sessionOptions(Eng));
  for (const explore::Decision &Dc : Eng.log())
    if (Dc.Kind == explore::DecisionKind::Backpressure)
      return true;
  return false;
}

struct StreamCorpusEntry {
  const char *Name;
  ParOutcome<int> (*Program)(const RunOptions &);
  const char *Sig;
  const char *Replay;
};

const StreamCorpusEntry StreamCorpus[] = {
    {"backpressure-race", backpressureRace, "conflicting_put@RL",
     "lvx1:w2:h5576823c88d4e3e6:"},
};

TEST(StreamTest, PinnedBackpressureReplayReproduces) {
  for (const StreamCorpusEntry &E : StreamCorpus) {
    SCOPED_TRACE(E.Name);
    auto Spec = explore::decodeReplay(E.Replay);
    ASSERT_TRUE(Spec.has_value()) << "corpus string does not decode";
    EXPECT_TRUE(replayExercisesBackpressure(E.Program, *Spec))
        << "the pinned schedule never hit a Backpressure decision - it "
           "pins the wrong race";
    for (int Rep = 0; Rep < 3; ++Rep) {
      bool BitIdentical = false;
      std::optional<Fault> Flt =
          explore::replaySession(E.Program, *Spec, &BitIdentical);
      ASSERT_TRUE(Flt.has_value()) << "rep " << Rep << ": no fault";
      EXPECT_EQ(explore::failureSig(*Flt), E.Sig) << "rep " << Rep;
      EXPECT_TRUE(BitIdentical)
          << "rep " << Rep << ": schedule hash diverged from the corpus";
    }
  }
}

TEST(StreamTest, BackpressureRaceIsSearchFindable) {
  explore::SearchOptions O;
  O.Schedules = scheduleBudget(300);
  O.Shrink = false;
  explore::SearchResult R = explore::searchPct(backpressureRace, O);
  EXPECT_TRUE(R.Failure.has_value())
      << "no failing schedule found in " << R.SchedulesRun;
}

TEST(StreamTest, RegenerateStreamCorpus) {
  if (!std::getenv("LVISH_EXPLORE_REGEN"))
    GTEST_SKIP() << "set LVISH_EXPLORE_REGEN=1 to regenerate the corpus";
  for (const StreamCorpusEntry &E : StreamCorpus) {
    // Accept only replays that (a) pin the expected signature and (b)
    // actually route through a Backpressure decision - a conflicting-put
    // schedule that never parked both producers pins the wrong race.
    std::string Replay, GotSig;
    for (uint64_t Base = 0; Base < 64 && Replay.empty(); ++Base) {
      explore::SearchOptions O;
      O.Seed = 0x6c76697368ULL + Base * 1000;
      O.Schedules = 500;
      explore::SearchResult R = explore::searchPct(E.Program, O);
      if (!R.Failure)
        continue;
      GotSig = explore::failureSig(R.Failure->F);
      if (GotSig != E.Sig)
        continue;
      auto Spec = explore::decodeReplay(R.Failure->Replay);
      if (Spec && replayExercisesBackpressure(E.Program, *Spec))
        Replay = R.Failure->Replay;
    }
    if (Replay.empty()) {
      ADD_FAILURE() << E.Name << ": wanted " << E.Sig
                    << " with a Backpressure decision, last got " << GotSig;
      continue;
    }
    std::printf("    {\"%s\", %s, \"%s\",\n     \"%s\"},\n", E.Name,
                "<program>", E.Sig, Replay.c_str());
  }
  std::fflush(stdout);
}

} // namespace
