// lvish-analyze-fixture-path: tests/borrowed_clean.cpp
//
// The replacement surface: sessions submitted through a service::Runtime.
// None of these spellings may trip the deprecated-borrowed-scheduler rule;
// in particular the internal funnel name `runParOnImpl` is a distinct
// identifier token and must not match the `runParOn` sequence. Scanned,
// never compiled.

namespace lvish {

void runtimeSessions() {
  service::Runtime RT({.Sched = {.NumWorkers = 2}});
  int V = RT.run<Eff::Det>(nullptr).valueOrAbort();
  auto F = RT.submit<Eff::Det>(nullptr);
  (void)V;
  (void)F;
}

// A caller may still name the one-shot wrappers and the detail funnel.
void oneShotWrappers() {
  runPar<Eff::Det>(nullptr);
  tryRunParIO<Eff::FullIO>(nullptr);
  detail::runParOnImpl<Eff::Det>(RunOptions{}, nullptr);
}

} // namespace lvish
