// lvish-analyze-fixture-path: src/sim/effect_violation.cpp
//
// Seeded violations for the effect-consistency pass: a ReadOnly task body
// that writes (the paper's Section 6.1 unsafe-child shape) and a
// Det-leveled scope that freezes (needs QuasiDet). This file is scanned,
// never compiled.

namespace lvish {

Par<void> readOnlyWriter(ParCtx<Eff::ReadOnly> Ctx, IVar<int> &IV) {
  co_await put(Ctx, IV, 1); // missing Put
  co_return;
}

constexpr EffectSet Level = Eff::Det;

Par<void> detFreezer(ParCtx<Level> Ctx, IMap<int, int> &M) {
  co_await freezeMap(Ctx, M); // missing Freeze
  co_return;
}

} // namespace lvish
