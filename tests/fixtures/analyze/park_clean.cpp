// lvish-analyze-fixture-path: src/sched/park_clean.cpp
//
// Clean fixture for the park-under-lock pass: the guard is scoped to a
// block that ends before the suspension point, and a nested lambda's
// co_await is deferred work (the guard is not held when it runs).
// Scanned, never compiled.

namespace lvish {

Par<int> lockThenPark(ParCtx<Eff::Det> Ctx, IVar<int> &IV) {
  {
    std::lock_guard<std::mutex> Guard(StateMutex);
    SharedState.push_back(1);
  }
  int V = co_await get(Ctx, IV);
  co_return V;
}

void deferredBody() {
  std::unique_lock<std::mutex> Guard(StateMutex);
  auto Task = [](ParCtx<Eff::Det> C, IVar<int> &IV) -> Par<void> {
    co_await get(C, IV);
    co_return;
  };
  Registry.push_back(Task);
}

} // namespace lvish
