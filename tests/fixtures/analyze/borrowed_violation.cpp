// lvish-analyze-fixture-path: tests/borrowed_violation.cpp
//
// Seeded violations of the deprecated-borrowed-scheduler rule: every
// spelling of the retired borrowed-Scheduler session surface. tests/ is
// deliberately NOT exempt for this rule - the deprecation campaign's
// whole point is that no in-repo caller borrows a scheduler anymore.
// Scanned, never compiled.

namespace lvish {

void borrowedField(Scheduler &Sched) {
  RunOptions Opts;
  Opts.Borrowed = &Sched; // fires: .Borrowed
}

void borrowedFieldThroughPointer(Scheduler &Sched, RunOptions *Opts) {
  Opts->Borrowed = &Sched; // fires: ->Borrowed
}

void onFactory(Scheduler &Sched) {
  auto Opts = RunOptions::On(Sched); // fires: RunOptions::On
  (void)Opts;
}

void onWrappers(Scheduler &Sched) {
  runParOn<Eff::Det>(Sched, nullptr);       // fires: runParOn
  tryRunParOn<Eff::Det>(Sched, nullptr);    // fires: tryRunParOn
  runParIOOn<Eff::FullIO>(Sched, nullptr);  // fires: runParIOOn
  tryRunParIOOn<Eff::FullIO>(
      Sched, nullptr);                      // fires even when wrapped
  runParThenFreezeOn<Eff::Det>(Sched, nullptr); // fires
}

} // namespace lvish
