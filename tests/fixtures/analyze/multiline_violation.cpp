// lvish-analyze-fixture-path: src/sim/multiline_violation.cpp
//
// The retired per-line lint's false negatives, locked in as seeded
// violations: a raw-sync declaration split across lines and a deprecated
// threshold-read whose argument list opens on the next line. Scanned,
// never compiled.

namespace lvish {

std::
    mutex SplitAcrossLines; // raw-sync must still fire

Par<int> wrappedDeprecatedCall(ParCtx<Eff::Det> Ctx, IMap<int, int> &M) {
  int V = co_await getKey
      (Ctx, M, 3); // deprecated-threshold-read must still fire
  co_return V;
}

} // namespace lvish
