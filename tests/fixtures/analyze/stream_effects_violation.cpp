// lvish-analyze-fixture-path: src/sim/stream_effects_violation.cpp
//
// Seeded violations for the effect-consistency pass over the streaming
// API: a ReadOnly scope that appends, a WriteOnly scope that threshold-
// reads the prefix, and a Det scope that freezes a stream (needs
// QuasiDet). Scanned, never compiled.

namespace lvish {

Par<void> readOnlyAppender(ParCtx<Eff::ReadOnly> Ctx, Stream<int> &S) {
  put(Ctx, S, 0, 1); // missing Put
  co_return;
}

Par<void> writeOnlyReader(ParCtx<Eff::WriteOnly> Ctx, Stream<int> &S) {
  co_await waitSize(Ctx, S, 1); // missing Get
  co_return;
}

Par<void> detStreamFreezer(ParCtx<Eff::Det> Ctx, Stream<int> &S) {
  auto View = freezeStream(Ctx, S); // missing Freeze
  (void)View;
  co_return;
}

} // namespace lvish
