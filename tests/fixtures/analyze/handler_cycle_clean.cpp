// lvish-analyze-fixture-path: src/sim/handler_cycle_clean.cpp
//
// Clean fixture for the handler-cycle pass: the sanctioned idioms - a raw
// non-owning pointer capture, and a by-reference capture of the
// shared_ptr (no refcount added). Scanned, never compiled.

namespace lvish {

Par<void> rawPointerIdiom(ParCtx<Eff::Det> Ctx,
                          std::shared_ptr<HandlerPool> Pool,
                          std::shared_ptr<ISet<int>> Seen) {
  ISet<int> *SeenRaw = Seen.get();
  addHandler(Ctx, Pool, *Seen,
             [SeenRaw](ParCtx<Eff::Det> C, const int &Node) -> Par<void> {
               insert(C, *SeenRaw, Node + 1);
               co_return;
             });
  co_return;
}

Par<void> byRefCapture(ParCtx<Eff::Det> Ctx,
                       std::shared_ptr<HandlerPool> Pool,
                       std::shared_ptr<ISet<int>> Seen) {
  addHandler(Ctx, Pool, *Seen,
             [&Seen](ParCtx<Eff::Det> C, const int &Node) -> Par<void> {
               co_return;
             });
  co_return;
}

} // namespace lvish
