// lvish-analyze-fixture-path: src/sim/suppression.cpp
//
// Suppression-comment fixture: each seeded violation carries the matching
// `lvish-lint: allow(<rule>)` marker (same-line and previous-line forms),
// so the whole file must analyze clean. Scanned, never compiled.

namespace lvish {

std::mutex Allowed; // lvish-lint: allow(raw-sync)

// lvish-lint: allow(effect-consistency)
Par<void> blessedWriter(ParCtx<Eff::ReadOnly> Ctx, IVar<int> &IV) {
  // lvish-lint: allow(effect-consistency)
  co_await put(Ctx, IV, 1);
  co_return;
}

} // namespace lvish
