// lvish-analyze-fixture-path: src/sim/effect_clean.cpp
//
// Clean fixture for the effect-consistency pass: every op is covered by
// the declared level, including a nested forked child charged against its
// own (stronger) context. Scanned, never compiled.

namespace lvish {

constexpr EffectSet Bumping = Eff::DetBump;

Par<int> detPipeline(ParCtx<Eff::Det> Ctx, IVar<int> &IV,
                     Counter &C) {
  co_await put(Ctx, IV, 7);
  fork(Ctx, [](ParCtx<Bumping> Child, Counter &K) -> Par<void> {
    incrCounter(Child, K, 1); // Bump granted by the child's own level
    co_return;
  });
  int V = co_await get(Ctx, IV);
  co_return V;
}

Par<void> quasiFreezer(ParCtx<Eff::QuasiDet> Ctx, ISet<int> &S) {
  insert(Ctx, S, 3);
  co_await freezeSet(Ctx, S);
  co_return;
}

} // namespace lvish
