// lvish-analyze-fixture-path: src/sched/park_violation.cpp
//
// Seeded violation for the park-under-lock pass: a coroutine suspends
// (co_await) while a lock guard is held, keeping the mutex across an
// arbitrary suspension - the worker that later resumes the coroutine can
// deadlock against it. Scanned, never compiled.

namespace lvish {

Par<int> parkedUnderLock(ParCtx<Eff::Det> Ctx, IVar<int> &IV) {
  std::lock_guard<std::mutex> Guard(StateMutex);
  int V = co_await get(Ctx, IV); // suspends while Guard is held
  co_return V;
}

} // namespace lvish
