// lvish-analyze-fixture-path: src/sim/ctx_escape_violation.cpp
//
// Seeded violation for the ctx-escape pass: the registering context is
// captured into a handler callback (which runs for the LVar's whole
// lifetime with its OWN context parameter), and a second context is
// captured into a static-storage lambda. Scanned, never compiled.

namespace lvish {

Par<void> leakyRegistration(ParCtx<Eff::Det> Ctx,
                            std::shared_ptr<HandlerPool> Pool,
                            std::shared_ptr<ISet<int>> Seen) {
  addHandler(Ctx, Pool, *Seen,
             [Ctx](ParCtx<Eff::Det> C, const int &Node) -> Par<void> {
               // The capture above leaks the registering capability.
               co_return;
             });
  co_return;
}

Par<void> staticStash(ParCtx<Eff::Det> Ctx) {
  static auto Saved = [Ctx]() { return Ctx; };
  co_return;
}

} // namespace lvish
