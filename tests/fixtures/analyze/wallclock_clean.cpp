// lvish-analyze-fixture-path: src/sched/wallclock_clean.cpp
//
// Clean fixture for the wall-clock-in-core pass: core code that measures
// time through the sanctioned nowNanos() choke point, uses step counters
// for semantic decisions, and mentions clock TYPES without calling
// ::now() on them. None of these may fire. Scanned, never compiled.

namespace lvish {

uint64_t latencyDelta(uint64_t StartNanos) {
  // The sanctioned choke point: support/Timer.h nowNanos().
  return nowNanos() - StartNanos;
}

bool budgetBySteps(uint64_t Used, uint64_t Budget) {
  // Semantic bounds are scheduler-step counts, never wall clock.
  return Budget != 0 && Used > Budget;
}

// Naming a clock type (e.g. in an alias or a template argument) is fine;
// only the ::now() read is barred.
using CoreClock = std::chrono::steady_clock;

uint64_t castOnly(CoreClock::time_point T) {
  return static_cast<uint64_t>(T.time_since_epoch().count());
}

} // namespace lvish
