// lvish-analyze-fixture-path: src/sim/stream_effects_clean.cpp
//
// Clean fixture for the effect-consistency pass over the streaming API:
// every Stream/BoundedStream operation is covered by the declared level.
// Scanned, never compiled.

namespace lvish {

Par<int> streamPipeline(ParCtx<Eff::Det> Ctx, Stream<int> &S,
                        BoundedStream<int> &B) {
  put(Ctx, S, 0, 7);               // Put
  co_await put(Ctx, B, 0, 8);      // Put (bounded; blocks on credit)
  advance(Ctx, B, 1);              // Put (lub write to the release mark)
  co_await waitSize(Ctx, S, 1);    // Get
  int V = co_await get(Ctx, S, 1); // Get
  co_return V;
}

Par<int> quasiStreamFreezer(ParCtx<Eff::QuasiDet> Ctx, Stream<int> &S) {
  auto BS = newBoundedStream<int>(Ctx, 2); // Neutral allocation
  put(Ctx, S, 0, 1);
  auto View = freezeStream(Ctx, S); // Freeze granted by QuasiDet
  co_return View[0];
}

} // namespace lvish
