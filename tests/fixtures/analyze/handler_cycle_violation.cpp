// lvish-analyze-fixture-path: src/sim/handler_cycle_violation.cpp
//
// Seeded violation for the handler-cycle pass: the callback captures, by
// value, the shared_ptr that owns the LVar it is attached to. The LVar
// stores the callback for its whole lifetime, so the capture is a
// reference cycle C++ cannot collect (DESIGN.md footgun; Haskell's GC
// made this a non-issue in the original). Scanned, never compiled.

namespace lvish {

Par<void> cyclicRegistration(ParCtx<Eff::Det> Ctx,
                             std::shared_ptr<HandlerPool> Pool,
                             std::shared_ptr<ISet<int>> Seen) {
  addHandler(Ctx, Pool, *Seen,
             [Seen](ParCtx<Eff::Det> C, const int &Node) -> Par<void> {
               insert(C, *Seen, Node + 1);
               co_return;
             });
  co_return;
}

} // namespace lvish
