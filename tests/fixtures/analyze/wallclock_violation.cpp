// lvish-analyze-fixture-path: src/sched/wallclock_violation.cpp
//
// Seeded violations for the wall-clock-in-core pass: core scheduler code
// reading wall clocks. Time dependence in the deterministic layers breaks
// explore/replay bit-for-bit reproduction - execution bounds there are
// step budgets (SessionOptions::MaxSteps), and the one sanctioned
// wall-clock read is support/Timer.h nowNanos(). All three standard clock
// spellings, including one with the :: split across lines. Scanned,
// never compiled.

namespace lvish {

uint64_t pollDeadline() {
  auto T0 = std::chrono::steady_clock::now(); // violation 1
  return static_cast<uint64_t>(T0.time_since_epoch().count());
}

bool budgetByTime(uint64_t StartNanos) {
  auto Now = std::chrono::system_clock::now(); // violation 2
  return static_cast<uint64_t>(Now.time_since_epoch().count()) >
         StartNanos + 1000000;
}

uint64_t splitAcrossLines() {
  // The token stream sees through the line break.
  auto T = std::chrono::high_resolution_clock::
      now(); // violation 3
  return static_cast<uint64_t>(T.time_since_epoch().count());
}

} // namespace lvish
