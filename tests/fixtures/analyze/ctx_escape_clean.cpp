// lvish-analyze-fixture-path: src/sim/ctx_escape_clean.cpp
//
// Clean fixture for the ctx-escape pass: the handler captures only plain
// data and a raw LVar pointer (the graph-traversal idiom), and the local
// helper lambda capturing the context never outlives the task. Scanned,
// never compiled.

namespace lvish {

Par<void> cleanRegistration(ParCtx<Eff::Det> Ctx, const Graph *G,
                            std::shared_ptr<HandlerPool> Pool,
                            std::shared_ptr<ISet<int>> Seen) {
  ISet<int> *SeenRaw = Seen.get();
  addHandler(Ctx, Pool, *Seen,
             [G, SeenRaw](ParCtx<Eff::Det> C, const int &Node) -> Par<void> {
               for (int V : G->neighbors(Node))
                 insert(C, *SeenRaw, V);
               co_return;
             });
  auto Helper = [Ctx](IVar<int> &IV) { return put(Ctx, IV, 1); };
  co_return;
}

} // namespace lvish
