//===- ExploreRegressionTest.cpp - Pinned replay corpus ---------------------===//
//
// Known schedule-dependent races, each pinned to a committed replay string
// (DESIGN.md Section 12). Every entry must reproduce the same
// (FaultCode, pedigree) - and the same schedule hash, bit-for-bit - on
// every run, on every machine. If a scheduler change breaks a string, the
// corpus is regenerated (see EXPERIMENTS.md):
//
//   LVISH_EXPLORE_REGEN=1 ./ExploreRegressionTest --gtest_filter='*Regen*'
//
// and the printed lines are pasted over the Corpus table below.
//
//===----------------------------------------------------------------------===//

#include "src/core/HandlerPool.h"
#include "src/core/LVish.h"
#include "src/data/ISet.h"
#include "src/explore/Explorer.h"
#include "src/trans/Cancel.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace lvish;

namespace {

constexpr EffectSet IOE = Eff::FullIO;

// -- The race programs -----------------------------------------------------
// Each has at least two schedule-dependent outcomes; the corpus pins one
// specific failing interleaving of each.

/// Freeze races a forked put: ok:7 or put_after_freeze@L.
ParOutcome<int> putAfterFreeze(const RunOptions &Opts) {
  return tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        auto LV = newPureLVar<MaxUint64Lattice>(Ctx);
        auto Putter = [LV](ParCtx<IOE> C) -> Par<void> {
          putPureLVar(C, *LV, 7);
          co_return;
        };
        fork(Ctx, Putter);
        co_await yield(Ctx);
        co_return static_cast<int>(freezePureLVar(Ctx, *LV));
      },
      Opts);
}

/// Two children race conflicting IVar puts: the second to run faults, so
/// the pedigree is "L" or "RL" depending on the schedule.
ParOutcome<int> conflictingIVarPut(const RunOptions &Opts) {
  return tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        auto IV = newIVar<int>(Ctx, "contested");
        auto A = [IV](ParCtx<IOE> C) -> Par<void> {
          put(C, *IV, 1);
          co_return;
        };
        auto B = [IV](ParCtx<IOE> C) -> Par<void> {
          put(C, *IV, 2);
          co_return;
        };
        fork(Ctx, A);
        fork(Ctx, B);
        co_return co_await get(Ctx, *IV);
      },
      Opts);
}

/// Cancel-and-read: the root reads a cancellable future while a sibling
/// cancels it. Whichever side loses the race raises cancel_read_conflict,
/// so the fault pedigree is "<root>" or "RL" by schedule.
ParOutcome<int> cancelAndRead(const RunOptions &Opts) {
  return tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        auto Fut = forkCancelable(
            Ctx, [](ParCtx<Eff::ReadOnly>) -> Par<int> { co_return 5; });
        auto Canceller = [Fut](ParCtx<IOE> C) -> Par<void> {
          cancel(C, Fut);
          co_return;
        };
        fork(Ctx, Canceller);
        co_await yield(Ctx);
        co_return co_await readCFuture(Ctx, Fut);
      },
      Opts);
}

/// Quiesce-vs-late-handler: the root freezes an ISet WITHOUT quiescing its
/// handler pool; a still-running cascade handler (8 -> 4 -> 2 -> 1) may
/// insert after the freeze (put_after_freeze), or the cascade may win
/// (ok:4). The paper's Section 2 quasi-determinism bug, distilled.
ParOutcome<int> quiesceVsLateHandler(const RunOptions &Opts) {
  // The handler below deliberately captures a raw pointer (capturing the
  // shared_ptr would form the LVar->handler->LVar cycle of DESIGN.md
  // section 11). The race under test is freeze-vs-insert, not lifetime,
  // so park a keepalive here: it outlives the root frame and is only
  // released once tryRunParIO has drained the whole session.
  std::shared_ptr<ISet<int>> Keep;
  return tryRunParIO<IOE>(
      [&Keep](ParCtx<IOE> Ctx) -> Par<int> {
        auto S = newISet<int>(Ctx);
        Keep = S;
        auto Pool = newPool(Ctx);
        ISet<int> *Raw = S.get();
        auto Handler = [Raw](ParCtx<IOE> C, const int &V) -> Par<void> {
          if (V > 1 && V % 2 == 0)
            insert(C, *Raw, V / 2);
          co_return;
        };
        [[maybe_unused]] HandlerHandle H = addHandler(Ctx, Pool, *S, Handler);
        insert(Ctx, *S, 8);
        co_await yield(Ctx); // NO quiesce: deliberately quasi-deterministic.
        auto Contents = freezeSet(Ctx, *S);
        co_return static_cast<int>(Contents.size());
      },
      Opts);
}

/// Wake-order conflict: two waiters parked on the same gate are woken in
/// an explorer-chosen order and race conflicting puts, so the losing
/// pedigree ("L" vs "RL") is decided by an onPick decision.
ParOutcome<int> wakeOrderConflict(const RunOptions &Opts) {
  return tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        auto Gate = newIVar<int>(Ctx, "gate");
        auto Out = newIVar<int>(Ctx, "out");
        auto W1 = [Gate, Out](ParCtx<IOE> C) -> Par<void> {
          int G = co_await get(C, *Gate);
          put(C, *Out, G + 1);
        };
        auto W2 = [Gate, Out](ParCtx<IOE> C) -> Par<void> {
          int G = co_await get(C, *Gate);
          put(C, *Out, G + 2);
        };
        fork(Ctx, W1);
        fork(Ctx, W2);
        co_await yield(Ctx);
        put(Ctx, *Gate, 1);
        co_return co_await get(Ctx, *Out);
      },
      Opts);
}

/// Deterministic budget kill: a session with a step budget that yields
/// past it. Unlike the racy members above this fails on EVERY schedule -
/// its pin checks that the budget charge itself (DESIGN.md Section 16)
/// replays bit-for-bit: same code, same pedigree, same schedule hash.
ParOutcome<int> budgetBlown(const RunOptions &Opts) {
  RunOptions Budgeted = Opts;
  Budgeted.SessionBudget = 6;
  return tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        for (int I = 0; I < 1'000'000; ++I)
          co_await yield(Ctx);
        co_return 0;
      },
      Budgeted);
}

// -- The pinned corpus -----------------------------------------------------

using ProgramFn = ParOutcome<int> (*)(const RunOptions &);

struct CorpusEntry {
  const char *Name;
  ProgramFn Program;
  /// Expected failureSig: "<faultCodeName>@<pedigree>".
  const char *Sig;
  /// Committed replay string (regenerate with LVISH_EXPLORE_REGEN=1).
  const char *Replay;
};

const CorpusEntry Corpus[] = {
    {"put-after-freeze", putAfterFreeze, "put_after_freeze@L",
     "lvx1:w2:h363e5e09db50bd26:1"},
    {"conflicting-ivar-put", conflictingIVarPut, "conflicting_put@L",
     "lvx1:w2:hbcda0170f8c4f3f6:"},
    {"cancel-and-read", cancelAndRead, "cancel_read_conflict@RL",
     "lvx1:w2:h106a61ca763e0408:0.1"},
    {"quiesce-vs-late-handler", quiesceVsLateHandler, "put_after_freeze@L",
     "lvx1:w2:h363e5e09db50bd26:1"},
    {"wake-order-conflict", wakeOrderConflict, "conflicting_put@L",
     "lvx1:w2:hca0c5031b25c0d34:0.0.0.0.1"},
    {"budget-blown", budgetBlown, "budget_exceeded@<root>",
     "lvx1:w2:h7bf4f9982d8025db:"},
};

TEST(ExploreRegressionTest, PinnedReplaysReproduce) {
  for (const CorpusEntry &E : Corpus) {
    SCOPED_TRACE(E.Name);
    auto Spec = explore::decodeReplay(E.Replay);
    ASSERT_TRUE(Spec.has_value()) << "corpus string does not decode";
    // "Every run": replay each pinned schedule several times in-process;
    // the whole TEST re-runs per ctest invocation across configs.
    for (int Rep = 0; Rep < 3; ++Rep) {
      bool BitIdentical = false;
      std::optional<Fault> Flt =
          explore::replaySession(E.Program, *Spec, &BitIdentical);
      ASSERT_TRUE(Flt.has_value()) << "rep " << Rep << ": no fault";
      EXPECT_EQ(explore::failureSig(*Flt), E.Sig) << "rep " << Rep;
      EXPECT_TRUE(BitIdentical)
          << "rep " << Rep << ": schedule hash diverged from the corpus";
    }
  }
}

TEST(ExploreRegressionTest, BudgetKillReplayIsBitIdentical) {
  // The ISSUE acceptance criterion, spelled out: two runs of the SAME
  // pinned replay string must produce the identical budget Fault - code,
  // pedigree, session id - and both runs' schedule hashes must match the
  // committed hash.
  const CorpusEntry *E = nullptr;
  for (const CorpusEntry &C : Corpus)
    if (std::string(C.Name) == "budget-blown")
      E = &C;
  ASSERT_NE(E, nullptr);
  auto Spec = explore::decodeReplay(E->Replay);
  ASSERT_TRUE(Spec.has_value());
  bool Bit1 = false, Bit2 = false;
  std::optional<Fault> F1 = explore::replaySession(E->Program, *Spec, &Bit1);
  std::optional<Fault> F2 = explore::replaySession(E->Program, *Spec, &Bit2);
  ASSERT_TRUE(F1.has_value());
  ASSERT_TRUE(F2.has_value());
  EXPECT_EQ(F1->Code, FaultCode::BudgetExceeded);
  EXPECT_EQ(F1->Code, F2->Code);
  EXPECT_EQ(F1->Pedigree, F2->Pedigree);
  EXPECT_EQ(F1->SessionId, F2->SessionId);
  EXPECT_EQ(F1->Message, F2->Message)
      << "the budget message embeds only deterministic fields";
  EXPECT_TRUE(Bit1);
  EXPECT_TRUE(Bit2) << "schedule hash diverged between two identical replays";
}

TEST(ExploreRegressionTest, CorpusRacesAreSearchFindable) {
  // Sanity on the corpus itself: each pinned race is still discoverable
  // by seeded search (i.e. the programs stayed racy; the corpus is not
  // pinning vacuous strings).
  for (const CorpusEntry &E : Corpus) {
    SCOPED_TRACE(E.Name);
    explore::SearchOptions O;
    O.Schedules = 200;
    O.Shrink = false;
    explore::SearchResult R = explore::searchPct(E.Program, O);
    EXPECT_TRUE(R.Failure.has_value())
        << "no failing schedule found in " << R.SchedulesRun;
  }
}

TEST(ExploreRegressionTest, RegenerateCorpus) {
  if (!std::getenv("LVISH_EXPLORE_REGEN"))
    GTEST_SKIP() << "set LVISH_EXPLORE_REGEN=1 to regenerate the corpus";
  for (const CorpusEntry &E : Corpus) {
    // Search until the EXPECTED signature is found (some programs fail
    // with several signatures; the corpus pins one per program).
    std::string Replay, GotSig;
    for (uint64_t Base = 0; Base < 64 && Replay.empty(); ++Base) {
      explore::SearchOptions O;
      O.Seed = 0x6c76697368ULL + Base * 1000;
      O.Schedules = 500;
      explore::SearchResult R = explore::searchPct(E.Program, O);
      if (!R.Failure)
        continue;
      GotSig = explore::failureSig(R.Failure->F);
      if (GotSig == E.Sig)
        Replay = R.Failure->Replay;
    }
    if (Replay.empty()) {
      ADD_FAILURE() << E.Name << ": wanted " << E.Sig << ", last got "
                    << GotSig;
      continue;
    }
    std::printf("    {\"%s\", %s, \"%s\",\n     \"%s\"},\n", E.Name,
                "<program>", E.Sig, Replay.c_str());
  }
  std::fflush(stdout);
}

} // namespace
