//===- ServiceRobustnessTest.cpp - Budgets, deadlines, shed, drain ---------===//
//
// Part of lvish-cpp, a C++ reproduction of the LVish deterministic
// parallelism library (Kuper et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service robustness layer (DESIGN.md Section 16), checked the way
/// FaultOutcomeTest checks the core fault codes: every refusal and kill
/// resolves with EXACTLY its own FaultCode - at 1 worker and at 4 -
/// and the codes stay distinguishable from each other:
///
///   * BudgetExceeded    - deterministic per-session step budget, counted
///                         in scheduler decisions, enforced in the hot
///                         loop, tagged with the session's own id.
///   * DeadlineExceeded  - a blocking run() that outwaits
///                         SubmitDeadlineNanos, and a queued submission
///                         that expires before a slot frees.
///   * Shed              - a submission past MaxQueuedSessions, refused
///                         at admission before any work runs.
///   * RuntimeStopping   - drain() rejects the queue and all later
///                         submissions; in-flight sessions still finish.
///
/// Plus the caller-side RetryPolicy: seeded-jitter backoff is a pure
/// function of (Seed, attempt), and submitWithRetry retries exactly the
/// transient admission refusals.
///
//===----------------------------------------------------------------------===//

#include "src/core/LVish.h"
#include "src/obs/Telemetry.h"
#include "src/service/RetryPolicy.h"
#include "src/service/Runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;
constexpr EffectSet IOE = Eff::FullIO;

/// Worker counts every scenario is exercised at, FaultOutcomeTest-style:
/// 1 pins the sequential semantics, 4 shakes out races in the same path.
constexpr unsigned WorkerCounts[] = {1, 4};

uint64_t sumSquaresSeq(uint64_t Lo, uint64_t Hi) {
  uint64_t S = 0;
  for (uint64_t I = Lo; I < Hi; ++I)
    S += I * I;
  return S;
}

Par<uint64_t> sumSquares(ParCtx<D> Ctx, uint64_t Lo, uint64_t Hi) {
  if (Hi - Lo <= 8) {
    co_return sumSquaresSeq(Lo, Hi);
  }
  uint64_t Mid = Lo + (Hi - Lo) / 2;
  auto Left = newIVar<uint64_t>(Ctx);
  fork(Ctx, [Left, Lo, Mid](ParCtx<D> C) -> Par<void> {
    uint64_t V = co_await sumSquares(C, Lo, Mid);
    put(C, *Left, V);
  });
  uint64_t Right = co_await sumSquares(Ctx, Mid, Hi);
  co_return co_await get(Ctx, *Left) + Right;
}

/// A session that never finishes on its own: it must be stopped by its
/// step budget (or it would spin forever re-queuing itself).
Par<int> yieldForever(ParCtx<IOE> Ctx) {
  for (uint64_t I = 0; I < ~uint64_t(0); ++I)
    co_await yield(Ctx);
  co_return -1;
}

//===----------------------------------------------------------------------===//
// BudgetExceeded
//===----------------------------------------------------------------------===//

TEST(ServiceRobustness, StepBudgetKillsRunawaySession) {
  for (unsigned W : WorkerCounts) {
    service::Runtime RT({.Sched = {.NumWorkers = W}});
    service::SessionOptions Opts;
    Opts.MaxSteps = 64;
    auto O = RT.runIO<IOE>(yieldForever, Opts);
    ASSERT_FALSE(O.ok()) << "workers=" << W;
    EXPECT_EQ(O.fault().Code, FaultCode::BudgetExceeded) << "workers=" << W;
    EXPECT_NE(O.fault().Message.find("budget_exceeded"), std::string::npos)
        << O.fault().Message;
    EXPECT_NE(O.fault().Message.find(std::to_string(Opts.MaxSteps)),
              std::string::npos)
        << "the message must name the budget: " << O.fault().Message;
  }
}

TEST(ServiceRobustness, BudgetFaultTaggedWithOwnSessionOnSharedPool) {
  for (unsigned W : WorkerCounts) {
    service::Runtime RT({.Sched = {.NumWorkers = W}});
    service::SessionOptions Opts;
    Opts.MaxSteps = 64;
    auto Doomed = RT.submitIO<IOE>(yieldForever, Opts);
    // Unbudgeted neighbors on the same pool must be untouched.
    std::vector<service::SessionFuture<uint64_t>> Good;
    for (int I = 0; I < 4; ++I)
      Good.push_back(RT.submit<D>([I](ParCtx<D> Ctx) -> Par<uint64_t> {
        co_return co_await sumSquares(Ctx, 0, 100 + uint64_t(I));
      }));
    auto O = Doomed.get();
    ASSERT_FALSE(O.ok()) << "workers=" << W;
    EXPECT_EQ(O.fault().Code, FaultCode::BudgetExceeded);
    EXPECT_EQ(O.fault().SessionId, Doomed.sessionId())
        << "the budget kill must carry the doomed session's own id";
    for (int I = 0; I < 4; ++I) {
      auto G = Good[I].get();
      ASSERT_TRUE(G.ok()) << "workers=" << W << " neighbor " << I << ": "
                          << G.fault().Message;
      EXPECT_EQ(G.value(), sumSquaresSeq(0, 100 + uint64_t(I)));
    }
  }
}

TEST(ServiceRobustness, GenerousBudgetDoesNotPerturbResults) {
  for (unsigned W : WorkerCounts) {
    service::Runtime RT({.Sched = {.NumWorkers = W}});
    service::SessionOptions Opts;
    Opts.MaxSteps = 1'000'000; // Far above what the tree needs.
    auto O = RT.run<D>(
        [](ParCtx<D> Ctx) -> Par<uint64_t> {
          co_return co_await sumSquares(Ctx, 0, 300);
        },
        Opts);
    ASSERT_TRUE(O.ok()) << "workers=" << W << ": " << O.fault().Message;
    EXPECT_EQ(O.value(), sumSquaresSeq(0, 300));
  }
}

TEST(ServiceRobustness, DefaultSessionBudgetAppliesWhenUnset) {
  service::RuntimeConfig RC;
  RC.Sched.NumWorkers = 2;
  RC.DefaultSessionBudget = 64;
  service::Runtime RT(RC);
  // No per-session MaxSteps: the config default governs.
  auto O = RT.runIO<IOE>(yieldForever);
  ASSERT_FALSE(O.ok());
  EXPECT_EQ(O.fault().Code, FaultCode::BudgetExceeded);
  // An explicit per-session budget overrides the default upward.
  service::SessionOptions Opts;
  Opts.MaxSteps = 1'000'000;
  auto O2 = RT.run<D>(
      [](ParCtx<D> Ctx) -> Par<uint64_t> {
        co_return co_await sumSquares(Ctx, 0, 300);
      },
      Opts);
  ASSERT_TRUE(O2.ok()) << O2.fault().Message;
  EXPECT_EQ(O2.value(), sumSquaresSeq(0, 300));
}

//===----------------------------------------------------------------------===//
// DeadlineExceeded
//===----------------------------------------------------------------------===//

TEST(ServiceRobustness, BlockingRunHonorsSubmitDeadline) {
  for (unsigned W : WorkerCounts) {
    service::RuntimeConfig RC;
    RC.Sched.NumWorkers = W;
    RC.MaxActiveSessions = 1;
    RC.SubmitDeadlineNanos = 2'000'000; // 2 ms
    service::Runtime RT(RC);
    std::atomic<bool> Release{false};
    auto Occupant = RT.submitIO<IOE>([&](ParCtx<IOE> Ctx) -> Par<int> {
      while (!Release.load(std::memory_order_acquire))
        co_await yield(Ctx);
      co_return 7;
    });
    // The single slot is held: a blocking run() must give up after the
    // deadline instead of waiting forever.
    auto O = RT.run<D>(
        [](ParCtx<D> Ctx) -> Par<uint64_t> { co_return 1; });
    ASSERT_FALSE(O.ok()) << "workers=" << W;
    EXPECT_EQ(O.fault().Code, FaultCode::DeadlineExceeded) << "workers=" << W;
    EXPECT_NE(O.fault().Message.find("deadline_exceeded"), std::string::npos)
        << O.fault().Message;
    Release.store(true, std::memory_order_release);
    auto OO = Occupant.get();
    ASSERT_TRUE(OO.ok()) << OO.fault().Message;
    EXPECT_EQ(OO.value(), 7);
  }
}

TEST(ServiceRobustness, QueuedSubmissionExpiresPastDeadline) {
  for (unsigned W : WorkerCounts) {
    service::RuntimeConfig RC;
    RC.Sched.NumWorkers = W;
    RC.MaxActiveSessions = 1;
    RC.MaxQueuedSessions = 8;
    RC.SubmitDeadlineNanos = 1'000'000; // 1 ms
    service::Runtime RT(RC);
    std::atomic<bool> Release{false};
    auto Occupant = RT.submitIO<IOE>([&](ParCtx<IOE> Ctx) -> Par<int> {
      while (!Release.load(std::memory_order_acquire))
        co_await yield(Ctx);
      co_return 7;
    });
    auto Queued = RT.submit<D>(
        [](ParCtx<D> Ctx) -> Par<uint64_t> { co_return 2; });
    // Outwait the deadline while the slot stays held, then free it: the
    // queued session must expire instead of launching.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    Release.store(true, std::memory_order_release);
    auto OQ = Queued.get();
    ASSERT_FALSE(OQ.ok()) << "workers=" << W;
    EXPECT_EQ(OQ.fault().Code, FaultCode::DeadlineExceeded) << "workers=" << W;
    auto OO = Occupant.get();
    ASSERT_TRUE(OO.ok()) << OO.fault().Message;
    EXPECT_EQ(OO.value(), 7);
  }
}

//===----------------------------------------------------------------------===//
// Shed
//===----------------------------------------------------------------------===//

TEST(ServiceRobustness, OverloadShedsBeyondQueueBound) {
  for (unsigned W : WorkerCounts) {
    service::RuntimeConfig RC;
    RC.Sched.NumWorkers = W;
    RC.MaxActiveSessions = 1;
    RC.MaxQueuedSessions = 1;
    service::Runtime RT(RC);
    std::atomic<bool> Release{false};
    auto Occupant = RT.submitIO<IOE>([&](ParCtx<IOE> Ctx) -> Par<int> {
      while (!Release.load(std::memory_order_acquire))
        co_await yield(Ctx);
      co_return 1;
    });
    auto Queued = RT.submit<D>(
        [](ParCtx<D> Ctx) -> Par<uint64_t> { co_return 2; });
    auto Shedded = RT.submit<D>(
        [](ParCtx<D> Ctx) -> Par<uint64_t> { co_return 3; });
    // Shed resolves at admission, before the slot ever frees.
    EXPECT_TRUE(Shedded.ready())
        << "a shed refusal must resolve immediately, not wait for a slot";
    auto OS = Shedded.get();
    ASSERT_FALSE(OS.ok()) << "workers=" << W;
    EXPECT_EQ(OS.fault().Code, FaultCode::Shed) << "workers=" << W;
    EXPECT_NE(OS.fault().Message.find("shed"), std::string::npos)
        << OS.fault().Message;
    Release.store(true, std::memory_order_release);
    auto OO = Occupant.get();
    ASSERT_TRUE(OO.ok()) << OO.fault().Message;
    auto OQ = Queued.get();
    ASSERT_TRUE(OQ.ok()) << "the queued (non-shed) session must still run: "
                         << OQ.fault().Message;
    EXPECT_EQ(OQ.value(), 2u);
  }
}

//===----------------------------------------------------------------------===//
// RuntimeStopping / drain
//===----------------------------------------------------------------------===//

TEST(ServiceRobustness, DrainFinishesActiveRejectsQueuedStopsAdmission) {
  for (unsigned W : WorkerCounts) {
    service::RuntimeConfig RC;
    RC.Sched.NumWorkers = W;
    RC.MaxActiveSessions = 1;
    RC.MaxQueuedSessions = 8;
    service::Runtime RT(RC);
    std::atomic<bool> Release{false};
    auto Active = RT.submitIO<IOE>([&](ParCtx<IOE> Ctx) -> Par<int> {
      while (!Release.load(std::memory_order_acquire))
        co_await yield(Ctx);
      co_return 11;
    });
    auto Queued = RT.submit<D>(
        [](ParCtx<D> Ctx) -> Par<uint64_t> { co_return 22; });
    // Free the active session only after drain() has begun waiting.
    std::thread Releaser([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      Release.store(true, std::memory_order_release);
    });
    RT.drain();
    Releaser.join();
    // The active session finished normally; the queued one was rejected.
    ASSERT_TRUE(Active.ready()) << "drain() returned with a session running";
    auto OA = Active.get();
    ASSERT_TRUE(OA.ok()) << OA.fault().Message;
    EXPECT_EQ(OA.value(), 11);
    auto OQ = Queued.get();
    ASSERT_FALSE(OQ.ok()) << "workers=" << W;
    EXPECT_EQ(OQ.fault().Code, FaultCode::RuntimeStopping) << "workers=" << W;
    // Admission stays closed after drain, for both submission styles.
    auto Late = RT.submit<D>(
        [](ParCtx<D> Ctx) -> Par<uint64_t> { co_return 33; });
    EXPECT_TRUE(Late.ready());
    auto OL = Late.get();
    ASSERT_FALSE(OL.ok());
    EXPECT_EQ(OL.fault().Code, FaultCode::RuntimeStopping);
    auto OR = RT.run<D>(
        [](ParCtx<D> Ctx) -> Par<uint64_t> { co_return 44; });
    ASSERT_FALSE(OR.ok());
    EXPECT_EQ(OR.fault().Code, FaultCode::RuntimeStopping);
    RT.drain(); // Idempotent: a second drain returns immediately.
  }
}

TEST(ServiceRobustness, DrainRacesSubmitWithoutLosingASession) {
  // Hammer drain() against a burst of submitters: every future must
  // resolve - either with its real value or with a RuntimeStopping/Shed
  // refusal - and none may hang or crash.
  service::RuntimeConfig RC;
  RC.Sched.NumWorkers = 4;
  RC.MaxActiveSessions = 2;
  RC.MaxQueuedSessions = 4;
  service::Runtime RT(RC);
  constexpr int N = 24;
  std::vector<service::SessionFuture<uint64_t>> Futures(N);
  std::atomic<int> Submitted{0};
  std::thread Submitter([&] {
    for (int I = 0; I < N; ++I) {
      Futures[I] = RT.submit<D>([I](ParCtx<D> Ctx) -> Par<uint64_t> {
        co_return co_await sumSquares(Ctx, 0, 64 + uint64_t(I));
      });
      Submitted.store(I + 1, std::memory_order_release);
    }
  });
  while (Submitted.load(std::memory_order_acquire) < N / 2)
    std::this_thread::yield();
  RT.drain();
  Submitter.join();
  int Completed = 0, Refused = 0;
  for (int I = 0; I < N; ++I) {
    auto O = Futures[I].get();
    if (O.ok()) {
      ++Completed;
      EXPECT_EQ(O.value(), sumSquaresSeq(0, 64 + uint64_t(I)))
          << "session " << I << " completed with a wrong value";
    } else {
      ++Refused;
      EXPECT_TRUE(O.fault().Code == FaultCode::RuntimeStopping ||
                  O.fault().Code == FaultCode::Shed)
          << "session " << I << ": " << O.fault().Message;
    }
  }
  EXPECT_EQ(Completed + Refused, N);
}

//===----------------------------------------------------------------------===//
// RetryPolicy
//===----------------------------------------------------------------------===//

TEST(ServiceRobustness, RetryDelaysArePureFunctionsOfSeedAndAttempt) {
  service::RetryPolicy A{.Seed = 42};
  service::RetryPolicy B{.Seed = 42};
  service::RetryPolicy C{.Seed = 43};
  bool AnyDiffer = false;
  for (unsigned Attempt = 0; Attempt < 8; ++Attempt) {
    EXPECT_EQ(A.delayNanos(Attempt), B.delayNanos(Attempt))
        << "same seed, same attempt, different delay";
    uint64_t Window = A.BaseDelayNanos << Attempt;
    if (Window > A.MaxDelayNanos)
      Window = A.MaxDelayNanos;
    EXPECT_LE(A.delayNanos(Attempt), Window)
        << "delay escaped its backoff window at attempt " << Attempt;
    AnyDiffer |= A.delayNanos(Attempt) != C.delayNanos(Attempt);
  }
  EXPECT_TRUE(AnyDiffer) << "distinct seeds should decorrelate";
  // Degenerate policy: zero base delay never sleeps.
  service::RetryPolicy Z{.BaseDelayNanos = 0, .MaxDelayNanos = 0};
  EXPECT_EQ(Z.delayNanos(0), 0u);
  EXPECT_EQ(Z.delayNanos(5), 0u);
}

TEST(ServiceRobustness, RetryableCoversExactlyTransientAdmissionFaults) {
  Fault F;
  F.Code = FaultCode::Shed;
  EXPECT_TRUE(service::RetryPolicy::retryable(F));
  F.Code = FaultCode::DeadlineExceeded;
  EXPECT_TRUE(service::RetryPolicy::retryable(F));
  for (FaultCode NotRetryable :
       {FaultCode::BudgetExceeded, FaultCode::RuntimeStopping,
        FaultCode::SessionRejected, FaultCode::ConflictingPut,
        FaultCode::FutureConsumed, FaultCode::InjectedFailure}) {
    F.Code = NotRetryable;
    EXPECT_FALSE(service::RetryPolicy::retryable(F))
        << faultCodeName(NotRetryable);
  }
}

TEST(ServiceRobustness, SubmitWithRetryRetriesShedsThenSucceeds) {
  service::RetryPolicy P;
  P.MaxAttempts = 5;
  P.BaseDelayNanos = 1'000; // Keep the test fast.
  P.MaxDelayNanos = 10'000;
  int Calls = 0;
  auto Out = service::submitWithRetry(P, [&] {
    if (++Calls < 3)
      return ParOutcome<int>::failure(
          service::detail::makeAdmissionFault(FaultCode::Shed, "test shed"));
    return ParOutcome<int>::success(99);
  });
  EXPECT_EQ(Calls, 3);
  ASSERT_TRUE(Out.ok()) << Out.fault().Message;
  EXPECT_EQ(Out.value(), 99);
}

TEST(ServiceRobustness, SubmitWithRetryStopsOnNonRetryableAndExhaustion) {
  service::RetryPolicy P;
  P.MaxAttempts = 4;
  P.BaseDelayNanos = 1'000;
  P.MaxDelayNanos = 10'000;
  // Non-retryable: one call, no retries.
  int Calls = 0;
  auto Out = service::submitWithRetry(P, [&] {
    ++Calls;
    return ParOutcome<int>::failure(service::detail::makeAdmissionFault(
        FaultCode::RuntimeStopping, "draining"));
  });
  EXPECT_EQ(Calls, 1);
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.fault().Code, FaultCode::RuntimeStopping);
  // Permanent overload: exactly MaxAttempts tries, last fault returned.
  Calls = 0;
  auto Out2 = service::submitWithRetry(P, [&] {
    ++Calls;
    return ParOutcome<int>::failure(
        service::detail::makeAdmissionFault(FaultCode::Shed, "still full"));
  });
  EXPECT_EQ(Calls, static_cast<int>(P.MaxAttempts));
  ASSERT_FALSE(Out2.ok());
  EXPECT_EQ(Out2.fault().Code, FaultCode::Shed);
}

TEST(ServiceRobustness, RetryAgainstRealRuntimeEventuallyAdmits) {
  service::RuntimeConfig RC;
  RC.Sched.NumWorkers = 2;
  RC.MaxActiveSessions = 1;
  RC.MaxQueuedSessions = 1;
  service::Runtime RT(RC);
  std::atomic<bool> Release{false};
  auto Occupant = RT.submitIO<IOE>([&](ParCtx<IOE> Ctx) -> Par<int> {
    while (!Release.load(std::memory_order_acquire))
      co_await yield(Ctx);
    co_return 1;
  });
  auto Queued = RT.submit<D>(
      [](ParCtx<D> Ctx) -> Par<uint64_t> { co_return 2; });
  std::thread Releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Release.store(true, std::memory_order_release);
  });
  // The queue is full until the occupant finishes, so the first tries
  // shed; the policy keeps retrying until admission opens up.
  service::RetryPolicy P;
  P.MaxAttempts = 200;
  P.BaseDelayNanos = 500'000; // 0.5 ms
  P.MaxDelayNanos = 2'000'000;
  auto Out = service::submitWithRetry(P, [&] {
    auto F = RT.submit<D>(
        [](ParCtx<D> Ctx) -> Par<uint64_t> { co_return 3; });
    return F.get();
  });
  Releaser.join();
  ASSERT_TRUE(Out.ok()) << Out.fault().Message;
  EXPECT_EQ(Out.value(), 3u);
  EXPECT_TRUE(Occupant.get().ok());
  EXPECT_TRUE(Queued.get().ok());
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

#if LVISH_TELEMETRY
TEST(ServiceRobustness, RobustnessCountersTickOnEachPath) {
  auto Before = obs::telemetrySnapshot();
  {
    service::RuntimeConfig RC;
    RC.Sched.NumWorkers = 2;
    RC.MaxActiveSessions = 1;
    RC.MaxQueuedSessions = 1;
    service::Runtime RT(RC);
    std::atomic<bool> Release{false};
    auto Occupant = RT.submitIO<IOE>([&](ParCtx<IOE> Ctx) -> Par<int> {
      while (!Release.load(std::memory_order_acquire))
        co_await yield(Ctx);
      co_return 1;
    });
    auto Queued = RT.submit<D>(
        [](ParCtx<D> Ctx) -> Par<uint64_t> { co_return 2; });
    auto Shedded = RT.submit<D>(
        [](ParCtx<D> Ctx) -> Par<uint64_t> { co_return 3; });
    EXPECT_EQ(Shedded.get().fault().Code, FaultCode::Shed);
    std::thread Releaser([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      Release.store(true, std::memory_order_release);
    });
    RT.drain(); // Active occupant forces a real DrainWaits tick.
    Releaser.join();
    EXPECT_TRUE(Occupant.get().ok());
    auto OQ = Queued.get();
    EXPECT_TRUE(!OQ.ok() || OQ.value() == 2u);
  }
  {
    service::Runtime RT({.Sched = {.NumWorkers = 2}});
    service::SessionOptions Opts;
    Opts.MaxSteps = 64;
    EXPECT_EQ(RT.runIO<IOE>(yieldForever, Opts).fault().Code,
              FaultCode::BudgetExceeded);
  }
  auto After = obs::telemetrySnapshot();
  EXPECT_GE(After.count(obs::Event::SessionsShed),
            Before.count(obs::Event::SessionsShed) + 1);
  EXPECT_GE(After.count(obs::Event::BudgetFaults),
            Before.count(obs::Event::BudgetFaults) + 1);
  EXPECT_GE(After.count(obs::Event::DrainWaits),
            Before.count(obs::Event::DrainWaits) + 1);
  // Every specialized refusal also ticks the umbrella counter.
  EXPECT_GE(After.count(obs::Event::SessionsRejected),
            Before.count(obs::Event::SessionsRejected) + 1);
}
#endif // LVISH_TELEMETRY

} // namespace
