//===- SimTest.cpp - Parallelism simulator conservation laws ---------------===//
//
// Validates the replay simulator against scheduling theory: P=1 makespan
// equals total work; makespan is bounded below by both span and work/P
// (Brent); more workers never hurt; the bandwidth model caps memory-bound
// speedups at the aggregate factor.
//
//===----------------------------------------------------------------------===//

#include "src/sim/Simulator.h"

#include "src/core/LVish.h"
#include "src/core/ParFor.h"

#include <gtest/gtest.h>

using namespace lvish;
using namespace lvish::sim;

namespace {

constexpr EffectSet D = Eff::Det;

/// Builds a trace by actually running a Par program with tracing on.
template <typename F> TaskGraph record(F Body) {
  service::RuntimeConfig Cfg;
  Cfg.Sched.NumWorkers = 1;
  Cfg.Sched.EnableTracing = true;
  service::Runtime RT(Cfg);
  RT.run<D>(Body).valueOrAbort();
  return TaskGraph::fromTrace(*RT.scheduler().trace());
}

/// CPU-burning helper so slices have measurable durations.
volatile uint64_t BurnSink = 0;
void burn(uint64_t Iters) {
  uint64_t X = 88172645463325252ULL;
  for (uint64_t I = 0; I < Iters; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
  }
  BurnSink = X;
}

/// Sanitizer instrumentation slows every traced sync operation by ~10x,
/// which distorts the recorded work/span ratios the scaling tests assert
/// on. Conservation laws (Brent, monotonicity) still hold and stay enabled.
constexpr bool SanitizerSkewsTiming =
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
    true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

TaskGraph fanOutGraph(int Tasks, uint64_t Iters) {
  return record([Tasks, Iters](ParCtx<D> Ctx) -> Par<void> {
    auto Body = [Iters](size_t) { burn(Iters); };
    co_await parallelFor(Ctx, 0, static_cast<size_t>(Tasks), 1, Body);
  });
}

TEST(Sim, SingleWorkerMakespanEqualsTotalWork) {
  TaskGraph G = fanOutGraph(16, 20000);
  SimResult R = simulate(G, 1);
  double Work = static_cast<double>(G.totalWorkNanos()) * 1e-9;
  EXPECT_NEAR(R.MakespanSeconds, Work, Work * 1e-6);
  EXPECT_NEAR(R.BusySeconds, Work, Work * 1e-6);
}

TEST(Sim, BrentBoundsHold) {
  TaskGraph G = fanOutGraph(32, 15000);
  double Work = static_cast<double>(G.totalWorkNanos()) * 1e-9;
  double Span = static_cast<double>(G.criticalPathNanos()) * 1e-9;
  for (unsigned P : {1u, 2u, 4u, 8u, 16u}) {
    double T = simulate(G, P).MakespanSeconds;
    EXPECT_GE(T * 1.0000001, Span) << "P=" << P;
    EXPECT_GE(T * 1.0000001, Work / P) << "P=" << P;
    EXPECT_LE(T, Work + 1e-9) << "P=" << P;
  }
}

TEST(Sim, MoreWorkersNeverSlower) {
  TaskGraph G = fanOutGraph(24, 10000);
  double Prev = simulate(G, 1).MakespanSeconds;
  for (unsigned P : {2u, 3u, 4u, 8u}) {
    double T = simulate(G, P).MakespanSeconds;
    EXPECT_LE(T, Prev * 1.0000001) << "P=" << P;
    Prev = T;
  }
}

TEST(Sim, EmbarrassinglyParallelScalesNearLinearly) {
  if (SanitizerSkewsTiming)
    GTEST_SKIP() << "sanitizer overhead distorts recorded work/span ratios";
  TaskGraph G = fanOutGraph(64, 30000);
  auto S = speedupSeries(G, {1, 2, 4, 8});
  EXPECT_NEAR(S[0], 1.0, 1e-9);
  EXPECT_GT(S[1], 1.7);
  EXPECT_GT(S[2], 3.0);
  EXPECT_GT(S[3], 4.5);
}

TEST(Sim, SequentialChainDoesNotScale) {
  if (SanitizerSkewsTiming)
    GTEST_SKIP() << "sanitizer overhead distorts recorded work/span ratios";
  // A dependency chain via IVars: span == work, speedup pinned at 1.
  TaskGraph G = record([](ParCtx<D> Ctx) -> Par<void> {
    auto Prev = newIVar<int>(Ctx);
    put(Ctx, *Prev, 0);
    for (int I = 0; I < 10; ++I) {
      auto Next = newIVar<int>(Ctx);
      auto Body = [Prev, Next](ParCtx<D> C) -> Par<void> {
        int V = co_await get(C, *Prev);
        burn(20000);
        put(C, *Next, V + 1);
      };
      fork(Ctx, Body);
      Prev = Next;
    }
    int Last = co_await get(Ctx, *Prev);
    (void)Last;
  });
  double Work = static_cast<double>(G.totalWorkNanos()) * 1e-9;
  double Span = static_cast<double>(G.criticalPathNanos()) * 1e-9;
  EXPECT_GT(Span, Work * 0.9); // The chain dominates.
  auto S = speedupSeries(G, {1, 8});
  EXPECT_LT(S[1], 1.15);
}

TEST(Sim, BandwidthModelCapsMemoryBoundSpeedup) {
  // Synthetic trace: 32 independent fully-memory-bound slices.
  TraceRecorder Rec;
  for (int I = 0; I < 32; ++I) {
    uint32_t T = Rec.onTaskCreated(TraceRecorder::None);
    uint32_t S = Rec.onSliceStart(T);
    // 10 ms measured, and enough bytes that all 10 ms are memory time.
    Rec.onSliceEnd(S, 10'000'000, 100'000'000); // 100 MB at 8 GB/s ~ 12ms.
  }
  TaskGraph G = TaskGraph::fromTrace(Rec);
  MachineModel M;
  M.StreamBandwidth = 1e10; // 10 ms worth of bytes = exactly the duration.
  M.AggregateFactor = 3.0;
  auto S = speedupSeries(G, {1, 2, 4, 8, 16}, M);
  // Speedup must saturate near the aggregate bandwidth factor (3x).
  EXPECT_GT(S[1], 1.8);
  EXPECT_LE(S[3], 3.2);
  EXPECT_LE(S[4], 3.2);
  EXPECT_NEAR(S[4], 3.0, 0.5);
}

TEST(Sim, ComputeBoundIgnoresBandwidthModel) {
  TraceRecorder Rec;
  for (int I = 0; I < 16; ++I) {
    uint32_t T = Rec.onTaskCreated(TraceRecorder::None);
    uint32_t S = Rec.onSliceStart(T);
    Rec.onSliceEnd(S, 10'000'000, 0); // No memory traffic.
  }
  TaskGraph G = TaskGraph::fromTrace(Rec);
  MachineModel M;
  M.AggregateFactor = 1.0; // Even a pessimistic cap must not matter.
  auto S = speedupSeries(G, {1, 8, 16}, M);
  EXPECT_NEAR(S[1], 8.0, 0.01);
  EXPECT_NEAR(S[2], 16.0, 0.01);
}

TEST(Sim, MixedWorkloadLandsBetweenBounds) {
  // Half-memory, half-compute slices: speedup between the bandwidth cap
  // and linear.
  TraceRecorder Rec;
  for (int I = 0; I < 16; ++I) {
    uint32_t T = Rec.onTaskCreated(TraceRecorder::None);
    uint32_t S = Rec.onSliceStart(T);
    Rec.onSliceEnd(S, 10'000'000, 50'000'000); // 5 ms memory at 1e10 B/s.
  }
  TaskGraph G = TaskGraph::fromTrace(Rec);
  MachineModel M;
  M.StreamBandwidth = 1e10;
  M.AggregateFactor = 2.0;
  double S8 = speedupSeries(G, {1, 8}, M)[1];
  // With the overlap model, memory time dominates once stretched, so the
  // mixed workload saturates AT the bandwidth cap (and clearly below
  // linear).
  EXPECT_GE(S8, 2.0 - 1e-9);
  EXPECT_LT(S8, 8.0);
}

TEST(Sim, DeterministicReplay) {
  TaskGraph G = fanOutGraph(20, 5000);
  for (unsigned P : {1u, 3u, 7u}) {
    double A = simulate(G, P).MakespanSeconds;
    double B = simulate(G, P).MakespanSeconds;
    EXPECT_EQ(A, B);
  }
}

TEST(Sim, ForkJoinDagIsAcyclicAndConnected) {
  TaskGraph G = fanOutGraph(8, 1000);
  // criticalPathNanos fatals on cycles; reaching here means acyclic.
  EXPECT_GT(G.criticalPathNanos(), 0u);
  EXPECT_GT(G.numSlices(), 8u);
}

} // namespace
