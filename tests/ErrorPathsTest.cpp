//===- ErrorPathsTest.cpp - Deterministic-error death tests ----------------===//
//
// The paper's determinism violations must fail loudly and deterministically
// rather than return wrong answers: conflicting IVar puts (lattice top),
// conflicting IMap bindings, put-after-freeze, cancel+read conflicts, and
// ParST discipline violations (poisoned views, bad split points).
//
// Two layers of coverage:
//  * Death tests: the legacy value-returning runPar wrappers must still
//    abort with the documented message (through the one valueOrAbort
//    choke point).
//  * Outcome tests: the fault-aware tryRunPar wrappers must *contain*
//    every Fault code in-process - same (code, pedigree) on every run,
//    with 4 workers, never aborting.
//
//===----------------------------------------------------------------------===//

#include "src/core/LVish.h"
#include "src/data/IMap.h"
#include "src/fault/FaultPlan.h"
#include "src/trans/Cancel.h"
#include "src/trans/ParST.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;

using ErrorPathsDeathTest = ::testing::Test;

TEST(ErrorPathsDeathTest, ConflictingIVarPutsReachTop) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        auto IV = newIVar<int>(Ctx);
        put(Ctx, *IV, 1);
        put(Ctx, *IV, 2); // Different value: lattice top.
        co_return;
      }),
      "multiple put to an IVar");
}

TEST(ErrorPathsDeathTest, ConflictingMapBindingsReachTop) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        auto M = newEmptyMap<int, int>(Ctx);
        insert(Ctx, *M, 1, 10);
        insert(Ctx, *M, 1, 11); // Same key, different value.
        co_return;
      }),
      "conflicting insert");
}

TEST(ErrorPathsDeathTest, PutAfterFreezeAborts) {
  EXPECT_DEATH(
      runParIO<Eff::QuasiDet>([](ParCtx<Eff::QuasiDet> Ctx) -> Par<void> {
        auto IV = newIVar<int>(Ctx);
        freezeIVar(Ctx, *IV); // Freeze while empty...
        put(Ctx, *IV, 3);     // ...then change the state.
        co_return;
      }),
      "frozen LVar");
}

TEST(ErrorPathsDeathTest, CancelThenReadConflicts) {
  EXPECT_DEATH(
      runParIO<Eff::FullIO>([](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
        auto Fut =
            forkCancelable(Ctx, [](ParCtx<Eff::ReadOnly> C) -> Par<int> {
              for (;;)
                co_await yield(C);
            });
        cancel(Ctx, Fut);
        int V = co_await readCFuture(Ctx, Fut); // Error: both ops.
        (void)V;
        co_return;
      }),
      "cancelled and read");
}

TEST(ErrorPathsDeathTest, ReadThenCancelConflictsToo) {
  // "Even if the read happens first" - the same deterministic error.
  EXPECT_DEATH(
      runParIO<Eff::FullIO>([](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
        auto Fut =
            forkCancelable(Ctx, [](ParCtx<Eff::ReadOnly> C) -> Par<int> {
              co_return 1;
            });
        int V = co_await readCFuture(Ctx, Fut);
        (void)V;
        cancel(Ctx, Fut);
        co_return;
      }),
      "cancelled and read");
}

TEST(ErrorPathsDeathTest, MainDeadlockIsReported) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<int> {
        auto Never = newIVar<int>(Ctx);
        int V = co_await get(Ctx, *Never); // Root blocks forever.
        co_return V;
      }),
      "deterministic deadlock");
}

TEST(ErrorPathsDeathTest, PoisonedViewAccessAborts) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        co_await runParVec(
            Ctx, 8, 0,
            [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<void> {
              auto LeftB = [V](ParCtx<Eff::DetST> C2,
                               VecView<int> L) -> Par<void> {
                V[0] = 1; // Captured parent view: poisoned in here.
                co_return;
              };
              auto RightB = [](ParCtx<Eff::DetST> C2,
                               VecView<int> R) -> Par<void> { co_return; };
              co_await forkSTSplit(C, V, 4, LeftB, RightB);
              co_return;
            });
        co_return;
      }),
      "poisoned VecView");
}

TEST(ErrorPathsDeathTest, EscapedViewAfterScopeAborts) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        VecView<int> Escapee;
        co_await runParVec(
            Ctx, 4, 0,
            [&Escapee](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<void> {
              Escapee = V;
              co_return;
            });
        Escapee.writeChecked(0, 1); // Scope over: poisoned.
        co_return;
      }),
      "poisoned VecView");
}

TEST(ErrorPathsDeathTest, SplitPointOutOfRangeAborts) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        co_await runParVec(
            Ctx, 4, 0,
            [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<void> {
              auto Nop = [](ParCtx<Eff::DetST> C2,
                            VecView<int>) -> Par<void> { co_return; };
              co_await forkSTSplit(C, V, 99, Nop, Nop);
              co_return;
            });
        co_return;
      }),
      "split point out of range");
}

TEST(ErrorPathsDeathTest, ViewBoundsCheckedAccessAborts) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        co_await runParVec(
            Ctx, 4, 0,
            [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<void> {
              V.writeChecked(4, 1); // One past the end.
              co_return;
            });
        co_return;
      }),
      "out of range");
}

} // namespace

/// AndLattice-style two-writer conflict lattice: 0 = bot, 1 = a, 2 = b,
/// 3 = top (namespace scope so PureLVar's template machinery can name it).
struct AndLatticeForDeath {
  using ValueType = int;
  static ValueType bottom() { return 0; }
  static ValueType join(ValueType A, ValueType B) { return A | B; }
  static bool isTop(ValueType A) { return A == 3; }
};

namespace {

TEST(ErrorPathsDeathTest, ConflictingPureWritesReachTop) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        auto LV = newPureLVar<AndLatticeForDeath>(Ctx);
        putPureLVar(Ctx, *LV, 1);
        putPureLVar(Ctx, *LV, 2); // join = 3 = top.
        co_return;
      }),
      "lattice top");
}

} // namespace

//===----------------------------------------------------------------------===//
// Outcome tests: every Fault code, contained in-process with 4 workers.
//
// Each erroneous program runs several times through a tryRunPar* wrapper;
// the fact these tests run in the gtest process at all (no EXPECT_DEATH)
// is the never-aborts guarantee, and the loop asserts the Fault's
// deterministic identity (code + pedigree; worker/message-suffix details
// are diagnostic only). Cross-task conflicts are sequenced through a
// threshold read so the losing writer - hence the faulting pedigree - is
// fixed by dataflow, not by the schedule.
//===----------------------------------------------------------------------===//

/// Deliberately broken lattice for the CheckerViolation fault path:
/// "first wins" is neither commutative nor an upper bound (namespace
/// scope so PureLVar's template machinery can name it).
struct BrokenJoinLattice {
  using ValueType = int;
  static ValueType bottom() { return 0; }
  static ValueType join(ValueType A, ValueType B) {
    (void)B;
    return A;
  }
};

namespace {

constexpr unsigned FaultWorkers = 4;
constexpr int FaultRepeats = 4;

SchedulerConfig faultConfig(uint64_t StealSeed = 1) {
  SchedulerConfig C;
  C.NumWorkers = FaultWorkers;
  C.StealSeed = StealSeed;
  return C;
}

/// Runs \p Once (which performs one tryRunPar session and returns its
/// Fault) FaultRepeats times over distinct steal seeds and asserts the
/// deterministic identity (code, pedigree) never changes.
template <typename OnceT>
void expectStableFault(OnceT Once, FaultCode Code, const char *Pedigree) {
  for (int I = 0; I < FaultRepeats; ++I) {
    Fault F = Once(faultConfig(/*StealSeed=*/1 + 17 * I));
    EXPECT_EQ(F.Code, Code) << "run " << I << ": " << F.Message;
    EXPECT_EQ(F.Pedigree, Pedigree) << "run " << I << ": " << F.Message;
    EXPECT_NE(F.Message.find(faultCodeName(Code)), std::string::npos)
        << F.Message;
  }
}

TEST(FaultOutcomeTest, ConflictingPutContained) {
  expectStableFault(
      [](SchedulerConfig C) {
        auto O = tryRunPar<D>(
            [](ParCtx<D> Ctx) -> Par<int> {
              auto IV = newIVar<int>(Ctx, "conflict-ivar");
              auto ForkBody = [IV](ParCtx<D> C2) -> Par<void> {
                int V = co_await get(C2, *IV); // After the first put...
                put(C2, *IV, V + 1);           // ...conflict, in the child.
              };
              fork(Ctx, ForkBody);
              put(Ctx, *IV, 1);
              co_return co_await get(Ctx, *IV);
            },
            C);
        EXPECT_FALSE(O.ok());
        return O.fault();
      },
      FaultCode::ConflictingPut, "L");
}

TEST(FaultOutcomeTest, FaultCarriesLVarNameAndDiagnostics) {
  auto O = tryRunPar<D>(
      [](ParCtx<D> Ctx) -> Par<void> {
        auto IV = newIVar<int>(Ctx, "named-ivar");
        put(Ctx, *IV, 1);
        put(Ctx, *IV, 2);
        co_return;
      },
      faultConfig());
  ASSERT_FALSE(O.ok());
  const Fault &F = O.fault();
  EXPECT_EQ(F.LVarName, "named-ivar");
  // Satellite 1: the message carries the full diagnostic suffix.
  EXPECT_NE(F.Message.find("lvar=named-ivar"), std::string::npos)
      << F.Message;
  EXPECT_NE(F.Message.find("session="), std::string::npos) << F.Message;
  EXPECT_NE(F.Message.find("worker="), std::string::npos) << F.Message;
  EXPECT_NE(F.Message.find("pedigree="), std::string::npos) << F.Message;
  EXPECT_NE(F.Message.find("multiple put to an IVar"), std::string::npos)
      << F.Message;
}

TEST(FaultOutcomeTest, ConflictingInsertContained) {
  expectStableFault(
      [](SchedulerConfig C) {
        auto O = tryRunPar<D>(
            [](ParCtx<D> Ctx) -> Par<void> {
              auto M = newEmptyMap<int, int>(Ctx);
              auto ForkBody = [M](ParCtx<D> C2) -> Par<void> {
                int V = co_await get(C2, *M, 7);
                insert(C2, *M, 7, V + 1); // Conflicting rebind.
              };
              fork(Ctx, ForkBody);
              insert(Ctx, *M, 7, 10);
              co_return;
            },
            C);
        EXPECT_FALSE(O.ok());
        return O.fault();
      },
      FaultCode::ConflictingInsert, "L");
}

TEST(FaultOutcomeTest, LatticeTopContained) {
  expectStableFault(
      [](SchedulerConfig C) {
        auto O = tryRunPar<D>(
            [](ParCtx<D> Ctx) -> Par<void> {
              auto LV = newPureLVar<AndLatticeForDeath>(Ctx);
              auto ForkBody = [LV](ParCtx<D> C2) -> Par<void> {
                // Wait until the root's write landed, then push to top.
                // (Named variable: GCC 12 mis-handles braced init inside
                // co_await.)
                ThresholdSets<int> Th{{1}};
                co_await get(C2, *LV, Th);
                putPureLVar(C2, *LV, 2); // join(1,2) = 3 = top.
              };
              fork(Ctx, ForkBody);
              putPureLVar(Ctx, *LV, 1);
              co_return;
            },
            C);
        EXPECT_FALSE(O.ok());
        return O.fault();
      },
      FaultCode::LatticeTop, "L");
}

TEST(FaultOutcomeTest, PutAfterFreezeContained) {
  expectStableFault(
      [](SchedulerConfig C) {
        auto O = tryRunParIO<Eff::QuasiDet>(
            [](ParCtx<Eff::QuasiDet> Ctx) -> Par<void> {
              auto IV = newIVar<int>(Ctx);
              auto Gate = newIVar<bool>(Ctx);
              auto ForkBody = [IV, Gate](ParCtx<Eff::QuasiDet> C2)
                  -> Par<void> {
                co_await get(C2, *Gate); // After the freeze...
                put(C2, *IV, 3);         // ...change a frozen LVar.
              };
              fork(Ctx, ForkBody);
              freezeIVar(Ctx, *IV);
              put(Ctx, *Gate, true);
              co_return;
            },
            C);
        EXPECT_FALSE(O.ok());
        return O.fault();
      },
      FaultCode::PutAfterFreeze, "L");
}

TEST(FaultOutcomeTest, CancelReadConflictContained) {
  expectStableFault(
      [](SchedulerConfig C) {
        auto O = tryRunParIO<Eff::FullIO>(
            [](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
              auto Spin = [](ParCtx<Eff::ReadOnly> C2) -> Par<int> {
                for (;;)
                  co_await yield(C2);
              };
              auto Fut = forkCancelable(Ctx, Spin);
              cancel(Ctx, Fut);
              int V = co_await readCFuture(Ctx, Fut);
              (void)V;
              co_return;
            },
            C);
        EXPECT_FALSE(O.ok());
        return O.fault();
      },
      // readCFuture's conflict check runs in the root coroutine, before
      // any fork: the root's continuation pedigree after forkCancelable
      // is a single R branch.
      FaultCode::CancelReadConflict, "R");
}

TEST(FaultOutcomeTest, DeadlockDrainedContained) {
  expectStableFault(
      [](SchedulerConfig C) {
        auto O = tryRunPar<D>(
            [](ParCtx<D> Ctx) -> Par<int> {
              auto Never = newIVar<int>(Ctx);
              int V = co_await get(Ctx, *Never); // Root blocks forever.
              co_return V;
            },
            C);
        EXPECT_FALSE(O.ok());
        EXPECT_NE(O.fault().Message.find("deterministic deadlock"),
                  std::string::npos);
        EXPECT_NE(O.fault().Message.find("scheduler drained"),
                  std::string::npos);
        return O.fault();
      },
      FaultCode::DeadlockDrained, "");
}

TEST(FaultOutcomeTest, DeadlockLeakedTasksContained) {
  expectStableFault(
      [](SchedulerConfig C) {
        auto O = tryRunPar<D>(
            [](ParCtx<D> Ctx) -> Par<int> {
              auto Never = newIVar<int>(Ctx);
              auto AlsoNever = newIVar<int>(Ctx);
              auto ForkBody = [AlsoNever](ParCtx<D> C2) -> Par<void> {
                co_await get(C2, *AlsoNever); // Child also blocks forever.
              };
              fork(Ctx, ForkBody);
              int V = co_await get(Ctx, *Never);
              co_return V;
            },
            C);
        EXPECT_FALSE(O.ok());
        EXPECT_NE(O.fault().Message.find("deterministic deadlock"),
                  std::string::npos);
        EXPECT_NE(O.fault().Message.find("leaked"), std::string::npos);
        return O.fault();
      },
      FaultCode::DeadlockLeakedTasks, "");
}

#if LVISH_CHECK
TEST(FaultOutcomeTest, CheckerViolationContained) {
  check::setViolationHandler(nullptr);
  check::setSamplePeriod(1);
  expectStableFault(
      [](SchedulerConfig C) {
        auto O = tryRunPar<D>(
            [](ParCtx<D> Ctx) -> Par<void> {
              auto LV = newPureLVar<BrokenJoinLattice>(Ctx);
              putPureLVar(Ctx, *LV, 5); // Join laws fire on the root.
              co_return;
            },
            C);
        EXPECT_FALSE(O.ok());
        EXPECT_NE(O.fault().Message.find("determinism violation"),
                  std::string::npos);
        return O.fault();
      },
      FaultCode::CheckerViolation, "");
}
#else
TEST(FaultOutcomeTest, CheckerViolationContained) {
  GTEST_SKIP() << "LVISH_CHECK is off in this configuration";
}
#endif

TEST(FaultOutcomeTest, InjectedFailureContained) {
  if constexpr (!fault::InjectionEnabled) {
    GTEST_SKIP() << "LVISH_FAULTS is off; see FaultStressTest in the "
                    "faults CI stage";
  } else {
    fault::FaultPlan Plan;
    Plan.Seed = 42;
    Plan.HaveFailPedigree = true;
    Plan.FailPedigree = "L"; // Doom the first forked child.
    fault::PlanScope Scope(Plan);
    expectStableFault(
        [](SchedulerConfig C) {
          auto O = tryRunPar<D>(
              [](ParCtx<D> Ctx) -> Par<int> {
                auto IV = newIVar<int>(Ctx);
                auto ForkBody = [IV](ParCtx<D> C2) -> Par<void> {
                  put(C2, *IV, 7); // Raises at the put injection poll.
                  co_return;
                };
                fork(Ctx, ForkBody);
                co_return co_await get(Ctx, *IV);
              },
              C);
          EXPECT_FALSE(O.ok());
          return O.fault();
        },
        FaultCode::InjectedFailure, "L");
  }
}

TEST(FaultOutcomeTest, SuccessfulSessionReturnsValue) {
  for (int I = 0; I < FaultRepeats; ++I) {
    auto O = tryRunPar<D>(
        [](ParCtx<D> Ctx) -> Par<int> {
          auto IV = newIVar<int>(Ctx);
          auto ForkBody = [IV](ParCtx<D> C2) -> Par<void> {
            put(C2, *IV, 21);
            co_return;
          };
          fork(Ctx, ForkBody);
          int V = co_await get(Ctx, *IV);
          co_return 2 * V;
        },
        faultConfig(1 + 17 * I));
    ASSERT_TRUE(O.ok());
    EXPECT_EQ(std::move(O).value(), 42);
  }
}

/// Sessions after a contained fault must start from a clean fault scope -
/// on a shared Runtime pool too.
TEST(FaultOutcomeTest, SchedulerReusableAfterFault) {
  service::RuntimeConfig RC;
  RC.Sched = faultConfig();
  service::Runtime RT(RC);
  auto Bad = [](ParCtx<D> Ctx) -> Par<void> {
    auto IV = newIVar<int>(Ctx);
    put(Ctx, *IV, 1);
    put(Ctx, *IV, 2);
    co_return;
  };
  auto Good = [](ParCtx<D> Ctx) -> Par<int> { co_return 7; };
  auto O1 = RT.run<D>(Bad);
  EXPECT_FALSE(O1.ok());
  EXPECT_EQ(O1.fault().Code, FaultCode::ConflictingPut);
  auto O2 = RT.run<D>(Good);
  ASSERT_TRUE(O2.ok());
  EXPECT_EQ(O2.value(), 7);
  auto O3 = RT.run<D>(Bad);
  EXPECT_FALSE(O3.ok());
  EXPECT_EQ(O3.fault().Code, FaultCode::ConflictingPut);
}

} // namespace
