//===- ErrorPathsTest.cpp - Deterministic-error death tests ----------------===//
//
// The paper's determinism violations must fail loudly and deterministically
// rather than return wrong answers: conflicting IVar puts (lattice top),
// conflicting IMap bindings, put-after-freeze, cancel+read conflicts, and
// ParST discipline violations (poisoned views, bad split points). These
// are gtest death tests: each erroneous program must abort with the
// documented message.
//
//===----------------------------------------------------------------------===//

#include "src/core/LVish.h"
#include "src/data/IMap.h"
#include "src/trans/Cancel.h"
#include "src/trans/ParST.h"

#include <gtest/gtest.h>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;

using ErrorPathsDeathTest = ::testing::Test;

TEST(ErrorPathsDeathTest, ConflictingIVarPutsReachTop) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        auto IV = newIVar<int>(Ctx);
        put(Ctx, *IV, 1);
        put(Ctx, *IV, 2); // Different value: lattice top.
        co_return;
      }),
      "multiple put to an IVar");
}

TEST(ErrorPathsDeathTest, ConflictingMapBindingsReachTop) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        auto M = newEmptyMap<int, int>(Ctx);
        insert(Ctx, *M, 1, 10);
        insert(Ctx, *M, 1, 11); // Same key, different value.
        co_return;
      }),
      "conflicting insert");
}

TEST(ErrorPathsDeathTest, PutAfterFreezeAborts) {
  EXPECT_DEATH(
      runParIO<Eff::QuasiDet>([](ParCtx<Eff::QuasiDet> Ctx) -> Par<void> {
        auto IV = newIVar<int>(Ctx);
        freezeIVar(Ctx, *IV); // Freeze while empty...
        put(Ctx, *IV, 3);     // ...then change the state.
        co_return;
      }),
      "frozen LVar");
}

TEST(ErrorPathsDeathTest, CancelThenReadConflicts) {
  EXPECT_DEATH(
      runParIO<Eff::FullIO>([](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
        auto Fut =
            forkCancelable(Ctx, [](ParCtx<Eff::ReadOnly> C) -> Par<int> {
              for (;;)
                co_await yield(C);
            });
        cancel(Ctx, Fut);
        int V = co_await readCFuture(Ctx, Fut); // Error: both ops.
        (void)V;
        co_return;
      }),
      "cancelled and read");
}

TEST(ErrorPathsDeathTest, ReadThenCancelConflictsToo) {
  // "Even if the read happens first" - the same deterministic error.
  EXPECT_DEATH(
      runParIO<Eff::FullIO>([](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
        auto Fut =
            forkCancelable(Ctx, [](ParCtx<Eff::ReadOnly> C) -> Par<int> {
              co_return 1;
            });
        int V = co_await readCFuture(Ctx, Fut);
        (void)V;
        cancel(Ctx, Fut);
        co_return;
      }),
      "cancelled and read");
}

TEST(ErrorPathsDeathTest, MainDeadlockIsReported) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<int> {
        auto Never = newIVar<int>(Ctx);
        int V = co_await get(Ctx, *Never); // Root blocks forever.
        co_return V;
      }),
      "deterministic deadlock");
}

TEST(ErrorPathsDeathTest, PoisonedViewAccessAborts) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        co_await runParVec(
            Ctx, 8, 0,
            [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<void> {
              auto LeftB = [V](ParCtx<Eff::DetST> C2,
                               VecView<int> L) -> Par<void> {
                V[0] = 1; // Captured parent view: poisoned in here.
                co_return;
              };
              auto RightB = [](ParCtx<Eff::DetST> C2,
                               VecView<int> R) -> Par<void> { co_return; };
              co_await forkSTSplit(C, V, 4, LeftB, RightB);
              co_return;
            });
        co_return;
      }),
      "poisoned VecView");
}

TEST(ErrorPathsDeathTest, EscapedViewAfterScopeAborts) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        VecView<int> Escapee;
        co_await runParVec(
            Ctx, 4, 0,
            [&Escapee](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<void> {
              Escapee = V;
              co_return;
            });
        Escapee.writeChecked(0, 1); // Scope over: poisoned.
        co_return;
      }),
      "poisoned VecView");
}

TEST(ErrorPathsDeathTest, SplitPointOutOfRangeAborts) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        co_await runParVec(
            Ctx, 4, 0,
            [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<void> {
              auto Nop = [](ParCtx<Eff::DetST> C2,
                            VecView<int>) -> Par<void> { co_return; };
              co_await forkSTSplit(C, V, 99, Nop, Nop);
              co_return;
            });
        co_return;
      }),
      "split point out of range");
}

TEST(ErrorPathsDeathTest, ViewBoundsCheckedAccessAborts) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        co_await runParVec(
            Ctx, 4, 0,
            [](ParCtx<Eff::DetST> C, VecView<int> V) -> Par<void> {
              V.writeChecked(4, 1); // One past the end.
              co_return;
            });
        co_return;
      }),
      "out of range");
}

} // namespace

/// AndLattice-style two-writer conflict lattice: 0 = bot, 1 = a, 2 = b,
/// 3 = top (namespace scope so PureLVar's template machinery can name it).
struct AndLatticeForDeath {
  using ValueType = int;
  static ValueType bottom() { return 0; }
  static ValueType join(ValueType A, ValueType B) { return A | B; }
  static bool isTop(ValueType A) { return A == 3; }
};

namespace {

TEST(ErrorPathsDeathTest, ConflictingPureWritesReachTop) {
  EXPECT_DEATH(
      runPar<D>([](ParCtx<D> Ctx) -> Par<void> {
        auto LV = newPureLVar<AndLatticeForDeath>(Ctx);
        putPureLVar(Ctx, *LV, 1);
        putPureLVar(Ctx, *LV, 2); // join = 3 = top.
        co_return;
      }),
      "lattice top");
}

} // namespace
