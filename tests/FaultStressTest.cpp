//===- FaultStressTest.cpp - Seeded fault-injection determinism ------------===//
//
// The fault-containment acceptance harness (DESIGN.md Section 8): the same
// program, run under many steal seeds, fault-plan seeds, and worker
// counts, must produce the *identical* outcome every time - the same
// value, or the same Fault (code + pedigree), with the process never
// aborting.
//
// The outcome-identity sweeps always run (they need no injection); the
// plan-driven tests are armed by configuring with -DLVISH_FAULTS=ON (the
// `faults` stage of tools/ci.sh) and skip cleanly otherwise.
//
//===----------------------------------------------------------------------===//

#include "src/core/LVish.h"
#include "src/fault/FaultPlan.h"
#include "src/obs/Telemetry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;

SchedulerConfig cfg(unsigned Workers, uint64_t StealSeed) {
  SchedulerConfig C;
  C.NumWorkers = Workers;
  C.StealSeed = StealSeed;
  return C;
}

const unsigned WorkerCounts[] = {1, 2, 4};
const uint64_t PlanSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89}; // >= 8.

/// Canonical comparable rendering of an outcome: the value, or the
/// Fault's deterministic identity (code + pedigree + LVar name). The
/// worker index and the message's diagnostic suffix are deliberately NOT
/// part of the signature.
std::string sig(const ParOutcome<int> &O) {
  if (O.ok())
    return "ok:" + std::to_string(O.value());
  const Fault &F = O.fault();
  return std::string("fault:") + faultCodeName(F.Code) + ":pedigree=" +
         F.Pedigree + ":lvar=" + F.LVarName;
}

/// The canonical fork-tree program: forks \p Kids children off the root,
/// child i filling slot i with i*i; the root sums all slots. With no plan
/// installed this returns sum(i*i). Child i's creation pedigree is
/// "R"*i + "L" (the root moves one R per fork; each child descends L).
ParOutcome<int> fanOut(SchedulerConfig C, int Kids) {
  return tryRunPar<D>(
      [Kids](ParCtx<D> Ctx) -> Par<int> {
        std::vector<std::shared_ptr<IVar<int>>> Slots;
        for (int I = 0; I < Kids; ++I)
          Slots.push_back(newIVar<int>(Ctx, "slot"));
        for (int I = 0; I < Kids; ++I) {
          auto Slot = Slots[static_cast<size_t>(I)];
          auto Body = [Slot, I](ParCtx<D> C2) -> Par<void> {
            put(C2, *Slot, I * I);
            co_return;
          };
          fork(Ctx, Body);
        }
        int Sum = 0;
        for (int I = 0; I < Kids; ++I)
          Sum += co_await get(Ctx, *Slots[static_cast<size_t>(I)]);
        co_return Sum;
      },
      C);
}

/// A contract-violating program: the first-forked child conflicts with
/// the root's put, sequenced through a threshold read so the loser is
/// fixed by dataflow. Expected outcome under any schedule:
/// (conflicting_put, pedigree "L").
ParOutcome<int> conflictProgram(SchedulerConfig C) {
  return tryRunPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        auto IV = newIVar<int>(Ctx, "contested");
        auto Body = [IV](ParCtx<D> C2) -> Par<void> {
          int V = co_await get(C2, *IV);
          put(C2, *IV, V + 1);
        };
        fork(Ctx, Body);
        put(Ctx, *IV, 1);
        co_return co_await get(Ctx, *IV);
      },
      C);
}

/// Runs \p Program over every worker count and every seed in PlanSeeds
/// (used as steal seeds too) and asserts one identical outcome signature,
/// which must equal \p Expected.
template <typename ProgramT>
void sweepIdentical(ProgramT Program, const std::string &Expected) {
  for (unsigned W : WorkerCounts)
    for (uint64_t S : PlanSeeds) {
      ParOutcome<int> O = Program(cfg(W, S));
      EXPECT_EQ(sig(O), Expected)
          << "workers=" << W << " seed=" << S
          << (O.ok() ? "" : (" msg: " + O.fault().Message));
    }
}

// -- Always-on outcome-identity sweeps (no injection needed) ---------------

TEST(FaultStressTest, ValueIdenticalAcrossWorkersAndSeeds) {
  sweepIdentical([](SchedulerConfig C) { return fanOut(C, 6); },
                 "ok:55"); // 0+1+4+9+16+25.
}

TEST(FaultStressTest, FaultIdenticalAcrossWorkersAndSeeds) {
  sweepIdentical(conflictProgram,
                 "fault:conflicting_put:pedigree=L:lvar=contested");
}

// -- Plan-driven injection (LVISH_FAULTS builds; the `faults` CI stage) ----

TEST(FaultStressTest, TargetedFailureIdenticalAcrossSeeds) {
  if constexpr (!fault::InjectionEnabled) {
    GTEST_SKIP() << "configure with -DLVISH_FAULTS=ON";
  } else {
    // Doom exactly child #2 of the fan-out ("RRL"); every plan seed and
    // every worker count must contain the identical Fault, even with the
    // seeded delays perturbing the schedule around it.
    for (unsigned W : WorkerCounts)
      for (uint64_t S : PlanSeeds) {
        fault::FaultPlan Plan;
        Plan.Seed = S;
        Plan.HaveFailPedigree = true;
        Plan.FailPedigree = "RRL";
        Plan.DelayPeriod = 3;
        Plan.DelayNanos = 1000;
        fault::PlanScope Scope(Plan);
        ParOutcome<int> O = fanOut(cfg(W, S), 6);
        EXPECT_EQ(sig(O), "fault:injected_failure:pedigree=RRL:lvar=")
            << "workers=" << W << " seed=" << S;
      }
  }
}

TEST(FaultStressTest, DelayOnlyPlanPreservesValues) {
  if constexpr (!fault::InjectionEnabled) {
    GTEST_SKIP() << "configure with -DLVISH_FAULTS=ON";
  } else {
    // Pure schedule perturbation: delays at steal/park/put points must
    // never change the value (they are non-semantic by construction).
    for (uint64_t S : PlanSeeds) {
      fault::FaultPlan Plan;
      Plan.Seed = S;
      Plan.DelayPeriod = 2;
      Plan.DelayNanos = 2000;
      fault::PlanScope Scope(Plan);
      ParOutcome<int> O = fanOut(cfg(4, S), 6);
      EXPECT_EQ(sig(O), "ok:55") << "seed=" << S;
    }
  }
}

TEST(FaultStressTest, ChaosPlanOutcomesAreWellFormed) {
  if constexpr (!fault::InjectionEnabled) {
    GTEST_SKIP() << "configure with -DLVISH_FAULTS=ON";
  } else {
    // Chaos mode dooms tasks by seeded pedigree hash. When several doomed
    // tasks race, cancellation may keep some from reaching their raise
    // point, so the *winning* fault is not schedule-identical (DESIGN.md
    // Section 8); what IS guaranteed is a well-formed outcome: the exact
    // fan-out value, or a contained injected failure. Never an abort.
    for (uint64_t S : PlanSeeds) {
      fault::FaultPlan Plan;
      Plan.Seed = S;
      Plan.FailHashPeriod = 2; // Doom roughly every second task.
      fault::PlanScope Scope(Plan);
      ParOutcome<int> O = fanOut(cfg(4, S), 6);
      if (O.ok()) {
        EXPECT_EQ(O.value(), 55) << "seed=" << S;
      } else {
        EXPECT_EQ(O.fault().Code, FaultCode::InjectedFailure)
            << "seed=" << S << " msg: " << O.fault().Message;
        EXPECT_NE(O.fault().Message.find("injected"), std::string::npos);
      }
    }
    // Same seed, same worker count: the doom set is a pure function of
    // the plan, so repeated runs of the single-doomed-task configuration
    // stay identical (covered by TargetedFailureIdenticalAcrossSeeds);
    // here we only re-run one chaos seed to confirm containment holds
    // under repetition.
    fault::FaultPlan Plan;
    Plan.Seed = 7;
    Plan.FailHashPeriod = 2;
    for (int I = 0; I < 4; ++I) {
      fault::PlanScope Scope(Plan);
      ParOutcome<int> O = fanOut(cfg(4, 7), 6);
      EXPECT_TRUE(O.ok() || O.fault().Code == FaultCode::InjectedFailure);
    }
  }
}

TEST(FaultStressTest, SpawnAllocationFailureIsDeterministic) {
  if constexpr (!fault::InjectionEnabled) {
    GTEST_SKIP() << "configure with -DLVISH_FAULTS=ON";
  } else {
    // AllocFailPeriod = 1 fails every spawn: the root's very first fork
    // raises in the root (pedigree ""), identically for every seed and
    // worker count.
    for (unsigned W : WorkerCounts)
      for (uint64_t S : PlanSeeds) {
        fault::FaultPlan Plan;
        Plan.Seed = S;
        Plan.AllocFailPeriod = 1;
        fault::PlanScope Scope(Plan);
        ParOutcome<int> O = fanOut(cfg(W, S), 6);
        EXPECT_EQ(sig(O), "fault:injected_failure:pedigree=:lvar=")
            << "workers=" << W << " seed=" << S;
      }
  }
}

// The discarded branch of a non-template `if constexpr` is still
// semantically checked, and the telemetry-off TelemetrySnapshot has no
// count(); this one needs the preprocessor.
#if LVISH_TELEMETRY
TEST(FaultStressTest, InjectionCountsInTelemetry) {
  if constexpr (!fault::InjectionEnabled) {
    GTEST_SKIP() << "configure with -DLVISH_FAULTS=ON";
  } else {
    obs::TelemetrySnapshot Before = obs::telemetrySnapshot();
    fault::FaultPlan Plan;
    Plan.Seed = 3;
    Plan.HaveFailPedigree = true;
    Plan.FailPedigree = "L";
    fault::PlanScope Scope(Plan);
    ParOutcome<int> O = fanOut(cfg(2, 3), 3);
    EXPECT_FALSE(O.ok());
    obs::TelemetrySnapshot After = obs::telemetrySnapshot();
    EXPECT_GE(After.count(obs::Event::InjectedFaults),
              Before.count(obs::Event::InjectedFaults) + 1);
    EXPECT_GE(After.count(obs::Event::FaultsRaised),
              Before.count(obs::Event::FaultsRaised) + 1);
    EXPECT_GE(After.count(obs::Event::FaultsContained),
              Before.count(obs::Event::FaultsContained) + 1);
  }
}
#else
TEST(FaultStressTest, InjectionCountsInTelemetry) {
  GTEST_SKIP() << "configure with -DLVISH_TELEMETRY=ON";
}
#endif

} // namespace
