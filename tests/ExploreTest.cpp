//===- ExploreTest.cpp - Controlled-scheduling exploration ------------------===//
//
// Acceptance tests for src/explore (DESIGN.md Section 12): the virtual
// scheduler owns every nondeterministic decision, so schedule-dependent
// races that stress repetition only *might* witness are found by seeded
// search, covered exhaustively under a preemption bound, and replayed
// bit-for-bit from a printable string.
//
//===----------------------------------------------------------------------===//

#include "src/core/HandlerPool.h"
#include "src/core/LVish.h"
#include "src/data/ISet.h"
#include "src/explore/Explorer.h"
#include "src/fault/FaultPlan.h"
#include "src/trans/Cancel.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

using namespace lvish;

namespace {

constexpr EffectSet IOE = Eff::FullIO;

/// Schedule budget, overridable so ci.sh's explore stage can smoke-run
/// with a small budget (LVISH_EXPLORE_SCHEDULES=N).
unsigned scheduleBudget(unsigned Def) {
  if (const char *S = std::getenv("LVISH_EXPLORE_SCHEDULES")) {
    int V = std::atoi(S);
    if (V > 0)
      return static_cast<unsigned>(V);
  }
  return Def;
}

std::string sig(const ParOutcome<int> &O) {
  if (O.ok())
    return "ok:" + std::to_string(O.value());
  return "fault:" + explore::failureSig(O.fault());
}

// -- Schedule-dependent race programs --------------------------------------
// Each returns a different outcome depending on the schedule; the explorer
// must find the failing interleavings and replay them exactly.

/// Put-vs-freeze race: the forked putter ("L") races the root's explicit
/// freeze (the root yields in between, so both orders are reachable).
/// put-first => ok:7; freeze-first => put_after_freeze at "L".
ParOutcome<int> freezeRace(const RunOptions &Opts) {
  return tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        auto LV = newPureLVar<MaxUint64Lattice>(Ctx);
        auto Putter = [LV](ParCtx<IOE> C) -> Par<void> {
          putPureLVar(C, *LV, 7);
          co_return;
        };
        fork(Ctx, Putter);
        co_await yield(Ctx);
        co_return static_cast<int>(freezePureLVar(Ctx, *LV));
      },
      Opts);
}

/// Conflicting IVar put: both children always fault the session, but WHICH
/// child is second - and thus the fault's pedigree ("L" vs "RL") - is
/// schedule-dependent.
ParOutcome<int> conflictRace(const RunOptions &Opts) {
  return tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        auto IV = newIVar<int>(Ctx, "contested");
        auto A = [IV](ParCtx<IOE> C) -> Par<void> {
          put(C, *IV, 1);
          co_return;
        };
        auto B = [IV](ParCtx<IOE> C) -> Par<void> {
          put(C, *IV, 2);
          co_return;
        };
        fork(Ctx, A);
        fork(Ctx, B);
        co_return co_await get(Ctx, *IV);
      },
      Opts);
}

/// Multi-waiter wake-order race: both children park on Gate, the root's
/// put wakes them *together* (one notifyWaiters batch), and the wake-order
/// decision picks which conflicting put lands second.
ParOutcome<int> wakeOrderRace(const RunOptions &Opts) {
  return tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        auto Gate = newIVar<int>(Ctx, "gate");
        auto Out = newIVar<int>(Ctx, "out");
        auto W1 = [Gate, Out](ParCtx<IOE> C) -> Par<void> {
          int G = co_await get(C, *Gate);
          put(C, *Out, G + 1);
        };
        auto W2 = [Gate, Out](ParCtx<IOE> C) -> Par<void> {
          int G = co_await get(C, *Gate);
          put(C, *Out, G + 2);
        };
        fork(Ctx, W1);
        fork(Ctx, W2);
        co_await yield(Ctx);
        put(Ctx, *Gate, 1);
        co_return co_await get(Ctx, *Out);
      },
      Opts);
}

/// The 2-worker/3-task IVar program for exhaustive enumeration: a root and
/// two independent putters. Correct under EVERY interleaving (ok:3); the
/// point is counting and covering the bounded schedule space.
ParOutcome<int> threeTaskProgram(const RunOptions &Opts) {
  return tryRunParIO<IOE>(
      [](ParCtx<IOE> Ctx) -> Par<int> {
        auto A = newIVar<int>(Ctx, "a");
        auto B = newIVar<int>(Ctx, "b");
        auto PutA = [A](ParCtx<IOE> C) -> Par<void> {
          put(C, *A, 1);
          co_return;
        };
        auto PutB = [B](ParCtx<IOE> C) -> Par<void> {
          put(C, *B, 2);
          co_return;
        };
        fork(Ctx, PutA);
        fork(Ctx, PutB);
        int VA = co_await get(Ctx, *A);
        int VB = co_await get(Ctx, *B);
        co_return VA + VB;
      },
      Opts);
}

// -- The controlled scheduler itself ---------------------------------------

TEST(ExploreTest, DefaultScheduleMatchesThreadedResult) {
  // The all-defaults replay (empty decision log) must run any correct
  // program to its normal result, single-threaded.
  explore::Engine Eng = explore::Engine::replay({}, 2);
  ParOutcome<int> O = threeTaskProgram(explore::sessionOptions(Eng));
  EXPECT_EQ(sig(O), "ok:3");
  EXPECT_GE(Eng.steps(), 3u) << "root + 2 children must all be resumed";
  EXPECT_GT(Eng.log().size(), 0u);
}

TEST(ExploreTest, EngineIsDeterministicPerSeed) {
  for (uint64_t Seed : {1ull, 42ull, 31337ull}) {
    explore::Engine E1 = explore::Engine::random(Seed, 3);
    explore::Engine E2 = explore::Engine::random(Seed, 3);
    ParOutcome<int> O1 = freezeRace(explore::sessionOptions(E1));
    ParOutcome<int> O2 = freezeRace(explore::sessionOptions(E2));
    EXPECT_EQ(sig(O1), sig(O2)) << "seed=" << Seed;
    EXPECT_EQ(E1.pedigreeHash(), E2.pedigreeHash()) << "seed=" << Seed;
    EXPECT_EQ(E1.chosen(), E2.chosen()) << "seed=" << Seed;
  }
}

// -- Seeded search (acceptance: race found in <= 500 PCT schedules) --------

TEST(ExploreTest, PctSearchFindsFreezeRace) {
  explore::SearchOptions O;
  O.Schedules = scheduleBudget(500);
  explore::SearchResult R = explore::searchPct(freezeRace, O);
  ASSERT_TRUE(R.Failure.has_value())
      << "no failing schedule in " << R.SchedulesRun << " PCT schedules";
  EXPECT_LE(R.Failure->ScheduleIndex + 1, 500u);
  EXPECT_EQ(explore::failureSig(R.Failure->F), "put_after_freeze@L");
  EXPECT_FALSE(R.Failure->Replay.empty());
}

TEST(ExploreTest, RandomSearchFindsFreezeRace) {
  explore::SearchOptions O;
  O.Schedules = scheduleBudget(500);
  explore::SearchResult R = explore::searchRandom(freezeRace, O);
  ASSERT_TRUE(R.Failure.has_value());
  EXPECT_EQ(explore::failureSig(R.Failure->F), "put_after_freeze@L");
}

TEST(ExploreTest, SearchControlsWakeOrder) {
  // Across seeds, the wake-order pick must produce BOTH possible fault
  // pedigrees ("L" and "RL" lose the conflicting-put race in different
  // schedules) - evidence the multi-task wakeup order is really a
  // controlled decision, not list order.
  std::set<std::string> Sigs;
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    explore::Engine Eng = explore::Engine::random(Seed, 2);
    ParOutcome<int> O = wakeOrderRace(explore::sessionOptions(Eng));
    Sigs.insert(sig(O));
  }
  EXPECT_TRUE(Sigs.count("fault:conflicting_put@L"))
      << "never saw W1 lose the race";
  EXPECT_TRUE(Sigs.count("fault:conflicting_put@RL"))
      << "never saw W2 lose the race";
}

// -- Bounded exhaustive enumeration ----------------------------------------

TEST(ExploreTest, ExhaustiveEnumeratesThreeTaskProgram) {
  explore::SearchOptions O;
  O.PreemptionBound = 2;
  explore::SearchResult R = explore::enumerateBounded(threeTaskProgram, O);
  EXPECT_TRUE(R.Exhausted) << "small program must be fully enumerable";
  EXPECT_FALSE(R.Failure.has_value()) << explore::failureSig(R.Failure->F);
  EXPECT_GT(R.SchedulesRun, 1u)
      << "a 2-worker/3-task program has more than one interleaving";
  EXPECT_LT(R.SchedulesRun, O.MaxExhaustive);
}

TEST(ExploreTest, PreemptionBoundPrunesTheSpace) {
  explore::SearchOptions Tight;
  Tight.PreemptionBound = 0;
  explore::SearchOptions Loose;
  Loose.PreemptionBound = 2;
  explore::SearchResult RT = explore::enumerateBounded(threeTaskProgram, Tight);
  explore::SearchResult RL = explore::enumerateBounded(threeTaskProgram, Loose);
  EXPECT_TRUE(RT.Exhausted);
  EXPECT_TRUE(RL.Exhausted);
  EXPECT_LT(RT.SchedulesRun, RL.SchedulesRun)
      << "raising the preemption bound must widen the enumerated space";
}

TEST(ExploreTest, ExhaustiveCoversLowerIndexedWorkerPreemption) {
  // Regression: options are enumerated worker-major, so the
  // non-preempting default (ContinueIdx) often sits ABOVE a lower-indexed
  // worker's options (e.g. with LastWorker=1, worker 0's steal is option
  // 0 and ContinueIdx=1). A bump loop over raw option indices starting at
  // Chosen+1 never visits those, yet still reports Exhausted - silently
  // overclaiming coverage. The rank-ordered DFS must reach a schedule
  // where a decision takes an option below its ContinueIdx.
  explore::SearchOptions O;
  O.PreemptionBound = 2;
  bool SawLowerPreempt = false;
  O.OnSchedule = [&](const explore::Engine &Eng) {
    for (const explore::Decision &D : Eng.log())
      if (D.Kind == explore::DecisionKind::Step && D.ContinueIdx != ~0u &&
          D.Chosen < D.ContinueIdx)
        SawLowerPreempt = true;
  };
  explore::SearchResult R = explore::enumerateBounded(threeTaskProgram, O);
  EXPECT_TRUE(R.Exhausted);
  EXPECT_FALSE(R.Failure.has_value());
  EXPECT_TRUE(SawLowerPreempt)
      << "bounded enumeration never took an option below the "
         "non-preempting default across " << R.SchedulesRun
      << " schedules - in-bound preemptions by lower-indexed workers "
         "were skipped";
}

TEST(ExploreTest, ExhaustiveFindsConflictPedigreeVariants) {
  // The conflicting-put program faults on EVERY schedule; enumeration
  // stops at the first one, which under the non-preempting default order
  // must be deterministic run-to-run.
  explore::SearchOptions O;
  O.Shrink = false;
  explore::SearchResult R1 = explore::enumerateBounded(conflictRace, O);
  explore::SearchResult R2 = explore::enumerateBounded(conflictRace, O);
  ASSERT_TRUE(R1.Failure.has_value());
  ASSERT_TRUE(R2.Failure.has_value());
  EXPECT_EQ(explore::failureSig(R1.Failure->F),
            explore::failureSig(R2.Failure->F));
  EXPECT_EQ(R1.Failure->Replay, R2.Failure->Replay);
}

// -- Replay strings and shrinking ------------------------------------------

TEST(ExploreTest, ReplayStringRoundTrips) {
  explore::ReplaySpec Spec;
  Spec.VirtualWorkers = 3;
  Spec.Decisions = {0, 2, 0, 1, 5};
  Spec.PedHash = 0xdeadbeefcafef00dULL;
  std::string S = explore::encodeReplay(Spec);
  auto Back = explore::decodeReplay(S);
  ASSERT_TRUE(Back.has_value()) << S;
  EXPECT_EQ(Back->VirtualWorkers, 3u);
  EXPECT_EQ(Back->Decisions, Spec.Decisions);
  EXPECT_EQ(Back->PedHash, Spec.PedHash);

  // Empty decision list round-trips too (the all-defaults schedule).
  Spec.Decisions.clear();
  Back = explore::decodeReplay(explore::encodeReplay(Spec));
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(Back->Decisions.empty());

  // Malformed strings are rejected, not crashed on.
  EXPECT_FALSE(explore::decodeReplay("").has_value());
  EXPECT_FALSE(explore::decodeReplay("lvx1:w0:h00:1").has_value());
  EXPECT_FALSE(explore::decodeReplay("lvx1:w2:h00zz:1").has_value());
  EXPECT_FALSE(explore::decodeReplay("lvx9:w2:h00:1").has_value());
  EXPECT_FALSE(
      explore::decodeReplay("lvx1:w2:h0000000000000000:1..2").has_value());

  // Decision values that overflow uint32_t are rejected as corrupt, not
  // silently wrapped into an arbitrary in-range decision.
  EXPECT_FALSE(explore::decodeReplay("lvx1:w2:h0000000000000000:4294967296")
                   .has_value());
  EXPECT_FALSE(
      explore::decodeReplay("lvx1:w2:h0000000000000000:1.18446744073709551616")
          .has_value());
  auto Max = explore::decodeReplay("lvx1:w2:h0000000000000000:4294967295");
  ASSERT_TRUE(Max.has_value());
  EXPECT_EQ(Max->Decisions, std::vector<uint32_t>{4294967295u});
}

TEST(ExploreTest, ShrunkReplayReproducesThriceBitForBit) {
  // Acceptance: search -> shrink -> the committed string reproduces the
  // identical (FaultCode, pedigree) - and the identical schedule hash -
  // on 3 consecutive replays.
  explore::SearchOptions O;
  O.Schedules = scheduleBudget(500);
  explore::SearchResult R = explore::searchPct(freezeRace, O);
  ASSERT_TRUE(R.Failure.has_value());
  std::string Want = explore::failureSig(R.Failure->F);

  auto Spec = explore::decodeReplay(R.Failure->Replay);
  ASSERT_TRUE(Spec.has_value()) << R.Failure->Replay;
  for (int Rep = 0; Rep < 3; ++Rep) {
    bool BitIdentical = false;
    std::optional<Fault> Flt =
        explore::replaySession(freezeRace, *Spec, &BitIdentical);
    ASSERT_TRUE(Flt.has_value()) << "replay " << Rep << " did not fail";
    EXPECT_EQ(explore::failureSig(*Flt), Want) << "replay " << Rep;
    EXPECT_TRUE(BitIdentical)
        << "replay " << Rep << " diverged from the committed schedule hash";
  }
}

TEST(ExploreTest, ShrinkOnlyRemovesDecisions) {
  explore::SearchOptions Raw;
  Raw.Schedules = scheduleBudget(500);
  Raw.Shrink = false;
  explore::SearchResult RUnshrunk = explore::searchRandom(freezeRace, Raw);
  ASSERT_TRUE(RUnshrunk.Failure.has_value());

  explore::SearchOptions Shr = Raw;
  Shr.Shrink = true;
  explore::SearchResult RShrunk = explore::searchRandom(freezeRace, Shr);
  ASSERT_TRUE(RShrunk.Failure.has_value());
  auto Long = explore::decodeReplay(RUnshrunk.Failure->Replay);
  auto Short = explore::decodeReplay(RShrunk.Failure->Replay);
  ASSERT_TRUE(Long.has_value());
  ASSERT_TRUE(Short.has_value());
  EXPECT_LE(Short->Decisions.size(), Long->Decisions.size());
  EXPECT_GT(RShrunk.Failure->ShrinkRuns, 0u);
}

TEST(ExploreTest, ShrinkFlagsNonScheduleDeterministicFailure) {
  // A failure that is NOT a function of the schedule (here: the program
  // faults only on its first invocation) defeats shrinking entirely -
  // every candidate re-run passes. The driver must notice at runtime that
  // even the unshrunk log no longer reproduces and flag the result,
  // instead of silently reporting a replay string that does not fail.
  int Calls = 0;
  auto FirstRunOnly = [&Calls](const RunOptions &Opts) -> ParOutcome<int> {
    bool Doom = Calls++ == 0;
    return tryRunParIO<IOE>(
        [Doom](ParCtx<IOE> Ctx) -> Par<int> {
          auto IV = newIVar<int>(Ctx, "iv");
          put(Ctx, *IV, 1);
          if (Doom)
            put(Ctx, *IV, 2); // conflicting put, first invocation only
          co_return co_await get(Ctx, *IV);
        },
        Opts);
  };
  explore::SearchOptions O;
  O.Schedules = 4;
  explore::SearchResult R = explore::searchRandom(FirstRunOnly, O);
  ASSERT_TRUE(R.Failure.has_value());
  EXPECT_FALSE(R.Failure->Verified)
      << "a failure no replay reproduces must not be reported as verified";
  EXPECT_GT(R.Failure->ShrinkRuns, 0u);
}

// -- Quiesce / handler-pool drains under the explorer ----------------------

TEST(ExploreTest, HandlerQuiesceProgramIsDeterministicUnderExploration) {
  // A CORRECT handler program (quiesce before freeze) must produce the
  // same value under every explored schedule - the determinism claim the
  // explorer exists to check. Exercises handler-pool drain ordering.
  auto Program = [](const RunOptions &Opts) {
    return tryRunParIO<IOE>(
        [](ParCtx<IOE> Ctx) -> Par<int> {
          auto S = newISet<int>(Ctx);
          auto Pool = newPool(Ctx);
          ISet<int> *Raw = S.get();
          auto Handler = [Raw](ParCtx<IOE> C, const int &V) -> Par<void> {
            if (V > 0 && V % 2 == 0)
              insert(C, *Raw, V / 2);
            co_return;
          };
          [[maybe_unused]] HandlerHandle H = addHandler(Ctx, Pool, *S, Handler);
          insert(Ctx, *S, 8);
          insert(Ctx, *S, 12);
          co_await quiesce(Ctx, Pool);
          auto Contents = freezeSet(Ctx, *S);
          co_return static_cast<int>(Contents.size());
        },
        Opts);
  };
  for (uint64_t Seed = 0; Seed < 24; ++Seed) {
    explore::Engine Eng = explore::Engine::random(Seed, 2);
    ParOutcome<int> O = Program(explore::sessionOptions(Eng));
    // {8,4,2,1} u {12,6,3} = 7 elements, every schedule.
    EXPECT_EQ(sig(O), "ok:7") << "seed=" << Seed;
  }
}

// -- Composition with LVISH_CHECK and LVISH_FAULTS -------------------------

TEST(ExploreTest, ComposesWithFaultInjection) {
  if constexpr (!fault::InjectionEnabled) {
    GTEST_SKIP() << "configure with -DLVISH_FAULTS=ON";
  } else {
    // A doomed pedigree must be hit under every adversarial schedule the
    // explorer produces: injection targets the fork TREE, which the
    // schedule cannot change.
    auto FanOut = [](const RunOptions &Opts) {
      return tryRunParIO<IOE>(
          [](ParCtx<IOE> Ctx) -> Par<int> {
            auto A = newIVar<int>(Ctx, "a");
            auto B = newIVar<int>(Ctx, "b");
            auto PutA = [A](ParCtx<IOE> C) -> Par<void> {
              put(C, *A, 1);
              co_return;
            };
            auto PutB = [B](ParCtx<IOE> C) -> Par<void> {
              put(C, *B, 2);
              co_return;
            };
            fork(Ctx, PutA); // "L"
            fork(Ctx, PutB); // "RL"
            int VA = co_await get(Ctx, *A);
            int VB = co_await get(Ctx, *B);
            co_return VA + VB;
          },
          Opts);
    };
    fault::FaultPlan Plan;
    Plan.Seed = 7;
    Plan.HaveFailPedigree = true;
    Plan.FailPedigree = "RL";
    fault::PlanScope Scope(Plan);
    for (uint64_t Seed = 0; Seed < 16; ++Seed) {
      explore::Engine Eng = explore::Engine::random(Seed, 2);
      ParOutcome<int> O = FanOut(explore::sessionOptions(Eng));
      ASSERT_FALSE(O.ok()) << "seed=" << Seed;
      EXPECT_EQ(explore::failureSig(O.fault()), "injected_failure@RL")
          << "seed=" << Seed;
    }
  }
}

TEST(ExploreTest, ExplorerStatsAccumulate) {
#if LVISH_TELEMETRY
  obs::TelemetrySnapshot Before = obs::telemetrySnapshot();
  explore::SearchOptions O;
  O.Schedules = 4;
  O.Shrink = false;
  explore::searchRandom(threeTaskProgram, O);
  obs::TelemetrySnapshot After = obs::telemetrySnapshot();
  EXPECT_GE(After.count(obs::Event::ExploreSchedules),
            Before.count(obs::Event::ExploreSchedules) + 4);
  EXPECT_GE(After.count(obs::Event::ExploreSteps),
            Before.count(obs::Event::ExploreSteps) + 4 * 3);
#else
  GTEST_SKIP() << "telemetry compiled out";
#endif
}

} // namespace
