//===- TelemetryTest.cpp - Telemetry, stats, and JSON tests ----------------===//
//
// Covers the src/obs/ subsystem: SchedulerStats exactness on a single
// worker (where counts are deterministic), per-session stats deltas on a
// shared Runtime, the LVar/session telemetry counters (when compiled in),
// the JSON writer/parser round trip, and the BenchHarness document schema.
// The compiled-out telemetry configuration (LVISH_TELEMETRY=0, exercised
// by the tsan CI stage) asserts the zero-size/no-op contract.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "src/core/LVish.h"
#include "src/data/Counter.h"
#include "src/data/ISet.h"
#include "src/obs/ChromeTrace.h"
#include "src/obs/Json.h"
#include "src/obs/SchedulerStats.h"
#include "src/obs/Telemetry.h"
#include "src/trans/Memo.h"

#include <gtest/gtest.h>

#include <type_traits>

using namespace lvish;

namespace {

constexpr EffectSet D = Eff::Det;

//===----------------------------------------------------------------------===//
// SchedulerStats
//===----------------------------------------------------------------------===//

TEST(SchedulerStatsTest, SingleWorkerCountsAreExact) {
  constexpr int Forks = 10;
  SchedulerStats Stats;
  RunOptions Opts = RunOptions::CollectStats(Stats);
  Opts.Config = SchedulerConfig{1};
  int Sum = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        auto IV = newIVar<int>(Ctx);
        for (int I = 0; I < Forks; ++I)
          fork(Ctx, [IV, I](ParCtx<D> C) -> Par<void> {
            if (I == 0)
              put(C, *IV, 42);
            co_return;
          });
        int V = co_await get(Ctx, *IV);
        co_return V;
      },
      Opts);
  EXPECT_EQ(Sum, 42);
  // Root + Forks tasks, all executed, none stolen (one worker has no
  // victims to probe).
  EXPECT_EQ(Stats.TasksCreated, static_cast<uint64_t>(Forks) + 1);
  EXPECT_EQ(Stats.TasksExecuted, Stats.TasksCreated);
  EXPECT_EQ(Stats.StealAttempts, 0u);
  EXPECT_EQ(Stats.Steals, 0u);
  EXPECT_EQ(Stats.NumWorkers, 1u);
  // The root parked once on the IVar get (the forks run after it blocks).
  EXPECT_GE(Stats.Parks, 1u);
  EXPECT_GE(Stats.Wakes, 1u);
  EXPECT_GE(Stats.MaxDequeDepth, 1u);
}

TEST(SchedulerStatsTest, PerSessionDeltasOnASharedRuntime) {
  // StatsOut is a per-session DELTA: back-to-back sessions on one shared
  // Runtime each report exactly their own task counts, while the pool's
  // own counters stay cumulative and monotonic.
  service::Runtime RT({.Sched = {.NumWorkers = 2}});
  auto Session = [&](SchedulerStats &Out) {
    service::SessionOptions Opts;
    Opts.StatsOut = &Out;
    RT.run<D>([](ParCtx<D> Ctx) -> Par<void> {
        for (int I = 0; I < 8; ++I)
          fork(Ctx, [](ParCtx<D>) -> Par<void> { co_return; });
        co_return;
      },
      Opts).valueOrAbort();
  };
  SchedulerStats A, B;
  Session(A);
  Session(B);
  // Exact per-session isolation: each delta sees its own root + 8 forks,
  // not the pool history.
  EXPECT_EQ(A.TasksCreated, 9u);
  EXPECT_EQ(B.TasksCreated, 9u);
  EXPECT_EQ(A.TasksExecuted, 9u);
  EXPECT_EQ(B.TasksExecuted, 9u);
  // The pool itself keeps the cumulative view.
  SchedulerStats Pool = RT.scheduler().stats();
  EXPECT_EQ(Pool.TasksCreated, 18u);
  EXPECT_GE(Pool.TasksExecuted, 18u);
}

TEST(SchedulerStatsTest, AccumulateMergesAndMaxes) {
  SchedulerStats A, B;
  A.TasksCreated = 3;
  A.MaxDequeDepth = 7;
  A.NumWorkers = 1;
  B.TasksCreated = 4;
  B.MaxDequeDepth = 2;
  B.NumWorkers = 4;
  A += B;
  EXPECT_EQ(A.TasksCreated, 7u);
  EXPECT_EQ(A.MaxDequeDepth, 7u);
  EXPECT_EQ(A.NumWorkers, 4u);
}

TEST(RunOptionsTest, CollectStatsReportsSessionDelta) {
  SchedulerStats Stats;
  RunOptions Opts = RunOptions::CollectStats(Stats);
  Opts.Config = SchedulerConfig{1};
  int R = runPar<D>(
      [](ParCtx<D> Ctx) -> Par<int> {
        (void)Ctx;
        co_return 7;
      },
      Opts);
  EXPECT_EQ(R, 7);
  EXPECT_EQ(Stats.TasksCreated, 1u);
  EXPECT_EQ(Stats.TasksExecuted, 1u);
}

TEST(RunOptionsTest, RuntimeRunThenFreezeFreezesResult) {
  service::Runtime RT({.Sched = {.NumWorkers = 2}});
  auto Set = RT.runThenFreeze([](ParCtx<D> Ctx) -> Par<
                                  std::shared_ptr<ISet<int>>> {
                 auto S = newISet<int>(Ctx);
                 for (int I = 0; I < 5; ++I)
                   fork(Ctx, [S, I](ParCtx<D> C) -> Par<void> {
                     insert(C, *S, I);
                     co_return;
                   });
                 co_return S;
               })
                 .valueOrAbort();
  EXPECT_TRUE(Set->isFrozen());
  EXPECT_EQ(Set->toSortedVector().size(), 5u);
}

//===----------------------------------------------------------------------===//
// LVar/session telemetry counters
//===----------------------------------------------------------------------===//

#if LVISH_TELEMETRY
TEST(TelemetryTest, PutAndNoOpJoinCountsAreExactSingleWorker) {
  obs::resetTelemetry();
  runPar<D>(
      [](ParCtx<D> Ctx) -> Par<void> {
        auto S = newISet<int>(Ctx);
        for (int I = 0; I < 10; ++I)
          insert(Ctx, *S, I); // 10 fresh puts.
        for (int I = 0; I < 4; ++I)
          insert(Ctx, *S, 3); // 4 no-op re-puts.
        auto IV = newIVar<int>(Ctx);
        put(Ctx, *IV, 1); // 1 fresh put.
        put(Ctx, *IV, 1); // 1 equal re-put: no-op join.
        co_return;
      },
      SchedulerConfig{1});
  obs::TelemetrySnapshot T = obs::telemetrySnapshot();
  EXPECT_EQ(T.count(obs::Event::Puts), 16u);
  EXPECT_EQ(T.count(obs::Event::NoOpJoins), 5u);
}

TEST(TelemetryTest, HandlerAndThresholdWakeupCounts) {
  obs::resetTelemetry();
  runParIO<Eff::FullIO>(
      [](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
        auto S = newISet<int>(Ctx);
        auto Pool = newPool(Ctx);
        auto Ctr = newCounter(Ctx);
        [[maybe_unused]] HandlerHandle H =
            addHandler(Ctx, Pool, *S,
                       [Ctr](ParCtx<Eff::FullIO> C, const int &) -> Par<void> {
                         incrCounter(C, *Ctr);
                         co_return;
                       });
        for (int I = 0; I < 6; ++I)
          insert(Ctx, *S, I);
        co_await quiesce(Ctx, Pool);
        EXPECT_EQ(freezeCounter(Ctx, *Ctr), 6u);
        co_return;
      },
      SchedulerConfig{2});
  obs::TelemetrySnapshot T = obs::telemetrySnapshot();
  // One handler invocation per distinct element.
  EXPECT_EQ(T.count(obs::Event::HandlerInvocations), 6u);
  // Quiescence may or may not have had to wait, but if it waited the
  // latency accumulator must have registered.
  if (T.count(obs::Event::QuiesceWaits) > 0) {
    EXPECT_GT(T.QuiesceWaitNanos, 0u);
  }
}

TEST(TelemetryTest, MemoHitAndMissCounts) {
  obs::resetTelemetry();
  runParIO<Eff::FullIO>(
      [](ParCtx<Eff::FullIO> Ctx) -> Par<void> {
        auto M = makeMemo<int>(
            Ctx, [](ParCtx<Eff::ReadOnly>, int K) -> Par<int> {
              co_return K + 1;
            });
        // Sequential single-worker calls: first of each key misses, the
        // rest hit.
        for (int I = 0; I < 9; ++I) {
          int V = co_await getMemo(Ctx, M, I % 3);
          EXPECT_EQ(V, I % 3 + 1);
        }
        co_return;
      },
      SchedulerConfig{1});
  obs::TelemetrySnapshot T = obs::telemetrySnapshot();
  EXPECT_EQ(T.count(obs::Event::MemoMisses), 3u);
  EXPECT_EQ(T.count(obs::Event::MemoHits), 6u);
}

TEST(TelemetryTest, SessionCountersAndLatencyAccumulate) {
  obs::resetTelemetry();
  {
    service::Runtime RT({.Sched = {.NumWorkers = 2}});
    auto F1 = RT.submit([](ParCtx<D> Ctx) -> Par<int> {
      (void)Ctx;
      co_return 1;
    });
    auto F2 = RT.submit([](ParCtx<D> Ctx) -> Par<int> {
      (void)Ctx;
      co_return 2;
    });
    EXPECT_EQ(F1.get().value() + F2.get().value(), 3);
  }
  obs::TelemetrySnapshot T = obs::telemetrySnapshot();
  EXPECT_EQ(T.count(obs::Event::SessionsSubmitted), 2u);
  EXPECT_EQ(T.count(obs::Event::SessionsCompleted), 2u);
  EXPECT_EQ(T.count(obs::Event::SessionsRejected), 0u);
  // Submit-to-outcome latency summed over both sessions.
  EXPECT_GT(T.SessionLatencyNanos, 0u);
}

TEST(TelemetryTest, SpansAreRecorded) {
  obs::clearSpans();
  {
    obs::Span S("outer");
    obs::Span T("inner");
  }
  auto Log = obs::spanLog();
  ASSERT_EQ(Log.size(), 2u);
  // Destruction order: inner closes first.
  EXPECT_EQ(Log[0].Name, "inner");
  EXPECT_EQ(Log[1].Name, "outer");
  EXPECT_GE(Log[1].DurationNanos, Log[0].DurationNanos);

  // The chrome trace export contains both span names.
  std::string Trace = obs::chromeTraceJson(nullptr);
  obs::JsonValue Doc;
  ASSERT_TRUE(obs::JsonValue::parse(Trace, Doc));
  const obs::JsonValue *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  EXPECT_EQ(Events->Arr.size(), 2u);
  obs::clearSpans();
}
#else
// Compiled-out contract: the snapshot is an empty struct and Span carries
// no state, so telemetry cannot perturb layout or timing.
static_assert(std::is_empty_v<lvish::obs::TelemetrySnapshot>,
              "disabled telemetry snapshot must be zero-size");
static_assert(std::is_empty_v<lvish::obs::Span>,
              "disabled Span must be zero-size");

TEST(TelemetryTest, DisabledOpsAreNoOps) {
  obs::count(obs::Event::Puts);
  obs::addQuiesceWaitNanos(5);
  obs::resetTelemetry();
  { obs::Span S("ignored"); }
  SUCCEED();
}
#endif

//===----------------------------------------------------------------------===//
// JSON round trip
//===----------------------------------------------------------------------===//

TEST(JsonTest, WriterEscapesAndParserRoundTrips) {
  obs::JsonWriter W;
  W.beginObject();
  W.key("text");
  W.value("a\"b\\c\nd\te\x01f");
  W.key("nums");
  W.beginArray();
  W.value(uint64_t{18446744073709551615ull});
  W.value(0.125);
  W.value(-3.5);
  W.endArray();
  W.key("flag");
  W.value(true);
  W.key("nothing");
  W.null();
  W.endObject();
  std::string Doc = W.take();

  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::JsonValue::parse(Doc, V, &Err)) << Err;
  const obs::JsonValue *Text = V.find("text");
  ASSERT_NE(Text, nullptr);
  EXPECT_EQ(Text->Str, "a\"b\\c\nd\te\x01f");
  const obs::JsonValue *Nums = V.find("nums");
  ASSERT_NE(Nums, nullptr);
  ASSERT_EQ(Nums->Arr.size(), 3u);
  EXPECT_DOUBLE_EQ(Nums->Arr[1].Num, 0.125);
  EXPECT_DOUBLE_EQ(Nums->Arr[2].Num, -3.5);
  EXPECT_TRUE(V.find("flag")->BoolV);
  EXPECT_TRUE(V.find("nothing")->isNull());

  // write() -> parse() is a fixpoint.
  std::string Again = V.write();
  obs::JsonValue V2;
  ASSERT_TRUE(obs::JsonValue::parse(Again, V2, &Err)) << Err;
  EXPECT_EQ(V2.write(), Again);
}

TEST(JsonTest, ParserHandlesUnicodeEscapes) {
  obs::JsonValue V;
  // BMP escape and a surrogate pair (U+1F600).
  ASSERT_TRUE(obs::JsonValue::parse(
      R"({"s":"é 😀"})", V));
  const obs::JsonValue *S = V.find("s");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Str, "\xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  obs::JsonValue V;
  std::string Err;
  EXPECT_FALSE(obs::JsonValue::parse("{", V, &Err));
  EXPECT_FALSE(obs::JsonValue::parse("{\"a\":}", V, &Err));
  EXPECT_FALSE(obs::JsonValue::parse("[1,]", V, &Err));
  EXPECT_FALSE(obs::JsonValue::parse("tru", V, &Err));
  EXPECT_FALSE(obs::JsonValue::parse("\"unterminated", V, &Err));
}

//===----------------------------------------------------------------------===//
// BenchHarness document
//===----------------------------------------------------------------------===//

TEST(BenchHarnessTest, EmitsSchemaValidDocument) {
  bench::BenchConfig Cfg;
  Cfg.Reps = 3;
  Cfg.Warmup = 0;
  bench::BenchHarness H("unit_test", Cfg);
  H.noteConfig("n", uint64_t{7});
  int Calls = 0;
  H.measure("noop", [&] { ++Calls; }).metric("calls", Calls);
  EXPECT_EQ(Calls, 3);

  service::Runtime RT({.Sched = {.NumWorkers = 1}});
  RT.run<D>([](ParCtx<D> Ctx) -> Par<void> {
      (void)Ctx;
      co_return;
    }).valueOrAbort();
  H.recordStats(RT.scheduler().stats());

  obs::JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(obs::JsonValue::parse(H.toJson(), Doc, &Err)) << Err;
  EXPECT_EQ(Doc.find("schema")->Str, "lvish-bench-v1");
  EXPECT_EQ(Doc.find("name")->Str, "unit_test");
  EXPECT_FALSE(Doc.find("git_rev")->Str.empty());
  const obs::JsonValue *Series = Doc.find("series");
  ASSERT_NE(Series, nullptr);
  ASSERT_EQ(Series->Arr.size(), 1u);
  EXPECT_EQ(Series->Arr[0].find("times_sec")->Arr.size(), 3u);
  EXPECT_EQ(Doc.find("scheduler_stats")->find("tasks_created")->Num, 1.0);
  EXPECT_TRUE(Doc.find("telemetry")->isObject());
}

} // namespace
