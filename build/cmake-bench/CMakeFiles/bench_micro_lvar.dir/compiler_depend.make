# Empty compiler generated dependencies file for bench_micro_lvar.
# This may be replaced when dependencies are built.
