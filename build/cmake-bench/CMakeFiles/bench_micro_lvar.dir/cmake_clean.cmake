file(REMOVE_RECURSE
  "../bench/bench_micro_lvar"
  "../bench/bench_micro_lvar.pdb"
  "CMakeFiles/bench_micro_lvar.dir/bench_micro_lvar.cpp.o"
  "CMakeFiles/bench_micro_lvar.dir/bench_micro_lvar.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_lvar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
