file(REMOVE_RECURSE
  "../bench/bench_fig5_mergesort"
  "../bench/bench_fig5_mergesort.pdb"
  "CMakeFiles/bench_fig5_mergesort.dir/bench_fig5_mergesort.cpp.o"
  "CMakeFiles/bench_fig5_mergesort.dir/bench_fig5_mergesort.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mergesort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
