# Empty dependencies file for bench_fig5_mergesort.
# This may be replaced when dependencies are built.
