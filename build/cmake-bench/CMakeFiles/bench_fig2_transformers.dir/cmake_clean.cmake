file(REMOVE_RECURSE
  "../bench/bench_fig2_transformers"
  "../bench/bench_fig2_transformers.pdb"
  "CMakeFiles/bench_fig2_transformers.dir/bench_fig2_transformers.cpp.o"
  "CMakeFiles/bench_fig2_transformers.dir/bench_fig2_transformers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_transformers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
