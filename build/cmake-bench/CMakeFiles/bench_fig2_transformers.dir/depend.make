# Empty dependencies file for bench_fig2_transformers.
# This may be replaced when dependencies are built.
